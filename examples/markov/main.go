// Markov clustering (MCL) — the machine-learning workload the paper's
// introduction cites (HipMCL [9]). MCL finds graph clusters by alternating:
//
//	expansion:  M = M·M            (SpGEMM — the expensive step)
//	inflation:  M(i,j) = M(i,j)^r, then columns renormalized
//	pruning:    entries below a threshold are dropped
//
// until M converges to a doubly-idempotent matrix whose row support sets are
// the clusters. Every expansion is a squaring with modest compression factor,
// i.e. exactly PB-SpGEMM's sweet spot.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"pbspgemm"
	"pbspgemm/internal/matrix"
)

func main() {
	// Build a graph with three planted clusters joined by weak bridges.
	g := plantedClusters(3, 40, 11)
	fmt.Printf("graph: %d vertices, %d edges, 3 planted clusters\n", g.NumRows, g.NNZ())

	m := normalizeColumns(g)
	const (
		inflation = 1.5
		prune     = 1e-4
		maxIter   = 40
	)
	// One engine serves every expansion: its pooled workspace is warmed up
	// by the first squaring and reused to convergence, and its metrics
	// aggregate the whole run.
	eng, err := pbspgemm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	var iter int
	for iter = 1; iter <= maxIter; iter++ {
		// Expansion via PB-SpGEMM.
		res, err := eng.Multiply(ctx, m, m)
		if err != nil {
			log.Fatal(err)
		}
		next := res.C
		// Inflation + pruning + renormalization.
		next.Apply(func(v float64) float64 { return math.Pow(v, inflation) })
		next = next.Prune(prune)
		next = normalizeColumns(next)
		if converged(m, next, 1e-8) {
			m = next
			break
		}
		m = next
	}
	stats := eng.Metrics()
	fmt.Printf("converged after %d expansions: engine did %d multiplies, %d flops, %.1f MB modeled traffic\n",
		iter, stats.Calls, stats.Flops, float64(stats.BytesMoved)/1e6)

	clusters := extractClusters(m)
	fmt.Printf("found %d clusters with sizes: ", len(clusters))
	for _, c := range clusters {
		fmt.Printf("%d ", c)
	}
	fmt.Println()
	if len(clusters) != 3 {
		log.Fatalf("expected 3 clusters, found %d", len(clusters))
	}
	fmt.Println("recovered the planted clustering ✓")
}

// plantedClusters builds k dense clusters of size sz each, with sparse
// bridges, as a column-stochastic-ready adjacency with self loops (MCL
// convention).
func plantedClusters(k int, sz int32, seed uint64) *pbspgemm.CSR {
	n := int32(k) * sz
	coo := &matrix.COO{NumRows: n, NumCols: n}
	add := func(i, j int32, v float64) {
		coo.Row = append(coo.Row, i)
		coo.Col = append(coo.Col, j)
		coo.Val = append(coo.Val, v)
	}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for c := int32(0); c < int32(k); c++ {
		base := c * sz
		for i := int32(0); i < sz; i++ {
			add(base+i, base+i, 1) // self loop
			// ~10 random intra-cluster edges per vertex (symmetric).
			for e := 0; e < 10; e++ {
				j := int32(next() % uint64(sz))
				if j != i {
					add(base+i, base+j, 1)
					add(base+j, base+i, 1)
				}
			}
		}
		// One weak bridge to the next cluster.
		tgt := ((c + 1) % int32(k)) * sz
		add(base, tgt, 0.01)
		add(tgt, base, 0.01)
	}
	return coo.ToCSR()
}

// normalizeColumns scales every column to sum 1 (column-stochastic).
func normalizeColumns(m *pbspgemm.CSR) *pbspgemm.CSR {
	out := m.Clone()
	sums := out.ColumnSums()
	inv := make([]float64, len(sums))
	for j, s := range sums {
		if s > 0 {
			inv[j] = 1 / s
		}
	}
	out.ScaleColumns(inv)
	return out
}

// converged reports whether two iterates are element-wise close. Structure
// may differ (pruning), so compare via max |a-b| over the union support —
// approximated here by comparing Frobenius-like mass of the difference of
// column sums plus structural equality check.
func converged(a, b *pbspgemm.CSR, tol float64) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	for p := range a.Val {
		if a.ColIdx[p] != b.ColIdx[p] || math.Abs(a.Val[p]-b.Val[p]) > tol {
			return false
		}
	}
	return true
}

// extractClusters reads the converged MCL matrix: attractor rows (rows with
// any stored mass) define clusters; each column belongs to the cluster of
// the attractor it loads on. Returns cluster sizes.
func extractClusters(m *pbspgemm.CSR) []int {
	owner := make(map[int32][]int32) // attractor row -> member columns
	csc := m.ToCSC()
	for j := int32(0); j < csc.NumCols; j++ {
		var bestRow int32 = -1
		var bestVal float64
		for p := csc.ColPtr[j]; p < csc.ColPtr[j+1]; p++ {
			if csc.Val[p] > bestVal {
				bestVal = csc.Val[p]
				bestRow = csc.RowIdx[p]
			}
		}
		if bestRow >= 0 {
			owner[bestRow] = append(owner[bestRow], j)
		}
	}
	sizes := make([]int, 0, len(owner))
	for _, members := range owner {
		sizes = append(sizes, len(members))
	}
	return sizes
}
