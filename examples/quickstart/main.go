// Quickstart: multiply two random sparse matrices with PB-SpGEMM and compare
// against the hash baseline and the Roofline prediction — the 60-second tour
// of the library's public API.
package main

import (
	"context"
	"fmt"
	"log"

	"pbspgemm"
)

func main() {
	// Two 2^14 x 2^14 Erdős–Rényi matrices with 8 nonzeros per column: the
	// cf≈1 regime where the paper says PB-SpGEMM shines.
	a := pbspgemm.NewER(1<<14, 8, 1)
	b := pbspgemm.NewER(1<<14, 8, 2)
	fmt.Printf("A, B: %dx%d with %d nonzeros each\n", a.NumRows, a.NumCols, a.NNZ())

	// An Engine is the library's front door: safe for concurrent callers,
	// cancellable via context, pooling workspaces across calls.
	eng, err := pbspgemm.NewEngine()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// PB-SpGEMM with the paper's defaults (auto bins, 512-byte local bins).
	res, err := eng.Multiply(ctx, a, b)
	if err != nil {
		log.Fatal(err)
	}
	st := res.PB
	fmt.Printf("\nPB-SpGEMM: %d flops, nnz(C)=%d, cf=%.2f\n", res.Flops, res.C.NNZ(), res.CF)
	fmt.Printf("  total %v  =>  %.3f GFLOPS\n", res.Elapsed, res.GFLOPS())
	fmt.Printf("  expand  %8v  %6.2f GB/s\n", st.Expand, st.ExpandGBs())
	// The default pipeline fuses sort, compress and assembly counting into
	// one pass per bin (see the README's "fused pipeline" section).
	fmt.Printf("  fuse    %8v  %6.2f GB/s (%d bins)\n", st.Fuse, st.FuseGBs(), st.NBins)
	fmt.Printf("  assemble%8v\n", st.Assemble)

	// The same multiplication with the strongest column baseline, selected
	// per call with a functional option.
	hash, err := eng.Multiply(ctx, a, b, pbspgemm.WithAlgorithm(pbspgemm.Hash))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHashSpGEMM: %v  =>  %.3f GFLOPS\n", hash.Elapsed, hash.GFLOPS())

	// Both algorithms must agree (up to float summation order).
	if !pbspgemm.EqualWithin(res.C, hash.C, 1e-9) {
		log.Fatal("algorithms disagree!")
	}
	fmt.Println("results agree ✓")

	// What does the Roofline model say this machine should reach?
	beta := pbspgemm.MeasureBandwidth(1<<22, 0)
	pred := pbspgemm.PredictGFLOPS(beta, a.NNZ(), b.NNZ(), res.Flops, res.C.NNZ())
	fmt.Printf("\nRoofline: beta=%.1f GB/s => predicted PB performance %.3f GFLOPS (measured %.3f)\n",
		beta, pred, res.GFLOPS())
}
