// Roofline walkthrough: measure this machine's STREAM bandwidth, predict
// PB-SpGEMM's performance from the paper's model (Eq. 4), run the real
// multiplication, and report prediction vs measurement — the paper's central
// claim is that the two agree.
package main

import (
	"fmt"
	"log"
	"os"

	"pbspgemm"
	"pbspgemm/internal/metrics"
	"pbspgemm/internal/roofline"
)

func main() {
	beta := pbspgemm.MeasureBandwidth(1<<22, 0)
	fmt.Printf("measured STREAM beta: %.2f GB/s\n\n", beta)

	tb := metrics.NewTable("Roofline prediction vs measurement (PB-SpGEMM)",
		"workload", "cf", "AI (exact)", "predicted GFLOPS", "measured GFLOPS", "ratio")
	for _, w := range []struct {
		name string
		a, b *pbspgemm.CSR
	}{
		{"ER scale 14 ef 4", pbspgemm.NewER(1<<14, 4, 1), pbspgemm.NewER(1<<14, 4, 2)},
		{"ER scale 14 ef 16", pbspgemm.NewER(1<<14, 16, 3), pbspgemm.NewER(1<<14, 16, 4)},
		{"RMAT scale 13 ef 8", pbspgemm.NewRMAT(13, 8, 5), pbspgemm.NewRMAT(13, 8, 6)},
	} {
		res, err := pbspgemm.Multiply(w.a, w.b, pbspgemm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ai := roofline.AIOuterExact(w.a.NNZ(), w.b.NNZ(), res.Flops, res.C.NNZ(),
			roofline.DefaultBytesPerNonzero)
		pred := roofline.Attainable(beta, ai)
		ratio := res.GFLOPS() / pred
		tb.AddRow(w.name, res.CF, fmt.Sprintf("%.5f", ai), pred, res.GFLOPS(),
			fmt.Sprintf("%.2f", ratio))
	}
	tb.Render(os.Stdout)

	fmt.Println("\nthe paper's claim: the ratio stays near 1 because every PB phase streams")
	fmt.Println("memory at close to STREAM bandwidth (ratios well below 1 indicate the host")
	fmt.Println("is not bandwidth-bound on this problem size, e.g. tiny inputs fitting cache).")
}
