// Triangle counting with masked SpGEMM — one of the graph-analytics
// workloads the paper's introduction motivates (Azad, Buluç, Gilbert [2]).
//
// For a simple undirected graph with symmetric 0/1 adjacency matrix A, the
// number of triangles is sum(A²⟨A⟩)/6: A²(i,j) counts the 2-paths from i to
// j, the structural mask ⟨A⟩ keeps those closed by an edge, and each
// triangle is counted 6 times (3 vertices × 2 directions). The GraphBLAS
// masked multiply applies ⟨A⟩ inside the multiplication, so the unmasked A²
// — typically far denser than the graph — is never materialized.
package main

import (
	"fmt"
	"log"

	"pbspgemm"
	"pbspgemm/internal/matrix"
)

func main() {
	// A deterministic random undirected graph: symmetrize an ER matrix and
	// drop the diagonal, values forced to 1.
	n := int32(1 << 12)
	g := symmetrize(pbspgemm.NewER(n, 6, 7))
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumRows, g.NNZ()/2)

	// Masked square A²⟨A⟩ in one call. Compare nnz against the full A² to
	// see how much the mask saves.
	masked, err := pbspgemm.MultiplyMasked(g, g, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("A²⟨A⟩: %d nonzeros kept (A² would have %d)\n",
		masked.NNZ(), matrix.ProductNNZ(g, g))

	var mass float64
	for _, v := range masked.Val {
		mass += v
	}
	triangles := int64(mass+0.5) / 6
	fmt.Printf("triangles: %d\n", triangles)

	// Cross-check with a brute-force enumeration on the same graph.
	brute := bruteTriangles(g)
	if triangles != brute {
		log.Fatalf("SpGEMM count %d != brute force %d", triangles, brute)
	}
	fmt.Println("matches brute-force enumeration ✓")
}

// symmetrize returns (A + Aᵀ) patternized to values 1 with an empty diagonal.
func symmetrize(a *pbspgemm.CSR) *pbspgemm.CSR {
	at := a.Transpose()
	coo := &matrix.COO{NumRows: a.NumRows, NumCols: a.NumCols}
	add := func(m *pbspgemm.CSR) {
		for i := int32(0); i < m.NumRows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if j := m.ColIdx[p]; j != i {
					coo.Row = append(coo.Row, i)
					coo.Col = append(coo.Col, j)
					coo.Val = append(coo.Val, 1)
				}
			}
		}
	}
	add(a)
	add(at)
	s := coo.ToCSR()
	s.Apply(func(float64) float64 { return 1 }) // collapse summed duplicates to 1
	return s
}

// bruteTriangles counts triangles by neighbourhood intersection.
func bruteTriangles(g *pbspgemm.CSR) int64 {
	var count int64
	for u := int32(0); u < g.NumRows; u++ {
		for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
			v := g.ColIdx[p]
			if v <= u {
				continue
			}
			// Intersect sorted neighbour lists of u and v for w > v.
			pi, pe := g.RowPtr[u], g.RowPtr[u+1]
			qi, qe := g.RowPtr[v], g.RowPtr[v+1]
			for pi < pe && qi < qe {
				a, b := g.ColIdx[pi], g.ColIdx[qi]
				switch {
				case a < b:
					pi++
				case a > b:
					qi++
				default:
					if a > v {
						count++
					}
					pi++
					qi++
				}
			}
		}
	}
	return count
}
