// Multi-source BFS and connected components — the linear-algebraic graph
// traversal of Gilbert, Reinhardt and Shah that the paper's introduction
// cites [3]: every BFS level is one SpGEMM between the adjacency matrix and
// a tall-skinny frontier matrix over the Boolean semiring, so a batch of
// searches advances in a single structural multiplication.
package main

import (
	"fmt"
	"log"

	"pbspgemm"
	"pbspgemm/graph"
)

func main() {
	// A mid-size power-law graph (the paper's RMAT workload family).
	g := graph.FromAdjacency(pbspgemm.NewRMAT(12, 8, 42))
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// 8 BFS searches advance together; each level is one A·F multiplication
	// over Boolean() — no float64 values are ever formed for the frontiers.
	sources := []int32{0, 100, 500, 1000, 2000, 3000, 4000, 4090}
	levels, err := g.MultiSourceBFS(sources)
	if err != nil {
		log.Fatal(err)
	}
	for s, src := range sources {
		reached, maxLevel := 0, int32(0)
		for _, l := range levels[s] {
			if l >= 0 {
				reached++
				if l > maxLevel {
					maxLevel = l
				}
			}
		}
		fmt.Printf("  source %4d: reached %5d vertices, eccentricity %d\n", src, reached, maxLevel)
	}

	// Components of the whole graph via batched BFS sweeps.
	comp, n, err := g.ConnectedComponents()
	if err != nil {
		log.Fatal(err)
	}
	sizes := map[int32]int{}
	for _, c := range comp {
		sizes[c]++
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("connected components: %d (largest has %d vertices)\n", n, largest)

	// Triangle statistics on the same graph: the count is the masked product
	// A²⟨A⟩ — the unmasked square is never materialized.
	tri, err := g.Triangles()
	if err != nil {
		log.Fatal(err)
	}
	gcc, err := g.GlobalClusteringCoefficient()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %d, global clustering coefficient: %.4f\n", tri, gcc)
}
