package main

import (
	"strings"
	"testing"
)

// TestRunTiny drives a complete tiny benchmark through flag parsing and
// report rendering.
func TestRunTiny(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "4096", "-reps", "1", "-threads", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"STREAM: 3 arrays x 4096 elements",
		"Copy", "Scale", "Add", "Triad",
		"beta (Roofline)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDefaultsParse(t *testing.T) {
	// No flags: parsing must succeed and apply defaults; don't execute the
	// full-size run, just check the validators by overriding -n small.
	var sb strings.Builder
	if err := run([]string{"-n", "1024", "-reps", "1"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1 reps") {
		t.Fatalf("defaulted output wrong:\n%s", sb.String())
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-n", "notanumber"},
		{"-n", "0"},
		{"-n", "-5"},
		{"-reps", "0"},
		{"-bogusflag"},
	}
	for _, argv := range cases {
		var sb strings.Builder
		if err := run(argv, &sb); err == nil {
			t.Errorf("run(%v): expected error, got nil", argv)
		}
	}
}
