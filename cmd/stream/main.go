// Command stream runs the STREAM sustainable-bandwidth benchmark (Table V of
// the paper) and prints per-kernel GB/s. The Triad number is the beta the
// Roofline model uses.
//
//	stream -n 33554432 -reps 5 -threads 0
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pbspgemm/internal/metrics"
	"pbspgemm/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stream:", err)
		os.Exit(1)
	}
}

// run parses argv and executes the benchmark, writing the report to w. Split
// from main so tests can drive flag parsing and a tiny run end to end.
func run(argv []string, w io.Writer) error {
	fs := flag.NewFlagSet("stream", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 1<<25, "elements per array (3 arrays of 8 bytes each)")
		reps    = fs.Int("reps", 5, "timed repetitions, best reported")
		threads = fs.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	)
	fs.SetOutput(w)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", *n)
	}
	if *reps <= 0 {
		return fmt.Errorf("-reps must be positive, got %d", *reps)
	}

	fmt.Fprintf(w, "STREAM: 3 arrays x %d elements (%.1f MiB each), %d reps\n",
		*n, float64(*n)*8/(1<<20), *reps)
	res := stream.Run(stream.Options{N: *n, Reps: *reps, Threads: *threads})
	tb := metrics.NewTable("STREAM results", "kernel", "best GB/s", "avg GB/s", "bytes/rep")
	for _, r := range res {
		tb.AddRow(r.Kernel.String(), r.BestGBs, r.AvgGBs, metrics.HumanCount(r.BytesPer))
	}
	tb.Render(w)
	fmt.Fprintf(w, "\nbeta (Roofline) = %.2f GB/s\n", stream.Beta(res))
	return nil
}
