// Command stream runs the STREAM sustainable-bandwidth benchmark (Table V of
// the paper) and prints per-kernel GB/s. The Triad number is the beta the
// Roofline model uses.
//
//	stream -n 33554432 -reps 5 -threads 0
package main

import (
	"flag"
	"fmt"
	"os"

	"pbspgemm/internal/metrics"
	"pbspgemm/internal/stream"
)

func main() {
	var (
		n       = flag.Int("n", 1<<25, "elements per array (3 arrays of 8 bytes each)")
		reps    = flag.Int("reps", 5, "timed repetitions, best reported")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	)
	flag.Parse()

	fmt.Printf("STREAM: 3 arrays x %d elements (%.1f MiB each), %d reps\n",
		*n, float64(*n)*8/(1<<20), *reps)
	res := stream.Run(stream.Options{N: *n, Reps: *reps, Threads: *threads})
	tb := metrics.NewTable("STREAM results", "kernel", "best GB/s", "avg GB/s", "bytes/rep")
	for _, r := range res {
		tb.AddRow(r.Kernel.String(), r.BestGBs, r.AvgGBs, metrics.HumanCount(r.BytesPer))
	}
	tb.Render(os.Stdout)
	fmt.Printf("\nbeta (Roofline) = %.2f GB/s\n", stream.Beta(res))
}
