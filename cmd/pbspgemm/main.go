// Command pbspgemm multiplies two sparse matrices from the command line and
// reports the paper's metrics: per-phase times, GFLOPS, sustained bandwidth
// and the Roofline prediction.
//
// Inputs are either generated (-gen er|rmat -scale S -ef E) or loaded from
// Matrix Market files (-a file.mtx -b file.mtx; -b defaults to -a, i.e.
// squaring). Example:
//
//	pbspgemm -gen er -scale 18 -ef 8 -algo pb
//	pbspgemm -a web.mtx -algo hash -threads 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pbspgemm"
	"pbspgemm/internal/metrics"
)

func main() {
	var (
		genKind = flag.String("gen", "", "generate inputs: er or rmat (overrides -a/-b)")
		scale   = flag.Int("scale", 14, "generated matrix scale (2^scale rows)")
		ef      = flag.Int("ef", 8, "generated edge factor (nnz per column)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		aPath   = flag.String("a", "", "Matrix Market file for A")
		bPath   = flag.String("b", "", "Matrix Market file for B (default: A, squaring)")
		algoStr = flag.String("algo", "pb", "algorithm: pb, heap, hash, hashvec, spa, esc, outerheap")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		nbins   = flag.Int("nbins", 0, "PB global bins (0 = auto)")
		lbin    = flag.Int("localbin", 0, "PB local bin bytes (0 = 512)")
		budget  = flag.String("budget", "0", "PB expanded-tuple memory budget, e.g. 512M or 2G (0 = unlimited)")
		reps    = flag.Int("reps", 1, "repetitions, best kept (reusing one workspace)")
		verify  = flag.Bool("verify", false, "check the result against the reference algorithm")
		out     = flag.String("o", "", "write the product to a Matrix Market file")
	)
	flag.Parse()

	alg, err := parseAlgo(*algoStr)
	if err != nil {
		fatal(err)
	}

	var a, b *pbspgemm.CSR
	switch *genKind {
	case "er":
		a = pbspgemm.NewER(1<<*scale, *ef, *seed)
		b = pbspgemm.NewER(1<<*scale, *ef, *seed+1)
	case "rmat":
		a = pbspgemm.NewRMAT(*scale, *ef, *seed)
		b = pbspgemm.NewRMAT(*scale, *ef, *seed+1)
	case "":
		if *aPath == "" {
			fatal(fmt.Errorf("either -gen or -a is required"))
		}
		if a, err = pbspgemm.ReadMatrixMarketFile(*aPath); err != nil {
			fatal(err)
		}
		if *bPath == "" || *bPath == *aPath {
			b = a
		} else if b, err = pbspgemm.ReadMatrixMarketFile(*bPath); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown generator %q", *genKind))
	}

	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		fatal(err)
	}
	// The engine pools workspaces internally: the first repetition warms one
	// up and the remaining reps reuse it, with results cloned out so they
	// survive the next call.
	eng, err := pbspgemm.NewEngine(
		pbspgemm.WithAlgorithm(alg),
		pbspgemm.WithThreads(*threads),
		pbspgemm.WithNBins(*nbins),
		pbspgemm.WithLocalBinBytes(*lbin),
		pbspgemm.WithMemoryBudget(budgetBytes),
	)
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var best *pbspgemm.Result
	for r := 0; r < *reps; r++ {
		res, err := eng.Multiply(ctx, a, b)
		if err != nil {
			fatal(err)
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}

	fmt.Printf("A: %dx%d, %s nnz   B: %dx%d, %s nnz\n",
		a.NumRows, a.NumCols, metrics.HumanCount(a.NNZ()),
		b.NumRows, b.NumCols, metrics.HumanCount(b.NNZ()))
	fmt.Printf("%s: C has %s nnz, flop=%s, cf=%.2f\n",
		alg, metrics.HumanCount(best.C.NNZ()), metrics.HumanCount(best.Flops), best.CF)
	fmt.Printf("time %v  =>  %.3f GFLOPS\n", best.Elapsed, best.GFLOPS())
	if st := best.PB; st != nil {
		if st.Fused {
			fmt.Printf("phases: symbolic %v, expand %v (%.1f GB/s), fuse %v (%.1f GB/s), assemble %v\n",
				st.Symbolic, st.Expand, st.ExpandGBs(), st.Fuse, st.FuseGBs(), st.Assemble)
		} else {
			fmt.Printf("phases: symbolic %v, expand %v (%.1f GB/s), sort %v (%.1f GB/s), compress %v (%.1f GB/s), assemble %v\n",
				st.Symbolic, st.Expand, st.ExpandGBs(), st.Sort, st.SortGBs(),
				st.Compress, st.CompressGBs(), st.Assemble)
		}
		if st.NPanels > 1 {
			fmt.Printf("bins: %d  panels: %d (budget %s)  merge: %v\n",
				st.NBins, st.NPanels, *budget, st.Merge)
		} else {
			fmt.Printf("bins: %d\n", st.NBins)
		}
	}
	if st := best.Baseline; st != nil {
		fmt.Printf("phases: symbolic %v, numeric %v\n", st.Symbolic, st.Numeric)
	}
	if *reps > 1 {
		em := eng.Metrics()
		fmt.Printf("engine: %d calls, %s total flops, %.2f GB modeled traffic, busy %v\n",
			em.Calls, metrics.HumanCount(em.Flops), float64(em.BytesMoved)/1e9, em.Busy)
	}

	if *verify {
		want := pbspgemm.Reference(a, b)
		if pbspgemm.EqualWithin(want, best.C, 1e-9) {
			fmt.Println("verify: OK (matches reference)")
		} else {
			fatal(fmt.Errorf("verify: result differs from reference"))
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pbspgemm.WriteMatrixMarket(f, best.C); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func parseAlgo(s string) (pbspgemm.Algorithm, error) {
	switch strings.ToLower(s) {
	case "pb":
		return pbspgemm.PB, nil
	case "heap":
		return pbspgemm.Heap, nil
	case "hash":
		return pbspgemm.Hash, nil
	case "hashvec":
		return pbspgemm.HashVec, nil
	case "spa":
		return pbspgemm.SPA, nil
	case "outerheap":
		return pbspgemm.OuterHeapNaive, nil
	case "esc":
		return pbspgemm.ColumnESC, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

// parseBytes parses a byte count with an optional K/M/G/T suffix (powers of
// 1024), e.g. "512M", "2G", "65536".
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty byte count")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g', 'G':
		mult = 1 << 30
		s = s[:len(s)-1]
	case 't', 'T':
		mult = 1 << 40
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte count %q", s)
	}
	return n * mult, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbspgemm:", err)
	os.Exit(1)
}
