package main

import (
	"testing"

	"pbspgemm"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]pbspgemm.Algorithm{
		"pb":        pbspgemm.PB,
		"PB":        pbspgemm.PB,
		"heap":      pbspgemm.Heap,
		"hash":      pbspgemm.Hash,
		"HashVec":   pbspgemm.HashVec,
		"spa":       pbspgemm.SPA,
		"outerheap": pbspgemm.OuterHeapNaive,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil {
			t.Fatalf("parseAlgo(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseAlgo(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseAlgo("gustavson"); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":     0,
		"1024":  1024,
		"4K":    4 << 10,
		"4k":    4 << 10,
		"512M":  512 << 20,
		"2G":    2 << 30,
		"1T":    1 << 40,
		" 64k ": 64 << 10,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil {
			t.Fatalf("parseBytes(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "12X", "-5", "G"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q): expected error", bad)
		}
	}
}
