package main

import (
	"testing"

	"pbspgemm"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]pbspgemm.Algorithm{
		"pb":        pbspgemm.PB,
		"PB":        pbspgemm.PB,
		"heap":      pbspgemm.Heap,
		"hash":      pbspgemm.Hash,
		"HashVec":   pbspgemm.HashVec,
		"spa":       pbspgemm.SPA,
		"outerheap": pbspgemm.OuterHeapNaive,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil {
			t.Fatalf("parseAlgo(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseAlgo(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := parseAlgo("gustavson"); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}
