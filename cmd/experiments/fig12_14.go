package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"pbspgemm"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/metrics"
	"pbspgemm/internal/numa"
)

// scalingInputs generates the Fig. 12/13 workloads: ER and RMAT, scale 16,
// edge factor 16 (scale 13 at laptop scale).
func scalingInputs(cfg *config) (er, rmat *pbspgemm.CSR, scale int) {
	scale = 13
	if cfg.full {
		scale = 16
	}
	er = gen.ERMatrix(scale, 16, cfg.seed)
	rmat = gen.RMAT(scale, 16, gen.Graph500Params, cfg.seed)
	return er, rmat, scale
}

func threadSteps() []int {
	maxT := runtime.GOMAXPROCS(0)
	steps := []int{1}
	for t := 2; t < maxT; t *= 2 {
		steps = append(steps, t)
	}
	if steps[len(steps)-1] != maxT {
		steps = append(steps, maxT)
	}
	return steps
}

// runFig12 is the strong-scaling experiment: GFLOPS of all four algorithms
// from 1 thread to all cores, ER and RMAT.
func runFig12(cfg *config) {
	er, rmat, scale := scalingInputs(cfg)
	for _, in := range []struct {
		name string
		m    *pbspgemm.CSR
	}{{"ER", er}, {"RMAT", rmat}} {
		tb := metrics.NewTable(
			fmt.Sprintf("Fig. 12 — strong scaling, %s scale %d ef 16 (GFLOPS)", in.name, scale),
			"threads", "PB", "Heap", "Hash", "HashVec", "PB speedup")
		var pb1 float64
		for _, t := range threadSteps() {
			row := []any{t}
			var pbG float64
			for _, alg := range kernelAlgos() {
				res := bestRun(cfg, in.m, in.m, pbspgemm.Options{Algorithm: alg, Threads: t})
				g := res.GFLOPS()
				row = append(row, g)
				if alg == pbspgemm.PB {
					pbG = g
				}
			}
			if pb1 == 0 {
				pb1 = pbG
			}
			row = append(row, fmt.Sprintf("%.1fx", pbG/pb1))
			tb.AddRow(row...)
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}
	fmt.Println("paper shape: ~16x PB speedup on 24 cores for ER, ~10x for RMAT (load imbalance).")
}

// runFig13 is the per-phase scaling breakdown: PB-SpGEMM phase times vs
// thread count on the same inputs as Fig. 12.
func runFig13(cfg *config) {
	er, rmat, scale := scalingInputs(cfg)
	for _, in := range []struct {
		name string
		m    *pbspgemm.CSR
	}{{"ER", er}, {"RMAT", rmat}} {
		tb := metrics.NewTable(
			fmt.Sprintf("Fig. 13 — PB phase breakdown, %s scale %d ef 16 (ms)", in.name, scale),
			"threads", "symbolic", "expand", "sort", "compress", "assemble", "total")
		for _, t := range threadSteps() {
			// Paper pipeline (three phases) so the sort/compress columns
			// carry the paper's meaning; the fused default folds them.
			res := bestRun(cfg, in.m, in.m, pbspgemm.Options{Algorithm: pbspgemm.PB, Threads: t, DisableFusion: true})
			st := res.PB
			tb.AddRow(t, ms(st.Symbolic), ms(st.Expand), ms(st.Sort),
				ms(st.Compress), ms(st.Assemble), ms(st.Total))
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}
	fmt.Println("paper shape: expand and sort dominate and scale; RMAT sort scales worse (skewed bins).")
}

// runFig14 is the dual-socket experiment. Real NUMA placement is not
// reachable from Go, so the second socket is simulated: measured
// single-socket PB phase traffic is pushed through the paper's Table VII
// topology (DESIGN.md §4), while column algorithms get the near-2x scaling
// the paper observes for them.
func runFig14(cfg *config) {
	fmt.Println("Fig. 14 simulates the second socket with the NUMA model of internal/numa (DESIGN.md §4).")
	topo := numa.PaperSkylake
	fr := numa.DefaultRemoteFractions()

	scales := []int{13, 14}
	if cfg.full {
		scales = []int{16, 18, 20}
	}
	for _, kind := range []matrixKind{kindER, kindRMAT} {
		tb := metrics.NewTable(
			fmt.Sprintf("Fig. 14 — dual-socket model, %s ef 16 (GFLOPS)", kind.name()),
			"scale", "PB 1-socket", "PB 2-socket (model)", "PB-part 2-socket (model)",
			"Heap 2-socket (model)", "Hash 2-socket (model)", "PB still wins")
		for _, scale := range scales {
			a := kind.generate(scale, 16, cfg.seed)
			b := kind.generate(scale, 16, cfg.seed+1)
			// The NUMA model pushes the paper's per-phase traffic through
			// the Table VII topology; run the three-phase pipeline so the
			// sort/compress terms exist.
			pb := bestRun(cfg, a, b, pbspgemm.Options{Algorithm: pbspgemm.PB, DisableFusion: true})
			st := pb.PB

			phases := []numa.PhaseTraffic{
				{Name: "symbolic", Bytes: 0, SingleTime: st.Symbolic, RemoteFrac: fr["symbolic"]},
				{Name: "expand", Bytes: st.ExpandBytes, SingleTime: st.Expand, RemoteFrac: fr["expand"]},
				{Name: "sort", Bytes: st.SortBytes, SingleTime: st.Sort, RemoteFrac: fr["sort"]},
				{Name: "compress", Bytes: st.CompressBytes, SingleTime: st.Compress + st.Assemble, RemoteFrac: fr["compress"]},
			}
			dualTime := topo.PredictDual(phases)
			pbDual := float64(st.Flops) / dualTime.Seconds() / 1e9

			// Partitioned PB (Section V-D mitigation): each of the two row
			// bands runs socket-local (remote fraction ~0) but B is read
			// twice. Model: all phases local at measured efficiency, with
			// the extra B read added to expand traffic.
			partPhases := []numa.PhaseTraffic{
				{Name: "symbolic", Bytes: 0, SingleTime: st.Symbolic, RemoteFrac: 0},
				{Name: "expand", Bytes: st.ExpandBytes + 16*b.NNZ(), SingleTime: st.Expand, RemoteFrac: 0},
				{Name: "sort", Bytes: st.SortBytes, SingleTime: st.Sort, RemoteFrac: 0},
				{Name: "compress", Bytes: st.CompressBytes, SingleTime: st.Compress + st.Assemble, RemoteFrac: 0},
			}
			// Scale the expand single time by the traffic ratio so the
			// efficiency term reflects the extra read.
			partPhases[1].SingleTime = time.Duration(float64(st.Expand) *
				float64(partPhases[1].Bytes) / float64(st.ExpandBytes))
			partDualTime := topo.PredictDual(partPhases)
			pbPartDual := float64(st.Flops) / partDualTime.Seconds() / 1e9

			heap := bestRun(cfg, a, b, pbspgemm.Options{Algorithm: pbspgemm.Heap})
			hash := bestRun(cfg, a, b, pbspgemm.Options{Algorithm: pbspgemm.Hash})
			colSpeedup := topo.ColumnDualSpeedup()
			heapDual := heap.GFLOPS() * colSpeedup
			hashDual := hash.GFLOPS() * colSpeedup

			wins := "no"
			if pbDual > heapDual && pbDual > hashDual {
				wins = "yes"
			}
			tb.AddRow(scale, pb.GFLOPS(), pbDual, pbPartDual, heapDual, hashDual, wins)
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}
	fmt.Println("paper shape: PB keeps its lead for ER but loses it for RMAT on two sockets,")
	fmt.Println("because sort/compress run at cross-socket bandwidth while columns stay cached.")
}
