package main

import (
	"fmt"
	"os"
	"sort"

	"pbspgemm"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/metrics"
)

// matrixKind selects the random-matrix family of a performance sweep.
type matrixKind int

const (
	kindER matrixKind = iota
	kindRMAT
)

func (k matrixKind) name() string {
	if k == kindER {
		return "ER"
	}
	return "RMAT"
}

func (k matrixKind) generate(scale, ef int, seed uint64) *pbspgemm.CSR {
	if k == kindER {
		return gen.ERMatrix(scale, ef, seed)
	}
	return gen.RMAT(scale, ef, gen.Graph500Params, seed)
}

// perfSweep is the Fig. 7a/9a experiment: GFLOPS of the four algorithms over
// (scale, edge factor) combinations, plus the Roofline prediction for PB at
// the host's beta. It also prints the Fig. 7b/9b companion: PB's per-phase
// sustained bandwidth.
func perfSweep(cfg *config, kind matrixKind, profile machineProfile) {
	scales := []int{13, 14, 15}
	efs := []int{4, 8, 16}
	if cfg.full {
		scales = []int{16, 18, 20}
	}
	beta := betaGBs(cfg)
	fmt.Printf("host beta = %.1f GB/s; model predictions also shown for %s (beta=%.0f GB/s)\n\n",
		beta, profile.name, profile.betaGBs)

	perf := metrics.NewTable(
		fmt.Sprintf("Fig. %sa — %s matrices: GFLOPS (best of %d)", figLabel(kind), kind.name(), cfg.reps),
		"scale", "ef", "cf", "PB", "Heap", "Hash", "HashVec", "model(PB,host)", "model(PB,paper)")
	bw := metrics.NewTable(
		fmt.Sprintf("Fig. %sb — PB-SpGEMM sustained bandwidth (GB/s)", figLabel(kind)),
		"scale", "ef", "expand", "sort", "compress", "overall")

	for _, scale := range scales {
		for _, ef := range efs {
			a := kind.generate(scale, ef, cfg.seed)
			b := kind.generate(scale, ef, cfg.seed+1)
			row := []any{scale, ef}
			var pbRes *pbspgemm.Result
			var gflops []float64
			for _, alg := range kernelAlgos() {
				// The paper's figures measure the three-phase pipeline;
				// DisableFusion keeps the per-phase sort/compress bandwidth
				// rows meaningful (the fused default reports one Fuse phase).
				res := bestRun(cfg, a, b, pbspgemm.Options{Algorithm: alg, DisableFusion: true})
				gflops = append(gflops, res.GFLOPS())
				if alg == pbspgemm.PB {
					pbRes = res
				}
			}
			row = append(row, pbRes.CF)
			for _, g := range gflops {
				row = append(row, g)
			}
			hostModel := pbspgemm.PredictGFLOPS(beta, a.NNZ(), b.NNZ(), pbRes.Flops, pbRes.C.NNZ())
			paperModel := pbspgemm.PredictGFLOPS(profile.betaGBs, a.NNZ(), b.NNZ(), pbRes.Flops, pbRes.C.NNZ())
			row = append(row, hostModel, paperModel)
			perf.AddRow(row...)

			st := pbRes.PB
			bw.AddRow(scale, ef, st.ExpandGBs(), st.SortGBs(), st.CompressGBs(), st.OverallGBs())
		}
	}
	perf.Render(os.Stdout)
	fmt.Println()
	bw.Render(os.Stdout)
	if kind == kindER {
		fmt.Println("\npaper shape: PB stable and fastest at all edge factors; bandwidth near STREAM.")
	} else {
		fmt.Println("\npaper shape: PB still ahead, but skewed bins lower sustained bandwidth vs ER.")
	}
}

func figLabel(kind matrixKind) string {
	if kind == kindER {
		return "7"
	}
	return "9"
}

func runFig7(cfg *config) { perfSweep(cfg, kindER, skylakeProfile) }
func runFig9(cfg *config) { perfSweep(cfg, kindRMAT, skylakeProfile) }

// runFig8 and runFig10 are the POWER9 panels: the same experiment with model
// predictions rescaled to the POWER9's published bandwidth (the hardware
// substitution documented in DESIGN.md §4).
func runFig8(cfg *config) {
	fmt.Println("Fig. 8 substitutes the POWER9 testbed with this host + rescaled model (DESIGN.md §4).")
	perfSweep(cfg, kindER, power9Profile)
}

func runFig10(cfg *config) {
	fmt.Println("Fig. 10 substitutes the POWER9 testbed with this host + rescaled model (DESIGN.md §4).")
	perfSweep(cfg, kindRMAT, power9Profile)
}

// runFig11 squares the 12 Table VI matrices (surrogates or real files),
// sorted by ascending compression factor as the paper plots them.
func runFig11(cfg *config) {
	scaleDiv := int32(8)
	if cfg.full {
		scaleDiv = 1
	}
	type entry struct {
		name string
		cf   float64
		g    [4]float64 // PB, Heap, Hash, HashVec
		bw   float64    // PB overall GB/s
	}
	var entries []entry
	for _, s := range gen.Catalog() {
		m := loadOrGenerate(cfg, s, scaleDiv)
		e := entry{name: s.Name}
		for i, alg := range kernelAlgos() {
			res := bestRun(cfg, m, m, pbspgemm.Options{Algorithm: alg})
			e.g[i] = res.GFLOPS()
			if alg == pbspgemm.PB {
				e.cf = res.CF
				e.bw = res.PB.OverallGBs()
			}
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].cf < entries[j].cf })

	tb := metrics.NewTable(
		fmt.Sprintf("Fig. 11 — squaring real-matrix surrogates (1/%d scale), ascending cf", scaleDiv),
		"matrix", "cf", "PB", "Heap", "Hash", "HashVec", "PB GB/s", "PB wins")
	for _, e := range entries {
		best := true
		for i := 1; i < 4; i++ {
			if e.g[i] > e.g[0] {
				best = false
			}
		}
		win := "no"
		if best {
			win = "yes"
		}
		tb.AddRow(e.name, e.cf, e.g[0], e.g[1], e.g[2], e.g[3], e.bw, win)
	}
	tb.Render(os.Stdout)
	fmt.Println("\npaper shape: PB fastest for cf < 4 (left of the chart); hash takes over for cf > 4 (cant, hood).")
}
