package main

import (
	"fmt"
	"os"

	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/metrics"
)

// fig6Input generates the parameter-selection workload: ER scale 20, edge
// factor 4 in the paper; scale 16 at laptop scale.
func fig6Input(cfg *config) (*matrix.CSC, *matrix.CSR) {
	scale := 16
	if cfg.full {
		scale = 20
	}
	a := gen.ERMatrix(scale, 4, cfg.seed)
	b := gen.ERMatrix(scale, 4, cfg.seed+1)
	fmt.Printf("workload: ER scale %d, edge factor 4 (%s nnz each)\n\n",
		scale, metrics.HumanCount(a.NNZ()))
	return a.ToCSC(), b
}

// pbBest runs core.Multiply reps times, returning the stats of the fastest
// total run.
func pbBest(cfg *config, a *matrix.CSC, b *matrix.CSR, opt core.Options) *core.Stats {
	opt.Threads = pickThreads(cfg, opt.Threads)
	var best *core.Stats
	for r := 0; r < cfg.reps; r++ {
		_, st, err := core.Multiply(a, b, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multiply failed: %v\n", err)
			os.Exit(1)
		}
		if best == nil || st.Total < best.Total {
			best = st
		}
	}
	return best
}

// runFig6a sweeps the local-bin width and reports expand-phase time and
// sustained bandwidth (Fig. 6a: small bins under-utilize cache lines).
func runFig6a(cfg *config) {
	a, b := fig6Input(cfg)
	tb := metrics.NewTable("Fig. 6a — expand bandwidth vs local bin width",
		"local bin (bytes)", "tuples/bin", "expand (ms)", "expand GB/s", "total (ms)")
	for _, width := range []int{16, 64, 128, 256, 512, 1024, 2048, 4096} {
		st := pbBest(cfg, a, b, core.Options{LocalBinBytes: width})
		tb.AddRow(width, width/16, ms(st.Expand), st.ExpandGBs(), ms(st.Total))
	}
	tb.Render(os.Stdout)
	fmt.Println("\npaper: bandwidth saturates around 512 B/bin; that is the default.")
}

// runFig6b sweeps the number of global bins and reports expand and sort
// bandwidth (Fig. 6b: more bins => in-cache sorting, but smaller flushes).
// The sort column reports both the memory-traffic model (b·flop) and the
// in-cache shuffle accounting (4·b·flop) the paper quotes when it reports
// sorting bandwidth "as high as 200 GB/s".
func runFig6b(cfg *config) {
	a, b := fig6Input(cfg)
	tb := metrics.NewTable("Fig. 6b — bandwidth vs number of bins",
		"nbins", "expand GB/s", "sort GB/s (mem)", "sort GB/s (shuffle)", "total (ms)")
	for _, nbins := range []int{1, 16, 64, 256, 1024, 2048, 4096, 16384} {
		// Fig. 6b reports sort-phase bandwidth; run the three-phase
		// pipeline so the phase exists separately.
		st := pbBest(cfg, a, b, core.Options{NBins: nbins, DisableFusion: true})
		shuffle := 4 * float64(st.SortBytes)
		sortShuffleGBs := 0.0
		if st.Sort > 0 {
			sortShuffleGBs = shuffle / st.Sort.Seconds() / 1e9
		}
		tb.AddRow(st.NBins, st.ExpandGBs(), st.SortGBs(), sortShuffleGBs, ms(st.Total))
	}
	tb.Render(os.Stdout)
	fmt.Println("\npaper: 1K-2K bins balance expand flush size against in-cache sorting.")
}
