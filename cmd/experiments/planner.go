package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pbspgemm"
	"pbspgemm/internal/metrics"
)

// plannerCandidates is the kernel lineup the sweep races the planner
// against (OuterHeapNaive is excluded: the paper dismisses it and its
// quadratic merge would dominate the sweep's runtime).
func plannerCandidates() []pbspgemm.Algorithm {
	return []pbspgemm.Algorithm{
		pbspgemm.PB, pbspgemm.Heap, pbspgemm.Hash,
		pbspgemm.HashVec, pbspgemm.SPA, pbspgemm.ColumnESC,
	}
}

// plannerWorkload is one cell of the regime sweep.
type plannerWorkload struct {
	name   string
	regime string // "low-cf" or "high-cf", the paper's two model regimes
	a, b   *pbspgemm.CSR
}

// plannerWorkloads replays the paper's regime sweep at laptop (or -full)
// scale: ER and R-MAT products around cf ≈ 1–2 where the model predicts PB
// wins, and dense-ish / banded squares past the cf ≈ 4 crossover where the
// hash family should win.
func plannerWorkloads(cfg *config) []plannerWorkload {
	// Low-cf products need enough flops (tens of millions) for the
	// bandwidth-bound regime the model describes to materialize; below
	// that, constant factors dominate and any kernel can "win" by noise.
	n, scale := int32(1)<<15, 13
	mul := int32(1)
	if cfg.full {
		n, scale, mul = 1<<17, 15, 4
	}
	s := cfg.seed
	return []plannerWorkload{
		{fmt.Sprintf("ER n=%d d=8", n), "low-cf", pbspgemm.NewER(n, 8, s), pbspgemm.NewER(n, 8, s+1)},
		{fmt.Sprintf("ER n=%d d=16", n), "low-cf", pbspgemm.NewER(n, 16, s+2), pbspgemm.NewER(n, 16, s+3)},
		{fmt.Sprintf("RMAT s=%d ef=16", scale), "low-cf", pbspgemm.NewRMAT(scale, 16, s+4), pbspgemm.NewRMAT(scale, 16, s+5)},
		{fmt.Sprintf("ER n=%d d=64", 192*mul), "high-cf", pbspgemm.NewER(192*mul, 64, s+6), pbspgemm.NewER(192*mul, 64, s+7)},
		{fmt.Sprintf("ER n=%d d=48", 256*mul), "high-cf", pbspgemm.NewER(256*mul, 48, s+8), pbspgemm.NewER(256*mul, 48, s+9)},
	}
}

// plannerCaseJSON is one workload's machine-readable record.
type plannerCaseJSON struct {
	Workload    string             `json:"workload"`
	Regime      string             `json:"regime"`
	Flops       int64              `json:"flops"`
	CF          float64            `json:"cf"`
	PredictedCF float64            `json:"predicted_cf"`
	Sampled     bool               `json:"nnzc_sampled"`
	Chosen      string             `json:"chosen"`
	Fastest     string             `json:"fastest"`
	Correct     bool               `json:"correct"`
	Slowdown    float64            `json:"slowdown"` // chosen time / fastest time
	PredOuter   float64            `json:"predicted_outer_gflops"`
	PredColumn  float64            `json:"predicted_column_gflops"`
	Measured    map[string]float64 `json:"measured_gflops"`
}

// plannerJSON is the sweep's machine-readable report — the start of a
// benchmark trajectory CI archives per commit.
type plannerJSON struct {
	BetaGBs      float64           `json:"beta_gbs"`
	Threads      int               `json:"threads"`
	Reps         int               `json:"reps"`
	Seed         uint64            `json:"seed"`
	Cases        []plannerCaseJSON `json:"cases"`
	Accuracy     float64           `json:"accuracy"`      // fraction of cases where chosen == fastest
	MeanSlowdown float64           `json:"mean_slowdown"` // arithmetic mean of per-case slowdowns
}

// runPlanner replays the paper's regime sweep through the Engine's Auto
// planner and reports planner accuracy: for each workload, the roofline
// choice next to the empirically fastest kernel, with per-kernel GFLOPS.
func runPlanner(cfg *config) {
	beta := betaGBs(cfg)
	eng, err := pbspgemm.NewEngine(pbspgemm.WithBeta(beta), pbspgemm.WithThreads(cfg.threads))
	if err != nil {
		fmt.Fprintf(os.Stderr, "engine: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	candidates := plannerCandidates()

	tb := metrics.NewTable(fmt.Sprintf("Planner regime sweep — Auto vs empirically fastest (beta=%.1f GB/s)", beta),
		"workload", "regime", "cf", "chosen", "fastest", "ok", "slowdown", "pred PB", "pred col")
	report := plannerJSON{BetaGBs: beta, Threads: cfg.threads, Reps: cfg.reps, Seed: cfg.seed}
	correct := 0
	var slowdownSum float64

	for _, w := range plannerWorkloads(cfg) {
		auto, err := eng.Multiply(ctx, w.a, w.b, pbspgemm.WithAlgorithm(pbspgemm.Auto))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", w.name, err)
			os.Exit(1)
		}
		plan := auto.Plan

		best := map[pbspgemm.Algorithm]time.Duration{}
		gflops := map[string]float64{}
		fastest := candidates[0]
		for _, alg := range candidates {
			var bestRes *pbspgemm.Result
			for r := 0; r < cfg.reps; r++ {
				res, err := eng.Multiply(ctx, w.a, w.b, pbspgemm.WithAlgorithm(alg))
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s/%v: %v\n", w.name, alg, err)
					os.Exit(1)
				}
				if bestRes == nil || res.Elapsed < bestRes.Elapsed {
					bestRes = res
				}
			}
			best[alg] = bestRes.Elapsed
			gflops[alg.String()] = bestRes.GFLOPS()
			if best[alg] < best[fastest] {
				fastest = alg
			}
		}
		ok := plan.Chosen == fastest
		if ok {
			correct++
		}
		slowdown := float64(best[plan.Chosen]) / float64(best[fastest])
		slowdownSum += slowdown

		tb.AddRow(w.name, w.regime, auto.CF, plan.Chosen.String(), fastest.String(),
			ok, fmt.Sprintf("%.2fx", slowdown), plan.PredictedOuterGFLOPS, plan.PredictedColumnGFLOPS)
		report.Cases = append(report.Cases, plannerCaseJSON{
			Workload: w.name, Regime: w.regime,
			Flops: auto.Flops, CF: auto.CF, PredictedCF: plan.CF, Sampled: plan.Sampled,
			Chosen: plan.Chosen.String(), Fastest: fastest.String(),
			Correct: ok, Slowdown: slowdown,
			PredOuter: plan.PredictedOuterGFLOPS, PredColumn: plan.PredictedColumnGFLOPS,
			Measured: gflops,
		})
	}

	n := len(report.Cases)
	report.Accuracy = float64(correct) / float64(n)
	report.MeanSlowdown = slowdownSum / float64(n)
	tb.Render(os.Stdout)
	fmt.Printf("\nplanner accuracy: %d/%d (%.0f%%), mean slowdown of chosen vs fastest: %.2fx\n",
		correct, n, 100*report.Accuracy, report.MeanSlowdown)
	fmt.Println("(the model assumes the bandwidth-bound parallel regime of the paper's machines; on")
	fmt.Println(" few-core hosts or tiny inputs the constant factors it ignores decide near-ties, which")
	fmt.Println(" is exactly the gap this sweep's JSON trajectory exists to track)")

	if cfg.jsonOut != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal report: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(cfg.jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", cfg.jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", cfg.jsonOut)
	}
}
