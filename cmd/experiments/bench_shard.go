package main

// The shard regimes of the bench trajectory: the 2D block-sharded
// coordinator (internal/shard) measured against a direct Engine call on the
// same input. The 1×1×1 regime is the coordination-overhead acceptance bar —
// a degenerate grid adds only the coordinator's bookkeeping around one
// dispatch, so -gate holds it within 5% of the direct call. The split-grid
// regime is informational: it carries the partition/reduce/assemble cost of
// a real multi-block product in the trajectory.

import (
	"context"
	"fmt"
	"os"
	"time"

	"pbspgemm"
	"pbspgemm/internal/shard"
)

const (
	shardDirectRegime = "shard-direct-pb"
	shardOneRegime    = "shard-1x1-coordinator"
	shardGridRegime   = "shard-grid-coordinator"
)

type benchShardRegime struct {
	Name    string  `json:"name"`
	Grid    string  `json:"grid,omitempty"`
	Blocks  int     `json:"blocks,omitempty"`
	Threads int     `json:"threads"`
	Flops   int64   `json:"flops"`
	NsPerOp int64   `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops"`
	// VsDirect is this regime's ns/op as a ratio of the direct-call regime
	// measured in the same process — the number the ≤ 1.05 gate keys on.
	VsDirect float64 `json:"vs_direct,omitempty"`
}

// runShardBench measures the shard regimes and appends them to the report.
// All three share one Engine, one input pair and one warmed workspace pool,
// so the 1×1-vs-direct ratio isolates pure coordination overhead.
func runShardBench(cfg *config, report *benchReport) {
	threads := pickThreads(cfg, 0)
	opts := []pbspgemm.Option{pbspgemm.WithThreads(threads)}
	if cfg.beta > 0 {
		opts = append(opts, pbspgemm.WithBeta(cfg.beta))
	}
	eng, err := pbspgemm.NewEngine(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench shard: %v\n", err)
		os.Exit(1)
	}
	// Fixed-seed ER at the acceptance pair's working-set scale.
	a := pbspgemm.NewER(1<<13, 8, 1)
	b := pbspgemm.NewER(1<<13, 8, 2)

	one, err := shard.New(shard.Config{Local: eng})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench shard: %v\n", err)
		os.Exit(1)
	}
	// A block target well under the product's predicted footprint, so the
	// grid actually splits and the partition/reduce/assemble path is on the
	// measured clock.
	grid, err := shard.New(shard.Config{Local: eng, MaxBlockBytes: 1 << 20})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench shard: %v\n", err)
		os.Exit(1)
	}

	reps := cfg.reps
	if reps < 1 {
		reps = 1
	}
	measure := func(name string, run func() (flops int64, gridStr string, blocks int, err error)) benchShardRegime {
		// Warm-up grows the engine's pooled workspaces (and, for the grid
		// regime, triggers any one-shot planner calibration) off the clock.
		if _, _, _, err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "bench shard %s: %v\n", name, err)
			os.Exit(1)
		}
		var best time.Duration
		var flops int64
		var gridStr string
		var blocks int
		for r := 0; r < reps; r++ {
			start := time.Now()
			f, g, nb, err := run()
			elapsed := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench shard %s: %v\n", name, err)
				os.Exit(1)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
			flops, gridStr, blocks = f, g, nb
		}
		return benchShardRegime{
			Name:    name,
			Grid:    gridStr,
			Blocks:  blocks,
			Threads: threads,
			Flops:   flops,
			NsPerOp: best.Nanoseconds(),
			GFLOPS:  float64(flops) / best.Seconds() / 1e9,
		}
	}

	ctx := context.Background()
	runDirect := func() (int64, string, int, error) {
		res, err := eng.Multiply(ctx, a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
		if err != nil {
			return 0, "", 0, err
		}
		return res.Flops, "", 0, nil
	}
	viaCoord := func(c *shard.Coordinator) func() (int64, string, int, error) {
		return func() (int64, string, int, error) {
			res, err := c.Multiply(ctx, a, b)
			if err != nil {
				return 0, "", 0, err
			}
			return res.Flops, res.Grid.String(), res.Blocks, nil
		}
	}
	// The overhead pair is measured interleaved — direct and 1×1 alternate
	// rep by rep in one loop — so host load drift hits both sides equally
	// and the gated ratio stays a coordination-overhead number, not a
	// which-window-was-noisier number.
	direct, oneR := measurePair(shardDirectRegime, runDirect, shardOneRegime, viaCoord(one), threads, reps)
	gridR := measure(shardGridRegime, viaCoord(grid))
	oneR.VsDirect = float64(oneR.NsPerOp) / float64(direct.NsPerOp)
	gridR.VsDirect = float64(gridR.NsPerOp) / float64(direct.NsPerOp)

	for _, r := range []benchShardRegime{direct, oneR, gridR} {
		extra := ""
		if r.Grid != "" {
			extra = fmt.Sprintf("  grid %s (%d blocks)", r.Grid, r.Blocks)
		}
		if r.VsDirect > 0 {
			extra += fmt.Sprintf("  %.3f× direct", r.VsDirect)
		}
		fmt.Printf("%-25s %25s %10d %8.4f%s\n", r.Name, "", r.NsPerOp, r.GFLOPS, extra)
		report.Shard = append(report.Shard, r)
	}
}

// measurePair measures two runners interleaved: one warm-up each, then reps
// alternating (x, y) iterations, best-of kept per side. Sharing each loop
// iteration between the two sides is what keeps their ratio honest on a
// loaded host.
func measurePair(nameX string, runX func() (int64, string, int, error),
	nameY string, runY func() (int64, string, int, error),
	threads, reps int) (benchShardRegime, benchShardRegime) {
	side := func(name string, run func() (int64, string, int, error)) (*benchShardRegime, func()) {
		r := &benchShardRegime{Name: name, Threads: threads}
		if _, _, _, err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "bench shard %s: %v\n", name, err)
			os.Exit(1)
		}
		return r, func() {
			start := time.Now()
			f, g, nb, err := run()
			elapsed := time.Since(start)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench shard %s: %v\n", name, err)
				os.Exit(1)
			}
			if r.NsPerOp == 0 || elapsed.Nanoseconds() < r.NsPerOp {
				r.NsPerOp = elapsed.Nanoseconds()
			}
			r.Flops, r.Grid, r.Blocks = f, g, nb
		}
	}
	x, stepX := side(nameX, runX)
	y, stepY := side(nameY, runY)
	for r := 0; r < reps; r++ {
		stepX()
		stepY()
	}
	x.GFLOPS = float64(x.Flops) / (float64(x.NsPerOp) / 1e9) / 1e9
	y.GFLOPS = float64(y.Flops) / (float64(y.NsPerOp) / 1e9) / 1e9
	return *x, *y
}

// gateShardBench holds the 1×1×1 coordinator within 5% of the direct Engine
// call — the sharded route must be free when the grid is degenerate.
// Returns true on failure.
func gateShardBench(report *benchReport) bool {
	var direct, one *benchShardRegime
	for i := range report.Shard {
		switch report.Shard[i].Name {
		case shardDirectRegime:
			direct = &report.Shard[i]
		case shardOneRegime:
			one = &report.Shard[i]
		}
	}
	if direct == nil || one == nil {
		fmt.Fprintln(os.Stderr, "bench gate: shard regimes missing from the run")
		os.Exit(1)
	}
	if float64(one.NsPerOp) > 1.05*float64(direct.NsPerOp) {
		fmt.Fprintf(os.Stderr, "bench gate: SHARD OVERHEAD on %s: 1x1 coordinator %d ns/op > 1.05 × direct %d ns/op (%.3f×)\n",
			shardOneRegime, one.NsPerOp, direct.NsPerOp, one.VsDirect)
		return true
	}
	fmt.Printf("bench gate: 1x1 coordinator %d ns/op ≤ 1.05 × direct %d ns/op (%.3f×)\n",
		one.NsPerOp, direct.NsPerOp, one.VsDirect)
	return false
}
