package main

import (
	"fmt"
	"os"

	"pbspgemm/internal/metrics"
	"pbspgemm/internal/roofline"
)

// runFig3 prints the Roofline chart data of Fig. 3: the three AI bounds and
// the attainable GFLOPS at beta, for ER-like multiplications (the paper draws
// the chart at cf=1 and sweeps AI; we tabulate the bounds over cf, which is
// the quantity that moves AI for SpGEMM).
func runFig3(cfg *config) {
	beta := betaGBs(cfg)
	fmt.Printf("beta (STREAM) = %.1f GB/s; b = %d bytes/tuple\n", beta, 16)
	fmt.Printf("paper reference machine: beta = 50 GB/s => upper 3.13, outer 0.63 GFLOPS at cf=1\n\n")

	cfs := []float64{1, 1.5, 2, 3, 4, 6, 8, 16}
	pts := roofline.FigureThree(beta, roofline.DefaultBytesPerNonzero, cfs)
	tb := metrics.NewTable("Fig. 3 — Roofline bounds (host beta)",
		"cf", "AI_upper", "AI_col", "AI_outer", "GFLOPS_upper", "GFLOPS_col", "GFLOPS_outer")
	for _, p := range pts {
		tb.AddRow(p.CF, fmt.Sprintf("1/%d", int(1/p.AIUpper+0.5)),
			fmt.Sprintf("%.5f", p.AICol), fmt.Sprintf("%.5f", p.AIOuter),
			p.PerfUpper, p.PerfCol, p.PerfOuter)
	}
	tb.Render(os.Stdout)

	fmt.Printf("\nmodeled PB/hash crossover at etaCol=0.55: cf = %.2f (paper: ~4)\n",
		roofline.CrossoverCF(0.55, 1.0))
}

// runTables123 prints the qualitative classification tables.
func runTables123(cfg *config) {
	t1 := metrics.NewTable("Table I — SpGEMM algorithm classes", "algorithm", "input access", "output formation")
	for _, c := range roofline.TableI() {
		t1.AddRow(c.Name, c.InputAccess, c.OutputMethod)
	}
	t1.Render(os.Stdout)
	fmt.Println()

	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	t2 := metrics.NewTable("Table II — data access patterns (ER, d nnz/col)",
		"algorithm", "reads A", "reads B", "reads Chat", "reads C", "A streamed", "A full lines")
	for _, r := range roofline.TableII() {
		t2.AddRow(r.Algorithm, r.ReadsA, r.ReadsB, r.ReadsChat, r.ReadsC,
			yn(r.StreamedA), yn(r.FullLinesA))
	}
	t2.Render(os.Stdout)
	fmt.Println()

	t3 := metrics.NewTable("Table III — PB-SpGEMM phase costs",
		"phase", "complexity", "memory traffic", "parallelism")
	for _, r := range roofline.TableIII() {
		t3.AddRow(r.Phase, r.Complexity, r.Bandwidth, r.Parallelism)
	}
	t3.Render(os.Stdout)
}
