package main

import (
	"testing"

	"pbspgemm"
	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
)

func TestFigLabel(t *testing.T) {
	if figLabel(kindER) != "7" || figLabel(kindRMAT) != "9" {
		t.Fatal("figure labels wrong")
	}
	if kindER.name() != "ER" || kindRMAT.name() != "RMAT" {
		t.Fatal("kind names wrong")
	}
}

func TestPickThreads(t *testing.T) {
	cfg := &config{threads: 4}
	if pickThreads(cfg, 0) != 4 {
		t.Fatal("config threads not used")
	}
	if pickThreads(cfg, 2) != 2 {
		t.Fatal("override not honoured")
	}
}

func TestMatrixKindGenerate(t *testing.T) {
	er := kindER.generate(8, 4, 1)
	if er.NumRows != 256 || er.NNZ() != 256*4 {
		t.Fatalf("ER generate wrong: %dx%d nnz=%d", er.NumRows, er.NumCols, er.NNZ())
	}
	rm := kindRMAT.generate(8, 4, 1)
	if rm.NumRows != 256 {
		t.Fatalf("RMAT generate wrong shape %d", rm.NumRows)
	}
}

func TestBestRunReturnsValidResult(t *testing.T) {
	cfg := &config{reps: 2}
	a := gen.ERMatrix(7, 4, 1)
	res := bestRun(cfg, a, a, pbspgemm.Options{})
	if res == nil || res.C == nil || res.Flops <= 0 {
		t.Fatal("bestRun returned invalid result")
	}
}

func TestBetaOverride(t *testing.T) {
	cfg := &config{beta: 42}
	if betaGBs(cfg) != 42 {
		t.Fatal("beta override ignored")
	}
}

func TestThreadSteps(t *testing.T) {
	steps := threadSteps()
	if len(steps) == 0 || steps[0] != 1 {
		t.Fatalf("threadSteps = %v", steps)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Fatalf("threadSteps not increasing: %v", steps)
		}
	}
}

func TestExperimentsListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range experimentsList() {
		if e.run == nil || e.desc == "" {
			t.Fatalf("experiment %q incomplete", e.name)
		}
		ids[e.name] = true
	}
	for _, want := range []string{"fig3", "fig6a", "fig6b", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "table5", "table6", "table7",
		"tables123", "planner", "bench"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestPlannerWorkloadsCoverBothRegimes(t *testing.T) {
	cfg := &config{seed: 42}
	regimes := map[string]int{}
	for _, w := range plannerWorkloads(cfg) {
		if w.a == nil || w.b == nil || w.name == "" {
			t.Fatalf("workload %+v incomplete", w)
		}
		if w.a.NumCols != w.b.NumRows {
			t.Fatalf("workload %s shapes disagree", w.name)
		}
		regimes[w.regime]++
	}
	if regimes["low-cf"] == 0 || regimes["high-cf"] == 0 {
		t.Fatalf("sweep must cover both model regimes, got %v", regimes)
	}
	if len(plannerCandidates()) < 5 {
		t.Fatal("planner sweep should race at least five kernels")
	}
}

func TestBenchCaseProducesValidRegime(t *testing.T) {
	cfg := &config{reps: 1}
	c := benchCase{"er-test", "ER", 8, 4, 1, 2, 0, 1, false, 0, "", false, false}
	r, err := runBenchCase(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flops <= 0 || r.NNZC <= 0 || r.NsPerOp <= 0 || r.GFLOPS <= 0 {
		t.Fatalf("invalid regime: %+v", r)
	}
	if r.Layout != "squeezed" || r.TupleBytes != 12 {
		t.Fatalf("small ER regime should squeeze: layout=%s bytes=%d", r.Layout, r.TupleBytes)
	}
	if r.Threads != 1 {
		t.Fatalf("threadsCap=1 not honored: %d", r.Threads)
	}
	// The typed-mode dispatches land on their dedicated layouts.
	c.name, c.mode = "er-test-pattern", "pattern"
	if r, err = runBenchCase(cfg, c); err != nil {
		t.Fatal(err)
	} else if r.Layout != "pattern" || r.TupleBytes != 4 || r.Mode != "pattern" {
		t.Fatalf("pattern regime: layout=%s bytes=%d mode=%s", r.Layout, r.TupleBytes, r.Mode)
	}
	c.name, c.mode = "er-test-f32", "f32"
	if r, err = runBenchCase(cfg, c); err != nil {
		t.Fatal(err)
	} else if r.Layout != "narrow" || r.TupleBytes != 8 || r.Mode != "f32" {
		t.Fatalf("f32 regime: layout=%s bytes=%d mode=%s", r.Layout, r.TupleBytes, r.Mode)
	}
}

func TestBenchCasesFixedSeedsAndLayoutPair(t *testing.T) {
	cases := benchCases()
	var sq, wide bool
	for _, c := range cases {
		if c.seedA == 0 || c.seedB == 0 {
			t.Fatalf("%s: seeds must be fixed and nonzero", c.name)
		}
		if c.kind == "ER" && c.scale == 13 {
			switch c.layout {
			case core.LayoutSqueezed:
				sq = true
			case core.LayoutWide:
				wide = true
			}
		}
	}
	if !sq || !wide {
		t.Fatal("trajectory must carry a squeezed/wide pair on the low-cf ER regime")
	}
}

// TestBenchCasesCarryFusedPairs: the trajectory must pin fused-vs-unfused
// on the same high-cf R-MAT input, single-threaded (so the allocs gate
// bites), in both layouts, and the -gate names must resolve.
func TestBenchCasesCarryFusedPairs(t *testing.T) {
	byName := map[string]benchCase{}
	for _, c := range benchCases() {
		byName[c.name] = c
	}
	f, okF := byName[gateFusedRegime]
	u, okU := byName[gateUnfusedRegime]
	if !okF || !okU {
		t.Fatalf("gate regimes missing: fused=%v unfused=%v", okF, okU)
	}
	if f.unfused || !u.unfused {
		t.Fatal("gate pair fusion flags wrong")
	}
	if f.kind != "RMAT" || u.kind != "RMAT" {
		t.Fatal("gate pair must be the R-MAT regime")
	}
	pair := [2]benchCase{f, u}
	for _, c := range pair {
		if c.threadsCap != 1 {
			t.Fatalf("%s: gate regimes must pin Threads=1 for the allocs gate", c.name)
		}
	}
	if f.scale != u.scale || f.ef != u.ef || f.seedA != u.seedA || f.seedB != u.seedB || f.layout != u.layout {
		t.Fatal("gate pair must share identical inputs and layout")
	}
	wf, okWF := byName["rmat-highcf-wide-fused"]
	wu, okWU := byName["rmat-highcf-wide-unfused"]
	if !okWF || !okWU || wf.layout != core.LayoutWide || wu.layout != core.LayoutWide {
		t.Fatal("trajectory must carry the wide-layout fused pair too")
	}
	// The Boolean-regime gate compares the pattern layout against the
	// squeezed fused regime, so the two must share identical inputs and
	// single-threaded pooling.
	p, okP := byName[gatePatternRegime]
	if !okP || p.mode != "pattern" {
		t.Fatal("gate pattern regime missing or not pattern-mode")
	}
	if p.threadsCap != 1 || p.unfused || p.budget != 0 {
		t.Fatalf("%s must be single-threaded, fused, unbudgeted", p.name)
	}
	if p.scale != f.scale || p.ef != f.ef || p.seedA != f.seedA || p.seedB != f.seedB {
		t.Fatal("pattern gate regime must share the squeezed comparator's input")
	}
}

// TestBenchScalarComparatorsAndMT: withScalarComparators must append one
// scalar-oracle twin per batched gate regime (identical input, DisableBatch
// on), and the trajectory must carry multi-threaded acceptance regimes.
func TestBenchScalarComparatorsAndMT(t *testing.T) {
	cases := withScalarComparators(benchCases())
	byName := map[string]benchCase{}
	for _, c := range cases {
		byName[c.name] = c
	}
	for _, name := range batchedGateRegimes {
		b, okB := byName[name]
		s, okS := byName[name+"-scalar"]
		if !okB || !okS {
			t.Fatalf("batched gate pair %s incomplete", name)
		}
		if b.scalar || !s.scalar {
			t.Fatalf("%s: scalar flags wrong", name)
		}
		s.name, s.scalar = b.name, b.scalar
		if s != b {
			t.Fatalf("%s: scalar twin must differ only in name and scalar flag", name)
		}
	}
	for _, name := range []string{"er-lowcf-squeezed-mt", "rmat-highcf-fused-mt"} {
		c, ok := byName[name]
		if !ok || c.threadsCap != 0 {
			t.Fatalf("multi-threaded regime %s missing or thread-capped", name)
		}
	}
}

// TestBenchCancelPollComparators: withCancelPollComparators must append one
// no-op-hook twin per acceptance regime, differing only in name and hook, so
// the ≤1% poll-overhead gate always finds its pairs.
func TestBenchCancelPollComparators(t *testing.T) {
	cases := withCancelPollComparators(benchCases())
	byName := map[string]benchCase{}
	for _, c := range cases {
		byName[c.name] = c
	}
	for _, name := range batchedGateRegimes {
		b, okB := byName[name]
		h, okH := byName[name+"-cancelpoll"]
		if !okB || !okH {
			t.Fatalf("cancel-poll gate pair %s incomplete", name)
		}
		if b.cancelHook || !h.cancelHook {
			t.Fatalf("%s: cancelHook flags wrong", name)
		}
		h.name, h.cancelHook = b.name, b.cancelHook
		if h != b {
			t.Fatalf("%s: cancel-poll twin must differ only in name and hook", name)
		}
	}
}
