package main

import (
	"fmt"
	"os"
	"path/filepath"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/metrics"
	"pbspgemm/internal/mmio"
	"pbspgemm/internal/numa"
	"pbspgemm/internal/par"
)

// runTable5 reproduces Table V: STREAM Copy/Scale/Add/Triad. The paper
// reports one and two sockets; this host exposes one memory domain, so we
// report full-core and half-core runs (half cores ≈ one socket on a
// dual-socket host) next to the paper's published rows.
func runTable5(cfg *config) {
	n := 1 << 22
	if cfg.full {
		n = 1 << 25
	}
	threads := par.DefaultThreads(cfg.threads)
	half := threads / 2
	if half < 1 {
		half = 1
	}

	tb := metrics.NewTable("Table V — STREAM bandwidth (GB/s, best of reps)",
		"configuration", "Copy", "Scale", "Add", "Triad")
	addRow := func(name string, t int) {
		res := streamTable(n, t, cfg.reps)
		tb.AddRow(name, res[0].BestGBs, res[1].BestGBs, res[2].BestGBs, res[3].BestGBs)
	}
	addRow(fmt.Sprintf("host, %d threads", threads), threads)
	if half != threads {
		addRow(fmt.Sprintf("host, %d threads", half), half)
	}
	tb.AddRow("paper Skylake 1 socket", 47.40, 46.85, 54.00, 57.04)
	tb.AddRow("paper Skylake 2 sockets", 97.73, 87.43, 107.00, 108.42)
	tb.Render(os.Stdout)
}

// runTable6 prints Table VI: the 12 matrices with published statistics next
// to the statistics our surrogates (or real .mtx files via -mtxdir) achieve.
func runTable6(cfg *config) {
	scaleDiv := int32(8)
	if cfg.full {
		scaleDiv = 1
	}
	fmt.Printf("surrogate scale divisor: %d (use -full for Table VI sizes)\n", scaleDiv)
	tb := metrics.NewTable("Table VI — real matrices: published vs generated",
		"graph", "n", "nnz", "d", "flops", "nnz(C)", "cf", "| pub d", "pub cf")
	for _, s := range gen.Catalog() {
		m := loadOrGenerate(cfg, s, scaleDiv)
		st := gen.MeasureStats(m)
		tb.AddRow(s.Name, metrics.HumanCount(int64(st.N)), metrics.HumanCount(st.NNZ),
			st.D, metrics.HumanCount(st.Flops), metrics.HumanCount(st.NNZC), st.CF,
			fmt.Sprintf("| %.2f", s.Degree), s.PubCF)
	}
	tb.Render(os.Stdout)
}

// loadOrGenerate returns the real matrix from -mtxdir when present, else the
// surrogate.
func loadOrGenerate(cfg *config, s gen.Surrogate, scaleDiv int32) *matrix.CSR {
	if cfg.mtxdir != "" {
		path := filepath.Join(cfg.mtxdir, s.Name+".mtx")
		if m, err := mmio.ReadFile(path); err == nil {
			fmt.Printf("loaded real matrix %s\n", path)
			return m
		}
	}
	return s.Generate(scaleDiv, cfg.seed)
}

// runTable7 prints Table VII: the NUMA bandwidth/latency matrix. The remote
// cells come from the paper's published topology (simulated — Go has no NUMA
// placement); the local cell is additionally measured on this host with a
// pointer-chase (latency) and STREAM copy (bandwidth).
func runTable7(cfg *config) {
	topo := numa.PaperSkylake
	tv := topo.TableVII()
	tb := metrics.NewTable("Table VII — NUMA bandwidth and latency (paper topology)",
		"", "socket 0", "socket 1")
	for i := 0; i < 2; i++ {
		tb.AddRow(fmt.Sprintf("socket %d", i),
			fmt.Sprintf("%.2f GB/s, %.1f ns", tv[i][0].GBs, tv[i][0].Ns),
			fmt.Sprintf("%.2f GB/s, %.1f ns", tv[i][1].GBs, tv[i][1].Ns))
	}
	tb.Render(os.Stdout)

	bytes := int64(32 << 20)
	if cfg.full {
		bytes = 256 << 20
	}
	latency := numa.MeasureLatencyNs(bytes, cfg.seed)
	beta := betaGBs(cfg)
	fmt.Printf("\nhost local measurements: %.2f GB/s (STREAM triad), %.1f ns (pointer chase, %d MiB)\n",
		beta, latency, bytes>>20)
	fmt.Printf("remote cells are simulated from the paper's topology (see DESIGN.md §4)\n")
}
