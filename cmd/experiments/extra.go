package main

import (
	"fmt"
	"os"

	"pbspgemm"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/metrics"
)

// runTallSkinny is the experiment the paper defers for space ("multiplying a
// square matrix by a tall-and-skinny matrix as needed in betweenness
// centrality algorithms", Section IV-C): A (n×n, ER) times F (n×k dense-ish
// frontier matrix with f nonzeros per column), sweeping the skinny width k.
// The interesting shape: PB's bins follow rows of A, so a narrow B shrinks
// flop and bins while the A-streaming advantage persists.
func runTallSkinny(cfg *config) {
	scale := 14
	if cfg.full {
		scale = 18
	}
	n := int32(1) << scale
	a := gen.ER(n, 8, cfg.seed)
	fmt.Printf("A: ER scale %d, ef 8 (%s nnz); F: n×k with 32 nnz per column\n\n",
		scale, metrics.HumanCount(a.NNZ()))

	tb := metrics.NewTable("Extra — tall-skinny multiply A(n×n)·F(n×k), GFLOPS",
		"k", "cf", "PB", "Heap", "Hash", "HashVec")
	for _, k := range []int32{4, 16, 64, 256, 1024} {
		f := tallSkinny(n, k, 32, cfg.seed+uint64(k))
		row := []any{int(k)}
		var cf float64
		var gflops []float64
		for _, alg := range kernelAlgos() {
			res := bestRun(cfg, a, f, pbspgemm.Options{Algorithm: alg})
			if alg == pbspgemm.PB {
				cf = res.CF
			}
			gflops = append(gflops, res.GFLOPS())
		}
		row = append(row, cf)
		for _, g := range gflops {
			row = append(row, g)
		}
		tb.AddRow(row...)
	}
	tb.Render(os.Stdout)
	fmt.Println("\nthe paper defers this workload; it is the betweenness-centrality shape [1].")
}

// tallSkinny generates an n×k matrix with f nonzeros per column (a BFS
// frontier batch).
func tallSkinny(n, k int32, f int, seed uint64) *pbspgemm.CSR {
	r := gen.NewRNG(seed)
	coo := &matrix.COO{NumRows: n, NumCols: k}
	seen := map[int32]struct{}{}
	for j := int32(0); j < k; j++ {
		clear(seen)
		for len(seen) < f {
			i := r.Intn(n)
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, 1)
		}
	}
	return coo.ToCSR()
}

// runAblations quantifies the design choices DESIGN.md calls out:
// propagation blocking itself (nbins=1 == unblocked outer ESC), local bins
// (1-tuple bins == direct global writes), the partitioned variant's extra
// B reads, and the column-ESC baseline that shares output formation but not
// input streaming.
func runAblations(cfg *config) {
	scale := 14
	if cfg.full {
		scale = 18
	}
	a := gen.ERMatrix(scale, 8, cfg.seed)
	b := gen.ERMatrix(scale, 8, cfg.seed+1)
	fmt.Printf("workload: ER scale %d, ef 8\n\n", scale)

	tb := metrics.NewTable("Ablations (best of reps)", "variant", "time (ms)", "GFLOPS", "expand GB/s", "sort|fuse GB/s")
	addPB := func(name string, opt pbspgemm.Options) {
		res := bestRun(cfg, a, b, opt)
		st := res.PB
		sortGBs := st.SortGBs()
		if st.Fused {
			sortGBs = st.FuseGBs()
		}
		tb.AddRow(name, ms(res.Elapsed), res.GFLOPS(), st.ExpandGBs(), sortGBs)
	}
	addPB("PB (fused default)", pbspgemm.Options{})
	addPB("PB (unfused three-pass)", pbspgemm.Options{DisableFusion: true})
	addPB("no blocking (nbins=1)", pbspgemm.Options{NBins: 1})
	addPB("no local bins (1-tuple)", pbspgemm.Options{LocalBinBytes: 16})
	addPB("tiny cache budget (64 KiB)", pbspgemm.Options{L2CacheBytes: 64 << 10})

	partRes, err := pbspgemm.MultiplyPartitioned(a, b, 2, pbspgemm.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tb.AddRow("partitioned (2 bands)", ms(partRes.Elapsed), partRes.GFLOPS(),
		partRes.PB.ExpandGBs(), partRes.PB.FuseGBs())

	escRes := bestRun(cfg, a, b, pbspgemm.Options{Algorithm: pbspgemm.ColumnESC})
	tb.AddRow("column ESC (no outer product)", ms(escRes.Elapsed), escRes.GFLOPS(), "-", "-")
	tb.Render(os.Stdout)
}
