// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each subcommand prints the same rows/series the
// paper reports; absolute numbers reflect this host, while the Roofline
// predictions printed alongside use the host's measured STREAM bandwidth so
// the paper's model-vs-measurement comparison is reproduced faithfully.
//
// Usage:
//
//	experiments <id> [flags]
//
// where <id> is one of: fig3, tables123, table5, table6, table7, fig6a,
// fig6b, fig7, fig8, fig9, fig10, fig11, fig12, fig13, fig14, tallskinny,
// ablations, planner, bench, all.
//
// Common flags:
//
//	-full        paper-scale workloads (default: laptop-scale)
//	-reps N      repetitions per measurement, best is kept (default 3)
//	-threads N   worker count (default GOMAXPROCS)
//	-seed N      generator seed (default 42)
//	-beta GB/s   override measured STREAM bandwidth in model outputs
//	-mtxdir DIR  load real SuiteSparse .mtx files for fig11/table6
//	-json PATH   write a machine-readable report (planner and bench)
//	-gate        bench: fail on fused-vs-unfused or steady-state alloc regressions
package main

import (
	"flag"
	"fmt"
	"os"
)

// config carries the common harness flags.
type config struct {
	full     bool
	reps     int
	threads  int
	seed     uint64
	beta     float64 // 0 = measure with STREAM
	mtxdir   string
	jsonOut  string // planner: write the machine-readable report here
	gate     bool   // bench: fail on fused-vs-unfused or allocs regression
	baseline string // bench: prior -json report to diff ns/op against
}

type experiment struct {
	name string
	desc string
	run  func(cfg *config)
}

func experimentsList() []experiment {
	return []experiment{
		{"fig3", "Roofline bounds for SpGEMM (Fig. 3)", runFig3},
		{"tables123", "Algorithm classification and access patterns (Tables I-III)", runTables123},
		{"table5", "STREAM bandwidth (Table V)", runTable5},
		{"table6", "Real-matrix statistics, published vs surrogate (Table VI)", runTable6},
		{"table7", "NUMA bandwidth/latency matrix (Table VII)", runTable7},
		{"fig6a", "Expand bandwidth vs local bin width (Fig. 6a)", runFig6a},
		{"fig6b", "Expand/sort bandwidth vs number of bins (Fig. 6b)", runFig6b},
		{"fig7", "ER matrices: performance and bandwidth (Fig. 7a/7b)", runFig7},
		{"fig8", "ER matrices, POWER9 profile (Fig. 8)", runFig8},
		{"fig9", "RMAT matrices: performance and bandwidth (Fig. 9a/9b)", runFig9},
		{"fig10", "RMAT matrices, POWER9 profile (Fig. 10)", runFig10},
		{"fig11", "Squaring real matrices, ascending cf (Fig. 11)", runFig11},
		{"fig12", "Strong scaling, ER and RMAT scale 16 ef 16 (Fig. 12)", runFig12},
		{"fig13", "Per-phase scaling breakdown (Fig. 13)", runFig13},
		{"fig14", "Dual-socket performance via NUMA model (Fig. 14)", runFig14},
		{"tallskinny", "Square x tall-skinny multiply (deferred by the paper, Sec. IV-C)", runTallSkinny},
		{"ablations", "Design-choice ablations: blocking, local bins, partitioning, ESC", runAblations},
		{"planner", "Auto planner regime sweep: roofline choice vs empirically fastest", runPlanner},
		{"bench", "Benchmark trajectory: GFLOPS, per-phase GB/s, allocs/op per regime (-json)", runBench},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	id := os.Args[1]
	fs := flag.NewFlagSet(id, flag.ExitOnError)
	cfg := &config{}
	fs.BoolVar(&cfg.full, "full", false, "run paper-scale workloads")
	fs.IntVar(&cfg.reps, "reps", 3, "repetitions per measurement (best kept)")
	fs.IntVar(&cfg.threads, "threads", 0, "worker threads (0 = GOMAXPROCS)")
	fs.Uint64Var(&cfg.seed, "seed", 42, "generator seed")
	fs.Float64Var(&cfg.beta, "beta", 0, "bandwidth GB/s for model output (0 = measure)")
	fs.StringVar(&cfg.mtxdir, "mtxdir", "", "directory with real SuiteSparse .mtx files")
	fs.StringVar(&cfg.jsonOut, "json", "", "write a machine-readable report to this path (planner, bench)")
	fs.BoolVar(&cfg.gate, "gate", false, "bench: exit nonzero if the fused pipeline is slower than unfused on the high-cf regime or a pooled regime allocates")
	fs.StringVar(&cfg.baseline, "baseline", "", "bench: prior -json report to diff acceptance-regime ns/op against (informational)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	if id == "all" {
		for _, e := range experimentsList() {
			fmt.Printf("\n######## %s — %s ########\n", e.name, e.desc)
			e.run(cfg)
		}
		return
	}
	for _, e := range experimentsList() {
		if e.name == id {
			e.run(cfg)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q\n\n", id)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments <id> [flags]")
	fmt.Fprintln(os.Stderr, "experiments:")
	for _, e := range experimentsList() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
	}
	fmt.Fprintln(os.Stderr, "  all        run everything")
}
