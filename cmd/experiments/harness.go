package main

import (
	"fmt"
	"os"
	"time"

	"pbspgemm"
	"pbspgemm/internal/stream"
)

// betaGBs returns the bandwidth for model outputs: the -beta override or a
// STREAM measurement (cached per process).
var measuredBeta float64

func betaGBs(cfg *config) float64 {
	if cfg.beta > 0 {
		return cfg.beta
	}
	if measuredBeta == 0 {
		n := 1 << 22 // quick: 32 MiB arrays
		if cfg.full {
			n = 1 << 25
		}
		measuredBeta = pbspgemm.MeasureBandwidth(n, cfg.threads)
	}
	return measuredBeta
}

// bestRun multiplies a*b with alg cfg.reps times and returns the fastest
// result (standard discipline for bandwidth-bound kernels).
func bestRun(cfg *config, a, b *pbspgemm.CSR, opt pbspgemm.Options) *pbspgemm.Result {
	opt.Threads = pickThreads(cfg, opt.Threads)
	var best *pbspgemm.Result
	for r := 0; r < cfg.reps; r++ {
		res, err := pbspgemm.Multiply(a, b, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "multiply failed: %v\n", err)
			os.Exit(1)
		}
		if best == nil || res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best
}

func pickThreads(cfg *config, override int) int {
	if override > 0 {
		return override
	}
	return cfg.threads
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// kernelAlgos is the four-algorithm lineup of the paper's figures.
func kernelAlgos() []pbspgemm.Algorithm { return pbspgemm.Algorithms() }

// machineProfile describes an evaluation machine for prediction re-scaling
// (Fig. 8 / Fig. 10 run on POWER9; we rescale Roofline predictions to its
// published STREAM bandwidth alongside host measurements — see DESIGN.md §4).
type machineProfile struct {
	name    string
	betaGBs float64
}

var (
	skylakeProfile = machineProfile{"Intel Skylake 8160 (1 socket, paper)", 50}
	power9Profile  = machineProfile{"IBM POWER9 (1 socket, paper)", 125} // half of 250 GB/s dual
)

// streamTable runs STREAM at the given thread count and returns best GB/s per
// kernel in canonical order.
func streamTable(n, threads, reps int) []stream.Result {
	return stream.Run(stream.Options{N: n, Threads: threads, Reps: reps})
}
