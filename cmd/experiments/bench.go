package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// The benchmark trajectory harness: a fixed set of fixed-seed ER and R-MAT
// regimes measured with the core engine on a pooled workspace, reported as
// GFLOPS, per-phase GB/s and allocs/op. CI runs `bench -json bench.json` on
// every push and uploads it as the bench-trajectory artifact, so each PR
// leaves a comparable perf baseline behind; the committed BENCH_PR4.json is
// the one-off local baseline the squeezed-tuple PR was validated against.
// Regimes pin both tuple layouts on the low-cf ER workload, the squeezed
// pipeline's headline case.

// benchSchema versions the JSON so future PRs can evolve the report without
// breaking trajectory tooling.
const benchSchema = "pbspgemm-bench/v1"

type benchPhase struct {
	Millis float64 `json:"ms"`
	GBs    float64 `json:"gbs,omitempty"`
}

type benchRegime struct {
	Name        string     `json:"name"`
	Kind        string     `json:"kind"` // ER | RMAT
	Scale       int        `json:"scale"`
	EdgeFactor  int        `json:"edge_factor"`
	SeedA       uint64     `json:"seed_a"`
	SeedB       uint64     `json:"seed_b"`
	Layout      string     `json:"layout"`
	Threads     int        `json:"threads"`
	Flops       int64      `json:"flops"`
	NNZC        int64      `json:"nnz_c"`
	CF          float64    `json:"cf"`
	TupleBytes  int64      `json:"tuple_bytes"`
	NsPerOp     int64      `json:"ns_per_op"`
	GFLOPS      float64    `json:"gflops"`
	AllocsPerOp float64    `json:"allocs_per_op"`
	Expand      benchPhase `json:"expand"`
	Sort        benchPhase `json:"sort"`
	Compress    benchPhase `json:"compress"`
	Assemble    benchPhase `json:"assemble"`
}

type benchReport struct {
	Schema  string        `json:"schema"`
	GoOS    string        `json:"goos"`
	GoArch  string        `json:"goarch"`
	CPUs    int           `json:"cpus"`
	Reps    int           `json:"reps"`
	Regimes []benchRegime `json:"regimes"`
}

// benchCase is one regime's generator recipe; layouts are forced so the
// trajectory always carries a squeezed-vs-wide pair on identical inputs.
type benchCase struct {
	name       string
	kind       string
	scale, ef  int
	seedA      uint64
	seedB      uint64
	layout     core.Layout
	threadsCap int // 0: cfg/default threads, 1: pin single-threaded
}

func benchCases() []benchCase {
	return []benchCase{
		// Low-cf ER, both layouts: the acceptance pair (BenchmarkMultiply's
		// regime). Single-threaded so allocs/op asserts the pooled 0.
		{"er-lowcf-squeezed", "ER", 13, 8, 1, 2, core.LayoutSqueezed, 1},
		{"er-lowcf-wide", "ER", 13, 8, 1, 2, core.LayoutWide, 1},
		// Sparser ER (cf ≈ 1) and a denser one, auto layout, default threads.
		{"er-sparse", "ER", 14, 4, 1, 2, core.LayoutAuto, 0},
		{"er-dense", "ER", 12, 16, 1, 2, core.LayoutAuto, 0},
		// Skewed R-MAT regimes (Graph500 parameters).
		{"rmat-ef8", "RMAT", 12, 8, 1, 2, core.LayoutAuto, 0},
		{"rmat-ef16", "RMAT", 11, 16, 1, 2, core.LayoutAuto, 0},
	}
}

func (c benchCase) generate() (*matrix.CSR, *matrix.CSR) {
	if c.kind == "RMAT" {
		return gen.RMAT(c.scale, c.ef, gen.Graph500Params, c.seedA),
			gen.RMAT(c.scale, c.ef, gen.Graph500Params, c.seedB)
	}
	return gen.ERMatrix(c.scale, c.ef, c.seedA), gen.ERMatrix(c.scale, c.ef, c.seedB)
}

func runBench(cfg *config) {
	report := benchReport{
		Schema: benchSchema,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Reps:   cfg.reps,
	}
	fmt.Printf("%-20s %8s %10s %8s %8s %9s %9s %9s %7s\n",
		"regime", "layout", "ns/op", "GFLOPS", "cf", "expand", "sort", "compress", "allocs")
	for _, c := range benchCases() {
		r, err := runBenchCase(cfg, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench %s: %v\n", c.name, err)
			os.Exit(1)
		}
		report.Regimes = append(report.Regimes, r)
		fmt.Printf("%-20s %8s %10d %8.4f %8.2f %7.2fms %7.2fms %7.2fms %7.1f\n",
			r.Name, r.Layout, r.NsPerOp, r.GFLOPS, r.CF,
			r.Expand.Millis, r.Sort.Millis, r.Compress.Millis, r.AllocsPerOp)
	}
	if cfg.jsonOut != "" {
		writeBenchReport(cfg.jsonOut, &report)
	}
}

func runBenchCase(cfg *config, c benchCase) (benchRegime, error) {
	a, b := c.generate()
	acsc := a.ToCSC()
	threads := pickThreads(cfg, c.threadsCap)
	ws := core.NewWorkspace()
	opt := core.Options{Threads: threads, Workspace: ws, ForceLayout: c.layout}

	// Warm-up grows every pooled buffer; it also yields the shape stats.
	_, warm, err := core.Multiply(acsc, b, opt)
	if err != nil {
		return benchRegime{}, err
	}
	flops, nnzc, cf := warm.Flops, warm.NNZC, warm.CF
	layout, tb := warm.Layout, warm.TupleBytes

	reps := cfg.reps
	if reps < 1 {
		reps = 1
	}
	var best *core.Stats
	var mallocs uint64
	for r := 0; r < reps; r++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		_, st, err := core.Multiply(acsc, b, opt)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return benchRegime{}, err
		}
		mallocs += m1.Mallocs - m0.Mallocs
		if best == nil || st.Total < best.Total {
			s := *st
			best = &s
		}
	}

	return benchRegime{
		Name:       c.name,
		Kind:       c.kind,
		Scale:      c.scale,
		EdgeFactor: c.ef,
		SeedA:      c.seedA,
		SeedB:      c.seedB,
		Layout:     layout.String(),
		Threads:    threads,
		Flops:      flops,
		NNZC:       nnzc,
		CF:         cf,
		TupleBytes: tb,
		NsPerOp:    best.Total.Nanoseconds(),
		GFLOPS:     best.GFLOPS(),
		// ReadMemStats itself allocates a little on some Go versions; the
		// engine's contribution is what trends matter for, and on the
		// single-threaded pooled regimes it is exactly zero.
		AllocsPerOp: float64(mallocs) / float64(reps),
		Expand:      benchPhase{ms64(best.Expand), best.ExpandGBs()},
		Sort:        benchPhase{ms64(best.Sort), best.SortGBs()},
		Compress:    benchPhase{ms64(best.Compress), best.CompressGBs()},
		Assemble:    benchPhase{Millis: ms64(best.Assemble)},
	}, nil
}

func ms64(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func writeBenchReport(path string, report *benchReport) {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: encode report: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d regimes)\n", path, len(report.Regimes))
}
