package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pbspgemm/internal/core"
	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/stream"
)

// The benchmark trajectory harness: a fixed set of fixed-seed ER and R-MAT
// regimes measured with the core engine on a pooled workspace, reported as
// GFLOPS, per-phase GB/s and allocs/op. CI runs `bench -json bench.json
// -gate` on every push and uploads it as the bench-trajectory artifact, so
// each PR leaves a comparable perf baseline behind; the committed
// BENCH_PR4.json / BENCH_PR5.json are the one-off local baselines the
// squeezed-tuple and fused-pipeline PRs were validated against. Regimes pin
// both tuple layouts on the low-cf ER workload (the squeezed pipeline's
// headline case) and fused-vs-unfused on the high-cf R-MAT workload (the
// fused pipeline's): -gate fails the run if fused ns/op regresses past
// unfused there, or if any single-threaded pooled regime allocates.

// benchSchema versions the JSON so future PRs can evolve the report without
// breaking trajectory tooling. v2 adds the fused field and the fuse phase;
// v3 adds the mode field and the pattern (4 B) and float32-narrow (8 B)
// regimes; v4 adds the measured STREAM Triad baselines, per-phase
// pct_of_stream (phase GB/s as a percentage of the matching-thread-count
// Triad figure — how close each phase runs to the bandwidth roof), the
// kernel field, scalar-oracle comparator regimes, and multi-threaded
// variants of the acceptance pair; v5 adds the cancel_hook field and the
// -cancelpoll twins of the acceptance regimes behind the sub-phase
// cancellation-poll overhead gate; v6 adds the shard section — the 2D
// block-sharded coordinator against a direct Engine call, with the 1×1×1
// grid held within 5% of direct behind the -gate.
const benchSchema = "pbspgemm-bench/v6"

type benchPhase struct {
	Millis    float64 `json:"ms"`
	GBs       float64 `json:"gbs,omitempty"`
	PctStream float64 `json:"pct_of_stream,omitempty"`
}

type benchRegime struct {
	Name        string     `json:"name"`
	Kind        string     `json:"kind"` // ER | RMAT
	Scale       int        `json:"scale"`
	EdgeFactor  int        `json:"edge_factor"`
	SeedA       uint64     `json:"seed_a"`
	SeedB       uint64     `json:"seed_b"`
	Layout      string     `json:"layout"`
	Mode        string     `json:"mode,omitempty"` // "" (float64) | pattern | f32
	Kernel      string     `json:"kernel"`         // Stats.Kernel: dispatched kernel set
	Scalar      bool       `json:"scalar,omitempty"`
	CancelHook  bool       `json:"cancel_hook,omitempty"`
	Fused       bool       `json:"fused"`
	BudgetBytes int64      `json:"budget_bytes,omitempty"`
	Threads     int        `json:"threads"`
	Flops       int64      `json:"flops"`
	NNZC        int64      `json:"nnz_c"`
	CF          float64    `json:"cf"`
	TupleBytes  int64      `json:"tuple_bytes"`
	NsPerOp     int64      `json:"ns_per_op"`
	GFLOPS      float64    `json:"gflops"`
	AllocsPerOp float64    `json:"allocs_per_op"`
	Expand      benchPhase `json:"expand"`
	Fuse        benchPhase `json:"fuse"`
	Sort        benchPhase `json:"sort"`
	Compress    benchPhase `json:"compress"`
	Assemble    benchPhase `json:"assemble"`
}

type benchReport struct {
	Schema string `json:"schema"`
	GoOS   string `json:"goos"`
	GoArch string `json:"goarch"`
	CPUs   int    `json:"cpus"`
	Reps   int    `json:"reps"`
	// Measured STREAM Triad bandwidth — the roof the pct_of_stream figures
	// are relative to: single-threaded for the Threads==1 regimes,
	// StreamThreads-wide for the rest.
	StreamTriad1GBs float64       `json:"stream_triad_1t_gbs"`
	StreamTriadNGBs float64       `json:"stream_triad_nt_gbs"`
	StreamThreads   int           `json:"stream_threads"`
	Regimes         []benchRegime `json:"regimes"`
	// Shard carries the block-sharded coordinator regimes (see bench_shard.go).
	Shard []benchShardRegime `json:"shard,omitempty"`
}

// benchCase is one regime's generator recipe; layouts and fusion are forced
// so the trajectory always carries squeezed-vs-wide and fused-vs-unfused
// pairs on identical inputs.
type benchCase struct {
	name       string
	kind       string
	scale, ef  int
	seedA      uint64
	seedB      uint64
	layout     core.Layout
	threadsCap int    // 0: cfg/default threads, 1: pin single-threaded
	unfused    bool   // run the three-pass PR 4 pipeline instead of fused
	budget     int64  // MemoryBudgetBytes; >0 exercises the panel/merge path
	mode       string // "" core.Multiply | "pattern" 4 B key-only | "f32" 8 B narrow
	scalar     bool   // DisableBatch: run the scalar oracle kernels
	cancelHook bool   // install a no-op Cancel hook: every sub-phase poll calls it
}

// scalarVariant is c with the batched kernels disabled — the oracle
// comparator the batched-vs-scalar gate keys on.
func (c benchCase) scalarVariant() benchCase {
	c.name += "-scalar"
	c.scalar = true
	return c
}

// cancelPollVariant is c with a no-op cancellation hook installed, so every
// sub-phase poll window pays the full hook call instead of the production
// nil check — the upper bound the poll-overhead gate compares against.
func (c benchCase) cancelPollVariant() benchCase {
	c.name += "-cancelpoll"
	c.cancelHook = true
	return c
}

// The names the -gate check keys on (see gateBench). The pattern regime runs
// the same R-MAT input as the squeezed-float64 acceptance pair, so
// gateFusedRegime doubles as its 12-byte comparator; the -scalar variants of
// the batchedGateRegimes are the oracle side of the batched-kernel gate.
const (
	gateFusedRegime   = "rmat-highcf-fused"
	gateUnfusedRegime = "rmat-highcf-unfused"
	gatePatternRegime = "rmat-highcf-pattern"
)

// batchedGateRegimes are the regimes -gate holds to batched ≤ scalar ns/op;
// benchCases appends a scalarVariant of each.
var batchedGateRegimes = []string{"er-lowcf-squeezed", gateFusedRegime}

func benchCases() []benchCase {
	return []benchCase{
		// Low-cf ER, both layouts: the PR 4 acceptance pair
		// (BenchmarkMultiply's regime). Single-threaded so allocs/op asserts
		// the pooled 0.
		{"er-lowcf-squeezed", "ER", 13, 8, 1, 2, core.LayoutSqueezed, 1, false, 0, "", false, false},
		{"er-lowcf-wide", "ER", 13, 8, 1, 2, core.LayoutWide, 1, false, 0, "", false, false},
		// High-cf R-MAT (cf ≈ 4.6, past the crossover — the regime where the
		// compress pass the fusion removes carries the most bytes relative
		// to output): the PR 5 fused-vs-unfused acceptance pair, plus the
		// same pair on the wide layout so the allocs/op gate covers both
		// layouts under fusion. Single-threaded, pooled.
		{gateFusedRegime, "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 1, false, 0, "", false, false},
		{gateUnfusedRegime, "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 1, true, 0, "", false, false},
		{"rmat-highcf-wide-fused", "RMAT", 10, 32, 1, 2, core.LayoutWide, 1, false, 0, "", false, false},
		{"rmat-highcf-wide-unfused", "RMAT", 10, 32, 1, 2, core.LayoutWide, 1, true, 0, "", false, false},
		// The Boolean/structural regime: the 4-byte pattern layout on the same
		// high-cf input as the squeezed acceptance pair (its 12-byte
		// comparator), and on the low-cf ER input. The 8-byte float32 narrow
		// layout on both workloads. All single-threaded pooled, so the 0
		// allocs/op gate covers every layout.
		{gatePatternRegime, "RMAT", 10, 32, 1, 2, core.LayoutAuto, 1, false, 0, "pattern", false, false},
		{"er-lowcf-pattern", "ER", 13, 8, 1, 2, core.LayoutAuto, 1, false, 0, "pattern", false, false},
		{"rmat-highcf-f32", "RMAT", 10, 32, 1, 2, core.LayoutAuto, 1, false, 0, "f32", false, false},
		{"er-lowcf-f32", "ER", 13, 8, 1, 2, core.LayoutAuto, 1, false, 0, "f32", false, false},
		// The same high-cf input through the memory-budgeted panel path, so
		// both fused merge strategies stay visible in the trajectory: a
		// shallow budget (~3 panels, run counts within fusedEmitMergeMaxRuns)
		// exercises the merge that emits straight into the final CSR, a deep
		// one (~8 panels) the intermediate-buffer fallback.
		{"rmat-highcf-budgeted-fused", "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 1, false, 16 << 20, "", false, false},
		{"rmat-highcf-budgeted-unfused", "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 1, true, 16 << 20, "", false, false},
		{"rmat-highcf-budgeted-deep-fused", "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 1, false, 4 << 20, "", false, false},
		{"rmat-highcf-budgeted-deep-unfused", "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 1, true, 4 << 20, "", false, false},
		// Sparser ER (cf ≈ 1) and a denser one, auto layout, default threads.
		{"er-sparse", "ER", 14, 4, 1, 2, core.LayoutAuto, 0, false, 0, "", false, false},
		{"er-dense", "ER", 12, 16, 1, 2, core.LayoutAuto, 0, false, 0, "", false, false},
		// Skewed R-MAT regimes (Graph500 parameters).
		{"rmat-ef8", "RMAT", 12, 8, 1, 2, core.LayoutAuto, 0, false, 0, "", false, false},
		{"rmat-ef16", "RMAT", 11, 16, 1, 2, core.LayoutAuto, 0, false, 0, "", false, false},
		// The acceptance pair at full thread count: the multi-threaded
		// trajectory (and, on multi-node hosts, the NUMA-aware schedule).
		{"er-lowcf-squeezed-mt", "ER", 13, 8, 1, 2, core.LayoutSqueezed, 0, false, 0, "", false, false},
		{"rmat-highcf-fused-mt", "RMAT", 10, 32, 1, 2, core.LayoutSqueezed, 0, false, 0, "", false, false},
	}
}

// withScalarComparators appends the scalar-oracle twin of every
// batchedGateRegimes entry, so each report carries the batched-vs-scalar
// pairs -gate compares.
func withScalarComparators(cases []benchCase) []benchCase {
	for _, name := range batchedGateRegimes {
		for _, c := range cases {
			if c.name == name {
				cases = append(cases, c.scalarVariant())
				break
			}
		}
	}
	return cases
}

// withCancelPollComparators appends the no-op-hook twin of the acceptance
// regimes. The production configuration (Cancel nil, fault hooks compiled
// out) only pays the polls' tuple-count arithmetic and an untaken nil check;
// the twin calls a real hook at every poll window, so twin-vs-base bounds the
// production overhead from above — that bound is what the -gate holds ≤ 1%.
func withCancelPollComparators(cases []benchCase) []benchCase {
	for _, name := range batchedGateRegimes {
		for _, c := range cases {
			if c.name == name {
				cases = append(cases, c.cancelPollVariant())
				break
			}
		}
	}
	return cases
}

func (c benchCase) generate() (*matrix.CSR, *matrix.CSR) {
	if c.kind == "RMAT" {
		return gen.RMAT(c.scale, c.ef, gen.Graph500Params, c.seedA),
			gen.RMAT(c.scale, c.ef, gen.Graph500Params, c.seedB)
	}
	return gen.ERMatrix(c.scale, c.ef, c.seedA), gen.ERMatrix(c.scale, c.ef, c.seedB)
}

func runBench(cfg *config) {
	nthreads := pickThreads(cfg, 0)
	if nthreads <= 0 {
		nthreads = runtime.GOMAXPROCS(0)
	}
	report := benchReport{
		Schema: benchSchema,
		GoOS:   runtime.GOOS,
		GoArch: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Reps:   cfg.reps,
		// The roofs the pct_of_stream figures divide by, measured on this
		// host right before the regimes run.
		StreamTriad1GBs: stream.QuickTriad(0, 1, cfg.reps),
		StreamTriadNGBs: stream.QuickTriad(0, nthreads, cfg.reps),
		StreamThreads:   nthreads,
	}
	fmt.Printf("stream triad: %.2f GB/s (1 thread), %.2f GB/s (%d threads)\n",
		report.StreamTriad1GBs, report.StreamTriadNGBs, nthreads)
	fmt.Printf("%-25s %8s %6s %10s %8s %8s %9s %9s %7s\n",
		"regime", "layout", "fused", "ns/op", "GFLOPS", "cf", "expand", "fuse|sort", "allocs")
	for _, c := range withCancelPollComparators(withScalarComparators(benchCases())) {
		r, err := runBenchCase(cfg, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench %s: %v\n", c.name, err)
			os.Exit(1)
		}
		fillPctStream(&r, &report)
		report.Regimes = append(report.Regimes, r)
		phase := r.Fuse.Millis
		if !r.Fused {
			phase = r.Sort.Millis + r.Compress.Millis
		}
		fmt.Printf("%-25s %8s %6v %10d %8.4f %8.2f %7.2fms %7.2fms %7.1f\n",
			r.Name, r.Layout, r.Fused, r.NsPerOp, r.GFLOPS, r.CF,
			r.Expand.Millis, phase, r.AllocsPerOp)
	}
	runShardBench(cfg, &report)
	if cfg.jsonOut != "" {
		writeBenchReport(cfg.jsonOut, &report)
	}
	if cfg.baseline != "" {
		diffBaseline(cfg.baseline, &report)
	}
	if cfg.gate {
		gateBench(&report)
	}
}

// diffBaseline prints the acceptance regimes' ns/op against a prior -json
// report (e.g. the committed BENCH_PR8.json). Informational only: absolute
// ns/op is machine- and load-specific, so cross-run deltas are not gated —
// the poll-overhead question is answered by the within-run cancelpoll pair
// in gateBench, which shares one process, one arena and one thermal state.
func diffBaseline(path string, report *benchReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench baseline: %v\n", err)
		return
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench baseline: decode %s: %v\n", path, err)
		return
	}
	byName := make(map[string]*benchRegime, len(base.Regimes))
	for i := range base.Regimes {
		byName[base.Regimes[i].Name] = &base.Regimes[i]
	}
	for _, r := range report.Regimes {
		b := byName[r.Name]
		if b == nil || b.NsPerOp <= 0 {
			continue
		}
		fmt.Printf("bench baseline: %-33s %12d ns/op vs %12d (%+.1f%%)\n",
			r.Name, r.NsPerOp, b.NsPerOp, 100*(float64(r.NsPerOp)/float64(b.NsPerOp)-1))
	}
}

// fillPctStream converts each phase's GB/s into a percentage of the Triad
// roof that matches the regime's thread count — the paper's "phases run at
// STREAM speed" claim as a per-regime number.
func fillPctStream(r *benchRegime, report *benchReport) {
	roof := report.StreamTriadNGBs
	if r.Threads == 1 {
		roof = report.StreamTriad1GBs
	}
	if roof <= 0 {
		return
	}
	for _, p := range []*benchPhase{&r.Expand, &r.Fuse, &r.Sort, &r.Compress, &r.Assemble} {
		if p.GBs > 0 {
			p.PctStream = 100 * p.GBs / roof
		}
	}
}

// gateBench is the CI regression gate: on the high-cf R-MAT acceptance pair
// the fused pipeline must not be slower than the unfused PR 4 path, the
// 4-byte pattern layout must beat the 12-byte squeezed float64 pipeline on
// the same input by at least 10% (the Boolean-regime acceptance bar), the
// batched kernels must not be slower than the scalar oracle on the
// batchedGateRegimes pairs, and every single-threaded pooled regime (all
// layouts, fused and unfused, batched and scalar) must run allocation-free
// in steady state.
func gateBench(report *benchReport) {
	// The overhead gate certifies the production binary; a tagged build
	// carries live injection hooks and measures the wrong thing.
	if faultinject.Enabled {
		fmt.Fprintln(os.Stderr, "bench gate: refusing to gate a faultinject-tagged binary (hooks compiled in)")
		os.Exit(1)
	}
	byName := make(map[string]*benchRegime, len(report.Regimes))
	for i := range report.Regimes {
		byName[report.Regimes[i].Name] = &report.Regimes[i]
	}
	fused, unfused := byName[gateFusedRegime], byName[gateUnfusedRegime]
	pattern := byName[gatePatternRegime]
	if fused == nil || unfused == nil || pattern == nil {
		fmt.Fprintln(os.Stderr, "bench gate: acceptance regimes missing from the run")
		os.Exit(1)
	}
	failed := false
	// 5% headroom over "≤" so shared-runner jitter can't flake the gate;
	// the measured fused margin is ~15-20%, so a real regression still
	// trips it.
	if float64(fused.NsPerOp) > 1.05*float64(unfused.NsPerOp) {
		fmt.Fprintf(os.Stderr, "bench gate: FUSED REGRESSION on %s: fused %d ns/op > unfused %d ns/op\n",
			gateFusedRegime, fused.NsPerOp, unfused.NsPerOp)
		failed = true
	} else {
		fmt.Printf("bench gate: fused %d ns/op ≤ unfused %d ns/op (%.1f%% faster)\n",
			fused.NsPerOp, unfused.NsPerOp,
			100*(1-float64(fused.NsPerOp)/float64(unfused.NsPerOp)))
	}
	// The pattern tuple is a third the squeezed size, so every phase moves a
	// third the bytes; the measured margin is well past the 10% bar, which
	// leaves shared-runner jitter room below it.
	if float64(pattern.NsPerOp) > 0.90*float64(fused.NsPerOp) {
		fmt.Fprintf(os.Stderr, "bench gate: PATTERN REGRESSION on %s: pattern %d ns/op > 0.90 × squeezed %d ns/op\n",
			gatePatternRegime, pattern.NsPerOp, fused.NsPerOp)
		failed = true
	} else {
		fmt.Printf("bench gate: pattern %d ns/op ≤ 0.90 × squeezed %d ns/op (%.1f%% faster)\n",
			pattern.NsPerOp, fused.NsPerOp,
			100*(1-float64(pattern.NsPerOp)/float64(fused.NsPerOp)))
	}
	// The batched kernels must not be slower than the scalar oracle on the
	// acceptance regimes (same 5% jitter headroom; the measured batched
	// margin is 25-45%, so a real regression still trips).
	for _, name := range batchedGateRegimes {
		batched, scalar := byName[name], byName[name+"-scalar"]
		if batched == nil || scalar == nil {
			fmt.Fprintf(os.Stderr, "bench gate: batched/scalar pair %s missing from the run\n", name)
			os.Exit(1)
		}
		if float64(batched.NsPerOp) > 1.05*float64(scalar.NsPerOp) {
			fmt.Fprintf(os.Stderr, "bench gate: BATCHED REGRESSION on %s: batched %d ns/op > scalar %d ns/op\n",
				name, batched.NsPerOp, scalar.NsPerOp)
			failed = true
		} else {
			fmt.Printf("bench gate: %s batched %d ns/op ≤ scalar %d ns/op (%.1f%% faster)\n",
				name, batched.NsPerOp, scalar.NsPerOp,
				100*(1-float64(batched.NsPerOp)/float64(scalar.NsPerOp)))
		}
	}
	// The fault-containment overhead gate: with the fault hooks compiled out
	// (enforced above via faultinject.Enabled) and a no-op Cancel hook
	// installed, the acceptance regimes must run within 1% of their hook-free
	// twins. The hooked twin pays a real function call at every sub-phase poll
	// window, so this bounds the production cost — poll arithmetic plus an
	// untaken nil check — from above.
	for _, name := range batchedGateRegimes {
		base, hooked := byName[name], byName[name+"-cancelpoll"]
		if base == nil || hooked == nil {
			fmt.Fprintf(os.Stderr, "bench gate: cancel-poll pair %s missing from the run\n", name)
			os.Exit(1)
		}
		overhead := 100 * (float64(hooked.NsPerOp)/float64(base.NsPerOp) - 1)
		if float64(hooked.NsPerOp) > 1.01*float64(base.NsPerOp) {
			fmt.Fprintf(os.Stderr, "bench gate: CANCEL-POLL OVERHEAD on %s: hooked %d ns/op > 1.01 × %d ns/op (%+.2f%%)\n",
				name, hooked.NsPerOp, base.NsPerOp, overhead)
			failed = true
		} else {
			fmt.Printf("bench gate: %s cancel polls %+.2f%% ns/op (≤ 1%% with a live hook; hooks compiled out)\n",
				name, overhead)
		}
	}
	// The paper's near-STREAM claim, tracked as a gate: on the acceptance
	// regimes the expand phase must move at least half of Triad bandwidth
	// (executed loads+stores vs the matching-thread-count Triad roof).
	for _, name := range batchedGateRegimes {
		r := byName[name]
		if r.Expand.PctStream < 50 {
			fmt.Fprintf(os.Stderr, "bench gate: %s expand at %.1f%% of stream Triad, want ≥ 50%%\n",
				name, r.Expand.PctStream)
			failed = true
		} else {
			fmt.Printf("bench gate: %s expand at %.1f%% of stream Triad (≥ 50%%)\n",
				name, r.Expand.PctStream)
		}
	}
	// The sharded route must be free when the grid is degenerate: the 1×1×1
	// coordinator within 5% of the direct Engine call measured alongside it.
	if gateShardBench(report) {
		failed = true
	}
	for _, r := range report.Regimes {
		if r.Threads == 1 && r.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "bench gate: %s allocated %.1f/op, want 0\n", r.Name, r.AllocsPerOp)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("bench gate: all single-threaded pooled regimes at 0 allocs/op")
}

func runBenchCase(cfg *config, c benchCase) (benchRegime, error) {
	a, b := c.generate()
	acsc := a.ToCSC()
	threads := pickThreads(cfg, c.threadsCap)
	ws := core.NewWorkspace()
	opt := core.Options{Threads: threads, Workspace: ws, ForceLayout: c.layout,
		DisableFusion: c.unfused, MemoryBudgetBytes: c.budget, DisableBatch: c.scalar}
	if c.cancelHook {
		opt.Cancel = func() error { return nil }
	}

	// The f32 regimes carry value planes out of band; convert once, outside
	// the measured loop.
	var af32, bf32 []float32
	if c.mode == "f32" {
		af32 = make([]float32, len(acsc.Val))
		for i, v := range acsc.Val {
			af32[i] = float32(v)
		}
		bf32 = make([]float32, len(b.Val))
		for i, v := range b.Val {
			bf32[i] = float32(v)
		}
	}
	run := func() (*core.Stats, error) {
		switch c.mode {
		case "pattern":
			_, st, err := core.MultiplyPattern(acsc, b, opt)
			return st, err
		case "f32":
			_, _, st, err := core.MultiplyNarrow(acsc, af32, b, bf32, opt)
			return st, err
		default:
			_, st, err := core.Multiply(acsc, b, opt)
			return st, err
		}
	}

	// Warm-up grows every pooled buffer; it also yields the shape stats.
	warm, err := run()
	if err != nil {
		return benchRegime{}, err
	}
	flops, nnzc, cf := warm.Flops, warm.NNZC, warm.CF
	layout, tb := warm.Layout, warm.TupleBytes

	reps := cfg.reps
	if reps < 1 {
		reps = 1
	}
	var best *core.Stats
	var mallocs uint64
	for r := 0; r < reps; r++ {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		st, err := run()
		runtime.ReadMemStats(&m1)
		if err != nil {
			return benchRegime{}, err
		}
		mallocs += m1.Mallocs - m0.Mallocs
		if best == nil || st.Total < best.Total {
			s := *st
			best = &s
		}
	}

	return benchRegime{
		Name:        c.name,
		Kind:        c.kind,
		Scale:       c.scale,
		EdgeFactor:  c.ef,
		SeedA:       c.seedA,
		SeedB:       c.seedB,
		Layout:      layout.String(),
		Mode:        c.mode,
		Kernel:      warm.Kernel,
		Scalar:      c.scalar,
		CancelHook:  c.cancelHook,
		Fused:       !c.unfused,
		BudgetBytes: c.budget,
		Threads:     threads,
		Flops:       flops,
		NNZC:        nnzc,
		CF:          cf,
		TupleBytes:  tb,
		NsPerOp:     best.Total.Nanoseconds(),
		GFLOPS:      best.GFLOPS(),
		// ReadMemStats itself allocates a little on some Go versions; the
		// engine's contribution is what trends matter for, and on the
		// single-threaded pooled regimes it is exactly zero.
		AllocsPerOp: float64(mallocs) / float64(reps),
		Expand:      benchPhase{Millis: ms64(best.Expand), GBs: best.ExpandGBs()},
		Fuse:        benchPhase{Millis: ms64(best.Fuse), GBs: best.FuseGBs()},
		Sort:        benchPhase{Millis: ms64(best.Sort), GBs: best.SortGBs()},
		Compress:    benchPhase{Millis: ms64(best.Compress), GBs: best.CompressGBs()},
		Assemble:    benchPhase{Millis: ms64(best.Assemble)},
	}, nil
}

func ms64(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

func writeBenchReport(path string, report *benchReport) {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: encode report: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d regimes)\n", path, len(report.Regimes))
}
