package main

import "testing"

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"er", "rmat", "banded"} {
		m, err := generate(kind, 8, 4, 200, 3, "", 1, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.NNZ() == 0 {
			t.Fatalf("%s: empty matrix", kind)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	m, err := generate("surrogate", 0, 0, 0, 0, "scircuit", 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() == 0 {
		t.Fatal("surrogate: empty matrix")
	}
	if _, err := generate("surrogate", 0, 0, 0, 0, "nope", 1, 1); err == nil {
		t.Fatal("expected unknown-surrogate error")
	}
	if _, err := generate("bogus", 0, 0, 0, 0, "", 1, 1); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}
