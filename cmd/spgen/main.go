// Command spgen generates the paper's benchmark matrices (Erdős–Rényi,
// Graph500 R-MAT, banded, Table VI surrogates) and writes them as Matrix
// Market or compact binary files, so experiment inputs can be produced once
// and reused.
//
//	spgen -kind er -scale 18 -ef 8 -o er18.mtx
//	spgen -kind rmat -scale 16 -ef 16 -format bin -o rmat16.bin
//	spgen -kind surrogate -name cant -o cant.mtx
//	spgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/metrics"
	"pbspgemm/internal/mmio"
)

func main() {
	var (
		kind     = flag.String("kind", "er", "matrix family: er, rmat, banded, surrogate")
		scale    = flag.Int("scale", 14, "2^scale rows (er, rmat)")
		ef       = flag.Int("ef", 8, "edge factor / nonzeros per column (er, rmat)")
		n        = flag.Int("n", 10000, "dimension (banded)")
		width    = flag.Int("width", 4, "band half-width (banded)")
		name     = flag.String("name", "", "surrogate name from Table VI (surrogate)")
		scaleDiv = flag.Int("scalediv", 1, "shrink surrogate dimension by this factor")
		seed     = flag.Uint64("seed", 42, "generator seed")
		format   = flag.String("format", "mtx", "output format: mtx or bin")
		out      = flag.String("o", "", "output path (required)")
		list     = flag.Bool("list", false, "list Table VI surrogate names and exit")
		stats    = flag.Bool("stats", false, "print Table VI statistics of the generated matrix")
	)
	flag.Parse()

	if *list {
		fmt.Println("Table VI surrogates:")
		for _, s := range gen.Catalog() {
			fmt.Printf("  %-14s n=%-8d d=%-6.2f published cf=%.2f\n", s.Name, s.N, s.Degree, s.PubCF)
		}
		return
	}
	if *out == "" {
		fatal(fmt.Errorf("-o output path is required"))
	}

	m, err := generate(*kind, *scale, *ef, *n, *width, *name, *scaleDiv, *seed)
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	switch *format {
	case "mtx":
		err = mmio.WriteMatrixMarket(f, m)
	case "bin":
		err = mmio.WriteBinary(f, m)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %dx%d, %s nnz\n", *out, m.NumRows, m.NumCols, metrics.HumanCount(m.NNZ()))

	if *stats {
		st := gen.MeasureStats(m)
		fmt.Printf("squaring stats: flops=%s nnz(C)=%s cf=%.2f\n",
			metrics.HumanCount(st.Flops), metrics.HumanCount(st.NNZC), st.CF)
	}
}

// generate dispatches on the matrix family.
func generate(kind string, scale, ef, n, width int, name string, scaleDiv int, seed uint64) (*matrix.CSR, error) {
	switch kind {
	case "er":
		return gen.ERMatrix(scale, ef, seed), nil
	case "rmat":
		return gen.RMAT(scale, ef, gen.Graph500Params, seed), nil
	case "banded":
		return gen.Banded(int32(n), int32(width), seed), nil
	case "surrogate":
		for _, s := range gen.Catalog() {
			if s.Name == name {
				return s.Generate(int32(scaleDiv), seed), nil
			}
		}
		return nil, fmt.Errorf("unknown surrogate %q (use -list)", name)
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spgen:", err)
	os.Exit(1)
}
