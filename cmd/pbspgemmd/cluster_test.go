package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"pbspgemm"
	"pbspgemm/internal/mmio"
)

// TestClusterSIGKILLBitIdentical is the multi-process resilience e2e: a
// coordinator node fans a sharded product out over two real pbspgemmd peer
// processes, one peer is SIGKILLed mid-multiply, and the product must still
// complete — bit-identical to a single-node PB multiply — via the retry /
// breaker / local-fallback ladder. Afterwards the coordinator shuts down
// without leaking goroutines.
func TestClusterSIGKILLBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e; skipped in -short")
	}

	// Build the daemon once; the peers run as real OS processes so SIGKILL
	// exercises the true failure surface (sockets dying mid-exchange), not a
	// simulated error.
	bin := filepath.Join(t.TempDir(), "pbspgemmd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	peer1 := startPeer(t, bin)
	peer2 := startPeer(t, bin)

	// Integer-valued factors: the sharded inner split regroups the float
	// additions of the k-reduce, so bit-identity to the single-node fold
	// needs exact-value inputs (the repo-wide convention for these tests).
	a := pbspgemm.NewER(384, 6, 101)
	b := pbspgemm.NewER(384, 6, 102)
	for i := range a.Val {
		a.Val[i] = float64(i%9 + 1)
	}
	for i := range b.Val {
		b.Val[i] = float64(i%7 + 1)
	}
	eng, err := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatalf("reference multiply: %v", err)
	}

	// The coordinator runs in-process (so the goroutine-leak check sees it).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	goroutinesBefore := runtime.NumGoroutine()
	var stdout, stderr bytes.Buffer
	addrc := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-beta", "50",
			"-peers", peer1.base + "," + peer2.base,
			"-shard-block", "64K", "-shard-workers", "1",
		}, &stdout, &stderr, func(addr string) { addrc <- addr })
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case code := <-done:
		t.Fatalf("coordinator exited early with %d: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not become ready")
	}

	ida := uploadTo(t, base, a)
	idb := uploadTo(t, base, b)

	multiply := func() *pbspgemm.CSR {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"a": ida, "b": idb, "output": "binary"})
		resp, err := http.Post(base+"/multiply", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("multiply: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("multiply: status %d: %s", resp.StatusCode, msg)
		}
		c, err := mmio.ReadBinary(resp.Body)
		if err != nil {
			t.Fatalf("decode result: %v", err)
		}
		return c
	}

	// First product with the full fleet: kill peer1 the moment its engine
	// reports block work (mid-multiply), or after 2s if the product spread
	// elsewhere — either way the cluster loses a member while serving.
	resc := make(chan *pbspgemm.CSR, 1)
	go func() { resc <- multiply() }()
	killed := false
	deadline := time.After(2 * time.Second)
poll:
	for {
		select {
		case c := <-resc:
			// Product finished before the kill landed; kill now and verify
			// the next product survives instead.
			peer1.kill(t)
			killed = true
			checkSame(t, ref.C, c)
			break poll
		case <-deadline:
			peer1.kill(t)
			killed = true
			checkSame(t, ref.C, <-resc)
			break poll
		default:
			if peerEngineCalls(peer1.base) >= 1 {
				peer1.kill(t)
				killed = true
				checkSame(t, ref.C, <-resc)
				break poll
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !killed {
		t.Fatal("peer1 was never killed")
	}

	// Second product against the degraded fleet: dead-peer dispatches must
	// drain through retries into peer2 or the local fallback, and the bytes
	// must not change. (Different cache key is not needed — the coordinator
	// cached the first product, so force a fresh one by swapping factors.)
	body, _ := json.Marshal(map[string]string{"a": idb, "b": ida, "output": "binary"})
	resp, err := http.Post(base+"/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post-kill multiply: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("post-kill multiply: status %d: %s", resp.StatusCode, msg)
	}
	got, err := mmio.ReadBinary(resp.Body)
	if err != nil {
		t.Fatalf("decode post-kill result: %v", err)
	}
	ref2, err := eng.Multiply(context.Background(), b, a, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, ref2.C, got)

	// Clean shutdown, no goroutine leaks from the retry/hedge machinery.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("coordinator exited with %d: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
	// Idle HTTP keep-alive connections (this test's client and the peer
	// clients both ride the default transport) hold reader goroutines that
	// are not leaks; drop them before counting.
	peer2.kill(t)
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(leakDeadline) {
		if runtime.NumGoroutine() <= goroutinesBefore+2 {
			return
		}
		http.DefaultClient.CloseIdleConnections()
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d (leak)", goroutinesBefore, runtime.NumGoroutine())
}

// peerProc is one pbspgemmd child process.
type peerProc struct {
	cmd  *exec.Cmd
	base string
	dead bool
}

// startPeer boots the built daemon on a random port and waits for /healthz.
func startPeer(t *testing.T, bin string) *peerProc {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-beta", "50", "-cache", "32M", "-ceiling", "512M")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start peer: %v", err)
	}
	p := &peerProc{cmd: cmd}
	t.Cleanup(func() { p.kill(t) })

	// The daemon prints "pbspgemmd: listening on 127.0.0.1:PORT (...)".
	line := ""
	sc := bufio.NewScanner(stdout)
	linec := make(chan string, 1)
	go func() {
		if sc.Scan() {
			linec <- sc.Text()
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case line = <-linec:
	case <-time.After(10 * time.Second):
		t.Fatal("peer did not print its address")
	}
	i := strings.Index(line, "listening on ")
	if i < 0 {
		t.Fatalf("unexpected peer banner: %q", line)
	}
	addr := strings.Fields(line[i+len("listening on "):])[0]
	p.base = "http://" + addr

	healthDeadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(healthDeadline) {
			t.Fatalf("peer %s never became healthy", p.base)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// kill SIGKILLs the peer (idempotent) and reaps it.
func (p *peerProc) kill(t *testing.T) {
	t.Helper()
	if p.dead {
		return
	}
	p.dead = true
	_ = p.cmd.Process.Signal(syscall.SIGKILL)
	_ = p.cmd.Wait()
}

// peerEngineCalls reads engine.calls from a peer's /metrics; 0 on any error
// (the caller just polls again).
func peerEngineCalls(base string) int64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var m struct {
		Engine struct {
			Calls int64 `json:"calls"`
		} `json:"engine"`
	}
	if json.NewDecoder(resp.Body).Decode(&m) != nil {
		return 0
	}
	return m.Engine.Calls
}

// uploadTo posts m as Matrix Market text and returns the registry id.
func uploadTo(t *testing.T, base string, m *pbspgemm.CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pbspgemm.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/matrices", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

// checkSame asserts got is bit-identical to want.
func checkSame(t *testing.T, want, got *pbspgemm.CSR) {
	t.Helper()
	if want.NumRows != got.NumRows || want.NumCols != got.NumCols || want.NNZ() != got.NNZ() {
		t.Fatalf("result shape/nnz mismatch: want %dx%d/%d got %dx%d/%d",
			want.NumRows, want.NumCols, want.NNZ(), got.NumRows, got.NumCols, got.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: want %d got %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	for i := range want.Val {
		if want.ColIdx[i] != got.ColIdx[i] || want.Val[i] != got.Val[i] {
			t.Fatalf("entry %d: want (%d,%v) got (%d,%v) — not bit-identical",
				i, want.ColIdx[i], want.Val[i], got.ColIdx[i], got.Val[i])
		}
	}
}
