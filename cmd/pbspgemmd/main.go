// Command pbspgemmd is the multiplication-as-a-service daemon: an HTTP/JSON
// front end over the pbspgemm Engine with a content-addressed matrix
// registry, an LRU result cache, planner-driven admission control and
// singleflight request batching (see internal/serve and the README's
// "Serving" section).
//
// Example session:
//
//	pbspgemmd -addr :8080 -cache 512M -ceiling 4G &
//	curl -s --data-binary @a.mtx localhost:8080/matrices   # -> {"id":"<hashA>",...}
//	curl -s --data-binary @b.mtx localhost:8080/matrices   # -> {"id":"<hashB>",...}
//	curl -s -X POST localhost:8080/multiply \
//	     -d '{"a":"<hashA>","b":"<hashB>","algorithm":"auto"}'
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pbspgemm"
	"pbspgemm/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable daemon body: it parses args, boots the server on the
// configured address, reports the bound address through ready (tests pass
// :0 and read the port back), and shuts down cleanly when ctx is canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready func(addr string)) int {
	fs := flag.NewFlagSet("pbspgemmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
		threads   = fs.Int("threads", 0, "default worker threads per multiply (0 = GOMAXPROCS)")
		beta      = fs.Float64("beta", 0, "roofline bandwidth GB/s for the Auto planner (0 = one-shot STREAM calibration on first use)")
		upload    = fs.String("max-upload", "256M", "per-upload byte limit")
		registry  = fs.String("registry", "2G", "matrix registry memory budget")
		cache     = fs.String("cache", "512M", "result cache memory budget")
		ceiling   = fs.String("ceiling", "4G", "admission memory ceiling (sum of in-flight predicted footprints)")
		queue     = fs.Int("queue", serve.DefaultMaxQueue, "max requests waiting for admission")
		queueWait = fs.Duration("queue-wait", serve.DefaultMaxQueueWait, "max time one request waits for admission")
		timeout   = fs.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline, propagated to kernel cancellation polls")
		degraded  = fs.String("degraded-budget", "0", "memory budget for the tiled degraded retry when a full run is shed on footprint (0 disables)")
		peers     = fs.String("peers", "", "comma-separated base URLs of peer pbspgemmd nodes; non-empty enables 2D block-sharded fan-out for shardable products")
		shardBlk  = fs.String("shard-block", "0", "per-block predicted-footprint target of the sharded path (0 = one block per product)")
		shardWkrs = fs.Int("shard-workers", 1, "max sharded blocks running on the local engine at once")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := serve.Config{
		MaxQueue:     *queue,
		MaxQueueWait: *queueWait,
	}
	var err error
	if cfg.MaxUploadBytes, err = parseBytes(*upload); err != nil {
		return fatal(stderr, err)
	}
	if cfg.RegistryBudgetBytes, err = parseBytes(*registry); err != nil {
		return fatal(stderr, err)
	}
	if cfg.CacheBudgetBytes, err = parseBytes(*cache); err != nil {
		return fatal(stderr, err)
	}
	if cfg.MemoryCeilingBytes, err = parseBytes(*ceiling); err != nil {
		return fatal(stderr, err)
	}
	if cfg.DegradedBudgetBytes, err = parseBytes(*degraded); err != nil {
		return fatal(stderr, err)
	}
	cfg.RequestTimeout = *timeout
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if cfg.ShardBlockBytes, err = parseBytes(*shardBlk); err != nil {
		return fatal(stderr, err)
	}
	cfg.ShardLocalWorkers = *shardWkrs

	defaults := []pbspgemm.Option{pbspgemm.WithThreads(*threads)}
	if *beta > 0 {
		defaults = append(defaults, pbspgemm.WithBeta(*beta))
	}
	eng, err := pbspgemm.NewEngine(defaults...)
	if err != nil {
		return fatal(stderr, err)
	}
	cfg.Engine = eng
	srv, err := serve.NewServer(cfg)
	if err != nil {
		return fatal(stderr, err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fatal(stderr, err)
	}
	fmt.Fprintf(stdout, "pbspgemmd: listening on %s (cache %s, ceiling %s)\n",
		ln.Addr(), *cache, *ceiling)
	if ready != nil {
		ready(ln.Addr().String())
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return fatal(stderr, err)
		}
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			return fatal(stderr, err)
		}
		<-errc // Serve has returned ErrServerClosed
	}
	fmt.Fprintln(stdout, "pbspgemmd: shut down")
	return 0
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "pbspgemmd:", err)
	return 1
}

// parseBytes parses a byte count with an optional K/M/G/T suffix (powers of
// 1024), e.g. "512M", "2G", "65536".
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty byte count")
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g', 'G':
		mult = 1 << 30
		s = s[:len(s)-1]
	case 't', 'T':
		mult = 1 << 40
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte count %q", s)
	}
	return n * mult, nil
}
