package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"pbspgemm"
)

// TestDaemonSmoke boots the daemon on a random port, uploads two matrices,
// multiplies them, re-multiplies asserting a cache hit, and shuts down
// cleanly — the CI integration smoke.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	addrc := make(chan string, 1)
	done := make(chan int, 1)
	goroutinesBefore := runtime.NumGoroutine()
	go func() {
		done <- run(ctx,
			[]string{"-addr", "127.0.0.1:0", "-beta", "50", "-cache", "64M", "-ceiling", "1G"},
			&stdout, &stderr, func(addr string) { addrc <- addr })
	}()
	var base string
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case code := <-done:
		t.Fatalf("daemon exited early with %d: %s", code, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not become ready")
	}

	upload := func(m *pbspgemm.CSR) string {
		t.Helper()
		var buf bytes.Buffer
		if err := pbspgemm.WriteMatrixMarket(&buf, m); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/matrices", "text/plain", &buf)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload: %d %s", resp.StatusCode, body)
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out.ID
	}
	ida := upload(pbspgemm.NewER(128, 4, 1))
	idb := upload(pbspgemm.NewER(128, 4, 2))

	multiply := func() (cached bool) {
		t.Helper()
		resp, err := http.Post(base+"/multiply", "application/json",
			bytes.NewReader([]byte(fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb))))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("multiply: %d %s", resp.StatusCode, body)
		}
		var out struct {
			NNZ    int64 `json:"nnz"`
			Cached bool  `json:"cached"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.NNZ == 0 {
			t.Fatal("empty product")
		}
		return out.Cached
	}
	if multiply() {
		t.Fatal("first multiply reported cached")
	}
	if !multiply() {
		t.Fatal("repeat multiply not served from cache")
	}

	// The engine ran exactly once for the two requests.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Engine struct {
			Calls int64 `json:"calls"`
		} `json:"engine"`
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Engine.Calls != 1 || m.Cache.Hits != 1 {
		t.Fatalf("engine calls=%d cache hits=%d, want 1 and 1", m.Engine.Calls, m.Cache.Hits)
	}

	// Clean shutdown on ctx cancel, with no leaked goroutines.
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited with %d: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !bytes.Contains(stdout.Bytes(), []byte("shut down")) {
		t.Fatalf("missing shutdown message in %q", stdout.String())
	}
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run(context.Background(), []string{"-nope"}, &out, &out, nil); code != 2 {
		t.Fatalf("bad flag exit code = %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-cache", "12Q"}, &out, &out, nil); code != 1 {
		t.Fatalf("bad byte count exit code = %d, want 1", code)
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":    0,
		"1024": 1024,
		"4k":   4 << 10,
		"512M": 512 << 20,
		"2G":   2 << 30,
		"1T":   1 << 40,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil || got != want {
			t.Errorf("parseBytes(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "12Q"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) succeeded, want error", bad)
		}
	}
}
