package pbspgemm

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"pbspgemm/internal/matrix"
)

// maskCSR is the test oracle for masked products: keep entries of c whose
// position is (not) stored in mask.
func maskCSR(c, mask *CSR, complement bool) *CSR {
	out := &CSR{NumRows: c.NumRows, NumCols: c.NumCols, RowPtr: make([]int64, c.NumRows+1)}
	for i := int32(0); i < c.NumRows; i++ {
		mp, mEnd := mask.RowPtr[i], mask.RowPtr[i+1]
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			col := c.ColIdx[p]
			for mp < mEnd && mask.ColIdx[mp] < col {
				mp++
			}
			stored := mp < mEnd && mask.ColIdx[mp] == col
			if stored != complement {
				out.ColIdx = append(out.ColIdx, col)
				out.Val = append(out.Val, c.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(out.Val))
	}
	return out
}

func TestEngineConcurrentMultiply(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	// Distinct shapes per worker so pooled workspaces are exercised across
	// sizes; every result is checked against the reference oracle.
	type job struct{ a, b, want *CSR }
	jobs := make([]job, 4)
	for i := range jobs {
		a := NewER(int32(128+64*i), 5, uint64(2*i+1))
		b := NewER(int32(128+64*i), 5, uint64(2*i+2))
		jobs[i] = job{a, b, Reference(a, b)}
	}
	const workers, reps = 8, 6
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			j := jobs[w%len(jobs)]
			for r := 0; r < reps; r++ {
				res, err := eng.Multiply(context.Background(), j.a, j.b)
				if err != nil {
					errc <- err
					return
				}
				if !EqualWithin(j.want, res.C, 1e-9) {
					errc <- errors.New("concurrent result differs from reference")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m.Calls != workers*reps || m.Failures != 0 {
		t.Fatalf("metrics: %d calls (%d failures), want %d (0)", m.Calls, m.Failures, workers*reps)
	}
	if m.Flops <= 0 || m.BytesMoved <= 0 || m.NNZProduced <= 0 || m.Busy <= 0 {
		t.Fatalf("metrics counters not populated: %+v", m)
	}
}

func TestEngineResultsDetachedFromPool(t *testing.T) {
	// A result must survive later calls that reuse the pooled workspace.
	eng, err := NewEngine(WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	a := NewER(256, 5, 1)
	b := NewER(256, 5, 2)
	first, err := eng.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	keep := first.C.Clone()
	for i := 0; i < 3; i++ {
		c := NewER(256, 7, uint64(10+i))
		if _, err := eng.Multiply(context.Background(), c, c); err != nil {
			t.Fatal(err)
		}
	}
	if !EqualWithin(keep, first.C, 0) {
		t.Fatal("result was clobbered by later engine calls")
	}
}

func TestEngineContextCancellation(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	a := NewER(1024, 8, 1)
	b := NewER(1024, 8, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the call must fail before any phase runs
	if _, err := eng.Multiply(ctx, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled multiply returned %v, want context.Canceled", err)
	}
	if _, err := eng.MultiplyMasked(ctx, a, b, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled masked multiply returned %v, want context.Canceled", err)
	}
	if _, err := EngineMultiplyOver(eng, ctx, Boolean(),
		MatrixOf(a, func(float64) bool { return true }).ToCSC(),
		MatrixOf(b, func(float64) bool { return true })); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled generic multiply returned %v, want context.Canceled", err)
	}
	if _, err := MultiplyOver(MinPlus(), Float64Matrix(a).ToCSC(), Float64Matrix(b),
		WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("WithContext(canceled) generic multiply returned %v, want context.Canceled", err)
	}
	// Baseline kernels poll at phase boundaries too since the registry port
	// (the old engine only observed ctx at the call boundary for them).
	for _, alg := range []Algorithm{Heap, Hash, HashVec, SPA, ColumnESC} {
		if _, err := eng.Multiply(ctx, a, b, WithAlgorithm(alg)); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled %v multiply returned %v, want context.Canceled", alg, err)
		}
	}
	if m := eng.Metrics(); m.Failures != 8 {
		t.Fatalf("failures = %d, want 8", m.Failures)
	}

	// The legacy shim stays cancellation-free and still succeeds.
	if _, err := Multiply(a, b, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestWithSemiringPlanReporting: the public option surfaces the typed
// fast-path dispatch — Boolean rides the 4-byte pattern layout, while a
// semiring with no typed kernel reports a reasoned generic fallback.
func TestWithSemiringPlanReporting(t *testing.T) {
	a := NewER(256, 4, 1)
	b := NewER(256, 4, 2)
	var p SemiringPlan
	if _, err := MultiplyOver(Boolean(),
		MatrixOf(a, func(float64) bool { return true }).ToCSC(),
		MatrixOf(b, func(float64) bool { return true }),
		WithSemiringPlan(&p)); err != nil {
		t.Fatal(err)
	}
	if !p.FastPath || p.Layout != LayoutPattern {
		t.Fatalf("boolean plan = %+v, want pattern fast path", p)
	}
	if _, err := MultiplyOver(MinPlus(), Float64Matrix(a).ToCSC(), Float64Matrix(b),
		WithSemiringPlan(&p)); err != nil {
		t.Fatal(err)
	}
	if p.FastPath || p.Reason == "" {
		t.Fatalf("min-plus plan = %+v, want reasoned fallback", p)
	}
}

// TestEngineDeadlineExceededEndToEnd pins the wrapped-cancellation contract
// at the public surface: a deadline that lands mid-run must surface from
// Engine.Multiply as an error for which errors.Is(err, context.DeadlineExceeded)
// holds, through the phase-annotating wrap the core layer applies.
func TestEngineDeadlineExceededEndToEnd(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	a := NewER(8192, 24, 11)
	b := NewER(8192, 24, 12)
	for _, budget := range []int64{0, 1 << 20} {
		// 5ms is far under this product's runtime, so the deadline lands
		// inside a phase; if a slow machine burns it before the run starts,
		// the fail-fast path returns the same sentinel and the assertion
		// still holds.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err = eng.Multiply(ctx, a, b, WithMemoryBudget(budget))
		cancel()
		if err == nil {
			t.Fatalf("budget=%d: multiply outran a 5ms deadline on a ~5M-flop product", budget)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("budget=%d: errors.Is(err, DeadlineExceeded) = false; err = %v", budget, err)
		}
	}
	if m := eng.Metrics(); m.Panics != 0 {
		t.Fatalf("cancellation counted as a panic: %+v", m)
	}
}

func TestEngineCancellationNoGoroutineLeak(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	a := NewER(2048, 8, 3)
	b := NewER(2048, 8, 4)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		// A tiny memory budget forces many panels, i.e. many cancellation
		// checkpoints; the deadline lands mid-run on all but the fastest
		// machines. Either outcome (prompt error or completed product) is
		// fine — the invariant is that no worker goroutine outlives the call.
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, _ = eng.Multiply(ctx, a, b, WithMemoryBudget(1<<14))
		cancel()
		// Baseline kernels observe the same deadline at their symbolic and
		// numeric phase boundaries; their workers must not outlive the call
		// either.
		for _, alg := range []Algorithm{Hash, Heap} {
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
			_, _ = eng.Multiply(ctx, a, b, WithAlgorithm(alg))
			cancel()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // give exited goroutines a moment to be reaped
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled multiplies",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMultiplyMaskedMatchesReference(t *testing.T) {
	a := NewER(512, 6, 5)
	b := NewER(512, 6, 6)
	mask := NewER(512, 9, 7)
	want := Reference(a, b)

	got, err := MultiplyMasked(a, b, mask)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(maskCSR(want, mask, false), got, 1e-9) {
		t.Fatal("masked product differs from reference ∘ mask")
	}

	comp, err := MultiplyMasked(a, b, mask, WithComplementMask(mask))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(maskCSR(want, mask, true), comp, 1e-9) {
		t.Fatal("complement-masked product differs from reference \\ mask")
	}
	if got.NNZ()+comp.NNZ() != want.NNZ() {
		t.Fatalf("mask split %d + %d != product nnz %d", got.NNZ(), comp.NNZ(), want.NNZ())
	}

	// The budgeted (multi-panel) path must filter identically.
	budgeted, err := MultiplyMasked(a, b, mask, WithMemoryBudget(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(got, budgeted, 1e-9) {
		t.Fatal("budgeted masked product differs from single-shot")
	}

	// Engine path with the mask as a per-call option.
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Multiply(context.Background(), a, b, WithMask(mask))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(got, res.C, 1e-9) {
		t.Fatal("engine WithMask product differs from MultiplyMasked")
	}
}

func TestMultiplyMaskedShapeErrors(t *testing.T) {
	a := NewER(64, 3, 1)
	badMask := NewER(32, 3, 2)
	if _, err := MultiplyMasked(a, a, badMask); !errors.Is(err, matrix.ErrShape) {
		t.Fatalf("mis-shaped mask returned %v, want ErrShape", err)
	}
	b := NewER(32, 3, 3)
	if _, err := MultiplyMasked(a, b, a); !errors.Is(err, matrix.ErrShape) {
		t.Fatalf("mis-shaped operands returned %v, want ErrShape", err)
	}
	// A nil mask is rejected rather than silently returning the unmasked
	// product.
	if _, err := MultiplyMasked(a, a, nil); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("nil mask returned %v, want ErrInvalidOption", err)
	}
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MultiplyMasked(context.Background(), a, a, nil); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("engine nil mask returned %v, want ErrInvalidOption", err)
	}
	if _, err := eng.MultiplyMasked(context.Background(), a, a, badMask); !errors.Is(err, matrix.ErrShape) {
		t.Fatalf("engine mis-shaped mask returned %v, want ErrShape", err)
	}
	// None of the rejections above were dispatched, so no metrics moved.
	if m := eng.Metrics(); m.Calls != 0 || m.Failures != 0 {
		t.Fatalf("validation rejections leaked into metrics: %+v", m)
	}
	// WithMask(nil) clears an engine-default mask, restoring the unmasked
	// product.
	defEng, err := NewEngine(WithMask(a))
	if err != nil {
		t.Fatal(err)
	}
	res, err := defEng.Multiply(context.Background(), a, a, WithMask(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(Reference(a, a), res.C, 1e-9) {
		t.Fatal("WithMask(nil) did not clear the default mask")
	}
}

func TestMultiplyMaskedPrecedence(t *testing.T) {
	// Explicit mask argument outranks an engine-default mask; a per-call
	// option outranks both.
	a := NewER(128, 4, 1)
	x := NewER(128, 2, 2)
	y := NewER(128, 3, 3)
	want := Reference(a, a)
	wantX := maskCSR(want, x, false)
	wantY := maskCSR(want, y, false)

	eng, err := NewEngine(WithMask(x))
	if err != nil {
		t.Fatal(err)
	}
	viaArg, err := eng.MultiplyMasked(context.Background(), a, a, y)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(wantY, viaArg, 1e-9) {
		t.Fatal("explicit mask argument did not override the engine default")
	}
	viaOpt, err := eng.MultiplyMasked(context.Background(), a, a, y, WithMask(x))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(wantX, viaOpt, 1e-9) {
		t.Fatal("per-call option did not override the explicit mask argument")
	}
	pkg, err := MultiplyMasked(a, a, y, WithMask(x))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(wantX, pkg, 1e-9) {
		t.Fatal("package-level precedence differs from the engine method")
	}
	// A mis-shaped mask arriving via WithMask on the plain Multiply path is
	// rejected before dispatch and stays out of the metrics.
	before := eng.Metrics().Calls
	if _, err := eng.Multiply(context.Background(), a, a, WithMask(NewER(64, 2, 4))); err == nil {
		t.Fatal("mis-shaped WithMask not rejected")
	}
	if eng.Metrics().Calls != before {
		t.Fatal("pre-dispatch mask rejection leaked into metrics")
	}
}

func TestEWiseAddAndMult(t *testing.T) {
	a := NewER(256, 4, 11)
	b := NewER(256, 4, 12)
	ga, gb := Float64Matrix(a), Float64Matrix(b)

	sum, err := EWiseAdd(Arithmetic(), ga, gb)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := EWiseMult(Arithmetic(), ga, gb)
	if err != nil {
		t.Fatal(err)
	}
	// Dense oracle: union adds, intersection multiplies.
	dense := func(m *CSR) map[[2]int32]float64 {
		d := map[[2]int32]float64{}
		for i := int32(0); i < m.NumRows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				d[[2]int32{i, m.ColIdx[p]}] = m.Val[p]
			}
		}
		return d
	}
	da, db := dense(a), dense(b)
	dsum, dprod := dense(Float64CSR(sum)), dense(Float64CSR(prod))
	for k, v := range da {
		if w, ok := db[k]; ok {
			if dsum[k] != v+w {
				t.Fatalf("eWiseAdd at %v: %v, want %v", k, dsum[k], v+w)
			}
			if dprod[k] != v*w {
				t.Fatalf("eWiseMult at %v: %v, want %v", k, dprod[k], v*w)
			}
		} else if dsum[k] != v {
			t.Fatalf("eWiseAdd missing a-only entry %v", k)
		}
	}
	union, inter := 0, 0
	for k := range db {
		if _, ok := da[k]; ok {
			inter++
		}
	}
	union = len(da) + len(db) - inter
	if int(sum.NNZ()) != union || int(prod.NNZ()) != inter {
		t.Fatalf("supports: add %d (want %d), mult %d (want %d)",
			sum.NNZ(), union, prod.NNZ(), inter)
	}
	if _, err := EWiseAdd(Arithmetic(), ga, Float64Matrix(NewER(128, 2, 1))); !errors.Is(err, matrix.ErrShape) {
		t.Fatal("eWiseAdd shape mismatch not rejected")
	}
}

func TestOptionValidation(t *testing.T) {
	a := NewER(64, 3, 1)
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Option{
		"WithThreads":       WithThreads(-1),
		"WithNBins":         WithNBins(-2),
		"WithLocalBinBytes": WithLocalBinBytes(-3),
		"WithL2CacheBytes":  WithL2CacheBytes(-4),
		"WithMemoryBudget":  WithMemoryBudget(-5),
		"WithAlgorithm":     WithAlgorithm(Algorithm(99)),
	} {
		_, err := eng.Multiply(context.Background(), a, a, opt)
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: got %v, want *OptionError", name, err)
		}
		if !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("%s: error does not match ErrInvalidOption", name)
		}
		if _, err := NewEngine(opt); err == nil {
			t.Fatalf("NewEngine accepted invalid default %s", name)
		}
	}
	// The legacy struct path rejects the same values with the same type.
	for _, bad := range []Options{
		{Threads: -1}, {NBins: -1}, {LocalBinBytes: -1},
		{L2CacheBytes: -1}, {MemoryBudgetBytes: -1},
	} {
		var oe *OptionError
		if _, err := Multiply(a, a, bad); !errors.As(err, &oe) {
			t.Fatalf("Options%+v: got %v, want *OptionError", bad, err)
		}
		if _, err := MultiplyPartitioned(a, a, 2, bad); !errors.As(err, &oe) {
			t.Fatalf("MultiplyPartitioned Options%+v: got %v, want *OptionError", bad, err)
		}
	}
	// Zero values stay valid (auto defaults).
	if _, err := eng.Multiply(context.Background(), a, a,
		WithThreads(0), WithNBins(0), WithMemoryBudget(0)); err != nil {
		t.Fatalf("zero-valued options rejected: %v", err)
	}
}
