package pbspgemm

// Integration tests: every algorithm against every workload family the
// paper's evaluation uses, plus determinism, stress and failure cases that
// cut across packages.

import (
	"fmt"
	"sync"
	"testing"

	"pbspgemm/internal/gen"
)

// workloads returns input pairs spanning the paper's workload families at
// test scale.
func workloads() map[string][2]*CSR {
	return map[string][2]*CSR{
		"ER_ef4":    {gen.ERMatrix(10, 4, 1), gen.ERMatrix(10, 4, 2)},
		"ER_ef16":   {gen.ERMatrix(9, 16, 3), gen.ERMatrix(9, 16, 4)},
		"RMAT_ef8":  {gen.RMAT(9, 8, gen.Graph500Params, 5), gen.RMAT(9, 8, gen.Graph500Params, 6)},
		"banded":    {gen.Banded(700, 6, 7), gen.Banded(700, 6, 8)},
		"rect_tall": {rectangular(500, 80, 2000, 9), rectangular(80, 300, 1500, 10)},
	}
}

func rectangular(rows, cols int32, nnz int, seed uint64) *CSR {
	r := gen.NewRNG(seed)
	coo := &COO{NumRows: rows, NumCols: cols}
	for e := 0; e < nnz; e++ {
		coo.Row = append(coo.Row, r.Intn(rows))
		coo.Col = append(coo.Col, r.Intn(cols))
		coo.Val = append(coo.Val, r.Float64())
	}
	return coo.ToCSR()
}

func TestIntegrationAllAlgorithmsAllWorkloads(t *testing.T) {
	for name, pair := range workloads() {
		a, b := pair[0], pair[1]
		want := Reference(a, b)
		for _, alg := range []Algorithm{PB, Heap, Hash, HashVec, SPA} {
			t.Run(name+"/"+alg.String(), func(t *testing.T) {
				res, err := Multiply(a, b, Options{Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				if err := res.C.Validate(); err != nil {
					t.Fatalf("invalid CSR: %v", err)
				}
				if !EqualWithin(want, res.C, 1e-9) {
					t.Fatal("result differs from reference")
				}
			})
		}
	}
}

func TestIntegrationSurrogatesSquareCorrectly(t *testing.T) {
	// Squaring every Table VI surrogate (small scale) with PB and Hash must
	// agree — the Fig. 11 experiment's correctness precondition.
	for _, s := range gen.Catalog() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := s.Generate(64, 1)
			pb, err := Square(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			hash, err := Square(m, Options{Algorithm: Hash})
			if err != nil {
				t.Fatal(err)
			}
			if !EqualWithin(pb.C, hash.C, 1e-9) {
				t.Fatal("PB and Hash disagree on surrogate")
			}
			if pb.CF < 1 {
				t.Fatalf("cf = %v < 1", pb.CF)
			}
		})
	}
}

func TestIntegrationDeterministic(t *testing.T) {
	// Single-threaded runs are bitwise deterministic. Multi-threaded runs
	// have deterministic *structure* (the sorted, deduplicated key set does
	// not depend on scheduling) but may sum equal-key tuples in different
	// orders, so values agree only up to floating-point associativity.
	a := gen.ERMatrix(10, 8, 11)
	b := gen.ERMatrix(10, 8, 12)
	first, err := Multiply(a, b, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Multiply(a, b, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(first.C, again.C, 0) {
		t.Fatal("single-threaded runs not bitwise identical")
	}
	for _, threads := range []int{2, 4, 8} {
		res, err := Multiply(a, b, Options{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if !EqualWithin(first.C, res.C, 1e-12) {
			t.Fatalf("threads=%d: result differs beyond rounding", threads)
		}
		// Structure must be identical regardless of scheduling.
		if res.C.NNZ() != first.C.NNZ() {
			t.Fatalf("threads=%d: nnz differs", threads)
		}
		for p := range res.C.ColIdx {
			if res.C.ColIdx[p] != first.C.ColIdx[p] {
				t.Fatalf("threads=%d: structure differs at %d", threads, p)
			}
		}
	}
}

func TestIntegrationConcurrentMultiplies(t *testing.T) {
	// The library must be safe for concurrent independent multiplications
	// (shared inputs, separate outputs).
	a := gen.ERMatrix(9, 8, 21)
	b := gen.ERMatrix(9, 8, 22)
	want := Reference(a, b)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(alg Algorithm) {
			defer wg.Done()
			res, err := Multiply(a, b, Options{Algorithm: alg, Threads: 2})
			if err != nil {
				errs <- err
				return
			}
			if !EqualWithin(want, res.C, 1e-9) {
				errs <- fmt.Errorf("%v: concurrent result differs", alg)
			}
		}([]Algorithm{PB, Heap, Hash, HashVec}[g%4])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestIntegrationChainOfMultiplies(t *testing.T) {
	// (A·A)·A == A·(A·A): associativity across the library path — catches
	// canonical-form violations that single multiplications miss.
	a := gen.ERMatrix(8, 6, 31)
	aa, err := Square(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	left, err := Multiply(aa.C, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	right, err := Multiply(a, aa.C, Options{Algorithm: Hash})
	if err != nil {
		t.Fatal(err)
	}
	// Compare both against the reference for tolerance robustness.
	wantL := Reference(aa.C, a)
	wantR := Reference(a, aa.C)
	if !EqualWithin(wantL, left.C, 1e-9) {
		t.Fatal("(A·A)·A wrong")
	}
	if !EqualWithin(wantR, right.C, 1e-9) {
		t.Fatal("A·(A·A) wrong")
	}
}

func TestIntegrationHypersparse(t *testing.T) {
	// Hypersparse: far fewer nonzeros than rows (nnz << n). Exercises empty
	// rows/columns/bins throughout the pipeline.
	n := int32(1 << 14)
	coo := &COO{NumRows: n, NumCols: n}
	r := gen.NewRNG(77)
	for e := 0; e < 50; e++ {
		coo.Row = append(coo.Row, r.Intn(n))
		coo.Col = append(coo.Col, r.Intn(n))
		coo.Val = append(coo.Val, 1)
	}
	a := coo.ToCSR()
	want := Reference(a, a)
	for _, alg := range []Algorithm{PB, Heap, Hash, HashVec, SPA} {
		res, err := Square(a, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !EqualWithin(want, res.C, 1e-9) {
			t.Fatalf("%v: hypersparse result differs", alg)
		}
	}
}

func TestIntegrationDenseSmall(t *testing.T) {
	// Fully dense 64x64: the cf-maximal extreme (cf = 64).
	n := int32(64)
	coo := &COO{NumRows: n, NumCols: n}
	r := gen.NewRNG(88)
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, r.Float64())
		}
	}
	a := coo.ToCSR()
	want := Reference(a, a)
	res, err := Square(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !EqualWithin(want, res.C, 1e-9) {
		t.Fatal("dense square differs")
	}
	if res.CF != float64(n) {
		t.Fatalf("dense cf = %v, want %v", res.CF, n)
	}
}

func TestIntegrationExtremeBinOptions(t *testing.T) {
	a := gen.ERMatrix(9, 8, 41)
	want := Reference(a, a)
	for _, opt := range []Options{
		{NBins: 1},               // single bin: ESC without blocking
		{NBins: 1 << 20},         // more bins than rows: clamped
		{LocalBinBytes: 16},      // one-tuple local bins
		{LocalBinBytes: 1 << 20}, // local bins larger than global bins
		{L2CacheBytes: 1024},     // tiny cache budget => many bins
		{L2CacheBytes: 1 << 30},  // huge budget => single bin
	} {
		res, err := Square(a, opt)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if !EqualWithin(want, res.C, 1e-9) {
			t.Fatalf("%+v: result differs", opt)
		}
	}
}
