package pbspgemm

import (
	"context"
	"fmt"

	"pbspgemm/internal/core"
	"pbspgemm/internal/kernel"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/roofline"
)

// Plan records one Auto call's algorithm decision and the roofline-model
// inputs behind it (Section II of the paper: predicted GFLOPS = eta · beta
// · AI per algorithm family, with AI from the family's exact traffic
// denominator). It is reported on Result.Plan so callers can audit — or
// log and recalibrate — the planner's reasoning.
type Plan struct {
	// Chosen is the kernel the planner selected and ran.
	Chosen Algorithm
	// BetaGBs is the bandwidth the prediction used (WithBeta, or the
	// one-shot STREAM calibration).
	BetaGBs float64
	// Flops is the symbolic multiplication count of the product.
	Flops int64
	// NNZA, NNZB are the input sizes entering the traffic model.
	NNZA, NNZB int64
	// EstNNZC is the exact or estimated nnz(C); Sampled reports whether it
	// came from a strided row sample (large products) rather than the exact
	// symbolic pass.
	EstNNZC int64
	Sampled bool
	// CF is the predicted compression factor flop/nnz(C); the paper's
	// crossover between the families sits at cf ≈ 4 (higher when the outer
	// family runs squeezed — cheaper tuples widen PB's winning range).
	CF float64
	// OuterTupleBytes is the per-tuple byte cost the outer-family (PB)
	// prediction used: 12 when the kernel's squeezed 12-byte layout applies
	// to this product's bin geometry, 16 otherwise. The column family's
	// model always uses 16 (column kernels never move expanded tuples).
	OuterTupleBytes float64
	// SqueezedOuter reports whether the outer family was modeled (and, if
	// chosen, will run) with the squeezed tuple layout.
	SqueezedOuter bool
	// OuterLayout is the tuple layout behind OuterTupleBytes. The float64
	// engine plans LayoutSqueezed or LayoutWide; the typed entry points
	// (Boolean/float32/int32 semirings) run LayoutPattern (4 B) and
	// LayoutNarrow (8 B), whose per-layout roofline crossovers use the same
	// model with BytesPerTupleOuter = 4 or 8.
	OuterLayout TupleLayout
	// FusedOuter reports whether the outer family was modeled with the
	// fused sort→compress→assemble pipeline (the PB kernel's default; its
	// roofline denominator drops the compress term, and the column
	// efficiency is recalibrated so the crossover stays at cf ≈ 4 — see
	// roofline.DefaultEtaColumnFused).
	FusedOuter bool
	// AIOuter, AIColumn are the modeled arithmetic intensities (flops/byte)
	// of the outer-product (PB) and column (hash) families.
	AIOuter, AIColumn float64
	// PredictedOuterGFLOPS, PredictedColumnGFLOPS are eta·beta·AI per
	// family — the numbers the decision compares.
	PredictedOuterGFLOPS, PredictedColumnGFLOPS float64
	// PredictedFootprintBytes estimates the call's peak transient allocation
	// before any of it happens — the signal an admission controller needs to
	// shed or queue load ahead of OOM. The model: the chosen family's working
	// set (PB expands Flops tuples at OuterLayout.TupleBytes() each, capped
	// by WithMemoryBudget since budgeted runs tile panels to fit; column
	// kernels accumulate roughly the output once more) plus twice the
	// predicted output CSR (the kernel's copy and the caller-owned clone the
	// Engine detaches from the pooled workspace). Inputs are not counted —
	// they are already resident. An estimate, not a bound: it inherits
	// EstNNZC's sampling error and rounds workspace overheads away.
	PredictedFootprintBytes int64
}

// plannerExactFlopLimit bounds the exact symbolic nnz(C) pass: products up
// to 4 Mflop (a few milliseconds of marker scanning) are counted exactly,
// larger ones are estimated from a row sample so planning stays cheap
// relative to the multiplication itself.
const plannerExactFlopLimit = 4 << 20

// plan runs the Auto planner: symbolic flop pass, nnz(C) estimate, roofline
// prediction per family, pick the predicted-fastest kernel. scratch pools
// the estimator's marker (the caller passes the checked-out workspace's
// slot, keeping steady-state planned calls allocation-free).
func (e *Engine) plan(cfg *config, a, b *CSR, scratch *[]int32) *Plan {
	p := &Plan{Chosen: PB, NNZA: a.NNZ(), NNZB: b.NNZ()}
	p.Flops = flopsNoAlloc(a, b)
	if p.Flops == 0 {
		// Empty product: nothing to move, any kernel finishes immediately.
		p.OuterLayout = core.LayoutWide
		p.PredictedFootprintBytes = p.footprint(int64(a.NumRows), cfg.budget)
		return p
	}
	p.EstNNZC, p.Sampled = matrix.EstimateProductNNZ(a, b, p.Flops, plannerExactFlopLimit, scratch)
	p.CF = float64(p.Flops) / float64(p.EstNNZC)
	beta := cfg.beta
	if beta == 0 {
		beta = roofline.CalibrateBeta(cfg.threads)
	}
	p.BetaGBs = beta
	m := roofline.DefaultModel(beta)
	// Per-run tuple cost and pipeline for the outer family: DefaultModel
	// assumes the squeezed 12-byte layout under the fused pipeline (the
	// engine default). When the PB kernel cannot squeeze this product — it
	// lacks the capability, or the bin geometry puts localRowBits + colBits
	// past 32 — its expanded tuples move the full 16 bytes, the effective
	// outer efficiency drops by 12/16, and the predicted crossover the
	// decision below uses slides down accordingly. A kernel without the
	// fused-compress capability is modeled with the PR 4 three-pass bound
	// (UnfusedModel's calibration). Column kernels never move expanded
	// tuples; their model is unaffected by either.
	p.SqueezedOuter, p.FusedOuter = false, false
	p.OuterLayout = core.LayoutWide
	if k, ok := kernel.Get(PB.String()); ok {
		caps := k.Capabilities()
		p.FusedOuter = caps.FusedCompress
		if caps.SqueezedTuples {
			layout := core.PlanLayout(a.NumRows, b.NumCols, p.Flops, core.Options{
				NBins:             cfg.nbins,
				L2CacheBytes:      cfg.l2Cache,
				Threads:           cfg.threads,
				MemoryBudgetBytes: cfg.budget,
			})
			p.OuterLayout = layout
			p.SqueezedOuter = layout == core.LayoutSqueezed
		}
	}
	if !p.FusedOuter {
		m = roofline.UnfusedModel(beta)
	}
	m.BytesPerTupleOuter = float64(p.OuterLayout.TupleBytes())
	p.OuterTupleBytes = m.OuterBytes()
	if p.FusedOuter {
		p.AIOuter = roofline.AIOuterFusedExact(p.NNZA, p.NNZB, p.Flops, m.OuterBytes())
	} else {
		p.AIOuter = roofline.AIOuterExact(p.NNZA, p.NNZB, p.Flops, p.EstNNZC, m.OuterBytes())
	}
	p.AIColumn = roofline.AIColumnExact(p.NNZB, p.Flops, p.EstNNZC, m.BytesPerTuple)
	p.PredictedOuterGFLOPS = m.PredictOuter(p.NNZA, p.NNZB, p.Flops, p.EstNNZC)
	p.PredictedColumnGFLOPS = m.PredictColumn(p.NNZB, p.Flops, p.EstNNZC)
	if !m.PrefersOuter(p.NNZA, p.NNZB, p.Flops, p.EstNNZC) {
		// Hash is the column family's strongest member in the paper's
		// evaluation (and ours); it represents the family here.
		p.Chosen = Hash
	}
	p.PredictedFootprintBytes = p.footprint(int64(a.NumRows), cfg.budget)
	return p
}

// footprint implements the PredictedFootprintBytes model for the chosen
// family (see the field's doc comment).
func (p *Plan) footprint(rows, budget int64) int64 {
	// One output CSR: (rows+1)×8 RowPtr + nnz×(4+8) ColIdx/Val.
	out := (rows+1)*8 + p.EstNNZC*12
	var work int64
	if p.Chosen == PB {
		work = p.Flops * p.OuterLayout.TupleBytes()
		if budget > 0 && budget < work {
			work = budget
		}
	} else {
		// Column kernels never materialize the expansion; their hash/heap
		// accumulators hold on the order of the output once more.
		work = p.EstNNZC * matrix.BytesPerTuple
	}
	return work + 2*out
}

// Grid is a 2D block partition geometry for sharded products: A's rows are
// split into Rows bands, B's columns into Cols bands, and the shared inner
// dimension into Inner bands, so C(i,j) = Σ_k A(i,k)·B(k,j) decomposes into
// Rows×Cols×Inner independent block multiplies plus a per-(i,j) EWiseAdd
// reduce over k.
type Grid struct {
	Rows, Cols, Inner int
}

// Blocks is the number of block multiplies the grid induces.
func (g Grid) Blocks() int { return g.Rows * g.Cols * g.Inner }

func (g Grid) String() string {
	return fmt.Sprintf("%dx%dx%d", g.Rows, g.Cols, g.Inner)
}

// BlockPlan is one block multiply A(i,k)·B(k,j) of a GridPlan, with the
// planner's full pre-execution analysis for that block. Its
// Plan.PredictedFootprintBytes is exactly what a target node's admission
// control will see for this block, so a partitioner can grow the grid until
// every block is admissible everywhere.
type BlockPlan struct {
	I, J, K int
	// A, B alias GridPlan.A[I][K] and GridPlan.B[K][J].
	A, B *CSR
	Plan *Plan
}

// GridPlan is the result of Engine.PlanBlocks: the extracted input blocks,
// the boundary offsets that place each block back into the full product, and
// a per-block Plan. Blocks are read-only (a 1×1×1 grid aliases the inputs
// themselves).
type GridPlan struct {
	Grid Grid
	// RowOffsets (len Rows+1), ColOffsets (len Cols+1) and InnerOffsets
	// (len Inner+1) are the split boundaries over A's rows, B's columns and
	// the inner dimension.
	RowOffsets, ColOffsets, InnerOffsets []int32
	// A[i][k] is rows [RowOffsets[i],RowOffsets[i+1]) × inner band k of A;
	// B[k][j] is inner band k × cols [ColOffsets[j],ColOffsets[j+1]) of B.
	A [][]*CSR
	B [][]*CSR
	// Blocks holds one entry per (i,j,k), k fastest then j then i — so a
	// sequential scan meets each C(i,j)'s partial products in ascending k,
	// the reduce order that matches the single-node fold.
	Blocks []BlockPlan
	// MaxFootprintBytes is the largest per-block PredictedFootprintBytes —
	// the number a partitioner compares against the target admission ceiling.
	MaxFootprintBytes int64
}

// PlanBlocks partitions C = A·B on grid g and plans every block multiply
// without running any of them: inputs are cut with block-local indices, and
// each (i,j,k) block gets the same pre-execution analysis Engine.Plan gives
// a full product (symbolic flops, nnz estimate, predicted footprint). Grid
// dimensions are clamped to the matrix extents, so degenerate grids never
// produce empty bands. Serving-layer coordinators use the per-block
// PredictedFootprintBytes to choose a grid whose blocks all pass admission
// control on whatever node executes them.
func (e *Engine) PlanBlocks(ctx context.Context, a, b *CSR, g Grid, opts ...Option) (*GridPlan, error) {
	if _, err := resolve(e.defaults, opts); err != nil {
		return nil, err
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	if g.Rows < 1 || g.Cols < 1 || g.Inner < 1 {
		return nil, &OptionError{Option: "PlanBlocks(Grid)", Value: int64(g.Rows * g.Cols * g.Inner)}
	}
	gp := &GridPlan{
		RowOffsets:   matrix.SplitPoints(a.NumRows, g.Rows),
		ColOffsets:   matrix.SplitPoints(b.NumCols, g.Cols),
		InnerOffsets: matrix.SplitPoints(a.NumCols, g.Inner),
	}
	// SplitPoints clamps oversized part counts; record the effective grid.
	gp.Grid = Grid{
		Rows:  len(gp.RowOffsets) - 1,
		Cols:  len(gp.ColOffsets) - 1,
		Inner: len(gp.InnerOffsets) - 1,
	}
	gp.A = make([][]*CSR, gp.Grid.Rows)
	for i := range gp.A {
		gp.A[i] = make([]*CSR, gp.Grid.Inner)
		for k := range gp.A[i] {
			gp.A[i][k] = matrix.Block(a,
				gp.RowOffsets[i], gp.RowOffsets[i+1],
				gp.InnerOffsets[k], gp.InnerOffsets[k+1])
		}
	}
	gp.B = make([][]*CSR, gp.Grid.Inner)
	for k := range gp.B {
		gp.B[k] = make([]*CSR, gp.Grid.Cols)
		for j := range gp.B[k] {
			gp.B[k][j] = matrix.Block(b,
				gp.InnerOffsets[k], gp.InnerOffsets[k+1],
				gp.ColOffsets[j], gp.ColOffsets[j+1])
		}
	}
	gp.Blocks = make([]BlockPlan, 0, gp.Grid.Blocks())
	for i := 0; i < gp.Grid.Rows; i++ {
		for j := 0; j < gp.Grid.Cols; j++ {
			for k := 0; k < gp.Grid.Inner; k++ {
				plan, err := e.Plan(ctx, gp.A[i][k], gp.B[k][j], opts...)
				if err != nil {
					return nil, err
				}
				if plan.PredictedFootprintBytes > gp.MaxFootprintBytes {
					gp.MaxFootprintBytes = plan.PredictedFootprintBytes
				}
				gp.Blocks = append(gp.Blocks, BlockPlan{
					I: i, J: j, K: k, A: gp.A[i][k], B: gp.B[k][j], Plan: plan,
				})
			}
		}
	}
	return gp, nil
}

// Plan runs the Auto planner's pre-execution analysis — symbolic flop pass,
// nnz(C) estimate, per-family roofline prediction, footprint model — without
// multiplying. Serving layers use it for admission control: the returned
// Plan's PredictedFootprintBytes says what a subsequent Multiply would cost
// in transient memory, and Chosen which kernel Auto would run. The call does
// not touch the engine's metrics (nothing was dispatched); ctx is observed
// before the symbolic pass, like Auto's own pre-planning check.
func (e *Engine) Plan(ctx context.Context, a, b *CSR, opts ...Option) (*Plan, error) {
	cfg, err := resolve(e.defaults, opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		cfg.ctx = ctx
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	if cancel := cfg.cancelFunc(); cancel != nil {
		if err := cancel(); err != nil {
			return nil, err
		}
	}
	ws := e.pool.Get().(*kernel.Workspace)
	p := e.plan(&cfg, a, b, &ws.PlanScratch)
	e.pool.Put(ws)
	return p, nil
}
