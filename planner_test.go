package pbspgemm

import (
	"context"
	"errors"
	"testing"
)

// plannerEngine returns an engine with a fixed beta so tests never trigger
// the STREAM calibration (the decision is beta-invariant anyway — both
// families scale linearly with beta — but fixing it keeps tests fast and
// deterministic).
func plannerEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	eng, err := NewEngine(append([]Option{WithBeta(50)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// lowCFFixture is an ER product with cf ≈ 1, the regime the paper's model
// (and Fig. 7) assigns to PB-SpGEMM.
func lowCFFixture() (*CSR, *CSR) {
	return NewER(1024, 4, 1), NewER(1024, 4, 2)
}

// highCFFixture is a small dense-ish ER square with cf ≈ 20, far past the
// cf ≈ 4 crossover where hash wins (conclusions 5 and 6).
func highCFFixture() (*CSR, *CSR) {
	return NewER(192, 64, 3), NewER(192, 64, 4)
}

func TestAutoSelectsPBAtLowCF(t *testing.T) {
	eng := plannerEngine(t)
	a, b := lowCFFixture()
	res, err := eng.Multiply(context.Background(), a, b, WithAlgorithm(Auto))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("Auto call returned no Plan")
	}
	if res.Plan.Chosen != PB || res.Algorithm != PB {
		t.Fatalf("low-cf fixture chose %v (plan %v), want PB", res.Algorithm, res.Plan.Chosen)
	}
	if res.Plan.CF > 2 {
		t.Fatalf("fixture cf = %v, expected ≈ 1", res.Plan.CF)
	}
	if res.Plan.PredictedOuterGFLOPS < res.Plan.PredictedColumnGFLOPS {
		t.Fatal("plan contradicts its own predictions")
	}
	if !EqualWithin(Reference(a, b), res.C, 1e-9) {
		t.Fatal("Auto result differs from reference")
	}
}

func TestAutoSelectsColumnKernelAtHighCF(t *testing.T) {
	eng := plannerEngine(t)
	a, b := highCFFixture()
	res, err := eng.Multiply(context.Background(), a, b, WithAlgorithm(Auto))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("Auto call returned no Plan")
	}
	switch res.Plan.Chosen {
	case Heap, Hash, HashVec, SPA, ColumnESC:
	default:
		t.Fatalf("high-cf fixture chose %v, want a column kernel", res.Plan.Chosen)
	}
	if res.Plan.CF < 4 {
		t.Fatalf("fixture cf = %v, expected past the ≈4 crossover", res.Plan.CF)
	}
	if !EqualWithin(Reference(a, b), res.C, 1e-9) {
		t.Fatal("Auto result differs from reference")
	}
}

// TestAutoBitIdenticalToChosenKernel: an Auto run must produce exactly the
// bytes the chosen kernel produces when selected explicitly — the planner
// adds a decision, never a different computation.
func TestAutoBitIdenticalToChosenKernel(t *testing.T) {
	eng := plannerEngine(t, WithThreads(2))
	for _, fixture := range []func() (*CSR, *CSR){lowCFFixture, highCFFixture} {
		a, b := fixture()
		auto, err := eng.Multiply(context.Background(), a, b, WithAlgorithm(Auto))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eng.Multiply(context.Background(), a, b, WithAlgorithm(auto.Plan.Chosen))
		if err != nil {
			t.Fatal(err)
		}
		if !EqualWithin(auto.C, direct.C, 0) {
			t.Fatalf("Auto output is not bit-identical to %v run directly", auto.Plan.Chosen)
		}
		if direct.Plan != nil {
			t.Fatal("explicit algorithm selection must not report a Plan")
		}
	}
}

// TestAutoPlanFields: the model inputs exposed on Plan are populated and
// self-consistent.
func TestAutoPlanFields(t *testing.T) {
	eng := plannerEngine(t)
	a, b := lowCFFixture()
	res, err := eng.Multiply(context.Background(), a, b, WithAlgorithm(Auto))
	if err != nil {
		t.Fatal(err)
	}
	p := res.Plan
	if p.BetaGBs != 50 {
		t.Fatalf("plan beta %v, want the WithBeta default 50", p.BetaGBs)
	}
	if p.Flops != Flops(a, b) {
		t.Fatalf("plan flops %d, want %d", p.Flops, Flops(a, b))
	}
	if p.NNZA != a.NNZ() || p.NNZB != b.NNZ() {
		t.Fatal("plan input sizes wrong")
	}
	// This fixture is small enough for the exact symbolic pass.
	if p.Sampled {
		t.Fatal("small fixture should use the exact nnz(C) pass")
	}
	if p.EstNNZC != res.C.NNZ() {
		t.Fatalf("exact plan nnzC %d, product has %d", p.EstNNZC, res.C.NNZ())
	}
	if p.AIOuter <= 0 || p.AIColumn <= 0 || p.PredictedOuterGFLOPS <= 0 || p.PredictedColumnGFLOPS <= 0 {
		t.Fatalf("plan model outputs not populated: %+v", p)
	}
	// This fixture's geometry squeezes (small square ER), so the planner
	// must have modeled the outer family at 12 bytes per tuple — and the
	// executed PB run must report the same layout on its stats.
	if !p.SqueezedOuter || p.OuterTupleBytes != 12 {
		t.Fatalf("plan layout: squeezed=%v bytes=%v, want true/12", p.SqueezedOuter, p.OuterTupleBytes)
	}
	if res.PB == nil || res.PB.Layout != LayoutSqueezed || res.PB.TupleBytes != 12 {
		t.Fatalf("executed PB stats do not report the squeezed layout: %+v", res.PB)
	}
	// The PB kernel declares the fused pipeline, so the planner must have
	// modeled the outer family with the fused bound — and the executed run
	// must report fused on its stats.
	if !p.FusedOuter {
		t.Fatalf("plan did not model the fused outer pipeline: %+v", p)
	}
	if !res.PB.Fused || res.PB.Fuse <= 0 || res.PB.FusedBytes <= 0 {
		t.Fatalf("executed PB stats do not report the fused phase: %+v", res.PB)
	}
}

// TestEngineMetricsByAlgorithm: the per-algorithm breakdown advances for
// baseline kernels dispatched through the engine (the pre-registry engine
// recorded nothing for them), and Auto calls are attributed to the chosen
// kernel with AutoChosen.
func TestEngineMetricsByAlgorithm(t *testing.T) {
	eng := plannerEngine(t)
	a, b := lowCFFixture()
	ctx := context.Background()
	if _, err := eng.Multiply(ctx, a, b, WithAlgorithm(Hash)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Multiply(ctx, a, b, WithAlgorithm(Hash)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Multiply(ctx, a, b, WithAlgorithm(Auto)); err != nil {
		t.Fatal(err) // low-cf: planner picks PB
	}
	m := eng.Metrics()
	hash := m.ByAlgorithm[Hash]
	if hash.Calls != 2 || hash.Failures != 0 {
		t.Fatalf("hash calls %d (%d failures), want 2 (0)", hash.Calls, hash.Failures)
	}
	wantFlops := 2 * Flops(a, b)
	if hash.Flops != wantFlops {
		t.Fatalf("hash flops %d, want %d", hash.Flops, wantFlops)
	}
	if hash.NNZProduced <= 0 || hash.Busy <= 0 {
		t.Fatalf("hash counters not populated: %+v", hash)
	}
	pb := m.ByAlgorithm[PB]
	if pb.Calls != 1 || pb.AutoChosen != 1 {
		t.Fatalf("pb calls %d autoChosen %d, want 1 and 1", pb.Calls, pb.AutoChosen)
	}
	if hash.AutoChosen != 0 {
		t.Fatal("explicit hash calls must not count as planner-chosen")
	}
	if m.Calls != 3 {
		t.Fatalf("total calls %d, want 3", m.Calls)
	}
}

// TestWithBetaValidationAndLegacyAuto: negative beta is rejected like every
// option, and the deprecated struct entry point refuses Auto (it has no
// planner).
func TestWithBetaValidationAndLegacyAuto(t *testing.T) {
	a := NewER(64, 3, 1)
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Multiply(context.Background(), a, a, WithBeta(-1)); !errors.Is(err, ErrInvalidOption) {
		t.Fatalf("WithBeta(-1) returned %v, want ErrInvalidOption", err)
	}
	if _, err := Multiply(a, a, Options{Algorithm: Auto}); err == nil {
		t.Fatal("legacy Multiply accepted Auto")
	}
	// Auto itself is a valid option value.
	if err := WithAlgorithm(Auto)(&config{}); err != nil {
		t.Fatalf("WithAlgorithm(Auto) rejected: %v", err)
	}
}
