package pbspgemm

import (
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/semiring"
)

// Semiring defines (⊕, ⊗, 0̄) over an element type T — the algebra a
// generic multiplication runs over. Plus must be associative and commutative
// with identity Zero; Times must distribute over Plus. The compress phase
// folds duplicate (row, col) tuples with Plus; entries equal to Zero after
// folding are kept, matching GraphBLAS semantics (structural zeros are
// dropped only by explicit pruning).
type Semiring[T any] = semiring.Semiring[T]

// Matrix is a generic sparse matrix in CSR layout — the row-major view every
// semiring operation produces and consumes as its B operand and result. For
// T = float64 it is layout-identical to CSR; Float64Matrix and Float64CSR
// convert between the two without copying.
type Matrix[T any] = semiring.CSRg[T]

// ColMatrix is the column-compressed (CSC) counterpart of Matrix — the
// layout the outer-product kernel streams A in. Build one with
// (*Matrix[T]).ToCSC once and reuse it across multiplications that share A.
type ColMatrix[T any] = semiring.CSCg[T]

// SemiringPlan reports how a MultiplyOver call executed: whether a typed
// tuple-layout fast path ran (and which layout), or why the generic engine
// ran instead. Request one with WithSemiringPlan.
type SemiringPlan = semiring.Plan

// Stock semirings. Each call returns a fresh value; Semiring is a plain
// struct, so callers can also assemble their own.
var (
	// Arithmetic is the ordinary (+, ×) semiring over float64 — plain SpGEMM.
	Arithmetic = semiring.Arithmetic
	// Arithmetic32 is (+, ×) over float32 — plain SpGEMM at half the value
	// width, dispatched onto the 8-byte narrow tuple layout when the packed
	// keys fit 32 bits.
	Arithmetic32 = semiring.Arithmetic32
	// ArithmeticInt32 is (+, ×) over int32 — exact integer SpGEMM (path and
	// triangle counting), dispatched onto the 8-byte narrow tuple layout.
	ArithmeticInt32 = semiring.ArithmeticInt32
	// Boolean is the (∨, ∧) semiring — structural SpGEMM, the multi-source
	// BFS algebra.
	Boolean = semiring.Boolean
	// MinPlus is the tropical (min, +) semiring — one multiplication is one
	// relaxation step of all-pairs shortest paths.
	MinPlus = semiring.MinPlus
	// MaxTimes is the (max, ×) semiring of probabilistic reachability.
	MaxTimes = semiring.MaxTimes
	// PlusMax is the (+, max) semiring (bottleneck accumulation).
	PlusMax = semiring.PlusMax
)

// MatrixOf lifts a float64 CSR into a generic matrix, mapping each stored
// value with f (e.g. func(float64) bool { return true } for Boolean).
func MatrixOf[T any](m *CSR, f func(float64) T) *Matrix[T] {
	return semiring.FromCSR(m, f)
}

// Float64Matrix wraps a CSR as a Matrix[float64] without copying: both views
// share the same underlying arrays.
func Float64Matrix(m *CSR) *Matrix[float64] {
	return &Matrix[float64]{
		NumRows: m.NumRows, NumCols: m.NumCols,
		RowPtr: m.RowPtr, ColIdx: m.ColIdx, Val: m.Val,
	}
}

// Float64CSR is the inverse of Float64Matrix: a zero-copy CSR view of a
// float64 generic matrix.
func Float64CSR(g *Matrix[float64]) *CSR {
	return &CSR{
		NumRows: g.NumRows, NumCols: g.NumCols,
		RowPtr: g.RowPtr, ColIdx: g.ColIdx, Val: g.Val,
	}
}

// MultiplyOver computes C = A ⊗ B over an arbitrary semiring with the
// PB-SpGEMM structure (outer-product expand, propagation-blocked binning,
// per-bin sort, compress folding duplicates with sr.Plus). A streams in
// column-major form — convert once with (*Matrix[T]).ToCSC and reuse across
// calls sharing A. Honors WithThreads, WithMemoryBudget, WithMask /
// WithComplementMask and WithContext; WithAlgorithm is ignored (the generic
// path is always PB-structured). For repeated calls, EngineMultiplyOver
// additionally reuses pooled workspaces.
func MultiplyOver[T any](sr Semiring[T], a *ColMatrix[T], b *Matrix[T], opts ...Option) (*Matrix[T], error) {
	cfg, err := resolve(nil, opts)
	if err != nil {
		return nil, err
	}
	return semiring.MultiplyOpts(sr, a, b, cfg.semiringOptions(nil))
}

// MultiplyMasked computes the masked product C⟨M⟩ = (A·B) ∘ M over the
// arithmetic semiring: only positions where mask stores an entry survive
// (GraphBLAS masked mxm; the unmasked A·B is never materialized). Pass
// WithComplementMask via opts to invert the mask instead. Triangle counting
// is MultiplyMasked(A, A, A) followed by a value sum.
func MultiplyMasked(a, b, mask *CSR, opts ...Option) (*CSR, error) {
	// Precedence matches Engine.MultiplyMasked: per-call options override
	// the explicit mask argument.
	var cfg config
	if mask != nil {
		cfg.mask = mask
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.mask == nil {
		return nil, errNilMask
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	sopt := cfg.semiringOptions(nil)
	c, err := semiring.MultiplyOpts(Arithmetic(), colView(a.ToCSC()), Float64Matrix(b), sopt)
	if err != nil {
		return nil, err
	}
	return Float64CSR(c), nil
}

// EWiseAdd returns the element-wise sum of a and b over sr.Plus: the union
// of the supports, overlaps folded with Plus (GraphBLAS eWiseAdd). With
// MinPlus this is the relaxation merge min(D, D²) of shortest-path rounds.
func EWiseAdd[T any](sr Semiring[T], a, b *Matrix[T]) (*Matrix[T], error) {
	return semiring.EWiseAdd(sr, a, b)
}

// EWiseMult returns the element-wise product of a and b over sr.Times: the
// intersection of the supports (GraphBLAS eWiseMult, the Hadamard product).
func EWiseMult[T any](sr Semiring[T], a, b *Matrix[T]) (*Matrix[T], error) {
	return semiring.EWiseMult(sr, a, b)
}

// semiringOptions lowers the resolved config to the generic engine's
// options; ws is the pooled workspace (nil for one-shot calls).
func (c *config) semiringOptions(ws *Workspace) semiring.Options {
	return semiring.Options{
		Threads:           c.threads,
		MemoryBudgetBytes: c.budget,
		Workspace:         ws,
		Mask:              c.mask,
		Complement:        c.complement,
		Cancel:            c.cancelFunc(),
		Plan:              c.plan,
	}
}

// colView wraps a float64 CSC as a generic column matrix without copying.
func colView(m *matrix.CSC) *ColMatrix[float64] {
	return &ColMatrix[float64]{
		NumRows: m.NumRows, NumCols: m.NumCols,
		ColPtr: m.ColPtr, RowIdx: m.RowIdx, Val: m.Val,
	}
}
