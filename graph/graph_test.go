package graph

import (
	"testing"

	"pbspgemm"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(n int32) *Graph {
	coo := &matrix.COO{NumRows: n, NumCols: n}
	for i := int32(0); i+1 < n; i++ {
		coo.Row = append(coo.Row, i, i+1)
		coo.Col = append(coo.Col, i+1, i)
		coo.Val = append(coo.Val, 1, 1)
	}
	return &Graph{Adj: coo.ToCSR()}
}

// completeGraph returns K_n.
func completeGraph(n int32) *Graph {
	coo := &matrix.COO{NumRows: n, NumCols: n}
	for i := int32(0); i < n; i++ {
		for j := int32(0); j < n; j++ {
			if i != j {
				coo.Row = append(coo.Row, i)
				coo.Col = append(coo.Col, j)
				coo.Val = append(coo.Val, 1)
			}
		}
	}
	return &Graph{Adj: coo.ToCSR()}
}

func TestTrianglesKnownGraphs(t *testing.T) {
	// K_n has C(n,3) triangles.
	for _, n := range []int32{3, 4, 5, 10} {
		g := completeGraph(n)
		got, err := g.Triangles()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(n) * int64(n-1) * int64(n-2) / 6
		if got != want {
			t.Fatalf("K_%d: %d triangles, want %d", n, got, want)
		}
	}
	// A path has none.
	if got, _ := pathGraph(20).Triangles(); got != 0 {
		t.Fatalf("path graph has %d triangles, want 0", got)
	}
}

func TestTrianglesAgreeAcrossAlgorithms(t *testing.T) {
	// The masked-multiply count must agree with the legacy unmasked
	// formulation (materialize A² with each algorithm, Hadamard-mask, sum).
	g := FromAdjacency(gen.ER(512, 6, 3))
	masked, err := g.Triangles()
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []pbspgemm.Algorithm{pbspgemm.PB, pbspgemm.Hash, pbspgemm.Heap} {
		sq, err := pbspgemm.Square(g.Adj, pbspgemm.Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		mass := matrix.ElementWiseMultiplySum(sq.C, g.Adj)
		if legacy := int64(mass+0.5) / 6; legacy != masked {
			t.Fatalf("%v: masked count %d != unmasked count %d", alg, masked, legacy)
		}
	}
}

func TestPerVertexTrianglesSumsToTotal(t *testing.T) {
	g := FromAdjacency(gen.ER(300, 8, 5))
	per, err := g.PerVertexTriangles()
	if err != nil {
		t.Fatal(err)
	}
	total, err := g.Triangles()
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range per {
		sum += c
	}
	if sum != 3*total {
		t.Fatalf("per-vertex sum %d != 3*total %d", sum, 3*total)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// Every vertex of K_5 has coefficient 1; path interior vertices 0.
	cc, err := completeGraph(5).ClusteringCoefficients()
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cc {
		if c != 1 {
			t.Fatalf("K_5 vertex %d coefficient %v, want 1", v, c)
		}
	}
	cc, err = pathGraph(10).ClusteringCoefficients()
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cc {
		if c != 0 {
			t.Fatalf("path vertex %d coefficient %v, want 0", v, c)
		}
	}
	gcc, err := completeGraph(6).GlobalClusteringCoefficient()
	if err != nil {
		t.Fatal(err)
	}
	if gcc != 1 {
		t.Fatalf("K_6 global coefficient %v, want 1", gcc)
	}
}

func TestMultiSourceBFSPath(t *testing.T) {
	g := pathGraph(10)
	levels, err := g.MultiSourceBFS([]int32{0, 9, 5})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 10; v++ {
		if levels[0][v] != v {
			t.Fatalf("from 0: level[%d] = %d, want %d", v, levels[0][v], v)
		}
		if levels[1][v] != 9-v {
			t.Fatalf("from 9: level[%d] = %d, want %d", v, levels[1][v], 9-v)
		}
		want := v - 5
		if want < 0 {
			want = -want
		}
		if levels[2][v] != want {
			t.Fatalf("from 5: level[%d] = %d, want %d", v, levels[2][v], want)
		}
	}
}

func TestMultiSourceBFSMatchesSequentialBFS(t *testing.T) {
	g := FromAdjacency(gen.RMAT(9, 4, gen.Graph500Params, 7))
	sources := []int32{0, 17, 100, 301}
	levels, err := g.MultiSourceBFS(sources)
	if err != nil {
		t.Fatal(err)
	}
	for s, src := range sources {
		want := sequentialBFS(g.Adj, src)
		for v := range want {
			if levels[s][v] != want[v] {
				t.Fatalf("source %d: level[%d] = %d, want %d", src, v, levels[s][v], want[v])
			}
		}
	}
}

func sequentialBFS(a *pbspgemm.CSR, src int32) []int32 {
	dist := make([]int32, a.NumRows)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
			w := a.ColIdx[p]
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func TestMultiSourceBFSBadSource(t *testing.T) {
	g := pathGraph(5)
	if _, err := g.MultiSourceBFS([]int32{99}); err == nil {
		t.Fatal("expected out-of-range source error")
	}
	levels, err := g.MultiSourceBFS(nil)
	if err != nil || len(levels) != 0 {
		t.Fatal("empty source list should be a no-op")
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(10)
	ecc, err := g.Eccentricity(0)
	if err != nil {
		t.Fatal(err)
	}
	if ecc != 9 {
		t.Fatalf("eccentricity = %d, want 9", ecc)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two disjoint triangles plus an isolated vertex: 3 components.
	coo := &matrix.COO{NumRows: 7, NumCols: 7}
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}}
	for _, e := range edges {
		coo.Row = append(coo.Row, e[0], e[1])
		coo.Col = append(coo.Col, e[1], e[0])
		coo.Val = append(coo.Val, 1, 1)
	}
	g := &Graph{Adj: coo.ToCSR()}
	comp, n, err := g.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("first triangle split across components")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("second triangle split across components")
	}
	if comp[0] == comp[3] || comp[0] == comp[6] || comp[3] == comp[6] {
		t.Fatal("distinct components merged")
	}
}

func TestConnectedComponentsLargerThanBatch(t *testing.T) {
	// 40 disjoint edges => 40 components, forcing several BFS sweeps.
	coo := &matrix.COO{NumRows: 80, NumCols: 80}
	for i := int32(0); i < 80; i += 2 {
		coo.Row = append(coo.Row, i, i+1)
		coo.Col = append(coo.Col, i+1, i)
		coo.Val = append(coo.Val, 1, 1)
	}
	g := &Graph{Adj: coo.ToCSR()}
	comp, n, err := g.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("components = %d, want 40", n)
	}
	for i := int32(0); i < 80; i += 2 {
		if comp[i] != comp[i+1] {
			t.Fatalf("edge endpoints %d,%d in different components", i, i+1)
		}
	}
}

func TestFromAdjacencyProperties(t *testing.T) {
	g := FromAdjacency(gen.ER(200, 5, 9))
	a := g.Adj
	// Symmetric, zero diagonal, 0/1 values.
	if !pbspgemm.EqualWithin(a, a.Transpose(), 0) {
		t.Fatal("adjacency not symmetric")
	}
	for i := int32(0); i < a.NumRows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			if a.ColIdx[p] == i {
				t.Fatal("diagonal entry present")
			}
			if a.Val[p] != 1 {
				t.Fatal("non-unit value")
			}
		}
	}
	if g.NumVertices() != 200 || g.NumEdges() != a.NNZ()/2 {
		t.Fatal("counts wrong")
	}
	var degSum int64
	for _, d := range g.Degrees() {
		degSum += d
	}
	if degSum != a.NNZ() {
		t.Fatal("degree sum != nnz")
	}
}

func TestAPSPStepConvergesToFloydWarshall(t *testing.T) {
	// Small weighted digraph with deterministic pseudo-random weights; the
	// min-plus relaxation doubled ⌈log₂ n⌉ times must reach the full APSP
	// closure computed by Floyd–Warshall.
	n := int32(24)
	coo := &matrix.COO{NumRows: n, NumCols: n}
	state := uint64(99)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for e := 0; e < int(n)*3; e++ {
		i := int32(next() % uint64(n))
		j := int32(next() % uint64(n))
		if i == j {
			continue
		}
		coo.Row = append(coo.Row, i)
		coo.Col = append(coo.Col, j)
		coo.Val = append(coo.Val, 1+float64(next()%100)/10)
	}
	d := coo.ToCSR()

	const inf = 1e308
	want := make([][]float64, n)
	for i := range want {
		want[i] = make([]float64, n)
		for j := range want[i] {
			want[i][j] = inf
		}
	}
	for i := int32(0); i < n; i++ {
		for p := d.RowPtr[i]; p < d.RowPtr[i+1]; p++ {
			if v := d.Val[p]; v < want[i][d.ColIdx[p]] {
				want[i][d.ColIdx[p]] = v
			}
		}
	}
	for k := int32(0); k < n; k++ {
		for i := int32(0); i < n; i++ {
			for j := int32(0); j < n; j++ {
				if rel := want[i][k] + want[k][j]; rel < want[i][j] {
					want[i][j] = rel
				}
			}
		}
	}

	cur := d
	for s := 0; s < 5; s++ { // ⌈log₂ 24⌉ = 5 doublings
		var err error
		cur, err = APSPStep(cur)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < n; i++ {
		got := make([]float64, n)
		for j := range got {
			got[j] = inf
		}
		for p := cur.RowPtr[i]; p < cur.RowPtr[i+1]; p++ {
			got[cur.ColIdx[p]] = cur.Val[p]
		}
		for j := int32(0); j < n; j++ {
			w := want[i][j]
			if w == inf {
				if got[j] != inf {
					t.Fatalf("(%d,%d): got %v, want unreachable", i, j, got[j])
				}
				continue
			}
			if diff := got[j] - w; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("(%d,%d): got %v, want %v", i, j, got[j], w)
			}
		}
	}
}

func TestConnectedComponentsReachedLabeling(t *testing.T) {
	// A graph whose batch contains several seeds of the same component:
	// a star on vertices [0,20) centred at 0, plus 30 isolated vertices, so
	// one sweep's 16 seeds mix one big component with many singletons.
	coo := &matrix.COO{NumRows: 50, NumCols: 50}
	for i := int32(1); i < 20; i++ {
		coo.Row = append(coo.Row, 0, i)
		coo.Col = append(coo.Col, i, 0)
		coo.Val = append(coo.Val, 1, 1)
	}
	g := &Graph{Adj: coo.ToCSR()}
	comp, n, err := g.ConnectedComponents()
	if err != nil {
		t.Fatal(err)
	}
	if n != 31 {
		t.Fatalf("components = %d, want 31 (star + 30 singletons)", n)
	}
	for i := int32(1); i < 20; i++ {
		if comp[i] != comp[0] {
			t.Fatalf("star vertex %d not in component of centre", i)
		}
	}
	seen := map[int32]bool{comp[0]: true}
	for i := int32(20); i < 50; i++ {
		if seen[comp[i]] {
			t.Fatalf("singleton %d shares component %d", i, comp[i])
		}
		seen[comp[i]] = true
	}
}

func TestGraphMethodsIgnoreStrayMaskOptions(t *testing.T) {
	// A caller-supplied WithMask must not leak into the traversal kernels'
	// own multiplications (it would silently truncate BFS and corrupt
	// triangle counts).
	g := pathGraph(10)
	bogus := pbspgemm.NewER(10, 1, 1)
	levels, err := g.MultiSourceBFS([]int32{0}, pbspgemm.WithMask(bogus))
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 10; v++ {
		if levels[0][v] != v {
			t.Fatalf("masked-option BFS wrong: level[%d] = %d, want %d", v, levels[0][v], v)
		}
	}
	k := completeGraph(5)
	tri, err := k.Triangles(pbspgemm.WithMask(bogus.Transpose()))
	if err != nil {
		t.Fatal(err)
	}
	if tri != 10 {
		t.Fatalf("masked-option triangles = %d, want 10", tri)
	}
}
