package graph

import (
	"math"
	"testing"

	"pbspgemm"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// bruteBetweenness is textbook Brandes over all given sources.
func bruteBetweenness(a *pbspgemm.CSR, sources []int32) []float64 {
	n := a.NumRows
	bc := make([]float64, n)
	for _, s := range sources {
		dist := make([]int32, n)
		sigma := make([]float64, n)
		delta := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		sigma[s] = 1
		var order []int32
		queue := []int32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
				w := a.ColIdx[p]
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for p := a.RowPtr[w]; p < a.RowPtr[w+1]; p++ {
				v := a.ColIdx[p]
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	return bc
}

func TestBetweennessPathGraph(t *testing.T) {
	// On a path 0-1-2-3-4 with all sources: interior vertex v lies on all
	// shortest paths between the v_left and v_right sides.
	g := pathGraph(5)
	all := []int32{0, 1, 2, 3, 4}
	got, err := g.BetweennessCentrality(all)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteBetweenness(g.Adj, all)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	// Middle vertex has the highest centrality.
	if got[2] <= got[1] || got[1] <= got[0] {
		t.Fatalf("path centralities not peaked at middle: %v", got)
	}
}

func TestBetweennessStarGraph(t *testing.T) {
	// Star: hub 0 with 6 leaves. Hub's bc = (k-1)(k-2) pairs... with each
	// ordered pair counted once: 6*5 = 30.
	coo := &matrix.COO{NumRows: 7, NumCols: 7}
	for l := int32(1); l < 7; l++ {
		coo.Row = append(coo.Row, 0, l)
		coo.Col = append(coo.Col, l, 0)
		coo.Val = append(coo.Val, 1, 1)
	}
	g := &Graph{Adj: coo.ToCSR()}
	all := []int32{0, 1, 2, 3, 4, 5, 6}
	got, err := g.BetweennessCentrality(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-30) > 1e-9 {
		t.Fatalf("hub bc = %v, want 30", got[0])
	}
	for l := 1; l < 7; l++ {
		if got[l] != 0 {
			t.Fatalf("leaf %d bc = %v, want 0", l, got[l])
		}
	}
}

func TestBetweennessMatchesBrandesRandom(t *testing.T) {
	g := FromAdjacency(gen.ER(120, 4, 13))
	sources := []int32{0, 5, 17, 60, 119}
	got, err := g.BetweennessCentrality(sources)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteBetweenness(g.Adj, sources)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*math.Max(1, want[v]) {
			t.Fatalf("bc[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}

func TestBetweennessEdgeCases(t *testing.T) {
	g := pathGraph(4)
	if bc, err := g.BetweennessCentrality(nil); err != nil || len(bc) != 4 {
		t.Fatal("empty sources must return zeros")
	}
	if _, err := g.BetweennessCentrality([]int32{99}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestAdd(t *testing.T) {
	a := gen.ER(200, 4, 1)
	b := gen.ER(200, 4, 2)
	c, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Check against COO concatenation + dedup.
	coo := &matrix.COO{NumRows: 200, NumCols: 200}
	for _, m := range []*pbspgemm.CSR{a, b} {
		for i := int32(0); i < m.NumRows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				coo.Row = append(coo.Row, i)
				coo.Col = append(coo.Col, m.ColIdx[p])
				coo.Val = append(coo.Val, m.Val[p])
			}
		}
	}
	want := coo.ToCSR()
	if !pbspgemm.EqualWithin(want, c, 1e-12) {
		t.Fatal("Add differs from COO-merge reference")
	}
	// A + 0 = A.
	zero := matrix.NewCSR(200, 200, 0)
	same, err := Add(a, zero)
	if err != nil {
		t.Fatal(err)
	}
	if !pbspgemm.EqualWithin(a, same, 0) {
		t.Fatal("A + 0 != A")
	}
	// Shape mismatch.
	if _, err := Add(a, gen.ER(100, 2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestDistributivity(t *testing.T) {
	// (A+B)·C == A·C + B·C across the whole stack.
	a := gen.ER(128, 3, 4)
	b := gen.ER(128, 3, 5)
	c := gen.ER(128, 3, 6)
	ab, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	left, err := pbspgemm.Multiply(ab, c, pbspgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := pbspgemm.Multiply(a, c, pbspgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := pbspgemm.Multiply(b, c, pbspgemm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	right, err := Add(ac.C, bc.C)
	if err != nil {
		t.Fatal(err)
	}
	if !pbspgemm.EqualWithin(left.C, right, 1e-9) {
		t.Fatal("(A+B)·C != A·C + B·C")
	}
}
