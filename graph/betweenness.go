package graph

import (
	"context"
	"fmt"

	"pbspgemm"
	"pbspgemm/internal/matrix"
)

// BetweennessCentrality approximates (or, with sources = all vertices,
// computes exactly) betweenness centrality with Brandes' algorithm, batching
// the forward breadth-first sweeps of all sources through SpGEMM — the very
// workload the paper cites first for SpGEMM ("betweenness centrality [1]",
// a square matrix times a tall-and-skinny shortest-path-count matrix).
//
// Forward phase: the n×k path-count frontier matrix Σ advances one level per
// multiplication Σ' = A·Σ, restricted to unvisited vertices; the values
// (not just the pattern) matter, because the number of shortest paths to v
// is the sum of path counts of its predecessors — exactly what the
// arithmetic SpGEMM computes.
//
// Backward phase: dependencies are accumulated level by level with the
// standard Brandes recurrence.
//
// The result is scaled like Brandes: unnormalized, each pair counted once
// per direction (divide by 2 for undirected interpretation if desired).
func (g *Graph) BetweennessCentrality(sources []int32, opts ...pbspgemm.Option) ([]float64, error) {
	n := g.Adj.NumRows
	bc := make([]float64, n)
	if len(sources) == 0 {
		return bc, nil
	}
	for _, s := range sources {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", s, n)
		}
	}
	k := int32(len(sources))
	eng, err := pbspgemm.NewEngine(noMask(opts)...)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Per-source state, dense over vertices (k is a small batch).
	level := make([][]int32, k)   // BFS level or -1
	sigma := make([][]float64, k) // shortest-path counts
	for s := range sources {
		level[s] = make([]int32, n)
		sigma[s] = make([]float64, n)
		for v := range level[s] {
			level[s][v] = -1
		}
		level[s][sources[s]] = 0
		sigma[s][sources[s]] = 1
	}

	// Forward sweeps: frontier matrix carries path counts.
	frontier := make([][]int32, k)
	for s, src := range sources {
		frontier[s] = []int32{src}
	}
	maxDepth := int32(0)
	for depth := int32(1); ; depth++ {
		coo := &matrix.COO{NumRows: n, NumCols: k}
		total := 0
		for s, fr := range frontier {
			for _, v := range fr {
				coo.Row = append(coo.Row, v)
				coo.Col = append(coo.Col, int32(s))
				coo.Val = append(coo.Val, sigma[s][v])
			}
			total += len(fr)
		}
		if total == 0 {
			break
		}
		f := coo.ToCSR()
		res, err := eng.Multiply(ctx, g.Adj, f)
		if err != nil {
			return nil, err
		}
		next := res.C
		for s := range frontier {
			frontier[s] = frontier[s][:0]
		}
		progressed := false
		for v := int32(0); v < n; v++ {
			for p := next.RowPtr[v]; p < next.RowPtr[v+1]; p++ {
				s := next.ColIdx[p]
				switch level[s][v] {
				case -1:
					level[s][v] = depth
					sigma[s][v] = next.Val[p]
					frontier[s] = append(frontier[s], v)
					progressed = true
				case depth:
					// Already discovered this round by an earlier row order —
					// cannot happen (each (v,s) appears once in CSR), kept for
					// clarity.
				}
			}
		}
		if progressed {
			maxDepth = depth
		}
	}

	// Backward phase: standard Brandes dependency accumulation, one source
	// at a time over the level structure (delta_v = sum over successors w of
	// sigma_v/sigma_w * (1 + delta_w)).
	a := g.Adj
	delta := make([]float64, n)
	for s, src := range sources {
		for i := range delta {
			delta[i] = 0
		}
		for d := maxDepth; d >= 1; d-- {
			for v := int32(0); v < n; v++ {
				if level[s][v] != d-1 {
					continue
				}
				var acc float64
				for p := a.RowPtr[v]; p < a.RowPtr[v+1]; p++ {
					w := a.ColIdx[p]
					if level[s][w] == d && sigma[s][w] > 0 {
						acc += sigma[s][v] / sigma[s][w] * (1 + delta[w])
					}
				}
				delta[v] += acc
			}
		}
		for v := int32(0); v < n; v++ {
			if v != src && level[s][v] >= 0 {
				bc[v] += delta[v]
			}
		}
	}
	return bc, nil
}

// Add returns the sparse sum A + B of two equal-shape canonical CSR
// matrices — the companion operation SpGEMM applications (algebraic
// multigrid, MCL variants) interleave with multiplication. It is EWiseAdd
// over the arithmetic semiring on zero-copy float64 views.
func Add(a, b *pbspgemm.CSR) (*pbspgemm.CSR, error) {
	sum, err := pbspgemm.EWiseAdd(pbspgemm.Arithmetic(),
		pbspgemm.Float64Matrix(a), pbspgemm.Float64Matrix(b))
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return pbspgemm.Float64CSR(sum), nil
}
