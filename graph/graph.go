// Package graph implements the graph-analytics workloads the paper's
// introduction motivates SpGEMM with: triangle counting and clustering
// coefficients (Azad, Buluç, Gilbert [2]) and multi-source breadth-first
// search (Gilbert, Reinhardt, Shah [3]). Every kernel is built on the
// library's SpGEMM, so these serve both as examples of the public API and as
// end-to-end integration tests of the multiplication algorithms.
package graph

import (
	"fmt"

	"pbspgemm"
	"pbspgemm/internal/matrix"
)

// Graph is a simple undirected graph stored as a symmetric 0/1 adjacency
// matrix with an empty diagonal.
type Graph struct {
	Adj *pbspgemm.CSR
}

// FromAdjacency builds a Graph from an arbitrary sparse matrix by
// symmetrizing (A ∨ Aᵀ), dropping the diagonal and collapsing values to 1.
func FromAdjacency(a *pbspgemm.CSR) *Graph {
	at := a.Transpose()
	coo := &matrix.COO{NumRows: a.NumRows, NumCols: a.NumCols}
	add := func(m *pbspgemm.CSR) {
		for i := int32(0); i < m.NumRows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if j := m.ColIdx[p]; j != i {
					coo.Row = append(coo.Row, i)
					coo.Col = append(coo.Col, j)
					coo.Val = append(coo.Val, 1)
				}
			}
		}
	}
	add(a)
	add(at)
	s := coo.ToCSR()
	s.Apply(func(float64) float64 { return 1 })
	return &Graph{Adj: s}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int32 { return g.Adj.NumRows }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return g.Adj.NNZ() / 2 }

// Degrees returns the per-vertex degree.
func (g *Graph) Degrees() []int64 {
	d := make([]int64, g.Adj.NumRows)
	for i := int32(0); i < g.Adj.NumRows; i++ {
		d[i] = g.Adj.RowNNZ(i)
	}
	return d
}

// Triangles counts the triangles of g as sum(A² ∘ A)/6 using the given
// SpGEMM options (the paper's triangle-counting citation [2] is exactly
// this masked-square formulation).
func (g *Graph) Triangles(opt pbspgemm.Options) (int64, error) {
	sq, err := pbspgemm.Square(g.Adj, opt)
	if err != nil {
		return 0, err
	}
	mass := matrix.ElementWiseMultiplySum(sq.C, g.Adj)
	return int64(mass+0.5) / 6, nil
}

// PerVertexTriangles returns the number of triangles through each vertex:
// t(v) = (A²∘A) row-sum at v, halved (each triangle at v is counted once per
// neighbour direction).
func (g *Graph) PerVertexTriangles(opt pbspgemm.Options) ([]int64, error) {
	sq, err := pbspgemm.Square(g.Adj, opt)
	if err != nil {
		return nil, err
	}
	a := g.Adj
	c := sq.C
	out := make([]int64, a.NumRows)
	for i := int32(0); i < a.NumRows; i++ {
		p, pEnd := c.RowPtr[i], c.RowPtr[i+1]
		q, qEnd := a.RowPtr[i], a.RowPtr[i+1]
		var sum float64
		for p < pEnd && q < qEnd {
			switch {
			case c.ColIdx[p] < a.ColIdx[q]:
				p++
			case c.ColIdx[p] > a.ColIdx[q]:
				q++
			default:
				sum += c.Val[p]
				p++
				q++
			}
		}
		out[i] = int64(sum+0.5) / 2
	}
	return out, nil
}

// ClusteringCoefficients returns the local clustering coefficient of every
// vertex: triangles(v) / (d(v)·(d(v)-1)/2); vertices of degree < 2 get 0.
func (g *Graph) ClusteringCoefficients(opt pbspgemm.Options) ([]float64, error) {
	tri, err := g.PerVertexTriangles(opt)
	if err != nil {
		return nil, err
	}
	deg := g.Degrees()
	out := make([]float64, len(tri))
	for v := range out {
		if deg[v] >= 2 {
			out[v] = float64(2*tri[v]) / float64(deg[v]*(deg[v]-1))
		}
	}
	return out, nil
}

// GlobalClusteringCoefficient returns 3·triangles / open-wedges.
func (g *Graph) GlobalClusteringCoefficient(opt pbspgemm.Options) (float64, error) {
	tri, err := g.Triangles(opt)
	if err != nil {
		return 0, err
	}
	var wedges int64
	for _, d := range g.Degrees() {
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0, nil
	}
	return 3 * float64(tri) / float64(wedges), nil
}

// MultiSourceBFS runs breadth-first search from every source simultaneously
// by iterating the frontier matrix F ← A·F (the SpGEMM formulation of [3]):
// F is n×k with column s holding source s's current frontier. It returns
// levels[s][v] = BFS distance from sources[s] to v, or -1 if unreachable.
func (g *Graph) MultiSourceBFS(sources []int32, opt pbspgemm.Options) ([][]int32, error) {
	n := g.Adj.NumRows
	k := int32(len(sources))
	levels := make([][]int32, k)
	for s := range levels {
		if sources[s] < 0 || sources[s] >= n {
			return nil, fmt.Errorf("graph: source %d out of range [0,%d)", sources[s], n)
		}
		levels[s] = make([]int32, n)
		for v := range levels[s] {
			levels[s][v] = -1
		}
		levels[s][sources[s]] = 0
	}
	if k == 0 {
		return levels, nil
	}

	// Frontier matrix: F(v, s) = 1 if v is in source s's current frontier.
	frontier := make([][]int32, k) // per source, current frontier vertex list
	for s, src := range sources {
		frontier[s] = []int32{src}
	}

	for depth := int32(1); ; depth++ {
		// Build F as CSR (n×k) from the frontier lists.
		coo := &matrix.COO{NumRows: n, NumCols: k}
		total := 0
		for s, fr := range frontier {
			for _, v := range fr {
				coo.Row = append(coo.Row, v)
				coo.Col = append(coo.Col, int32(s))
				coo.Val = append(coo.Val, 1)
			}
			total += len(fr)
		}
		if total == 0 {
			break
		}
		f := coo.ToCSR()

		// One SpGEMM advances every search: N = A·F reaches the neighbours
		// of all frontiers at once.
		res, err := pbspgemm.Multiply(g.Adj, f, opt)
		if err != nil {
			return nil, err
		}
		next := res.C

		// Mask out visited vertices and record new levels.
		for s := range frontier {
			frontier[s] = frontier[s][:0]
		}
		for v := int32(0); v < n; v++ {
			for p := next.RowPtr[v]; p < next.RowPtr[v+1]; p++ {
				s := next.ColIdx[p]
				if levels[s][v] == -1 {
					levels[s][v] = depth
					frontier[s] = append(frontier[s], v)
				}
			}
		}
	}
	return levels, nil
}

// Eccentricity returns max distance from source to any reachable vertex.
func (g *Graph) Eccentricity(source int32, opt pbspgemm.Options) (int32, error) {
	levels, err := g.MultiSourceBFS([]int32{source}, opt)
	if err != nil {
		return 0, err
	}
	var ecc int32
	for _, l := range levels[0] {
		if l > ecc {
			ecc = l
		}
	}
	return ecc, nil
}

// ConnectedComponents labels vertices by component using repeated BFS
// sweeps (batched k sources per sweep to amortize SpGEMM cost). Returns the
// component id per vertex and the number of components.
func (g *Graph) ConnectedComponents(opt pbspgemm.Options) ([]int32, int32, error) {
	n := g.Adj.NumRows
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var nextComp int32
	const batch = 16
	for {
		// Collect up to `batch` unvisited seeds.
		var seeds []int32
		for v := int32(0); v < n && len(seeds) < batch; v++ {
			if comp[v] == -1 {
				already := false
				for _, s := range seeds {
					if s == v {
						already = true
						break
					}
				}
				if !already {
					seeds = append(seeds, v)
				}
			}
		}
		if len(seeds) == 0 {
			break
		}
		levels, err := g.MultiSourceBFS(seeds, opt)
		if err != nil {
			return nil, 0, err
		}
		// Assign: earlier seeds win; seeds in the same component share ids.
		seedComp := make([]int32, len(seeds))
		for s := range seeds {
			seedComp[s] = -1
		}
		for s, src := range seeds {
			if comp[src] != -1 {
				continue // already labeled by an earlier seed this round
			}
			// Did an earlier seed of this batch reach src?
			owner := int32(-1)
			for e := 0; e < s; e++ {
				if levels[e][src] >= 0 && seedComp[e] >= 0 {
					owner = seedComp[e]
					break
				}
			}
			if owner == -1 {
				owner = nextComp
				nextComp++
			}
			seedComp[s] = owner
			for v := int32(0); v < n; v++ {
				if levels[s][v] >= 0 && comp[v] == -1 {
					comp[v] = owner
				}
			}
		}
	}
	return comp, nextComp, nil
}
