// Package graph implements the graph-analytics workloads the paper's
// introduction motivates SpGEMM with: triangle counting and clustering
// coefficients (Azad, Buluç, Gilbert [2]) and multi-source breadth-first
// search (Gilbert, Reinhardt, Shah [3]). Every kernel is built on the
// library's semiring surface — BFS multiplies over Boolean(), triangle
// counting uses the masked product A²⟨A⟩ without ever materializing the
// unmasked square, and one all-pairs shortest-path relaxation (APSPStep) is
// a min-plus multiplication — so these serve both as examples of the public
// API and as end-to-end integration tests of the multiplication engine.
package graph

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pbspgemm"
	"pbspgemm/internal/matrix"
)

// Graph is a simple undirected graph stored as a symmetric 0/1 adjacency
// matrix with an empty diagonal. Methods are safe for concurrent use once
// the graph is built (the cached boolean adjacency is initialized under a
// sync.Once).
type Graph struct {
	// Adj is the adjacency matrix. It must not be replaced or mutated after
	// the first traversal method runs: BFS-based methods cache a boolean
	// view of it, which would silently go stale. To change the graph, build
	// a new Graph.
	Adj *pbspgemm.CSR

	boolOnce sync.Once
	boolAdj  *pbspgemm.ColMatrix[bool]

	intOnce sync.Once
	intAdjC *pbspgemm.ColMatrix[int32]
	intAdjR *pbspgemm.Matrix[int32]
}

// FromAdjacency builds a Graph from an arbitrary sparse matrix by
// symmetrizing (A ∨ Aᵀ), dropping the diagonal and collapsing values to 1.
func FromAdjacency(a *pbspgemm.CSR) *Graph {
	at := a.Transpose()
	coo := &matrix.COO{NumRows: a.NumRows, NumCols: a.NumCols}
	add := func(m *pbspgemm.CSR) {
		for i := int32(0); i < m.NumRows; i++ {
			for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
				if j := m.ColIdx[p]; j != i {
					coo.Row = append(coo.Row, i)
					coo.Col = append(coo.Col, j)
					coo.Val = append(coo.Val, 1)
				}
			}
		}
	}
	add(a)
	add(at)
	s := coo.ToCSR()
	s.Apply(func(float64) float64 { return 1 })
	return &Graph{Adj: s}
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int32 { return g.Adj.NumRows }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int64 { return g.Adj.NNZ() / 2 }

// Degrees returns the per-vertex degree.
func (g *Graph) Degrees() []int64 {
	d := make([]int64, g.Adj.NumRows)
	for i := int32(0); i < g.Adj.NumRows; i++ {
		d[i] = g.Adj.RowNNZ(i)
	}
	return d
}

// booleanAdjacency lazily converts the adjacency to the boolean
// column-major form the BFS multiplications stream, built once per graph.
func (g *Graph) booleanAdjacency() *pbspgemm.ColMatrix[bool] {
	g.boolOnce.Do(func() {
		g.boolAdj = pbspgemm.MatrixOf(g.Adj, func(float64) bool { return true }).ToCSC()
	})
	return g.boolAdj
}

// noMask neutralizes any caller-supplied mask option before opts reach a
// multiplication: the graph kernels define their own masking semantics (or
// none), and a stray WithMask would silently corrupt traversal results.
func noMask(opts []pbspgemm.Option) []pbspgemm.Option {
	out := make([]pbspgemm.Option, 0, len(opts)+1)
	out = append(out, opts...)
	return append(out, pbspgemm.WithMask(nil))
}

// intAdjacency lazily builds the all-ones int32 view of the adjacency that
// the triangle kernels multiply over the ArithmeticInt32 semiring — the
// 8-byte narrow tuple layout's fast path — built once per graph like the
// boolean view.
func (g *Graph) intAdjacency() (*pbspgemm.ColMatrix[int32], *pbspgemm.Matrix[int32]) {
	g.intOnce.Do(func() {
		g.intAdjR = pbspgemm.MatrixOf(g.Adj, func(float64) int32 { return 1 })
		g.intAdjC = g.intAdjR.ToCSC()
	})
	return g.intAdjC, g.intAdjR
}

// maskedSquareRowSums returns the per-vertex row sums of A²⟨A⟩ — the 2-path
// counts restricted to positions that close an edge. A² runs over the int32
// arithmetic semiring, which dispatches onto the 8-byte narrow tuple layout
// whenever the packed keys fit 32 bits; the mask is then applied by a
// per-row sorted-merge intersect of A² against A, so only the masked counts
// are ever summed. Counts are exact (integer semiring, no rounding).
func (g *Graph) maskedSquareRowSums(opts []pbspgemm.Option) ([]int64, error) {
	ac, ar := g.intAdjacency()
	sq, err := pbspgemm.MultiplyOver(pbspgemm.ArithmeticInt32(), ac, ar, noMask(opts)...)
	if err != nil {
		return nil, err
	}
	sums := make([]int64, g.Adj.NumRows)
	for v := int32(0); v < g.Adj.NumRows; v++ {
		p, pEnd := g.Adj.RowPtr[v], g.Adj.RowPtr[v+1]
		q, qEnd := sq.RowPtr[v], sq.RowPtr[v+1]
		var sum int64
		for p < pEnd && q < qEnd {
			switch ca, cs := g.Adj.ColIdx[p], sq.ColIdx[q]; {
			case ca == cs:
				sum += int64(sq.Val[q])
				p++
				q++
			case ca < cs:
				p++
			default:
				q++
			}
		}
		sums[v] = sum
	}
	return sums, nil
}

// Triangles counts the triangles of g as sum(A²⟨A⟩)/6 (the paper's
// triangle-counting citation [2] is exactly this masked-square
// formulation). A² multiplies over the exact int32 semiring on the narrow
// tuple fast path; the mask lands as a sorted intersect per row.
func (g *Graph) Triangles(opts ...pbspgemm.Option) (int64, error) {
	sums, err := g.maskedSquareRowSums(opts)
	if err != nil {
		return 0, err
	}
	var mass int64
	for _, s := range sums {
		mass += s
	}
	return mass / 6, nil
}

// PerVertexTriangles returns the number of triangles through each vertex:
// t(v) = row-sum of A²⟨A⟩ at v, halved (each triangle at v is counted once
// per neighbour direction).
func (g *Graph) PerVertexTriangles(opts ...pbspgemm.Option) ([]int64, error) {
	sums, err := g.maskedSquareRowSums(opts)
	if err != nil {
		return nil, err
	}
	for v := range sums {
		sums[v] /= 2
	}
	return sums, nil
}

// ClusteringCoefficients returns the local clustering coefficient of every
// vertex: triangles(v) / (d(v)·(d(v)-1)/2); vertices of degree < 2 get 0.
func (g *Graph) ClusteringCoefficients(opts ...pbspgemm.Option) ([]float64, error) {
	tri, err := g.PerVertexTriangles(opts...)
	if err != nil {
		return nil, err
	}
	deg := g.Degrees()
	out := make([]float64, len(tri))
	for v := range out {
		if deg[v] >= 2 {
			out[v] = float64(2*tri[v]) / float64(deg[v]*(deg[v]-1))
		}
	}
	return out, nil
}

// GlobalClusteringCoefficient returns 3·triangles / open-wedges.
func (g *Graph) GlobalClusteringCoefficient(opts ...pbspgemm.Option) (float64, error) {
	tri, err := g.Triangles(opts...)
	if err != nil {
		return 0, err
	}
	var wedges int64
	for _, d := range g.Degrees() {
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0, nil
	}
	return 3 * float64(tri) / float64(wedges), nil
}

// MultiSourceBFS runs breadth-first search from every source simultaneously
// by iterating the frontier matrix F ← A·F over the Boolean semiring (the
// SpGEMM formulation of [3]): F is n×k with column s holding source s's
// current frontier. It returns levels[s][v] = BFS distance from sources[s]
// to v, or -1 if unreachable.
func (g *Graph) MultiSourceBFS(sources []int32, opts ...pbspgemm.Option) ([][]int32, error) {
	eng, err := pbspgemm.NewEngine(noMask(opts)...)
	if err != nil {
		return nil, err
	}
	levels, _, err := g.multiSourceBFS(eng, sources)
	return levels, err
}

// multiSourceBFS is the shared BFS driver. Alongside the level arrays it
// returns reached[s], the vertices source s discovered (source included, in
// discovery order) — connected-components labeling walks only these instead
// of rescanning all n vertices per seed.
//
// The caller's engine serves every level (and, for ConnectedComponents,
// every sweep), so the boolean workspace warmed up on the first
// multiplication is reused to the end; the frontier matrix reuses one set
// of CSR buffers across levels (new frontiers are discovered in row-major
// order, so assembly is a counting pass, not a sort).
func (g *Graph) multiSourceBFS(eng *pbspgemm.Engine, sources []int32) (levels, reached [][]int32, err error) {
	n := g.Adj.NumRows
	k := int32(len(sources))
	levels = make([][]int32, k)
	reached = make([][]int32, k)
	for s := range levels {
		if sources[s] < 0 || sources[s] >= n {
			return nil, nil, fmt.Errorf("graph: source %d out of range [0,%d)", sources[s], n)
		}
		levels[s] = make([]int32, n)
		for v := range levels[s] {
			levels[s][v] = -1
		}
		levels[s][sources[s]] = 0
		reached[s] = []int32{sources[s]}
	}
	if k == 0 {
		return levels, reached, nil
	}
	adj := g.booleanAdjacency()
	ctx := context.Background()

	// Frontier entry lists (row-major), reused across levels. The initial
	// frontier is the sources, sorted into CSR order; every later frontier
	// is discovered in row-major order and needs no sorting.
	frRows := make([]int32, 0, k)
	frCols := make([]int32, 0, k)
	order := make([]int32, k)
	for s := range order {
		order[s] = int32(s)
	}
	sort.Slice(order, func(i, j int) bool {
		if sources[order[i]] != sources[order[j]] {
			return sources[order[i]] < sources[order[j]]
		}
		return order[i] < order[j]
	})
	for _, s := range order {
		frRows = append(frRows, sources[s])
		frCols = append(frCols, s)
	}

	f := &pbspgemm.Matrix[bool]{NumRows: n, NumCols: k, RowPtr: make([]int64, n+1)}
	var vals []bool

	for depth := int32(1); len(frRows) > 0; depth++ {
		// Assemble F from the entry lists: counting pass into the reused
		// RowPtr, column indices and all-true values aliased directly.
		for i := range f.RowPtr {
			f.RowPtr[i] = 0
		}
		for _, v := range frRows {
			f.RowPtr[v+1]++
		}
		for i := int32(0); i < n; i++ {
			f.RowPtr[i+1] += f.RowPtr[i]
		}
		vals = vals[:0]
		for range frCols {
			vals = append(vals, true)
		}
		f.ColIdx, f.Val = frCols, vals

		// One boolean SpGEMM advances every search: N = A·F reaches the
		// neighbours of all frontiers at once.
		next, err := pbspgemm.EngineMultiplyOver(eng, ctx, pbspgemm.Boolean(), adj, f)
		if err != nil {
			return nil, nil, err
		}

		// Mask out visited vertices, record new levels and collect the next
		// frontier — rows ascending, columns ascending within a row, so the
		// lists stay in CSR order for the next assembly.
		frRows, frCols = frRows[:0], frCols[:0]
		for v := int32(0); v < n; v++ {
			for p := next.RowPtr[v]; p < next.RowPtr[v+1]; p++ {
				s := next.ColIdx[p]
				if levels[s][v] == -1 {
					levels[s][v] = depth
					reached[s] = append(reached[s], v)
					frRows = append(frRows, v)
					frCols = append(frCols, s)
				}
			}
		}
	}
	return levels, reached, nil
}

// Eccentricity returns max distance from source to any reachable vertex.
func (g *Graph) Eccentricity(source int32, opts ...pbspgemm.Option) (int32, error) {
	levels, err := g.MultiSourceBFS([]int32{source}, opts...)
	if err != nil {
		return 0, err
	}
	var ecc int32
	for _, l := range levels[0] {
		if l > ecc {
			ecc = l
		}
	}
	return ecc, nil
}

// ConnectedComponents labels vertices by component using repeated BFS
// sweeps (batched k sources per sweep to amortize SpGEMM cost). Returns the
// component id per vertex and the number of components.
func (g *Graph) ConnectedComponents(opts ...pbspgemm.Option) ([]int32, int32, error) {
	n := g.Adj.NumRows
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var nextComp int32
	const batch = 16
	// One engine across all sweeps: the workspace warmed up by the first
	// sweep's multiplications serves every later one.
	eng, err := pbspgemm.NewEngine(noMask(opts)...)
	if err != nil {
		return nil, 0, err
	}
	next := int32(0) // unlabeled scan resumes where the last sweep stopped
	for {
		// Collect up to `batch` unlabeled seeds (distinct by construction:
		// each vertex is visited once by the monotone scan).
		var seeds []int32
		for ; next < n && len(seeds) < batch; next++ {
			if comp[next] == -1 {
				seeds = append(seeds, next)
			}
		}
		if len(seeds) == 0 {
			break
		}
		_, reached, err := g.multiSourceBFS(eng, seeds)
		if err != nil {
			return nil, 0, err
		}
		// Assign labels walking only the vertices each seed discovered.
		// Earlier seeds win: a later seed of the same component finds its
		// own vertex already labeled and claims nothing.
		for s, src := range seeds {
			if comp[src] != -1 {
				continue // an earlier seed of this batch reached src
			}
			id := nextComp
			nextComp++
			for _, v := range reached[s] {
				if comp[v] == -1 {
					comp[v] = id
				}
			}
		}
	}
	return comp, nextComp, nil
}

// APSPStep performs one min-plus relaxation of all-pairs shortest paths:
// D' = D ⊕ (D ⊗ D) over the tropical semiring, where stored entries are
// known path lengths and absent entries are +∞. Starting from a weighted
// adjacency matrix, ⌈log₂ n⌉ repeated steps converge to the full APSP
// closure (each step doubles the maximum hop count covered). The
// multiplication runs the PB-structured semiring kernel; the merge with the
// previous iterate is an element-wise min (EWiseAdd over MinPlus).
func APSPStep(d *pbspgemm.CSR, opts ...pbspgemm.Option) (*pbspgemm.CSR, error) {
	sr := pbspgemm.MinPlus()
	gd := pbspgemm.Float64Matrix(d)
	sq, err := pbspgemm.MultiplyOver(sr, gd.ToCSC(), gd, noMask(opts)...)
	if err != nil {
		return nil, err
	}
	relaxed, err := pbspgemm.EWiseAdd(sr, gd, sq)
	if err != nil {
		return nil, err
	}
	return pbspgemm.Float64CSR(relaxed), nil
}
