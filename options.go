package pbspgemm

import (
	"context"
	"fmt"
	"math"
)

// Option is a per-call (or per-engine, via NewEngine) functional option for
// the multiplication entry points: Engine.Multiply, Engine.MultiplyMasked,
// MultiplyOver, MultiplyMasked and EngineMultiplyOver. Options validate
// eagerly — an out-of-range value surfaces as an *OptionError from the call
// that received it, before any work runs — and later options override
// earlier ones, so engine defaults can be overridden per call.
type Option func(*config) error

// OptionError is the typed error returned when an option (or a legacy
// Options field) carries an invalid value, e.g. a negative thread count.
// Test with errors.As, or errors.Is against ErrInvalidOption.
type OptionError struct {
	// Option names the offending option or Options struct field.
	Option string
	// Value is the rejected value.
	Value int64
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("pbspgemm: invalid option %s = %d", e.Option, e.Value)
}

// Is reports ErrInvalidOption as a match, so callers can class-check with
// errors.Is without naming the concrete type.
func (e *OptionError) Is(target error) bool { return target == ErrInvalidOption }

// ErrInvalidOption is the errors.Is sentinel every *OptionError matches.
var ErrInvalidOption = fmt.Errorf("pbspgemm: invalid option")

// errNilMask rejects MultiplyMasked calls that end up with no mask at all —
// silently returning the full unmasked product would be exactly the dense
// blow-up the masked entry points exist to avoid.
var errNilMask = fmt.Errorf("%w: MultiplyMasked requires a non-nil mask", ErrInvalidOption)

// config is the resolved per-call configuration the functional options
// mutate. The zero value is the paper's defaults: PB-SpGEMM, all cores,
// auto-sized bins, no budget, no mask.
type config struct {
	ctx        context.Context
	algorithm  Algorithm
	threads    int
	nbins      int
	localBin   int
	l2Cache    int
	budget     int64
	beta       float64
	mask       *CSR
	complement bool
	plan       *SemiringPlan
}

// resolve applies defaults then per-call options in order.
func resolve(defaults []Option, opts []Option) (config, error) {
	var c config
	for _, o := range defaults {
		if err := o(&c); err != nil {
			return c, err
		}
	}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return c, err
		}
	}
	return c, nil
}

func (c *config) context() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// cancelFunc adapts the call's context to the engines' phase-boundary
// cancellation hook; nil when the context can never be canceled, so the
// hot path pays nothing.
func (c *config) cancelFunc() func() error {
	ctx := c.context()
	if ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// WithAlgorithm selects the SpGEMM implementation (default PB), or Auto to
// let the Engine's roofline planner pick per call. Masked and semiring
// multiplications always run the PB-structured kernel; for those the
// algorithm choice is ignored.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) error {
		if a < PB || a > Auto {
			return &OptionError{Option: "WithAlgorithm", Value: int64(a)}
		}
		c.algorithm = a
		return nil
	}
}

// WithBeta sets the memory bandwidth in GB/s the Auto planner's roofline
// model uses as beta. 0 (the default) measures it once per process with a
// quick STREAM Triad calibration on first use; pass the machine's known
// STREAM number to skip the measurement or to model a different machine.
// Ignored unless the call runs WithAlgorithm(Auto).
func WithBeta(gbs float64) Option {
	return func(c *config) error {
		if gbs < 0 {
			// Floor rather than truncate so fractional negatives like -0.5
			// don't report the valid value 0 in the error message.
			return &OptionError{Option: "WithBeta", Value: int64(math.Floor(gbs))}
		}
		c.beta = gbs
		return nil
	}
}

// WithThreads caps worker goroutines; 0 (the default) uses GOMAXPROCS.
func WithThreads(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return &OptionError{Option: "WithThreads", Value: int64(n)}
		}
		c.threads = n
		return nil
	}
}

// WithNBins overrides the global bin count of the float64 PB kernel;
// 0 auto-sizes from flop and the L2 budget (Algorithm 3). Masked and
// semiring multiplications always auto-size their bins and ignore this
// option (like WithLocalBinBytes and WithL2CacheBytes).
func WithNBins(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return &OptionError{Option: "WithNBins", Value: int64(n)}
		}
		c.nbins = n
		return nil
	}
}

// WithLocalBinBytes sets the thread-private local bin width in bytes
// (float64 PB kernel only; masked/semiring paths ignore it); 0 means 512,
// the paper's tuned value (Fig. 6a).
func WithLocalBinBytes(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return &OptionError{Option: "WithLocalBinBytes", Value: int64(n)}
		}
		c.localBin = n
		return nil
	}
}

// WithL2CacheBytes sets the per-bin cache budget used to auto-size the bin
// count (float64 PB kernel only; masked/semiring paths ignore it); 0 means
// 1 MiB.
func WithL2CacheBytes(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return &OptionError{Option: "WithL2CacheBytes", Value: int64(n)}
		}
		c.l2Cache = n
		return nil
	}
}

// WithMemoryBudget caps the expanded-tuple working set in bytes: when the
// expansion would exceed it, A's columns are tiled into panels that each fit
// and per-panel results are merged. 0 means unlimited (single shot).
func WithMemoryBudget(bytes int64) Option {
	return func(c *config) error {
		if bytes < 0 {
			return &OptionError{Option: "WithMemoryBudget", Value: bytes}
		}
		c.budget = bytes
		return nil
	}
}

// WithMask restricts the product structurally (GraphBLAS C⟨M⟩ = A·B): only
// positions where m stores an entry are kept, and the unmasked product is
// never materialized. m's values are ignored; its shape must be
// rows(A)×cols(B). A masked multiplication always runs the PB-structured
// semiring kernel. WithMask(nil) clears any mask set by an earlier option,
// restoring the unmasked product.
func WithMask(m *CSR) Option {
	return func(c *config) error {
		c.mask, c.complement = m, false
		return nil
	}
}

// WithSemiringPlan asks MultiplyOver / EngineMultiplyOver to report how the
// call executed into *p: whether a typed fast path ran (Boolean → 4-byte
// pattern layout, float32/int32 arithmetic → 8-byte narrow, float64
// arithmetic → the squeezed/wide pipeline) and, on fallback, why the generic
// engine ran instead. Pass nil to clear an earlier option.
func WithSemiringPlan(p *SemiringPlan) Option {
	return func(c *config) error {
		c.plan = p
		return nil
	}
}

// WithComplementMask is WithMask with the complemented mask ⟨¬M⟩: positions
// stored in m are dropped, all others kept.
func WithComplementMask(m *CSR) Option {
	return func(c *config) error {
		c.mask, c.complement = m, true
		return nil
	}
}

// WithContext attaches a context to package-level calls that have no
// explicit context parameter (MultiplyOver, MultiplyMasked, EWise helpers'
// multiplying callers). Cancellation and deadlines are observed at phase
// boundaries. Engine.Multiply's explicit context argument takes precedence
// over this option.
func WithContext(ctx context.Context) Option {
	return func(c *config) error {
		c.ctx = ctx
		return nil
	}
}

// validate rejects out-of-range fields of the legacy Options struct with
// the same typed error the functional options return.
func (o Options) validate() error {
	for _, f := range []struct {
		name  string
		value int64
	}{
		{"Options.Threads", int64(o.Threads)},
		{"Options.NBins", int64(o.NBins)},
		{"Options.LocalBinBytes", int64(o.LocalBinBytes)},
		{"Options.L2CacheBytes", int64(o.L2CacheBytes)},
		{"Options.MemoryBudgetBytes", o.MemoryBudgetBytes},
	} {
		if f.value < 0 {
			return &OptionError{Option: f.name, Value: f.value}
		}
	}
	return nil
}
