package pbspgemm

import (
	"context"
	"testing"
)

// intValued rewrites a matrix's values to small integers so every summation
// order is exact in float64: the masked path (generic semiring engine, wide
// uint64 keys) and the float64 core path (squeezed keys, fused pipeline)
// fold duplicates in different orders, and integer values let the two be
// held to exact equality.
func intValued(m *CSR) *CSR {
	out := m.Clone()
	for i := range out.Val {
		out.Val[i] = float64(i%7 + 1)
	}
	return out
}

// TestMultiplyMaskedAgainstSqueezedFusedPipeline pins masked multiply
// against the engine's default execution of the unmasked product — the
// squeezed tuple layout under the fused pipeline — on ER and skewed R-MAT
// inputs: C⟨M⟩ must equal the fused squeezed product filtered by the mask,
// exactly, for the plain and the complement mask, single-shot and budgeted.
func TestMultiplyMaskedAgainstSqueezedFusedPipeline(t *testing.T) {
	eng, err := NewEngine(WithBeta(50))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name       string
		a, b, mask *CSR
	}{
		{"ER", intValued(NewER(512, 6, 41)), intValued(NewER(512, 6, 42)), NewER(512, 9, 43)},
		{"RMAT", intValued(NewRMAT(9, 8, 44)), intValued(NewRMAT(9, 8, 45)), NewRMAT(9, 6, 46)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The unmasked product through the default PB path must have run
			// squeezed AND fused — that is the pipeline this test pins the
			// masked results against.
			res, err := eng.Multiply(context.Background(), tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if res.PB == nil || res.PB.Layout != LayoutSqueezed || !res.PB.Fused {
				t.Fatalf("fixture did not exercise the squeezed fused pipeline: %+v", res.PB)
			}
			full := res.C.Clone() // res.C aliases the engine's pooled workspace

			for _, complement := range []bool{false, true} {
				want := maskCSR(full, tc.mask, complement)
				opts := []Option{WithMask(tc.mask)}
				if complement {
					opts = []Option{WithComplementMask(tc.mask)}
				}
				got, err := MultiplyMasked(tc.a, tc.b, tc.mask, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualWithin(want, got, 0) {
					t.Fatalf("complement=%v: masked product differs from fused squeezed product ∘ mask", complement)
				}
				// The budgeted masked path must filter identically.
				budgeted, err := MultiplyMasked(tc.a, tc.b, tc.mask,
					append(opts, WithMemoryBudget(1<<12))...)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualWithin(want, budgeted, 0) {
					t.Fatalf("complement=%v: budgeted masked product differs", complement)
				}
				// And the Engine entry point with the mask as an option.
				mres, err := eng.Multiply(context.Background(), tc.a, tc.b, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if !EqualWithin(want, mres.C, 0) {
					t.Fatalf("complement=%v: engine masked product differs", complement)
				}
			}
		})
	}
}
