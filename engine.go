package pbspgemm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pbspgemm/internal/kernel"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
	"pbspgemm/internal/semiring"
)

// Engine is a concurrency-safe multiplication service: a sync.Pool of
// grow-only workspaces keeps steady-state calls free of large allocations,
// every call observes its context's cancellation and deadline at phase
// boundaries, and aggregate metrics (calls, flops, modeled bytes moved)
// accumulate for serving-style observability — overall and per algorithm.
//
// The Engine is a planner over the internal kernel registry: every
// algorithm (PB-SpGEMM and all column baselines) runs behind the same
// kernel interface with pooled workspaces, cancellation and metrics, and
// WithAlgorithm(Auto) lets the paper's roofline model pick the
// predicted-fastest kernel per call (see Plan).
//
// Engine methods may be called from any number of goroutines; each call
// checks a workspace out of the pool and returns results that are fully
// owned by the caller (never aliased to pooled memory). NewEngine's options
// become per-engine defaults that individual calls can override.
//
// Engine replaces the growing Options struct of the original API; Multiply
// with Options remains as a deprecated shim.
type Engine struct {
	defaults []Option
	pool     sync.Pool // *kernel.Workspace

	calls      atomic.Int64
	failures   atomic.Int64
	panics     atomic.Int64
	flops      atomic.Int64
	bytesMoved atomic.Int64
	nnzOut     atomic.Int64
	busyNanos  atomic.Int64

	byAlg [numAlgorithms]algCounters
}

// numAlgorithms sizes the per-algorithm counter array: one slot per
// concrete algorithm (Auto resolves to one of them before dispatch).
const numAlgorithms = int(Auto)

// algCounters is one algorithm's slice of the engine metrics.
type algCounters struct {
	calls      atomic.Int64
	failures   atomic.Int64
	flops      atomic.Int64
	nnzOut     atomic.Int64
	busyNanos  atomic.Int64
	autoChosen atomic.Int64
}

// NewEngine returns an engine whose option defaults apply to every call.
// Invalid defaults (e.g. WithThreads(-1)) are rejected here, with the same
// *OptionError a call would return.
func NewEngine(defaults ...Option) (*Engine, error) {
	if _, err := resolve(defaults, nil); err != nil {
		return nil, err
	}
	e := &Engine{defaults: defaults}
	e.pool.New = func() any { return kernel.NewWorkspace() }
	return e, nil
}

// EngineMetrics is a snapshot of an engine's aggregate counters. Calls
// rejected before dispatch — invalid options, mismatched shapes — are not
// counted at all: the counters track multiplications that ran (to
// completion or cancellation), not request validation.
type EngineMetrics struct {
	// Calls is the number of dispatched multiplications (successful or not).
	Calls int64
	// Failures counts dispatched calls that returned an error (including
	// cancellations).
	Failures int64
	// Panics counts dispatched calls whose kernel panicked and was contained
	// into a *par.PanicError (a subset of Failures). Each such call's
	// workspace was discarded rather than returned to the pool.
	Panics int64
	// Flops is the total scalar multiplications performed by successful calls.
	Flops int64
	// BytesMoved is the total modeled memory traffic (the paper's 16-byte
	// per-tuple model over inputs, expansion and output) of successful calls.
	BytesMoved int64
	// NNZProduced is the total nonzeros returned by successful calls.
	NNZProduced int64
	// Busy is the cumulative wall time spent inside multiplications; with
	// concurrent callers it exceeds elapsed time.
	Busy time.Duration
	// ByAlgorithm breaks the counters down per executed kernel; only
	// algorithms that have dispatched at least one call appear. Auto calls
	// are recorded under the kernel the planner chose, with AutoChosen
	// counting how many arrived that way.
	ByAlgorithm map[Algorithm]AlgorithmMetrics
}

// AlgorithmMetrics is one kernel's slice of the engine counters.
type AlgorithmMetrics struct {
	Calls       int64
	Failures    int64
	Flops       int64
	NNZProduced int64
	Busy        time.Duration
	// AutoChosen counts the calls the roofline planner routed to this
	// kernel (as opposed to explicit WithAlgorithm selection).
	AutoChosen int64
}

// Metrics returns a point-in-time snapshot of the engine's counters.
func (e *Engine) Metrics() EngineMetrics {
	m := EngineMetrics{
		Calls:       e.calls.Load(),
		Failures:    e.failures.Load(),
		Panics:      e.panics.Load(),
		Flops:       e.flops.Load(),
		BytesMoved:  e.bytesMoved.Load(),
		NNZProduced: e.nnzOut.Load(),
		Busy:        time.Duration(e.busyNanos.Load()),
	}
	for alg := range numAlgorithms {
		ac := &e.byAlg[alg]
		calls := ac.calls.Load()
		if calls == 0 {
			continue
		}
		if m.ByAlgorithm == nil {
			m.ByAlgorithm = make(map[Algorithm]AlgorithmMetrics)
		}
		m.ByAlgorithm[Algorithm(alg)] = AlgorithmMetrics{
			Calls:       calls,
			Failures:    ac.failures.Load(),
			Flops:       ac.flops.Load(),
			NNZProduced: ac.nnzOut.Load(),
			Busy:        time.Duration(ac.busyNanos.Load()),
			AutoChosen:  ac.autoChosen.Load(),
		}
	}
	return m
}

// record folds one finished call into the aggregate counters, overall and
// under the executed algorithm.
func (e *Engine) record(start time.Time, alg Algorithm, viaAuto bool, flops, nnzA, nnzB, nnzC int64, err error) {
	elapsed := int64(time.Since(start))
	e.calls.Add(1)
	e.busyNanos.Add(elapsed)
	var ac *algCounters
	if alg >= 0 && int(alg) < numAlgorithms {
		ac = &e.byAlg[alg]
		ac.calls.Add(1)
		ac.busyNanos.Add(elapsed)
		if viaAuto {
			ac.autoChosen.Add(1)
		}
	}
	if err != nil {
		e.failures.Add(1)
		if ac != nil {
			ac.failures.Add(1)
		}
		return
	}
	e.flops.Add(flops)
	e.nnzOut.Add(nnzC)
	// Table III's traffic model: expand reads both inputs and writes flop
	// tuples, sort reads them back, compress writes nnz(C) tuples.
	e.bytesMoved.Add(matrix.BytesPerTuple * (nnzA + nnzB + 2*flops + nnzC))
	if ac != nil {
		ac.flops.Add(flops)
		ac.nnzOut.Add(nnzC)
	}
}

// Multiply computes C = A*B with the configured algorithm (default PB; Auto
// plans per call), honoring ctx at phase boundaries. It is safe for
// concurrent use; the returned Result is fully caller-owned. A nil ctx
// falls back to a WithContext default, then to context.Background().
func (e *Engine) Multiply(ctx context.Context, a, b *CSR, opts ...Option) (*Result, error) {
	cfg, err := resolve(e.defaults, opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		cfg.ctx = ctx
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	if err := cfg.validateMaskShape(a.NumRows, b.NumCols); err != nil {
		return nil, err
	}
	start := time.Now()
	res, alg, viaAuto, err := e.multiply(&cfg, a, b)
	var flops, nnzc int64
	if res != nil {
		flops, nnzc = res.Flops, res.C.NNZ()
	}
	e.record(start, alg, viaAuto, flops, a.NNZ(), b.NNZ(), nnzc, err)
	return res, err
}

// MultiplyMasked computes C⟨M⟩ = (A·B) ∘ mask over the arithmetic semiring
// without materializing the unmasked product (see MultiplyMasked at package
// level). It shares the engine's workspace pool, context handling and
// metrics (recorded under PB, the kernel that serves masked products).
func (e *Engine) MultiplyMasked(ctx context.Context, a, b, mask *CSR, opts ...Option) (*CSR, error) {
	// Precedence: per-call options > the explicit mask argument > engine
	// defaults (mirroring how the explicit ctx overrides WithContext).
	cfg, err := resolve(e.defaults, nil)
	if err != nil {
		return nil, err
	}
	if mask != nil {
		cfg.mask, cfg.complement = mask, false
	}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	if ctx != nil {
		cfg.ctx = ctx
	}
	if cfg.mask == nil {
		return nil, errNilMask
	}
	if a.NumCols != b.NumRows {
		return nil, shapeError(a, b)
	}
	if err := cfg.validateMaskShape(a.NumRows, b.NumCols); err != nil {
		return nil, err
	}
	start := time.Now()
	c, err := e.maskedFloat64(&cfg, a, b)
	var nnzc int64
	if err == nil {
		nnzc = c.NNZ()
	}
	e.record(start, PB, false, flopsNoAlloc(a, b), a.NNZ(), b.NNZ(), nnzc, err)
	return c, err
}

// release returns ws to the pool — unless err carries a contained worker
// panic, in which case the workspace is discarded outright: its pooled
// planes may hold partially written phase state, and while core fully resets
// a poisoned workspace before reuse, the pool should only ever hold
// workspaces with a clean history. Discarding is cheap (the next pool.Get
// allocates fresh and grows on first use); the panic is also tallied so
// operators can watch for a misbehaving workload.
func (e *Engine) release(ws *kernel.Workspace, err error) {
	if err != nil {
		var pe *par.PanicError
		if errors.As(err, &pe) {
			e.panics.Add(1)
			return
		}
	}
	e.pool.Put(ws)
}

// multiply dispatches one resolved call through the kernel registry: Auto
// first runs the roofline planner, then the chosen kernel multiplies on a
// pooled workspace and the result is cloned out before the workspace
// returns to the pool. It reports the executed algorithm (and whether the
// planner chose it) for the per-algorithm metrics.
func (e *Engine) multiply(cfg *config, a, b *CSR) (*Result, Algorithm, bool, error) {
	if cfg.mask != nil {
		start := time.Now()
		c, err := e.maskedFloat64(cfg, a, b)
		if err != nil {
			return nil, PB, false, err
		}
		res := &Result{C: c, Algorithm: PB, Flops: flopsNoAlloc(a, b), Elapsed: time.Since(start)}
		if nnz := c.NNZ(); nnz > 0 {
			res.CF = float64(res.Flops) / float64(nnz)
		}
		return res, PB, false, nil
	}
	alg := cfg.algorithm
	var plan *Plan
	ws := e.pool.Get().(*kernel.Workspace)
	if alg == Auto {
		// Observe cancellation before planning: the symbolic pass and a
		// possible one-shot beta calibration are real work an expired ctx
		// should not pay for.
		if cancel := cfg.cancelFunc(); cancel != nil {
			if err := cancel(); err != nil {
				e.pool.Put(ws)
				return nil, alg, false, err
			}
		}
		plan = e.plan(cfg, a, b, &ws.PlanScratch)
		alg = plan.Chosen
	}
	k, ok := kernel.Get(alg.String())
	if !ok {
		e.pool.Put(ws)
		return nil, alg, plan != nil, &OptionError{Option: "WithAlgorithm", Value: int64(cfg.algorithm)}
	}
	kr, err := k.Multiply(cfg.context(), ws, a, b, kernel.Opts{
		Threads:           cfg.threads,
		NBins:             cfg.nbins,
		LocalBinBytes:     cfg.localBin,
		L2CacheBytes:      cfg.l2Cache,
		MemoryBudgetBytes: cfg.budget,
	})
	if err != nil {
		e.release(ws, err)
		return nil, alg, plan != nil, err
	}
	// Detach the result from the pooled workspace before another call can
	// grab it.
	res := &Result{
		C:         kr.C.Clone(),
		Algorithm: alg,
		Flops:     kr.Flops,
		CF:        kr.CF,
		Elapsed:   kr.Elapsed,
		Plan:      plan,
	}
	if kr.PB != nil {
		st := *kr.PB
		res.PB = &st
	}
	if kr.Baseline != nil {
		st := *kr.Baseline
		res.Baseline = &st
	}
	e.pool.Put(ws)
	return res, alg, plan != nil, nil
}

// maskedFloat64 is the masked arithmetic path on a pooled workspace.
func (e *Engine) maskedFloat64(cfg *config, a, b *CSR) (*CSR, error) {
	ws := e.pool.Get().(*kernel.Workspace)
	cw := ws.Core
	gc, err := semiring.MultiplyOpts(Arithmetic(), colView(cw.CSCOf(a)), Float64Matrix(b), cfg.semiringOptions(cw))
	if err != nil {
		e.release(ws, err)
		return nil, err
	}
	c := Float64CSR(gc.Clone())
	e.pool.Put(ws)
	return c, nil
}

// EngineMultiplyOver is MultiplyOver running on an engine: the semiring
// multiplication checks a pooled workspace out of e, observes ctx at phase
// boundaries, and folds into e's metrics. (Go methods cannot introduce type
// parameters, hence the package-level function taking the engine first.)
// The result is cloned out of the workspace and fully caller-owned. Pooled
// generic buffers are cached per element type T, so an engine serving a
// stable T hits its pool just like the float64 path.
func EngineMultiplyOver[T any](e *Engine, ctx context.Context, sr Semiring[T], a *ColMatrix[T], b *Matrix[T], opts ...Option) (*Matrix[T], error) {
	cfg, err := resolve(e.defaults, opts)
	if err != nil {
		return nil, err
	}
	if ctx != nil {
		cfg.ctx = ctx
	}
	// Shape rejections happen before dispatch so they stay out of the
	// metrics, matching Engine.Multiply.
	if a.NumCols != b.NumRows {
		return nil, fmt.Errorf("pbspgemm: inner dimensions disagree (%dx%d)·(%dx%d): %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	if err := cfg.validateMaskShape(a.NumRows, b.NumCols); err != nil {
		return nil, err
	}
	start := time.Now()
	ws := e.pool.Get().(*kernel.Workspace)
	gc, err := semiring.MultiplyOpts(sr, a, b, cfg.semiringOptions(ws.Core))
	var out *Matrix[T]
	var nnzc int64
	if err == nil {
		out = gc.Clone()
		nnzc = out.NNZ()
	}
	e.release(ws, err)
	e.record(start, PB, false, semiringFlops(a, b), a.NNZ(), b.NNZ(), nnzc, err)
	return out, err
}

// validateMaskShape rejects a mask that does not match the product's
// shape, before dispatch — so shape mistakes never reach the metrics.
func (c *config) validateMaskShape(rows, cols int32) error {
	if c.mask != nil && (c.mask.NumRows != rows || c.mask.NumCols != cols) {
		return fmt.Errorf("pbspgemm: mask is %dx%d, product is %dx%d: %w",
			c.mask.NumRows, c.mask.NumCols, rows, cols, matrix.ErrShape)
	}
	return nil
}

// flopsNoAlloc is the symbolic flop count of a product — one pass over A's
// column indices against B's row pointers, no per-call allocation. The
// masked paths' metrics and the Auto planner both use it.
func flopsNoAlloc(a, b *CSR) int64 {
	var flops int64
	for _, k := range a.ColIdx {
		flops += b.RowPtr[k+1] - b.RowPtr[k]
	}
	return flops
}

// semiringFlops is the symbolic flop count of a generic product, from the
// pointer arrays alone.
func semiringFlops[T any](a *ColMatrix[T], b *Matrix[T]) int64 {
	if a.NumCols != b.NumRows {
		return 0
	}
	var flops int64
	for i := int32(0); i < a.NumCols; i++ {
		flops += (a.ColPtr[i+1] - a.ColPtr[i]) * (b.RowPtr[i+1] - b.RowPtr[i])
	}
	return flops
}
