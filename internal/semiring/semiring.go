// Package semiring generalizes PB-SpGEMM to arbitrary semirings, the
// algebra behind the paper's application citations: multi-source BFS is
// SpGEMM over the boolean semiring [3], shortest paths over the tropical
// (min-plus) semiring, triangle counting over arithmetic, Markov clustering
// over arithmetic with pruning [9]. The kernel reuses the paper's
// expand-sort-compress structure with propagation blocking: only the Times
// in the expand phase and the Plus in the compress phase change.
package semiring

// Semiring defines (⊕, ⊗, 0̄) over T. Plus must be associative and
// commutative with identity Zero; Times must distribute over Plus. The
// compress phase folds duplicates with Plus; entries equal to Zero after
// folding are kept (structural zeros are dropped only by Prune-style
// post-passes), matching GraphBLAS semantics.
type Semiring[T any] struct {
	Name  string
	Zero  T
	Plus  func(a, b T) T
	Times func(a, b T) T

	// kind tags the stock semirings whose (⊕, ⊗) the typed core engine
	// implements natively, letting MultiplyOpts dispatch onto the tuned
	// tuple-layout pipelines (see fastpath.go). Caller-assembled semirings
	// carry kindGeneric and always run the generic engine: the engine cannot
	// see through a func value, so only constructor provenance is trusted.
	kind semiringKind
}

// semiringKind enumerates the fast-path-eligible algebras.
type semiringKind uint8

const (
	kindGeneric  semiringKind = iota // no typed kernel: generic engine
	kindArithF64                     // (+, ×) over float64 → core.Multiply
	kindArithF32                     // (+, ×) over float32 → 8 B narrow
	kindArithI32                     // (+, ×) over int32 → 8 B narrow
	kindBoolean                      // (∨, ∧) over bool → 4 B pattern
)

// Arithmetic is the ordinary (+, ×) semiring over float64 — plain SpGEMM.
func Arithmetic() Semiring[float64] {
	return Semiring[float64]{
		Name: "arithmetic(+,*)", Zero: 0,
		Plus:  func(a, b float64) float64 { return a + b },
		Times: func(a, b float64) float64 { return a * b },
		kind:  kindArithF64,
	}
}

// Arithmetic32 is (+, ×) over float32 — plain SpGEMM at half the value
// width, eligible for the 8-byte narrow tuple layout.
func Arithmetic32() Semiring[float32] {
	return Semiring[float32]{
		Name: "arithmetic32(+,*)", Zero: 0,
		Plus:  func(a, b float32) float32 { return a + b },
		Times: func(a, b float32) float32 { return a * b },
		kind:  kindArithF32,
	}
}

// ArithmeticInt32 is (+, ×) over int32 — exact integer SpGEMM (e.g. path
// counting), eligible for the 8-byte narrow tuple layout.
func ArithmeticInt32() Semiring[int32] {
	return Semiring[int32]{
		Name: "arithmetic-int32(+,*)", Zero: 0,
		Plus:  func(a, b int32) int32 { return a + b },
		Times: func(a, b int32) int32 { return a * b },
		kind:  kindArithI32,
	}
}

// Boolean is the (∨, ∧) semiring — structural SpGEMM, the multi-source BFS
// algebra.
func Boolean() Semiring[bool] {
	return Semiring[bool]{
		Name: "boolean(or,and)", Zero: false,
		Plus:  func(a, b bool) bool { return a || b },
		Times: func(a, b bool) bool { return a && b },
		kind:  kindBoolean,
	}
}

// MinPlus is the tropical semiring (min, +) — one SpGEMM is one relaxation
// step of all-pairs shortest paths.
func MinPlus() Semiring[float64] {
	const inf = 1e308
	return Semiring[float64]{
		Name: "tropical(min,+)", Zero: inf,
		Plus: func(a, b float64) float64 {
			if a < b {
				return a
			}
			return b
		},
		Times: func(a, b float64) float64 { return a + b },
	}
}

// MaxTimes is the (max, ×) semiring used in probabilistic reachability
// (most-reliable-path products).
func MaxTimes() Semiring[float64] {
	return Semiring[float64]{
		Name: "maxtimes(max,*)", Zero: 0,
		Plus: func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
		Times: func(a, b float64) float64 { return a * b },
	}
}

// PlusMax is the (+, max) semiring (e.g. bottleneck accumulation).
func PlusMax() Semiring[float64] {
	return Semiring[float64]{
		Name: "plusmax(+,max)", Zero: 0,
		Plus: func(a, b float64) float64 { return a + b },
		Times: func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		},
	}
}
