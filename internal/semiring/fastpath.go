package semiring

import (
	"pbspgemm/internal/core"
	"pbspgemm/internal/matrix"
)

// This file routes MultiplyOpts onto the typed core engine whenever the
// semiring and element type have a native tuple layout: (+, ×) over float64
// runs the 16/12-byte pipeline core.Multiply picks, float32/int32 run the
// 8-byte narrow layout, and (∨, ∧) over all-true operands runs the 4-byte
// pattern (key-only) layout — the dispatch rule the README documents. The
// generic engine in multiply.go remains the semantics oracle: every
// ineligible call (custom semiring, mask, keys over 32 bits for the narrow
// layouts, stored false booleans) falls back to it unchanged.

// Plan reports how MultiplyOpts executed a call: whether a typed fast path
// ran and under which tuple layout. Request it via Options.Plan.
type Plan struct {
	// FastPath is true when the call ran the typed core engine.
	FastPath bool
	// Layout is the tuple layout the fast path executed (pattern, narrow,
	// squeezed, or wide); meaningful only when FastPath.
	Layout core.Layout
	// Reason says why the generic engine ran instead, when !FastPath.
	Reason string
}

// flopsOf is the symbolic pass over the operand pointer arrays: the exact
// expanded-tuple count of the outer-product formulation.
func flopsOf[T any](a *CSCg[T], b *CSRg[T]) int64 {
	var flops int64
	for i := int32(0); i < a.NumCols; i++ {
		flops += (a.ColPtr[i+1] - a.ColPtr[i]) * (b.RowPtr[i+1] - b.RowPtr[i])
	}
	return flops
}

// cscHeader wraps a generic column matrix's index arrays as a float64 CSC
// without copying; val may be nil for the entry points that carry values out
// of band (narrow) or not at all (pattern).
func cscHeader[T any](a *CSCg[T], val []float64) *matrix.CSC {
	return &matrix.CSC{NumRows: a.NumRows, NumCols: a.NumCols,
		ColPtr: a.ColPtr, RowIdx: a.RowIdx, Val: val}
}

func csrHeader[T any](b *CSRg[T], val []float64) *matrix.CSR {
	return &matrix.CSR{NumRows: b.NumRows, NumCols: b.NumCols,
		RowPtr: b.RowPtr, ColIdx: b.ColIdx, Val: val}
}

// narrowFast runs the 8-byte narrow pipeline for a 32-bit value type.
func narrowFast[V core.Value32](a *CSCg[V], b *CSRg[V], copt core.Options) (*CSRg[V], *core.Stats, error) {
	c, vals, st, err := core.MultiplyNarrow(cscHeader(a, nil), a.Val, csrHeader(b, nil), b.Val, copt)
	if err != nil {
		return nil, nil, err
	}
	return &CSRg[V]{NumRows: c.NumRows, NumCols: c.NumCols,
		RowPtr: c.RowPtr, ColIdx: c.ColIdx, Val: vals}, st, nil
}

func allTrue(vals []bool) bool {
	for _, v := range vals {
		if !v {
			return false
		}
	}
	return true
}

// tryFastPath dispatches eligible calls onto the typed engine. It returns
// (result, true, nil) when a fast path ran, (nil, false, nil) to fall back
// to the generic engine, and a non-nil error only from the typed engine
// itself. Cancellation is polled once up front; the typed engine then runs
// to completion (coarser granularity than the generic per-panel polls).
func tryFastPath[T any](sr Semiring[T], a *CSCg[T], b *CSRg[T], opt Options) (*CSRg[T], bool, error) {
	setPlan := func(p Plan) {
		if opt.Plan != nil {
			*opt.Plan = p
		}
	}
	if sr.kind == kindGeneric {
		setPlan(Plan{Reason: "no typed kernel for semiring " + sr.Name})
		return nil, false, nil
	}
	if opt.Mask != nil {
		setPlan(Plan{Reason: "masked product runs the generic engine"})
		return nil, false, nil
	}
	if opt.Cancel != nil {
		if err := opt.Cancel(); err != nil {
			return nil, true, err
		}
	}
	copt := core.Options{
		Threads:           opt.Threads,
		MemoryBudgetBytes: opt.MemoryBudgetBytes,
		Workspace:         opt.Workspace,
	}
	key32Fits := func() bool {
		return core.Key32Fits(a.NumRows, b.NumCols, flopsOf(a, b), copt)
	}

	switch sr.kind {
	case kindArithF64:
		af, ok := any(a).(*CSCg[float64])
		bf, bok := any(b).(*CSRg[float64])
		if !ok || !bok {
			break
		}
		c, st, err := core.Multiply(cscHeader(af, af.Val), csrHeader(bf, bf.Val), copt)
		if err != nil {
			return nil, true, err
		}
		setPlan(Plan{FastPath: true, Layout: st.Layout})
		res := &CSRg[float64]{NumRows: c.NumRows, NumCols: c.NumCols,
			RowPtr: c.RowPtr, ColIdx: c.ColIdx, Val: c.Val}
		return any(res).(*CSRg[T]), true, nil

	case kindArithF32:
		af, ok := any(a).(*CSCg[float32])
		bf, bok := any(b).(*CSRg[float32])
		if !ok || !bok {
			break
		}
		if !key32Fits() {
			setPlan(Plan{Reason: "packed key exceeds 32 bits: no narrow layout"})
			return nil, false, nil
		}
		res, st, err := narrowFast(af, bf, copt)
		if err != nil {
			return nil, true, err
		}
		setPlan(Plan{FastPath: true, Layout: st.Layout})
		return any(res).(*CSRg[T]), true, nil

	case kindArithI32:
		af, ok := any(a).(*CSCg[int32])
		bf, bok := any(b).(*CSRg[int32])
		if !ok || !bok {
			break
		}
		if !key32Fits() {
			setPlan(Plan{Reason: "packed key exceeds 32 bits: no narrow layout"})
			return nil, false, nil
		}
		res, st, err := narrowFast(af, bf, copt)
		if err != nil {
			return nil, true, err
		}
		setPlan(Plan{FastPath: true, Layout: st.Layout})
		return any(res).(*CSRg[T]), true, nil

	case kindBoolean:
		ab, ok := any(a).(*CSCg[bool])
		bb, bok := any(b).(*CSRg[bool])
		if !ok || !bok {
			break
		}
		// The pattern layout computes the structural product: correct for
		// (∨, ∧) exactly when every stored value is true. Stored false
		// entries (structural zeros) must fold through the generic engine.
		if !allTrue(ab.Val) || !allTrue(bb.Val) {
			setPlan(Plan{Reason: "stored false values: pattern layout is structural"})
			return nil, false, nil
		}
		if !key32Fits() {
			setPlan(Plan{Reason: "packed key exceeds 32 bits: no pattern layout"})
			return nil, false, nil
		}
		c, st, err := core.MultiplyPattern(cscHeader(ab, nil), csrHeader(bb, nil), copt)
		if err != nil {
			return nil, true, err
		}
		setPlan(Plan{FastPath: true, Layout: st.Layout})
		nnzc := c.RowPtr[c.NumRows]
		var vals []bool
		if opt.Workspace != nil {
			vals = growAny[bool](&opt.Workspace.Generic().OutVal, nnzc)
		} else {
			vals = make([]bool, nnzc)
		}
		for i := range vals {
			vals[i] = true
		}
		res := &CSRg[bool]{NumRows: c.NumRows, NumCols: c.NumCols,
			RowPtr: c.RowPtr, ColIdx: c.ColIdx, Val: vals}
		return any(res).(*CSRg[T]), true, nil
	}
	setPlan(Plan{Reason: "semiring kind and element type disagree"})
	return nil, false, nil
}
