package semiring

import (
	"fmt"
	"math/bits"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// pair is one expanded tuple over T.
type pair[T any] struct {
	key uint64
	val T
}

// Multiply computes C = A ⊗ B over the semiring sr with the PB-SpGEMM
// structure: outer-product expansion into row-range bins, per-bin in-place
// radix sort on packed keys, two-pointer compression folding duplicates
// with sr.Plus. It is the generic (GraphBLAS-style) counterpart of
// internal/core.Multiply; the float64 kernel remains the tuned fast path.
func Multiply[T any](sr Semiring[T], a *CSCg[T], b *CSRg[T], threads int) (*CSRg[T], error) {
	if a.NumCols != b.NumRows {
		return nil, fmt.Errorf("semiring: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	threads = par.DefaultThreads(threads)

	// Symbolic: flop count and per-bin capacities (Algorithm 3).
	k := int(a.NumCols)
	colFlops := make([]int64, k)
	var flops int64
	for i := 0; i < k; i++ {
		colFlops[i] = (a.ColPtr[i+1] - a.ColPtr[i]) * (b.RowPtr[i+1] - b.RowPtr[i])
		flops += colFlops[i]
	}
	if flops == 0 {
		return &CSRg[T]{NumRows: a.NumRows, NumCols: b.NumCols,
			RowPtr: make([]int64, a.NumRows+1)}, nil
	}
	colBits := uint(bits.Len32(uint32(b.NumCols)))
	if colBits == 0 {
		colBits = 1
	}
	nbins := int(flops * 16 / (1 << 20))
	if nbins < 1 {
		nbins = 1
	}
	if nbins > 2048 {
		nbins = 2048
	}
	if int64(nbins) > int64(a.NumRows) {
		nbins = int(a.NumRows)
	}
	rowsPerBin := (a.NumRows + int32(nbins) - 1) / int32(nbins)
	if rowsPerBin < 1 {
		rowsPerBin = 1
	}
	nbins = int((a.NumRows + rowsPerBin - 1) / rowsPerBin)

	binFlops := make([]int64, nbins)
	for i := 0; i < k; i++ {
		bRow := b.RowPtr[i+1] - b.RowPtr[i]
		if bRow == 0 {
			continue
		}
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			binFlops[a.RowIdx[p]/rowsPerBin] += bRow
		}
	}
	binStart := make([]int64, nbins+1)
	par.PrefixSum(binFlops, binStart)

	// Expand: sequential over columns (the generic path favours clarity;
	// per-bin cursors advance without atomics).
	tuples := make([]pair[T], flops)
	cursor := make([]int64, nbins)
	copy(cursor, binStart[:nbins])
	for i := 0; i < k; i++ {
		bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
		if bLo == bHi {
			continue
		}
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			r := a.RowIdx[p]
			av := a.Val[p]
			bin := r / rowsPerBin
			localRow := uint64(r-bin*rowsPerBin) << colBits
			c := cursor[bin]
			for q := bLo; q < bHi; q++ {
				tuples[c] = pair[T]{key: localRow | uint64(b.ColIdx[q]), val: sr.Times(av, b.Val[q])}
				c++
			}
			cursor[bin] = c
		}
	}

	// Sort + compress, bins in parallel.
	binOut := make([]int64, nbins)
	rowCounts := make([]int64, a.NumRows+1)
	par.ForEachDynamic(nbins, threads, func(_, bin int) {
		seg := tuples[binStart[bin]:binStart[bin+1]]
		sortPairsG(seg)
		if len(seg) == 0 {
			return
		}
		p2 := 0
		for p1 := 1; p1 < len(seg); p1++ {
			if seg[p1].key == seg[p2].key {
				seg[p2].val = sr.Plus(seg[p2].val, seg[p1].val)
				continue
			}
			p2++
			seg[p2] = seg[p1]
		}
		binOut[bin] = int64(p2 + 1)
		firstRow := int32(bin) * rowsPerBin
		for i := int64(0); i <= int64(p2); i++ {
			rowCounts[firstRow+int32(seg[i].key>>colBits)+1]++
		}
	})

	// Assemble.
	binOutStart := make([]int64, nbins+1)
	nnzc := par.PrefixSum(binOut, binOutStart)
	c := &CSRg[T]{
		NumRows: a.NumRows, NumCols: b.NumCols,
		RowPtr: make([]int64, a.NumRows+1),
		ColIdx: make([]int32, nnzc),
		Val:    make([]T, nnzc),
	}
	for i := int32(0); i < a.NumRows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + rowCounts[i+1]
	}
	colMask := uint64(1)<<colBits - 1
	par.ForEachDynamic(nbins, threads, func(_, bin int) {
		src := binStart[bin]
		dst := binOutStart[bin]
		for j := int64(0); j < binOut[bin]; j++ {
			c.ColIdx[dst+j] = int32(tuples[src+j].key & colMask)
			c.Val[dst+j] = tuples[src+j].val
		}
	})
	return c, nil
}

// sortPairsG is the in-place American-flag radix sort over generic payload
// tuples (same structure as internal/radix, instantiated per T).
func sortPairsG[T any](ps []pair[T]) {
	if len(ps) < 2 {
		return
	}
	var or uint64
	for i := range ps {
		or |= ps[i].key
	}
	if or == 0 {
		return
	}
	top := 0
	x := or
	for s := 32; s >= 8; s >>= 1 {
		if x>>(uint(s)) != 0 {
			x >>= uint(s)
			top += s / 8
		}
	}
	sortAtByteG(ps, top)
}

func sortAtByteG[T any](ps []pair[T], byteIdx int) {
	n := len(ps)
	if n < 2 {
		return
	}
	if n <= 32 {
		for i := 1; i < n; i++ {
			p := ps[i]
			j := i - 1
			for j >= 0 && ps[j].key > p.key {
				ps[j+1] = ps[j]
				j--
			}
			ps[j+1] = p
		}
		return
	}
	shift := uint(byteIdx * 8)
	var count [256]int
	for i := range ps {
		count[(ps[i].key>>shift)&0xff]++
	}
	var start, end [256]int
	sum, nonEmpty := 0, 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += count[b]
		end[b] = sum
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		if byteIdx > 0 {
			sortAtByteG(ps, byteIdx-1)
		}
		return
	}
	var cursor [256]int
	copy(cursor[:], start[:])
	for b := 0; b < 256; b++ {
		for cursor[b] < end[b] {
			p := ps[cursor[b]]
			home := int((p.key >> shift) & 0xff)
			if home == b {
				cursor[b]++
				continue
			}
			j := cursor[home]
			ps[cursor[b]], ps[j] = ps[j], p
			cursor[home]++
		}
	}
	if byteIdx == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if count[b] > 1 {
			sortAtByteG(ps[start[b]:end[b]], byteIdx-1)
		}
	}
}
