package semiring

import (
	"fmt"
	"math/bits"
	"unsafe"

	"pbspgemm/internal/core"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// pair is one expanded tuple over T.
type pair[T any] struct {
	key uint64
	val T
}

// Options configures the generic engine. The zero value runs single-shot on
// all cores with fresh buffers, exactly like the original Multiply.
type Options struct {
	// Threads is the worker count for the sort/compress/merge phases;
	// 0 means GOMAXPROCS. Expansion is sequential in the generic path.
	Threads int
	// MemoryBudgetBytes caps the expanded-tuple buffer as in the float64
	// engine (core.Options.MemoryBudgetBytes): columns are tiled into
	// panels, per-panel compressed runs are merged per bin with sr.Plus.
	MemoryBudgetBytes int64
	// Workspace, if non-nil, pools buffers across calls through the
	// workspace's type-erased generic arena (core.GenericSpace). Tuple and
	// value buffers are cached per element type T: reuse hits when T is
	// stable across calls. The returned matrix then aliases workspace
	// memory and is invalidated by the next call using the same workspace.
	Workspace *core.Workspace
	// Mask, if non-nil, restricts the output structurally (GraphBLAS C⟨M⟩):
	// only positions where Mask stores an entry survive (values ignored).
	// Filtering happens per bin right after compression, before any output
	// or run buffer is written, so the unmasked product is never
	// materialized. Mask must be canonical CSR of shape rows(A)×cols(B).
	Mask *matrix.CSR
	// Complement flips the mask (C⟨¬M⟩): keep positions NOT stored in Mask.
	// Ignored when Mask is nil.
	Complement bool
	// Cancel, if non-nil, is polled at phase boundaries (per panel, before
	// the merge and before assembly). A non-nil return aborts the
	// multiplication with that error. The typed fast paths poll it once up
	// front only.
	Cancel func() error
	// Plan, if non-nil, is filled with how the call executed: whether a
	// typed fast path ran (and under which tuple layout) or why the generic
	// engine ran instead.
	Plan *Plan
}

// Multiply computes C = A ⊗ B over the semiring sr with the PB-SpGEMM
// structure: outer-product expansion into row-range bins, per-bin in-place
// radix sort on packed keys, two-pointer compression folding duplicates
// with sr.Plus. It is the generic (GraphBLAS-style) counterpart of
// internal/core.Multiply; the float64 kernel remains the tuned fast path.
func Multiply[T any](sr Semiring[T], a *CSCg[T], b *CSRg[T], threads int) (*CSRg[T], error) {
	return MultiplyOpts(sr, a, b, Options{Threads: threads})
}

// MultiplyOpts is Multiply with the full execution-engine options: shared
// workspace and memory budget (column-panel tiling with per-bin run
// merging), mirroring the float64 engine. Panics — the semiring's Add/Mul
// callbacks run arbitrary user code — are contained into a *par.PanicError
// return rather than unwinding into the caller's process.
func MultiplyOpts[T any](sr Semiring[T], a *CSCg[T], b *CSRg[T], opt Options) (c *CSRg[T], err error) {
	defer func() {
		if pe := par.AsPanicError(recover(), -1, "semiring"); pe != nil {
			c, err = nil, pe
		}
	}()
	return multiplyOpts(sr, a, b, opt)
}

func multiplyOpts[T any](sr Semiring[T], a *CSCg[T], b *CSRg[T], opt Options) (*CSRg[T], error) {
	if a.NumCols != b.NumRows {
		return nil, fmt.Errorf("semiring: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	if opt.Mask != nil && (opt.Mask.NumRows != a.NumRows || opt.Mask.NumCols != b.NumCols) {
		return nil, fmt.Errorf("semiring: mask is %dx%d, product is %dx%d: %w",
			opt.Mask.NumRows, opt.Mask.NumCols, a.NumRows, b.NumCols, matrix.ErrShape)
	}
	if c, ran, err := tryFastPath(sr, a, b, opt); ran {
		return c, err
	}
	canceled := func() error {
		if opt.Cancel == nil {
			return nil
		}
		return opt.Cancel()
	}
	threads := par.DefaultThreads(opt.Threads)
	shared := opt.Workspace != nil
	gws := &core.GenericSpace{}
	if shared {
		gws = opt.Workspace.Generic()
	}

	// Symbolic: flop count from the pointer arrays (Algorithm 3).
	k := int(a.NumCols)
	colFlops := matrix.GrowInt64(&gws.ColFlops, k)
	var flops int64
	for i := 0; i < k; i++ {
		colFlops[i] = (a.ColPtr[i+1] - a.ColPtr[i]) * (b.RowPtr[i+1] - b.RowPtr[i])
		flops += colFlops[i]
	}
	if flops == 0 {
		return newResult[T](gws, shared, a.NumRows, b.NumCols, 0), nil
	}
	colBits := uint(bits.Len32(uint32(b.NumCols)))
	if colBits == 0 {
		colBits = 1
	}

	// Panels: tile columns so one panel's tuples fit the budget (the tuple
	// size is T-dependent, so the cut uses the real sizeof).
	tsize := int64(unsafe.Sizeof(pair[T]{}))
	ps := append(gws.PanelStart[:0], 0)
	var maxPanelFlops int64
	budgetTuples := int64(0)
	if opt.MemoryBudgetBytes > 0 {
		budgetTuples = opt.MemoryBudgetBytes / tsize
		if budgetTuples < 1 {
			budgetTuples = 1 // sub-tuple budgets tile maximally, as in core
		}
	}
	if budgetTuples <= 0 || flops <= budgetTuples {
		ps = append(ps, k)
		maxPanelFlops = flops
	} else {
		var cur int64
		for i := 0; i < k; i++ {
			if cur > 0 && cur+colFlops[i] > budgetTuples {
				ps = append(ps, i)
				if cur > maxPanelFlops {
					maxPanelFlops = cur
				}
				cur = 0
			}
			cur += colFlops[i]
		}
		ps = append(ps, k)
		if cur > maxPanelFlops {
			maxPanelFlops = cur
		}
	}
	gws.PanelStart = ps
	npanels := len(ps) - 1
	single := npanels == 1

	// Bin geometry: same L2 sizing and clamps as the float64 engine,
	// derived from the largest panel so every panel's bins fit the cache.
	nbins := int(maxPanelFlops * tsize / (1 << 20))
	if nbins < 1 {
		nbins = 1
	}
	if nbins > 2048 {
		nbins = 2048
	}
	if int64(nbins) > int64(a.NumRows) {
		nbins = int(a.NumRows)
	}
	rowsPerBin := (a.NumRows + int32(nbins) - 1) / int32(nbins)
	if rowsPerBin < 1 {
		rowsPerBin = 1
	}
	nbins = int((a.NumRows + rowsPerBin - 1) / rowsPerBin)

	tuples := growAny[pair[T]](&gws.Tuples, maxPanelFlops)
	binFlops := matrix.GrowInt64(&gws.BinFlops, nbins)
	binStart := matrix.GrowInt64(&gws.BinStart, nbins+1)
	cursor := matrix.GrowInt64(&gws.Cursor, nbins)
	binOut := matrix.GrowInt64(&gws.BinOut, nbins)
	rowCounts := matrix.GrowInt64(&gws.RowCounts, int(a.NumRows)+1)
	clear(rowCounts)

	var runs []pair[T]
	if !single {
		runs, _ = gws.Runs.([]pair[T])
		runs = runs[:0]
		gws.RunBins = gws.RunBins[:0]
		gws.RunStart = gws.RunStart[:0]
	}

	for p := 0; p < npanels; p++ {
		if err := canceled(); err != nil {
			return nil, err
		}
		lo, hi := ps[p], ps[p+1]

		// Per-panel bin extents: one pass over the panel's nonzeros.
		clear(binFlops)
		for i := lo; i < hi; i++ {
			bRow := b.RowPtr[i+1] - b.RowPtr[i]
			if bRow == 0 {
				continue
			}
			for q := a.ColPtr[i]; q < a.ColPtr[i+1]; q++ {
				binFlops[a.RowIdx[q]/rowsPerBin] += bRow
			}
		}
		par.PrefixSum(binFlops, binStart)

		// Expand: sequential over columns (the generic path favours
		// clarity; per-bin cursors advance without atomics).
		copy(cursor, binStart[:nbins])
		for i := lo; i < hi; i++ {
			bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
			if bLo == bHi {
				continue
			}
			for q := a.ColPtr[i]; q < a.ColPtr[i+1]; q++ {
				r := a.RowIdx[q]
				av := a.Val[q]
				bin := r / rowsPerBin
				localRow := uint64(r-bin*rowsPerBin) << colBits
				c := cursor[bin]
				for w := bLo; w < bHi; w++ {
					tuples[c] = pair[T]{key: localRow | uint64(b.ColIdx[w]), val: sr.Times(av, b.Val[w])}
					c++
				}
				cursor[bin] = c
			}
		}

		// Sort + compress, bins in parallel; the structural mask (if any) is
		// applied to the compressed segment before anything downstream sees
		// it, so unmasked entries never reach the output or the run arena.
		// On single-shot runs the row tallies happen here; budgeted runs
		// tally during the merge, when final per-row counts are known.
		par.ForEachDynamic(nbins, threads, func(_, bin int) {
			firstRow := int32(bin) * rowsPerBin
			seg := tuples[binStart[bin]:binStart[bin+1]]
			sortPairsG(seg)
			out := compressSeg(sr, seg)
			if opt.Mask != nil {
				out = filterSegMask(seg[:out], opt.Mask, opt.Complement, firstRow, colBits)
			}
			binOut[bin] = out
			if single {
				for i := int64(0); i < out; i++ {
					rowCounts[firstRow+int32(seg[i].key>>colBits)+1]++
				}
			}
		})

		if !single {
			runs = appendRunsG(gws, runs, tuples, binStart, binOut, nbins)
		}
	}

	src, srcStart := tuples, binStart
	if !single {
		if err := canceled(); err != nil {
			return nil, err
		}
		gws.Runs = runs
		gws.RunStart = append(gws.RunStart, int64(len(runs)))
		srcStart = mergeRunsG(sr, gws, runs, nbins, rowsPerBin, colBits, threads, binOut, rowCounts)
		src, _ = gws.Merged.([]pair[T])
	}
	if err := canceled(); err != nil {
		return nil, err
	}

	// Assemble.
	binOutStart := matrix.GrowInt64(&gws.BinOutStart, nbins+1)
	nnzc := par.PrefixSum(binOut, binOutStart)
	c := newResult[T](gws, shared, a.NumRows, b.NumCols, nnzc)
	c.RowPtr[0] = 0
	for i := int32(0); i < a.NumRows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + rowCounts[i+1]
	}
	colMask := uint64(1)<<colBits - 1
	par.ForEachDynamic(nbins, threads, func(_, bin int) {
		s := srcStart[bin]
		d := binOutStart[bin]
		for j := int64(0); j < binOut[bin]; j++ {
			c.ColIdx[d+j] = int32(src[s+j].key & colMask)
			c.Val[d+j] = src[s+j].val
		}
	})
	return c, nil
}

// filterSegMask drops tuples of a compressed, sorted bin segment according
// to the structural mask: a tuple at global position (row, col) survives iff
// the mask stores an entry there (or does not, under complement). The
// segment is sorted by packed key, so rows appear in ascending order with
// ascending columns inside each row, and the filter is one linear merge of
// the segment against the relevant mask rows. Returns the kept length.
func filterSegMask[T any](seg []pair[T], mask *matrix.CSR, complement bool,
	firstRow int32, colBits uint) int64 {

	colMask := uint64(1)<<colBits - 1
	var w int64
	for i := 0; i < len(seg); {
		rowKey := seg[i].key >> colBits
		row := firstRow + int32(rowKey)
		j := i
		for j < len(seg) && seg[j].key>>colBits == rowKey {
			j++
		}
		mp, mEnd := mask.RowPtr[row], mask.RowPtr[row+1]
		for ; i < j; i++ {
			col := int32(seg[i].key & colMask)
			for mp < mEnd && mask.ColIdx[mp] < col {
				mp++
			}
			stored := mp < mEnd && mask.ColIdx[mp] == col
			if stored != complement {
				seg[w] = seg[i]
				w++
			}
		}
	}
	return w
}

// compressSeg is the two-pointer in-place merge over a sorted segment,
// folding equal keys with sr.Plus. Returns the compressed length.
func compressSeg[T any](sr Semiring[T], seg []pair[T]) int64 {
	if len(seg) == 0 {
		return 0
	}
	p2 := 0
	for p1 := 1; p1 < len(seg); p1++ {
		if seg[p1].key == seg[p2].key {
			seg[p2].val = sr.Plus(seg[p2].val, seg[p1].val)
			continue
		}
		p2++
		seg[p2] = seg[p1]
	}
	return int64(p2 + 1)
}

// appendRunsG copies the current panel's nonempty compressed bin segments
// into the run arena (append's amortized growth, contents preserved),
// recording one sorted duplicate-free run per (panel, bin).
func appendRunsG[T any](gws *core.GenericSpace, runs []pair[T],
	tuples []pair[T], binStart, binOut []int64, nbins int) []pair[T] {

	for bin := 0; bin < nbins; bin++ {
		n := binOut[bin]
		if n == 0 {
			continue
		}
		gws.RunBins = append(gws.RunBins, int32(bin))
		gws.RunStart = append(gws.RunStart, int64(len(runs)))
		runs = append(runs, tuples[binStart[bin]:binStart[bin]+n]...)
	}
	return runs
}

// mergeRunsG groups runs by bin and k-way merges each bin's runs, folding
// duplicates with sr.Plus and tallying per-row output counts. It fills
// binOut with merged sizes and returns the per-bin offsets into the merged
// buffer. Structure mirrors the float64 engine's mergeBins.
func mergeRunsG[T any](sr Semiring[T], gws *core.GenericSpace, runs []pair[T],
	nbins int, rowsPerBin int32, colBits uint, threads int,
	binOut, rowCounts []int64) []int64 {

	nruns := len(gws.RunBins)
	ris := matrix.GrowInt32(&gws.RunIdxStart, nbins+1)
	clear(ris)
	for _, bin := range gws.RunBins {
		ris[bin+1]++
	}
	for bin := 0; bin < nbins; bin++ {
		ris[bin+1] += ris[bin]
	}
	ri := matrix.GrowInt32(&gws.RunIdx, nruns)
	cur := matrix.GrowInt64(&gws.BinFlops, nbins) // free scratch here
	for bin := 0; bin < nbins; bin++ {
		cur[bin] = int64(ris[bin])
	}
	for r, bin := range gws.RunBins {
		ri[cur[bin]] = int32(r)
		cur[bin]++
	}

	ms := matrix.GrowInt64(&gws.MergedStart, nbins+1)
	ms[0] = 0
	maxRuns := 0
	for bin := 0; bin < nbins; bin++ {
		var sum int64
		group := ri[ris[bin]:ris[bin+1]]
		for _, r := range group {
			sum += gws.RunStart[r+1] - gws.RunStart[r]
		}
		ms[bin+1] = ms[bin] + sum
		if len(group) > maxRuns {
			maxRuns = len(group)
		}
	}
	merged := growAny[pair[T]](&gws.Merged, ms[nbins])
	heads := matrix.GrowInt64(&gws.Heads, threads*maxRuns)

	par.ForEachDynamic(nbins, threads, func(worker, bin int) {
		group := ri[ris[bin]:ris[bin+1]]
		kk := len(group)
		dstBase := ms[bin]
		dst := dstBase
		switch kk {
		case 0:
		case 1:
			r := group[0]
			n := gws.RunStart[r+1] - gws.RunStart[r]
			copy(merged[dst:dst+n], runs[gws.RunStart[r]:gws.RunStart[r+1]])
			dst += n
		default:
			hs := heads[worker*maxRuns : worker*maxRuns+kk]
			for i, r := range group {
				hs[i] = gws.RunStart[r]
			}
			for {
				best := -1
				var bestKey uint64
				for i, r := range group {
					h := hs[i]
					if h == gws.RunStart[r+1] {
						continue // run exhausted
					}
					if key := runs[h].key; best < 0 || key < bestKey {
						best, bestKey = i, key
					}
				}
				if best < 0 {
					break
				}
				p := runs[hs[best]]
				hs[best]++
				if dst > dstBase && merged[dst-1].key == p.key {
					merged[dst-1].val = sr.Plus(merged[dst-1].val, p.val)
				} else {
					merged[dst] = p
					dst++
				}
			}
		}
		binOut[bin] = dst - dstBase
		firstRow := int32(bin) * rowsPerBin
		for i := dstBase; i < dst; i++ {
			rowCounts[firstRow+int32(merged[i].key>>colBits)+1]++
		}
	})
	return ms
}

// newResult returns the output matrix: fresh normally, carved from the
// workspace's generic arena when shared.
func newResult[T any](gws *core.GenericSpace, shared bool, rows, cols int32, nnzc int64) *CSRg[T] {
	if !shared {
		return &CSRg[T]{
			NumRows: rows, NumCols: cols,
			RowPtr: make([]int64, rows+1),
			ColIdx: make([]int32, nnzc),
			Val:    make([]T, nnzc),
		}
	}
	rp := matrix.GrowInt64(&gws.OutRowPtr, int(rows)+1)
	clear(rp)
	return &CSRg[T]{
		NumRows: rows, NumCols: cols,
		RowPtr: rp,
		ColIdx: matrix.GrowInt32(&gws.OutColIdx, int(nnzc)),
		Val:    growAny[T](&gws.OutVal, nnzc),
	}
}

// growAny returns a []E of length n backed by the type-erased cache slot,
// reallocating when the cached slice has a different element type or too
// little capacity — the "arena" half of the workspace's GenericSpace.
func growAny[E any](slot *any, n int64) []E {
	if s, ok := (*slot).([]E); ok && int64(cap(s)) >= n {
		s = s[:n]
		*slot = s
		return s
	}
	s := make([]E, n)
	*slot = s
	return s
}
