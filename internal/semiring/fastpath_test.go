package semiring

import (
	"testing"

	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// stripKind returns sr with its fast-path tag erased, forcing the generic
// engine — the oracle the typed pipelines are checked against.
func stripKind[T any](sr Semiring[T]) Semiring[T] {
	sr.kind = kindGeneric
	return sr
}

// intCSR rewrites values to small integers so float32, int32, and float64
// folds are all exact.
func intCSR(m *matrix.CSR) *matrix.CSR {
	for i := range m.Val {
		m.Val[i] = float64(i%7 + 1)
	}
	return m
}

func sameStructureG[T any](a, b *CSRg[T]) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	return true
}

// TestFastPathPlanReporting pins the dispatch rule: Boolean lands on the
// pattern layout, float32/int32 arithmetic on narrow, float64 on the layout
// core picks; custom semirings, masked calls, and false-valued booleans
// report the generic fallback with a reason.
func TestFastPathPlanReporting(t *testing.T) {
	a := intCSR(gen.ER(400, 6, 31))
	b := intCSR(gen.ER(400, 6, 32))

	// Boolean → pattern.
	ba := FromCSR(a, func(float64) bool { return true }).ToCSC()
	bb := FromCSR(b, func(float64) bool { return true })
	var p Plan
	cb, err := MultiplyOpts(Boolean(), ba, bb, Options{Plan: &p})
	if err != nil {
		t.Fatal(err)
	}
	if !p.FastPath || p.Layout != core.LayoutPattern {
		t.Fatalf("boolean plan = %+v, want pattern fast path", p)
	}
	ref, err := MultiplyOpts(stripKind(Boolean()), ba, bb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructureG(ref, cb) {
		t.Fatal("pattern fast path structure differs from generic boolean")
	}
	for i, v := range cb.Val {
		if !v {
			t.Fatalf("fast-path boolean value[%d] is false", i)
		}
	}

	// float32 → narrow.
	fa := FromCSR(a, func(v float64) float32 { return float32(v) }).ToCSC()
	fb := FromCSR(b, func(v float64) float32 { return float32(v) })
	cf, err := MultiplyOpts(Arithmetic32(), fa, fb, Options{Plan: &p})
	if err != nil {
		t.Fatal(err)
	}
	if !p.FastPath || p.Layout != core.LayoutNarrow {
		t.Fatalf("float32 plan = %+v, want narrow fast path", p)
	}
	reff, err := MultiplyOpts(stripKind(Arithmetic32()), fa, fb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameStructureG(reff, cf) {
		t.Fatal("narrow fast path structure differs from generic float32")
	}
	for i := range cf.Val {
		if cf.Val[i] != reff.Val[i] {
			t.Fatalf("narrow value[%d] = %v, generic oracle %v", i, cf.Val[i], reff.Val[i])
		}
	}

	// int32 → narrow.
	ia := FromCSR(a, func(v float64) int32 { return int32(v) }).ToCSC()
	ib := FromCSR(b, func(v float64) int32 { return int32(v) })
	if _, err := MultiplyOpts(ArithmeticInt32(), ia, ib, Options{Plan: &p}); err != nil {
		t.Fatal(err)
	}
	if !p.FastPath || p.Layout != core.LayoutNarrow {
		t.Fatalf("int32 plan = %+v, want narrow fast path", p)
	}

	// float64 → whatever core picks (squeezed here).
	da := FromCSR(a, func(v float64) float64 { return v }).ToCSC()
	db := FromCSR(b, func(v float64) float64 { return v })
	if _, err := MultiplyOpts(Arithmetic(), da, db, Options{Plan: &p}); err != nil {
		t.Fatal(err)
	}
	if !p.FastPath {
		t.Fatalf("float64 plan = %+v, want fast path", p)
	}

	// Fallbacks, each with a reason.
	if _, err := MultiplyOpts(stripKind(Arithmetic()), da, db, Options{Plan: &p}); err != nil {
		t.Fatal(err)
	}
	if p.FastPath || p.Reason == "" {
		t.Fatalf("custom semiring plan = %+v, want reasoned fallback", p)
	}
	if _, err := MultiplyOpts(Arithmetic(), da, db, Options{Plan: &p, Mask: a}); err != nil {
		t.Fatal(err)
	}
	if p.FastPath || p.Reason == "" {
		t.Fatalf("masked plan = %+v, want reasoned fallback", p)
	}
	// A stored false value makes the pattern layout unsound: fall back.
	bf := FromCSR(b, func(float64) bool { return true })
	bf.Val[0] = false
	if _, err := MultiplyOpts(Boolean(), ba, bf, Options{Plan: &p}); err != nil {
		t.Fatal(err)
	}
	if p.FastPath || p.Reason == "" {
		t.Fatalf("false-valued boolean plan = %+v, want reasoned fallback", p)
	}
}

// TestFastPathKeyWidthFallback: a 31-bit column space has no 32-bit packed
// key, so the narrow and pattern dispatches must decline and the generic
// engine must produce the product.
func TestFastPathKeyWidthFallback(t *testing.T) {
	cols := int32(1) << 30
	a := &CSRg[int32]{NumRows: 8, NumCols: 8,
		RowPtr: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8},
		ColIdx: []int32{0, 1, 2, 3, 4, 5, 6, 7},
		Val:    []int32{1, 1, 1, 1, 1, 1, 1, 1}}
	b := &CSRg[int32]{NumRows: 8, NumCols: cols,
		RowPtr: []int64{0, 1, 2, 3, 4, 5, 6, 7, 8},
		ColIdx: []int32{0, 1 << 29, 2, 3, 4, 5, 6, cols - 1},
		Val:    []int32{2, 2, 2, 2, 2, 2, 2, 2}}
	var p Plan
	c, err := MultiplyOpts(ArithmeticInt32(), a.ToCSC(), b, Options{Plan: &p})
	if err != nil {
		t.Fatal(err)
	}
	if p.FastPath {
		t.Fatalf("plan = %+v, want key-width fallback", p)
	}
	if c.NNZ() != 8 {
		t.Fatalf("fallback product nnz = %d, want 8", c.NNZ())
	}
	for i, v := range c.Val {
		if v != 2 {
			t.Fatalf("value[%d] = %d, want 2", i, v)
		}
	}
}

// FuzzFastPathVsGeneric holds the typed dispatches to the generic engine as
// oracle on random shapes: structure for Boolean, exact values for float32
// (integer-valued inputs) and int32, across budgeted and pooled variants.
func FuzzFastPathVsGeneric(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{24, 24, 24, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 1, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5})

	ws := core.NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		rows := int32(data[0]%24) + 1
		inner := int32(data[1]%24) + 1
		cols := int32(data[2]%24) + 1
		coo := &matrix.COO{NumRows: rows, NumCols: inner}
		cob := &matrix.COO{NumRows: inner, NumCols: cols}
		for i := 3; i+2 < len(data); i += 3 {
			r, c, v := data[i], data[i+1], float64(data[i+2]%7)+1
			if (i/3)%2 == 0 {
				coo.Row = append(coo.Row, int32(r)%rows)
				coo.Col = append(coo.Col, int32(c)%inner)
				coo.Val = append(coo.Val, v)
			} else {
				cob.Row = append(cob.Row, int32(r)%inner)
				cob.Col = append(cob.Col, int32(c)%cols)
				cob.Val = append(cob.Val, v)
			}
		}
		a, b := coo.ToCSR(), cob.ToCSR()

		for _, opt := range []Options{
			{},
			{MemoryBudgetBytes: 128},
			{Threads: 1, Workspace: ws},
		} {
			var p Plan
			opt.Plan = &p

			ba := FromCSR(a, func(float64) bool { return true }).ToCSC()
			bb := FromCSR(b, func(float64) bool { return true })
			fast, err := MultiplyOpts(Boolean(), ba, bb, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !p.FastPath || p.Layout != core.LayoutPattern {
				t.Fatalf("boolean plan = %+v, want pattern", p)
			}
			oracle, err := MultiplyOpts(stripKind(Boolean()), ba, bb, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sameStructureG(oracle, fast) {
				t.Fatalf("pattern structure differs from generic oracle (opt %+v)", opt)
			}

			fa := FromCSR(a, func(v float64) float32 { return float32(v) }).ToCSC()
			fb := FromCSR(b, func(v float64) float32 { return float32(v) })
			ff, err := MultiplyOpts(Arithmetic32(), fa, fb, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !p.FastPath || p.Layout != core.LayoutNarrow {
				t.Fatalf("float32 plan = %+v, want narrow", p)
			}
			fo, err := MultiplyOpts(stripKind(Arithmetic32()), fa, fb, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sameStructureG(fo, ff) {
				t.Fatalf("narrow structure differs from generic oracle (opt %+v)", opt)
			}
			for i := range ff.Val {
				if ff.Val[i] != fo.Val[i] {
					t.Fatalf("narrow value[%d] = %v, oracle %v (opt %+v)", i, ff.Val[i], fo.Val[i], opt)
				}
			}
		}
	})
}
