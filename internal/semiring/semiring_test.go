package semiring

import (
	"math"
	"testing"
	"testing/quick"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

func TestArithmeticMatchesFloatKernel(t *testing.T) {
	a := gen.ER(400, 6, 1)
	b := gen.ER(400, 6, 2)
	want := matrix.ReferenceMultiply(a, b)
	sr := Arithmetic()
	ga := FromCSR(a, func(v float64) float64 { return v }).ToCSC()
	gb := FromCSR(b, func(v float64) float64 { return v })
	gc, err := Multiply(sr, ga, gb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.Validate(); err != nil {
		t.Fatal(err)
	}
	got := gc.ToCSR(func(v float64) float64 { return v })
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("generic arithmetic multiply differs from reference")
	}
}

func TestBooleanIsStructuralProduct(t *testing.T) {
	a := gen.ER(300, 5, 3)
	b := gen.ER(300, 5, 4)
	sr := Boolean()
	ga := FromCSR(a, func(float64) bool { return true }).ToCSC()
	gb := FromCSR(b, func(float64) bool { return true })
	gc, err := Multiply(sr, ga, gb, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Structure must equal the arithmetic product's structure, all values true.
	want := matrix.ReferenceMultiply(a, b)
	if gc.NNZ() != want.NNZ() {
		t.Fatalf("boolean nnz %d != arithmetic structure %d", gc.NNZ(), want.NNZ())
	}
	for i, v := range gc.Val {
		if !v {
			t.Fatalf("boolean product has false stored value at %d", i)
		}
	}
	for p := range gc.ColIdx {
		if gc.ColIdx[p] != want.ColIdx[p] {
			t.Fatal("boolean structure differs from arithmetic structure")
		}
	}
}

func TestMinPlusIsShortestPathRelaxation(t *testing.T) {
	// Small weighted digraph; D² over (min,+) gives shortest 1-or-2-hop
	// distances. Graph: 0->1 (3), 1->2 (4), 0->2 (10).
	coo := &matrix.COO{NumRows: 3, NumCols: 3,
		Row: []int32{0, 1, 0}, Col: []int32{1, 2, 2}, Val: []float64{3, 4, 10}}
	d := coo.ToCSR()
	sr := MinPlus()
	gd := FromCSR(d, func(v float64) float64 { return v })
	gc, err := Multiply(sr, gd.ToCSC(), gd, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Entry (0,2) must be min over k of d(0,k)+d(k,2) = 3+4 = 7 (beats 10+…
	// no: (0,2) via paths of exactly 2 hops; 0->1->2 = 7).
	var got float64 = math.Inf(1)
	for p := gc.RowPtr[0]; p < gc.RowPtr[1]; p++ {
		if gc.ColIdx[p] == 2 {
			got = gc.Val[p]
		}
	}
	if got != 7 {
		t.Fatalf("(0,2) 2-hop distance = %v, want 7", got)
	}
}

func TestMinPlusMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nSel uint8) bool {
		n := int32(nSel%30) + 3
		r := gen.NewRNG(seed)
		coo := &matrix.COO{NumRows: n, NumCols: n}
		for e := 0; e < int(n)*3; e++ {
			coo.Row = append(coo.Row, r.Intn(n))
			coo.Col = append(coo.Col, r.Intn(n))
			coo.Val = append(coo.Val, 1+9*r.Float64())
		}
		d := coo.ToCSR() // duplicates summed; fine, still a weighted digraph
		sr := MinPlus()
		gd := FromCSR(d, func(v float64) float64 { return v })
		gc, err := Multiply(sr, gd.ToCSC(), gd, 0)
		if err != nil {
			return false
		}
		// Brute force min-plus product.
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
			for j := range dense[i] {
				dense[i][j] = sr.Zero
			}
		}
		for i := int32(0); i < n; i++ {
			for p := d.RowPtr[i]; p < d.RowPtr[i+1]; p++ {
				dense[i][d.ColIdx[p]] = d.Val[p]
			}
		}
		want := make([][]float64, n)
		for i := range want {
			want[i] = make([]float64, n)
			for j := range want[i] {
				want[i][j] = sr.Zero
				for k := int32(0); k < n; k++ {
					if dense[i][k] != sr.Zero && dense[k][j] != sr.Zero {
						want[i][j] = sr.Plus(want[i][j], dense[i][k]+dense[k][j])
					}
				}
			}
		}
		for i := int32(0); i < n; i++ {
			for p := gc.RowPtr[i]; p < gc.RowPtr[i+1]; p++ {
				if math.Abs(gc.Val[p]-want[i][gc.ColIdx[p]]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxTimesAndPlusMax(t *testing.T) {
	// Reliability product: (0,2) over max-times of probabilities.
	coo := &matrix.COO{NumRows: 3, NumCols: 3,
		Row: []int32{0, 1, 0}, Col: []int32{1, 2, 2}, Val: []float64{0.5, 0.8, 0.9}}
	p := coo.ToCSR()
	sr := MaxTimes()
	gp := FromCSR(p, func(v float64) float64 { return v })
	gc, err := Multiply(sr, gp.ToCSC(), gp, 0)
	if err != nil {
		t.Fatal(err)
	}
	for q := gc.RowPtr[0]; q < gc.RowPtr[1]; q++ {
		if gc.ColIdx[q] == 2 && math.Abs(gc.Val[q]-0.4) > 1e-12 {
			t.Fatalf("(0,2) reliability = %v, want 0.4", gc.Val[q])
		}
	}
	pm := PlusMax()
	if pm.Plus(2, 3) != 5 || pm.Times(2, 3) != 3 {
		t.Fatal("PlusMax operators wrong")
	}
}

func TestGenericShapeMismatch(t *testing.T) {
	a := FromCSR(gen.ER(16, 2, 1), func(v float64) float64 { return v }).ToCSC()
	b := FromCSR(gen.ER(32, 2, 2), func(v float64) float64 { return v })
	if _, err := Multiply(Arithmetic(), a, b, 0); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestGenericEmpty(t *testing.T) {
	empty := &CSRg[float64]{NumRows: 10, NumCols: 10, RowPtr: make([]int64, 11)}
	c, err := Multiply(Arithmetic(), empty.ToCSC(), empty, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 {
		t.Fatal("empty product must be empty")
	}
}

func TestFromToCSRRoundTrip(t *testing.T) {
	m := gen.ER(100, 4, 7)
	g := FromCSR(m, func(v float64) float64 { return v * 2 })
	back := g.ToCSR(func(v float64) float64 { return v / 2 })
	if !matrix.Equal(m, back, 1e-15) {
		t.Fatal("From/To CSR round trip changed the matrix")
	}
}

func TestSemiringNames(t *testing.T) {
	for _, name := range []string{Arithmetic().Name, Boolean().Name, MinPlus().Name,
		MaxTimes().Name, PlusMax().Name} {
		if name == "" {
			t.Fatal("semiring missing name")
		}
	}
}
