package semiring

import (
	"fmt"

	"pbspgemm/internal/matrix"
)

// EWiseAdd returns the element-wise "sum" of a and b over sr.Plus
// (GraphBLAS eWiseAdd): the output support is the union of the inputs'
// supports, entries present in both are folded with Plus, entries present in
// one are copied through. Combined with a min-plus semiring this is the
// distance-relaxation merge of shortest-path iterations.
func EWiseAdd[T any](sr Semiring[T], a, b *CSRg[T]) (*CSRg[T], error) {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		return nil, fmt.Errorf("semiring: eWiseAdd shapes %dx%d and %dx%d differ: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	out := &CSRg[T]{NumRows: a.NumRows, NumCols: a.NumCols,
		RowPtr: make([]int64, a.NumRows+1)}
	for i := int32(0); i < a.NumRows; i++ {
		p, pEnd := a.RowPtr[i], a.RowPtr[i+1]
		q, qEnd := b.RowPtr[i], b.RowPtr[i+1]
		for p < pEnd || q < qEnd {
			switch {
			case q == qEnd || (p < pEnd && a.ColIdx[p] < b.ColIdx[q]):
				out.ColIdx = append(out.ColIdx, a.ColIdx[p])
				out.Val = append(out.Val, a.Val[p])
				p++
			case p == pEnd || b.ColIdx[q] < a.ColIdx[p]:
				out.ColIdx = append(out.ColIdx, b.ColIdx[q])
				out.Val = append(out.Val, b.Val[q])
				q++
			default:
				out.ColIdx = append(out.ColIdx, a.ColIdx[p])
				out.Val = append(out.Val, sr.Plus(a.Val[p], b.Val[q]))
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.Val))
	}
	return out, nil
}

// EWiseMult returns the element-wise "product" of a and b over sr.Times
// (GraphBLAS eWiseMult, the Hadamard product): the output support is the
// intersection of the inputs' supports. Over the arithmetic semiring this is
// the A² ∘ A mask-and-keep step of triangle counting.
func EWiseMult[T any](sr Semiring[T], a, b *CSRg[T]) (*CSRg[T], error) {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		return nil, fmt.Errorf("semiring: eWiseMult shapes %dx%d and %dx%d differ: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	out := &CSRg[T]{NumRows: a.NumRows, NumCols: a.NumCols,
		RowPtr: make([]int64, a.NumRows+1)}
	for i := int32(0); i < a.NumRows; i++ {
		p, pEnd := a.RowPtr[i], a.RowPtr[i+1]
		q, qEnd := b.RowPtr[i], b.RowPtr[i+1]
		for p < pEnd && q < qEnd {
			switch {
			case a.ColIdx[p] < b.ColIdx[q]:
				p++
			case a.ColIdx[p] > b.ColIdx[q]:
				q++
			default:
				out.ColIdx = append(out.ColIdx, a.ColIdx[p])
				out.Val = append(out.Val, sr.Times(a.Val[p], b.Val[q]))
				p++
				q++
			}
		}
		out.RowPtr[i+1] = int64(len(out.Val))
	}
	return out, nil
}

// Clone returns a deep copy of m: the public engine hands pooled results
// back to callers as clones so the workspace can be reused immediately.
func (m *CSRg[T]) Clone() *CSRg[T] {
	return &CSRg[T]{
		NumRows: m.NumRows, NumCols: m.NumCols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]T(nil), m.Val...),
	}
}
