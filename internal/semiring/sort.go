package semiring

// sortPairsG is the in-place American-flag radix sort over generic payload
// tuples (same structure as internal/radix, instantiated per T).
func sortPairsG[T any](ps []pair[T]) {
	if len(ps) < 2 {
		return
	}
	var or uint64
	for i := range ps {
		or |= ps[i].key
	}
	if or == 0 {
		return
	}
	top := 0
	x := or
	for s := 32; s >= 8; s >>= 1 {
		if x>>(uint(s)) != 0 {
			x >>= uint(s)
			top += s / 8
		}
	}
	sortAtByteG(ps, top)
}

func sortAtByteG[T any](ps []pair[T], byteIdx int) {
	n := len(ps)
	if n < 2 {
		return
	}
	if n <= 32 {
		for i := 1; i < n; i++ {
			p := ps[i]
			j := i - 1
			for j >= 0 && ps[j].key > p.key {
				ps[j+1] = ps[j]
				j--
			}
			ps[j+1] = p
		}
		return
	}
	shift := uint(byteIdx * 8)
	var count [256]int
	for i := range ps {
		count[(ps[i].key>>shift)&0xff]++
	}
	var start, end [256]int
	sum, nonEmpty := 0, 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += count[b]
		end[b] = sum
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		if byteIdx > 0 {
			sortAtByteG(ps, byteIdx-1)
		}
		return
	}
	var cursor [256]int
	copy(cursor[:], start[:])
	for b := 0; b < 256; b++ {
		for cursor[b] < end[b] {
			p := ps[cursor[b]]
			home := int((p.key >> shift) & 0xff)
			if home == b {
				cursor[b]++
				continue
			}
			j := cursor[home]
			ps[cursor[b]], ps[j] = ps[j], p
			cursor[home]++
		}
	}
	if byteIdx == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if count[b] > 1 {
			sortAtByteG(ps[start[b]:end[b]], byteIdx-1)
		}
	}
}
