package semiring

import (
	"fmt"

	"pbspgemm/internal/matrix"
)

// CSRg is a CSR matrix with values of any semiring element type.
type CSRg[T any] struct {
	NumRows, NumCols int32
	RowPtr           []int64
	ColIdx           []int32
	Val              []T
}

// CSCg is the column-compressed counterpart of CSRg.
type CSCg[T any] struct {
	NumRows, NumCols int32
	ColPtr           []int64
	RowIdx           []int32
	Val              []T
}

// NNZ returns the stored entry count.
func (m *CSRg[T]) NNZ() int64 { return int64(len(m.Val)) }

// NNZ returns the stored entry count.
func (m *CSCg[T]) NNZ() int64 { return int64(len(m.Val)) }

// FromCSR lifts a float64 CSR into a generic matrix, mapping each stored
// value with f (e.g. v -> v for arithmetic, v -> true for boolean).
func FromCSR[T any](m *matrix.CSR, f func(float64) T) *CSRg[T] {
	out := &CSRg[T]{
		NumRows: m.NumRows, NumCols: m.NumCols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]T, len(m.Val)),
	}
	for i, v := range m.Val {
		out.Val[i] = f(v)
	}
	return out
}

// ToCSR lowers a generic matrix back to float64 CSR with g.
func (m *CSRg[T]) ToCSR(g func(T) float64) *matrix.CSR {
	out := &matrix.CSR{
		NumRows: m.NumRows, NumCols: m.NumCols,
		RowPtr: append([]int64(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]float64, len(m.Val)),
	}
	for i, v := range m.Val {
		out.Val[i] = g(v)
	}
	return out
}

// ToCSC converts the generic CSR to generic CSC (storage transpose).
func (m *CSRg[T]) ToCSC() *CSCg[T] {
	nnz := m.NNZ()
	out := &CSCg[T]{
		NumRows: m.NumRows, NumCols: m.NumCols,
		ColPtr: make([]int64, m.NumCols+1),
		RowIdx: make([]int32, nnz),
		Val:    make([]T, nnz),
	}
	counts := make([]int64, m.NumCols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for j := int32(0); j < m.NumCols; j++ {
		counts[j+1] += counts[j]
	}
	copy(out.ColPtr, counts)
	cursor := make([]int64, m.NumCols)
	copy(cursor, counts[:m.NumCols])
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := cursor[c]
			out.RowIdx[q] = i
			out.Val[q] = m.Val[p]
			cursor[c] = q + 1
		}
	}
	return out
}

// Validate checks structural invariants (mirrors matrix.CSR.Validate).
func (m *CSRg[T]) Validate() error {
	if int32(len(m.RowPtr)) != m.NumRows+1 {
		return fmt.Errorf("semiring: RowPtr length %d != rows+1 %d", len(m.RowPtr), m.NumRows+1)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.NumRows] != int64(len(m.ColIdx)) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("semiring: inconsistent pointers/arrays")
	}
	for i := int32(0); i < m.NumRows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("semiring: RowPtr not monotone at row %d", i)
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			if c < 0 || c >= m.NumCols {
				return fmt.Errorf("semiring: column %d out of range at row %d", c, i)
			}
			if p > m.RowPtr[i] && m.ColIdx[p-1] >= c {
				return fmt.Errorf("semiring: row %d not sorted/unique", i)
			}
		}
	}
	return nil
}
