package matrix

import "pbspgemm/internal/radix"

// ToCSR converts a COO matrix to canonical CSR (rows sorted, duplicates
// summed). The input is not modified.
func (m *COO) ToCSR() *CSR {
	d := m.Dedup()
	csr := &CSR{
		NumRows: m.NumRows, NumCols: m.NumCols,
		RowPtr: make([]int64, m.NumRows+1),
		ColIdx: make([]int32, len(d.Val)),
		Val:    make([]float64, len(d.Val)),
	}
	for _, r := range d.Row {
		csr.RowPtr[r+1]++
	}
	for i := int32(0); i < m.NumRows; i++ {
		csr.RowPtr[i+1] += csr.RowPtr[i]
	}
	// d is sorted row-major, so a single sweep fills CSR in order.
	copy(csr.ColIdx, d.Col)
	copy(csr.Val, d.Val)
	return csr
}

// ToCSC converts a COO matrix to canonical CSC (columns sorted, duplicates
// summed). The input is not modified.
func (m *COO) ToCSC() *CSC {
	return m.ToCSR().ToCSC()
}

// Dedup returns a copy of m sorted row-major (row, then column) with
// duplicate coordinates summed. It packs (row, col) into a 64-bit key and
// radix-sorts, so deduplication is O(nnz) rather than comparison-sort bound.
func (m *COO) Dedup() *COO {
	n := len(m.Val)
	pairs := make([]radix.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = radix.Pair{
			Key: uint64(uint32(m.Row[i]))<<32 | uint64(uint32(m.Col[i])),
			Val: m.Val[i],
		}
	}
	radix.SortPairsInPlace(pairs)
	out := &COO{NumRows: m.NumRows, NumCols: m.NumCols}
	for i := 0; i < n; i++ {
		k := len(out.Val)
		row := int32(pairs[i].Key >> 32)
		col := int32(pairs[i].Key & 0xffffffff)
		if k > 0 && out.Row[k-1] == row && out.Col[k-1] == col {
			out.Val[k-1] += pairs[i].Val
			continue
		}
		out.Row = append(out.Row, row)
		out.Col = append(out.Col, col)
		out.Val = append(out.Val, pairs[i].Val)
	}
	return out
}

// ToCSC converts CSR to CSC with a counting pass (a transpose of the storage,
// not of the matrix). Cost is O(nnz + rows + cols); this is what the paper's
// harness does to feed A as CSC into the outer-product algorithm.
func (m *CSR) ToCSC() *CSC {
	nnz := m.NNZ()
	out := NewCSC(m.NumRows, m.NumCols, nnz)
	counts := make([]int64, m.NumCols+1)
	for _, c := range m.ColIdx {
		counts[c+1]++
	}
	for j := int32(0); j < m.NumCols; j++ {
		counts[j+1] += counts[j]
	}
	copy(out.ColPtr, counts)
	cursor := make([]int64, m.NumCols)
	copy(cursor, counts[:m.NumCols])
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := cursor[c]
			out.RowIdx[q] = i
			out.Val[q] = m.Val[p]
			cursor[c] = q + 1
		}
	}
	return out
}

// ToCSCInto is ToCSC reusing out's storage, grown only when capacity is
// short — the allocation-free conversion the workspace-pooled engine uses.
// It needs no scratch: ColPtr doubles as the per-column write cursor during
// the placement pass and is rotated back to exclusive-prefix form after.
// Returns out.
func (m *CSR) ToCSCInto(out *CSC) *CSC {
	nnz := m.NNZ()
	out.NumRows, out.NumCols = m.NumRows, m.NumCols
	out.ColPtr = GrowInt64(&out.ColPtr, int(m.NumCols)+1)
	out.RowIdx = GrowInt32(&out.RowIdx, int(nnz))
	out.Val = GrowFloat64(&out.Val, nnz)
	for j := range out.ColPtr {
		out.ColPtr[j] = 0
	}
	for _, c := range m.ColIdx {
		out.ColPtr[c+1]++
	}
	for j := int32(0); j < m.NumCols; j++ {
		out.ColPtr[j+1] += out.ColPtr[j]
	}
	// Place entries using ColPtr[c] as the cursor for column c; row-major
	// traversal keeps rows ascending within each column.
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			q := out.ColPtr[c]
			out.RowIdx[q] = i
			out.Val[q] = m.Val[p]
			out.ColPtr[c] = q + 1
		}
	}
	// ColPtr[c] now holds end(c) = start(c+1); rotate right to restore starts.
	for j := m.NumCols; j >= 1; j-- {
		out.ColPtr[j] = out.ColPtr[j-1]
	}
	out.ColPtr[0] = 0
	return out
}

// ToCSR converts CSC to CSR (mirror of CSR.ToCSC).
func (m *CSC) ToCSR() *CSR {
	nnz := m.NNZ()
	out := NewCSR(m.NumRows, m.NumCols, nnz)
	counts := make([]int64, m.NumRows+1)
	for _, r := range m.RowIdx {
		counts[r+1]++
	}
	for i := int32(0); i < m.NumRows; i++ {
		counts[i+1] += counts[i]
	}
	copy(out.RowPtr, counts)
	cursor := make([]int64, m.NumRows)
	copy(cursor, counts[:m.NumRows])
	for j := int32(0); j < m.NumCols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			q := cursor[r]
			out.ColIdx[q] = j
			out.Val[q] = m.Val[p]
			cursor[r] = q + 1
		}
	}
	return out
}

// ToCOO expands CSR into coordinate format, preserving row-major order.
func (m *CSR) ToCOO() *COO {
	nnz := m.NNZ()
	out := &COO{
		NumRows: m.NumRows, NumCols: m.NumCols,
		Row: make([]int32, nnz), Col: make([]int32, nnz), Val: make([]float64, nnz),
	}
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			out.Row[p] = i
			out.Col[p] = m.ColIdx[p]
			out.Val[p] = m.Val[p]
		}
	}
	return out
}

// Transpose returns the mathematical transpose of m as CSR.
func (m *CSR) Transpose() *CSR {
	t := m.ToCSC()
	return &CSR{
		NumRows: m.NumCols, NumCols: m.NumRows,
		RowPtr: t.ColPtr, ColIdx: t.RowIdx, Val: t.Val,
	}
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	out := NewCSR(m.NumRows, m.NumCols, m.NNZ())
	copy(out.RowPtr, m.RowPtr)
	copy(out.ColIdx, m.ColIdx)
	copy(out.Val, m.Val)
	return out
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int32) int64 { return m.RowPtr[i+1] - m.RowPtr[i] }

// ColNNZ returns the number of stored entries in column j.
func (m *CSC) ColNNZ(j int32) int64 { return m.ColPtr[j+1] - m.ColPtr[j] }
