package matrix

import "testing"

func benchMatrix(b *testing.B, rows, cols int32, nnz int) *CSR {
	b.Helper()
	return randomCOO(1, rows, cols, nnz).ToCSR()
}

func BenchmarkToCSC(b *testing.B) {
	m := benchMatrix(b, 1<<16, 1<<16, 1<<20)
	b.SetBytes(m.NNZ() * BytesPerTuple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ToCSC()
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(b, 1<<16, 1<<16, 1<<20)
	b.SetBytes(m.NNZ() * BytesPerTuple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkCOODedup(b *testing.B) {
	coo := randomCOO(2, 1<<16, 1<<16, 1<<20)
	b.SetBytes(int64(len(coo.Val)) * BytesPerTuple)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coo.Dedup()
	}
}

func BenchmarkFlops(b *testing.B) {
	m := benchMatrix(b, 1<<16, 1<<16, 1<<20)
	mc := m.ToCSC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Flops(mc, m) == 0 {
			b.Fatal("no flops")
		}
	}
}

func BenchmarkProductNNZ(b *testing.B) {
	m := benchMatrix(b, 1<<13, 1<<13, 1<<17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ProductNNZ(m, m) == 0 {
			b.Fatal("empty product")
		}
	}
}
