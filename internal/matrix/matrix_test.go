package matrix

import (
	"math"
	"testing"
	"testing/quick"
)

// randomCOO builds a deterministic pseudo-random COO from a seed without
// importing gen (which would create an import cycle in tests).
func randomCOO(seed uint64, rows, cols int32, nnz int) *COO {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	m := &COO{NumRows: rows, NumCols: cols}
	for e := 0; e < nnz; e++ {
		m.Row = append(m.Row, int32(next()%uint64(rows)))
		m.Col = append(m.Col, int32(next()%uint64(cols)))
		m.Val = append(m.Val, float64(next()>>11)/(1<<53))
	}
	return m
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	coo := &COO{
		NumRows: 3, NumCols: 3,
		Row: []int32{1, 1, 0, 1},
		Col: []int32{2, 2, 0, 0},
		Val: []float64{1.5, 2.5, 1.0, 3.0},
	}
	csr := coo.ToCSR()
	if err := csr.Validate(); err != nil {
		t.Fatal(err)
	}
	if csr.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3 after dedup", csr.NNZ())
	}
	// Entry (1,2) must be 4.0.
	found := false
	for p := csr.RowPtr[1]; p < csr.RowPtr[2]; p++ {
		if csr.ColIdx[p] == 2 {
			found = true
			if csr.Val[p] != 4.0 {
				t.Fatalf("(1,2) = %v, want 4.0", csr.Val[p])
			}
		}
	}
	if !found {
		t.Fatal("entry (1,2) missing")
	}
}

func TestRoundTripCSRCSC(t *testing.T) {
	m := randomCOO(1, 50, 70, 400).ToCSR()
	back := m.ToCSC().ToCSR()
	if !Equal(m, back, 0) {
		t.Fatal("CSR -> CSC -> CSR round trip changed the matrix")
	}
	if err := m.ToCSC().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripCOO(t *testing.T) {
	m := randomCOO(2, 40, 40, 300).ToCSR()
	back := m.ToCOO().ToCSR()
	if !Equal(m, back, 0) {
		t.Fatal("CSR -> COO -> CSR round trip changed the matrix")
	}
}

func TestQuickRoundTrips(t *testing.T) {
	f := func(seed uint64, rSel, cSel uint8, nnzSel uint16) bool {
		rows := int32(rSel%80) + 1
		cols := int32(cSel%80) + 1
		nnz := int(nnzSel % 500)
		m := randomCOO(seed, rows, cols, nnz).ToCSR()
		if m.Validate() != nil {
			return false
		}
		viaCSC := m.ToCSC().ToCSR()
		viaCOO := m.ToCOO().ToCSR()
		return Equal(m, viaCSC, 0) && Equal(m, viaCOO, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomCOO(3, 30, 60, 250).ToCSR()
	tt := m.Transpose().Transpose()
	if !Equal(m, tt, 0) {
		t.Fatal("double transpose changed the matrix")
	}
	tr := m.Transpose()
	if tr.NumRows != m.NumCols || tr.NumCols != m.NumRows {
		t.Fatal("transpose has wrong shape")
	}
	// Spot-check: every (i,j) of m appears as (j,i) of tr.
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := m.ColIdx[p]
			ok := false
			for q := tr.RowPtr[j]; q < tr.RowPtr[j+1]; q++ {
				if tr.ColIdx[q] == i && tr.Val[q] == m.Val[p] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("entry (%d,%d) missing from transpose", i, j)
			}
		}
	}
}

func TestFlopsAgreesAcrossLayouts(t *testing.T) {
	a := randomCOO(4, 64, 64, 400).ToCSR()
	b := randomCOO(5, 64, 64, 400).ToCSR()
	if got, want := Flops(a.ToCSC(), b), FlopsCSR(a, b); got != want {
		t.Fatalf("Flops CSC/CSR disagree: %d vs %d", got, want)
	}
}

func TestFlopsBruteForce(t *testing.T) {
	f := func(seed uint64, nSel uint8, nnzSel uint16) bool {
		n := int32(nSel%40) + 2
		nnz := int(nnzSel % 200)
		a := randomCOO(seed, n, n, nnz).ToCSR()
		b := randomCOO(seed+1, n, n, nnz).ToCSR()
		// Brute force: for every A entry (i,k), count B row k entries.
		var want int64
		for i := int32(0); i < n; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				want += b.RowNNZ(a.ColIdx[p])
			}
		}
		return FlopsCSR(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestProductNNZAndCF(t *testing.T) {
	a := randomCOO(6, 80, 80, 500).ToCSR()
	c := ReferenceMultiply(a, a)
	if got := ProductNNZ(a, a); got != c.NNZ() {
		t.Fatalf("ProductNNZ = %d, want %d", got, c.NNZ())
	}
	cf := CompressionFactor(a.ToCSC().ToCSR().ToCSC(), a)
	want := float64(FlopsCSR(a, a)) / float64(c.NNZ())
	if math.Abs(cf-want) > 1e-12 {
		t.Fatalf("cf = %v, want %v", cf, want)
	}
	if cf < 1 {
		t.Fatalf("cf = %v < 1 is impossible", cf)
	}
}

func TestReferenceMultiplyKnown(t *testing.T) {
	// [[1,2],[0,3]] * [[4,0],[5,6]] = [[14,12],[15,18]]
	a := (&COO{NumRows: 2, NumCols: 2,
		Row: []int32{0, 0, 1}, Col: []int32{0, 1, 1}, Val: []float64{1, 2, 3}}).ToCSR()
	b := (&COO{NumRows: 2, NumCols: 2,
		Row: []int32{0, 1, 1}, Col: []int32{0, 0, 1}, Val: []float64{4, 5, 6}}).ToCSR()
	c := ReferenceMultiply(a, b)
	want := map[[2]int32]float64{{0, 0}: 14, {0, 1}: 12, {1, 0}: 15, {1, 1}: 18}
	if c.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", c.NNZ())
	}
	for i := int32(0); i < 2; i++ {
		for p := c.RowPtr[i]; p < c.RowPtr[i+1]; p++ {
			if v := want[[2]int32{i, c.ColIdx[p]}]; v != c.Val[p] {
				t.Fatalf("(%d,%d) = %v, want %v", i, c.ColIdx[p], c.Val[p], v)
			}
		}
	}
}

func TestElementWiseMultiplySum(t *testing.T) {
	a := (&COO{NumRows: 2, NumCols: 2,
		Row: []int32{0, 1}, Col: []int32{0, 1}, Val: []float64{2, 3}}).ToCSR()
	b := (&COO{NumRows: 2, NumCols: 2,
		Row: []int32{0, 1, 1}, Col: []int32{0, 0, 1}, Val: []float64{5, 7, 11}}).ToCSR()
	if got := ElementWiseMultiplySum(a, b); got != 2*5+3*11 {
		t.Fatalf("got %v, want 43", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := randomCOO(7, 10, 10, 30).ToCSR()
	cases := map[string]func(*CSR){
		"nonmonotone_rowptr": func(m *CSR) { m.RowPtr[1] = m.RowPtr[len(m.RowPtr)-1] + 5 },
		"col_out_of_range":   func(m *CSR) { m.ColIdx[0] = m.NumCols },
		"negative_col":       func(m *CSR) { m.ColIdx[0] = -1 },
		"bad_rowptr0":        func(m *CSR) { m.RowPtr[0] = 1 },
	}
	for name, corrupt := range cases {
		c := m.Clone()
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupt matrix", name)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
}

func TestCSCValidateCatchesCorruption(t *testing.T) {
	m := randomCOO(8, 10, 10, 30).ToCSR().ToCSC()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid CSC rejected: %v", err)
	}
	m.RowIdx[0] = -2
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted corrupt CSC")
	}
}

func TestPruneAndApply(t *testing.T) {
	m := (&COO{NumRows: 2, NumCols: 3,
		Row: []int32{0, 0, 1}, Col: []int32{0, 2, 1}, Val: []float64{0.1, 5, -0.2}}).ToCSR()
	m.Apply(func(v float64) float64 { return v * 2 })
	p := m.Prune(1.0)
	if p.NNZ() != 1 || p.Val[0] != 10 {
		t.Fatalf("prune result wrong: nnz=%d", p.NNZ())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestColumnScaling(t *testing.T) {
	m := (&COO{NumRows: 2, NumCols: 2,
		Row: []int32{0, 1, 1}, Col: []int32{0, 0, 1}, Val: []float64{1, 2, 3}}).ToCSR()
	sums := m.ColumnSums()
	if sums[0] != 3 || sums[1] != 3 {
		t.Fatalf("column sums = %v", sums)
	}
	m.ScaleColumns([]float64{1.0 / 3, 1.0 / 3})
	sums = m.ColumnSums()
	if math.Abs(sums[0]-1) > 1e-12 || math.Abs(sums[1]-1) > 1e-12 {
		t.Fatalf("normalized column sums = %v", sums)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := randomCOO(9, 20, 20, 100).ToCSR()
	b := a.Clone()
	if !Equal(a, b, 0) {
		t.Fatal("identical matrices not equal")
	}
	b.Val[0] += 1e-12 * b.Val[0]
	if !Equal(a, b, 1e-9) {
		t.Fatal("tiny perturbation rejected at 1e-9 tolerance")
	}
	b.Val[0] = a.Val[0] + 1
	if Equal(a, b, 1e-9) {
		t.Fatal("large perturbation accepted")
	}
	c := randomCOO(10, 20, 20, 99).ToCSR()
	if Equal(a, c, 1) {
		t.Fatal("structurally different matrices compared equal")
	}
}

func TestAvgDegree(t *testing.T) {
	m := randomCOO(11, 10, 10, 40).ToCSR()
	want := float64(m.NNZ()) / 10
	if m.AvgDegree() != want {
		t.Fatalf("AvgDegree = %v, want %v", m.AvgDegree(), want)
	}
}
