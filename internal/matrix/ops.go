package matrix

import "math"

// Equal reports whether a and b have identical structure and values equal
// within tol (relative to the larger magnitude). Both must be canonical CSR.
// SpGEMM algorithms sum floating-point products in different orders, so exact
// equality is only guaranteed for integer-valued inputs; tests use a small
// tolerance for random values.
func Equal(a, b *CSR, tol float64) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := int32(0); i <= a.NumRows; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for p := range a.ColIdx {
		if a.ColIdx[p] != b.ColIdx[p] {
			return false
		}
		av, bv := a.Val[p], b.Val[p]
		if av == bv {
			continue
		}
		scale := math.Max(math.Abs(av), math.Abs(bv))
		if math.Abs(av-bv) > tol*math.Max(scale, 1) {
			return false
		}
	}
	return true
}

// Flops returns the number of multiplications flop(A,B) required to compute
// A*B: sum over k of nnz(A(:,k)) * nnz(B(k,:)). This is the quantity the
// paper's symbolic phase computes (Algorithm 3) and the numerator of every
// arithmetic-intensity bound.
func Flops(a *CSC, b *CSR) int64 {
	if a.NumCols != b.NumRows {
		return 0
	}
	var flops int64
	for k := int32(0); k < a.NumCols; k++ {
		flops += a.ColNNZ(k) * b.RowNNZ(k)
	}
	return flops
}

// FlopsCSR is Flops with A in CSR form: sum over rows i and entries (i,k) of
// nnz(B(k,:)). Used by the column/row baselines whose inputs are both CSR.
func FlopsCSR(a, b *CSR) int64 {
	if a.NumCols != b.NumRows {
		return 0
	}
	rowNNZ := make([]int64, b.NumRows)
	for i := int32(0); i < b.NumRows; i++ {
		rowNNZ[i] = b.RowNNZ(i)
	}
	var flops int64
	for _, k := range a.ColIdx {
		flops += rowNNZ[k]
	}
	return flops
}

// CompressionFactor returns cf = flop / nnz(C) for the product of a and b.
// It computes nnz(C) exactly with a merge over a dense marker array, so it is
// O(flop) — use for analysis and tests, not in hot paths.
func CompressionFactor(a *CSC, b *CSR) float64 {
	flops := Flops(a, b)
	nnzC := ProductNNZ(a.ToCSR(), b)
	if nnzC == 0 {
		return 0
	}
	return float64(flops) / float64(nnzC)
}

// ProductNNZ returns nnz(A*B) exactly using a Gustavson symbolic pass with a
// versioned dense marker (no allocation per row).
func ProductNNZ(a, b *CSR) int64 {
	marker := make([]int32, b.NumCols)
	for i := range marker {
		marker[i] = -1
	}
	var nnz int64
	for i := int32(0); i < a.NumRows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				j := b.ColIdx[q]
				if marker[j] != i {
					marker[j] = i
					nnz++
				}
			}
		}
	}
	return nnz
}

// EstimateProductNNZ returns nnz(A*B) for planning purposes: exact (via the
// Gustavson symbolic pass) when flop ≤ exactLimit, otherwise estimated from
// a deterministic strided sample of A's rows scaled by the flop ratio.
// sampled reports which path ran. flop must be FlopsCSR(a, b). scratch, if
// non-nil, pools the O(cols(B)) marker across calls (grow-only); pass nil
// for a transient one.
func EstimateProductNNZ(a, b *CSR, flop, exactLimit int64, scratch *[]int32) (nnzC int64, sampled bool) {
	if flop == 0 {
		return 0, false
	}
	var transient []int32
	if scratch == nil {
		scratch = &transient
	}
	marker := GrowInt32(scratch, int(b.NumCols))
	for i := range marker {
		marker[i] = -1
	}
	rows := int(a.NumRows)
	stride := 1
	if flop > exactLimit {
		// Sample ~512 evenly-strided rows instead of the exact full pass.
		const maxSample = 512
		if stride = (rows + maxSample - 1) / maxSample; stride < 1 {
			stride = 1
		}
	}
	var sampleFlops, sampleNNZ int64
	for i := 0; i < rows; i += stride {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				sampleFlops++
				if j := b.ColIdx[q]; marker[j] != int32(i) {
					marker[j] = int32(i)
					sampleNNZ++
				}
			}
		}
	}
	if stride == 1 {
		return sampleNNZ, false
	}
	if sampleFlops == 0 {
		// The sample hit only empty rows; assume no compression (cf = 1),
		// the conservative choice that favors the PB default.
		return flop, true
	}
	est := int64(float64(sampleNNZ) * float64(flop) / float64(sampleFlops))
	if est < 1 {
		est = 1
	}
	if est > flop {
		est = flop
	}
	return est, true
}

// ReferenceMultiply computes C = A*B with a simple map-based accumulator.
// It is the oracle for correctness tests: slow, obviously correct, summing
// products in sorted (row, col, k) order for reproducible floating point.
func ReferenceMultiply(a, b *CSR) *CSR {
	if a.NumCols != b.NumRows {
		panic(ErrShape)
	}
	out := &COO{NumRows: a.NumRows, NumCols: b.NumCols}
	acc := make(map[int32]float64)
	for i := int32(0); i < a.NumRows; i++ {
		clear(acc)
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				acc[b.ColIdx[q]] += av * b.Val[q]
			}
		}
		for j, v := range acc {
			out.Row = append(out.Row, i)
			out.Col = append(out.Col, j)
			out.Val = append(out.Val, v)
		}
	}
	return out.ToCSR()
}

// ElementWiseMultiplySum returns sum over all (i,j) of a(i,j)*b(i,j), the
// Hadamard-product mass. Triangle counting uses sum(A^2 .* A)/6 on a simple
// undirected graph; both operands must be canonical CSR.
func ElementWiseMultiplySum(a, b *CSR) float64 {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		panic(ErrShape)
	}
	var total float64
	for i := int32(0); i < a.NumRows; i++ {
		p, pEnd := a.RowPtr[i], a.RowPtr[i+1]
		q, qEnd := b.RowPtr[i], b.RowPtr[i+1]
		for p < pEnd && q < qEnd {
			switch {
			case a.ColIdx[p] < b.ColIdx[q]:
				p++
			case a.ColIdx[p] > b.ColIdx[q]:
				q++
			default:
				total += a.Val[p] * b.Val[q]
				p++
				q++
			}
		}
	}
	return total
}

// ScaleColumns multiplies each column j of m in place by s[j]. Used by the
// Markov-clustering example's inflation/normalization steps.
func (m *CSR) ScaleColumns(s []float64) {
	for p, c := range m.ColIdx {
		m.Val[p] *= s[c]
	}
}

// ColumnSums returns the per-column sums of m.
func (m *CSR) ColumnSums() []float64 {
	sums := make([]float64, m.NumCols)
	for p, c := range m.ColIdx {
		sums[c] += m.Val[p]
	}
	return sums
}

// Apply replaces every stored value v with f(v) in place.
func (m *CSR) Apply(f func(float64) float64) {
	for i, v := range m.Val {
		m.Val[i] = f(v)
	}
}

// Prune returns a copy of m with entries of magnitude < threshold removed.
func (m *CSR) Prune(threshold float64) *CSR {
	out := &CSR{NumRows: m.NumRows, NumCols: m.NumCols, RowPtr: make([]int64, m.NumRows+1)}
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if math.Abs(m.Val[p]) >= threshold {
				out.ColIdx = append(out.ColIdx, m.ColIdx[p])
				out.Val = append(out.Val, m.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(out.Val))
	}
	return out
}
