package matrix

import "sort"

// Block extracts the index window rows [r0,r1) × cols [c0,c1) of m as a
// standalone CSR with block-local indices (entry (r,c) of m becomes
// (r-r0, c-c0)). Rows of a canonical CSR are sorted, so each row's column
// span is found by binary search; the output is canonical too. The 2D
// block-sharded coordinator cuts A(i,k) and B(k,j) blocks with it.
//
// When the window covers all of m, m itself is returned (no copy): callers
// treat blocks as read-only, exactly like registry matrices.
func Block(m *CSR, r0, r1, c0, c1 int32) *CSR {
	if r0 == 0 && r1 == m.NumRows && c0 == 0 && c1 == m.NumCols {
		return m
	}
	rows, cols := r1-r0, c1-c0
	out := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int64, rows+1)}
	// First pass: per-row entry counts, so the index/value arrays are
	// allocated exactly once.
	for r := r0; r < r1; r++ {
		s, e := rowSpan(m, r, c0, c1)
		out.RowPtr[r-r0+1] = out.RowPtr[r-r0] + (e - s)
	}
	nnz := out.RowPtr[rows]
	out.ColIdx = make([]int32, nnz)
	out.Val = make([]float64, nnz)
	for r := r0; r < r1; r++ {
		s, e := rowSpan(m, r, c0, c1)
		p := out.RowPtr[r-r0]
		for q := s; q < e; q++ {
			out.ColIdx[p] = m.ColIdx[q] - c0
			out.Val[p] = m.Val[q]
			p++
		}
	}
	return out
}

// rowSpan returns the half-open position range of row r's entries with
// column indices in [c0,c1).
func rowSpan(m *CSR, r, c0, c1 int32) (int64, int64) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	row := m.ColIdx[lo:hi]
	s := int64(sort.Search(len(row), func(i int) bool { return row[i] >= c0 }))
	e := int64(sort.Search(len(row), func(i int) bool { return row[i] >= c1 }))
	return lo + s, lo + e
}

// SplitPoints partitions [0,n) into parts near-equal contiguous ranges and
// returns the parts+1 boundary offsets. parts is clamped to [1, max(1,n)],
// so no range is ever empty while n > 0.
func SplitPoints(n int32, parts int) []int32 {
	if parts < 1 {
		parts = 1
	}
	if n > 0 && int32(parts) > n {
		parts = int(n)
	}
	off := make([]int32, parts+1)
	for t := 0; t <= parts; t++ {
		off[t] = int32(int64(n) * int64(t) / int64(parts))
	}
	return off
}
