package matrix

// Grow-only buffer helpers shared by the pooled execution engines
// (internal/core's Workspace, internal/semiring's GenericSpace) and this
// package's Into-style converters: return (*buf)[:n], reallocating only when
// capacity is short. Contents are unspecified unless the Zero variant is
// used.

// GrowInt64 returns (*buf)[:n] with unspecified contents.
func GrowInt64(buf *[]int64, n int) []int64 {
	if cap(*buf) < n {
		*buf = make([]int64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// GrowInt64Zero is GrowInt64 with the returned slice zeroed.
func GrowInt64Zero(buf *[]int64, n int) []int64 {
	s := GrowInt64(buf, n)
	clear(s)
	return s
}

// GrowInt32 returns (*buf)[:n] with unspecified contents.
func GrowInt32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// GrowInt returns (*buf)[:n] with unspecified contents.
func GrowInt(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// GrowFloat64 returns (*buf)[:n] with unspecified contents.
func GrowFloat64(buf *[]float64, n int64) []float64 {
	if int64(cap(*buf)) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
