// Package matrix implements the sparse matrix storage formats used by the
// PB-SpGEMM paper: Compressed Sparse Row (CSR), Compressed Sparse Column
// (CSC), and Coordinate (COO). Indices are 4-byte integers and values are
// 8-byte floats, so one stored tuple costs b = 16 bytes — the constant the
// paper's arithmetic-intensity model (Section II-C) is built on.
package matrix

import (
	"errors"
	"fmt"
)

// BytesPerTuple is b in the paper's AI model: 4 bytes rowid + 4 bytes colid +
// 8 bytes value for a COO tuple.
const BytesPerTuple = 16

// ErrShape is returned when matrix dimensions are inconsistent with an
// operation (e.g. inner dimensions of a product disagree).
var ErrShape = errors.New("matrix: incompatible shapes")

// COO is a coordinate-format sparse matrix: parallel arrays of row indices,
// column indices and values. Entries may appear in any order and duplicates
// are allowed until Dedup is called. COO is the format of the expanded matrix
// C-hat in the paper.
type COO struct {
	NumRows, NumCols int32
	Row, Col         []int32
	Val              []float64
}

// CSR is a compressed sparse row matrix. RowPtr has NumRows+1 entries;
// row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] and Val likewise. Within a
// row, column indices are sorted ascending and unique for a canonical CSR.
type CSR struct {
	NumRows, NumCols int32
	RowPtr           []int64
	ColIdx           []int32
	Val              []float64
}

// CSC is a compressed sparse column matrix, the transpose layout of CSR.
type CSC struct {
	NumRows, NumCols int32
	ColPtr           []int64
	RowIdx           []int32
	Val              []float64
}

// NNZ returns the number of stored entries.
func (m *COO) NNZ() int64 { return int64(len(m.Val)) }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int64 { return int64(len(m.Val)) }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int64 { return int64(len(m.Val)) }

// AvgDegree returns d(A) = nnz/n with n = max(rows, cols), the paper's
// average nonzeros per row or column.
func (m *CSR) AvgDegree() float64 {
	n := m.NumRows
	if m.NumCols > n {
		n = m.NumCols
	}
	if n == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(n)
}

// NewCSR allocates an empty CSR with the given shape and capacity nnz.
func NewCSR(rows, cols int32, nnz int64) *CSR {
	return &CSR{
		NumRows: rows, NumCols: cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
}

// NewCSC allocates an empty CSC with the given shape and capacity nnz.
func NewCSC(rows, cols int32, nnz int64) *CSC {
	return &CSC{
		NumRows: rows, NumCols: cols,
		ColPtr: make([]int64, cols+1),
		RowIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
}

// Validate checks structural invariants: monotone pointers, in-range indices,
// and (for canonical matrices) sorted unique indices within each row.
func (m *CSR) Validate() error {
	if int32(len(m.RowPtr)) != m.NumRows+1 {
		return fmt.Errorf("matrix: RowPtr length %d != rows+1 %d", len(m.RowPtr), m.NumRows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("matrix: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.NumRows] != int64(len(m.ColIdx)) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("matrix: nnz mismatch: RowPtr end %d, ColIdx %d, Val %d",
			m.RowPtr[m.NumRows], len(m.ColIdx), len(m.Val))
	}
	for i := int32(0); i < m.NumRows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("matrix: RowPtr not monotone at row %d", i)
		}
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			c := m.ColIdx[p]
			if c < 0 || c >= m.NumCols {
				return fmt.Errorf("matrix: column %d out of range [0,%d) at row %d", c, m.NumCols, i)
			}
			if p > m.RowPtr[i] && m.ColIdx[p-1] >= c {
				return fmt.Errorf("matrix: row %d not sorted/unique at position %d", i, p)
			}
		}
	}
	return nil
}

// Validate checks the CSC structural invariants (mirror of CSR.Validate).
func (m *CSC) Validate() error {
	if int32(len(m.ColPtr)) != m.NumCols+1 {
		return fmt.Errorf("matrix: ColPtr length %d != cols+1 %d", len(m.ColPtr), m.NumCols+1)
	}
	if m.ColPtr[0] != 0 {
		return fmt.Errorf("matrix: ColPtr[0] = %d, want 0", m.ColPtr[0])
	}
	if m.ColPtr[m.NumCols] != int64(len(m.RowIdx)) || len(m.RowIdx) != len(m.Val) {
		return fmt.Errorf("matrix: nnz mismatch: ColPtr end %d, RowIdx %d, Val %d",
			m.ColPtr[m.NumCols], len(m.RowIdx), len(m.Val))
	}
	for j := int32(0); j < m.NumCols; j++ {
		if m.ColPtr[j] > m.ColPtr[j+1] {
			return fmt.Errorf("matrix: ColPtr not monotone at col %d", j)
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			r := m.RowIdx[p]
			if r < 0 || r >= m.NumRows {
				return fmt.Errorf("matrix: row %d out of range [0,%d) at col %d", r, m.NumRows, j)
			}
			if p > m.ColPtr[j] && m.RowIdx[p-1] >= r {
				return fmt.Errorf("matrix: col %d not sorted/unique at position %d", j, p)
			}
		}
	}
	return nil
}

// Validate checks that all COO coordinates are in range.
func (m *COO) Validate() error {
	if len(m.Row) != len(m.Col) || len(m.Col) != len(m.Val) {
		return fmt.Errorf("matrix: COO array lengths differ: %d/%d/%d", len(m.Row), len(m.Col), len(m.Val))
	}
	for i := range m.Row {
		if m.Row[i] < 0 || m.Row[i] >= m.NumRows || m.Col[i] < 0 || m.Col[i] >= m.NumCols {
			return fmt.Errorf("matrix: entry %d (%d,%d) out of range %dx%d", i, m.Row[i], m.Col[i], m.NumRows, m.NumCols)
		}
	}
	return nil
}
