package matrix

import "testing"

// testCSR builds a small canonical CSR from a dense row-major table.
func testCSR(t *testing.T, rows, cols int32, dense [][]float64) *CSR {
	t.Helper()
	m := &CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int64, rows+1)}
	for i := int32(0); i < rows; i++ {
		for j := int32(0); j < cols; j++ {
			if dense[i][j] != 0 {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, dense[i][j])
			}
		}
		m.RowPtr[i+1] = int64(len(m.ColIdx))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("test matrix invalid: %v", err)
	}
	return m
}

func TestBlockExtraction(t *testing.T) {
	dense := [][]float64{
		{1, 0, 2, 0},
		{0, 3, 0, 4},
		{5, 0, 0, 6},
		{0, 7, 8, 0},
	}
	m := testCSR(t, 4, 4, dense)
	for r0 := int32(0); r0 <= 4; r0++ {
		for r1 := r0; r1 <= 4; r1++ {
			for c0 := int32(0); c0 <= 4; c0++ {
				for c1 := c0; c1 <= 4; c1++ {
					blk := Block(m, r0, r1, c0, c1)
					if blk.NumRows != r1-r0 || blk.NumCols != c1-c0 {
						t.Fatalf("block [%d,%d)x[%d,%d): shape %dx%d", r0, r1, c0, c1, blk.NumRows, blk.NumCols)
					}
					if err := blk.Validate(); err != nil {
						t.Fatalf("block [%d,%d)x[%d,%d) invalid: %v", r0, r1, c0, c1, err)
					}
					for i := int32(0); i < blk.NumRows; i++ {
						got := map[int32]float64{}
						for p := blk.RowPtr[i]; p < blk.RowPtr[i+1]; p++ {
							got[blk.ColIdx[p]] = blk.Val[p]
						}
						for j := int32(0); j < blk.NumCols; j++ {
							want := dense[r0+i][c0+j]
							if want == 0 {
								if _, ok := got[j]; ok {
									t.Fatalf("block [%d,%d)x[%d,%d) row %d has spurious col %d", r0, r1, c0, c1, i, j)
								}
							} else if got[j] != want {
								t.Fatalf("block [%d,%d)x[%d,%d) entry (%d,%d) = %v, want %v", r0, r1, c0, c1, i, j, got[j], want)
							}
						}
					}
				}
			}
		}
	}
}

func TestBlockFullWindowAliases(t *testing.T) {
	m := testCSR(t, 2, 2, [][]float64{{1, 0}, {0, 2}})
	if Block(m, 0, 2, 0, 2) != m {
		t.Fatal("full-window block should return the matrix itself")
	}
}

func TestSplitPoints(t *testing.T) {
	for _, tc := range []struct {
		n     int32
		parts int
		want  []int32
	}{
		{10, 1, []int32{0, 10}},
		{10, 2, []int32{0, 5, 10}},
		{10, 3, []int32{0, 3, 6, 10}},
		{3, 8, []int32{0, 1, 2, 3}}, // parts clamped to n
		{7, 0, []int32{0, 7}},       // parts clamped to 1
	} {
		got := SplitPoints(tc.n, tc.parts)
		if len(got) != len(tc.want) {
			t.Fatalf("SplitPoints(%d,%d) = %v, want %v", tc.n, tc.parts, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("SplitPoints(%d,%d) = %v, want %v", tc.n, tc.parts, got, tc.want)
			}
		}
		// Every range non-empty when n > 0.
		for i := 1; i < len(got); i++ {
			if tc.n > 0 && got[i] <= got[i-1] {
				t.Fatalf("SplitPoints(%d,%d) empty range at %d: %v", tc.n, tc.parts, i, got)
			}
		}
	}
}
