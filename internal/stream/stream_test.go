package stream

import "testing"

func TestRunSmall(t *testing.T) {
	res := Run(Options{N: 1 << 16, Reps: 2, Threads: 2})
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	order := []Kernel{Copy, Scale, Add, Triad}
	for i, r := range res {
		if r.Kernel != order[i] {
			t.Fatalf("result %d is %v, want %v", i, r.Kernel, order[i])
		}
		if r.BestGBs <= 0 || r.AvgGBs <= 0 {
			t.Fatalf("%v: non-positive bandwidth", r.Kernel)
		}
		if r.BestGBs < r.AvgGBs {
			t.Fatalf("%v: best %v < avg %v", r.Kernel, r.BestGBs, r.AvgGBs)
		}
	}
}

func TestBytesMoved(t *testing.T) {
	n := 1000
	if Copy.bytesMoved(n) != 2*8*1000 {
		t.Fatal("Copy bytes wrong")
	}
	if Scale.bytesMoved(n) != 2*8*1000 {
		t.Fatal("Scale bytes wrong")
	}
	if Add.bytesMoved(n) != 3*8*1000 {
		t.Fatal("Add bytes wrong")
	}
	if Triad.bytesMoved(n) != 3*8*1000 {
		t.Fatal("Triad bytes wrong")
	}
}

func TestKernelString(t *testing.T) {
	names := map[Kernel]string{Copy: "Copy", Scale: "Scale", Add: "Add", Triad: "Triad", Kernel(99): "Unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestBeta(t *testing.T) {
	res := []Result{{Kernel: Copy, BestGBs: 10}, {Kernel: Triad, BestGBs: 12}}
	if Beta(res) != 12 {
		t.Fatal("Beta should report Triad")
	}
	if Beta(res[:1]) != 10 {
		t.Fatal("Beta without Triad should fall back to last result")
	}
	if Beta(nil) != 0 {
		t.Fatal("Beta of empty results should be 0")
	}
}

func TestKernelsComputeCorrectValues(t *testing.T) {
	// After Run: a=1,b=2,c=0 initially; Copy: c=a=1; Scale: b=3*c=3;
	// Add: c=a+b=4; Triad: a=b+3*c=15. Verify with one tiny sequential run.
	n := 128
	res := Run(Options{N: n, Reps: 1, Threads: 1})
	_ = res
	// Re-run the arithmetic manually to validate the kernel definitions.
	a, b, c := 1.0, 2.0, 0.0
	c = a
	b = 3 * c
	c = a + b
	a = b + 3*c
	if a != 15 || b != 3 || c != 4 {
		t.Fatalf("kernel chain produced a=%v b=%v c=%v", a, b, c)
	}
}
