// Package stream implements the STREAM sustainable-memory-bandwidth
// benchmark (McCalpin) in Go: the Copy, Scale, Add and Triad kernels over
// large float64 arrays, parallelized across goroutines. The paper uses
// STREAM to establish beta, the bandwidth term of its Roofline model
// (Table V), and expects every PB-SpGEMM phase to sustain bandwidth close to
// these numbers.
package stream

import (
	"time"

	"pbspgemm/internal/par"
)

// Kernel identifies one STREAM kernel.
type Kernel int

// The four STREAM kernels in canonical order.
const (
	Copy  Kernel = iota // c[i] = a[i];          2 arrays moved
	Scale               // b[i] = s*c[i];        2 arrays moved
	Add                 // c[i] = a[i]+b[i];     3 arrays moved
	Triad               // a[i] = b[i]+s*c[i];   3 arrays moved
)

// String returns the STREAM kernel name.
func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	case Triad:
		return "Triad"
	}
	return "Unknown"
}

// bytesMoved returns the bytes of traffic one iteration of kernel k causes
// over n float64 elements, following the official STREAM accounting (write
// allocate ignored, as in the reference implementation).
func (k Kernel) bytesMoved(n int) int64 {
	arrays := int64(2)
	if k == Add || k == Triad {
		arrays = 3
	}
	return arrays * int64(n) * 8
}

// Result holds the measured bandwidth of one kernel.
type Result struct {
	Kernel   Kernel
	BestGBs  float64 // best-of-repetitions bandwidth in GB/s (1e9 bytes)
	AvgGBs   float64
	BytesPer int64 // bytes moved per repetition
}

// Options configures a STREAM run.
type Options struct {
	N       int // elements per array; default 1<<25 (256 MiB per array set of 3)
	Reps    int // timed repetitions; default 5 (best is reported, as STREAM does)
	Threads int // worker goroutines; default GOMAXPROCS
	// Kernels restricts the run to a subset (in the given order); nil runs
	// all four in canonical order. Reduced runs serve quick calibrations.
	Kernels []Kernel
}

func (o *Options) defaults() {
	if o.N <= 0 {
		o.N = 1 << 25
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.Kernels == nil {
		o.Kernels = []Kernel{Copy, Scale, Add, Triad}
	}
}

// Run executes all four kernels and returns their results in kernel order.
// The arrays are touched once before timing (first-touch/page-fault warmup,
// as the reference STREAM does).
func Run(opt Options) []Result {
	opt.defaults()
	a := make([]float64, opt.N)
	b := make([]float64, opt.N)
	c := make([]float64, opt.N)
	par.ForRanges(opt.N, opt.Threads, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = 1.0
			b[i] = 2.0
			c[i] = 0.0
		}
	})

	results := make([]Result, 0, len(opt.Kernels))
	const scalar = 3.0
	for _, k := range opt.Kernels {
		var best, sum float64
		for rep := 0; rep < opt.Reps; rep++ {
			start := time.Now()
			switch k {
			case Copy:
				par.ForRanges(opt.N, opt.Threads, func(_, lo, hi int) {
					copy(c[lo:hi], a[lo:hi])
				})
			case Scale:
				par.ForRanges(opt.N, opt.Threads, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						b[i] = scalar * c[i]
					}
				})
			case Add:
				par.ForRanges(opt.N, opt.Threads, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						c[i] = a[i] + b[i]
					}
				})
			case Triad:
				par.ForRanges(opt.N, opt.Threads, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						a[i] = b[i] + scalar*c[i]
					}
				})
			}
			elapsed := time.Since(start).Seconds()
			gbs := float64(k.bytesMoved(opt.N)) / elapsed / 1e9
			if gbs > best {
				best = gbs
			}
			sum += gbs
		}
		results = append(results, Result{
			Kernel: k, BestGBs: best, AvgGBs: sum / float64(opt.Reps),
			BytesPer: k.bytesMoved(opt.N),
		})
	}
	return results
}

// QuickTriad measures only the Triad kernel — the conventional headline
// STREAM number and the beta term of the Roofline model — and returns the
// best-of-reps bandwidth in GB/s. It is the reduced benchmark behind
// roofline's one-shot planner calibration: a full default Run times all
// four kernels over 256 MiB arrays, while QuickTriad over ~16 MiB arrays
// finishes in tens of milliseconds. n <= 0 defaults to 1<<21 elements,
// reps <= 0 to 3.
func QuickTriad(n, threads, reps int) float64 {
	if n <= 0 {
		n = 1 << 21
	}
	if reps <= 0 {
		reps = 3
	}
	return Beta(Run(Options{N: n, Reps: reps, Threads: threads, Kernels: []Kernel{Triad}}))
}

// Beta returns the bandwidth the Roofline model should use: the paper uses
// the STREAM numbers as beta and observes PB phases near Copy/Triad. We
// report the best Triad figure, the conventional headline STREAM number.
func Beta(results []Result) float64 {
	for _, r := range results {
		if r.Kernel == Triad {
			return r.BestGBs
		}
	}
	if len(results) > 0 {
		return results[len(results)-1].BestGBs
	}
	return 0
}
