package core

import (
	"errors"
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// csrSameStructure compares sparsity structure only: dimensions, RowPtr, and
// ColIdx. This is the equality the pattern (4 B) layout is held to — its
// result carries no value plane (Val == nil).
func csrSameStructure(a, b *matrix.CSR) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols {
		return false
	}
	if len(a.RowPtr) != len(b.RowPtr) || len(a.ColIdx) != len(b.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	return true
}

// narrowPlanes extracts the float64 value planes of an (A, B) pair as []V for
// driving MultiplyNarrow. Generators emit values in [0, 1); tests that need
// exact cross-width equality pass integer-valued inputs instead.
func narrowPlanes[V Value32](a *matrix.CSC, b *matrix.CSR) (av, bv []V) {
	av = make([]V, len(a.Val))
	for i, v := range a.Val {
		av[i] = V(v)
	}
	bv = make([]V, len(b.Val))
	for i, v := range b.Val {
		bv[i] = V(v)
	}
	return av, bv
}

// intValued rewrites a matrix's values to small integers derived from the
// entry index, so folds are exact in float32, int32, and float64 alike and
// every layout can be held to bit-identical results.
func intValued(m *matrix.CSR) *matrix.CSR {
	for i := range m.Val {
		m.Val[i] = float64(i%7 + 1)
	}
	return m
}

// TestPatternMatchesWideStructure is the pattern layout's row of the
// equivalence matrix: across Threads∈{1,2,8} × budgeted/unbudgeted ×
// pooled/fresh, MultiplyPattern produces exactly the sparsity structure of
// the wide 16 B pipeline, with no value plane allocated.
func TestPatternMatchesWideStructure(t *testing.T) {
	inputs := []struct {
		name string
		a, b *matrix.CSR
	}{
		{"ER", gen.ER(1024, 8, 21), gen.ER(1024, 8, 22)},
		{"RMAT-skewed", gen.RMAT(10, 8, gen.Graph500Params, 23), gen.RMAT(10, 8, gen.Graph500Params, 24)},
	}
	for _, in := range inputs {
		t.Run(in.name, func(t *testing.T) {
			acsc := in.a.ToCSC()
			want, _, err := Multiply(acsc, in.b, Options{ForceLayout: LayoutWide})
			if err != nil {
				t.Fatal(err)
			}
			ws := NewWorkspace()
			for _, budget := range []int64{0, 64 << 10} {
				for _, threads := range []int{1, 2, 8} {
					for _, pooled := range []bool{false, true} {
						opt := Options{Threads: threads, MemoryBudgetBytes: budget}
						if pooled {
							opt.Workspace = ws
						}
						got, st, err := MultiplyPattern(acsc, in.b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if st.Layout != LayoutPattern {
							t.Fatalf("stats layout %v, want pattern", st.Layout)
						}
						if got.Val != nil {
							t.Fatalf("pattern result carries a value plane (%d values)", len(got.Val))
						}
						if !csrSameStructure(want, got) {
							t.Fatalf("threads=%d budget=%d pooled=%v: structure differs from wide", threads, budget, pooled)
						}
					}
				}
			}
		})
	}
}

// TestNarrowMatchesWideValues is the narrow (8 B) layout's equivalence row:
// with integer-valued inputs (exact in every width), float32 and int32
// products are bit-identical to the wide float64 pipeline across
// Threads∈{1,2,8} × budgeted/unbudgeted.
func TestNarrowMatchesWideValues(t *testing.T) {
	a := intValued(gen.ER(1024, 8, 25))
	b := intValued(gen.ER(1024, 8, 26))
	acsc := a.ToCSC()
	want, _, err := Multiply(acsc, b, Options{ForceLayout: LayoutWide})
	if err != nil {
		t.Fatal(err)
	}
	af32, bf32 := narrowPlanes[float32](acsc, b)
	ai32, bi32 := narrowPlanes[int32](acsc, b)
	ws := NewWorkspace()
	for _, budget := range []int64{0, 64 << 10} {
		for _, threads := range []int{1, 2, 8} {
			opt := Options{Threads: threads, MemoryBudgetBytes: budget, Workspace: ws}
			got, vals, st, err := MultiplyNarrow(acsc, af32, b, bf32, opt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Layout != LayoutNarrow {
				t.Fatalf("stats layout %v, want narrow", st.Layout)
			}
			if !csrSameStructure(want, got) {
				t.Fatalf("threads=%d budget=%d: float32 structure differs from wide", threads, budget)
			}
			if len(vals) != len(want.Val) {
				t.Fatalf("float32 value plane has %d entries, want %d", len(vals), len(want.Val))
			}
			for i, v := range vals {
				if float64(v) != want.Val[i] {
					t.Fatalf("threads=%d budget=%d: float32 value[%d] = %v, want %v", threads, budget, i, v, want.Val[i])
				}
			}
			goti, ivals, _, err := MultiplyNarrow(acsc, ai32, b, bi32, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !csrSameStructure(want, goti) {
				t.Fatalf("threads=%d budget=%d: int32 structure differs from wide", threads, budget)
			}
			for i, v := range ivals {
				if float64(v) != want.Val[i] {
					t.Fatalf("threads=%d budget=%d: int32 value[%d] = %v, want %v", threads, budget, i, v, want.Val[i])
				}
			}
		}
	}
}

// TestPatternNarrowSteadyStateAllocs extends the alloc regression gate to the
// new layouts: repeated pooled Threads=1 calls allocate nothing, single-shot
// and budgeted.
func TestPatternNarrowSteadyStateAllocs(t *testing.T) {
	a := gen.ER(400, 6, 3)
	b := gen.ER(400, 6, 4)
	acsc := a.ToCSC()
	af, bf := narrowPlanes[float32](acsc, b)
	for _, budget := range []int64{0, 32 << 10} {
		ws := NewWorkspace()
		opt := Options{Threads: 1, Workspace: ws, MemoryBudgetBytes: budget}
		if _, _, err := MultiplyPattern(acsc, b, opt); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, _, err := MultiplyPattern(acsc, b, opt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("pattern budget=%d: %.1f allocs per steady-state call, want 0", budget, allocs)
		}
		if _, _, _, err := MultiplyNarrow(acsc, af, b, bf, opt); err != nil {
			t.Fatal(err)
		}
		allocs = testing.AllocsPerRun(10, func() {
			if _, _, _, err := MultiplyNarrow(acsc, af, b, bf, opt); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("narrow budget=%d: %.1f allocs per steady-state call, want 0", budget, allocs)
		}
	}
}

// TestKey32EntryPointErrors pins the error contract of the new entry points:
// geometries whose packed key exceeds 32 bits fail with ErrKeyWidth, and the
// generic Multiply rejects ForceLayout values it has no value plane for.
func TestKey32EntryPointErrors(t *testing.T) {
	// 2^30 columns: colBits = 31, no key32 layout fits.
	co := &matrix.COO{NumRows: 64, NumCols: 64}
	bo := &matrix.COO{NumRows: 64, NumCols: 1 << 30}
	r := gen.NewRNG(5)
	for e := 0; e < 64; e++ {
		co.Row = append(co.Row, r.Intn(64))
		co.Col = append(co.Col, r.Intn(64))
		co.Val = append(co.Val, 1)
		bo.Row = append(bo.Row, r.Intn(64))
		bo.Col = append(bo.Col, r.Intn(1<<30))
		bo.Val = append(bo.Val, 1)
	}
	aw, bw := co.ToCSR().ToCSC(), bo.ToCSR()
	if Key32Fits(aw.NumRows, bw.NumCols, 64, Options{}) {
		t.Fatal("Key32Fits accepted a 31-bit-column geometry")
	}
	if _, _, err := MultiplyPattern(aw, bw, Options{}); !errors.Is(err, ErrKeyWidth) {
		t.Fatalf("pattern on 31-bit columns: err = %v, want ErrKeyWidth", err)
	}
	av, bv := narrowPlanes[float32](aw, bw)
	if _, _, _, err := MultiplyNarrow(aw, av, bw, bv, Options{}); !errors.Is(err, ErrKeyWidth) {
		t.Fatalf("narrow on 31-bit columns: err = %v, want ErrKeyWidth", err)
	}

	// Value-plane length mismatches are shape errors, caught before any work.
	small := gen.ER(64, 4, 6)
	scsc := small.ToCSC()
	sv, _ := narrowPlanes[float32](scsc, small)
	if _, _, _, err := MultiplyNarrow(scsc, sv[:1], small, sv, Options{}); !errors.Is(err, matrix.ErrShape) {
		t.Fatalf("short aVal: err = %v, want ErrShape", err)
	}
	if _, _, _, err := MultiplyNarrow(scsc, sv, small, sv[:1], Options{}); !errors.Is(err, matrix.ErrShape) {
		t.Fatalf("short bVal: err = %v, want ErrShape", err)
	}

	// The float64 entry point cannot run the value-less or 32-bit-value
	// layouts; forcing them is an error, not a silent fallback.
	for _, l := range []Layout{LayoutPattern, LayoutNarrow} {
		if _, _, err := Multiply(scsc, small, Options{ForceLayout: l}); err == nil {
			t.Fatalf("Multiply accepted ForceLayout %v", l)
		}
	}

	// Pooled workspace survives alternating narrow value types.
	ws := NewWorkspace()
	opt := Options{Workspace: ws, Threads: 1}
	si, _ := narrowPlanes[int32](scsc, small)
	for rep := 0; rep < 3; rep++ {
		if _, _, _, err := MultiplyNarrow(scsc, sv, small, sv, opt); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := MultiplyNarrow(scsc, si, small, si, opt); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzPatternVsFloat64 pins the pattern layout's structure against the wide
// float64 pipeline on random shapes, including budgeted, threaded, and
// pooled variants.
func FuzzPatternVsFloat64(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{24, 24, 24, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 1, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5})

	ws := NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzMatrices(data)
		if !ok {
			return
		}
		want, _, err := Multiply(a, b, Options{ForceLayout: LayoutWide})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{},
			{Threads: 3},
			{Threads: 1, Workspace: ws},
			{MemoryBudgetBytes: 256},
			{MemoryBudgetBytes: 16, Threads: 2},
		} {
			got, st, err := MultiplyPattern(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Layout != LayoutPattern {
				t.Fatalf("pattern multiply ran %v (opt %+v)", st.Layout, opt)
			}
			if got.Val != nil {
				t.Fatal("pattern result carries values")
			}
			if !csrSameStructure(want, got) {
				t.Fatalf("pattern structure (opt %+v) differs from wide", opt)
			}
		}
	})
}

// FuzzNarrowVsWide pins the narrow float32 layout against the wide float64
// pipeline. fuzzMatrices emits small integer values, so every fold order and
// both widths are exact and equality is bit-level.
func FuzzNarrowVsWide(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{24, 24, 24, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 1, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5})

	ws := NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzMatrices(data)
		if !ok {
			return
		}
		want, _, err := Multiply(a, b, Options{ForceLayout: LayoutWide})
		if err != nil {
			t.Fatal(err)
		}
		av, bv := narrowPlanes[float32](a, b)
		for _, opt := range []Options{
			{},
			{Threads: 3},
			{Threads: 1, Workspace: ws},
			{MemoryBudgetBytes: 256},
			{MemoryBudgetBytes: 16, Threads: 2},
		} {
			got, vals, st, err := MultiplyNarrow(a, av, b, bv, opt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Layout != LayoutNarrow {
				t.Fatalf("narrow multiply ran %v (opt %+v)", st.Layout, opt)
			}
			if !csrSameStructure(want, got) {
				t.Fatalf("narrow structure (opt %+v) differs from wide", opt)
			}
			if len(vals) != len(want.Val) {
				t.Fatalf("narrow value plane has %d entries, want %d", len(vals), len(want.Val))
			}
			for i, v := range vals {
				if float64(v) != want.Val[i] {
					t.Fatalf("narrow value[%d] = %v, want %v (opt %+v)", i, v, want.Val[i], opt)
				}
			}
		}
	})
}
