package core_test

// Cross-implementation equivalence: PB-SpGEMM (internal/core) against the
// hash-accumulator column SpGEMM baseline, and the generic semiring engine
// instantiated with arithmetic against the tuned float64 kernel — on
// randomized ER and R-MAT inputs, seeded and table-driven, through both the
// unbudgeted and the memory-budgeted execution paths.

import (
	"fmt"
	"testing"

	"pbspgemm/internal/baseline"
	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/semiring"
)

type equivCase struct {
	name string
	a, b *matrix.CSR
}

func equivCases() []equivCase {
	var cases []equivCase
	for _, seed := range []uint64{1, 7, 42} {
		cases = append(cases, equivCase{
			name: fmt.Sprintf("ER/n512/d6/seed%d", seed),
			a:    gen.ER(512, 6, seed),
			b:    gen.ER(512, 6, seed+1000),
		})
	}
	for _, seed := range []uint64{3, 9} {
		cases = append(cases, equivCase{
			name: fmt.Sprintf("RMAT/s9/ef8/seed%d", seed),
			a:    gen.RMAT(9, 8, gen.Graph500Params, seed),
			b:    gen.RMAT(9, 8, gen.Graph500Params, seed+1000),
		})
	}
	// A rectangular chain exercises non-square shapes.
	cases = append(cases, equivCase{
		name: "ER/rect",
		a:    gen.ER(256, 4, 5),
		b:    gen.ER(256, 4, 6),
	})
	return cases
}

// TestCoreMatchesHashBaseline checks PB-SpGEMM against the paper's strongest
// column baseline (HashSpGEMM), both single-shot and budgeted.
func TestCoreMatchesHashBaseline(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			want, _, err := baseline.Hash(tc.a, tc.b, baseline.Options{})
			if err != nil {
				t.Fatal(err)
			}
			acsc := tc.a.ToCSC()
			for _, budget := range []int64{0, 16 << 10} {
				got, st, err := core.Multiply(acsc, tc.b, core.Options{MemoryBudgetBytes: budget})
				if err != nil {
					t.Fatal(err)
				}
				if budget > 0 && st.Flops*16 > budget && st.NPanels < 2 {
					t.Fatalf("budget %d should have tiled (flops=%d)", budget, st.Flops)
				}
				if !matrix.Equal(want, got, 1e-9) {
					t.Fatalf("PB (budget=%d) differs from HashSpGEMM", budget)
				}
			}
		})
	}
}

// TestEquivalenceMatrixFusedRow is the fused pipeline's row of the
// cross-implementation matrix: on every table input, budgeted and
// unbudgeted, at Threads ∈ {1, 2, 8}, the fused (default) pipeline must
// reproduce the unfused PR 4 path exactly — zero tolerance — and therefore
// transitively match the hash baseline the other rows pin.
func TestEquivalenceMatrixFusedRow(t *testing.T) {
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			acsc := tc.a.ToCSC()
			for _, budget := range []int64{0, 16 << 10} {
				for _, threads := range []int{1, 2, 8} {
					opt := core.Options{MemoryBudgetBytes: budget, Threads: threads}
					opt.DisableFusion = true
					want, _, err := core.Multiply(acsc, tc.b, opt)
					if err != nil {
						t.Fatal(err)
					}
					opt.DisableFusion = false
					got, st, err := core.Multiply(acsc, tc.b, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !st.Fused {
						t.Fatal("default run not fused")
					}
					if !matrix.Equal(want, got, 0) {
						t.Fatalf("budget=%d threads=%d: fused differs from unfused", budget, threads)
					}
				}
			}
		})
	}
}

// TestSemiringArithmeticMatchesCore checks the generic engine over the
// arithmetic semiring against the tuned float64 kernel, across the same
// table and both execution paths, with and without a shared workspace.
func TestSemiringArithmeticMatchesCore(t *testing.T) {
	sr := semiring.Arithmetic()
	ws := core.NewWorkspace()
	for _, tc := range equivCases() {
		t.Run(tc.name, func(t *testing.T) {
			acsc := tc.a.ToCSC()
			want, _, err := core.Multiply(acsc, tc.b, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ga := semiring.FromCSR(tc.a, func(v float64) float64 { return v }).ToCSC()
			gb := semiring.FromCSR(tc.b, func(v float64) float64 { return v })
			for _, opt := range []semiring.Options{
				{},
				{MemoryBudgetBytes: 16 << 10},
				{Workspace: ws},
				{Workspace: ws, MemoryBudgetBytes: 16 << 10},
			} {
				gc, err := semiring.MultiplyOpts(sr, ga, gb, opt)
				if err != nil {
					t.Fatal(err)
				}
				if err := gc.Validate(); err != nil {
					t.Fatalf("opt %+v: %v", opt, err)
				}
				got := gc.ToCSR(func(v float64) float64 { return v })
				if !matrix.Equal(want, got, 1e-9) {
					t.Fatalf("semiring arithmetic (opt %+v) differs from core kernel", opt)
				}
			}
		})
	}
}

// TestSemiringBudgetedMinPlusBitIdentical checks tiling under a fold that is
// exact in floating point: min is associative and commutative with no
// rounding, so the budgeted result must be bit-identical to the single-shot
// one regardless of how panels regroup the folds.
func TestSemiringBudgetedMinPlusBitIdentical(t *testing.T) {
	sr := semiring.MinPlus()
	d := gen.ER(400, 5, 77)
	gd := semiring.FromCSR(d, func(v float64) float64 { return v })
	ga := gd.ToCSC()
	want, err := semiring.MultiplyOpts(sr, ga, gd, semiring.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := semiring.MultiplyOpts(sr, ga, gd, semiring.Options{MemoryBudgetBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if want.NNZ() != got.NNZ() {
		t.Fatalf("nnz: %d vs %d", want.NNZ(), got.NNZ())
	}
	for i := range want.ColIdx {
		if want.ColIdx[i] != got.ColIdx[i] || want.Val[i] != got.Val[i] {
			t.Fatalf("entry %d: (%d,%v) vs (%d,%v)", i,
				want.ColIdx[i], want.Val[i], got.ColIdx[i], got.Val[i])
		}
	}
}
