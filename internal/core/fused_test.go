package core

import (
	"fmt"
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// TestFusedMatchesUnfusedBitIdentical is the fused pipeline's equivalence
// matrix: on ER and R-MAT inputs, budgeted and unbudgeted, at
// Threads ∈ {1, 2, 8} and in both tuple layouts, the fused (default) output
// must be bit-identical — structure and float64 values — to the unfused
// PR 4 path. The fused sorts run the unfused digit plan pass for pass and
// fold in compress order, so this holds with no tolerance at all.
func TestFusedMatchesUnfusedBitIdentical(t *testing.T) {
	inputs := []struct {
		name string
		a, b *matrix.CSR
	}{
		{"ER", gen.ER(1024, 8, 31), gen.ER(1024, 8, 32)},
		{"RMAT", gen.RMAT(10, 8, gen.Graph500Params, 33), gen.RMAT(10, 8, gen.Graph500Params, 34)},
	}
	for _, in := range inputs {
		acsc := in.a.ToCSC()
		for _, layout := range []Layout{LayoutSqueezed, LayoutWide} {
			for _, budget := range []int64{0, 64 << 10} {
				for _, threads := range []int{1, 2, 8} {
					name := fmt.Sprintf("%s/%v/budget=%d/threads=%d", in.name, layout, budget, threads)
					t.Run(name, func(t *testing.T) {
						opt := Options{Threads: threads, ForceLayout: layout, MemoryBudgetBytes: budget}
						opt.DisableFusion = true
						want, stU, err := Multiply(acsc, in.b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if stU.Fused {
							t.Fatal("DisableFusion run reported Fused")
						}
						opt.DisableFusion = false
						got, stF, err := Multiply(acsc, in.b, opt)
						if err != nil {
							t.Fatal(err)
						}
						if !stF.Fused {
							t.Fatal("default run did not report Fused")
						}
						if budget > 0 && stF.NPanels < 2 {
							t.Fatalf("budget %d did not tile (panels=%d)", budget, stF.NPanels)
						}
						if !csrBitIdentical(want, got) {
							t.Fatal("fused output not bit-identical to unfused")
						}
					})
				}
			}
		}
	}
}

// TestFusedSplitBinsBitIdentical forces the oversized-bin work-stealing
// split (tiny L2 budget, few bins, skewed R-MAT) and checks the fused
// parallel result against sequential fused and against unfused — the split
// path folds a partitioned bin with the two-pointer compress, which must
// equal the whole-bin fused sort bit for bit.
func TestFusedSplitBinsBitIdentical(t *testing.T) {
	a := gen.RMAT(10, 8, gen.Graph500Params, 35)
	acsc := a.ToCSC()
	b := gen.RMAT(10, 8, gen.Graph500Params, 36)
	for _, layout := range []Layout{LayoutSqueezed, LayoutWide} {
		base := Options{Threads: 1, NBins: 2, L2CacheBytes: 4096, ForceLayout: layout}
		want, _, err := Multiply(acsc, b, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, threads := range []int{2, 8} {
			opt := base
			opt.Threads = threads
			got, _, err := Multiply(acsc, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !csrBitIdentical(want, got) {
				t.Fatalf("layout=%v threads=%d: split fused output drifted from sequential", layout, threads)
			}
			opt.DisableFusion = true
			unf, _, err := Multiply(acsc, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !csrBitIdentical(want, unf) {
				t.Fatalf("layout=%v threads=%d: unfused split output differs", layout, threads)
			}
		}
	}
}

// TestSortSplitCutoffPerLayout pins the oversized-bin split decision to the
// post-squeeze tuple byte size: the cutoff is 2·L2/tupleBytes TUPLES, so the
// squeezed layout (12 B) splits later in tuple count — the same resident
// byte budget — than the wide layout (16 B), never at a layout-independent
// constant.
func TestSortSplitCutoffPerLayout(t *testing.T) {
	const l2 = int64(1) << 20
	sq := sortSplitCutoffTuples(SqueezedTupleBytes, l2)
	wide := sortSplitCutoffTuples(WideTupleBytes, l2)
	if sq != 2*l2/12 {
		t.Fatalf("squeezed cutoff = %d, want %d", sq, 2*l2/12)
	}
	if wide != 2*l2/16 {
		t.Fatalf("wide cutoff = %d, want %d", wide, 2*l2/16)
	}
	if sq <= wide {
		t.Fatalf("squeezed cutoff %d not above wide %d: split decision is not layout-aware", sq, wide)
	}
	// Both layouts resolve to the same resident-byte budget (up to one
	// tuple of integer-division rounding).
	if diff := wide*WideTupleBytes - sq*SqueezedTupleBytes; diff < 0 || diff >= SqueezedTupleBytes {
		t.Fatalf("cutoffs disagree in bytes: %d vs %d", sq*SqueezedTupleBytes, wide*WideTupleBytes)
	}
	// Tiny L2 budgets floor at 4096 tuples so the split machinery never
	// degenerates into per-element tasks.
	if got := sortSplitCutoffTuples(SqueezedTupleBytes, 1024); got != 4096 {
		t.Fatalf("floored cutoff = %d, want 4096", got)
	}

	// The engine derives its cutoff from the run's actual layout: a bin size
	// between the two cutoffs must split under the wide layout but not the
	// squeezed one.
	between := (sq + wide) / 2
	for _, tc := range []struct {
		layout Layout
		bytes  int64
		split  bool
	}{
		{LayoutSqueezed, SqueezedTupleBytes, false},
		{LayoutWide, WideTupleBytes, true},
	} {
		e := engine{opt: Options{L2CacheBytes: int(l2)}.withDefaults(), tupleBytes: tc.bytes}
		if got := between > e.sortSplitCutoff(); got != tc.split {
			t.Fatalf("layout %v: bin of %d tuples split=%v, want %v", tc.layout, between, got, tc.split)
		}
	}
}

// TestFusedSteadyStateAllocs: the fused pipeline keeps the pooled-workspace
// zero-alloc guarantee at Threads=1 in both layouts, single-shot and
// budgeted (the budgeted path's merge emits into the pooled output CSR).
func TestFusedSteadyStateAllocs(t *testing.T) {
	a := gen.ER(400, 6, 1).ToCSC()
	b := gen.ER(400, 6, 2)
	for _, tc := range []struct {
		name   string
		layout Layout
		budget int64
	}{
		{"fused-squeezed", LayoutSqueezed, 0},
		{"fused-squeezed-budgeted", LayoutSqueezed, 32 << 10},
		{"fused-wide", LayoutWide, 0},
		{"fused-wide-budgeted", LayoutWide, 32 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := NewWorkspace()
			opt := Options{Threads: 1, Workspace: ws, MemoryBudgetBytes: tc.budget, ForceLayout: tc.layout}
			if _, st, err := Multiply(a, b, opt); err != nil {
				t.Fatal(err)
			} else if !st.Fused || st.Layout != tc.layout {
				t.Fatalf("fused=%v layout=%v, want fused %v", st.Fused, st.Layout, tc.layout)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, _, err := Multiply(a, b, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s allocated %.1f times per call, want 0", tc.name, allocs)
			}
		})
	}
}

// FuzzFusedVsUnfused drives random shapes through the fused and unfused
// pipelines — single-shot, budgeted, pooled and multi-threaded — and asserts
// identical CSR. Values are small integers (fuzzMatrices), so the comparison
// is exact; TestFusedMatchesUnfusedBitIdentical additionally holds real
// values bit-identical on fixed inputs.
func FuzzFusedVsUnfused(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{24, 24, 24, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 1, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5})

	wsF, wsU := NewWorkspace(), NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzMatrices(data)
		if !ok {
			return
		}
		for _, base := range []Options{
			{},
			{Threads: 3},
			{MemoryBudgetBytes: 256},
			{MemoryBudgetBytes: 16, Threads: 2},
			{ForceLayout: LayoutWide},
			{ForceLayout: LayoutWide, MemoryBudgetBytes: 128},
		} {
			uopt := base
			uopt.DisableFusion = true
			if base.Threads <= 1 {
				uopt.Workspace = wsU
			}
			want, _, err := Multiply(a, b, uopt)
			if err != nil {
				t.Fatal(err)
			}
			fopt := base
			if base.Threads <= 1 {
				fopt.Workspace = wsF
			}
			got, st, err := Multiply(a, b, fopt)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Fused {
				t.Fatalf("default run not fused (opt %+v)", fopt)
			}
			if !matrix.Equal(want, got, 0) {
				t.Fatalf("fused output differs from unfused (opt %+v)", base)
			}
		}
	})
}

// BenchmarkFusedVsUnfused is the PR 5 acceptance benchmark: the high-cf
// R-MAT regime (the compress sweep the fusion removes is largest relative
// to output there), fused vs the three-pass PR 4 path, both layouts, on a
// pooled workspace.
func BenchmarkFusedVsUnfused(b *testing.B) {
	a := gen.RMAT(10, 32, gen.Graph500Params, 1).ToCSC()
	m := gen.RMAT(10, 32, gen.Graph500Params, 2)
	for _, tc := range []struct {
		name    string
		layout  Layout
		unfused bool
	}{
		{"squeezed/fused", LayoutSqueezed, false},
		{"squeezed/unfused", LayoutSqueezed, true},
		{"wide/fused", LayoutWide, false},
		{"wide/unfused", LayoutWide, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ws := NewWorkspace()
			opt := Options{Workspace: ws, Threads: 1, ForceLayout: tc.layout, DisableFusion: tc.unfused}
			_, st, err := Multiply(a, m, opt)
			if err != nil {
				b.Fatal(err)
			}
			if st.Fused == tc.unfused {
				b.Fatal("fusion flag not honored")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Multiply(a, m, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(st.Flops)/sec/1e9, "GFLOPS")
		})
	}
}

// TestFusedBudgetedMergeBranches pins both fused budgeted merge strategies
// against the unfused path: a shallow budget (2-3 panels, so per-bin run
// counts stay within fusedEmitMergeMaxRuns) exercises the emit-into-CSR
// merge, a deep budget (many panels) the intermediate-buffer fallback —
// both bit-identical to DisableFusion on the same budget.
func TestFusedBudgetedMergeBranches(t *testing.T) {
	a := gen.RMAT(9, 16, gen.Graph500Params, 51)
	acsc := a.ToCSC()
	b := gen.RMAT(9, 16, gen.Graph500Params, 52)
	flops := matrix.FlopsCSR(a, b)
	for _, tc := range []struct {
		name      string
		budget    int64
		wantEmit  bool
		minPanels int
	}{
		{"shallow-emit-merge", flops * WideTupleBytes / 2, true, 2},
		{"deep-intermediate", flops * WideTupleBytes / 16, false, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, threads := range []int{1, 4} {
				opt := Options{Threads: threads, MemoryBudgetBytes: tc.budget}
				opt.DisableFusion = true
				want, _, err := Multiply(acsc, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.DisableFusion = false
				ws := NewWorkspace()
				opt.Workspace = ws
				got, st, err := Multiply(acsc, b, opt)
				if err != nil {
					t.Fatal(err)
				}
				if st.NPanels < tc.minPanels {
					t.Fatalf("budget %d produced %d panels, want ≥ %d", tc.budget, st.NPanels, tc.minPanels)
				}
				if gotEmit := ws.eng.emitMerge; gotEmit != tc.wantEmit {
					t.Fatalf("emitMerge = %v, want %v (maxRunsPerBin %d)",
						gotEmit, tc.wantEmit, ws.eng.maxRunsPerBin)
				}
				if !csrBitIdentical(want, got.Clone()) {
					t.Fatalf("threads=%d: fused budgeted (%s) differs from unfused", threads, tc.name)
				}
			}
		})
	}
}
