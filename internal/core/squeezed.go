package core

import (
	"pbspgemm/internal/matrix"
)

// This file is the squeezed-layout half of the pipeline (Section III-D key
// squeezing taken to its storage conclusion): whenever the packed key
// localRow<<colBits | col fits a uint32 — localRowBits + colBits ≤ 32, true
// for almost every real matrix because bins keep localRow small — expanded
// tuples live as parallel arrays (ws.tupleKeys []uint32 + ws.tupleVals
// []float64), 12 bytes per tuple instead of radix.Pair's 16. Expand writes,
// sort counting passes and compress all move a quarter less memory in the
// two phases that dominate PB-SpGEMM's traffic. Control flow mirrors the
// wide functions in pbspgemm.go/panels.go one for one; only the element
// accesses differ.

// expandRangeSqueezed is expandRange over the squeezed layout: same column
// walk, same propagation blocking, writing the 4-byte key and 8-byte value
// into split local bins and flushing each with two bulk copies into the
// worker's pre-reserved exclusive range.
func (e *engine) expandRangeSqueezed(t, lo int, cursors []int64) {
	a, b := e.a, e.b
	nbins := int32(e.nbins)
	capT := e.localCap
	shift, mask, colBits := e.rowShift, e.rowMask, e.colBits
	stride := int64(e.nbins) * int64(capT)
	bufK := e.ws.localKeys[int64(t)*stride : int64(t+1)*stride]
	bufV := e.ws.localVals[int64(t)*stride : int64(t+1)*stride]
	lens := e.ws.localLens[t*e.nbins : (t+1)*e.nbins]
	keys, vals := e.ws.tupleKeys, e.ws.tupleVals

	for i := lo + e.ws.colBounds[t]; i < lo+e.ws.colBounds[t+1]; i++ {
		bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
		if bLo == bHi {
			continue
		}
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			r := uint32(a.RowIdx[p])
			av := a.Val[p]
			bin := int32(r >> shift)
			localRow := (r & mask) << colBits
			base := int64(bin) * int64(capT)
			ln := lens[bin]
			for q := bLo; q < bHi; q++ {
				if ln == capT {
					lens[bin] = ln
					flushLocalBinSqueezed(bin, bufK, bufV, lens, keys, vals, cursors, capT)
					ln = 0
				}
				bufK[base+int64(ln)] = localRow | uint32(b.ColIdx[q])
				bufV[base+int64(ln)] = av * b.Val[q]
				ln++
			}
			lens[bin] = ln
		}
	}
	for bin := int32(0); bin < nbins; bin++ {
		flushLocalBinSqueezed(bin, bufK, bufV, lens, keys, vals, cursors, capT)
	}
}

// flushLocalBinSqueezed bulk-copies one split local bin into the worker's
// pre-reserved range of the global bin and advances its private cursor.
func flushLocalBinSqueezed(bin int32, bufK []uint32, bufV []float64, lens []int32,
	keys []uint32, vals []float64, cursors []int64, capT int32) {

	n := lens[bin]
	if n == 0 {
		return
	}
	off := cursors[bin]
	cursors[bin] = off + int64(n)
	base := int64(bin) * int64(capT)
	copy(keys[off:off+int64(n)], bufK[base:base+int64(n)])
	copy(vals[off:off+int64(n)], bufV[base:base+int64(n)])
	lens[bin] = 0
}

// compressBinSqueezed is the paper's two-pointer in-place merge over the
// split layout; see compressBin for the contract.
func compressBinSqueezed(keys []uint32, vals []float64, firstRow int32, colBits uint, rowCounts []int64) int64 {
	if len(keys) == 0 {
		return 0
	}
	p2 := 0
	for p1 := 1; p1 < len(keys); p1++ {
		if keys[p1] == keys[p2] {
			vals[p2] += vals[p1]
			continue
		}
		p2++
		keys[p2] = keys[p1]
		vals[p2] = vals[p1]
	}
	out := int64(p2 + 1)
	if rowCounts != nil {
		for i := int64(0); i < out; i++ {
			row := firstRow + int32(keys[i]>>colBits)
			rowCounts[row+1]++
		}
	}
	return out
}

func unpackBinSqueezed(c *matrix.CSR, keys []uint32, vals []float64, srcOff, dstOff, n int64, colMask uint32) {
	for j := int64(0); j < n; j++ {
		c.ColIdx[dstOff+j] = int32(keys[srcOff+j] & colMask)
		c.Val[dstOff+j] = vals[srcOff+j]
	}
}

// mergeBinSqueezed is mergeBin over the split run arena; see mergeBin for
// the merge invariants (runs individually duplicate-free, compare against
// the last written tuple).
func (e *engine) mergeBinSqueezed(worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dstBase := ws.mergedStart[bin]
	dst := dstBase

	switch k {
	case 0:
		ws.binOut[bin] = 0
		return
	case 1:
		r := group[0]
		n := ws.runStart[r+1] - ws.runStart[r]
		copy(ws.mergedKeys[dst:dst+n], ws.runKeys[ws.runStart[r]:ws.runStart[r+1]])
		copy(ws.mergedVals[dst:dst+n], ws.runVals[ws.runStart[r]:ws.runStart[r+1]])
		dst += n
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		for {
			best := -1
			var bestKey uint32
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue // run exhausted
				}
				if key := ws.runKeys[h]; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			h := heads[best]
			heads[best]++
			if dst > dstBase && ws.mergedKeys[dst-1] == ws.runKeys[h] {
				ws.mergedVals[dst-1] += ws.runVals[h]
			} else {
				ws.mergedKeys[dst] = ws.runKeys[h]
				ws.mergedVals[dst] = ws.runVals[h]
				dst++
			}
		}
	}
	ws.binOut[bin] = dst - dstBase
	firstRow := int32(int64(bin) << e.rowShift)
	for i := dstBase; i < dst; i++ {
		row := firstRow + int32(ws.mergedKeys[i]>>e.colBits)
		ws.rowCounts[row+1]++
	}
}
