package core

import (
	"errors"
	"fmt"
	"unsafe"

	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/radix"
	"pbspgemm/internal/simd"
)

// This file is the value-width-generic layout layer. The paper's traffic
// argument — SpGEMM is bandwidth-bound, so bytes-per-tuple is the lever —
// does not stop at the 12-byte squeezed layout: a Boolean/structural product
// never reads its values (4-byte key-only tuples), and float32/int32
// workloads need only half the value plane (8-byte key32+val32 tuples). Each
// tuple layout is a layoutOps implementation; the engine holds exactly one
// per run (e.lay) and every phase dispatches element accesses through it
// while all control flow — bin geometry, panel tiling, the work-stealing
// sort scheduler, the budgeted merge plan — stays layout-independent, which
// is what makes the four layouts bit-identical in structure.
//
// The three implementations:
//
//   - wideOps: 16-byte []radix.Pair (u64 key + f64 value).
//   - kv[V]: split key32 + value-plane layouts — kv[float64] is the 12-byte
//     squeezed layout, kv[float32]/kv[int32] the 8-byte narrow one. Keys
//     live in the Workspace (shared by every key32 layout); only the value
//     planes are V-typed.
//   - patternOps: bare []uint32 keys, 4 bytes per tuple; the fold is
//     deduplication and the result CSR carries no Val array.
//
// wideOps and patternOps are zero-size: storing them in the e.lay interface
// allocates nothing (the runtime's zerobase). kv values are reached by
// pointer (&ws.kvF64, or the pooled *kv[V] in ws.kvNarrow), so rebinding
// e.lay per call is allocation-free too.

// Value is the set of element types a value-carrying tuple layout can move:
// the float64 of the 12-byte squeezed layout plus the 4-byte types of the
// 8-byte narrow layout. It matches radix.Numeric, the fused fold's
// constraint.
type Value interface{ ~float32 | ~float64 | ~int32 }

// Value32 is the 4-byte subset of Value — the value plane of the 8-byte
// narrow layout (MultiplyNarrow).
type Value32 interface{ ~float32 | ~int32 }

// ErrKeyWidth reports that a layout requiring 32-bit packed keys was
// requested for a bin geometry whose localRowBits + colBits exceed 32.
var ErrKeyWidth = errors.New("packed key exceeds 32 bits")

// layoutOps is the per-layout half of the pipeline: every method is one
// phase's element accesses over one layout's storage, called with the engine
// whose geometry (bins, shifts, masks) drives it. Implementations must keep
// the tuple ORDER identical across layouts — same digit plans, same fold
// order — so the structural output is bit-identical layout to layout.
type layoutOps interface {
	// growTuples sizes the expanded-tuple buffer for n tuples.
	growTuples(e *engine, n int64)
	// growLocals sizes the flattened threads×nbins×capT local bins.
	growLocals(e *engine, n int64)
	// resetRuns truncates the layout's value run arena (the shared key/pair
	// arenas are reset by the engine).
	resetRuns(e *engine)
	// expandRange is one worker's outer-product expansion with propagation
	// blocking over panel columns [lo+colBounds[t], lo+colBounds[t+1]).
	expandRange(e *engine, t, lo int, cursors []int64)
	// growScratch sizes the layout's sort-phase ping-pong scratch planes to
	// total tuples (threads × engine.scratchStride).
	growScratch(e *engine, total int64)
	// sortSeg sorts tuples [s.start, s.end) on worker s.worker's scratch;
	// s.arg < 0 means a whole bin, otherwise the remaining key bits / byte
	// index to recurse at.
	sortSeg(e *engine, s sortSeg)
	// partitionTop runs the sort's first splitting pass over [lo, hi) on the
	// given worker's scratch, filling bounds (len ≥
	// radix.MaxPartitionBuckets+1) and returning the bucket count and the
	// arg buckets continue sorting at. nbuckets == 0 means the range needs
	// no further sorting.
	partitionTop(e *engine, worker int, lo, hi int64, bounds []int64) (nbuckets, arg int)
	// fuseBin runs the fused sort+fold over [lo, hi) on the given worker's
	// scratch, leaving the folded prefix in place and returning its length.
	fuseBin(e *engine, worker int, lo, hi int64) int64
	// compressBin folds duplicates of the sorted range [lo, hi) in place,
	// returning the folded length.
	compressBin(e *engine, lo, hi int64) int64
	// appendRun copies the folded bin segment at [src, src+n) into the run
	// arena.
	appendRun(e *engine, src, n int64)
	// growMerged sizes the merged-run buffer for n tuples.
	growMerged(e *engine, n int64)
	// mergeBin k-way merges one bin's runs into the merged buffer, folding
	// duplicates and tallying rowCounts.
	mergeBin(e *engine, worker, bin int)
	// emitMergeBin is the fused merge's emitting walk: fold one bin's runs
	// directly into the result's final slot.
	emitMergeBin(e *engine, c *matrix.CSR, binOutStart []int64, worker, bin int)
	// unpackBin writes one compressed bin into the result CSR; merged
	// selects the merged-run buffer over the tuple buffer as the source.
	unpackBin(e *engine, c *matrix.CSR, merged bool, srcOff, dstOff, n int64)
	// growOut installs the result's value storage (c.Val for the float64
	// layouts, the layout's out plane for narrow, nothing for pattern).
	growOut(e *engine, c *matrix.CSR, nnzc int64)
	// touchRange first-touches the tuple storage of range [lo, hi) (one
	// store per page of every plane the layout writes there) so NUMA
	// first-touch placement lands the pages on the calling thread's node.
	// Only called on ranges expand fully overwrites.
	touchRange(e *engine, lo, hi int64)
}

// growVals is the grow-only sizing helper of the generic value planes, the V
// counterpart of matrix.GrowFloat64.
func growVals[V Value](buf *[]V, n int64) []V {
	if int64(cap(*buf)) < n {
		*buf = make([]V, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// kvOf returns the workspace's pooled narrow layout state for value type V,
// creating it on first use. The slot holds one V at a time: alternating
// value types across calls on one workspace reallocates, a stable one reuses.
func kvOf[V Value32](ws *Workspace) *kv[V] {
	if l, ok := ws.kvNarrow.(*kv[V]); ok {
		return l
	}
	l := &kv[V]{}
	ws.kvNarrow = l
	return l
}

// bindLayout installs e.lay for the layout planBins chose. The narrow entry
// pre-binds its typed kv[V] (carrying the caller's value planes); everything
// else resolves here.
func (e *engine) bindLayout() {
	switch e.layout {
	case LayoutSqueezed:
		l := &e.ws.kvF64
		l.aVal, l.bVal = e.a.Val, e.b.Val
		e.lay = l
	case LayoutPattern:
		e.lay = patternOps{}
	case LayoutNarrow:
		// MultiplyNarrow bound e.lay = kvOf[V](ws) before run().
	default:
		e.lay = wideOps{}
	}
}

// MultiplyPattern computes the structural (pattern-only) product of A and B:
// the returned CSR has the exact support of A·B and a nil Val array. Tuples
// are bare 4-byte keys — a quarter of the wide layout's traffic in the
// expand and sort phases — and the fused fold degenerates to deduplication.
// Neither A's nor B's Val arrays are read (they may be nil). The pattern
// layout requires the packed key to fit 32 bits; a geometry with
// localRowBits + colBits > 32 fails with ErrKeyWidth (use Key32Fits to
// pre-check). Options.ForceLayout is ignored: the entry point is the layout.
func MultiplyPattern(a *matrix.CSC, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	opt = opt.withDefaults()
	e, err := newEngine(a, b, opt, LayoutPattern)
	if err != nil {
		return nil, nil, err
	}
	return e.runContained()
}

// MultiplyNarrow computes C = A*B over 4-byte values (float32 or int32) with
// the 8-byte key32+val32 tuple layout. The inputs are the structural CSC/CSR
// (whose float64 Val arrays are never read and may be nil) plus parallel
// value planes indexed like a.RowIdx and b.ColIdx; the result is the
// structural CSR (nil Val) plus its value plane, aliasing workspace memory
// when opt.Workspace is set. Like MultiplyPattern, the key must fit 32 bits
// (ErrKeyWidth otherwise) and ForceLayout is ignored.
func MultiplyNarrow[V Value32](a *matrix.CSC, aVal []V, b *matrix.CSR, bVal []V, opt Options) (*matrix.CSR, []V, *Stats, error) {
	opt = opt.withDefaults()
	if int64(len(aVal)) < int64(len(a.RowIdx)) || int64(len(bVal)) < int64(len(b.ColIdx)) {
		return nil, nil, nil, fmt.Errorf("core: narrow value planes shorter than their index arrays (%d < %d or %d < %d): %w",
			len(aVal), len(a.RowIdx), len(bVal), len(b.ColIdx), matrix.ErrShape)
	}
	e, err := newEngine(a, b, opt, LayoutNarrow)
	if err != nil {
		return nil, nil, nil, err
	}
	l := kvOf[V](e.ws)
	l.aVal, l.bVal = aVal, bVal
	e.lay = l
	c, st, err := e.runContained()
	vals := l.out
	l.aVal, l.bVal, l.out = nil, nil, nil
	if err != nil {
		return nil, nil, nil, err
	}
	return c, vals, st, nil
}

// ---------------------------------------------------------------------------
// wideOps: the 16-byte []radix.Pair layout.

type wideOps struct{}

func (wideOps) growTuples(e *engine, n int64) { radix.GrowPairs(&e.ws.tuples, n) }
func (wideOps) growLocals(e *engine, n int64) { radix.GrowPairs(&e.ws.locals, n) }
func (wideOps) resetRuns(e *engine)           {}

func (wideOps) expandRange(e *engine, t, lo int, cursors []int64) {
	e.expandRangeWide(t, lo, cursors)
}

func (wideOps) growScratch(e *engine, total int64) {
	radix.GrowPairs(&e.ws.scratchPairs, total)
}

// scratchPairs returns worker w's private slice of the pair scratch plane,
// at least n long.
func (e *engine) scratchPairsFor(w int, n int64) []radix.Pair {
	off := int64(w) * e.scratchStride
	return e.ws.scratchPairs[off : off+n]
}

func (wideOps) sortSeg(e *engine, s sortSeg) {
	ps := e.ws.tuples[s.start:s.end]
	aux := e.scratchPairsFor(s.worker, s.end-s.start)
	if s.arg < 0 {
		radix.SortPairsStable(ps, aux, e.batch)
	} else {
		radix.SortPairsAtByteStable(ps, aux, s.arg, e.batch)
	}
}

func (wideOps) partitionTop(e *engine, worker int, lo, hi int64, bounds []int64) (int, int) {
	return radix.PartitionPairsScratch(e.ws.tuples[lo:hi], e.scratchPairsFor(worker, hi-lo), bounds, e.batch)
}

func (wideOps) fuseBin(e *engine, worker int, lo, hi int64) int64 {
	return radix.SortPairsFusedScratch(e.ws.tuples[lo:hi], e.scratchPairsFor(worker, hi-lo), e.batch)
}

func (wideOps) compressBin(e *engine, lo, hi int64) int64 {
	return compressBinWide(e.ws.tuples[lo:hi])
}

func (wideOps) appendRun(e *engine, src, n int64) {
	e.ws.runs = append(e.ws.runs, e.ws.tuples[src:src+n]...)
}

func (wideOps) growMerged(e *engine, n int64) { radix.GrowPairs(&e.ws.merged, n) }

func (wideOps) mergeBin(e *engine, worker, bin int) { e.mergeBinWide(worker, bin) }

func (wideOps) emitMergeBin(e *engine, c *matrix.CSR, binOutStart []int64, worker, bin int) {
	e.emitMergeBinWide(c, binOutStart, worker, bin)
}

func (wideOps) unpackBin(e *engine, c *matrix.CSR, merged bool, srcOff, dstOff, n int64) {
	src := e.ws.tuples
	if merged {
		src = e.ws.merged
	}
	colMask := uint64(1)<<e.colBits - 1
	for j := int64(0); j < n; j++ {
		c.ColIdx[dstOff+j] = int32(src[srcOff+j].Key & colMask)
		c.Val[dstOff+j] = src[srcOff+j].Val
	}
}

func (wideOps) growOut(e *engine, c *matrix.CSR, nnzc int64) {
	if e.shared {
		c.Val = matrix.GrowFloat64(&e.ws.outVal, nnzc)
	} else {
		c.Val = make([]float64, nnzc)
	}
}

func (wideOps) touchRange(e *engine, lo, hi int64) { touchPages(e.ws.tuples[lo:hi]) }

// ---------------------------------------------------------------------------
// kv[V]: the split key32 + V value-plane layouts (squeezed f64, narrow f32/i32).

// kv holds one value type's planes of the split layout. Keys are shared
// across all key32 layouts and live in the Workspace; these are only the
// V-typed halves, pooled grow-only exactly like their float64 ancestors.
type kv[V Value] struct {
	tupleVals   []V
	localVals   []V
	runVals     []V
	mergedVals  []V
	outVal      []V
	scratchVals []V

	// Per-call bindings: the input value planes (parallel to a.RowIdx /
	// b.ColIdx) and the result's value destination. Cleared after each run so
	// a pooled workspace doesn't pin caller memory.
	aVal, bVal []V
	out        []V
}

// tupleCapBytes reports the value plane's pooled capacity; Workspace
// .TupleCapBytes adds it to the shared key arena's.
func (l *kv[V]) tupleCapBytes() int64 {
	var v V
	return int64(cap(l.tupleVals)) * int64(unsafe.Sizeof(v))
}

func (l *kv[V]) growTuples(e *engine, n int64) {
	radix.GrowUint32(&e.ws.tupleKeys, n)
	growVals(&l.tupleVals, n)
}

func (l *kv[V]) growLocals(e *engine, n int64) {
	radix.GrowUint32(&e.ws.localKeys, n)
	growVals(&l.localVals, n)
}

func (l *kv[V]) resetRuns(e *engine) { l.runVals = l.runVals[:0] }

func (l *kv[V]) growScratch(e *engine, total int64) {
	radix.GrowUint32(&e.ws.scratchKeys, total)
	growVals(&l.scratchVals, total)
}

// scratchKeysFor returns worker w's private slice of the shared key scratch
// plane, at least n long.
func (e *engine) scratchKeysFor(w int, n int64) []uint32 {
	off := int64(w) * e.scratchStride
	return e.ws.scratchKeys[off : off+n]
}

// expandRange mirrors expandRangeWide: same column walk, same propagation
// blocking, writing the 4-byte key and the V value into split local bins and
// flushing each with two bulk copies into the worker's exclusive range.
func (l *kv[V]) expandRange(e *engine, t, lo int, cursors []int64) {
	a, b := e.a, e.b
	nbins := int32(e.nbins)
	capT := e.localCap
	shift, mask, colBits := e.rowShift, e.rowMask, e.colBits
	stride := int64(e.nbins) * int64(capT)
	bufK := e.ws.localKeys[int64(t)*stride : int64(t+1)*stride]
	bufV := l.localVals[int64(t)*stride : int64(t+1)*stride]
	lens := e.ws.localLens[t*e.nbins : (t+1)*e.nbins]
	keys, vals := e.ws.tupleKeys, l.tupleVals
	aVal, bVal := l.aVal, l.bVal
	batch := e.batch
	nt := e.ntFlush

	var sincePoll int64
	for i := lo + e.ws.colBounds[t]; i < lo+e.ws.colBounds[t+1]; i++ {
		bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
		if bLo == bHi {
			continue
		}
		// Per-column cancellation poll, matching expandRangeWide: check every
		// ~cancelPollTuples expanded tuples, never inside the batched kernels.
		if faultinject.Enabled {
			faultinject.Fire(faultinject.SiteExpandColumn, t)
		}
		if sincePoll >= cancelPollTuples {
			sincePoll = 0
			if e.pollCancel() {
				return
			}
		}
		sincePoll += int64(bHi-bLo) * (a.ColPtr[i+1] - a.ColPtr[i])
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			r := uint32(a.RowIdx[p])
			av := aVal[p]
			bin := int32(r >> shift)
			localRow := (r & mask) << colBits
			base := int64(bin) * int64(capT)
			ln := lens[bin]
			// Batched expansion: fill the local bin in runs of
			// min(room, remaining) B-row entries per kernel call. The chunk
			// boundaries fall exactly where the per-element loop would have
			// flushed, so the flush sequence — and therefore the global tuple
			// order — is identical to the scalar path's.
			for q := bLo; q < bHi; {
				if ln == capT {
					lens[bin] = ln
					flushLocalKV(bin, bufK, bufV, lens, keys, vals, cursors, capT, nt)
					ln = 0
				}
				take := bHi - q
				if room := int64(capT - ln); take > room {
					take = room
				}
				dk := bufK[base+int64(ln) : base+int64(ln)+take]
				dv := bufV[base+int64(ln) : base+int64(ln)+take]
				if batch {
					simd.ExpandKV(dk, dv, localRow, b.ColIdx[q:q+take], bVal[q:q+take], av)
				} else {
					simd.ExpandKVScalar(dk, dv, localRow, b.ColIdx[q:q+take], bVal[q:q+take], av)
				}
				ln += int32(take)
				q += take
			}
			lens[bin] = ln
		}
	}
	for bin := int32(0); bin < nbins; bin++ {
		flushLocalKV(bin, bufK, bufV, lens, keys, vals, cursors, capT, nt)
	}
}

// flushLocalKV bulk-copies one split local bin into the worker's pre-reserved
// range of the global bin and advances its private cursor. When nt is set
// (batched build, panel arena beyond LLC — see expandPanel) it streams both
// planes past the cache with non-temporal stores; otherwise it keeps copy()
// plus a prefetch of this bin's next destination.
func flushLocalKV[V Value](bin int32, bufK []uint32, bufV []V, lens []int32,
	keys []uint32, vals []V, cursors []int64, capT int32, nt bool) {

	n := lens[bin]
	if n == 0 {
		return
	}
	off := cursors[bin]
	next := off + int64(n)
	cursors[bin] = next
	base := int64(bin) * int64(capT)
	if nt && simd.HasNT {
		var v V
		vb := int(unsafe.Sizeof(v))
		simd.NTCopyBytes(unsafe.Pointer(&keys[off]), unsafe.Pointer(&bufK[base]), int(n)*4)
		simd.NTCopyBytes(unsafe.Pointer(&vals[off]), unsafe.Pointer(&bufV[base]), int(n)*vb)
		lens[bin] = 0
		return
	}
	copy(keys[off:next], bufK[base:base+int64(n)])
	copy(vals[off:next], bufV[base:base+int64(n)])
	lens[bin] = 0
	// Warm the destination of this bin's NEXT flush while the local bin
	// refills — the only access distance long enough for a software prefetch
	// to beat the hardware prefetcher across the bin-strided global arena.
	// No-op on purego/non-amd64 builds; cannot affect results.
	if end := next + int64(n); end <= int64(len(keys)) {
		simd.PrefetchRangeT0(unsafe.Pointer(&keys[next]), int(n)*4)
	}
}

func (l *kv[V]) sortSeg(e *engine, s sortSeg) {
	keys := e.ws.tupleKeys[s.start:s.end]
	vals := l.tupleVals[s.start:s.end]
	n := s.end - s.start
	auxK := e.scratchKeysFor(s.worker, n)
	auxV := l.scratchValsFor(e, s.worker, n)
	if s.arg < 0 {
		radix.SortKeys32Scratch(keys, vals, auxK, auxV, e.batch)
	} else {
		radix.SortKeys32BitsScratch(keys, vals, auxK, auxV, s.arg, e.batch)
	}
}

func (l *kv[V]) scratchValsFor(e *engine, w int, n int64) []V {
	off := int64(w) * e.scratchStride
	return l.scratchVals[off : off+n]
}

func (l *kv[V]) partitionTop(e *engine, worker int, lo, hi int64, bounds []int64) (int, int) {
	n := hi - lo
	return radix.PartitionTop32Scratch(e.ws.tupleKeys[lo:hi], l.tupleVals[lo:hi],
		e.scratchKeysFor(worker, n), l.scratchValsFor(e, worker, n), bounds, e.batch)
}

func (l *kv[V]) fuseBin(e *engine, worker int, lo, hi int64) int64 {
	n := hi - lo
	return radix.SortKeys32FusedScratch(e.ws.tupleKeys[lo:hi], l.tupleVals[lo:hi],
		e.scratchKeysFor(worker, n), l.scratchValsFor(e, worker, n), e.batch)
}

// compressBin is the paper's two-pointer in-place merge over the split
// layout: p1 walks the sorted tuples, p2 tracks the write position; equal
// keys fold their values into the tuple at p2.
func (l *kv[V]) compressBin(e *engine, lo, hi int64) int64 {
	keys := e.ws.tupleKeys[lo:hi]
	vals := l.tupleVals[lo:hi]
	if len(keys) == 0 {
		return 0
	}
	p2 := 0
	for p1 := 1; p1 < len(keys); p1++ {
		if keys[p1] == keys[p2] {
			vals[p2] += vals[p1]
			continue
		}
		p2++
		keys[p2] = keys[p1]
		vals[p2] = vals[p1]
	}
	return int64(p2 + 1)
}

func (l *kv[V]) appendRun(e *engine, src, n int64) {
	e.ws.runKeys = append(e.ws.runKeys, e.ws.tupleKeys[src:src+n]...)
	l.runVals = append(l.runVals, l.tupleVals[src:src+n]...)
}

func (l *kv[V]) growMerged(e *engine, n int64) {
	radix.GrowUint32(&e.ws.mergedKeys, n)
	growVals(&l.mergedVals, n)
}

// mergeBin is mergeBinWide over the split run arena; see mergeBinWide for
// the merge invariants (runs individually duplicate-free, compare against
// the last written tuple).
func (l *kv[V]) mergeBin(e *engine, worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dstBase := ws.mergedStart[bin]
	dst := dstBase

	switch k {
	case 0:
		ws.binOut[bin] = 0
		return
	case 1:
		r := group[0]
		n := ws.runStart[r+1] - ws.runStart[r]
		copy(ws.mergedKeys[dst:dst+n], ws.runKeys[ws.runStart[r]:ws.runStart[r+1]])
		copy(l.mergedVals[dst:dst+n], l.runVals[ws.runStart[r]:ws.runStart[r+1]])
		dst += n
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		for {
			best := -1
			var bestKey uint32
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue // run exhausted
				}
				if key := ws.runKeys[h]; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			h := heads[best]
			heads[best]++
			if dst > dstBase && ws.mergedKeys[dst-1] == ws.runKeys[h] {
				l.mergedVals[dst-1] += l.runVals[h]
			} else {
				ws.mergedKeys[dst] = ws.runKeys[h]
				l.mergedVals[dst] = l.runVals[h]
				dst++
			}
		}
	}
	ws.binOut[bin] = dst - dstBase
	firstRow := int32(int64(bin) << e.rowShift)
	for i := dstBase; i < dst; i++ {
		row := firstRow + int32(ws.mergedKeys[i]>>e.colBits)
		ws.rowCounts[row+1]++
	}
}

func (l *kv[V]) emitMergeBin(e *engine, c *matrix.CSR, binOutStart []int64, worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dst := binOutStart[bin]
	cm := uint32(uint64(1)<<e.colBits - 1)
	out := l.out
	switch k {
	case 0:
	case 1:
		r := group[0]
		s := ws.runStart[r]
		n := ws.runStart[r+1] - s
		for j := int64(0); j < n; j++ {
			c.ColIdx[dst+j] = int32(ws.runKeys[s+j] & cm)
			out[dst+j] = l.runVals[s+j]
		}
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		var emitted int64
		var last uint32
		for {
			best := -1
			var bestKey uint32
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue
				}
				if key := ws.runKeys[h]; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			v := l.runVals[heads[best]]
			heads[best]++
			if emitted > 0 && bestKey == last {
				out[dst+emitted-1] += v
			} else {
				c.ColIdx[dst+emitted] = int32(bestKey & cm)
				out[dst+emitted] = v
				emitted++
				last = bestKey
			}
		}
	}
}

func (l *kv[V]) unpackBin(e *engine, c *matrix.CSR, merged bool, srcOff, dstOff, n int64) {
	keys, vals := e.ws.tupleKeys, l.tupleVals
	if merged {
		keys, vals = e.ws.mergedKeys, l.mergedVals
	}
	cm := uint32(uint64(1)<<e.colBits - 1)
	out := l.out
	for j := int64(0); j < n; j++ {
		c.ColIdx[dstOff+j] = int32(keys[srcOff+j] & cm)
		out[dstOff+j] = vals[srcOff+j]
	}
}

func (l *kv[V]) growOut(e *engine, c *matrix.CSR, nnzc int64) {
	if e.shared {
		l.out = growVals(&l.outVal, nnzc)
	} else {
		l.out = make([]V, nnzc)
	}
}

func (l *kv[V]) touchRange(e *engine, lo, hi int64) {
	touchPages(e.ws.tupleKeys[lo:hi])
	touchPages(l.tupleVals[lo:hi])
}

// ---------------------------------------------------------------------------
// patternOps: the 4-byte key-only layout.

type patternOps struct{}

func (patternOps) growTuples(e *engine, n int64) { radix.GrowUint32(&e.ws.tupleKeys, n) }
func (patternOps) growLocals(e *engine, n int64) { radix.GrowUint32(&e.ws.localKeys, n) }
func (patternOps) resetRuns(e *engine)           {}

// expandRange is the key-only expansion: same walk, no value multiply — the
// tuple IS its packed key, and a flush moves one plane.
func (patternOps) expandRange(e *engine, t, lo int, cursors []int64) {
	a, b := e.a, e.b
	nbins := int32(e.nbins)
	capT := e.localCap
	shift, mask, colBits := e.rowShift, e.rowMask, e.colBits
	stride := int64(e.nbins) * int64(capT)
	bufK := e.ws.localKeys[int64(t)*stride : int64(t+1)*stride]
	lens := e.ws.localLens[t*e.nbins : (t+1)*e.nbins]
	keys := e.ws.tupleKeys
	batch := e.batch
	nt := e.ntFlush

	var sincePoll int64
	for i := lo + e.ws.colBounds[t]; i < lo+e.ws.colBounds[t+1]; i++ {
		bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
		if bLo == bHi {
			continue
		}
		// Per-column cancellation poll, matching expandRangeWide.
		if faultinject.Enabled {
			faultinject.Fire(faultinject.SiteExpandColumn, t)
		}
		if sincePoll >= cancelPollTuples {
			sincePoll = 0
			if e.pollCancel() {
				return
			}
		}
		sincePoll += int64(bHi-bLo) * (a.ColPtr[i+1] - a.ColPtr[i])
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			r := uint32(a.RowIdx[p])
			bin := int32(r >> shift)
			localRow := (r & mask) << colBits
			base := int64(bin) * int64(capT)
			ln := lens[bin]
			// Chunked like kv.expandRange: flush boundaries match the
			// per-element loop exactly.
			for q := bLo; q < bHi; {
				if ln == capT {
					lens[bin] = ln
					flushLocalPattern(bin, bufK, lens, keys, cursors, capT, nt)
					ln = 0
				}
				take := bHi - q
				if room := int64(capT - ln); take > room {
					take = room
				}
				dk := bufK[base+int64(ln) : base+int64(ln)+take]
				if batch {
					simd.ExpandK(dk, localRow, b.ColIdx[q:q+take])
				} else {
					simd.ExpandKScalar(dk, localRow, b.ColIdx[q:q+take])
				}
				ln += int32(take)
				q += take
			}
			lens[bin] = ln
		}
	}
	for bin := int32(0); bin < nbins; bin++ {
		flushLocalPattern(bin, bufK, lens, keys, cursors, capT, nt)
	}
}

func flushLocalPattern(bin int32, bufK []uint32, lens []int32,
	keys []uint32, cursors []int64, capT int32, nt bool) {

	n := lens[bin]
	if n == 0 {
		return
	}
	off := cursors[bin]
	next := off + int64(n)
	cursors[bin] = next
	base := int64(bin) * int64(capT)
	if nt && simd.HasNT {
		simd.NTCopyBytes(unsafe.Pointer(&keys[off]), unsafe.Pointer(&bufK[base]), int(n)*4)
		lens[bin] = 0
		return
	}
	copy(keys[off:next], bufK[base:base+int64(n)])
	lens[bin] = 0
	if end := next + int64(n); end <= int64(len(keys)) {
		simd.PrefetchRangeT0(unsafe.Pointer(&keys[next]), int(n)*4)
	}
}

func (patternOps) growScratch(e *engine, total int64) {
	radix.GrowUint32(&e.ws.scratchKeys, total)
}

func (patternOps) sortSeg(e *engine, s sortSeg) {
	keys := e.ws.tupleKeys[s.start:s.end]
	aux := e.scratchKeysFor(s.worker, s.end-s.start)
	if s.arg < 0 {
		radix.SortKeys32PatternScratch(keys, aux, e.batch)
	} else {
		radix.SortKeys32BitsPatternScratch(keys, aux, s.arg, e.batch)
	}
}

func (patternOps) partitionTop(e *engine, worker int, lo, hi int64, bounds []int64) (int, int) {
	return radix.PartitionTop32PatternScratch(e.ws.tupleKeys[lo:hi],
		e.scratchKeysFor(worker, hi-lo), bounds, e.batch)
}

func (patternOps) fuseBin(e *engine, worker int, lo, hi int64) int64 {
	return radix.SortKeys32FusedPatternScratch(e.ws.tupleKeys[lo:hi],
		e.scratchKeysFor(worker, hi-lo), e.batch)
}

// compressBin's fold over the pattern layout is deduplication: equal keys
// keep one tuple, no value to sum.
func (patternOps) compressBin(e *engine, lo, hi int64) int64 {
	keys := e.ws.tupleKeys[lo:hi]
	if len(keys) == 0 {
		return 0
	}
	p2 := 0
	for p1 := 1; p1 < len(keys); p1++ {
		if keys[p1] == keys[p2] {
			continue
		}
		p2++
		keys[p2] = keys[p1]
	}
	return int64(p2 + 1)
}

func (patternOps) appendRun(e *engine, src, n int64) {
	e.ws.runKeys = append(e.ws.runKeys, e.ws.tupleKeys[src:src+n]...)
}

func (patternOps) growMerged(e *engine, n int64) { radix.GrowUint32(&e.ws.mergedKeys, n) }

// mergeBin k-way merges one bin's key-only runs, dropping duplicates.
func (patternOps) mergeBin(e *engine, worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dstBase := ws.mergedStart[bin]
	dst := dstBase

	switch k {
	case 0:
		ws.binOut[bin] = 0
		return
	case 1:
		r := group[0]
		n := ws.runStart[r+1] - ws.runStart[r]
		copy(ws.mergedKeys[dst:dst+n], ws.runKeys[ws.runStart[r]:ws.runStart[r+1]])
		dst += n
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		for {
			best := -1
			var bestKey uint32
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue // run exhausted
				}
				if key := ws.runKeys[h]; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			h := heads[best]
			heads[best]++
			if dst > dstBase && ws.mergedKeys[dst-1] == ws.runKeys[h] {
				continue // duplicate key across panels: structural fold
			}
			ws.mergedKeys[dst] = ws.runKeys[h]
			dst++
		}
	}
	ws.binOut[bin] = dst - dstBase
	firstRow := int32(int64(bin) << e.rowShift)
	for i := dstBase; i < dst; i++ {
		row := firstRow + int32(ws.mergedKeys[i]>>e.colBits)
		ws.rowCounts[row+1]++
	}
}

func (patternOps) emitMergeBin(e *engine, c *matrix.CSR, binOutStart []int64, worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dst := binOutStart[bin]
	cm := uint32(uint64(1)<<e.colBits - 1)
	switch k {
	case 0:
	case 1:
		r := group[0]
		s := ws.runStart[r]
		n := ws.runStart[r+1] - s
		for j := int64(0); j < n; j++ {
			c.ColIdx[dst+j] = int32(ws.runKeys[s+j] & cm)
		}
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		var emitted int64
		var last uint32
		for {
			best := -1
			var bestKey uint32
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue
				}
				if key := ws.runKeys[h]; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			heads[best]++
			if emitted > 0 && bestKey == last {
				continue
			}
			c.ColIdx[dst+emitted] = int32(bestKey & cm)
			emitted++
			last = bestKey
		}
	}
}

func (patternOps) unpackBin(e *engine, c *matrix.CSR, merged bool, srcOff, dstOff, n int64) {
	keys := e.ws.tupleKeys
	if merged {
		keys = e.ws.mergedKeys
	}
	cm := uint32(uint64(1)<<e.colBits - 1)
	for j := int64(0); j < n; j++ {
		c.ColIdx[dstOff+j] = int32(keys[srcOff+j] & cm)
	}
}

func (patternOps) growOut(e *engine, c *matrix.CSR, nnzc int64) {
	// Pattern results are structural: c.Val stays nil by design.
}

func (patternOps) touchRange(e *engine, lo, hi int64) { touchPages(e.ws.tupleKeys[lo:hi]) }
