// Package core implements PB-SpGEMM, the paper's contribution: an
// outer-product sparse matrix-matrix multiplication that saturates memory
// bandwidth using propagation blocking (Algorithm 2).
//
// The multiplication C = A*B runs in four phases:
//
//  1. Symbolic (Algorithm 3): count flop = Σ_i nnz(A(:,i))·nnz(B(i,:)) by
//     streaming only the pointer arrays of A (CSC) and B (CSR), choose the
//     number of bins so each global bin fits the L2 cache during sorting, and
//     allocate the expanded-tuple storage in one shot.
//  2. Expand: each thread walks a flop-balanced contiguous range of columns
//     of A, forms outer products A(:,i)·B(i,:), and propagation-blocks the
//     resulting (rowid, colid, value) tuples: tuples are appended to small
//     thread-private local bins (default 512 B, Fig. 5) that are flushed to
//     their global bin with a bulk copy when full, so global-memory writes
//     always move full cache lines.
//  3. Sort: each global bin is sorted independently (bins per thread,
//     dynamic schedule) with an in-place American-flag radix sort on packed
//     keys localRow<<colBits|colid. Because local row ids are small, high
//     key bytes are zero and the sorter performs the few passes a squeezed
//     4-byte key would need (Section III-D).
//  4. Compress: the paper's two-pointer in-place merge sums tuples with
//     equal keys; a final parallel pass assembles canonical CSR (bins cover
//     disjoint, ordered row ranges, so concatenating compressed bins is
//     already CSR order).
//
// Two execution-engine extensions go beyond the paper's single-shot design:
//
//   - A Workspace pools the tuple buffer, local bins and all plan arrays
//     across calls (grow-only), so repeated multiplications run with zero
//     steady-state heap allocations instead of re-allocating the
//     flops×16-byte expansion every call.
//   - Options.MemoryBudgetBytes tiles A's columns into panels whose expanded
//     tuples fit the budget; each panel runs expand-sort-compress into
//     per-bin sorted runs, and a final k-way merge per bin folds the runs
//     into the same canonical CSR the single-shot path produces. This serves
//     products whose flops×16 expansion exceeds RAM.
package core

import (
	"fmt"
	"math/bits"
	"time"
	"unsafe"

	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/numa"
	"pbspgemm/internal/par"
	"pbspgemm/internal/radix"
	"pbspgemm/internal/simd"
)

// DefaultLocalBinBytes is the paper's default local-bin width: 512 bytes =
// 32 tuples of 16 bytes (Section V-A, Fig. 6a).
const DefaultLocalBinBytes = 512

// DefaultL2CacheBytes is the sort-phase cache budget per bin. The paper uses
// the L2 size of the evaluation machines (1 MiB on Skylake, 512 KiB/2 cores
// on POWER9); 1 MiB is our default.
const DefaultL2CacheBytes = 1 << 20

// Layout identifies the expanded-tuple representation of a run. The paper's
// Section III-D key squeezing observes that the packed key localRow<<colBits
// | col fits 4 bytes whenever localRowBits + colBits ≤ 32; because bins make
// localRow small, that holds for almost every real matrix, and the engine
// then stores tuples as parallel arrays (uint32 keys + float64 values, 12
// bytes per tuple) instead of 16-byte radix.Pairs — cutting the traffic of
// the two dominant phases by a quarter.
type Layout int8

const (
	// LayoutAuto (the zero value) picks per run: squeezed when the key
	// geometry allows, wide otherwise.
	LayoutAuto Layout = iota
	// LayoutWide is the 16-byte AoS layout: []radix.Pair (u64 key + f64 val).
	LayoutWide
	// LayoutSqueezed is the 12-byte SoA layout: []uint32 keys + []float64
	// values. Selected automatically when localRowBits + colBits ≤ 32.
	LayoutSqueezed
	// LayoutNarrow is the 8-byte SoA layout: []uint32 keys + a 4-byte value
	// plane (float32 or int32). Only the MultiplyNarrow entry runs it, and
	// only when localRowBits + colBits ≤ 32.
	LayoutNarrow
	// LayoutPattern is the 4-byte key-only layout of structural products:
	// tuples are bare []uint32 keys, folding is deduplication, and the result
	// CSR has no Val array. Only the MultiplyPattern entry runs it, under the
	// same ≤ 32-bit key requirement.
	LayoutPattern
)

func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutWide:
		return "wide"
	case LayoutSqueezed:
		return "squeezed"
	case LayoutNarrow:
		return "narrow"
	case LayoutPattern:
		return "pattern"
	}
	return fmt.Sprintf("Layout(%d)", int8(l))
}

// Per-tuple byte costs of the layouts — the b of the paper's traffic model
// (Eq. 4 / Table III), now per run.
const (
	// WideTupleBytes is radix.Pair: an 8-byte packed key plus an 8-byte value.
	WideTupleBytes = 16
	// SqueezedTupleBytes is the parallel-array layout: a 4-byte key plus an
	// 8-byte value.
	SqueezedTupleBytes = 12
	// NarrowTupleBytes is the narrow parallel-array layout: a 4-byte key plus
	// a 4-byte value.
	NarrowTupleBytes = 8
	// PatternTupleBytes is the key-only layout: the 4-byte key is the tuple.
	PatternTupleBytes = 4
)

// TupleBytes returns the per-tuple byte cost of a concrete layout (0 for
// LayoutAuto, which is a request, not a layout).
func (l Layout) TupleBytes() int64 {
	switch l {
	case LayoutWide:
		return WideTupleBytes
	case LayoutSqueezed:
		return SqueezedTupleBytes
	case LayoutNarrow:
		return NarrowTupleBytes
	case LayoutPattern:
		return PatternTupleBytes
	}
	return 0
}

// tupleBytes is the conservative (wide) per-tuple cost used wherever sizing
// must not depend on the layout decision itself: panel tiling against
// MemoryBudgetBytes and the bin-count derivation both use it, so the bin
// geometry — and therefore the squeeze decision it feeds — is identical for
// both layouts.
const tupleBytes = WideTupleBytes

// Options tunes PB-SpGEMM. The zero value selects the paper's defaults.
type Options struct {
	// NBins forces the number of global bins; 0 derives it from flop and
	// L2CacheBytes as the symbolic phase does (Algorithm 3 line 6).
	NBins int
	// LocalBinBytes is the width of each thread-private local bin; 0 means
	// DefaultLocalBinBytes (512).
	LocalBinBytes int
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// L2CacheBytes is the per-bin cache budget used to auto-size NBins;
	// 0 means DefaultL2CacheBytes.
	L2CacheBytes int
	// MemoryBudgetBytes caps the expanded-tuple buffer — the flops×16-byte
	// working set that dominates PB-SpGEMM's footprint. When positive and
	// smaller than flops×16, A's columns are tiled into panels whose
	// expanded tuples each fit the budget, and per-panel compressed runs are
	// k-way merged into the final CSR. 0 means unlimited (one panel, the
	// paper's single-shot algorithm). The budget is best-effort: one column
	// of A is the smallest schedulable unit, so a single column whose outer
	// product alone exceeds the budget still runs as its own panel.
	MemoryBudgetBytes int64
	// Workspace, if non-nil, supplies grow-only pooled buffers reused across
	// calls (zero steady-state allocations when Threads == 1). The returned
	// CSR and Stats then alias workspace memory and are invalidated by the
	// next call using the same workspace.
	Workspace *Workspace
	// Cancel, if non-nil, is polled at phase boundaries and inside the long
	// phase loops: per column chunk in expand (every ~cancelPollTuples
	// expanded tuples), per task in sort, per bin in fold/merge/assemble,
	// and per run in the budgeted panel merge. A non-nil return aborts the
	// multiplication with that error; workers drain to the next poll before
	// the join, so no goroutines leak. The public API wires
	// context.Context.Err here.
	Cancel func() error
	// ForceLayout pins the expanded-tuple layout, for tests, ablations and
	// benchmarks. LayoutAuto (the zero value) squeezes whenever
	// localRowBits + colBits ≤ 32; LayoutWide always runs 16-byte tuples;
	// LayoutSqueezed is honored only when the key geometry allows it and
	// falls back to wide otherwise (keys are never truncated). Stats.Layout
	// reports the layout actually used.
	ForceLayout Layout
	// DisableFusion runs the three-pass sort → compress → assemble pipeline
	// instead of the default fused one (the sort's last pass folds equal
	// keys and the budgeted merge emits straight into the final CSR; see
	// fused.go). Output is bit-identical either way; the switch exists for
	// ablations, equivalence tests and benchmarks. Stats.Fused reports the
	// mode actually run.
	DisableFusion bool
	// DisableBatch runs the portable scalar kernels instead of the batched
	// (unsafe, pointer-stepped) implementations of the expand/scatter/fold
	// inner loops in internal/simd. Output is bit-identical either way — the
	// scalar kernels are the batched ones's oracle — so the switch exists for
	// ablations, equivalence tests and debugging. Builds with the purego tag
	// run scalar regardless. Stats.Kernel reports the kernel set actually
	// used.
	DisableBatch bool
	// NUMA injects a machine topology (tests and ablations); nil discovers
	// the host's once per process (sysfs on Linux). NUMA-aware execution —
	// worker pinning, first-touch bin placement, near-first stealing; see
	// numaplan.go — activates only when the machine has more than one
	// CPU-bearing node, the run is multi-threaded, and the topology is real
	// (discovered or injected, not the Table VII fallback model).
	NUMA *numa.Machine
}

func (o Options) withDefaults() Options {
	if o.LocalBinBytes <= 0 {
		o.LocalBinBytes = DefaultLocalBinBytes
	}
	if o.L2CacheBytes <= 0 {
		o.L2CacheBytes = DefaultL2CacheBytes
	}
	o.Threads = par.DefaultThreads(o.Threads)
	return o
}

// Stats records per-phase timings and the paper's per-phase traffic model
// (Table III), from which sustained bandwidth per phase is derived.
type Stats struct {
	Symbolic, Expand, Sort, Compress, Assemble time.Duration
	// Fuse is the fused sort+fold phase (default pipeline): it subsumes Sort
	// and Compress, which stay zero on fused runs. Unfused runs
	// (Options.DisableFusion) leave Fuse zero and report Sort/Compress as
	// before.
	Fuse time.Duration
	// Merge is the time spent k-way merging per-bin runs; nonzero only on
	// budgeted (multi-panel) runs. On fused runs it covers both the counting
	// and the emitting walk of the merge-into-CSR.
	Merge time.Duration
	Total time.Duration

	Flops int64 // multiplications performed (nnz of C-hat)
	NNZC  int64 // nonzeros in the final C
	NBins int   // global bins used
	// NPanels is the number of column panels the run was tiled into
	// (1 unless MemoryBudgetBytes forced tiling).
	NPanels int
	CF      float64

	// Layout is the expanded-tuple layout the run used: LayoutSqueezed
	// (12-byte u32-key parallel arrays, whenever localRowBits+colBits ≤ 32)
	// or LayoutWide (16-byte radix.Pairs).
	Layout Layout
	// TupleBytes is the per-tuple byte cost of that layout (12 or 16) — the
	// b entering the traffic model below.
	TupleBytes int64
	// Fused reports whether the run used the fused pipeline (the default;
	// see Options.DisableFusion). Fused runs account the sort/compress
	// traffic under Fuse/FusedBytes instead of Sort/Compress.
	Fused bool
	// Kernel names the inner-loop kernel set the run used: "scalar" when
	// Options.DisableBatch forced the portable loops, otherwise
	// internal/simd's dispatch level ("batched", "batched+goamd64v3", or
	// "purego" on builds with that tag).
	Kernel string
	// NUMANodes is the number of memory nodes the run scheduled for: 1 when
	// NUMA awareness was inactive (single node, single thread, or fallback
	// topology), the machine's node count otherwise.
	NUMANodes int

	// Sort-phase work-stealing counters (multi-threaded runs; summed over
	// panels on budgeted runs). SortOwned counts tasks a worker popped from
	// its own deque, SortStolen tasks taken from another worker's, and
	// SortNearStolen the stolen subset that stayed on the thief's NUMA node
	// (always 0 when NUMA awareness is inactive).
	SortOwned, SortStolen, SortNearStolen int64

	// Traffic model (bytes), following Eq. 4 / Table III with the per-run
	// tuple cost: expand reads both inputs (16 B per stored nonzero) and
	// writes flop tuples at TupleBytes each. Unfused runs then charge the
	// sort's read-back (SortBytes) and the compress write (CompressBytes);
	// fused runs charge only FusedBytes = TupleBytes·flop — the single
	// read-back of the expanded tuples — because folding happens in the
	// sort's cache-resident last pass and the compress write never goes to
	// memory as a separate sweep. The per-field split keeps measured GB/s
	// honest per phase; zero fields belong to the mode not run.
	ExpandBytes, SortBytes, CompressBytes, FusedBytes int64
}

// ExpandGBs returns the expand-phase sustained bandwidth in GB/s.
func (s *Stats) ExpandGBs() float64 { return gbs(s.ExpandBytes, s.Expand) }

// SortGBs returns the sort-phase sustained bandwidth in GB/s.
func (s *Stats) SortGBs() float64 { return gbs(s.SortBytes, s.Sort) }

// CompressGBs returns the compress-phase sustained bandwidth in GB/s.
func (s *Stats) CompressGBs() float64 { return gbs(s.CompressBytes, s.Compress) }

// FuseGBs returns the fused sort+fold phase's sustained bandwidth in GB/s
// (zero on unfused runs).
func (s *Stats) FuseGBs() float64 { return gbs(s.FusedBytes, s.Fuse) }

// OverallGBs returns total modeled traffic divided by total time.
func (s *Stats) OverallGBs() float64 {
	return gbs(s.ExpandBytes+s.SortBytes+s.CompressBytes+s.FusedBytes, s.Total)
}

// GFLOPS returns the end-to-end performance in the paper's metric.
func (s *Stats) GFLOPS() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Total.Seconds() / 1e9
}

func gbs(bytes int64, d time.Duration) float64 {
	sec := d.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(bytes) / sec / 1e9
}

// engine is the per-call execution state. It lives inside the Workspace so
// that the parallel paths' closures (which capture the engine pointer) never
// force a per-call heap allocation, and so the Threads==1 paths touch no
// allocator at all in steady state.
type engine struct {
	a      *matrix.CSC
	b      *matrix.CSR
	opt    Options
	ws     *Workspace
	shared bool // ws is caller-owned: pool result CSR and Stats too

	flops         int64
	maxPanelFlops int64 // largest single panel's flop count
	nbins         int
	npanels       int
	rowShift      uint   // bin = row>>rowShift (shift/mask replaces division; rows per bin = 1<<rowShift)
	rowMask       uint32 // localRow = row&rowMask
	colBits       uint
	want          Layout        // layout the entry point requested (Auto for Multiply)
	layout        Layout        // concrete layout planBins resolved for this run
	key32         bool          // layout packs keys into uint32 (everything but wide)
	lay           layoutOps     // per-layout element accesses (layout.go)
	fused         bool          // fused sort→compress→assemble pipeline (see fused.go)
	emitMerge     bool          // budgeted fused merge emits into the final CSR (shallow k)
	tupleBytes    int64         // per-tuple cost of layout (16/12/8/4)
	localCap      int32         // tuples per thread-private local bin
	maxRunsPerBin int           // k of the k-way merge (budgeted path)
	batch         bool          // use internal/simd's batched kernels (vs scalar oracle)
	ntFlush       bool          // stream bin flushes with non-temporal stores (per panel)
	scratchStride int64         // per-worker stride into the sort scratch planes
	numaM         *numa.Machine // non-nil only when NUMA-aware execution is active
	workerNodes   []int         // worker→node assignment (nil when numaM is)

	// Fault containment and sub-phase cancellation (fault.go). phase names
	// the running phase for error annotation (written between phases on the
	// calling goroutine, read by workers it spawns). The abort latch is
	// plain uint32s driven with sync/atomic functions — the engine is reset
	// by struct assignment, so it can hold no sync/atomic struct types.
	phase      string
	abortLatch uint32 // writer election for abortErr
	abortSeen  uint32 // stop flag the sub-phase polls read
	abortErr   error  // first abort reason; read after a phase join

	st *Stats
}

// Multiply computes C = A*B with PB-SpGEMM. A must be CSC and B CSR, the
// layouts the outer product streams naturally (Algorithm 2 takes exactly
// these). The returned stats are always non-nil. When opt.Workspace is set,
// the returned CSR and Stats alias workspace memory (Clone the CSR to keep
// it past the next call).
func Multiply(a *matrix.CSC, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	opt = opt.withDefaults()
	e, err := newEngine(a, b, opt, LayoutAuto)
	if err != nil {
		return nil, nil, err
	}
	return e.runContained()
}

// newEngine validates the shapes and binds the workspace-resident engine for
// one run requesting the given layout (LayoutAuto for the float64 entries;
// the pattern/narrow entries pass their layout). opt must already have
// defaults applied.
func newEngine(a *matrix.CSC, b *matrix.CSR, opt Options, want Layout) (*engine, error) {
	if a.NumCols != b.NumRows {
		return nil, fmt.Errorf("core: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	ws := opt.Workspace
	shared := ws != nil
	if !shared {
		ws = &Workspace{}
	} else if ws.poisoned {
		// The previous run on this workspace panicked mid-phase; rather than
		// validate every pooled plane against partial state, discard them all
		// and regrow. Correct runs never set the flag, so the steady-state
		// zero-allocation property is untouched.
		*ws = Workspace{}
	}
	e := &ws.eng
	*e = engine{a: a, b: b, opt: opt, ws: ws, shared: shared, want: want}
	if shared {
		ws.stats = Stats{}
		e.st = &ws.stats
	} else {
		e.st = &Stats{}
	}
	return e, nil
}

// finish is every entry point's epilogue: capture the stats pointer and drop
// the references that would let a long-lived workspace pin input matrices.
func (e *engine) finish(c *matrix.CSR, err error) (*matrix.CSR, *Stats, error) {
	st := e.st
	e.a, e.b, e.st, e.lay = nil, nil, nil, nil
	e.ws.kvF64.aVal, e.ws.kvF64.bVal = nil, nil
	if err != nil {
		return nil, nil, err
	}
	return c, st, nil
}

// canceled is the phase-boundary check: the abort latch first (a sub-phase
// poll or a contained worker panic may have fired mid-phase), then the
// caller's cancellation hook. Cancellation errors come back wrapped with the
// interrupted phase (and %w, so sentinel matching survives); a latched
// *par.PanicError passes through untouched.
func (e *engine) canceled() error {
	if err := e.abortedErr(); err != nil {
		return e.wrapCancel(err)
	}
	if e.opt.Cancel == nil {
		return nil
	}
	if err := e.opt.Cancel(); err != nil {
		return e.wrapCancel(err)
	}
	return nil
}

func (e *engine) run() (*matrix.CSR, error) {
	totalStart := time.Now()

	t0 := time.Now()
	e.phase = "plan"
	e.fused = !e.opt.DisableFusion
	e.batch = simd.Enabled && !e.opt.DisableBatch
	if e.batch {
		e.st.Kernel = simd.Level()
	} else {
		e.st.Kernel = "scalar"
	}
	e.numaPlan()
	e.symbolic()
	e.planPanels()
	if err := e.planBins(); err != nil {
		return nil, err
	}
	e.bindLayout()
	e.st.Symbolic = time.Since(t0)
	e.st.Flops = e.flops
	e.st.NBins = e.nbins
	e.st.NPanels = e.npanels
	e.st.Fused = e.fused
	e.st.Layout = e.layout
	e.st.TupleBytes = e.tupleBytes

	if e.flops == 0 {
		c := e.newResult(0)
		e.st.Total = time.Since(totalStart)
		return c, nil
	}
	if err := e.canceled(); err != nil {
		return nil, err
	}

	var c *matrix.CSR
	var err error
	if e.npanels == 1 {
		c, err = e.runSingleShot()
	} else {
		c, err = e.runBudgeted()
	}
	if err != nil {
		return nil, err
	}
	// Count nnz(C) from the row pointers, not c.NNZ(): pattern results carry
	// no Val array, which NNZ() measures.
	e.st.NNZC = c.RowPtr[c.NumRows]
	// ExpandBytes counts the loads and stores the expand loop executes —
	// STREAM's own methodology, so pct_of_stream compares like with like.
	// Each stored nonzero of A is loaded once and held across its inner
	// loop (the float64 layouts stream index+value at the 16-byte COO cost,
	// narrow reads 4-byte values and pattern only the indices; sized from
	// the index arrays because narrow/pattern may pass nil Val). Each FLOP
	// then loads one B element (ColIdx plus the layout's value width) and
	// stores one tuple. This is partition-invariant: band splitting re-runs
	// the same loads, so any physical re-fetch of B between bands shows up
	// in measured time (and thus GB/s), not in counted bytes.
	inBytes := int64(matrix.BytesPerTuple)
	bRead := int64(12) // ColIdx (4 B) + float64 value (8 B)
	switch e.layout {
	case LayoutNarrow:
		inBytes = NarrowTupleBytes
		bRead = 8 // ColIdx + float32 value
	case LayoutPattern:
		inBytes = PatternTupleBytes
		bRead = 4 // ColIdx only
	}
	e.st.ExpandBytes = inBytes*int64(len(e.a.RowIdx)) + (bRead+e.tupleBytes)*e.flops
	if e.fused {
		e.st.FusedBytes = e.tupleBytes * e.flops
	} else {
		e.st.SortBytes = e.tupleBytes * e.flops
		e.st.CompressBytes = e.tupleBytes * e.st.NNZC
	}
	if e.st.NNZC > 0 {
		e.st.CF = float64(e.st.Flops) / float64(e.st.NNZC)
	}
	e.st.Total = time.Since(totalStart)
	return c, nil
}

// runSingleShot is the paper's algorithm: one panel covering all of A's
// columns, assemble from the tuple buffer. The default fused pipeline sorts,
// folds and counts each bin in one pass (fused.go); the unfused path keeps
// the paper's separate sort and compress phases.
func (e *engine) runSingleShot() (*matrix.CSR, error) {
	t0 := time.Now()
	e.panelPlan(0, int(e.a.NumCols))
	if faultinject.Enabled {
		faultinject.Fire(faultinject.SiteGrow, 0)
	}
	e.lay.growTuples(e, e.flops)
	e.st.Symbolic += time.Since(t0)

	t0 = time.Now()
	e.phase = "expand"
	e.expandPanel(0)
	e.st.Expand = time.Since(t0)
	if err := e.canceled(); err != nil {
		return nil, err
	}

	if e.fused {
		t0 = time.Now()
		e.phase = "sort"
		binOut := matrix.GrowInt64(&e.ws.binOut, e.nbins)
		rowCounts := matrix.GrowInt64Zero(&e.ws.rowCounts, int(e.a.NumRows)+1)
		e.runSortPhase(true, binOut, rowCounts)
		e.st.Fuse = time.Since(t0)
		if err := e.canceled(); err != nil {
			return nil, err
		}
	} else {
		t0 = time.Now()
		e.phase = "sort"
		e.runSortPhase(false, nil, nil)
		e.st.Sort = time.Since(t0)
		if err := e.canceled(); err != nil {
			return nil, err
		}

		t0 = time.Now()
		e.phase = "compress"
		binOut := matrix.GrowInt64(&e.ws.binOut, e.nbins)
		rowCounts := matrix.GrowInt64Zero(&e.ws.rowCounts, int(e.a.NumRows)+1)
		e.compressBins(binOut, rowCounts)
		e.st.Compress = time.Since(t0)
		if err := e.canceled(); err != nil {
			return nil, err
		}
	}

	t0 = time.Now()
	e.phase = "assemble"
	c := e.assemble(e.ws.binStart, false)
	e.st.Assemble = time.Since(t0)
	if err := e.canceled(); err != nil {
		return nil, err
	}
	return c, nil
}

// compressBins folds duplicates in every sorted bin of the current panel,
// recording per-bin output counts in binOut and (when rowCounts is non-nil)
// per-row tallies for assembly.
func (e *engine) compressBins(binOut, rowCounts []int64) {
	if e.opt.Threads == 1 {
		for bin := 0; bin < e.nbins; bin++ {
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteFoldBin, 0)
			}
			e.compressOneBin(bin, binOut, rowCounts)
		}
	} else {
		par.ForEachDynamic(e.nbins, e.opt.Threads, func(worker, bin int) {
			defer e.containWorker(worker)
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteFoldBin, worker)
			}
			e.compressOneBin(bin, binOut, rowCounts)
		})
	}
}

func (e *engine) compressOneBin(bin int, binOut, rowCounts []int64) {
	bs := e.ws.binStart
	n := e.lay.compressBin(e, bs[bin], bs[bin+1])
	binOut[bin] = n
	e.tallyRows(bs[bin], n, rowCounts, bin)
}

// tallyRows adds the per-row output counts of the folded tuples at
// [src, src+n) into rowCounts (nil skips the tally: the budgeted path counts
// during the final merge instead). Rows of a bin are touched by no other
// bin, so writing the shared slice without synchronization is safe. Keys are
// read from the shared key arena (all key32 layouts) or the wide pairs.
func (e *engine) tallyRows(src, n int64, rowCounts []int64, bin int) {
	if rowCounts == nil || n == 0 {
		return
	}
	firstRow := int32(int64(bin) << e.rowShift)
	cb := e.colBits
	if e.key32 {
		for _, k := range e.ws.tupleKeys[src : src+n] {
			rowCounts[firstRow+int32(k>>cb)+1]++
		}
	} else {
		ps := e.ws.tuples[src : src+n]
		for i := range ps {
			rowCounts[firstRow+int32(ps[i].Key>>cb)+1]++
		}
	}
}

// symbolic implements Algorithm 3's flop count: per-column flops from the
// pointer arrays only, plus the packed-key geometry.
func (e *engine) symbolic() {
	k := int(e.a.NumCols)
	cf := matrix.GrowInt64(&e.ws.colFlops, k)
	if e.opt.Threads == 1 {
		for i := 0; i < k; i++ {
			cf[i] = e.a.ColNNZ(int32(i)) * e.b.RowNNZ(int32(i))
		}
	} else {
		a, b := e.a, e.b
		par.ForRanges(k, e.opt.Threads, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				cf[i] = a.ColNNZ(int32(i)) * b.RowNNZ(int32(i))
			}
		})
	}
	var flops int64
	for _, f := range cf {
		flops += f
	}
	e.flops = flops
	e.colBits = colBitsFor(e.b.NumCols)
}

// planPanels tiles A's columns into contiguous panels whose expanded-tuple
// footprint (panel flops × 16 bytes) fits MemoryBudgetBytes. With no budget
// (or a budget the whole product fits) there is exactly one panel.
func (e *engine) planPanels() {
	k := int(e.a.NumCols)
	cf := e.ws.colFlops
	ps := e.ws.panelStart[:0]
	ps = append(ps, 0)
	budgetTuples := e.opt.MemoryBudgetBytes / tupleBytes
	if e.opt.MemoryBudgetBytes <= 0 || e.flops <= budgetTuples {
		ps = append(ps, k)
		e.maxPanelFlops = e.flops
	} else {
		var cur, maxf int64
		for i := 0; i < k; i++ {
			if cur > 0 && cur+cf[i] > budgetTuples {
				ps = append(ps, i)
				if cur > maxf {
					maxf = cur
				}
				cur = 0
			}
			cur += cf[i]
		}
		ps = append(ps, k)
		if cur > maxf {
			maxf = cur
		}
		e.maxPanelFlops = maxf
	}
	e.ws.panelStart = ps
	e.npanels = len(ps) - 1
}

// binGeometry is the bin shape planBinGeometry derives: nbins bins of
// 1<<rowShift rows each, exactly tiling [0, rows).
type binGeometry struct {
	nbins    int
	rowShift uint
}

// planBinGeometry derives the bin geometry (Algorithm 3 line 6) from the
// largest panel's flop count, so each panel's bins fit the L2 budget during
// sorting. rowsPerBin is rounded up to a power of two so the expand hot loop
// derives bin and local row with shift/mask instead of an integer division
// per flop; nbins is recomputed so bins still exactly tile the rows. Sizing
// always uses the wide 16-byte tuple cost, so the geometry (and the squeeze
// decision it feeds) never depends on the layout it produces.
func planBinGeometry(rows int32, maxPanelFlops int64, opt Options) binGeometry {
	// The auto value is capped at 2048: the paper uses 1K-2K bins in
	// practice (Section V-A) because each thread also keeps one local bin
	// per global bin, and nbins*LocalBinBytes must stay within the cache for
	// the expand phase to stream (Fig. 5). Callers can override with an
	// explicit NBins.
	const maxAutoBins = 2048
	nbins := opt.NBins
	if nbins <= 0 {
		nbins = int((maxPanelFlops*tupleBytes + int64(opt.L2CacheBytes) - 1) / int64(opt.L2CacheBytes))
		if nbins > maxAutoBins {
			nbins = maxAutoBins
		}
	}
	if nbins < 1 {
		nbins = 1
	}
	if int64(nbins) > int64(rows) && rows > 0 {
		nbins = int(rows)
	}
	rpb := (int64(rows) + int64(nbins) - 1) / int64(nbins)
	if rpb < 1 {
		rpb = 1
	}
	shift := uint(bits.Len64(uint64(rpb - 1))) // ceil(log2(rpb))
	rpb = int64(1) << shift
	if rows > 0 {
		nbins = int((int64(rows) + rpb - 1) / rpb)
	}
	return binGeometry{nbins: nbins, rowShift: shift}
}

// planBins fixes the run's bin geometry and tuple layout. Bins are fixed row
// ranges of A, identical across panels, which is what lets per-panel runs
// merge bin-by-bin. The error is non-nil only when the entry point demanded
// a 32-bit-key layout (pattern/narrow) the geometry cannot deliver.
func (e *engine) planBins() error {
	g := planBinGeometry(e.a.NumRows, e.maxPanelFlops, e.opt)
	e.nbins = g.nbins
	e.rowShift = g.rowShift
	e.rowMask = uint32(int64(1)<<g.rowShift - 1)

	// Section III-D key squeezing: the in-bin local row id needs rowShift
	// bits, so the packed key fits a uint32 — and the tuple any of the split
	// key32 layouts — whenever rowShift + colBits ≤ 32.
	fits := g.rowShift+e.colBits <= 32
	switch e.want {
	case LayoutPattern, LayoutNarrow:
		// The entry point is the layout: values are 4 bytes or absent, so
		// there is no wide fallback to widen into — a too-wide key is an
		// error, not a silent layout change.
		if !fits {
			return fmt.Errorf("core: %s layout needs localRowBits+colBits ≤ 32, got %d+%d: %w",
				e.want, g.rowShift, e.colBits, ErrKeyWidth)
		}
		e.layout = e.want
	default:
		e.layout = LayoutWide
		if fits {
			e.layout = LayoutSqueezed
		}
		switch e.opt.ForceLayout {
		case LayoutWide:
			e.layout = LayoutWide
		case LayoutSqueezed:
			// Best-effort: already squeezed when the geometry allows; a key
			// that needs more than 32 bits keeps the wide layout rather than
			// corrupt.
		case LayoutNarrow, LayoutPattern:
			return fmt.Errorf("core: ForceLayout %v requires the MultiplyNarrow/MultiplyPattern entry point", e.opt.ForceLayout)
		}
	}
	e.key32 = e.layout != LayoutWide
	e.tupleBytes = e.layout.TupleBytes()

	capT := int32(int64(e.opt.LocalBinBytes) / e.tupleBytes)
	if capT < 1 {
		capT = 1
	}
	e.localCap = capT
	return nil
}

// Key32Fits reports whether the bin geometry Multiply-family entries would
// derive for a product (rows of A, columns of B, total flops, opt's bin and
// budget settings) packs its keys into 32 bits — the gate for the squeezed,
// narrow and pattern layouts. internal/semiring uses it to decide whether a
// Boolean/float32/int32 multiplication can dispatch onto the fast path.
func Key32Fits(rows, bCols int32, flops int64, opt Options) bool {
	opt = opt.withDefaults()
	// A memory budget tiles the run into panels of ≈ budget/16 tuples and
	// the bin geometry follows the largest panel (planPanels packs columns
	// greedily to just under the budget; the one-column floor can exceed it
	// only when a single outer product does). Mirror that here so the
	// predicted layout matches the one a budgeted run executes.
	maxPanelFlops := flops
	if budgetTuples := opt.MemoryBudgetBytes / tupleBytes; opt.MemoryBudgetBytes > 0 && maxPanelFlops > budgetTuples {
		maxPanelFlops = budgetTuples
		if maxPanelFlops < 1 {
			maxPanelFlops = 1
		}
	}
	g := planBinGeometry(rows, maxPanelFlops, opt)
	return g.rowShift+colBitsFor(bCols) <= 32
}

// PlanLayout reports the tuple layout Multiply (the float64 entry) would
// pick for a product with rows output rows (rows of A), bCols output columns
// (columns of B) and the given total flop count, under opt's bin and budget
// settings. The public Auto planner uses it to model PB-SpGEMM's per-run
// traffic at 12 or 16 bytes per tuple before choosing an algorithm family;
// the pattern/narrow entries run at their own cost whenever Key32Fits.
func PlanLayout(rows, bCols int32, flops int64, opt Options) Layout {
	if opt.ForceLayout == LayoutWide {
		return LayoutWide
	}
	if Key32Fits(rows, bCols, flops, opt) {
		return LayoutSqueezed
	}
	return LayoutWide
}

// colBitsFor is the packed-key width of a column id for a B with bCols
// columns (at least 1 bit, matching symbolic()).
func colBitsFor(bCols int32) uint {
	cb := uint(bits.Len32(uint32(bCols)))
	if cb == 0 {
		cb = 1
	}
	return cb
}

// panelPlan computes per-bin flop counts for columns [lo, hi) of A with one
// pass over the panel's nonzeros, leaving the exclusive prefix in
// ws.binStart and flop-balanced thread boundaries (relative to lo) in
// ws.colBounds. The per-thread × per-bin counts are exact — each worker's
// expand range is fixed by colBounds — so they are converted in place into
// exclusive write offsets: thread t's tuples for bin b land at
// binStart[b] + Σ_{t'<t} count(t', b). Expand then needs no atomic cursors,
// flushes are plain copies into pre-reserved ranges, and the tuple order in
// every bin is the sequential column order at any thread count
// (contention-free, deterministic expand). Returns the panel's flop count.
func (e *engine) panelPlan(lo, hi int) int64 {
	nbins := e.nbins
	threads := e.opt.Threads
	binFlops := matrix.GrowInt64Zero(&e.ws.binFlops, nbins)
	e.ws.colBounds = par.BalancedBoundariesInto(
		e.ws.colFlops[lo:hi], threads, matrix.GrowInt(&e.ws.colBounds, threads+1))
	var pt []int64
	if threads == 1 {
		e.countPanelBins(lo, hi, binFlops)
	} else {
		pt = matrix.GrowInt64Zero(&e.ws.perThread, threads*nbins)
		a, b, shift := e.a, e.b, e.rowShift
		bounds := e.ws.colBounds
		par.ParallelRun(threads, func(t int) {
			local := pt[t*nbins : (t+1)*nbins]
			for i := lo + bounds[t]; i < lo+bounds[t+1]; i++ {
				bRow := b.RowNNZ(int32(i))
				if bRow == 0 {
					continue
				}
				for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
					local[uint32(a.RowIdx[p])>>shift] += bRow
				}
			}
		})
		for t := 0; t < threads; t++ {
			local := pt[t*nbins : (t+1)*nbins]
			for bin, c := range local {
				binFlops[bin] += c
			}
		}
	}
	total := par.PrefixSum(binFlops, matrix.GrowInt64(&e.ws.binStart, nbins+1))
	// Exclusive per-thread write offsets, computed in place over pt (the
	// counts are consumed as they are replaced). ws.cursors is scratch here;
	// with one thread it is reset below to binStart and used directly as the
	// single worker's cursor array.
	cursors := matrix.GrowInt64(&e.ws.cursors, nbins)
	copy(cursors, e.ws.binStart[:nbins])
	for t := 0; t < threads && pt != nil; t++ {
		local := pt[t*nbins : (t+1)*nbins]
		for bin, c := range local {
			local[bin] = cursors[bin]
			cursors[bin] += c
		}
	}
	copy(cursors, e.ws.binStart[:nbins])
	return total
}

func (e *engine) countPanelBins(lo, hi int, binFlops []int64) {
	a, b, shift := e.a, e.b, e.rowShift
	for i := lo; i < hi; i++ {
		bRow := b.RowNNZ(int32(i))
		if bRow == 0 {
			continue
		}
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			binFlops[uint32(a.RowIdx[p])>>shift] += bRow
		}
	}
}

// expandPanel runs the outer-product expansion with propagation blocking
// (Algorithm 2 lines 5–18) over the panel starting at column lo, writing
// into the tuple buffer at the offsets ws.binStart laid out. Global-bin
// space was exactly pre-sized by panelPlan, and each worker owns an
// exclusive pre-reserved range per bin (its row of ws.perThread), so a flush
// is a plain bulk copy (the paper's MemCopy) with no atomic reservation —
// contention-free, and the resulting tuple order is identical at any thread
// count.
func (e *engine) expandPanel(lo int) {
	threads := e.opt.Threads
	nbins := e.nbins
	localTuples := int64(threads) * int64(nbins) * int64(e.localCap)
	e.lay.growLocals(e, localTuples)
	lens := matrix.GrowInt32(&e.ws.localLens, threads*nbins)
	clear(lens)
	// Flush with non-temporal stores only when this panel's tuple arena
	// clearly outgrows the LLC: that is where a plain store's
	// read-for-ownership is real DRAM traffic NT stores avoid. On
	// cache-resident panels plain stores win (the lines stay cached for the
	// sort's read-back), so the threshold keeps small runs on the
	// copy()+prefetch path. Same bytes either way — bit-identity holds.
	e.ntFlush = e.batch && simd.HasNT &&
		e.ws.binStart[nbins]*e.tupleBytes >= ntMinArenaBytes
	// First-touch the panel's freshly grown bin ranges from their owning
	// nodes before any worker writes tuples (no-op when NUMA is inactive).
	e.firstTouchBins()
	if threads == 1 {
		// panelPlan left ws.cursors = binStart: the lone worker's cursors.
		e.lay.expandRange(e, 0, lo, e.ws.cursors)
		e.fenceFlushes()
	} else {
		pt := e.ws.perThread
		par.ParallelRun(threads, func(t int) {
			// containWorker (not the par-level recover) so a panicking
			// expand worker latches the abort and its siblings bail at
			// their next sub-phase poll instead of finishing their ranges.
			defer e.containWorker(t)
			defer e.pinWorker(t)()
			e.lay.expandRange(e, t, lo, pt[t*nbins:(t+1)*nbins])
			// NT flush stores are weakly ordered: fence before the join so
			// the sort phase (any worker) sees every tuple.
			e.fenceFlushes()
		})
	}
}

// fenceFlushes orders this worker's non-temporal flush stores before the
// phase join. No-op when the NT flush path is off.
func (e *engine) fenceFlushes() {
	if e.ntFlush && simd.HasNT {
		simd.StoreFence()
	}
}

// ntMinArenaBytes is the smallest per-panel tuple arena that flushes with
// non-temporal stores (expandPanel). 32 MiB sits safely above typical LLCs;
// a variable (not const) so tests can force the NT path on small inputs.
var ntMinArenaBytes int64 = 32 << 20

// expandRangeWide is one worker's share of expandPanel over the wide layout:
// the panel columns [lo+colBounds[t], lo+colBounds[t+1]). cursors is the
// worker's private per-bin write-position array, pre-seeded with its
// exclusive offsets. The kv and pattern layouts mirror it in layout.go.
func (e *engine) expandRangeWide(t, lo int, cursors []int64) {
	a, b := e.a, e.b
	nbins := int32(e.nbins)
	capT := e.localCap
	shift, mask, colBits := e.rowShift, e.rowMask, e.colBits
	// Offsets in int64: threads × nbins × capT can exceed int32 range.
	stride := int64(e.nbins) * int64(capT)
	buf := e.ws.locals[int64(t)*stride : int64(t+1)*stride]
	lens := e.ws.localLens[t*e.nbins : (t+1)*e.nbins]
	tuples := e.ws.tuples
	batch := e.batch
	nt := e.ntFlush

	// Sub-phase cancellation: poll every ~cancelPollTuples expanded tuples.
	// The counter costs two scalar ops per column — off the batched inner
	// loops, invisible to the bench gate.
	var sincePoll int64
	for i := lo + e.ws.colBounds[t]; i < lo+e.ws.colBounds[t+1]; i++ {
		bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
		if bLo == bHi {
			continue
		}
		if faultinject.Enabled {
			faultinject.Fire(faultinject.SiteExpandColumn, t)
		}
		if sincePoll >= cancelPollTuples {
			sincePoll = 0
			if e.pollCancel() {
				return
			}
		}
		sincePoll += int64(bHi-bLo) * (a.ColPtr[i+1] - a.ColPtr[i])
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			r := uint32(a.RowIdx[p])
			av := a.Val[p]
			bin := int32(r >> shift)
			localRow := uint64(r&mask) << colBits
			base := int64(bin) * int64(capT)
			ln := lens[bin]
			// Batched expansion in chunks of min(room, remaining); chunk
			// boundaries fall exactly where the per-element loop flushed, so
			// the global tuple order is unchanged (see kv.expandRange).
			for q := bLo; q < bHi; {
				if ln == capT {
					lens[bin] = ln
					flushLocalBin(bin, buf, lens, tuples, cursors, capT, nt)
					ln = 0
				}
				take := bHi - q
				if room := int64(capT - ln); take > room {
					take = room
				}
				dst := buf[base+int64(ln) : base+int64(ln)+take]
				radix.ExpandPairs(dst, localRow, b.ColIdx[q:q+take], b.Val[q:q+take], av, batch)
				ln += int32(take)
				q += take
			}
			lens[bin] = ln
		}
	}
	// Drain partially-filled local bins (Algorithm 2 lines 15–18).
	for bin := int32(0); bin < nbins; bin++ {
		flushLocalBin(bin, buf, lens, tuples, cursors, capT, nt)
	}
}

// flushLocalBin bulk-copies one thread-private local bin into the worker's
// pre-reserved range of the global bin and advances its private cursor.
// When nt is set (batched build, panel arena beyond LLC — see expandPanel)
// the copy streams past the cache with non-temporal stores: the flush
// destination is cold, and a plain store would pay a read-for-ownership for
// every line; expandPanel fences each worker after its last flush. Otherwise
// it keeps copy() plus a prefetch of this bin's next destination.
func flushLocalBin(bin int32, buf []radix.Pair, lens []int32,
	tuples []radix.Pair, cursors []int64, capT int32, nt bool) {

	n := lens[bin]
	if n == 0 {
		return
	}
	off := cursors[bin]
	next := off + int64(n)
	cursors[bin] = next
	base := int64(bin) * int64(capT)
	if nt && simd.HasNT {
		simd.NTCopyBytes(unsafe.Pointer(&tuples[off]), unsafe.Pointer(&buf[base]), int(n)*16)
		lens[bin] = 0
		return
	}
	copy(tuples[off:next], buf[base:base+int64(n)])
	lens[bin] = 0
	// Warm this bin's NEXT flush destination while the local bin refills
	// (no-op on purego/non-amd64 builds; cannot affect results).
	if end := next + int64(n); end <= int64(len(tuples)) {
		simd.PrefetchRangeT0(unsafe.Pointer(&tuples[next]), int(n)*16)
	}
}

// sortSeg is one unit of sort-phase work: tuples [start, end) of the current
// panel's buffer. arg < 0 marks a whole bin (the sorter derives its plan
// from the keys' OR); otherwise the segment is a bucket of a partitioned
// oversized bin and arg carries the remaining key bits (squeezed layout) or
// the next byte index (wide layout) to recurse at. The sort phase itself —
// fused or not — is scheduled by runSortPhase (fused.go) over a
// work-stealing queue, so oversized skewed bins are partitioned by whichever
// worker meets them and their buckets spread across the pool, instead of
// the partition passes serializing up front.
type sortSeg struct {
	start, end int64
	arg        int
	// worker is the executing worker's slot, selecting its private slice of
	// the sort-phase scratch planes (engine.scratchStride apart). Set by the
	// scheduler at execution time, not enqueue time: whoever steals the
	// segment sorts on their own scratch.
	worker int
}

// sortSplitCutoffTuples is the bin size (in tuples) past which the sort
// phase splits a bin across workers: twice the L2 cache budget a bin was
// sized for, measured at the run's post-squeeze per-tuple cost — 12 bytes
// when the layout squeezed, 16 wide — so "twice the cache" means the same
// number of resident BYTES for both layouts, not the same tuple count.
// Normal bins never split and only genuinely skewed ones (the auto cap at
// 2048 bins, or an explicit small NBins) fan out. A pure function of the
// two sizes so tests can pin the split decision per layout
// (TestSortSplitCutoffPerLayout).
func sortSplitCutoffTuples(tupleBytes, l2CacheBytes int64) int64 {
	c := 2 * l2CacheBytes / tupleBytes
	if c < 4096 {
		c = 4096
	}
	return c
}

func (e *engine) sortSplitCutoff() int64 {
	// e.tupleBytes is the run's actual layout cost (planBins), never the
	// layout-independent sizing constant tupleBytes.
	return sortSplitCutoffTuples(e.tupleBytes, int64(e.opt.L2CacheBytes))
}

// compressBinWide is the paper's two-pointer in-place merge (Section III-E)
// over the wide layout: p1 walks the sorted tuples, p2 tracks the write
// position; equal keys fold their values into the tuple at p2. Row tallies
// live in engine.tallyRows.
func compressBinWide(tuples []radix.Pair) int64 {
	if len(tuples) == 0 {
		return 0
	}
	p2 := 0
	for p1 := 1; p1 < len(tuples); p1++ {
		if tuples[p1].Key == tuples[p2].Key {
			tuples[p2].Val += tuples[p1].Val
			continue
		}
		p2++
		tuples[p2] = tuples[p1]
	}
	return int64(p2 + 1)
}

// assemble builds canonical CSR from the compressed bins of the active
// layout's source buffers: srcStart gives each bin's source offset, and
// merged selects the merged-run buffers (budgeted runs) over the tuple
// buffer (single-shot). Bins hold disjoint ascending row ranges and each bin
// is sorted, so compressed tuples are already in global CSR order; assembly
// is two prefix sums plus one parallel unpacking copy. ws.binOut and
// ws.rowCounts must be populated.
func (e *engine) assemble(srcStart []int64, merged bool) *matrix.CSR {
	binOut := e.ws.binOut
	binOutStart := matrix.GrowInt64(&e.ws.binOutStart, e.nbins+1)
	nnzc := par.PrefixSum(binOut, binOutStart)

	c := e.newResult(nnzc)
	// rowCounts[1:] holds per-row output counts; the parallel prefix turns
	// them into row pointers (identical to the sequential scan — integer
	// sums — and worth it on million-row outputs).
	par.PrefixSumParallel(e.ws.rowCounts[1:int(e.a.NumRows)+1], c.RowPtr, e.opt.Threads)
	if e.opt.Threads == 1 {
		for bin := 0; bin < e.nbins; bin++ {
			if e.pollCancel() {
				return c
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteAssembleBin, 0)
			}
			e.lay.unpackBin(e, c, merged, srcStart[bin], binOutStart[bin], binOut[bin])
		}
	} else {
		par.ForEachDynamic(e.nbins, e.opt.Threads, func(worker, bin int) {
			defer e.containWorker(worker)
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteAssembleBin, worker)
			}
			e.lay.unpackBin(e, c, merged, srcStart[bin], binOutStart[bin], binOut[bin])
		})
	}
	// An aborted assemble returns a partial c; the caller's post-phase
	// canceled() check discards it.
	return c
}

// newResult returns the output CSR: freshly allocated normally, or carved
// from the workspace's pooled output arrays when the workspace is shared.
// Value storage is the layout's call: the float64 layouts install c.Val,
// narrow fills its typed out plane (returned by MultiplyNarrow) and pattern
// leaves the result structural (nil Val).
func (e *engine) newResult(nnzc int64) *matrix.CSR {
	rows, cols := e.a.NumRows, e.b.NumCols
	var c *matrix.CSR
	if e.shared {
		ws := e.ws
		ws.out = matrix.CSR{
			NumRows: rows, NumCols: cols,
			RowPtr: matrix.GrowInt64Zero(&ws.outRowPtr, int(rows)+1),
			ColIdx: matrix.GrowInt32(&ws.outColIdx, int(nnzc)),
		}
		c = &ws.out
	} else {
		c = &matrix.CSR{
			NumRows: rows, NumCols: cols,
			RowPtr: make([]int64, int(rows)+1),
			ColIdx: make([]int32, nnzc),
		}
	}
	e.lay.growOut(e, c, nnzc)
	if e.layout == LayoutSqueezed {
		// kv[float64]'s out plane IS the result's Val: emit/unpack write one
		// destination and the public float64 contract is unchanged.
		c.Val = e.ws.kvF64.out
	}
	return c
}
