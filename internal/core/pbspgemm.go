// Package core implements PB-SpGEMM, the paper's contribution: an
// outer-product sparse matrix-matrix multiplication that saturates memory
// bandwidth using propagation blocking (Algorithm 2).
//
// The multiplication C = A*B runs in four phases:
//
//  1. Symbolic (Algorithm 3): count flop = Σ_i nnz(A(:,i))·nnz(B(i,:)) by
//     streaming only the pointer arrays of A (CSC) and B (CSR), choose the
//     number of bins so each global bin fits the L2 cache during sorting, and
//     allocate the expanded-tuple storage in one shot.
//  2. Expand: each thread walks a flop-balanced contiguous range of columns
//     of A, forms outer products A(:,i)·B(i,:), and propagation-blocks the
//     resulting (rowid, colid, value) tuples: tuples are appended to small
//     thread-private local bins (default 512 B, Fig. 5) that are flushed to
//     their global bin with a bulk copy when full, so global-memory writes
//     always move full cache lines.
//  3. Sort: each global bin is sorted independently (bins per thread,
//     dynamic schedule) with an in-place American-flag radix sort on packed
//     keys localRow<<colBits|colid. Because local row ids are small, high
//     key bytes are zero and the sorter performs the few passes a squeezed
//     4-byte key would need (Section III-D).
//  4. Compress: the paper's two-pointer in-place merge sums tuples with
//     equal keys; a final parallel pass assembles canonical CSR (bins cover
//     disjoint, ordered row ranges, so concatenating compressed bins is
//     already CSR order).
package core

import (
	"fmt"
	"math/bits"
	"time"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
	"pbspgemm/internal/radix"
)

// DefaultLocalBinBytes is the paper's default local-bin width: 512 bytes =
// 32 tuples of 16 bytes (Section V-A, Fig. 6a).
const DefaultLocalBinBytes = 512

// DefaultL2CacheBytes is the sort-phase cache budget per bin. The paper uses
// the L2 size of the evaluation machines (1 MiB on Skylake, 512 KiB/2 cores
// on POWER9); 1 MiB is our default.
const DefaultL2CacheBytes = 1 << 20

// tupleBytes is the in-memory cost of one expanded tuple in the global bins:
// an 8-byte packed key plus an 8-byte value. The paper's traffic model uses
// b = 16 bytes per tuple, which matches exactly.
const tupleBytes = 16

// Options tunes PB-SpGEMM. The zero value selects the paper's defaults.
type Options struct {
	// NBins forces the number of global bins; 0 derives it from flop and
	// L2CacheBytes as the symbolic phase does (Algorithm 3 line 6).
	NBins int
	// LocalBinBytes is the width of each thread-private local bin; 0 means
	// DefaultLocalBinBytes (512).
	LocalBinBytes int
	// Threads is the worker count; 0 means GOMAXPROCS.
	Threads int
	// L2CacheBytes is the per-bin cache budget used to auto-size NBins;
	// 0 means DefaultL2CacheBytes.
	L2CacheBytes int
}

func (o Options) withDefaults() Options {
	if o.LocalBinBytes <= 0 {
		o.LocalBinBytes = DefaultLocalBinBytes
	}
	if o.L2CacheBytes <= 0 {
		o.L2CacheBytes = DefaultL2CacheBytes
	}
	o.Threads = par.DefaultThreads(o.Threads)
	return o
}

// Stats records per-phase timings and the paper's per-phase traffic model
// (Table III), from which sustained bandwidth per phase is derived.
type Stats struct {
	Symbolic, Expand, Sort, Compress, Assemble time.Duration
	Total                                      time.Duration

	Flops int64 // multiplications performed (nnz of C-hat)
	NNZC  int64 // nonzeros in the final C
	NBins int   // global bins used
	CF    float64

	// Traffic model (bytes), following Eq. 4 / Table III:
	// expand reads both inputs and writes flop tuples; sort reads them back;
	// compress writes nnz(C) tuples.
	ExpandBytes, SortBytes, CompressBytes int64
}

// ExpandGBs returns the expand-phase sustained bandwidth in GB/s.
func (s *Stats) ExpandGBs() float64 { return gbs(s.ExpandBytes, s.Expand) }

// SortGBs returns the sort-phase sustained bandwidth in GB/s.
func (s *Stats) SortGBs() float64 { return gbs(s.SortBytes, s.Sort) }

// CompressGBs returns the compress-phase sustained bandwidth in GB/s.
func (s *Stats) CompressGBs() float64 { return gbs(s.CompressBytes, s.Compress) }

// OverallGBs returns total modeled traffic divided by total time.
func (s *Stats) OverallGBs() float64 {
	return gbs(s.ExpandBytes+s.SortBytes+s.CompressBytes, s.Total)
}

// GFLOPS returns the end-to-end performance in the paper's metric.
func (s *Stats) GFLOPS() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Total.Seconds() / 1e9
}

func gbs(bytes int64, d time.Duration) float64 {
	sec := d.Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(bytes) / sec / 1e9
}

// plan is the output of the symbolic phase: bin geometry and per-bin extents.
type plan struct {
	flops      int64
	nbins      int
	rowsPerBin int32
	colBits    uint
	binStart   []int64 // exclusive prefix sum of per-bin flop counts, len nbins+1
	colBounds  []int   // thread boundaries over columns, balanced by colFlops
}

// Multiply computes C = A*B with PB-SpGEMM. A must be CSC and B CSR, the
// layouts the outer product streams naturally (Algorithm 2 takes exactly
// these). The returned stats are always non-nil.
func Multiply(a *matrix.CSC, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	opt = opt.withDefaults()
	if a.NumCols != b.NumRows {
		return nil, nil, fmt.Errorf("core: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	st := &Stats{}
	totalStart := time.Now()

	// --- Phase 1: symbolic -------------------------------------------------
	t0 := time.Now()
	pl := symbolic(a, b, opt)
	tuples := make([]radix.Pair, pl.flops)
	st.Symbolic = time.Since(t0)
	st.Flops = pl.flops
	st.NBins = pl.nbins

	if pl.flops == 0 {
		c := matrix.NewCSR(a.NumRows, b.NumCols, 0)
		st.Total = time.Since(totalStart)
		return c, st, nil
	}

	// --- Phase 2: expand ---------------------------------------------------
	t0 = time.Now()
	expand(a, b, pl, tuples, opt)
	st.Expand = time.Since(t0)
	st.ExpandBytes = matrix.BytesPerTuple * (a.NNZ() + b.NNZ() + pl.flops)

	// --- Phase 3: sort -----------------------------------------------------
	t0 = time.Now()
	par.ForEachDynamic(pl.nbins, opt.Threads, func(_, bin int) {
		lo, hi := pl.binStart[bin], pl.binStart[bin+1]
		radix.SortPairsInPlace(tuples[lo:hi])
	})
	st.Sort = time.Since(t0)
	st.SortBytes = matrix.BytesPerTuple * pl.flops

	// --- Phase 4: compress + CSR assembly ----------------------------------
	t0 = time.Now()
	binOut := make([]int64, pl.nbins)
	rowCounts := make([]int64, a.NumRows+1)
	par.ForEachDynamic(pl.nbins, opt.Threads, func(_, bin int) {
		lo, hi := pl.binStart[bin], pl.binStart[bin+1]
		binOut[bin] = compressBin(tuples[lo:hi],
			int32(bin)*pl.rowsPerBin, pl.colBits, rowCounts)
	})
	st.Compress = time.Since(t0)

	t0 = time.Now()
	c := assemble(a.NumRows, b.NumCols, pl, tuples, binOut, rowCounts, opt)
	st.Assemble = time.Since(t0)
	st.NNZC = c.NNZ()
	st.CompressBytes = matrix.BytesPerTuple * st.NNZC
	if st.NNZC > 0 {
		st.CF = float64(st.Flops) / float64(st.NNZC)
	}
	st.Total = time.Since(totalStart)
	return c, st, nil
}

// symbolic implements Algorithm 3 plus bin planning: it computes flop from
// the pointer arrays only, derives nbins so one bin's tuples fit the L2
// budget, and computes exact per-bin capacities with one pass over A's
// nonzeros (bins are contiguous row ranges, Fig. 4).
func symbolic(a *matrix.CSC, b *matrix.CSR, opt Options) *plan {
	k := int(a.NumCols)
	colFlops := make([]int64, k)
	par.ForRanges(k, opt.Threads, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			colFlops[i] = a.ColNNZ(int32(i)) * b.RowNNZ(int32(i))
		}
	})
	var flops int64
	for _, f := range colFlops {
		flops += f
	}

	pl := &plan{flops: flops}
	pl.colBits = uint(bits.Len32(uint32(b.NumCols)))
	if pl.colBits == 0 {
		pl.colBits = 1
	}

	// nbins = flop*tupleBytes / L2 (Algorithm 3 line 6), clamped to [1, rows].
	// The auto value is additionally capped at 2048: the paper uses 1K-2K
	// bins in practice (Section V-A) because each thread also keeps one
	// local bin per global bin, and nbins*LocalBinBytes must stay within the
	// cache for the expand phase to stream (Fig. 5). Callers can override
	// with an explicit NBins.
	const maxAutoBins = 2048
	nbins := opt.NBins
	if nbins <= 0 {
		nbins = int((flops*tupleBytes + int64(opt.L2CacheBytes) - 1) / int64(opt.L2CacheBytes))
		if nbins > maxAutoBins {
			nbins = maxAutoBins
		}
	}
	if nbins < 1 {
		nbins = 1
	}
	if int64(nbins) > int64(a.NumRows) && a.NumRows > 0 {
		nbins = int(a.NumRows)
	}
	rowsPerBin := (a.NumRows + int32(nbins) - 1) / int32(nbins)
	if rowsPerBin < 1 {
		rowsPerBin = 1
	}
	// Recompute nbins from rowsPerBin so bins exactly tile [0, rows).
	if a.NumRows > 0 {
		nbins = int((a.NumRows + rowsPerBin - 1) / rowsPerBin)
	}
	pl.nbins = nbins
	pl.rowsPerBin = rowsPerBin

	// Per-bin flop counts: one pass over A's nonzeros, accumulated into
	// per-thread arrays (nbins is small) and reduced.
	threads := opt.Threads
	perThread := make([][]int64, threads)
	pl.colBounds = par.BalancedBoundaries(colFlops, threads)
	par.ParallelRun(threads, func(t int) {
		local := make([]int64, nbins)
		lo, hi := pl.colBounds[t], pl.colBounds[t+1]
		for i := lo; i < hi; i++ {
			bRow := b.RowNNZ(int32(i))
			if bRow == 0 {
				continue
			}
			for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
				local[a.RowIdx[p]/rowsPerBin] += bRow
			}
		}
		perThread[t] = local
	})
	binFlops := make([]int64, nbins)
	for _, local := range perThread {
		for bin, c := range local {
			binFlops[bin] += c
		}
	}
	pl.binStart = make([]int64, nbins+1)
	par.PrefixSum(binFlops, pl.binStart)
	return pl
}

// localBins is one thread's set of propagation-blocking buffers: a flat
// backing array of capacity tuples per bin (Fig. 5).
type localBins struct {
	buf  []radix.Pair
	lens []int32
	cap  int32
}

func newLocalBins(nbins, binBytes int) *localBins {
	capTuples := int32(binBytes / tupleBytes)
	if capTuples < 1 {
		capTuples = 1
	}
	return &localBins{
		buf:  make([]radix.Pair, int32(nbins)*capTuples),
		lens: make([]int32, nbins),
		cap:  capTuples,
	}
}

// expand runs the outer-product expansion with propagation blocking
// (Algorithm 2 lines 5–18). Global-bin space was exactly pre-sized by the
// symbolic phase; each flush reserves a range with a per-bin cursor and
// copies the local bin in one go (the paper's MemCopy).
func expand(a *matrix.CSC, b *matrix.CSR, pl *plan, tuples []radix.Pair, opt Options) {
	// Per-bin write cursors. Each bin's range is written by many threads, so
	// reservation must be atomic; int64 via sync/atomic on a padded slice
	// would be ideal, but plain atomic adds on a []int64 keep it simple.
	cursors := make([]int64, pl.nbins)
	copy(cursors, pl.binStart[:pl.nbins])
	var cursorSlots atomicInt64Slice = cursors

	par.ParallelRun(opt.Threads, func(t int) {
		lb := newLocalBins(pl.nbins, opt.LocalBinBytes)
		flush := func(bin int32) {
			n := lb.lens[bin]
			if n == 0 {
				return
			}
			off := cursorSlots.add(int(bin), int64(n)) - int64(n)
			base := bin * lb.cap
			copy(tuples[off:off+int64(n)], lb.buf[base:base+n])
			lb.lens[bin] = 0
		}
		lo, hi := pl.colBounds[t], pl.colBounds[t+1]
		for i := lo; i < hi; i++ {
			bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
			if bLo == bHi {
				continue
			}
			for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
				r := a.RowIdx[p]
				av := a.Val[p]
				bin := r / pl.rowsPerBin
				localRow := uint64(r-bin*pl.rowsPerBin) << pl.colBits
				base := bin * lb.cap
				ln := lb.lens[bin]
				for q := bLo; q < bHi; q++ {
					if ln == lb.cap {
						lb.lens[bin] = ln
						flush(bin)
						ln = 0
					}
					lb.buf[base+ln] = radix.Pair{Key: localRow | uint64(b.ColIdx[q]), Val: av * b.Val[q]}
					ln++
				}
				lb.lens[bin] = ln
			}
		}
		// Drain partially-filled local bins (Algorithm 2 lines 15–18).
		for bin := int32(0); bin < int32(pl.nbins); bin++ {
			flush(bin)
		}
	})
}

// compressBin is the paper's two-pointer in-place merge (Section III-E): p1
// walks the sorted tuples, p2 tracks the write position; equal keys fold
// their values into the tuple at p2. It also tallies per-row output counts
// (rows of a bin are touched by no other bin, so the shared slice is safe).
func compressBin(tuples []radix.Pair, firstRow int32, colBits uint, rowCounts []int64) int64 {
	if len(tuples) == 0 {
		return 0
	}
	p2 := 0
	for p1 := 1; p1 < len(tuples); p1++ {
		if tuples[p1].Key == tuples[p2].Key {
			tuples[p2].Val += tuples[p1].Val
			continue
		}
		p2++
		tuples[p2] = tuples[p1]
	}
	out := int64(p2 + 1)
	for i := int64(0); i < out; i++ {
		row := firstRow + int32(tuples[i].Key>>colBits)
		rowCounts[row+1]++
	}
	return out
}

// assemble builds canonical CSR from the compressed bins. Bins hold disjoint
// ascending row ranges and each bin is sorted, so compressed tuples are
// already in global CSR order; assembly is two prefix sums plus one parallel
// unpacking copy.
func assemble(rows, cols int32, pl *plan, tuples []radix.Pair,
	binOut, rowCounts []int64, opt Options) *matrix.CSR {

	var nnzc int64
	binOutStart := make([]int64, pl.nbins+1)
	nnzc = par.PrefixSum(binOut, binOutStart)

	c := matrix.NewCSR(rows, cols, nnzc)
	for i := int32(0); i < rows; i++ {
		c.RowPtr[i+1] = c.RowPtr[i] + rowCounts[i+1]
	}
	colMask := uint64(1)<<pl.colBits - 1
	par.ForEachDynamic(pl.nbins, opt.Threads, func(_, bin int) {
		src := pl.binStart[bin]
		dst := binOutStart[bin]
		for j := int64(0); j < binOut[bin]; j++ {
			c.ColIdx[dst+j] = int32(tuples[src+j].Key & colMask)
			c.Val[dst+j] = tuples[src+j].Val
		}
	})
	return c
}
