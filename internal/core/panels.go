package core

import (
	"time"

	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// This file is the memory-budgeted execution path: A's columns are tiled
// into panels whose expanded tuples fit Options.MemoryBudgetBytes, each
// panel runs the expand-sort-compress pipeline of the single-shot algorithm,
// and the per-(panel, bin) compressed sorted runs are k-way merged bin by
// bin into the same canonical CSR the single-shot path produces.
//
// The tuple buffer — the flops×16-byte allocation that makes the paper's
// single-shot design infeasible when the expansion exceeds RAM — is bounded
// by the largest panel. The run arena holds only compressed tuples, whose
// total is at most Σ_p nnz(C_p) ≤ flops but is near nnz(C) whenever panels
// capture duplicate folding, so the working set tracks the output rather
// than the expansion.

// runBudgeted executes the multi-panel pipeline. Caller guarantees
// npanels >= 2 and flops > 0.
func (e *engine) runBudgeted() (*matrix.CSR, error) {
	ws := e.ws
	if faultinject.Enabled {
		faultinject.Fire(faultinject.SiteGrow, -1)
	}
	e.lay.growTuples(e, e.maxPanelFlops)
	ws.runs = ws.runs[:0]
	ws.runKeys = ws.runKeys[:0]
	e.lay.resetRuns(e)
	ws.runStart = ws.runStart[:0]
	ws.runBins = ws.runBins[:0]
	matrix.GrowInt64(&ws.binOut, e.nbins)

	for p := 0; p < e.npanels; p++ {
		if err := e.canceled(); err != nil {
			return nil, err
		}
		lo, hi := ws.panelStart[p], ws.panelStart[p+1]

		e.phase = "plan"
		t0 := time.Now()
		e.panelPlan(lo, hi)
		e.st.Symbolic += time.Since(t0)

		e.phase = "expand"
		t0 = time.Now()
		e.expandPanel(lo)
		e.st.Expand += time.Since(t0)

		if e.fused {
			// Fused sort+fold; row tallies wait for the merge, when final
			// per-row counts are known. appendRuns reads the folded
			// prefixes exactly where compressPanel would leave them.
			e.phase = "sort"
			t0 = time.Now()
			e.runSortPhase(true, ws.binOut, nil)
			if err := e.canceled(); err != nil {
				return nil, err
			}
			e.appendRuns()
			e.st.Fuse += time.Since(t0)
		} else {
			e.phase = "sort"
			t0 = time.Now()
			e.runSortPhase(false, nil, nil)
			e.st.Sort += time.Since(t0)
			if err := e.canceled(); err != nil {
				return nil, err
			}

			e.phase = "compress"
			t0 = time.Now()
			e.compressPanel()
			if err := e.canceled(); err != nil {
				return nil, err
			}
			e.appendRuns()
			e.st.Compress += time.Since(t0)
		}
	}
	ws.runStart = append(ws.runStart, e.runLen()) // closing boundary
	if err := e.canceled(); err != nil {
		return nil, err
	}

	e.phase = "merge"
	t0 := time.Now()
	e.groupRuns()
	e.st.Merge = time.Since(t0)
	if e.emitMerge {
		return e.mergeIntoCSR()
	}

	// Classic merge through the intermediate buffer — the unfused path, and
	// the fused fallback when the per-bin run count is deep (see
	// fusedEmitMergeMaxRuns).
	t0 = time.Now()
	e.mergeBins()
	e.st.Merge += time.Since(t0)
	if err := e.canceled(); err != nil {
		return nil, err
	}

	e.phase = "assemble"
	t0 = time.Now()
	c := e.assemble(ws.mergedStart, true)
	e.st.Assemble = time.Since(t0)
	if err := e.canceled(); err != nil {
		return nil, err
	}
	return c, nil
}

// fusedEmitMergeMaxRuns bounds the per-bin run count (the k of the k-way
// merge) up to which the fused merge emits directly into the final CSR. The
// emit-merge runs the O(k)-per-tuple select-min walk twice (count, then
// emit) to learn exact output offsets; the classic merge walks once but
// writes and re-reads the merged intermediate (~2 extra memory ops per
// tuple). The walks' comparison cost scales with k while the buffer cost
// does not, so past a few runs per bin the intermediate is the cheaper
// trade (measured crossover ≈ 3-4 on the bench trajectory's budgeted
// regimes).
const fusedEmitMergeMaxRuns = 3

// mergeIntoCSR is the fused budgeted epilogue for shallow merges: a
// key-only counting merge makes every bin's output size (and the row
// counts) exact, prefix sums fix the bin offsets and row pointers, and the
// emitting merge then writes each bin's folded tuples directly into its
// final slice of the result CSR — the intermediate merged-run buffer of the
// unfused path never exists. groupRuns has already run.
func (e *engine) mergeIntoCSR() (*matrix.CSR, error) {
	ws := e.ws
	t0 := time.Now()
	e.countMergeBins()
	e.st.Merge += time.Since(t0)
	if err := e.canceled(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	binOutStart := matrix.GrowInt64(&ws.binOutStart, e.nbins+1)
	nnzc := par.PrefixSum(ws.binOut, binOutStart)
	c := e.newResult(nnzc)
	par.PrefixSumParallel(ws.rowCounts[1:int(e.a.NumRows)+1], c.RowPtr, e.opt.Threads)
	e.st.Assemble = time.Since(t0)

	t0 = time.Now()
	e.emitMergeBins(c, binOutStart)
	e.st.Merge += time.Since(t0)
	// The emitting merge writes straight into c; an aborted emit leaves a
	// partial result that must be discarded here.
	if err := e.canceled(); err != nil {
		return nil, err
	}
	return c, nil
}

// runLen is the current length of the active layout's run arena.
func (e *engine) runLen() int64 {
	if e.key32 {
		return int64(len(e.ws.runKeys))
	}
	return int64(len(e.ws.runs))
}

// compressPanel folds duplicate keys within each sorted bin segment of the
// current panel. Row tallies are deferred to the merge (a row's final count
// is only known once all panels' runs are folded).
func (e *engine) compressPanel() {
	e.compressBins(e.ws.binOut, nil)
}

// appendRuns copies the current panel's nonempty compressed bin segments
// into the run arena, recording one sorted, duplicate-free run per
// (panel, bin). Growth is append's amortized doubling; in steady state the
// pooled capacity suffices and nothing allocates.
func (e *engine) appendRuns() {
	ws := e.ws
	for bin := 0; bin < e.nbins; bin++ {
		n := ws.binOut[bin]
		if n == 0 {
			continue
		}
		ws.runBins = append(ws.runBins, int32(bin))
		ws.runStart = append(ws.runStart, e.runLen())
		e.lay.appendRun(e, ws.binStart[bin], n)
	}
}

// groupRuns counting-sorts run ids by bin (runs were appended panel-major)
// and lays out the merged-output offsets: bin b's merge writes into
// merged[mergedStart[b]:mergedStart[b+1]], sized by the bin's total run
// length (the no-folding upper bound). Fused runs with shallow per-bin run
// counts skip the merged buffers entirely — their merge emits into the
// final CSR (mergeIntoCSR) — and only need the run grouping and the
// per-worker merge heads; deep fused merges fall back to the intermediate
// (see fusedEmitMergeMaxRuns).
func (e *engine) groupRuns() {
	ws := e.ws
	nruns := len(ws.runBins)
	ris := matrix.GrowInt32(&ws.runIdxStart, e.nbins+1)
	clear(ris)
	for _, bin := range ws.runBins {
		ris[bin+1]++
	}
	for bin := 0; bin < e.nbins; bin++ {
		ris[bin+1] += ris[bin]
	}
	ri := matrix.GrowInt32(&ws.runIdx, nruns)
	cur := matrix.GrowInt64(&ws.binFlops, e.nbins) // free scratch after panelPlan
	for bin := 0; bin < e.nbins; bin++ {
		cur[bin] = int64(ris[bin])
	}
	for r, bin := range ws.runBins {
		ri[cur[bin]] = int32(r)
		cur[bin]++
	}

	ms := matrix.GrowInt64(&ws.mergedStart, e.nbins+1)
	ms[0] = 0
	maxRuns := 0
	for bin := 0; bin < e.nbins; bin++ {
		var sum int64
		group := ri[ris[bin]:ris[bin+1]]
		for _, r := range group {
			sum += ws.runStart[r+1] - ws.runStart[r]
		}
		ms[bin+1] = ms[bin] + sum
		if len(group) > maxRuns {
			maxRuns = len(group)
		}
	}
	e.maxRunsPerBin = maxRuns
	e.emitMerge = e.fused && maxRuns <= fusedEmitMergeMaxRuns
	if !e.emitMerge {
		e.lay.growMerged(e, ms[e.nbins])
	}
	matrix.GrowInt64(&ws.heads, e.opt.Threads*maxRuns)
}

// mergeBins k-way merges each bin's runs into the merged buffer, folding
// equal keys with + and tallying per-row output counts. Bins are
// independent (disjoint row ranges), so they run under the same dynamic
// schedule as sort and compress.
func (e *engine) mergeBins() {
	matrix.GrowInt64Zero(&e.ws.rowCounts, int(e.a.NumRows)+1)
	if e.opt.Threads == 1 {
		for bin := 0; bin < e.nbins; bin++ {
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteMergeBin, 0)
			}
			e.lay.mergeBin(e, 0, bin)
		}
	} else {
		par.ForEachDynamic(e.nbins, e.opt.Threads, func(worker, bin int) {
			defer e.containWorker(worker)
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteMergeBin, worker)
			}
			e.lay.mergeBin(e, worker, bin)
		})
	}
}

// mergeBinWide merges one bin's sorted, duplicate-free runs (the wide
// layout; kv and pattern mirror it in layout.go). Runs individually have
// unique keys, so a duplicate can only pair tuples from different panels and
// the output stays ascending: comparing against the last written tuple is a
// complete folding rule. The head scan is linear in the run count k
// (k ≤ npanels); bins are L2-sized, so the merge stays in cache.
func (e *engine) mergeBinWide(worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dstBase := ws.mergedStart[bin]
	dst := dstBase

	switch k {
	case 0:
		ws.binOut[bin] = 0
		return
	case 1:
		r := group[0]
		n := ws.runStart[r+1] - ws.runStart[r]
		copy(ws.merged[dst:dst+n], ws.runs[ws.runStart[r]:ws.runStart[r+1]])
		dst += n
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		for {
			best := -1
			var bestKey uint64
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue // run exhausted
				}
				if key := ws.runs[h].Key; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			p := ws.runs[heads[best]]
			heads[best]++
			if dst > dstBase && ws.merged[dst-1].Key == p.Key {
				ws.merged[dst-1].Val += p.Val
			} else {
				ws.merged[dst] = p
				dst++
			}
		}
	}
	ws.binOut[bin] = dst - dstBase
	firstRow := int32(int64(bin) << e.rowShift)
	for i := dstBase; i < dst; i++ {
		row := firstRow + int32(ws.merged[i].Key>>e.colBits)
		ws.rowCounts[row+1]++
	}
}
