package core

import (
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/radix"
)

// csrBitIdentical is the strict comparison the determinism guarantees are
// held to: same structure AND bit-identical float64 values (Equal with tol 0
// still admits -0 vs +0 and NaN mismatches; determinism does not).
func csrBitIdentical(a, b *matrix.CSR) bool {
	if a.NumRows != b.NumRows || a.NumCols != b.NumCols || a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.ColIdx {
		if a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// expandSnapshot drives the engine through planning and expand only,
// returning a copy of the pre-sort tuple buffer in a layout-independent
// (key, value) form.
func expandSnapshot(t *testing.T, a *matrix.CSC, b *matrix.CSR, opt Options) ([]uint64, []float64) {
	t.Helper()
	opt = opt.withDefaults()
	ws := NewWorkspace()
	e := &ws.eng
	*e = engine{a: a, b: b, opt: opt, ws: ws, shared: true, st: &ws.stats}
	e.symbolic()
	e.planPanels()
	if err := e.planBins(); err != nil {
		t.Fatal(err)
	}
	e.bindLayout()
	if e.npanels != 1 {
		t.Fatal("expandSnapshot needs a single-panel run")
	}
	e.panelPlan(0, int(a.NumCols))
	e.lay.growTuples(e, e.flops)
	e.expandPanel(0)
	keys := make([]uint64, e.flops)
	vals := make([]float64, e.flops)
	if e.layout == LayoutSqueezed {
		for i := range keys {
			keys[i] = uint64(ws.tupleKeys[i])
			vals[i] = ws.kvF64.tupleVals[i]
		}
	} else {
		for i := range keys {
			keys[i] = ws.tuples[i].Key
			vals[i] = ws.tuples[i].Val
		}
	}
	return keys, vals
}

// TestExpandDeterministicAcrossThreads: with atomic cursors replaced by
// exclusive per-thread write offsets, the pre-sort tuple buffer — not just
// the sorted output — must be bit-identical at any thread count, in both
// layouts.
func TestExpandDeterministicAcrossThreads(t *testing.T) {
	a := gen.RMAT(10, 8, gen.Graph500Params, 3) // skewed: threads collide on hot bins
	acsc := a.ToCSC()
	b := gen.RMAT(10, 8, gen.Graph500Params, 4)
	for _, layout := range []Layout{LayoutSqueezed, LayoutWide} {
		wantK, wantV := expandSnapshot(t, acsc, b, Options{Threads: 1, ForceLayout: layout})
		for _, threads := range []int{2, 3, 8} {
			gotK, gotV := expandSnapshot(t, acsc, b, Options{Threads: threads, ForceLayout: layout})
			for i := range wantK {
				if gotK[i] != wantK[i] || gotV[i] != wantV[i] {
					t.Fatalf("layout=%v threads=%d: tuple %d differs from sequential expand",
						layout, threads, i)
				}
			}
		}
	}
}

// TestMultiplyBitIdenticalAcrossThreads is the end-to-end determinism
// guarantee: identical CSR (values included, bit for bit) across thread
// counts, across repeated runs on a pooled workspace, and across the
// budgeted path's panel tiling.
func TestMultiplyBitIdenticalAcrossThreads(t *testing.T) {
	inputs := []struct {
		name string
		a    *matrix.CSR
		b    *matrix.CSR
		opt  Options
	}{
		{"ER", gen.ER(2048, 8, 1), gen.ER(2048, 8, 2), Options{}},
		{"RMAT-skewed", gen.RMAT(10, 16, gen.Graph500Params, 5), gen.RMAT(10, 16, gen.Graph500Params, 6), Options{}},
		// NBins=1 funnels everything into one oversized bin: the parallel
		// runs exercise the split-sort path against the sequential sort.
		{"single-bin-split-sort", gen.ER(1024, 8, 7), gen.ER(1024, 8, 8), Options{NBins: 1, L2CacheBytes: 4096}},
		{"budgeted", gen.ER(1024, 6, 9), gen.ER(1024, 6, 10), Options{MemoryBudgetBytes: 64 << 10}},
	}
	for _, in := range inputs {
		t.Run(in.name, func(t *testing.T) {
			acsc := in.a.ToCSC()
			opt := in.opt
			opt.Threads = 1
			want, _, err := Multiply(acsc, in.b, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{2, 8} {
				opt.Threads = threads
				got, _, err := Multiply(acsc, in.b, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !csrBitIdentical(want, got) {
					t.Fatalf("threads=%d: output not bit-identical to threads=1", threads)
				}
			}
			// Repeated runs on one pooled workspace.
			ws := NewWorkspace()
			opt.Workspace = ws
			for rep := 0; rep < 3; rep++ {
				for _, threads := range []int{1, 2, 8} {
					opt.Threads = threads
					got, _, err := Multiply(acsc, in.b, opt)
					if err != nil {
						t.Fatal(err)
					}
					if !csrBitIdentical(want, got) {
						t.Fatalf("pooled rep=%d threads=%d: output drifted", rep, threads)
					}
				}
			}
		})
	}
}

// TestSqueezedVsWideEquivalent: the two layouts produce the same canonical
// CSR. Structure must match exactly; values to summation tolerance only —
// the layouts use different radix digit plans (11-bit vs byte), so tuples
// with equal keys may fold in a different order. (FuzzSqueezedVsWide holds
// integer-valued inputs, where order cannot matter, to exact equality.)
func TestSqueezedVsWideEquivalent(t *testing.T) {
	for _, in := range []struct {
		name string
		a, b *matrix.CSR
	}{
		{"ER", gen.ER(1024, 8, 11), gen.ER(1024, 8, 12)},
		{"RMAT", gen.RMAT(9, 8, gen.Graph500Params, 13), gen.RMAT(9, 8, gen.Graph500Params, 14)},
	} {
		acsc := in.a.ToCSC()
		for _, threads := range []int{1, 4} {
			sq, stS, err := Multiply(acsc, in.b, Options{Threads: threads, ForceLayout: LayoutSqueezed})
			if err != nil {
				t.Fatal(err)
			}
			wide, stW, err := Multiply(acsc, in.b, Options{Threads: threads, ForceLayout: LayoutWide})
			if err != nil {
				t.Fatal(err)
			}
			if stS.Layout != LayoutSqueezed || stW.Layout != LayoutWide {
				t.Fatalf("%s: forced layouts not honored: %v / %v", in.name, stS.Layout, stW.Layout)
			}
			if !matrix.Equal(sq, wide, 1e-12) {
				t.Fatalf("%s threads=%d: squeezed and wide outputs differ", in.name, threads)
			}
		}
	}
}

// TestLayoutSelection pins the geometry rule: squeezed engages exactly when
// localRowBits + colBits ≤ 32, and PlanLayout agrees with the engine.
func TestLayoutSelection(t *testing.T) {
	// Small square: always squeezed.
	a := gen.ER(512, 4, 1)
	acsc := a.ToCSC()
	_, st, err := Multiply(acsc, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout != LayoutSqueezed {
		t.Fatalf("small square picked %v, want squeezed", st.Layout)
	}
	if got := PlanLayout(a.NumRows, a.NumCols, st.Flops, Options{}); got != LayoutSqueezed {
		t.Fatalf("PlanLayout = %v, want squeezed", got)
	}

	// Wide B (2^30 columns) against a single bin's worth of rows: colBits=31
	// plus any local row bit exceeds 32 — must stay wide.
	rows := int32(5000)
	cols := int32(1) << 30
	co := &matrix.COO{NumRows: rows, NumCols: 64}
	bo := &matrix.COO{NumRows: 64, NumCols: cols}
	r := gen.NewRNG(2)
	for e := 0; e < 200; e++ {
		co.Row = append(co.Row, r.Intn(rows))
		co.Col = append(co.Col, r.Intn(64))
		co.Val = append(co.Val, r.Float64())
		bo.Row = append(bo.Row, r.Intn(64))
		bo.Col = append(bo.Col, r.Intn(cols))
		bo.Val = append(bo.Val, r.Float64())
	}
	aw, bw := co.ToCSR(), bo.ToCSR()
	_, stw, err := Multiply(aw.ToCSC(), bw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stw.Layout != LayoutWide {
		t.Fatalf("31-bit columns picked %v, want wide", stw.Layout)
	}
	if got := PlanLayout(aw.NumRows, bw.NumCols, stw.Flops, Options{}); got != LayoutWide {
		t.Fatalf("PlanLayout = %v, want wide", got)
	}
	// Forcing squeezed on an unsqueezable geometry must fall back, not
	// corrupt keys.
	ref := matrix.ReferenceMultiply(aw, bw)
	cf, stf, err := Multiply(aw.ToCSC(), bw, Options{ForceLayout: LayoutSqueezed})
	if err != nil {
		t.Fatal(err)
	}
	if stf.Layout != LayoutWide {
		t.Fatalf("unsqueezable force: layout %v, want wide fallback", stf.Layout)
	}
	if !matrix.Equal(ref, cf, 1e-9) {
		t.Fatal("forced-squeezed fallback product wrong")
	}
}

// TestPlanLayoutTracksBudget: a memory budget shrinks panels, which shrinks
// the bin count and widens rowsPerBin — PlanLayout must predict the layout
// of the geometry a budgeted run actually executes, not the unbudgeted one.
func TestPlanLayoutTracksBudget(t *testing.T) {
	rows := int32(1) << 20
	bCols := int32(1) << 17 // colBits = 18
	flops := int64(1) << 27 // unbudgeted: 2048 bins, rowShift 9 → squeezed
	if got := PlanLayout(rows, bCols, flops, Options{}); got != LayoutSqueezed {
		t.Fatalf("unbudgeted PlanLayout = %v, want squeezed", got)
	}
	// A tiny budget collapses each panel to ~2^10 tuples → 1 bin →
	// rowShift 20; 20+18 > 32 → the budgeted run is wide.
	budgeted := Options{MemoryBudgetBytes: 1 << 14}
	if got := PlanLayout(rows, bCols, flops, budgeted); got != LayoutWide {
		t.Fatalf("budgeted PlanLayout = %v, want wide", got)
	}
}

// TestPowerOfTwoBinGeometry: rowsPerBin is always a power of two and bins
// exactly tile the rows.
func TestPowerOfTwoBinGeometry(t *testing.T) {
	for _, rows := range []int32{1, 2, 3, 511, 512, 513, 5000, 1 << 20} {
		for _, nbins := range []int{0, 1, 2, 7, 64, 2048} {
			g := planBinGeometry(rows, int64(rows)*8, Options{NBins: nbins}.withDefaults())
			rpb := int64(1) << g.rowShift
			if rpb&(rpb-1) != 0 {
				t.Fatalf("rows=%d nbins=%d: rowsPerBin %d not a power of two", rows, nbins, rpb)
			}
			if int64(g.nbins)*rpb < int64(rows) {
				t.Fatalf("rows=%d nbins=%d: bins cover only %d rows", rows, nbins, int64(g.nbins)*rpb)
			}
			if int64(g.nbins-1)*rpb >= int64(rows) {
				t.Fatalf("rows=%d nbins=%d: last bin empty (%d bins of %d rows)", rows, nbins, g.nbins, rpb)
			}
		}
	}
}

// TestLayoutSteadyStateAllocs is the squeezed path's alloc regression gate:
// like the wide path, repeated Multiply through a pooled workspace at
// Threads=1 performs zero heap allocations — single-shot and budgeted.
func TestLayoutSteadyStateAllocs(t *testing.T) {
	a := gen.ER(400, 6, 1).ToCSC()
	b := gen.ER(400, 6, 2)
	for _, tc := range []struct {
		name   string
		layout Layout
		budget int64
	}{
		{"squeezed", LayoutSqueezed, 0},
		{"squeezed-budgeted", LayoutSqueezed, 32 << 10},
		{"wide", LayoutWide, 0},
		{"wide-budgeted", LayoutWide, 32 << 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := NewWorkspace()
			opt := Options{Threads: 1, Workspace: ws, MemoryBudgetBytes: tc.budget, ForceLayout: tc.layout}
			if _, st, err := Multiply(a, b, opt); err != nil {
				t.Fatal(err)
			} else if st.Layout != tc.layout {
				t.Fatalf("layout = %v, want %v", st.Layout, tc.layout)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, _, err := Multiply(a, b, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s allocated %.1f times per call, want 0", tc.name, allocs)
			}
		})
	}
}

// TestSplitSortMatchesReference: a run forced through the oversized-bin
// split (tiny L2 budget, parallel threads) still produces the reference
// product.
func TestSplitSortMatchesReference(t *testing.T) {
	a := gen.RMAT(10, 8, gen.Graph500Params, 21)
	b := gen.RMAT(10, 8, gen.Graph500Params, 22)
	want := matrix.ReferenceMultiply(a, b)
	for _, layout := range []Layout{LayoutSqueezed, LayoutWide} {
		got, _, err := Multiply(a.ToCSC(), b, Options{
			Threads: 8, NBins: 2, L2CacheBytes: 4096, ForceLayout: layout,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(want, got, 1e-9) {
			t.Fatalf("layout=%v: split-sort product differs from reference", layout)
		}
	}
}

// BenchmarkMultiply is the acceptance benchmark of the squeezed tuple
// pipeline: the low-cf ER regime (the paper's Fig. 7 sweet spot for
// PB-SpGEMM) on both layouts over a pooled workspace. The squeezed rows must
// come in ≥15% under the wide rows' ns/op.
func BenchmarkMultiply(b *testing.B) {
	a := gen.ERMatrix(13, 8, 1).ToCSC()
	m := gen.ERMatrix(13, 8, 2)
	for _, tc := range []struct {
		name   string
		layout Layout
	}{
		{"layout=squeezed", LayoutSqueezed},
		{"layout=wide", LayoutWide},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ws := NewWorkspace()
			opt := Options{Workspace: ws, ForceLayout: tc.layout}
			_, st, err := Multiply(a, m, opt)
			if err != nil {
				b.Fatal(err)
			}
			if st.Layout != tc.layout {
				b.Fatalf("layout = %v, want %v", st.Layout, tc.layout)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Multiply(a, m, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(float64(st.Flops)/sec/1e9, "GFLOPS")
		})
	}
}

// BenchmarkSortPhase isolates the sort phase's layout sensitivity: one
// L2-sized bin of pre-expanded tuples per layout.
func BenchmarkSortPhase(b *testing.B) {
	const n = 64 << 10
	r := gen.NewRNG(3)
	keys := make([]uint32, n)
	vals := make([]float64, n)
	pairs := make([]radix.Pair, n)
	for i := range keys {
		k := uint32(r.Intn(1 << 22)) // squeezed-geometry keys
		keys[i] = k
		vals[i] = r.Float64()
		pairs[i] = radix.Pair{Key: uint64(k), Val: vals[i]}
	}
	b.Run("layout=squeezed", func(b *testing.B) {
		wk := make([]uint32, n)
		wv := make([]float64, n)
		b.SetBytes(n * SqueezedTupleBytes)
		for i := 0; i < b.N; i++ {
			copy(wk, keys)
			copy(wv, vals)
			radix.SortKeys32(wk, wv)
		}
	})
	b.Run("layout=wide", func(b *testing.B) {
		wp := make([]radix.Pair, n)
		b.SetBytes(n * WideTupleBytes)
		for i := 0; i < b.N; i++ {
			copy(wp, pairs)
			radix.SortPairsInPlace(wp)
		}
	})
}
