package core

import (
	"fmt"
	"time"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// MultiplyPartitioned computes C = A*B by splitting A into `parts` row bands
// and running an independent PB-SpGEMM per band, concatenating the resulting
// CSR bands. This is the partitioned PB-SpGEMM of Section V-D (from the
// first author's thesis): on a NUMA machine each band's bins stay on the
// socket that expands, sorts and compresses them, avoiding cross-socket
// traffic — at the cost of reading B once per band. On a single memory
// domain it serves as the ablation for that trade-off: parts=1 is exactly
// Multiply, larger parts adds (parts-1)·nnz(B) read traffic.
//
// Row bands are balanced by per-band flop, not row count, so skewed
// matrices split evenly.
func MultiplyPartitioned(a *matrix.CSC, b *matrix.CSR, parts int, opt Options) (*matrix.CSR, *Stats, error) {
	if a.NumCols != b.NumRows {
		return nil, nil, fmt.Errorf("core: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	if parts <= 1 || a.NumRows <= 1 {
		return Multiply(a, b, opt)
	}
	if int32(parts) > a.NumRows {
		parts = int(a.NumRows)
	}
	opt = opt.withDefaults()
	start := time.Now()

	// Per-row flops of C-hat: one pass over A's nonzeros.
	rowFlops := make([]int64, a.NumRows)
	for i := int32(0); i < a.NumCols; i++ {
		bRow := b.RowNNZ(i)
		if bRow == 0 {
			continue
		}
		for p := a.ColPtr[i]; p < a.ColPtr[i+1]; p++ {
			rowFlops[a.RowIdx[p]] += bRow
		}
	}
	bounds := par.BalancedBoundaries(rowFlops, parts)

	// Extract each row band of A as its own CSC and multiply. Bands run
	// sequentially here, each internally parallel; on a real NUMA machine
	// each band would be pinned to a socket. A shared workspace is reused by
	// every band, so each band's result (which aliases the workspace) is
	// cloned before the next band overwrites it, and its stats are folded in
	// immediately.
	agg := &Stats{}
	bandC := make([]*matrix.CSR, parts)
	for p := 0; p < parts; p++ {
		lo, hi := int32(bounds[p]), int32(bounds[p+1])
		band := extractRowBand(a, lo, hi)
		c, st, err := Multiply(band, b, opt)
		if err != nil {
			return nil, nil, err
		}
		if opt.Workspace != nil {
			c = c.Clone()
		}
		bandC[p] = c
		agg.Symbolic += st.Symbolic
		agg.Expand += st.Expand
		agg.Sort += st.Sort
		agg.Compress += st.Compress
		agg.Fuse += st.Fuse
		agg.Merge += st.Merge
		agg.Assemble += st.Assemble
		agg.Flops += st.Flops
		agg.Fused = st.Fused // uniform: all bands share opt
		// Per-band traffic already reflects each band's tuple layout. The
		// summed ExpandBytes count executed loads+stores, which bands
		// perform on disjoint FLOP subsets — the once-per-band physical
		// re-fetch of B (the partitioning's NUMA trade-off) shows up in the
		// summed Expand time, and thus in GB/s, not in counted bytes.
		agg.ExpandBytes += st.ExpandBytes
		agg.SortBytes += st.SortBytes
		agg.CompressBytes += st.CompressBytes
		agg.FusedBytes += st.FusedBytes
		if p == 0 || st.TupleBytes > agg.TupleBytes {
			// Report the widest layout any band fell back to.
			agg.TupleBytes = st.TupleBytes
			agg.Layout = st.Layout
		}
		if st.NBins > agg.NBins {
			agg.NBins = st.NBins
		}
		if st.NPanels > agg.NPanels {
			agg.NPanels = st.NPanels
		}
	}

	// Concatenate bands: band p holds rows [bounds[p], bounds[p+1]) of C.
	var nnzc int64
	for _, c := range bandC {
		nnzc += c.NNZ()
	}
	out := matrix.NewCSR(a.NumRows, b.NumCols, nnzc)
	var cursor int64
	for p := 0; p < parts; p++ {
		lo := int32(bounds[p])
		c := bandC[p]
		for i := int32(0); i < c.NumRows; i++ {
			out.RowPtr[lo+i+1] = cursor + c.RowPtr[i+1]
		}
		copy(out.ColIdx[cursor:], c.ColIdx)
		copy(out.Val[cursor:], c.Val)
		cursor += c.NNZ()
	}
	// Fill pointer gaps for any leading empty rows of each band.
	for i := int32(1); i <= a.NumRows; i++ {
		if out.RowPtr[i] < out.RowPtr[i-1] {
			out.RowPtr[i] = out.RowPtr[i-1]
		}
	}

	agg.NNZC = nnzc
	if nnzc > 0 {
		agg.CF = float64(agg.Flops) / float64(nnzc)
	}
	agg.Total = time.Since(start)
	return out, agg, nil
}

// extractRowBand returns rows [lo, hi) of a as a standalone CSC with hi-lo
// rows (row indices shifted down by lo).
func extractRowBand(a *matrix.CSC, lo, hi int32) *matrix.CSC {
	out := &matrix.CSC{
		NumRows: hi - lo, NumCols: a.NumCols,
		ColPtr: make([]int64, a.NumCols+1),
	}
	for j := int32(0); j < a.NumCols; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowIdx[p]
			if r >= lo && r < hi {
				out.RowIdx = append(out.RowIdx, r-lo)
				out.Val = append(out.Val, a.Val[p])
			}
		}
		out.ColPtr[j+1] = int64(len(out.Val))
	}
	return out
}
