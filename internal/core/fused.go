package core

import (
	"sync/atomic"

	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/numa"
	"pbspgemm/internal/par"
	"pbspgemm/internal/radix"
)

// This file is the fused sort→compress→assemble pipeline (the engine's
// default since PR 5; Options.DisableFusion restores the three-pass PR 4
// path for ablations). Two fusions remove the passes that re-read the
// dominant data structure from DRAM:
//
//   - The sort's last digit pass folds equal keys as buckets complete
//     (radix.SortKeys32Fused / radix.SortPairsFused): the two-pointer
//     compress — a full cold re-read of the sorted tuple buffer plus an
//     nnz-sized write — disappears into the sort epilogue, where the leaf
//     being folded is still cache-resident. The fused phase also tallies
//     per-row output counts in the same breath, so assemble has exact
//     per-bin offsets the moment sorting ends (sort-and-count), and a
//     parallel prefix then fixes the row pointers.
//   - On budgeted runs with shallow per-bin run counts the k-way merge
//     emits masked column ids and folded values directly into the final CSR
//     slices instead of an intermediate merged-run buffer: a cheap key-only
//     counting walk first makes the per-bin output offsets exact, then the
//     emitting walk writes each bin into its final slot — the merged
//     intermediate (one full write plus one full read of nnz tuples) never
//     exists. Deep merges (many panels) keep the intermediate: two
//     O(k)-per-tuple select-min walks cost more than the buffer they save
//     past a few runs per bin (fusedEmitMergeMaxRuns).
//
// Both fusions are bit-identical to the unfused path: the fused sorts run
// exactly the unfused digit plan and fold in compress order, and the
// emitting merge folds in exactly mergeBin's order (FuzzFusedVsUnfused and
// TestFusedMatchesUnfusedBitIdentical pin this).
//
// The phase is scheduled with work stealing (par.WorkSteal) rather than a
// static or counter-dynamic bin assignment: a worker that meets an oversized
// skewed bin runs the sort's own first partition pass and hands the buckets
// to the other workers as spawned tasks, so a single hot R-MAT bin no longer
// serializes the phase tail behind one worker. Split bins cannot fold inside
// buckets safely in isolation (a bucket boundary may cut through a row, and
// rows of one bin share rowCounts entries), so the worker finishing a split
// bin's last bucket folds the whole — now sorted — bin with the classic
// two-pointer compress, which is bit-identical to the fused whole-bin sort.

// sortTask is one unit of sort-phase work for the work-stealing scheduler: a
// whole bin, or (bucket=true) one top-digit bucket of a partitioned
// oversized bin, with arg carrying the remaining key bits (squeezed) or next
// byte index (wide) to sort at.
type sortTask struct {
	bin        int32
	bucket     bool
	start, end int64
	arg        int
}

// runSortPhase executes the sort phase over the current panel's bins: fused
// (sort+fold+tally, filling binOut and, when non-nil, rowCounts) or unfused
// (sort only; compressBins runs separately). Threads==1 runs the bins
// sequentially with no scheduler, allocation-free.
func (e *engine) runSortPhase(fused bool, binOut, rowCounts []int64) {
	threads := e.opt.Threads
	bs := e.ws.binStart
	// Size the per-worker stable-scatter scratch to the panel's largest bin:
	// every task (whole bin, partition pass, or bucket) fits inside one bin,
	// so a worker never needs more than maxSeg tuples of private ping-pong
	// space. Grow-only, like every other pooled plane.
	var maxSeg int64
	for bin := 0; bin < e.nbins; bin++ {
		if n := bs[bin+1] - bs[bin]; n > maxSeg {
			maxSeg = n
		}
	}
	e.scratchStride = maxSeg
	e.lay.growScratch(e, int64(threads)*maxSeg)
	if threads == 1 {
		for bin := 0; bin < e.nbins; bin++ {
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteSortTask, 0)
			}
			if fused {
				e.fuseWholeBin(0, bin, binOut, rowCounts)
			} else {
				e.lay.sortSeg(e, sortSeg{start: bs[bin], end: bs[bin+1], arg: -1})
			}
		}
		return
	}
	cutoff := e.sortSplitCutoff()
	pending := matrix.GrowInt32(&e.ws.binPending, e.nbins)
	partBounds := matrix.GrowInt64(&e.ws.partBounds, threads*(radix.MaxPartitionBuckets+1))
	seeds := e.ws.sortTasks[:0]
	for bin := 0; bin < e.nbins; bin++ {
		lo, hi := bs[bin], bs[bin+1]
		if !fused && hi-lo < 2 {
			continue // nothing to sort, and compressBins owns binOut
		}
		seeds = append(seeds, sortTask{bin: int32(bin), start: lo, end: hi})
	}
	e.ws.sortTasks = seeds
	// Pooled steal policy: ownership/steal counters always on (they feed
	// Stats); NUMA victims and thread pinning only when a multi-node machine
	// is active (numaplan.go).
	pol := &e.ws.stealPol
	pol.EnsureCounters(threads)
	if e.numaM != nil {
		m, nodes := e.numaM, e.workerNodes
		pol.Victims, pol.NearLen = e.ws.polVictims, e.ws.polNearLen
		pol.Setup = func(w int) func() { return numa.PinThread(m.NodeCPUs(nodes[w])) }
	} else {
		pol.Victims, pol.NearLen, pol.Setup = nil, nil, nil
	}
	pol.Place = nil
	par.WorkStealPolicy(threads, seeds, pol, func(worker int, t sortTask, spawn func(sortTask)) {
		// Contain per task, not per worker: an absorbed panic still reaches
		// the scheduler's pending decrement, so the pool drains instead of
		// deadlocking on a count that can no longer hit zero.
		defer e.containWorker(worker)
		if e.pollCancel() {
			return
		}
		if faultinject.Enabled {
			faultinject.Fire(faultinject.SiteSortTask, worker)
		}
		e.runSortTask(worker, t, spawn, fused, cutoff, pending, partBounds, binOut, rowCounts)
	})
	o, s, ns := pol.Totals()
	e.st.SortOwned += o // += : budgeted runs sort once per panel
	e.st.SortStolen += s
	e.st.SortNearStolen += ns
}

// runSortTask executes one work-stealing task; see runSortPhase.
func (e *engine) runSortTask(worker int, t sortTask, spawn func(sortTask),
	fused bool, cutoff int64, pending []int32, partBounds []int64, binOut, rowCounts []int64) {

	bin := int(t.bin)
	if t.bucket {
		e.lay.sortSeg(e, sortSeg{start: t.start, end: t.end, arg: t.arg, worker: worker})
		if fused && atomic.AddInt32(&pending[bin], -1) == 0 {
			// Last bucket of a split bin: the bin is fully sorted — fold it.
			e.compressOneBin(bin, binOut, rowCounts)
		}
		return
	}
	if t.end-t.start <= cutoff {
		if fused {
			e.fuseWholeBin(worker, bin, binOut, rowCounts)
		} else {
			e.lay.sortSeg(e, sortSeg{start: t.start, end: t.end, arg: -1, worker: worker})
		}
		return
	}

	// Oversized skewed bin: run the sort's own first partition pass here and
	// spawn the buckets; idle workers steal them, so neither the partition
	// nor the bucket sorts serialize the phase. The layout provides the pass
	// (PartitionTop32 / PartitionTop32Pattern / PartitionPairsTopByte); zero
	// buckets means the pass alone finished the range.
	lo, hi := t.start, t.end
	stride := radix.MaxPartitionBuckets + 1
	bounds := partBounds[worker*stride : (worker+1)*stride]
	nb, arg := e.lay.partitionTop(e, worker, lo, hi, bounds)
	nspawn := 0
	for b := 0; b < nb; b++ {
		if bounds[b+1]-bounds[b] > 1 {
			nspawn++
		}
	}
	if nspawn > 0 {
		if fused {
			// Published to bucket tasks through the spawn below.
			atomic.StoreInt32(&pending[bin], int32(nspawn))
		}
		for b := 0; b < nb; b++ {
			blo, bhi := lo+bounds[b], lo+bounds[b+1]
			if bhi-blo > 1 {
				spawn(sortTask{bin: t.bin, bucket: true, start: blo, end: bhi, arg: arg})
			}
		}
	}
	if nspawn == 0 && fused {
		// The partition pass alone finished the bin: fold it now.
		e.compressOneBin(bin, binOut, rowCounts)
	}
}

// fuseWholeBin runs the fused sort+fold over one bin and tallies its row
// counts (when rowCounts is non-nil; the budgeted path defers tallies to the
// merge). The folded prefix lands at the bin's own binStart offset, exactly
// where compressBin would leave it.
func (e *engine) fuseWholeBin(worker, bin int, binOut, rowCounts []int64) {
	bs := e.ws.binStart
	lo, hi := bs[bin], bs[bin+1]
	n := e.lay.fuseBin(e, worker, lo, hi)
	binOut[bin] = n
	e.tallyRows(lo, n, rowCounts, bin)
}

// countMergeBins is the counting half of the fused k-way merge: per bin, a
// key-only walk over the bin's runs counts the exact merged output size and
// tallies per-row counts, without writing a tuple. With the counts exact, a
// prefix sum gives every bin its final CSR slot before any value moves.
func (e *engine) countMergeBins() {
	matrix.GrowInt64Zero(&e.ws.rowCounts, int(e.a.NumRows)+1)
	if e.opt.Threads == 1 {
		for bin := 0; bin < e.nbins; bin++ {
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteMergeBin, 0)
			}
			e.countMergeBin(0, bin)
		}
	} else {
		par.ForEachDynamic(e.nbins, e.opt.Threads, func(worker, bin int) {
			defer e.containWorker(worker)
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteMergeBin, worker)
			}
			e.countMergeBin(worker, bin)
		})
	}
}

func (e *engine) countMergeBin(worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	firstRow := int32(int64(bin) << e.rowShift)
	rowCounts := ws.rowCounts
	var n int64
	switch k {
	case 0:
	case 1:
		// Runs are individually duplicate-free: the count is the run length.
		r := group[0]
		n = ws.runStart[r+1] - ws.runStart[r]
		if e.key32 {
			for _, key := range ws.runKeys[ws.runStart[r]:ws.runStart[r+1]] {
				rowCounts[firstRow+int32(key>>e.colBits)+1]++
			}
		} else {
			for i := ws.runStart[r]; i < ws.runStart[r+1]; i++ {
				rowCounts[firstRow+int32(ws.runs[i].Key>>e.colBits)+1]++
			}
		}
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		if e.key32 {
			var last uint32
			for {
				best := -1
				var bestKey uint32
				for i, r := range group {
					h := heads[i]
					if h == ws.runStart[r+1] {
						continue // run exhausted
					}
					if key := ws.runKeys[h]; best < 0 || key < bestKey {
						best, bestKey = i, key
					}
				}
				if best < 0 {
					break
				}
				heads[best]++
				if n == 0 || bestKey != last {
					n++
					last = bestKey
					rowCounts[firstRow+int32(bestKey>>e.colBits)+1]++
				}
			}
		} else {
			var last uint64
			for {
				best := -1
				var bestKey uint64
				for i, r := range group {
					h := heads[i]
					if h == ws.runStart[r+1] {
						continue
					}
					if key := ws.runs[h].Key; best < 0 || key < bestKey {
						best, bestKey = i, key
					}
				}
				if best < 0 {
					break
				}
				heads[best]++
				if n == 0 || bestKey != last {
					n++
					last = bestKey
					rowCounts[firstRow+int32(bestKey>>e.colBits)+1]++
				}
			}
		}
	}
	ws.binOut[bin] = n
}

// emitMergeBins is the emitting half of the fused k-way merge: each bin
// re-walks its runs and writes masked column ids and folded values directly
// into its pre-computed slice of the final CSR — same walk, same fold order
// as the unfused mergeBin, so the values are bit-identical. The per-layout
// walks live in layout.go.
func (e *engine) emitMergeBins(c *matrix.CSR, binOutStart []int64) {
	if e.opt.Threads == 1 {
		for bin := 0; bin < e.nbins; bin++ {
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteMergeBin, 0)
			}
			e.lay.emitMergeBin(e, c, binOutStart, 0, bin)
		}
	} else {
		par.ForEachDynamic(e.nbins, e.opt.Threads, func(worker, bin int) {
			defer e.containWorker(worker)
			if e.pollCancel() {
				return
			}
			if faultinject.Enabled {
				faultinject.Fire(faultinject.SiteMergeBin, worker)
			}
			e.lay.emitMergeBin(e, c, binOutStart, worker, bin)
		})
	}
}

// emitMergeBinWide is the wide layout's emitting walk (wideOps.emitMergeBin).
func (e *engine) emitMergeBinWide(c *matrix.CSR, binOutStart []int64, worker, bin int) {
	ws := e.ws
	group := ws.runIdx[ws.runIdxStart[bin]:ws.runIdxStart[bin+1]]
	k := len(group)
	dst := binOutStart[bin]
	colMask := uint64(1)<<e.colBits - 1
	switch k {
	case 0:
	case 1:
		r := group[0]
		s := ws.runStart[r]
		n := ws.runStart[r+1] - s
		for j := int64(0); j < n; j++ {
			c.ColIdx[dst+j] = int32(ws.runs[s+j].Key & colMask)
			c.Val[dst+j] = ws.runs[s+j].Val
		}
	default:
		heads := ws.heads[worker*e.maxRunsPerBin : worker*e.maxRunsPerBin+k]
		for i, r := range group {
			heads[i] = ws.runStart[r]
		}
		var emitted int64
		var last uint64
		for {
			best := -1
			var bestKey uint64
			for i, r := range group {
				h := heads[i]
				if h == ws.runStart[r+1] {
					continue
				}
				if key := ws.runs[h].Key; best < 0 || key < bestKey {
					best, bestKey = i, key
				}
			}
			if best < 0 {
				break
			}
			v := ws.runs[heads[best]].Val
			heads[best]++
			if emitted > 0 && bestKey == last {
				c.Val[dst+emitted-1] += v
			} else {
				c.ColIdx[dst+emitted] = int32(bestKey & colMask)
				c.Val[dst+emitted] = v
				emitted++
				last = bestKey
			}
		}
	}
}
