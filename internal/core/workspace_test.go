package core

import (
	"fmt"
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// onesLike returns a structural copy of m with every stored value 1.0.
// Integer-valued sums below 2^53 are exact in float64, so products of such
// matrices are independent of summation order — the property that lets the
// budgeted path be asserted bit-identical to the single-shot path.
func onesLike(m *matrix.CSR) *matrix.CSR {
	out := m.Clone()
	for i := range out.Val {
		out.Val[i] = 1
	}
	return out
}

func bitIdentical(t *testing.T, want, got *matrix.CSR) {
	t.Helper()
	if want.NumRows != got.NumRows || want.NumCols != got.NumCols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", want.NumRows, want.NumCols, got.NumRows, got.NumCols)
	}
	if want.NNZ() != got.NNZ() {
		t.Fatalf("nnz mismatch: %d vs %d", want.NNZ(), got.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: %d vs %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	for i := range want.ColIdx {
		if want.ColIdx[i] != got.ColIdx[i] {
			t.Fatalf("ColIdx[%d]: %d vs %d", i, want.ColIdx[i], got.ColIdx[i])
		}
		if want.Val[i] != got.Val[i] {
			t.Fatalf("Val[%d]: %v vs %v", i, want.Val[i], got.Val[i])
		}
	}
}

// TestBudgetedBitIdenticalToSingleShot is the tentpole acceptance check: a
// run with MemoryBudgetBytes far below the tuple-buffer size completes and
// produces a CSR bit-identical to the unbudgeted result.
func TestBudgetedBitIdenticalToSingleShot(t *testing.T) {
	inputs := []struct {
		name string
		a, b *matrix.CSR
	}{
		{"ER", gen.ER(600, 6, 1), gen.ER(600, 6, 2)},
		{"RMAT", gen.RMAT(9, 6, gen.Graph500Params, 3), gen.RMAT(9, 6, gen.Graph500Params, 4)},
	}
	for _, in := range inputs {
		a, b := onesLike(in.a), onesLike(in.b)
		acsc := a.ToCSC()
		want, st0, err := Multiply(acsc, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st0.NPanels != 1 {
			t.Fatalf("%s: unbudgeted run used %d panels", in.name, st0.NPanels)
		}
		fullBytes := st0.Flops * tupleBytes
		for _, budget := range []int64{fullBytes / 4, fullBytes / 16, fullBytes / 64, 1} {
			t.Run(fmt.Sprintf("%s/budget=%d", in.name, budget), func(t *testing.T) {
				got, st, err := Multiply(acsc, b, Options{MemoryBudgetBytes: budget})
				if err != nil {
					t.Fatal(err)
				}
				if st.NPanels < 2 {
					t.Fatalf("budget %d did not tile: %d panels", budget, st.NPanels)
				}
				if st.Flops != st0.Flops {
					t.Fatalf("flops changed under budget: %d vs %d", st.Flops, st0.Flops)
				}
				bitIdentical(t, want, got)
			})
		}
	}
}

// TestBudgetedFloatValuesClose checks the budgeted path on real-valued
// inputs, where summation order may differ at rounding level.
func TestBudgetedFloatValuesClose(t *testing.T) {
	a := gen.ER(500, 8, 11).ToCSC()
	b := gen.ER(500, 8, 12)
	want, st0, err := Multiply(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Multiply(a, b, Options{MemoryBudgetBytes: st0.Flops * tupleBytes / 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.NPanels < 2 {
		t.Fatalf("expected tiling, got %d panels", st.NPanels)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("budgeted product differs from single-shot beyond tolerance")
	}
}

// TestBudgetBoundsTupleBuffer verifies the budget actually caps the pooled
// tuple buffer (modulo the one-column minimum panel size).
func TestBudgetBoundsTupleBuffer(t *testing.T) {
	a := gen.ER(800, 6, 5)
	acsc := a.ToCSC()
	b := gen.ER(800, 6, 6)
	flops := matrix.Flops(acsc, b)
	budget := flops * tupleBytes / 8

	ws := NewWorkspace()
	if _, _, err := Multiply(acsc, b, Options{Workspace: ws, MemoryBudgetBytes: budget}); err != nil {
		t.Fatal(err)
	}
	// Max per-column flops is the floor the one-column minimum imposes.
	var maxCol int64
	for j := int32(0); j < acsc.NumCols; j++ {
		if f := acsc.ColNNZ(j) * b.RowNNZ(j); f > maxCol {
			maxCol = f
		}
	}
	limit := budget
	if maxCol*tupleBytes > limit {
		limit = maxCol * tupleBytes
	}
	if got := ws.TupleCapBytes(); got > limit {
		t.Fatalf("tuple buffer %d bytes exceeds budget %d (one-column floor %d)",
			got, budget, maxCol*tupleBytes)
	}
}

// TestWorkspaceZeroSteadyStateAllocs is the other tentpole acceptance check:
// repeated Multiply with a shared Workspace performs zero steady-state heap
// allocations (single-threaded; the parallel paths add only goroutine-spawn
// allocations).
func TestWorkspaceZeroSteadyStateAllocs(t *testing.T) {
	a := gen.ER(400, 6, 1).ToCSC()
	b := gen.ER(400, 6, 2)
	for _, tc := range []struct {
		name   string
		budget int64
	}{{"single-shot", 0}, {"budgeted", 32 << 10}} {
		t.Run(tc.name, func(t *testing.T) {
			ws := NewWorkspace()
			opt := Options{Threads: 1, Workspace: ws, MemoryBudgetBytes: tc.budget}
			// Warm up: grow every pooled buffer to its high-water mark.
			if _, _, err := Multiply(a, b, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, _, err := Multiply(a, b, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state Multiply allocated %.1f times per call, want 0", allocs)
			}
		})
	}
}

// TestWorkspaceReuseAcrossShapes multiplies differently-shaped inputs
// through one workspace, verifying results against the reference and that
// shrinking inputs do not read stale pooled state.
func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	ws := NewWorkspace()
	shapes := []struct {
		n    int32
		d    int
		seed uint64
	}{{500, 6, 1}, {64, 3, 2}, {300, 5, 3}, {8, 2, 4}, {500, 6, 5}}
	for _, s := range shapes {
		a := gen.ER(s.n, s.d, s.seed)
		b := gen.ER(s.n, s.d, s.seed+100)
		want := matrix.ReferenceMultiply(a, b)
		got, _, err := Multiply(a.ToCSC(), b, Options{Workspace: ws, MemoryBudgetBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(want, got, 1e-9) {
			t.Fatalf("n=%d: workspace-pooled product differs from reference", s.n)
		}
	}
}

// TestWorkspaceResultAliasing documents the pooled-output contract: the CSR
// returned from a workspace run is overwritten by the next call, and Clone
// detaches it.
func TestWorkspaceResultAliasing(t *testing.T) {
	ws := NewWorkspace()
	a := gen.ER(200, 4, 1).ToCSC()
	b := gen.ER(200, 4, 2)
	c1, _, err := Multiply(a, b, Options{Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	keep := c1.Clone()
	a2 := gen.ER(200, 4, 7).ToCSC()
	b2 := gen.ER(200, 4, 8)
	if _, _, err := Multiply(a2, b2, Options{Workspace: ws}); err != nil {
		t.Fatal(err)
	}
	want := matrix.ReferenceMultiply(gen.ER(200, 4, 1), b)
	if !matrix.Equal(want, keep, 1e-9) {
		t.Fatal("cloned result corrupted by workspace reuse")
	}
}

// TestBudgetedEmptyAndEdgeShapes exercises degenerate inputs through the
// budgeted path.
func TestBudgetedEmptyAndEdgeShapes(t *testing.T) {
	ws := NewWorkspace()
	empty := matrix.NewCSR(10, 10, 0)
	c, st, err := Multiply(empty.ToCSC(), empty, Options{Workspace: ws, MemoryBudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 0 || st.Flops != 0 {
		t.Fatal("empty product must be empty")
	}
	// 1x1 identity-ish.
	one := &matrix.COO{NumRows: 1, NumCols: 1, Row: []int32{0}, Col: []int32{0}, Val: []float64{2}}
	m := one.ToCSR()
	c, _, err = Multiply(m.ToCSC(), m, Options{Workspace: ws, MemoryBudgetBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 || c.Val[0] != 4 {
		t.Fatalf("1x1 square wrong: %v", c.Val)
	}
}

// TestPartitionedWithWorkspaceAndBudget combines the Section V-D partitioned
// variant with the budgeted engine and a shared workspace.
func TestPartitionedWithWorkspaceAndBudget(t *testing.T) {
	a := gen.ER(300, 5, 21)
	b := gen.ER(300, 5, 22)
	want := matrix.ReferenceMultiply(a, b)
	ws := NewWorkspace()
	got, st, err := MultiplyPartitioned(a.ToCSC(), b, 3, Options{Workspace: ws, MemoryBudgetBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("partitioned+budgeted product differs from reference")
	}
	if st.NPanels < 2 {
		t.Fatalf("expected budget to tile at least one band, NPanels=%d", st.NPanels)
	}
}
