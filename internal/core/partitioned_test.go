package core

import (
	"fmt"
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

func TestPartitionedMatchesMultiply(t *testing.T) {
	a := gen.ER(600, 6, 1)
	b := gen.ER(600, 6, 2)
	want := matrix.ReferenceMultiply(a, b)
	acsc := a.ToCSC()
	for _, parts := range []int{1, 2, 3, 4, 8, 600, 10000} {
		t.Run(fmt.Sprintf("parts%d", parts), func(t *testing.T) {
			got, st, err := MultiplyPartitioned(acsc, b, parts, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("invalid CSR: %v", err)
			}
			if !matrix.Equal(want, got, 1e-9) {
				t.Fatal("partitioned result differs from reference")
			}
			if st.Flops != matrix.FlopsCSR(a, b) {
				t.Errorf("flops %d, want %d", st.Flops, matrix.FlopsCSR(a, b))
			}
		})
	}
}

func TestPartitionedSkewedInput(t *testing.T) {
	a := gen.RMAT(9, 8, gen.Graph500Params, 3)
	b := gen.RMAT(9, 8, gen.Graph500Params, 4)
	want := matrix.ReferenceMultiply(a, b)
	got, _, err := MultiplyPartitioned(a.ToCSC(), b, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("partitioned result differs on skewed input")
	}
}

func TestPartitionedTrafficModel(t *testing.T) {
	a := gen.ER(512, 4, 5)
	b := gen.ER(512, 4, 6)
	acsc := a.ToCSC()
	_, st1, err := MultiplyPartitioned(acsc, b, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st4, err := MultiplyPartitioned(acsc, b, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ExpandBytes counts executed loads and stores, which band partitioning
	// re-runs unchanged (each band performs a disjoint subset of the FLOPs).
	// The physical once-per-band re-fetch of B is a cache effect that shows
	// up in measured time, so a band split that thrashes B lowers GB/s
	// instead of inflating the byte count.
	if st4.ExpandBytes != st1.ExpandBytes {
		t.Fatalf("expand traffic changed under partitioning: 4-band %d, 1-band %d",
			st4.ExpandBytes, st1.ExpandBytes)
	}
	if st4.Flops != st1.Flops {
		t.Fatalf("flops changed under partitioning: %d vs %d", st4.Flops, st1.Flops)
	}
}

func TestPartitionedShapeMismatch(t *testing.T) {
	a := gen.ER(32, 2, 1).ToCSC()
	b := gen.ER(64, 2, 2)
	if _, _, err := MultiplyPartitioned(a, b, 2, Options{}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestPartitionedEmptyBands(t *testing.T) {
	// A matrix whose nonzeros all live in the last rows: leading bands are
	// empty, exercising the pointer-gap fill.
	n := int32(128)
	coo := &matrix.COO{NumRows: n, NumCols: n}
	r := gen.NewRNG(9)
	for e := 0; e < 200; e++ {
		coo.Row = append(coo.Row, n-1-r.Intn(8))
		coo.Col = append(coo.Col, r.Intn(n))
		coo.Val = append(coo.Val, r.Float64())
	}
	a := coo.ToCSR()
	want := matrix.ReferenceMultiply(a, a)
	got, _, err := MultiplyPartitioned(a.ToCSC(), a, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("partitioned result differs with empty bands")
	}
}

func TestExtractRowBand(t *testing.T) {
	a := gen.ER(100, 5, 7).ToCSC()
	band := extractRowBand(a, 20, 50)
	if band.NumRows != 30 || band.NumCols != a.NumCols {
		t.Fatalf("band shape %dx%d", band.NumRows, band.NumCols)
	}
	if err := band.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every band entry must correspond to an original entry shifted by 20.
	full := a.ToCSR()
	bandCSR := band.ToCSR()
	for i := int32(0); i < 30; i++ {
		if bandCSR.RowNNZ(i) != full.RowNNZ(i+20) {
			t.Fatalf("band row %d nnz mismatch", i)
		}
	}
}
