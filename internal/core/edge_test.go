package core

import (
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// TestGiantHypersparse multiplies 20M x 20M matrices with only a few
// hundred nonzeros: dimensions need 27-bit column ids and the bins span
// ~10K rows each, exercising the upper reaches of the key packing
// (localRow<<colBits | col must stay within 64 bits and round-trip).
func TestGiantHypersparse(t *testing.T) {
	n := int32(20_000_000)
	r := gen.NewRNG(123)
	aco := &matrix.COO{NumRows: n, NumCols: n}
	bco := &matrix.COO{NumRows: n, NumCols: n}
	// A k-regular-ish overlap structure so the product is non-empty: both
	// matrices reuse a small pool of inner indices.
	pool := make([]int32, 64)
	for i := range pool {
		pool[i] = r.Intn(n)
	}
	for e := 0; e < 400; e++ {
		k := pool[r.Intn(64)]
		aco.Row = append(aco.Row, r.Intn(n))
		aco.Col = append(aco.Col, k)
		aco.Val = append(aco.Val, r.Float64())
		bco.Row = append(bco.Row, k)
		bco.Col = append(bco.Col, r.Intn(n))
		bco.Val = append(bco.Val, r.Float64())
	}
	a, b := aco.ToCSR(), bco.ToCSR()
	want := matrix.ReferenceMultiply(a, b)
	if want.NNZ() == 0 {
		t.Fatal("test construction produced an empty product")
	}
	got, st, err := Multiply(a.ToCSC(), b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("giant hypersparse product differs from reference")
	}
	if st.Flops == 0 || st.NNZC != got.NNZ() {
		t.Fatalf("stats wrong: flops=%d nnzc=%d", st.Flops, st.NNZC)
	}
}

// TestWideColumnsKeyBits multiplies with a B whose column count forces the
// maximum column-bit width against a tall A, checking no key-bit overlap.
func TestWideColumnsKeyBits(t *testing.T) {
	// A: 5000 x 64, B: 64 x (2^30): colBits = 31 with Len32(2^30)... keys =
	// localRow<<31 | col; rowsPerBin keeps localRow small.
	rows := int32(5000)
	inner := int32(64)
	cols := int32(1) << 30
	r := gen.NewRNG(9)
	aco := &matrix.COO{NumRows: rows, NumCols: inner}
	bco := &matrix.COO{NumRows: inner, NumCols: cols}
	for e := 0; e < 300; e++ {
		aco.Row = append(aco.Row, r.Intn(rows))
		aco.Col = append(aco.Col, r.Intn(inner))
		aco.Val = append(aco.Val, r.Float64())
		bco.Row = append(bco.Row, r.Intn(inner))
		bco.Col = append(bco.Col, r.Intn(cols))
		bco.Val = append(bco.Val, r.Float64())
	}
	a, b := aco.ToCSR(), bco.ToCSR()
	want := matrix.ReferenceMultiply(a, b)
	got, _, err := Multiply(a.ToCSC(), b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("wide-column product differs from reference")
	}
}

// TestSelfMultiplyAliasing squares a matrix passing the *same* underlying
// arrays as both operands (A as CSC, A as CSR share values): the kernel
// must not mutate its inputs.
func TestSelfMultiplyAliasing(t *testing.T) {
	a := gen.ER(256, 6, 77)
	before := a.Clone()
	acsc := a.ToCSC()
	if _, _, err := Multiply(acsc, a, Options{}); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(a, before, 0) {
		t.Fatal("Multiply mutated its input")
	}
	if err := acsc.Validate(); err != nil {
		t.Fatal("Multiply corrupted the CSC input")
	}
}

// TestRepeatedMultiplyStable runs the same multiplication many times to
// shake out cursor/buffer reuse bugs (each call must allocate fresh state).
func TestRepeatedMultiplyStable(t *testing.T) {
	a := gen.ER(128, 4, 5)
	acsc := a.ToCSC()
	first, _, err := Multiply(acsc, a, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, _, err := Multiply(acsc, a, Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(first, got, 0) {
			t.Fatalf("run %d differs from first run", i)
		}
	}
}
