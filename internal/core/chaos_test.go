//go:build faultinject

package core

// The chaos suite: deterministic fault injection (internal/faultinject,
// compiled in by the faultinject build tag) drives worker panics, slow
// workers and forced cancellations into every instrumented site of the
// pipeline, asserting the containment contract each time — typed error, no
// goroutine leak, and the next multiply on the same pooled workspace
// bit-identical to a fresh one.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

func chaosInputs() (*matrix.CSC, *matrix.CSR) {
	a := gen.ER(1024, 8, 21)
	b := gen.ER(1024, 8, 22)
	return a.ToCSC(), b
}

// runChaos executes one multiply under opt and returns its error.
func runChaos(acsc *matrix.CSC, b *matrix.CSR, opt Options) error {
	_, _, err := Multiply(acsc, b, opt)
	return err
}

// TestChaosSiteMatrix arms a panic at every in-kernel fault site across
// layouts, thread counts and budgets. Whenever the site fires for a
// configuration, the run must return a *par.PanicError; afterwards the same
// pooled workspace must serve a bit-identical product.
func TestChaosSiteMatrix(t *testing.T) {
	acsc, b := chaosInputs()
	sites := []faultinject.Site{
		faultinject.SiteExpandColumn, faultinject.SiteSortTask,
		faultinject.SiteFoldBin, faultinject.SiteMergeBin,
		faultinject.SiteAssembleBin, faultinject.SiteGrow,
	}
	type cfg struct {
		name string
		opt  Options
	}
	cfgs := []cfg{
		{"wide-t1", Options{Threads: 1, ForceLayout: LayoutWide}},
		{"wide-t4", Options{Threads: 4, ForceLayout: LayoutWide}},
		{"squeezed-t4", Options{Threads: 4, ForceLayout: LayoutSqueezed}},
		{"unfused-t4", Options{Threads: 4, ForceLayout: LayoutWide, DisableFusion: true}},
		{"budgeted-t1", Options{Threads: 1, MemoryBudgetBytes: 1 << 18}},
		{"budgeted-t4", Options{Threads: 4, MemoryBudgetBytes: 1 << 18}},
	}
	before := runtime.NumGoroutine()
	for _, c := range cfgs {
		want, _, err := Multiply(acsc, b, c.opt)
		if err != nil {
			t.Fatalf("%s: clean run: %v", c.name, err)
		}
		for _, site := range sites {
			t.Run(c.name+"/"+site.String(), func(t *testing.T) {
				ws := NewWorkspace()
				opt := c.opt
				opt.Workspace = ws

				faultinject.Arm(faultinject.Plan{
					Site: site, Hit: 1, Worker: -1, Mode: faultinject.ModePanic})
				err := runChaos(acsc, b, opt)
				fired := faultinject.Hits(site) > 0
				faultinject.Disarm()

				if !fired {
					// This configuration never reaches the site (e.g. no
					// merge without a budget); the run must just succeed.
					if err != nil {
						t.Fatalf("site not reached but run failed: %v", err)
					}
					return
				}
				if err == nil {
					t.Fatal("injected panic did not surface as an error")
				}
				var pe *par.PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("error is not a *par.PanicError: %v", err)
				}
				var fault faultinject.Fault
				if !errors.As(err, &fault) || fault.Site != site {
					t.Fatalf("PanicError does not unwrap to the injected Fault: %v", err)
				}
				if !ws.Poisoned() {
					t.Fatal("workspace not poisoned after injected panic")
				}

				got, _, err := Multiply(acsc, b, opt)
				if err != nil {
					t.Fatalf("reuse after injected panic: %v", err)
				}
				if !csrBitIdentical(want, got) {
					t.Fatal("reused workspace after injected panic differs from fresh")
				}
			})
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines: %d before chaos matrix, %d after", before, g)
	}
}

// TestChaosSlowWorker injects a sleeping worker: the run must still complete
// correctly (slow, not wrong).
func TestChaosSlowWorker(t *testing.T) {
	acsc, b := chaosInputs()
	want, _, err := Multiply(acsc, b, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteSortTask, Hit: 1, Worker: -1,
		Mode: faultinject.ModeSleep, SleepNanos: int64(50 * time.Millisecond)})
	got, _, err := Multiply(acsc, b, Options{Threads: 4})
	faultinject.Disarm()
	if err != nil {
		t.Fatal(err)
	}
	if !csrBitIdentical(want, got) {
		t.Fatal("slow worker changed the result")
	}
}

// TestChaosForcedCancellation uses ModeCall to flip a cancellation flag from
// inside a phase loop, asserting the forced cancel surfaces like any other.
func TestChaosForcedCancellation(t *testing.T) {
	acsc, b := chaosInputs()
	var tripped atomic.Bool
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteExpandColumn, Hit: 64, Worker: -1,
		Mode: faultinject.ModeCall,
		Fn:   func(faultinject.Site, int) { tripped.Store(true) }})
	_, _, err := Multiply(acsc, b, Options{Threads: 4, Cancel: func() error {
		if tripped.Load() {
			return context.Canceled
		}
		return nil
	}})
	faultinject.Disarm()
	if !tripped.Load() {
		t.Fatal("injection callback never ran")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("forced cancellation: err = %v", err)
	}
}

// FuzzFaultSites drives PlanFromSeed: arbitrary (site, hit) panic plans must
// always yield either a clean result or a typed error, and the pooled
// workspace must recover to bit-identical output either way.
func FuzzFaultSites(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 0x1234, 0xdeadbeef, 1 << 40} {
		f.Add(seed)
	}
	acsc, b := chaosInputs()
	want, _, err := Multiply(acsc, b, Options{Threads: 4, MemoryBudgetBytes: 1 << 18})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		ws := NewWorkspace()
		opt := Options{Threads: 4, MemoryBudgetBytes: 1 << 18, Workspace: ws}
		faultinject.Arm(faultinject.PlanFromSeed(seed))
		err := runChaos(acsc, b, opt)
		faultinject.Disarm()
		if err != nil {
			var pe *par.PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("seed %#x: non-typed error: %v", seed, err)
			}
		}
		got, _, err := Multiply(acsc, b, opt)
		if err != nil {
			t.Fatalf("seed %#x: reuse run: %v", seed, err)
		}
		if !csrBitIdentical(want, got) {
			t.Fatalf("seed %#x: reused workspace differs from fresh", seed)
		}
	})
}
