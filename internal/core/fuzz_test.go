package core

import (
	"testing"

	"pbspgemm/internal/matrix"
)

// fuzzMatrices decodes a byte string into a small A (CSC) / B (CSR) pair
// with matching inner dimension. Values are small integers (stored exactly
// in float64), so every summation order produces bit-identical results and
// the budgeted path can be held to exact equality with the single-shot path.
func fuzzMatrices(data []byte) (*matrix.CSC, *matrix.CSR, bool) {
	if len(data) < 3 {
		return nil, nil, false
	}
	rows := int32(data[0]%24) + 1
	inner := int32(data[1]%24) + 1
	cols := int32(data[2]%24) + 1
	data = data[3:]

	cooA := &matrix.COO{NumRows: rows, NumCols: inner}
	cooB := &matrix.COO{NumRows: inner, NumCols: cols}
	// Alternate entries between A and B, three bytes each.
	for i := 0; i+2 < len(data); i += 3 {
		r, c, v := data[i], data[i+1], int64(data[i+2]%7)+1
		if (i/3)%2 == 0 {
			cooA.Row = append(cooA.Row, int32(r)%rows)
			cooA.Col = append(cooA.Col, int32(c)%inner)
			cooA.Val = append(cooA.Val, float64(v))
		} else {
			cooB.Row = append(cooB.Row, int32(r)%inner)
			cooB.Col = append(cooB.Col, int32(c)%cols)
			cooB.Val = append(cooB.Val, float64(v))
		}
	}
	return cooA.ToCSC(), cooB.ToCSR(), true
}

// FuzzSqueezedVsWide drives random shapes through both tuple layouts —
// forced via Options.ForceLayout — and asserts identical CSR. Values are
// small integers (see fuzzMatrices), so every summation order is exact and
// the layouts can be held to exact equality even though their radix digit
// plans fold duplicate keys in different orders. Budgeted and multi-thread
// variants ride along.
func FuzzSqueezedVsWide(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{24, 24, 24, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 1, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5})

	wsSq, wsWide := NewWorkspace(), NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzMatrices(data)
		if !ok {
			return
		}
		wide, stW, err := Multiply(a, b, Options{ForceLayout: LayoutWide})
		if err != nil {
			t.Fatal(err)
		}
		if stW.Layout != LayoutWide {
			t.Fatalf("forced wide ran %v", stW.Layout)
		}
		for _, opt := range []Options{
			{ForceLayout: LayoutSqueezed},
			{ForceLayout: LayoutSqueezed, Threads: 3},
			{ForceLayout: LayoutSqueezed, Threads: 1, Workspace: wsSq},
			{ForceLayout: LayoutSqueezed, MemoryBudgetBytes: 256},
		} {
			sq, stS, err := Multiply(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			// These fuzz shapes are ≤ 24 wide, so squeezing always applies.
			if stS.Layout != LayoutSqueezed {
				t.Fatalf("forced squeezed ran %v (opt %+v)", stS.Layout, opt)
			}
			if !matrix.Equal(wide, sq, 0) {
				t.Fatalf("squeezed output (opt %+v) differs from wide", opt)
			}
		}
		// And the wide budgeted/pooled variants against plain wide.
		got, _, err := Multiply(a, b, Options{ForceLayout: LayoutWide, MemoryBudgetBytes: 128, Workspace: wsWide})
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(wide, got, 0) {
			t.Fatal("budgeted wide differs from single-shot wide")
		}
	})
}

// FuzzMultiply feeds random small CSC/CSR shapes through the unbudgeted and
// budgeted execution paths (with and without a shared workspace) and asserts
// the outputs are identical CSR, cross-checked against the reference
// accumulator.
func FuzzMultiply(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{1, 1, 1, 0, 0, 5})
	f.Add([]byte{23, 7, 19, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 16, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5, 4, 3, 2, 1})

	ws := NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzMatrices(data)
		if !ok {
			return
		}
		want, st, err := Multiply(a, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Reference ground truth (exact: integer values, tiny sums).
		ref := matrix.ReferenceMultiply(a.ToCSR(), b)
		if !matrix.Equal(ref, want, 0) {
			t.Fatalf("single-shot differs from reference (flops=%d)", st.Flops)
		}
		for _, opt := range []Options{
			{MemoryBudgetBytes: 16},  // ~1 tuple per panel
			{MemoryBudgetBytes: 256}, // a few columns per panel
			{MemoryBudgetBytes: 16, Threads: 1, Workspace: ws},
			{MemoryBudgetBytes: 256, Workspace: ws},
		} {
			got, _, err := Multiply(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(want, got, 0) {
				t.Fatalf("budgeted output (opt %+v) not identical to single-shot", opt)
			}
		}
	})
}
