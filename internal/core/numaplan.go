package core

import (
	"unsafe"

	"pbspgemm/internal/numa"
	"pbspgemm/internal/par"
)

// NUMA-aware execution (Section V-D made actionable). When the host — or an
// injected Options.NUMA machine — has more than one memory node and the run
// is multi-threaded, the engine:
//
//   - assigns workers to nodes in contiguous blocks (numa.Machine
//     .AssignWorkers) and pins each phase's worker threads to their node's
//     CPUs (best-effort sched_setaffinity; a failed pin is harmless),
//   - first-touches each panel's global-bin tuple ranges from the node that
//     blocked-bin assignment gives them, so Linux's first-touch policy
//     places a bin's pages on the socket whose workers will sort it,
//   - hands the sort phase's work-stealing scheduler a NUMA-aware victim
//     order (numa.VictimOrder): a worker out of local tasks raids same-node
//     deques before crossing the interconnect.
//
// None of this changes results: scheduling only moves work between workers
// whose outputs are disjoint, and first-touch writes zeros that expand
// overwrites (panelPlan sizes bins exactly). On a single-node machine —
// or when numa discovery falls back to the Table VII model, whose CPU ids
// describe the paper's machine, not this host — the engine runs exactly as
// before: no pinning, round-robin stealing, no touch pass.

// numaPlan resolves the run's NUMA machine and, when actionable, builds the
// pooled worker→node assignment and steal-victim order.
func (e *engine) numaPlan() {
	m := e.opt.NUMA
	if m == nil {
		m = numa.Default()
	}
	e.numaM = nil
	e.workerNodes = nil
	e.st.NUMANodes = 1
	threads := e.opt.Threads
	if m == nil || threads <= 1 || m.NNodes() <= 1 || m.Source == "fallback" {
		return
	}
	e.numaM = m
	e.st.NUMANodes = m.NNodes()
	ws := e.ws
	if ws.polMachine != m || ws.polThreads != threads {
		ws.polNodes = m.AssignWorkers(threads)
		ws.polVictims, ws.polNearLen = numa.VictimOrder(ws.polNodes)
		ws.polMachine, ws.polThreads = m, threads
	}
	e.workerNodes = ws.polNodes
}

// pinWorker pins the calling goroutine's thread to worker w's node,
// returning the teardown (a no-op when NUMA is inactive).
func (e *engine) pinWorker(w int) func() {
	if e.numaM == nil {
		return func() {}
	}
	return numa.PinThread(e.numaM.NodeCPUs(e.workerNodes[w]))
}

// firstTouchBins touches the current panel's global-bin tuple ranges from
// their owning nodes (blocked bin→worker assignment, matching
// AssignWorkers), so freshly grown pages land on the socket that sorts
// them. Pooled pages keep their placement — first touch is first touch.
func (e *engine) firstTouchBins() {
	if e.numaM == nil {
		return
	}
	threads := e.opt.Threads
	nbins := e.nbins
	bs := e.ws.binStart
	par.ParallelRun(threads, func(w int) {
		defer e.pinWorker(w)()
		for bin := w * nbins / threads; bin < (w+1)*nbins/threads; bin++ {
			e.lay.touchRange(e, bs[bin], bs[bin+1])
		}
	})
}

// pageBytes is the touch stride: one store per (smallest common) OS page.
const pageBytes = 4096

// touchPages writes a zero into one element per page of s — enough to fault
// every page in from the calling thread's node. Callers only touch ranges
// that a later phase fully overwrites.
func touchPages[T any](s []T) {
	if len(s) == 0 {
		return
	}
	var z T
	step := pageBytes / int(unsafe.Sizeof(z))
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(s); i += step {
		s[i] = z
	}
}
