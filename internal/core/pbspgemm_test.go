package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// multiplyCSR is a test convenience: run PB-SpGEMM on two CSR inputs.
func multiplyCSR(t testing.TB, a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats) {
	t.Helper()
	c, st, err := Multiply(a.ToCSC(), b, opt)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	return c, st
}

func TestMultiplyMatchesReferenceER(t *testing.T) {
	for _, tc := range []struct {
		n int32
		d int
	}{
		{16, 2}, {64, 4}, {256, 8}, {1024, 4}, {2048, 2},
	} {
		t.Run(fmt.Sprintf("n%d_d%d", tc.n, tc.d), func(t *testing.T) {
			a := gen.ER(tc.n, tc.d, 1)
			b := gen.ER(tc.n, tc.d, 2)
			want := matrix.ReferenceMultiply(a, b)
			got, st := multiplyCSR(t, a, b, Options{})
			if err := got.Validate(); err != nil {
				t.Fatalf("invalid output: %v", err)
			}
			if !matrix.Equal(want, got, 1e-9) {
				t.Fatalf("PB result differs from reference (n=%d d=%d)", tc.n, tc.d)
			}
			if st.Flops != matrix.FlopsCSR(a, b) {
				t.Errorf("stats flops %d != %d", st.Flops, matrix.FlopsCSR(a, b))
			}
			if st.NNZC != got.NNZ() {
				t.Errorf("stats nnzC %d != %d", st.NNZC, got.NNZ())
			}
		})
	}
}

func TestMultiplyMatchesReferenceRMAT(t *testing.T) {
	a := gen.RMAT(10, 8, gen.Graph500Params, 7)
	b := gen.RMAT(10, 8, gen.Graph500Params, 8)
	want := matrix.ReferenceMultiply(a, b)
	got, _ := multiplyCSR(t, a, b, Options{})
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("PB result differs from reference on RMAT input")
	}
}

func TestMultiplyRectangular(t *testing.T) {
	// A is 64x128, B is 128x32 — exercises m != k != n and colBits for a
	// non-power-of-two-ish shape.
	aco := &matrix.COO{NumRows: 64, NumCols: 128}
	bco := &matrix.COO{NumRows: 128, NumCols: 32}
	r := gen.NewRNG(3)
	for e := 0; e < 500; e++ {
		aco.Row = append(aco.Row, r.Intn(64))
		aco.Col = append(aco.Col, r.Intn(128))
		aco.Val = append(aco.Val, r.Float64())
		bco.Row = append(bco.Row, r.Intn(128))
		bco.Col = append(bco.Col, r.Intn(32))
		bco.Val = append(bco.Val, r.Float64())
	}
	a, b := aco.ToCSR(), bco.ToCSR()
	want := matrix.ReferenceMultiply(a, b)
	got, _ := multiplyCSR(t, a, b, Options{})
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("PB result differs from reference on rectangular input")
	}
}

func TestMultiplyShapeMismatch(t *testing.T) {
	a := gen.ER(32, 2, 1).ToCSC()
	b := gen.ER(64, 2, 2)
	if _, _, err := Multiply(a, b, Options{}); err == nil {
		t.Fatal("expected shape error, got nil")
	}
}

func TestMultiplyEmptyInputs(t *testing.T) {
	empty := matrix.NewCSR(32, 32, 0)
	a := gen.ER(32, 4, 1)
	for name, pair := range map[string][2]*matrix.CSR{
		"empty_A":    {empty, a},
		"empty_B":    {a, empty},
		"empty_both": {empty, empty},
	} {
		t.Run(name, func(t *testing.T) {
			got, st := multiplyCSR(t, pair[0], pair[1], Options{})
			if got.NNZ() != 0 {
				t.Fatalf("expected empty result, got %d nnz", got.NNZ())
			}
			if st.Flops != 0 {
				t.Fatalf("expected 0 flops, got %d", st.Flops)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("invalid empty output: %v", err)
			}
		})
	}
}

func TestMultiplyIdentity(t *testing.T) {
	n := int32(257)
	id := &matrix.COO{NumRows: n, NumCols: n}
	for i := int32(0); i < n; i++ {
		id.Row = append(id.Row, i)
		id.Col = append(id.Col, i)
		id.Val = append(id.Val, 1)
	}
	eye := id.ToCSR()
	a := gen.ER(n, 5, 11)
	got, _ := multiplyCSR(t, a, eye, Options{})
	if !matrix.Equal(a, got, 0) {
		t.Fatal("A*I != A")
	}
	got2, _ := multiplyCSR(t, eye, a, Options{})
	if !matrix.Equal(a, got2, 0) {
		t.Fatal("I*A != A")
	}
}

func TestOptionsSweepAgree(t *testing.T) {
	a := gen.ER(512, 8, 21)
	b := gen.ER(512, 8, 22)
	want := matrix.ReferenceMultiply(a, b)
	for _, nbins := range []int{1, 2, 3, 7, 64, 511, 512} {
		for _, lbb := range []int{16, 64, 512, 4096} {
			for _, threads := range []int{1, 2, 8} {
				opt := Options{NBins: nbins, LocalBinBytes: lbb, Threads: threads}
				got, st := multiplyCSR(t, a, b, opt)
				if !matrix.Equal(want, got, 1e-9) {
					t.Fatalf("mismatch at nbins=%d localBin=%d threads=%d", nbins, lbb, threads)
				}
				if st.NBins > 512 {
					t.Fatalf("nbins %d exceeds rows", st.NBins)
				}
			}
		}
	}
}

func TestMultiplySingleColumnAndRow(t *testing.T) {
	// Outer product of a column vector and a row vector: dense rank-1 result.
	n := int32(100)
	colV := &matrix.COO{NumRows: n, NumCols: 1}
	rowV := &matrix.COO{NumRows: 1, NumCols: n}
	for i := int32(0); i < n; i++ {
		colV.Row = append(colV.Row, i)
		colV.Col = append(colV.Col, 0)
		colV.Val = append(colV.Val, float64(i+1))
		rowV.Row = append(rowV.Row, 0)
		rowV.Col = append(rowV.Col, i)
		rowV.Val = append(rowV.Val, 2)
	}
	a, b := colV.ToCSR(), rowV.ToCSR()
	got, st := multiplyCSR(t, a, b, Options{})
	if got.NNZ() != int64(n)*int64(n) {
		t.Fatalf("rank-1 product nnz = %d, want %d", got.NNZ(), int64(n)*int64(n))
	}
	if st.CF != 1 {
		t.Fatalf("rank-1 cf = %v, want 1", st.CF)
	}
	for i := int32(0); i < n; i++ {
		for p := got.RowPtr[i]; p < got.RowPtr[i+1]; p++ {
			want := float64(i+1) * 2
			if math.Abs(got.Val[p]-want) > 1e-12 {
				t.Fatalf("entry (%d,%d) = %v, want %v", i, got.ColIdx[p], got.Val[p], want)
			}
		}
	}
}

func TestQuickPBEqualsReference(t *testing.T) {
	// Property: for arbitrary small random matrices, PB == reference.
	f := func(seedA, seedB uint64, dims [3]uint8, nnzSel uint16) bool {
		m := int32(dims[0]%60) + 4
		k := int32(dims[1]%60) + 4
		n := int32(dims[2]%60) + 4
		nnz := int(nnzSel%512) + 1
		r := gen.NewRNG(seedA)
		aco := &matrix.COO{NumRows: m, NumCols: k}
		for e := 0; e < nnz; e++ {
			aco.Row = append(aco.Row, r.Intn(m))
			aco.Col = append(aco.Col, r.Intn(k))
			aco.Val = append(aco.Val, r.Float64())
		}
		r2 := gen.NewRNG(seedB)
		bco := &matrix.COO{NumRows: k, NumCols: n}
		for e := 0; e < nnz; e++ {
			bco.Row = append(bco.Row, r2.Intn(k))
			bco.Col = append(bco.Col, r2.Intn(n))
			bco.Val = append(bco.Val, r2.Float64())
		}
		a, b := aco.ToCSR(), bco.ToCSR()
		want := matrix.ReferenceMultiply(a, b)
		got, _, err := Multiply(a.ToCSC(), b, Options{NBins: int(seedA%8) + 1})
		if err != nil {
			return false
		}
		return matrix.Equal(want, got, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsBytesModel(t *testing.T) {
	a := gen.ER(256, 4, 5)
	b := gen.ER(256, 4, 6)
	// Default path: fused pipeline. Sort/Compress accounting is replaced by
	// the fused pass (one read-back of the expanded tuples).
	_, st := multiplyCSR(t, a, b, Options{})
	// Small square ER: the key geometry always allows squeezing, so the
	// traffic model must run at 12 bytes per expanded tuple.
	if st.Layout != LayoutSqueezed || st.TupleBytes != SqueezedTupleBytes {
		t.Fatalf("layout = %v tupleBytes = %d, want squeezed/12", st.Layout, st.TupleBytes)
	}
	if !st.Fused {
		t.Fatal("default run did not report Fused")
	}
	// Executed loads+stores (STREAM's counting): A streamed once, then one
	// B element load (ColIdx + float64 = 12 B) and one tuple store per FLOP.
	wantExpand := matrix.BytesPerTuple*a.NNZ() + (12+st.TupleBytes)*st.Flops
	if st.ExpandBytes != wantExpand {
		t.Errorf("ExpandBytes = %d, want %d", st.ExpandBytes, wantExpand)
	}
	if st.FusedBytes != st.TupleBytes*st.Flops {
		t.Errorf("FusedBytes = %d, want %d", st.FusedBytes, st.TupleBytes*st.Flops)
	}
	if st.SortBytes != 0 || st.CompressBytes != 0 {
		t.Errorf("fused run reported Sort/Compress bytes %d/%d, want 0/0", st.SortBytes, st.CompressBytes)
	}
	if st.GFLOPS() <= 0 || st.ExpandGBs() <= 0 || st.FuseGBs() <= 0 || st.OverallGBs() <= 0 {
		t.Error("expected positive throughput metrics")
	}
	if st.CF < 1 {
		t.Errorf("cf = %v, want >= 1", st.CF)
	}

	// The unfused ablation keeps the PR 4 split accounting.
	_, stu := multiplyCSR(t, a, b, Options{DisableFusion: true})
	if stu.Fused {
		t.Fatal("DisableFusion run reported Fused")
	}
	if stu.SortBytes != stu.TupleBytes*stu.Flops {
		t.Errorf("SortBytes = %d, want %d", stu.SortBytes, stu.TupleBytes*stu.Flops)
	}
	if stu.CompressBytes != stu.TupleBytes*stu.NNZC {
		t.Errorf("CompressBytes = %d, want %d", stu.CompressBytes, stu.TupleBytes*stu.NNZC)
	}
	if stu.FusedBytes != 0 {
		t.Errorf("unfused run reported FusedBytes = %d, want 0", stu.FusedBytes)
	}
	if stu.SortGBs() <= 0 || stu.CompressGBs() <= 0 {
		t.Error("expected positive unfused throughput metrics")
	}

	// The forced wide layout must report the paper's original 16-byte model.
	_, stw := multiplyCSR(t, a, b, Options{ForceLayout: LayoutWide, DisableFusion: true})
	if stw.Layout != LayoutWide || stw.TupleBytes != WideTupleBytes {
		t.Fatalf("forced wide: layout = %v tupleBytes = %d", stw.Layout, stw.TupleBytes)
	}
	if stw.SortBytes != matrix.BytesPerTuple*stw.Flops {
		t.Errorf("wide SortBytes = %d, want %d", stw.SortBytes, matrix.BytesPerTuple*stw.Flops)
	}
}
