package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// cancelInputs is a low-cf ER product large enough that the expand phase
// alone spans many cancelPollTuples windows (~5M flops against the 64Ki-tuple
// poll granularity), so a cancellation raised mid-phase must be observed by
// a sub-phase poll, not a phase boundary.
func cancelInputs(t *testing.T) (*matrix.CSC, *matrix.CSR) {
	t.Helper()
	a := gen.ER(8192, 24, 11)
	b := gen.ER(8192, 24, 12)
	return a.ToCSC(), b
}

// waitNoLeak retries the goroutine count: cancelled workers drain at their
// next poll, slightly after Multiply returns.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancelled multiply", before, runtime.NumGoroutine())
}

// TestExpandPollsSubPhase pins the poll granularity itself: a counting-only
// Cancel hook must be consulted many more times than the handful of phase
// boundaries a run has, proving the polls sit inside the long loops.
func TestExpandPollsSubPhase(t *testing.T) {
	acsc, b := cancelInputs(t)
	var polls atomic.Int64
	opt := Options{Threads: 1, ForceLayout: LayoutWide,
		Cancel: func() error { polls.Add(1); return nil }}
	if _, _, err := Multiply(acsc, b, opt); err != nil {
		t.Fatal(err)
	}
	// A phase-boundary-only implementation polls ~5 times (plan, expand,
	// sort, compress, assemble). ~5M expand tuples / 64Ki per poll plus the
	// per-bin checks put the sub-phase count far above that.
	if n := polls.Load(); n < 20 {
		t.Errorf("Cancel polled %d times over a ~5M-flop product; expected sub-phase granularity (> 20)", n)
	}
}

// TestCancellationLatencyMidPhase cancels mid-run across every tuple layout
// and thread count: the multiply must return the wrapped hook error promptly
// (bounded by the poll granularity, asserted with a generous wall-clock
// ceiling), keep the errors.Is chain to context.DeadlineExceeded intact, and
// leave no worker goroutines behind.
func TestCancellationLatencyMidPhase(t *testing.T) {
	acsc, b := cancelInputs(t)
	aval32 := make([]float32, len(acsc.RowIdx))
	bval32 := make([]float32, len(b.ColIdx))

	type layoutCase struct {
		name string
		run  func(opt Options) error
	}
	layouts := []layoutCase{
		{"wide", func(opt Options) error {
			opt.ForceLayout = LayoutWide
			_, _, err := Multiply(acsc, b, opt)
			return err
		}},
		{"squeezed", func(opt Options) error {
			opt.ForceLayout = LayoutSqueezed
			_, _, err := Multiply(acsc, b, opt)
			return err
		}},
		{"narrow", func(opt Options) error {
			_, _, _, err := MultiplyNarrow(acsc, aval32, b, bval32, opt)
			return err
		}},
		{"pattern", func(opt Options) error {
			_, _, err := MultiplyPattern(acsc, b, opt)
			return err
		}},
	}
	for _, lc := range layouts {
		for _, threads := range []int{1, 2, 8} {
			t.Run(lc.name+"/threads="+string(rune('0'+threads)), func(t *testing.T) {
				before := runtime.NumGoroutine()
				var polls atomic.Int64
				var firedAt atomic.Int64 // wall clock of the first error return
				cancel := func() error {
					// Trip on the 3rd poll: past planning, inside expand's
					// poll windows on this input size.
					if polls.Add(1) >= 3 {
						firedAt.CompareAndSwap(0, time.Now().UnixNano())
						return context.DeadlineExceeded
					}
					return nil
				}
				err := lc.run(Options{Threads: threads, Cancel: cancel})
				returned := time.Now().UnixNano()
				if err == nil {
					t.Fatal("cancelled multiply returned nil error")
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("errors.Is(err, DeadlineExceeded) = false; err = %v", err)
				}
				if !strings.Contains(err.Error(), "canceled in") {
					t.Errorf("error not phase-annotated: %v", err)
				}
				if at := firedAt.Load(); at != 0 {
					if lat := time.Duration(returned - at); lat > 5*time.Second {
						t.Errorf("cancellation latency %v exceeds bound", lat)
					}
				}
				waitNoLeak(t, before)
			})
		}
	}
}

// TestBudgetedCancellation cancels the budgeted (tiled) path mid-run; polls
// also sit per bin in the merge, per task in the sort.
func TestBudgetedCancellation(t *testing.T) {
	acsc, b := cancelInputs(t)
	for _, threads := range []int{1, 4} {
		var polls atomic.Int64
		cancel := func() error {
			if polls.Add(1) >= 5 {
				return context.DeadlineExceeded
			}
			return nil
		}
		_, _, err := Multiply(acsc, b, Options{
			Threads: threads, MemoryBudgetBytes: 1 << 20, Cancel: cancel})
		if err == nil {
			t.Fatalf("threads=%d: cancelled budgeted multiply returned nil error", threads)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("threads=%d: sentinel lost: %v", threads, err)
		}
	}
}

// TestWorkspaceReuseAfterCancel is the reuse-after-failure guarantee for
// cancellation: a workspace whose run was cancelled mid-phase serves the
// next multiply bit-identically to a fresh workspace.
func TestWorkspaceReuseAfterCancel(t *testing.T) {
	acsc, b := cancelInputs(t)
	for _, tc := range []struct {
		name   string
		layout Layout
		budget int64
	}{
		{"wide", LayoutWide, 0},
		{"squeezed", LayoutSqueezed, 0},
		{"wide-budgeted", LayoutWide, 1 << 20},
		{"squeezed-budgeted", LayoutSqueezed, 1 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, _, err := Multiply(acsc, b, Options{Threads: 2, ForceLayout: tc.layout,
				MemoryBudgetBytes: tc.budget})
			if err != nil {
				t.Fatal(err)
			}

			ws := NewWorkspace()
			var polls atomic.Int64
			cancel := func() error {
				if polls.Add(1) >= 3 {
					return context.Canceled
				}
				return nil
			}
			_, _, err = Multiply(acsc, b, Options{Threads: 2, ForceLayout: tc.layout,
				MemoryBudgetBytes: tc.budget, Workspace: ws, Cancel: cancel})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled run: err = %v", err)
			}
			if ws.Poisoned() {
				t.Fatal("cancellation must not poison the workspace (only panics do)")
			}

			got, _, err := Multiply(acsc, b, Options{Threads: 2, ForceLayout: tc.layout,
				MemoryBudgetBytes: tc.budget, Workspace: ws})
			if err != nil {
				t.Fatal(err)
			}
			if !csrBitIdentical(want, got) {
				t.Fatal("multiply on a workspace that hosted a cancelled run differs from fresh")
			}
		})
	}
}

// TestContainedPanicTyped pins the containment contract without the
// faultinject tag: a panic planted through the Cancel hook (called from
// inside the phase loops) surfaces as a *par.PanicError-wrapped error, the
// workspace is poisoned, and reusing it is bit-identical to fresh.
func TestContainedPanicTyped(t *testing.T) {
	acsc, b := cancelInputs(t)
	want, _, err := Multiply(acsc, b, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 2, 8} {
		ws := NewWorkspace()
		var polls atomic.Int64
		boom := func() error {
			if polls.Add(1) >= 3 {
				panic("injected via cancel hook")
			}
			return nil
		}
		_, _, err := Multiply(acsc, b, Options{Threads: threads, Workspace: ws, Cancel: boom})
		if err == nil {
			t.Fatalf("threads=%d: panicked multiply returned nil error", threads)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("threads=%d: error not a contained panic: %v", threads, err)
		}
		if !ws.Poisoned() {
			t.Fatalf("threads=%d: workspace not poisoned after a panic", threads)
		}
		got, _, err := Multiply(acsc, b, Options{Threads: threads, Workspace: ws})
		if err != nil {
			t.Fatalf("threads=%d: reuse after panic: %v", threads, err)
		}
		if ws.Poisoned() {
			t.Fatalf("threads=%d: poison flag not cleared by the reset run", threads)
		}
		if !csrBitIdentical(want, got) {
			t.Fatalf("threads=%d: multiply on a workspace that hosted a panicked run differs from fresh", threads)
		}
	}
}
