package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// This file is the engine's fault-containment and sub-phase cancellation
// layer.
//
// Containment: every parallel worker body defers containWorker, so a panic
// in one worker (an out-of-range index, an injected fault) becomes a
// *par.PanicError on the engine's abort latch instead of a dead process; the
// sibling workers see the raised stop flag at their next poll and drain, the
// phase joins, and the run returns the typed error. Panics that unwind on
// the calling goroutine itself (single-threaded paths, sequential sections,
// or a rethrow from the par primitives) are converted by runContained's
// recover at the entry point. Either way the workspace is poisoned: the next
// run on it starts from a pristine (fully reset) state, so partial phase
// state can never corrupt a later multiplication.
//
// Cancellation: Options.Cancel used to be polled only at phase boundaries,
// so a request deadline could stall behind an entire multi-second phase.
// The long loops now poll at sub-phase granularity — per ~cancelPollTuples
// expanded tuples in expand, per task in the work-stealing sort, per bin in
// compress/merge/assemble — through pollCancel: a raised stop flag (set by
// whichever worker's poll first observed the cancellation, or by a panic)
// costs the others one atomic load to notice. The checks stay off the
// batched inner loops (a poll covers ~64Ki tuples of work), which is what
// keeps the bench gate's ≤1% overhead budget.

// cancelPollTuples is the expand phase's cancellation granularity: a worker
// re-polls Options.Cancel after at most this many expanded tuples. With one
// column of A as the smallest unit between checks, the documented
// cancellation latency bound is the work of cancelPollTuples tuples plus one
// column's outer product (plus scheduling noise) — microseconds to low
// milliseconds, never a whole phase.
const cancelPollTuples = 1 << 16

// latchAbort records the first abort reason — a cancellation error or a
// worker's *par.PanicError — and raises the stop flag every sub-phase loop
// polls. Concurrent workers race benignly: abortLatch elects one writer,
// which publishes abortErr before the abortSeen release store, so any reader
// that observes the flag also observes the error. (Plain uint32s with
// atomic functions, not sync/atomic types: the engine is reset by struct
// assignment in newEngine, which copylocks would reject.)
func (e *engine) latchAbort(err error) {
	if err == nil {
		return
	}
	if atomic.CompareAndSwapUint32(&e.abortLatch, 0, 1) {
		e.abortErr = err
		atomic.StoreUint32(&e.abortSeen, 1)
	}
}

// stopping reports whether a worker should abandon its sub-phase loop: one
// atomic load, cheap enough for per-bin and per-task checks.
func (e *engine) stopping() bool { return atomic.LoadUint32(&e.abortSeen) != 0 }

// pollCancel is the sub-phase cancellation check: the stop flag first (so
// siblings drain promptly once anyone latched), then the caller's Cancel
// hook. Returns true when the worker should return; the phase join's
// canceled() reports the latched reason.
func (e *engine) pollCancel() bool {
	if e.stopping() {
		return true
	}
	if e.opt.Cancel == nil {
		return false
	}
	if err := e.opt.Cancel(); err != nil {
		e.latchAbort(err)
		return true
	}
	return false
}

// abortedErr returns the latched abort reason, nil when none. Valid on the
// calling goroutine after a phase join (the join is the happens-before for
// abortErr; mid-phase workers only ever read the flag).
func (e *engine) abortedErr() error {
	if atomic.LoadUint32(&e.abortSeen) != 0 {
		return e.abortErr
	}
	return nil
}

// wrapCancel annotates a cancellation error with the phase it interrupted,
// wrapping with %w so errors.Is(err, context.DeadlineExceeded) — and any
// other sentinel the caller's Cancel hook returns — keeps working end-to-end
// from an HTTP deadline through the kernel's sub-phase polls. Panic errors
// pass through untouched: they are already typed and phase-annotated.
func (e *engine) wrapCancel(err error) error {
	var pe *par.PanicError
	if errors.As(err, &pe) {
		return err
	}
	return fmt.Errorf("core: multiply canceled in %s phase: %w", e.phase, err)
}

// containWorker is deferred at the top of every parallel worker body. A
// panic becomes the abort latch's *par.PanicError — annotated with the
// worker id and current phase — so siblings drain at their next poll and the
// phase join returns an error; without it the panic would unwind to the
// par primitives' recover, which cannot stop a static-range sibling early.
func (e *engine) containWorker(worker int) {
	if v := recover(); v != nil {
		e.latchAbort(par.AsPanicError(v, worker, e.phase))
	}
}

// runContained is every entry point's body: run the engine and convert any
// panic that reached this frame (sequential sections, single-threaded loops,
// or a rethrow from par) into the same typed error the worker-level
// containment produces. On a panic the workspace is poisoned — the next run
// on it resets to pristine before trusting any pooled plane.
func (e *engine) runContained() (c *matrix.CSR, st *Stats, err error) {
	defer func() {
		if pe := par.AsPanicError(recover(), -1, e.phase); pe != nil {
			c, st, err = nil, nil, e.poisonOnPanic(pe)
		}
	}()
	c0, err0 := e.run()
	if err0 != nil {
		// A worker panic absorbed by the containment latch is surfaced as an
		// error by the phase joins rather than a stack unwind. The errors.As
		// target lives inside the branch so the zero-alloc steady state
		// (err0 == nil) never pays its escape-analysis heap allocation.
		var pe *par.PanicError
		if errors.As(err0, &pe) {
			return nil, nil, e.poisonOnPanic(pe)
		}
	}
	return e.finish(c0, err0)
}

// poisonOnPanic marks the workspace and drops the caller references that
// finish() would have cleared (finish never ran on this path — the inputs
// must not stay pinned by a pooled workspace).
func (e *engine) poisonOnPanic(pe *par.PanicError) error {
	e.ws.poisoned = true
	e.a, e.b, e.st, e.lay = nil, nil, nil, nil
	e.ws.kvF64.aVal, e.ws.kvF64.bVal = nil, nil
	return pe
}

// Poisoned reports whether the workspace's last run panicked. Pool owners
// may discard such a workspace outright; reusing it is also safe — newEngine
// fully resets a poisoned workspace before the next run touches it.
func (ws *Workspace) Poisoned() bool { return ws.poisoned }
