package core

import (
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/numa"
	"pbspgemm/internal/par"
	"pbspgemm/internal/radix"
)

// Workspace pools every buffer the PB-SpGEMM engine needs across calls.
// Buffers are grow-only: a workspace warmed up on the largest multiplication
// of a workload performs subsequent multiplications of the same or smaller
// size with zero heap allocations (exactly zero when Threads == 1; a handful
// of small goroutine/closure allocations otherwise).
//
// A Workspace must not be shared by concurrent Multiply calls. When a call
// runs with Options.Workspace set, the returned CSR and Stats alias
// workspace memory and are invalidated by the next call that uses the same
// workspace; Clone the CSR to keep it.
type Workspace struct {
	// tuples is the wide-layout expanded-tuple buffer for one column panel —
	// the flops×16 byte allocation the unbudgeted single-shot algorithm
	// makes per call. tupleKeys is the shared key plane of every key32
	// layout (squeezed, narrow, pattern); the value planes live in the kv
	// pools below. A run grows only the buffers of the layout it picked.
	tuples    []radix.Pair
	tupleKeys []uint32

	// Budgeted-path buffers: compressed per-(panel,bin) sorted runs, their
	// metadata, and the per-bin merged output — per layout, like the tuple
	// buffer.
	runs        []radix.Pair
	runKeys     []uint32
	merged      []radix.Pair
	mergedKeys  []uint32
	runStart    []int64 // run i occupies runs[runStart[i]:runStart[i+1]]
	runBins     []int32 // global bin of run i
	runIdx      []int32 // run ids grouped by bin
	runIdxStart []int32 // group boundaries into runIdx, len nbins+1
	mergedStart []int64 // per-bin offsets into merged, len nbins+1
	heads       []int64 // k-way merge cursors, threads × maxRunsPerBin

	// Plan and phase scratch.
	colFlops []int64
	binFlops []int64
	// perThread holds the exact per-thread × per-bin tuple counts of the
	// current panel, converted in place into each worker's exclusive write
	// offsets (and then consumed as its private expand cursors).
	perThread   []int64
	binStart    []int64
	panelStart  []int // panel boundaries over A's columns, npanels+1
	colBounds   []int // thread boundaries over the current panel's columns
	cursors     []int64
	binOut      []int64
	binOutStart []int64
	rowCounts   []int64
	sortTasks   []sortTask // sort-phase work-stealing seeds (one per bin)
	binPending  []int32    // split bins' outstanding bucket counts (atomic)
	partBounds  []int64    // per-worker oversized-bin partition boundaries

	// Propagation-blocking local bins, flattened threads × nbins × capTuples,
	// per layout.
	locals    []radix.Pair
	localKeys []uint32
	localLens []int32

	// Sort-phase ping-pong scratch, flattened threads × maxBinTuples of the
	// current panel (engine.scratchStride), per layout; each worker's slice
	// is private, so the stable scatter sorts never contend. Value planes of
	// the kv layouts live in their kv pools (kv.scratchVals).
	scratchPairs []radix.Pair
	scratchKeys  []uint32

	// Sort-phase scheduler state: the pooled steal policy (counters reused
	// across calls) plus the NUMA worker→node assignment and victim orders,
	// rebuilt only when the machine or thread count changes.
	stealPol   par.StealPolicy
	polNodes   []int
	polVictims [][]int
	polNearLen []int
	polMachine *numa.Machine
	polThreads int

	// kvF64 pools the float64 value planes of the squeezed (12 B) layout;
	// kvNarrow holds a *kv[V] for the narrow (8 B) layout's most recent
	// value type V (float32 or int32) — reuse hits while V is stable.
	kvF64    kv[float64]
	kvNarrow any

	// Pooled result storage (used only for shared workspaces).
	out       matrix.CSR
	outRowPtr []int64
	outColIdx []int32
	outVal    []float64

	// Pooled CSC conversion of A for the public API's CSR-in interface.
	csc matrix.CSC

	// stats is returned (by pointer) from Multiply when the workspace is
	// shared, so steady-state calls do not allocate a Stats either.
	stats Stats

	// eng is the per-call engine state; living inside the workspace keeps it
	// off the per-call heap (closures in the parallel paths capture &eng).
	eng engine

	// poisoned marks a workspace whose last run panicked mid-phase: its
	// pooled planes may hold partially-written state. newEngine fully resets
	// a poisoned workspace before the next run, so reuse is safe; pool owners
	// may also just discard it. Cancelled (non-panic) runs never poison —
	// every run re-plans and rewrites the planes it uses from scratch.
	poisoned bool

	// generic pools the type-erased buffers of the semiring engine.
	generic GenericSpace
}

// NewWorkspace returns an empty workspace. All buffers are grown on first
// use, so constructing one is free.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset drops all pooled memory, returning the workspace to its initial
// empty state (useful after a one-off huge multiplication).
func (ws *Workspace) Reset() { *ws = Workspace{} }

// TupleCapBytes reports the current capacity of the pooled expanded-tuple
// buffers in bytes, summed over both layouts' pools: MemoryBudgetBytes
// bounds each run's active pool, but a workspace reused across layouts
// (wide-geometry products mixed with squeezed ones) holds both, and this
// reports the memory actually resident.
func (ws *Workspace) TupleCapBytes() int64 {
	wide := int64(cap(ws.tuples)) * WideTupleBytes
	keys := int64(cap(ws.tupleKeys)) * 4
	vals := ws.kvF64.tupleCapBytes()
	if n, ok := ws.kvNarrow.(interface{ tupleCapBytes() int64 }); ok {
		vals += n.tupleCapBytes()
	}
	return wide + keys + vals
}

// CSCOf converts a into the workspace's pooled CSC storage. The result
// aliases workspace memory and is invalidated by the next CSCOf call.
func (ws *Workspace) CSCOf(a *matrix.CSR) *matrix.CSC { return a.ToCSCInto(&ws.csc) }

// Generic exposes the pooled buffers of the type-generic semiring engine.
func (ws *Workspace) Generic() *GenericSpace { return &ws.generic }

// GenericSpace pools the buffers of internal/semiring's generic engine. The
// tuple and value buffers are type-erased (any) because their element type is
// the semiring's T: reuse hits when T is stable across calls, and a changed T
// simply reallocates. Plain int slices are shared like the float64 engine's.
type GenericSpace struct {
	Tuples, Runs, Merged, OutVal any

	ColFlops, BinFlops, BinStart, Cursor []int64
	BinOut, BinOutStart, RowCounts       []int64
	RunStart, MergedStart, Heads         []int64
	RunBins, RunIdx, RunIdxStart         []int32
	PanelStart                           []int
	OutRowPtr                            []int64
	OutColIdx                            []int32
}
