package core

import "sync/atomic"

// atomicInt64Slice provides atomic fetch-and-add over a plain []int64. The
// expand phase uses one cursor per global bin; contention is spread across
// nbins (≥ 1024 in practice) counters, so a flat slice suffices — the same
// structure a C implementation would use with __atomic_fetch_add.
type atomicInt64Slice []int64

// add atomically adds delta to slot i and returns the new value.
func (s atomicInt64Slice) add(i int, delta int64) int64 {
	return atomic.AddInt64(&s[i], delta)
}

// load atomically reads slot i.
func (s atomicInt64Slice) load(i int) int64 {
	return atomic.LoadInt64(&s[i])
}
