package core

import (
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/numa"
	"pbspgemm/internal/simd"
)

// The batched kernels (internal/simd) are an implementation of the same
// algorithm, not a variant: chunked expand flushes at exactly the per-element
// loop's boundaries and the batched radix passes run the identical digit
// plans, so every layout must produce bit-identical output with
// DisableBatch on and off. These tests are the per-kernel equivalence
// matrix the scalar oracle pins.

// batchedCase is one (input, layout-runner) cell of the matrix. run executes
// the product under opt and returns a comparable result: the CSR plus, for
// the narrow layout, its value plane folded back in.
type batchedCase struct {
	name string
	run  func(t *testing.T, opt Options) *matrix.CSR
}

func batchedCases(t *testing.T) []batchedCase {
	a := intValued(gen.ER(768, 8, 31))
	b := intValued(gen.ER(768, 8, 32))
	askew := intValued(gen.RMAT(9, 8, gen.Graph500Params, 33))
	bskew := intValued(gen.RMAT(9, 8, gen.Graph500Params, 34))
	acsc, askewcsc := a.ToCSC(), askew.ToCSC()
	af32, bf32 := narrowPlanes[float32](acsc, b)

	wide := func(acsc *matrix.CSC, b *matrix.CSR) func(*testing.T, Options) *matrix.CSR {
		return func(t *testing.T, opt Options) *matrix.CSR {
			opt.ForceLayout = LayoutWide
			c, _, err := Multiply(acsc, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}
	}
	squeezed := func(acsc *matrix.CSC, b *matrix.CSR) func(*testing.T, Options) *matrix.CSR {
		return func(t *testing.T, opt Options) *matrix.CSR {
			opt.ForceLayout = LayoutSqueezed
			c, st, err := Multiply(acsc, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if st.Layout != LayoutSqueezed {
				t.Fatalf("squeezed run used layout %v", st.Layout)
			}
			return c
		}
	}
	return []batchedCase{
		{"wide/ER", wide(acsc, b)},
		{"wide/RMAT", wide(askewcsc, bskew)},
		{"squeezed/ER", squeezed(acsc, b)},
		{"squeezed/RMAT", squeezed(askewcsc, bskew)},
		{"pattern/ER", func(t *testing.T, opt Options) *matrix.CSR {
			c, _, err := MultiplyPattern(acsc, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
		{"narrow-f32/ER", func(t *testing.T, opt Options) *matrix.CSR {
			c, vals, _, err := MultiplyNarrow(acsc, af32, b, bf32, opt)
			if err != nil {
				t.Fatal(err)
			}
			// Fold the value plane back into the CSR so matrix.Equal compares
			// values too (exact: integer-valued inputs).
			out := c.Clone()
			out.Val = make([]float64, len(vals))
			for i, v := range vals {
				out.Val[i] = float64(v)
			}
			return out
		}},
	}
}

// TestBatchedMatchesScalarMatrix: batched vs scalar × four layouts ×
// Threads∈{1,2,8} × budgeted/unbudgeted, all held to exact bit-identity
// (inputs are integer-valued, so value folds are exact in every width).
func TestBatchedMatchesScalarMatrix(t *testing.T) {
	for _, tc := range batchedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, budget := range []int64{0, 64 << 10} {
				for _, threads := range []int{1, 2, 8} {
					opt := Options{Threads: threads, MemoryBudgetBytes: budget}
					opt.DisableBatch = true
					want := tc.run(t, opt)
					opt.DisableBatch = false
					got := tc.run(t, opt)
					if want.Val == nil {
						if !csrSameStructure(want, got) {
							t.Fatalf("threads=%d budget=%d: batched structure differs from scalar", threads, budget)
						}
					} else if !matrix.Equal(want, got, 0) {
						t.Fatalf("threads=%d budget=%d: batched differs from scalar", threads, budget)
					}
				}
			}
		})
	}
}

// TestNTFlushBitIdentical forces the non-temporal flush path (normally gated
// on the panel arena outgrowing the LLC) onto the small test inputs and
// holds every layout to exact bit-identity against the scalar oracle. The
// NT copy writes the same bytes as copy() — only the store type differs —
// so results must be unchanged at any thread count.
func TestNTFlushBitIdentical(t *testing.T) {
	old := ntMinArenaBytes
	ntMinArenaBytes = 0
	defer func() { ntMinArenaBytes = old }()
	for _, tc := range batchedCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for _, threads := range []int{1, 8} {
				opt := Options{Threads: threads}
				opt.DisableBatch = true // oracle: scalar path never uses NT
				want := tc.run(t, opt)
				opt.DisableBatch = false
				got := tc.run(t, opt)
				if want.Val == nil {
					if !csrSameStructure(want, got) {
						t.Fatalf("threads=%d: NT-flush structure differs from scalar", threads)
					}
				} else if !matrix.Equal(want, got, 0) {
					t.Fatalf("threads=%d: NT-flush result differs from scalar", threads)
				}
			}
		})
	}
}

// TestStatsKernelReported: Stats.Kernel names the dispatched kernel set —
// simd.Level() by default, "scalar" under DisableBatch.
func TestStatsKernelReported(t *testing.T) {
	a := gen.ER(256, 4, 41)
	acsc := a.ToCSC()
	_, st, err := Multiply(acsc, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantDefault := "scalar"
	if simd.Enabled {
		wantDefault = simd.Level()
	}
	if st.Kernel != wantDefault {
		t.Fatalf("Kernel = %q, want %q", st.Kernel, wantDefault)
	}
	_, st, err = Multiply(acsc, a, Options{DisableBatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kernel != "scalar" {
		t.Fatalf("Kernel under DisableBatch = %q, want scalar", st.Kernel)
	}
}

// fakeTwoNode is an injected two-node machine whose CPU ids are far beyond
// any real host's: PinThread is best-effort, so pinning no-ops while every
// other NUMA mechanism — worker→node assignment, first-touch pass,
// near-first victim order, steal counters — runs for real.
func fakeTwoNode() *numa.Machine {
	return &numa.Machine{
		Nodes:  [][]int{{100000, 100001}, {100002, 100003}},
		Source: "test",
	}
}

// TestNUMAInjectedBitIdentical: with an injected two-node topology the
// NUMA-aware schedule (pinning hooks, first-touch, near-first stealing) must
// be invisible in the output — bit-identical to the default run — while
// Stats reports the node count and conserving steal counters.
func TestNUMAInjectedBitIdentical(t *testing.T) {
	a := intValued(gen.RMAT(10, 8, gen.Graph500Params, 51))
	b := intValued(gen.RMAT(10, 8, gen.Graph500Params, 52))
	acsc := a.ToCSC()
	for _, budget := range []int64{0, 256 << 10} {
		want, stPlain, err := Multiply(acsc, b, Options{Threads: 8, MemoryBudgetBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		if stPlain.NUMANodes != 1 {
			// The host either has one node or discovery fell back: either way
			// the default run must report 1 unless the machine is really
			// multi-node. Multi-node hosts legitimately report more.
			if m := numa.Default(); m.Source != "sysfs" || m.NNodes() != stPlain.NUMANodes {
				t.Fatalf("default NUMANodes = %d without a multi-node sysfs machine", stPlain.NUMANodes)
			}
		}
		got, st, err := Multiply(acsc, b, Options{Threads: 8, MemoryBudgetBytes: budget, NUMA: fakeTwoNode()})
		if err != nil {
			t.Fatal(err)
		}
		if st.NUMANodes != 2 {
			t.Fatalf("budget=%d: NUMANodes = %d, want 2", budget, st.NUMANodes)
		}
		if !matrix.Equal(want, got, 0) {
			t.Fatalf("budget=%d: NUMA-aware result differs from default", budget)
		}
		if st.SortOwned+st.SortStolen <= 0 {
			t.Fatalf("budget=%d: no sort tasks counted (owned %d, stolen %d)", budget, st.SortOwned, st.SortStolen)
		}
		if st.SortNearStolen > st.SortStolen {
			t.Fatalf("budget=%d: near %d > stolen %d", budget, st.SortNearStolen, st.SortStolen)
		}
	}
	// threads == 1 never activates NUMA, even with a multi-node machine.
	_, st, err := Multiply(acsc, b, Options{Threads: 1, NUMA: fakeTwoNode()})
	if err != nil {
		t.Fatal(err)
	}
	if st.NUMANodes != 1 {
		t.Fatalf("single-thread NUMANodes = %d, want 1", st.NUMANodes)
	}
	// The Table VII fallback model must never activate: its CPU ids describe
	// the paper's machine, not this host.
	fb := numa.Fallback()
	_, st, err = Multiply(acsc, b, Options{Threads: 4, NUMA: fb})
	if err != nil {
		t.Fatal(err)
	}
	if st.NUMANodes != 1 {
		t.Fatalf("fallback-model NUMANodes = %d, want 1 (inactive)", st.NUMANodes)
	}
}

// FuzzBatchedVsScalar drives random shapes through the batched kernels and
// the always-compiled scalar oracle (DisableBatch) and asserts identical CSR
// across thread counts and the budgeted path. On purego builds both runs use
// the scalar kernels and the comparison is trivially green — the target still
// exercises the pipeline.
func FuzzBatchedVsScalar(f *testing.F) {
	f.Add([]byte{4, 4, 4, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4})
	f.Add([]byte{24, 24, 24, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{16, 1, 16, 255, 255, 255, 0, 0, 0, 128, 64, 32, 7, 6, 5})

	ws := NewWorkspace()
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, ok := fuzzMatrices(data)
		if !ok {
			return
		}
		want, _, err := Multiply(a, b, Options{DisableBatch: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []Options{
			{},
			{Threads: 3},
			{MemoryBudgetBytes: 256},
			{Threads: 2, MemoryBudgetBytes: 256, Workspace: ws},
		} {
			got, _, err := Multiply(a, b, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(want, got, 0) {
				t.Fatalf("batched (opt %+v) differs from scalar oracle", opt)
			}
		}
	})
}
