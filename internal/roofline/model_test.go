package roofline

import (
	"math"
	"testing"
)

// TestModelCrossoverNearFour: the default efficiencies must place the
// family crossover at the paper's observed cf ≈ 4 boundary.
func TestModelCrossoverNearFour(t *testing.T) {
	m := DefaultModel(50)
	cf := m.Crossover()
	if cf < 3.5 || cf > 4.5 {
		t.Fatalf("default crossover cf = %v, want ≈ 4", cf)
	}
}

// TestModelRegimeSelection checks the decision on synthetic traffic
// profiles on both sides of the crossover.
func TestModelRegimeSelection(t *testing.T) {
	m := DefaultModel(50)
	const nnz = int64(1 << 20)
	// cf = 1 (the ER regime): flop == nnzC, PB must win.
	if !m.PrefersOuter(nnz, nnz, nnz, nnz) {
		t.Fatal("model rejects PB at cf = 1")
	}
	// cf = 16 (well past the crossover): column family must win.
	if m.PrefersOuter(nnz, nnz, 16*nnz, nnz) {
		t.Fatal("model picks PB at cf = 16")
	}
	// The crossover itself separates the two answers monotonically.
	cross := m.Crossover()
	lo := int64(math.Max(1, cross*0.5)) * nnz
	hi := int64(cross*2) * nnz
	if !m.PrefersOuter(nnz, nnz, lo, nnz) || m.PrefersOuter(nnz, nnz, hi, nnz) {
		t.Fatalf("decision not consistent around crossover %v", cross)
	}
}

// TestModelPerRunTupleBytes: the outer family's per-run tuple cost moves
// the crossover. The default (squeezed, 12 B) sits at the paper's cf ≈ 4;
// forcing the wide 16-byte cost drops the effective outer efficiency and
// the crossover with it, so the column family wins from a lower cf.
func TestModelPerRunTupleBytes(t *testing.T) {
	sq := DefaultModel(50)
	wide := DefaultModel(50)
	wide.BytesPerTupleOuter = wide.BytesPerTuple
	if sq.OuterBytes() != SqueezedBytesPerNonzero || wide.OuterBytes() != DefaultBytesPerNonzero {
		t.Fatalf("OuterBytes: squeezed %v wide %v", sq.OuterBytes(), wide.OuterBytes())
	}
	if wide.Crossover() >= sq.Crossover() {
		t.Fatalf("wide crossover %v not below squeezed crossover %v", wide.Crossover(), sq.Crossover())
	}
	const nnz = int64(1 << 20)
	// Same traffic profile: the squeezed model must predict strictly more
	// outer GFLOPS (less bytes moved), identical column GFLOPS.
	if sq.PredictOuter(nnz, nnz, 2*nnz, nnz) <= wide.PredictOuter(nnz, nnz, 2*nnz, nnz) {
		t.Fatal("squeezed outer prediction not above wide")
	}
	if sq.PredictColumn(nnz, 2*nnz, nnz) != wide.PredictColumn(nnz, 2*nnz, nnz) {
		t.Fatal("column prediction must not depend on the outer layout")
	}
	// At cf = 2 (below every crossover) the squeezed outer family wins; the
	// wide one, with its crossover pushed under 2, loses the same product.
	if !sq.PrefersOuter(nnz, nnz, 2*nnz, nnz) {
		t.Fatal("squeezed model rejects PB at cf = 2")
	}
	if wide.PrefersOuter(nnz, nnz, 8*nnz, nnz) {
		t.Fatal("wide model picks PB at cf = 8")
	}
}

// TestModelPredictionsScaleWithBeta: doubling beta doubles both families'
// predictions, leaving the decision unchanged.
func TestModelPredictionsScaleWithBeta(t *testing.T) {
	const nnz = int64(1 << 18)
	m1, m2 := DefaultModel(40), DefaultModel(80)
	p1, p2 := m1.PredictOuter(nnz, nnz, 4*nnz, nnz), m2.PredictOuter(nnz, nnz, 4*nnz, nnz)
	if math.Abs(p2-2*p1) > 1e-12 {
		t.Fatalf("outer prediction does not scale with beta: %v vs %v", p1, p2)
	}
	c1, c2 := m1.PredictColumn(nnz, 4*nnz, nnz), m2.PredictColumn(nnz, 4*nnz, nnz)
	if math.Abs(c2-2*c1) > 1e-12 {
		t.Fatalf("column prediction does not scale with beta: %v vs %v", c1, c2)
	}
}

// TestCalibrateBetaOnce: the micro-calibration returns a positive bandwidth
// and caches it (two calls, one measurement).
func TestCalibrateBetaOnce(t *testing.T) {
	b1 := CalibrateBeta(2)
	if b1 <= 0 {
		t.Fatalf("calibrated beta %v, want > 0", b1)
	}
	if b2 := CalibrateBeta(4); b2 != b1 {
		t.Fatalf("calibration not cached: %v then %v", b1, b2)
	}
}

// TestFusedModelCalibration pins the fused re-derivation: the default
// (fused) model's crossover sits exactly at the paper's cf = 4 with the
// squeezed tuple cost, the unfused ablation model stays at ≈ 4 against its
// own bound, and the fused outer prediction strictly exceeds the unfused
// one on the same profile (its denominator dropped the compress term).
func TestFusedModelCalibration(t *testing.T) {
	fused := DefaultModel(50)
	if !fused.FusedOuter || fused.EtaColumn != DefaultEtaColumnFused {
		t.Fatalf("DefaultModel not fused-calibrated: %+v", fused)
	}
	if cf := fused.Crossover(); math.Abs(cf-4) > 1e-12 {
		t.Fatalf("fused crossover = %v, want exactly 4", cf)
	}
	unfused := UnfusedModel(50)
	if unfused.FusedOuter || unfused.EtaColumn != DefaultEtaColumn {
		t.Fatalf("UnfusedModel misconfigured: %+v", unfused)
	}
	if cf := unfused.Crossover(); cf < 3.5 || cf > 4.5 {
		t.Fatalf("unfused crossover = %v, want ≈ 4", cf)
	}
	const nnz = int64(1 << 20)
	pf, pu := fused.PredictOuter(nnz, nnz, 4*nnz, nnz), unfused.PredictOuter(nnz, nnz, 4*nnz, nnz)
	if pf <= pu {
		t.Fatalf("fused outer prediction %v not above unfused %v", pf, pu)
	}
	// Column predictions share AIColumnExact; only the calibration differs.
	cf, cu := fused.PredictColumn(nnz, 4*nnz, nnz), unfused.PredictColumn(nnz, 4*nnz, nnz)
	if cf <= cu {
		t.Fatalf("fused-calibrated column eta %v not above unfused %v", cf, cu)
	}
	// At the crossover profile (cf=4, nnzA=nnzB=nnzC) the fused families tie.
	if d := fused.PredictOuter(nnz, nnz, 4*nnz, nnz) - fused.PredictColumn(nnz, 4*nnz, nnz); math.Abs(d) > 1e-9 {
		t.Fatalf("families do not tie at cf=4: diff %v", d)
	}
}

// TestAIOuterFusedBounds: the fused exact AI must exceed the unfused one
// (one fewer denominator term) and match the closed-form lower bound on the
// symmetric profile it was derived from.
func TestAIOuterFusedBounds(t *testing.T) {
	const nnz = int64(1 << 16)
	for _, cf := range []int64{1, 2, 4, 16} {
		exactF := AIOuterFusedExact(nnz, nnz, cf*nnz, 12)
		exactU := AIOuterExact(nnz, nnz, cf*nnz, nnz, 12)
		if exactF <= exactU {
			t.Fatalf("cf=%d: fused AI %v not above unfused %v", cf, exactF, exactU)
		}
		lower := AIOuterFusedLower(float64(cf), 12)
		if exactF < lower {
			t.Fatalf("cf=%d: exact fused AI %v below its lower bound %v", cf, exactF, lower)
		}
	}
	if AIOuterFusedLower(0, 12) != 0 || AIOuterFusedLower(4, 0) != 0 {
		t.Fatal("degenerate fused lower bounds must be 0")
	}
	if AIOuterFusedExact(0, 0, 0, 12) != 0 {
		t.Fatal("empty product fused AI must be 0")
	}
}
