package roofline

import (
	"math"
	"testing"
)

// TestModelCrossoverNearFour: the default efficiencies must place the
// family crossover at the paper's observed cf ≈ 4 boundary.
func TestModelCrossoverNearFour(t *testing.T) {
	m := DefaultModel(50)
	cf := m.Crossover()
	if cf < 3.5 || cf > 4.5 {
		t.Fatalf("default crossover cf = %v, want ≈ 4", cf)
	}
}

// TestModelRegimeSelection checks the decision on synthetic traffic
// profiles on both sides of the crossover.
func TestModelRegimeSelection(t *testing.T) {
	m := DefaultModel(50)
	const nnz = int64(1 << 20)
	// cf = 1 (the ER regime): flop == nnzC, PB must win.
	if !m.PrefersOuter(nnz, nnz, nnz, nnz) {
		t.Fatal("model rejects PB at cf = 1")
	}
	// cf = 16 (well past the crossover): column family must win.
	if m.PrefersOuter(nnz, nnz, 16*nnz, nnz) {
		t.Fatal("model picks PB at cf = 16")
	}
	// The crossover itself separates the two answers monotonically.
	cross := m.Crossover()
	lo := int64(math.Max(1, cross*0.5)) * nnz
	hi := int64(cross*2) * nnz
	if !m.PrefersOuter(nnz, nnz, lo, nnz) || m.PrefersOuter(nnz, nnz, hi, nnz) {
		t.Fatalf("decision not consistent around crossover %v", cross)
	}
}

// TestModelPerRunTupleBytes: the outer family's per-run tuple cost moves
// the crossover. The default (squeezed, 12 B) sits at the paper's cf ≈ 4;
// forcing the wide 16-byte cost drops the effective outer efficiency and
// the crossover with it, so the column family wins from a lower cf.
func TestModelPerRunTupleBytes(t *testing.T) {
	sq := DefaultModel(50)
	wide := DefaultModel(50)
	wide.BytesPerTupleOuter = wide.BytesPerTuple
	if sq.OuterBytes() != SqueezedBytesPerNonzero || wide.OuterBytes() != DefaultBytesPerNonzero {
		t.Fatalf("OuterBytes: squeezed %v wide %v", sq.OuterBytes(), wide.OuterBytes())
	}
	if wide.Crossover() >= sq.Crossover() {
		t.Fatalf("wide crossover %v not below squeezed crossover %v", wide.Crossover(), sq.Crossover())
	}
	const nnz = int64(1 << 20)
	// Same traffic profile: the squeezed model must predict strictly more
	// outer GFLOPS (less bytes moved), identical column GFLOPS.
	if sq.PredictOuter(nnz, nnz, 2*nnz, nnz) <= wide.PredictOuter(nnz, nnz, 2*nnz, nnz) {
		t.Fatal("squeezed outer prediction not above wide")
	}
	if sq.PredictColumn(nnz, 2*nnz, nnz) != wide.PredictColumn(nnz, 2*nnz, nnz) {
		t.Fatal("column prediction must not depend on the outer layout")
	}
	// At cf = 2 (below every crossover) the squeezed outer family wins; the
	// wide one, with its crossover pushed under 2, loses the same product.
	if !sq.PrefersOuter(nnz, nnz, 2*nnz, nnz) {
		t.Fatal("squeezed model rejects PB at cf = 2")
	}
	if wide.PrefersOuter(nnz, nnz, 8*nnz, nnz) {
		t.Fatal("wide model picks PB at cf = 8")
	}
}

// TestModelPredictionsScaleWithBeta: doubling beta doubles both families'
// predictions, leaving the decision unchanged.
func TestModelPredictionsScaleWithBeta(t *testing.T) {
	const nnz = int64(1 << 18)
	m1, m2 := DefaultModel(40), DefaultModel(80)
	p1, p2 := m1.PredictOuter(nnz, nnz, 4*nnz, nnz), m2.PredictOuter(nnz, nnz, 4*nnz, nnz)
	if math.Abs(p2-2*p1) > 1e-12 {
		t.Fatalf("outer prediction does not scale with beta: %v vs %v", p1, p2)
	}
	c1, c2 := m1.PredictColumn(nnz, 4*nnz, nnz), m2.PredictColumn(nnz, 4*nnz, nnz)
	if math.Abs(c2-2*c1) > 1e-12 {
		t.Fatalf("column prediction does not scale with beta: %v vs %v", c1, c2)
	}
}

// TestCalibrateBetaOnce: the micro-calibration returns a positive bandwidth
// and caches it (two calls, one measurement).
func TestCalibrateBetaOnce(t *testing.T) {
	b1 := CalibrateBeta(2)
	if b1 <= 0 {
		t.Fatalf("calibrated beta %v, want > 0", b1)
	}
	if b2 := CalibrateBeta(4); b2 != b1 {
		t.Fatalf("calibration not cached: %v then %v", b1, b2)
	}
}
