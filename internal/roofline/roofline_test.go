package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperNumbers(t *testing.T) {
	b := DefaultBytesPerNonzero
	// Section II-C: ER matrices, cf = 1 => AI upper = 1/16 flops/byte.
	if got := AIUpper(1, b); !approx(got, 1.0/16, 1e-12) {
		t.Fatalf("AIUpper(1) = %v, want 1/16", got)
	}
	// Eq. 4 at cf=1: AI = 1/80.
	if got := AIOuterLower(1, b); !approx(got, 1.0/80, 1e-12) {
		t.Fatalf("AIOuterLower(1) = %v, want 1/80", got)
	}
	// Eq. 3 at cf=1: AI = 1/48.
	if got := AIColumnLower(1, b); !approx(got, 1.0/48, 1e-12) {
		t.Fatalf("AIColumnLower(1) = %v, want 1/48", got)
	}
	// Intro: 50 GB/s * 1/16 = 3.13 GFLOPS peak.
	if got := Attainable(50, AIUpper(1, b)); !approx(got, 3.125, 1e-9) {
		t.Fatalf("peak = %v, want 3.125", got)
	}
	// Section V-B: at 40 GB/s and AI=1/80, at least 0.5 GFLOPS.
	if got := Attainable(40, AIOuterLower(1, b)); !approx(got, 0.5, 1e-9) {
		t.Fatalf("PB lower estimate = %v, want 0.5", got)
	}
	// And 625 MFLOPS at 50 GB/s.
	if got := Attainable(50, AIOuterLower(1, b)); !approx(got, 0.625, 1e-9) {
		t.Fatalf("PB lower estimate = %v, want 0.625", got)
	}
}

func TestBoundOrdering(t *testing.T) {
	// For all cf >= 1: outer lower <= column lower <= upper.
	f := func(cfRaw uint16) bool {
		cf := 1 + float64(cfRaw)/100
		b := DefaultBytesPerNonzero
		lo := AIOuterLower(cf, b)
		mid := AIColumnLower(cf, b)
		hi := AIUpper(cf, b)
		return lo <= mid && mid <= hi && lo > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsMonotoneInCF(t *testing.T) {
	b := DefaultBytesPerNonzero
	prevU, prevC, prevO := 0.0, 0.0, 0.0
	for cf := 1.0; cf <= 64; cf *= 2 {
		u, c, o := AIUpper(cf, b), AIColumnLower(cf, b), AIOuterLower(cf, b)
		if u <= prevU || c <= prevC || o <= prevO {
			t.Fatalf("bounds not strictly increasing at cf=%v", cf)
		}
		prevU, prevC, prevO = u, c, o
	}
}

func TestAIExactReducesToLowerBounds(t *testing.T) {
	// With nnz(A)=nnz(B)=nnz(C) and flop = cf*nnz(C), the exact outer model
	// approaches the Eq. 4 bound as cf grows relative to input terms; at
	// equality of all nnz terms it matches the full denominator exactly.
	var nnz int64 = 1000
	cf := 3.0
	flop := int64(cf * float64(nnz))
	got := AIOuterExact(nnz, nnz, flop, nnz, 16)
	want := float64(flop) / (float64(3*nnz+2*flop) * 16)
	if !approx(got, want, 1e-15) {
		t.Fatalf("AIOuterExact = %v, want %v", got, want)
	}
	gotC := AIColumnExact(nnz, flop, nnz, 16)
	wantC := float64(flop) / (float64(2*nnz+flop) * 16)
	if !approx(gotC, wantC, 1e-15) {
		t.Fatalf("AIColumnExact = %v, want %v", gotC, wantC)
	}
}

func TestFigureThree(t *testing.T) {
	cfs := []float64{1, 2, 4, 8}
	pts := FigureThree(50, 16, cfs)
	if len(pts) != len(cfs) {
		t.Fatalf("got %d points, want %d", len(pts), len(cfs))
	}
	for _, p := range pts {
		if p.PerfUpper < p.PerfCol || p.PerfCol < p.PerfOuter {
			t.Fatalf("cf=%v: performance ordering violated", p.CF)
		}
		if !approx(p.PerfUpper, 50*p.AIUpper, 1e-12) {
			t.Fatalf("cf=%v: perf != beta*AI", p.CF)
		}
	}
	// The cf=1 point is the paper's headline: 3.125 / ~1.04 / 0.625 GFLOPS.
	if !approx(pts[0].PerfUpper, 3.125, 1e-9) ||
		!approx(pts[0].PerfOuter, 0.625, 1e-9) {
		t.Fatalf("cf=1 point wrong: %+v", pts[0])
	}
}

func TestDegenerateInputs(t *testing.T) {
	if AIUpper(1, 0) != 0 || AIColumnLower(0, 16) != 0 || AIOuterLower(-1, 16) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
	if AIOuterExact(0, 0, 0, 0, 16) != 0 || AIColumnExact(0, 0, 0, 16) != 0 {
		t.Fatal("zero traffic must yield 0")
	}
}

func TestCrossoverCF(t *testing.T) {
	// With equal efficiency the outer bound never catches the column bound:
	// no positive crossover.
	if cf := CrossoverCF(1, 1); cf != 0 {
		t.Fatalf("equal-efficiency crossover = %v, want 0", cf)
	}
	// If column algorithms sustain less than half of PB's bandwidth
	// efficiency, PB wins at every cf: no finite crossover.
	if cf := CrossoverCF(0.35, 1.0); cf != 0 {
		t.Fatalf("low-efficiency crossover = %v, want 0", cf)
	}
	// The paper's regime: hash overtakes PB around cf ≈ 4 (conclusions 5 and
	// 6). That corresponds to column algorithms sustaining ~55% of PB's
	// bandwidth efficiency once denser inputs fill their cache lines.
	cf := CrossoverCF(0.55, 1.0)
	if cf < 3 || cf > 6 {
		t.Fatalf("modeled crossover = %v, want in [3, 6]", cf)
	}
	// Sanity: at the crossover the attainable performances match.
	b := DefaultBytesPerNonzero
	perfCol := 0.55 * AIColumnLower(cf, b)
	perfOut := 1.0 * AIOuterLower(cf, b)
	if !approx(perfCol, perfOut, 1e-9) {
		t.Fatalf("bounds do not meet at crossover: %v vs %v", perfCol, perfOut)
	}
}

func TestQualitativeTables(t *testing.T) {
	if len(TableI()) != 4 {
		t.Fatal("Table I must have 4 classes")
	}
	t2 := TableII()
	if len(t2) != 3 {
		t.Fatal("Table II must have 3 rows")
	}
	// The PB row is the only one with full streaming and full cache lines.
	pb := t2[2]
	if !pb.StreamedA || !pb.FullLinesA || pb.ReadsA != "1" {
		t.Fatal("PB row of Table II wrong")
	}
	col := t2[0]
	if col.StreamedA || col.FullLinesA || col.ReadsA != "d" {
		t.Fatal("column SpGEMM row of Table II wrong")
	}
	if len(TableIII()) != 3 {
		t.Fatal("Table III must have 3 phases")
	}
}
