// Package roofline implements the paper's SpGEMM performance model
// (Section II): arithmetic-intensity bounds as a function of the compression
// factor cf and the per-tuple byte cost b, and the attainable performance
// beta*AI under the Roofline model of Williams et al. It regenerates Fig. 3
// and encodes the qualitative classification of Tables I–III.
package roofline

import (
	"pbspgemm/internal/matrix"
)

// DefaultBytesPerNonzero is b in the paper: 16 bytes per stored tuple
// (4-byte row id, 4-byte col id, 8-byte value in COO).
const DefaultBytesPerNonzero = float64(matrix.BytesPerTuple)

// SqueezedBytesPerNonzero is b for the squeezed tuple layout of Section
// III-D: the packed (localRow, col) key fits 4 bytes whenever
// localRowBits + colBits ≤ 32, so a tuple costs 12 bytes (u32 key + f64
// value in parallel arrays) instead of 16.
const SqueezedBytesPerNonzero = 12.0

// NarrowBytesPerNonzero is b for the 8-byte narrow tuple layout: the same
// packed u32 key with a 4-byte (float32/int32) value plane. Available under
// the same localRowBits + colBits ≤ 32 geometry as the squeezed layout.
const NarrowBytesPerNonzero = 8.0

// PatternBytesPerNonzero is b for the 4-byte pattern (key-only) layout of
// structural products: a tuple IS its packed u32 key, values are never
// materialized, and the fold is deduplication.
const PatternBytesPerNonzero = 4.0

// AIUpper is Eq. 1: the best-case arithmetic intensity when every matrix is
// read or written exactly once, AI <= cf/b (flops/byte).
func AIUpper(cf, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return cf / b
}

// AIColumnLower is Eq. 3: the practical lower bound for column SpGEMM, which
// in the worst case re-reads A once per flop with no locality:
// AI >= cf/((2+cf)·b).
func AIColumnLower(cf, b float64) float64 {
	if b <= 0 || cf <= 0 {
		return 0
	}
	return cf / ((2 + cf) * b)
}

// AIOuterLower is Eq. 4: the lower bound for outer-product ESC algorithms,
// which write and re-read all flop expanded tuples:
// AI >= cf/((3+2·cf)·b).
func AIOuterLower(cf, b float64) float64 {
	if b <= 0 || cf <= 0 {
		return 0
	}
	return cf / ((3 + 2*cf) * b)
}

// AIOuterExact is the deterministic traffic model of PB-SpGEMM for known
// matrix sizes (the denominator of Eq. 4 before the bound is loosened):
// flop / (nnz(A)+nnz(B)+2·flop+nnz(C))·b.
func AIOuterExact(nnzA, nnzB, flop, nnzC int64, b float64) float64 {
	denom := float64(nnzA+nnzB+2*flop+nnzC) * b
	if denom <= 0 {
		return 0
	}
	return float64(flop) / denom
}

// AIOuterFusedLower bounds the fused outer-product pipeline (sort folds
// equal keys in its last, cache-resident pass and the budgeted merge emits
// straight into the final CSR): the separate compress sweep's nnz(C)·b term
// drops from Eq. 4's denominator, leaving the expand write and the sort
// read-back of the flop tuples: AI >= cf/((2+2·cf)·b).
func AIOuterFusedLower(cf, b float64) float64 {
	if b <= 0 || cf <= 0 {
		return 0
	}
	return cf / ((2 + 2*cf) * b)
}

// AIOuterFusedExact is AIOuterExact with the fused pipeline's dropped
// compress term: flop / (nnz(A)+nnz(B)+2·flop)·b.
func AIOuterFusedExact(nnzA, nnzB, flop int64, b float64) float64 {
	denom := float64(nnzA+nnzB+2*flop) * b
	if denom <= 0 {
		return 0
	}
	return float64(flop) / denom
}

// AIColumnExact mirrors AIOuterExact for column SpGEMM's worst case
// (Eq. 3's denominator): flop / (flop+nnz(B)+nnz(C))·b.
func AIColumnExact(nnzB, flop, nnzC int64, b float64) float64 {
	denom := float64(flop+nnzB+nnzC) * b
	if denom <= 0 {
		return 0
	}
	return float64(flop) / denom
}

// Attainable is the Roofline prediction: performance (GFLOPS) = beta (GB/s)
// × AI (flops/byte). With beta in GB/s = 1e9 bytes/s and AI in flops/byte,
// the product is GFLOPS directly.
func Attainable(betaGBs, ai float64) float64 {
	return betaGBs * ai
}

// Point is one point of the Fig. 3 roofline chart.
type Point struct {
	CF                            float64
	AIUpper, AICol, AIOuter       float64
	PerfUpper, PerfCol, PerfOuter float64 // GFLOPS at the given beta
}

// FigureThree evaluates the three bounds over a range of compression factors
// at bandwidth betaGBs and tuple cost b, reproducing the Fig. 3 chart data
// (the paper draws it at cf=1, the ER case, marked on the beta*AI line).
func FigureThree(betaGBs, b float64, cfs []float64) []Point {
	pts := make([]Point, 0, len(cfs))
	for _, cf := range cfs {
		p := Point{
			CF:      cf,
			AIUpper: AIUpper(cf, b),
			AICol:   AIColumnLower(cf, b),
			AIOuter: AIOuterLower(cf, b),
		}
		p.PerfUpper = Attainable(betaGBs, p.AIUpper)
		p.PerfCol = Attainable(betaGBs, p.AICol)
		p.PerfOuter = Attainable(betaGBs, p.AIOuter)
		pts = append(pts, p)
	}
	return pts
}

// CrossoverCF returns the compression factor at which the column lower bound
// overtakes the outer-product lower bound; the paper reports PB-SpGEMM wins
// below cf≈4 and hash wins above (conclusions 5 and 6). Analytically the two
// bounds cross where (2+cf) = (3+2cf)/k for the observed efficiency ratio k
// of the two algorithm families; with both at full bandwidth the outer bound
// is lower for all cf, so the practical crossover comes from column
// algorithms' partial bandwidth. Given measured efficiencies etaCol and
// etaOuter (fraction of beta each family sustains), the model crossover is
// where etaOuter·AIOuter = etaCol·AICol.
func CrossoverCF(etaCol, etaOuter float64) float64 {
	// Solve etaOuter/(3+2cf) = etaCol/(2+cf)  =>
	// etaOuter·(2+cf) = etaCol·(3+2cf)  =>
	// cf·(etaOuter - 2·etaCol) = 3·etaCol - 2·etaOuter  =>
	// cf = (3·etaCol - 2·etaOuter) / (etaOuter - 2·etaCol)
	// A positive finite crossover requires etaCol > etaOuter/2: column
	// algorithms must sustain more than half of PB's bandwidth efficiency,
	// which they reach at moderate densities once cache lines fill up.
	den := etaOuter - 2*etaCol
	if den == 0 {
		return 0
	}
	cf := (3*etaCol - 2*etaOuter) / den
	if cf < 0 {
		return 0
	}
	return cf
}

// CrossoverCFFused is CrossoverCF for the fused outer bound: solving
// etaOuter/(2+2cf) = etaCol/(2+cf) gives
// cf = 2·(etaCol - etaOuter) / (etaOuter - 2·etaCol). With the fused
// defaults (etaCol = 4/5 and the squeezed 16/12 byte advantage folded into
// etaOuter) the crossover sits exactly at the paper's cf = 4; see
// DefaultEtaColumnFused for the derivation.
func CrossoverCFFused(etaCol, etaOuter float64) float64 {
	den := etaOuter - 2*etaCol
	if den == 0 {
		return 0
	}
	cf := 2 * (etaCol - etaOuter) / den
	if cf < 0 {
		return 0
	}
	return cf
}
