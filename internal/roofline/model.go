package roofline

import (
	"sync"

	"pbspgemm/internal/stream"
)

// DefaultEtaOuter is the fraction of STREAM bandwidth the outer-product ESC
// family (PB-SpGEMM) sustains in the model. The paper's central claim
// (Section V, Fig. 7/9) is that every PB phase streams at near-STREAM rate,
// so the default is full efficiency.
const DefaultEtaOuter = 1.0

// DefaultEtaColumn is the sustained-bandwidth fraction of the column
// (hash/heap) family. Column algorithms read B's rows with data-dependent,
// partially-cached access and only reach a fraction of STREAM; 6/11 places
// CrossoverCF at the paper's observed cf ≈ 4 boundary (conclusions 5 and 6:
// PB wins below cf ≈ 4, hash above).
const DefaultEtaColumn = 6.0 / 11.0

// Model carries the machine and efficiency terms of the planner's roofline
// decision: predicted GFLOPS per algorithm family = eta · beta · AI, with
// AI from the family's exact traffic denominator (Eqs. 3 and 4).
type Model struct {
	// BetaGBs is the machine's sustainable memory bandwidth (STREAM Triad).
	BetaGBs float64
	// EtaColumn and EtaOuter scale beta per algorithm family.
	EtaColumn, EtaOuter float64
	// BytesPerTuple is b in the paper's AI model (16).
	BytesPerTuple float64
}

// DefaultModel returns the paper-calibrated model at bandwidth betaGBs.
func DefaultModel(betaGBs float64) Model {
	return Model{
		BetaGBs:       betaGBs,
		EtaColumn:     DefaultEtaColumn,
		EtaOuter:      DefaultEtaOuter,
		BytesPerTuple: DefaultBytesPerNonzero,
	}
}

// PredictOuter returns the modeled GFLOPS of the outer-product ESC family
// (PB-SpGEMM) on a multiplication with the given traffic profile.
func (m Model) PredictOuter(nnzA, nnzB, flop, nnzC int64) float64 {
	return m.EtaOuter * Attainable(m.BetaGBs, AIOuterExact(nnzA, nnzB, flop, nnzC, m.BytesPerTuple))
}

// PredictColumn returns the modeled GFLOPS of the column (hash/heap) family.
func (m Model) PredictColumn(nnzB, flop, nnzC int64) float64 {
	return m.EtaColumn * Attainable(m.BetaGBs, AIColumnExact(nnzB, flop, nnzC, m.BytesPerTuple))
}

// PrefersOuter reports whether the model predicts the outer-product family
// to be at least as fast as the column family (ties go to PB, the paper's
// contribution and the library default).
func (m Model) PrefersOuter(nnzA, nnzB, flop, nnzC int64) bool {
	return m.PredictOuter(nnzA, nnzB, flop, nnzC) >= m.PredictColumn(nnzB, flop, nnzC)
}

// Crossover returns the model's crossover compression factor (see
// CrossoverCF); with the default etas it sits at the paper's cf ≈ 4.
func (m Model) Crossover() float64 { return CrossoverCF(m.EtaColumn, m.EtaOuter) }

// calibration is the once-per-process micro-measurement of beta.
var (
	calibOnce sync.Once
	calibBeta float64
)

// calibrationElems sizes the calibration arrays: 1<<21 float64 = 16 MiB per
// array, large enough to defeat last-level caches on common parts while
// keeping the one-shot measurement in the tens of milliseconds.
const calibrationElems = 1 << 21

// CalibrateBeta measures the machine's STREAM Triad bandwidth once per
// process with a reduced run (see stream.QuickTriad) and caches the result;
// it is the planner's default beta when the caller provides none. threads
// follows the usual convention (0 = GOMAXPROCS) and only the first call's
// value is used.
func CalibrateBeta(threads int) float64 {
	calibOnce.Do(func() {
		calibBeta = stream.QuickTriad(calibrationElems, threads, 3)
	})
	return calibBeta
}
