package roofline

import (
	"sync"

	"pbspgemm/internal/stream"
)

// DefaultEtaOuter is the fraction of STREAM bandwidth the outer-product ESC
// family (PB-SpGEMM) sustains in the model. The paper's central claim
// (Section V, Fig. 7/9) is that every PB phase streams at near-STREAM rate,
// so the default is full efficiency.
const DefaultEtaOuter = 1.0

// DefaultEtaColumn is the sustained-bandwidth fraction of the column
// (hash/heap) family. Column algorithms read B's rows with data-dependent,
// partially-cached access and only reach a fraction of STREAM; 8/11 places
// CrossoverCF at the paper's observed cf ≈ 4 boundary (conclusions 5 and 6:
// PB wins below cf ≈ 4, hash above) for the squeezed 12-byte outer tuples
// the paper's implementation — and ours — uses whenever the key geometry
// allows.
//
// A deliberate consequence for the rare products that cannot squeeze
// (BytesPerTupleOuter = BytesPerTuple = 16): the outer family's effective
// efficiency drops by 12/16 and the two AI curves — whose ratio
// (2+cf)/(3+2cf) spans only (1/2, 2/3) — no longer cross at all, so the
// model prefers column kernels at EVERY cf, by a thin ≤ 12/11 margin as
// cf → 0. The AI shapes make finite crossovers for both layouts
// mathematically impossible with one eta pair; since the paper's measured
// crossover is a squeezed measurement, the squeezed calibration wins and
// wide-geometry products (e.g. 2^30-column B against multi-row bins, which
// the paper never measured) route to the column family. Callers who know
// better can override with their own Model.
const DefaultEtaColumn = 8.0 / 11.0

// DefaultEtaColumnFused is the column-family efficiency calibrated against
// the FUSED outer bound (AIOuterFusedLower), which the engine's default
// pipeline realizes: with the compress term dropped, the outer AI rises, so
// keeping the measured crossover at the paper's cf ≈ 4 requires a higher
// column efficiency. Solving etaOuter·AIOuterFused(4, 12) =
// etaCol·AIColumn(4, 16) with etaOuter = 1:
//
//	1·(2+4)·16 = etaCol·(2+2·4)·12  ⇒  etaCol = 96/120 = 4/5.
//
// The same caveat as DefaultEtaColumn applies to unsqueezable products: at
// the wide 16-byte outer cost the fused crossover drops to
// 2·(4/5−1)/(1−8/5) = 2/3, so wide-geometry products route to the column
// family at every practical cf.
const DefaultEtaColumnFused = 4.0 / 5.0

// Model carries the machine and efficiency terms of the planner's roofline
// decision: predicted GFLOPS per algorithm family = eta · beta · AI, with
// AI from the family's exact traffic denominator (Eqs. 3 and 4).
type Model struct {
	// BetaGBs is the machine's sustainable memory bandwidth (STREAM Triad).
	BetaGBs float64
	// EtaColumn and EtaOuter scale beta per algorithm family.
	EtaColumn, EtaOuter float64
	// BytesPerTuple is b in the paper's AI model (16): the per-tuple cost of
	// the wide COO layout, used by the column family (and by the outer
	// family when no per-run override applies).
	BytesPerTuple float64
	// BytesPerTupleOuter, when positive, overrides b for the outer-product
	// family only — the planner sets it to 12 when PB-SpGEMM's squeezed
	// tuple layout applies to the product's bin geometry, so the predicted
	// crossover tracks the traffic the run will actually move. Zero means
	// BytesPerTuple.
	BytesPerTupleOuter float64
	// FusedOuter models the outer family with the fused pipeline's traffic
	// (AIOuterFusedExact: the compress term dropped from Eq. 4's
	// denominator). It must be paired with an EtaColumn calibrated against
	// that bound — DefaultEtaColumnFused — which DefaultModel does; an
	// unfused ablation uses UnfusedModel.
	FusedOuter bool
}

// OuterBytes is the per-tuple byte cost the outer-family predictions use.
func (m Model) OuterBytes() float64 {
	if m.BytesPerTupleOuter > 0 {
		return m.BytesPerTupleOuter
	}
	return m.BytesPerTuple
}

// DefaultModel returns the paper-calibrated model at bandwidth betaGBs. The
// outer family defaults to the engine's default execution: the fused
// pipeline over squeezed 12-byte tuples — the layout PB-SpGEMM picks for
// almost every real matrix; callers modeling a product whose key geometry
// forces wide tuples set BytesPerTupleOuter to BytesPerTuple (the Auto
// planner does this from the kernel's declared capability and the product's
// bin geometry), and callers modeling the unfused three-pass ablation use
// UnfusedModel.
func DefaultModel(betaGBs float64) Model {
	return Model{
		BetaGBs:            betaGBs,
		EtaColumn:          DefaultEtaColumnFused,
		EtaOuter:           DefaultEtaOuter,
		BytesPerTuple:      DefaultBytesPerNonzero,
		BytesPerTupleOuter: SqueezedBytesPerNonzero,
		FusedOuter:         true,
	}
}

// UnfusedModel is DefaultModel calibrated for the unfused three-pass
// pipeline (Options.DisableFusion): the outer family keeps Eq. 4's full
// denominator and the column efficiency returns to the PR 4 calibration —
// both crossovers sit at the paper's cf ≈ 4 against their respective
// bounds.
func UnfusedModel(betaGBs float64) Model {
	m := DefaultModel(betaGBs)
	m.EtaColumn = DefaultEtaColumn
	m.FusedOuter = false
	return m
}

// PredictOuter returns the modeled GFLOPS of the outer-product ESC family
// (PB-SpGEMM) on a multiplication with the given traffic profile, at the
// family's per-run tuple cost (see OuterBytes) and the family's pipeline
// (fused by default: AIOuterFusedExact's denominator drops the compress
// term).
//
// The per-tuple cost is applied uniformly to the whole denominator,
// including the nnzA+nnzB input reads that the engine's Stats charge at the
// 16-byte COO cost regardless of layout. That is intentional: the etas are
// calibrated against this uniform-cost family of bounds (the crossover
// lands at the paper's cf ≈ 4 under it), so the small input-term
// discrepancy is absorbed by the calibration rather than double-counted.
// Stats report the split accounting; the model is a calibrated bound.
func (m Model) PredictOuter(nnzA, nnzB, flop, nnzC int64) float64 {
	if m.FusedOuter {
		return m.EtaOuter * Attainable(m.BetaGBs, AIOuterFusedExact(nnzA, nnzB, flop, m.OuterBytes()))
	}
	return m.EtaOuter * Attainable(m.BetaGBs, AIOuterExact(nnzA, nnzB, flop, nnzC, m.OuterBytes()))
}

// PredictColumn returns the modeled GFLOPS of the column (hash/heap) family.
func (m Model) PredictColumn(nnzB, flop, nnzC int64) float64 {
	return m.EtaColumn * Attainable(m.BetaGBs, AIColumnExact(nnzB, flop, nnzC, m.BytesPerTuple))
}

// PrefersOuter reports whether the model predicts the outer-product family
// to be at least as fast as the column family (ties go to PB, the paper's
// contribution and the library default).
func (m Model) PrefersOuter(nnzA, nnzB, flop, nnzC int64) bool {
	return m.PredictOuter(nnzA, nnzB, flop, nnzC) >= m.PredictColumn(nnzB, flop, nnzC)
}

// Crossover returns the model's crossover compression factor (see
// CrossoverCF / CrossoverCFFused, by pipeline); with the default etas both
// calibrations sit at the paper's cf ≈ 4. A squeezed outer-family tuple
// cost (BytesPerTupleOuter < BytesPerTuple) acts like a higher outer
// efficiency — it scales the outer AI by BytesPerTuple/OuterBytes — and
// pushes the crossover up, widening the cf range where PB wins.
func (m Model) Crossover() float64 {
	etaOuter := m.EtaOuter
	if ob := m.OuterBytes(); ob > 0 && m.BytesPerTuple > 0 {
		etaOuter *= m.BytesPerTuple / ob
	}
	if m.FusedOuter {
		return CrossoverCFFused(m.EtaColumn, etaOuter)
	}
	return CrossoverCF(m.EtaColumn, etaOuter)
}

// calibration is the once-per-process micro-measurement of beta.
var (
	calibOnce sync.Once
	calibBeta float64
)

// calibrationElems sizes the calibration arrays: 1<<21 float64 = 16 MiB per
// array, large enough to defeat last-level caches on common parts while
// keeping the one-shot measurement in the tens of milliseconds.
const calibrationElems = 1 << 21

// CalibrateBeta measures the machine's STREAM Triad bandwidth once per
// process with a reduced run (see stream.QuickTriad) and caches the result;
// it is the planner's default beta when the caller provides none. threads
// follows the usual convention (0 = GOMAXPROCS) and only the first call's
// value is used.
func CalibrateBeta(threads int) float64 {
	calibOnce.Do(func() {
		calibBeta = stream.QuickTriad(calibrationElems, threads, 3)
	})
	return calibBeta
}
