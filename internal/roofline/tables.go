package roofline

// This file encodes the qualitative algorithm-classification content of the
// paper's Tables I, II and III so the harness can print them alongside the
// quantitative results (cmd/experiments tables123).

// AlgorithmClass locates an algorithm in Table I's 2×2 grid.
type AlgorithmClass struct {
	Name         string
	InputAccess  string // "column-wise" or "outer-product"
	OutputMethod string // "accumulator" (heap/hash/SPA) or "ESC"
}

// TableI returns the paper's classification of SpGEMM algorithms.
func TableI() []AlgorithmClass {
	return []AlgorithmClass{
		{"Heap/Hash/SPA column SpGEMM [12,20,21,22]", "column-wise", "accumulator"},
		{"Outer product + heap merge [23]", "outer-product", "accumulator"},
		{"Column ESC [15,18]", "column-wise", "ESC"},
		{"PB-SpGEMM (this paper), OuterSPACE [24]", "outer-product", "ESC"},
	}
}

// AccessPattern is one row of Table II: how many times each matrix is
// transferred from memory, whether accesses stream, and whether cache lines
// are fully used, when multiplying two ER matrices with d nonzeros/column.
type AccessPattern struct {
	Algorithm string
	// Number of accesses of A, B, C-hat, C (in units of the matrix's size).
	ReadsA, ReadsB, ReadsChat, ReadsC             string
	StreamedA, StreamedB, StreamedChat, StreamedC bool
	FullLinesA                                    bool // A's cache-line utilization (the differentiator)
}

// TableII returns the paper's data-access comparison.
func TableII() []AccessPattern {
	return []AccessPattern{
		{
			Algorithm: "Column SpGEMM (Heap/Hash/SPA)",
			ReadsA:    "d", ReadsB: "1", ReadsChat: "0*", ReadsC: "1",
			StreamedA: false, StreamedB: true, StreamedChat: true, StreamedC: true,
			FullLinesA: false, // wasted when d < 8
		},
		{
			Algorithm: "ESC (column-wise)",
			ReadsA:    "d", ReadsB: "1", ReadsChat: "2", ReadsC: "1",
			StreamedA: false, StreamedB: true, StreamedChat: false, StreamedC: true,
			FullLinesA: false,
		},
		{
			Algorithm: "ESC (outer product, PB-SpGEMM)",
			ReadsA:    "1", ReadsB: "1", ReadsChat: "2", ReadsC: "1",
			StreamedA: true, StreamedB: true, StreamedChat: true, StreamedC: true,
			FullLinesA: true,
		},
	}
}

// PhaseCost is one row of Table III: complexity and traffic of a PB-SpGEMM
// phase (b = bytes per tuple, flop = multiplications, all O(flop) compute).
type PhaseCost struct {
	Phase       string
	Complexity  string
	Bandwidth   string
	Parallelism string
}

// TableIII returns the paper's per-phase cost model.
func TableIII() []PhaseCost {
	return []PhaseCost{
		{"Expand", "O(flop)", "read b·(nnz(A)+nnz(B)), write b·flop", "cols of A / rows of B per thread"},
		{"Sort", "O(flop)", "read b·flop (shuffle 4·b·flop in cache)", "bins per thread"},
		{"Compress", "O(flop)", "write b·nnz(C)", "bins per thread"},
	}
}
