// Package metrics provides timing, throughput and bandwidth accounting plus
// plain-text table rendering for the experiment harness. The paper reports
// two derived quantities everywhere: performance in GFLOPS (multiplications
// per second / 1e9) and sustained bandwidth in GB/s (modeled bytes moved per
// phase divided by phase time); this package centralizes both.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// GFLOPS converts a flop count and duration into the paper's performance
// metric (billions of multiplications per second).
func GFLOPS(flops int64, d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(flops) / s / 1e9
}

// GBs converts bytes moved and duration into GB/s (1e9 bytes per second).
func GBs(bytes int64, d time.Duration) float64 {
	s := d.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(bytes) / s / 1e9
}

// Summary holds simple statistics over repeated measurements. P50/P95/P99
// are the tail quantiles serving-latency reports care about (P50 equals
// Median up to the interpolation convention).
type Summary struct {
	Min, Max, Mean, Median float64
	P50, P95, P99          float64
	N                      int
}

// Summarize computes Summary over xs; it returns the zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Min: math.Inf(1), Max: math.Inf(-1), N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	s.P50 = quantileSorted(sorted, 0.50)
	s.P95 = quantileSorted(sorted, 0.95)
	s.P99 = quantileSorted(sorted, 0.99)
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs with linear
// interpolation between order statistics; xs need not be sorted. It returns
// 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted interpolates the q-th quantile of an ascending slice.
func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if frac == 0 {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// BestOf runs fn reps times and returns the minimum duration, the standard
// benchmarking discipline for bandwidth-bound kernels (min filters scheduler
// noise).
func BestOf(reps int, fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// Table renders aligned text tables for harness output, mirroring the rows
// and series the paper's figures plot.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for small
// magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// HumanCount formats a count the way the paper's tables do (1.6M, 800.8K).
func HumanCount(v int64) string {
	switch {
	case v >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(v)/1e9)
	case v >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(v)/1e6)
	case v >= 1_000:
		return fmt.Sprintf("%.1fK", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}
