package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestGFLOPSAndGBs(t *testing.T) {
	if got := GFLOPS(2e9, time.Second); got != 2 {
		t.Fatalf("GFLOPS = %v, want 2", got)
	}
	if got := GBs(5e9, 2*time.Second); got != 2.5 {
		t.Fatalf("GBs = %v, want 2.5", got)
	}
	if GFLOPS(1, 0) != 0 || GBs(1, 0) != 0 {
		t.Fatal("zero duration must yield 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 4, 1, 5})
	if s.Min != 1 || s.Max != 5 || s.N != 5 {
		t.Fatalf("min/max/n wrong: %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Fatalf("mean = %v, want 2.8", s.Mean)
	}
	if s.Median != 3 {
		t.Fatalf("median = %v, want 3", s.Median)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median = %v, want 2.5", even.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary must have N=0")
	}
}

func TestSummarizePercentiles(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	// Linear interpolation between order statistics: pos = q*(n-1).
	if math.Abs(s.P50-50.5) > 1e-12 {
		t.Fatalf("P50 = %v, want 50.5", s.P50)
	}
	if math.Abs(s.P95-95.05) > 1e-12 {
		t.Fatalf("P95 = %v, want 95.05", s.P95)
	}
	if math.Abs(s.P99-99.01) > 1e-12 {
		t.Fatalf("P99 = %v, want 99.01", s.P99)
	}
	if s.P50 != s.Median {
		t.Fatalf("P50 %v != Median %v", s.P50, s.Median)
	}
}

func TestQuantile(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty slice must yield 0")
	}
	if Quantile([]float64{7}, 0.99) != 7 {
		t.Fatal("single element must yield itself at any q")
	}
	xs := []float64{4, 1, 3, 2} // unsorted input: Quantile copies + sorts
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatalf("q=0/q=1 must be min/max, got %v %v", Quantile(xs, 0), Quantile(xs, 1))
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if xs[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBestOf(t *testing.T) {
	calls := 0
	d := BestOf(3, func() { calls++ })
	if calls != 3 {
		t.Fatalf("ran %d times, want 3", calls)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "gflops")
	tb.AddRow("pb", 1.234)
	tb.AddRow("hash", 0.5)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "gflops") {
		t.Fatal("missing headers")
	}
	if !strings.Contains(out, "1.23") || !strings.Contains(out, "0.5000") {
		t.Fatalf("missing formatted values:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1234.56: "1234.6",
		12.345:  "12.35",
		0.0625:  "0.0625",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	cases := map[int64]string{
		999:           "999",
		1600:          "1.6K",
		1_600_000:     "1.6M",
		2_100_000_000: "2.1B",
	}
	for in, want := range cases {
		if got := HumanCount(in); got != want {
			t.Errorf("HumanCount(%d) = %q, want %q", in, got, want)
		}
	}
}
