package mmio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"pbspgemm/internal/matrix"
)

// failAfter yields its data, then a transport error — a mid-stream I/O
// failure. It is deliberately neither a Seeker nor a Len()-reporter, so
// ReadBinary treats it as an unsized stream.
type failAfter struct {
	data []byte
	err  error
	off  int
}

func (f *failAfter) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, f.err
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

var errBoom = errors.New("boom: simulated transport failure")

// TestRoundTripMatrix drives general, symmetric, and pattern sources through
// both serializations: the matrix parsed from each text variant must survive
// text and binary round trips unchanged.
func TestRoundTripMatrix(t *testing.T) {
	sources := map[string]string{
		"general": `%%MatrixMarket matrix coordinate real general
4 4 5
1 1 2.5
1 4 -1.0
2 2 7
3 1 0.125
4 4 9
`,
		"symmetric": `%%MatrixMarket matrix coordinate real symmetric
4 4 4
1 1 1.0
2 1 2.0
3 2 3.0
4 4 4.0
`,
		"pattern": `%%MatrixMarket matrix coordinate pattern general
4 4 4
1 2
2 1
3 3
4 1
`,
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			m, err := ReadMatrixMarket(strings.NewReader(src))
			if err != nil {
				t.Fatal(err)
			}
			var text bytes.Buffer
			if err := WriteMatrixMarket(&text, m); err != nil {
				t.Fatal(err)
			}
			back, err := ReadMatrixMarket(&text)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(m, back, 0) {
				t.Fatal("text round trip changed the matrix")
			}
			var bin bytes.Buffer
			if err := WriteBinary(&bin, m); err != nil {
				t.Fatal(err)
			}
			bback, err := ReadBinary(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(m, bback, 0) {
				t.Fatal("binary round trip changed the matrix")
			}
		})
	}
}

// TestReadMatrixMarketIOErrors: a mid-stream transport error surfaces as
// that error — not as the bogus "expected N entries" / "unsupported
// dimensions 0x0" it used to be folded into.
func TestReadMatrixMarketIOErrors(t *testing.T) {
	full := "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 2.0\n"
	// Fail before the size line, and again mid-entries.
	for _, cut := range []int{30, len(full) - 5} {
		r := &failAfter{data: []byte(full[:cut]), err: errBoom}
		_, err := ReadMatrixMarket(r)
		if !errors.Is(err, errBoom) {
			t.Fatalf("cut=%d: err = %v, want the transport error", cut, err)
		}
		if errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: transport error misreported as truncation", cut)
		}
	}
}

// TestReadMatrixMarketOversizedLine: a line over the scanner's 1 MiB buffer
// is a bufio.ErrTooLong, not a phantom format error.
func TestReadMatrixMarketOversizedLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("%%MatrixMarket matrix coordinate real general\n")
	sb.WriteString("% ")
	sb.WriteString(strings.Repeat("x", 2<<20))
	sb.WriteString("\n2 2 1\n1 1 1.0\n")
	_, err := ReadMatrixMarket(strings.NewReader(sb.String()))
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
}

// TestReadMatrixMarketTruncated: clean EOF before the promised entries (or
// before the size line) is ErrTruncated, distinct from transport errors.
func TestReadMatrixMarketTruncated(t *testing.T) {
	for name, in := range map[string]string{
		"before_entries":   "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n",
		"before_size_line": "%%MatrixMarket matrix coordinate real general\n% only comments\n",
	} {
		_, err := ReadMatrixMarket(strings.NewReader(in))
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("%s: err = %v, want ErrTruncated", name, err)
		}
	}
}

// TestReadMatrixMarketRejectsPatternSkewSymmetric: the spec-forbidden
// combination is an ErrHeader, caught before any entry is parsed (the old
// reader fabricated −1.0 values for it).
func TestReadMatrixMarketRejectsPatternSkewSymmetric(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern skew-symmetric\n2 2 1\n2 1\n"
	_, err := ReadMatrixMarket(strings.NewReader(in))
	if !errors.Is(err, ErrHeader) {
		t.Fatalf("err = %v, want ErrHeader", err)
	}
}

// binHeader builds a binary-cache header with arbitrary claimed geometry.
func binHeader(rows, cols int32, nnz int64) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(binaryMagic))
	binary.Write(&buf, binary.LittleEndian, rows)
	binary.Write(&buf, binary.LittleEndian, cols)
	binary.Write(&buf, binary.LittleEndian, nnz)
	return buf.Bytes()
}

// TestReadBinaryHeaderValidation: corrupt headers fail as ErrHeader or
// ErrTruncated before any payload-sized allocation is attempted.
func TestReadBinaryHeaderValidation(t *testing.T) {
	// A header claiming ~48 GB of payload against a 20-byte input: the old
	// reader would go straight to matrix.NewCSR and try to allocate it.
	huge := binHeader(1<<30, 1<<30, int64(1)<<32)
	if _, err := ReadBinary(bytes.NewReader(huge)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("sized huge header: err = %v, want ErrTruncated", err)
	}
	// Same header on an unsized stream: the sanity cap rejects it.
	exa := binHeader(1<<30, 1<<30, int64(1)<<60)
	if _, err := ReadBinary(io.MultiReader(bytes.NewReader(exa))); !errors.Is(err, ErrHeader) {
		t.Fatalf("unsized huge header: err = %v, want ErrHeader", err)
	}
	for name, hdr := range map[string][]byte{
		"negative_nnz":     binHeader(2, 2, -1),
		"negative_rows":    binHeader(-2, 2, 1),
		"nnz_without_rows": binHeader(0, 0, 5),
		"bad_magic":        {9, 9, 9, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
	} {
		if _, err := ReadBinary(bytes.NewReader(hdr)); !errors.Is(err, ErrHeader) {
			t.Fatalf("%s: err = %v, want ErrHeader", name, err)
		}
	}
}

// TestReadBinaryTruncatedPayload: a well-formed header whose payload is cut
// short is ErrTruncated when the input size is knowable, and the underlying
// unexpected-EOF when it is not.
func TestReadBinaryTruncatedPayload(t *testing.T) {
	m := &matrix.CSR{NumRows: 4, NumCols: 4,
		RowPtr: []int64{0, 1, 2, 3, 4},
		ColIdx: []int32{0, 1, 2, 3},
		Val:    []float64{1, 2, 3, 4}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadBinary(bytes.NewReader(cut)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("sized: err = %v, want ErrTruncated", err)
	}
	_, err := ReadBinary(io.MultiReader(bytes.NewReader(cut)))
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Fatalf("unsized: err = %v, want unexpected EOF", err)
	}
	// A transport error mid-payload surfaces as that error.
	_, err = ReadBinary(&failAfter{data: cut, err: errBoom})
	if !errors.Is(err, errBoom) {
		t.Fatalf("transport: err = %v, want the transport error", err)
	}
}
