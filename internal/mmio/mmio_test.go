package mmio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1.0
2 2 7
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 3 || m.NumCols != 4 || m.NNZ() != 3 {
		t.Fatalf("got %dx%d nnz=%d", m.NumRows, m.NumCols, m.NNZ())
	}
	if m.Val[m.RowPtr[0]] != 2.5 {
		t.Fatalf("(0,0) = %v, want 2.5", m.Val[0])
	}
}

func TestReadSymmetricExpands(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1.0
2 1 2.0
3 2 3.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal stays single, off-diagonals double: 1 + 2*2 = 5.
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5 (expanded)", m.NNZ())
	}
	tr := m.Transpose()
	if !matrix.Equal(m, tr, 0) {
		t.Fatal("expanded symmetric matrix is not symmetric")
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 4.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Fatalf("nnz = %d, want 2", m.NNZ())
	}
	var found float64
	for p := m.RowPtr[0]; p < m.RowPtr[1]; p++ {
		if m.ColIdx[p] == 1 {
			found = m.Val[p]
		}
	}
	if found != -4.0 {
		t.Fatalf("(0,1) = %v, want -4", found)
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 || m.Val[0] != 1.0 {
		t.Fatalf("pattern values wrong: nnz=%d val0=%v", m.NNZ(), m.Val[0])
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad_header":      "%%NotMatrixMarket\n1 1 1\n1 1 1\n",
		"array_format":    "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex_field":   "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"bad_symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"out_of_range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"zero_index":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
		"missing_entries": "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 1 1.0\n",
		"missing_value":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"garbage_value":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"garbage_row":     "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := gen.ER(100, 5, 1)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, back, 0) {
		t.Fatal("Matrix Market round trip changed the matrix")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := gen.RMAT(8, 6, gen.Graph500Params, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, back, 0) {
		t.Fatal("binary round trip changed the matrix")
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
	m := gen.ER(16, 2, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	m := gen.ER(32, 3, 9)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixMarket(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(m, back, 0) {
		t.Fatal("file round trip changed the matrix")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
