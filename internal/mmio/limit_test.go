package mmio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"pbspgemm/internal/gen"
)

const smallMM = `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.5
2 2 -3
`

func TestReadMatrixMarketLimitedOverLimit(t *testing.T) {
	_, err := ReadMatrixMarketLimited(strings.NewReader(smallMM), 10)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	var se *SizeError
	if !errors.As(err, &se) || se.MaxBytes != 10 {
		t.Fatalf("got %v, want SizeError{MaxBytes:10}", err)
	}
}

func TestReadMatrixMarketLimitedExactlyAtLimit(t *testing.T) {
	m, err := ReadMatrixMarketLimited(strings.NewReader(smallMM), int64(len(smallMM)))
	if err != nil {
		t.Fatalf("input of exactly maxBytes must parse: %v", err)
	}
	if m.NumRows != 2 || m.NNZ() != 2 {
		t.Fatalf("got %dx%d nnz=%d", m.NumRows, m.NumCols, m.NNZ())
	}
}

func TestReadMatrixMarketLimitedUnlimited(t *testing.T) {
	for _, max := range []int64{0, -1} {
		if _, err := ReadMatrixMarketLimited(strings.NewReader(smallMM), max); err != nil {
			t.Fatalf("maxBytes=%d must disable the limit: %v", max, err)
		}
	}
}

func TestLimitReaderPassthrough(t *testing.T) {
	if r := LimitReader(strings.NewReader("abc"), 0); r != nil {
		got, err := io.ReadAll(r)
		if err != nil || string(got) != "abc" {
			t.Fatalf("passthrough read: %q %v", got, err)
		}
	}
	// Under the limit: reads to EOF untouched.
	got, err := io.ReadAll(LimitReader(strings.NewReader("abc"), 3))
	if err != nil || string(got) != "abc" {
		t.Fatalf("at-limit read: %q %v", got, err)
	}
	// One byte over: typed error instead of silent truncation.
	_, err = io.ReadAll(LimitReader(strings.NewReader("abcd"), 3))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestLimitReaderGuardsBinaryReads(t *testing.T) {
	var buf bytes.Buffer
	m := gen.ER(64, 3, 1)
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(LimitReader(bytes.NewReader(full), int64(len(full)))); err != nil {
		t.Fatalf("binary read at limit: %v", err)
	}
	// The limiter grants one byte of slack (so exactly-at-limit inputs reach
	// EOF); two under the payload size guarantees a withheld byte.
	_, err := ReadBinary(LimitReader(bytes.NewReader(full), int64(len(full))-2))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}
