package mmio

import (
	"bytes"
	"testing"

	"pbspgemm/internal/gen"
)

func BenchmarkWriteReadMatrixMarket(b *testing.B) {
	m := gen.ER(1<<12, 8, 1)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteMatrixMarket(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkWriteReadBinary(b *testing.B) {
	m := gen.ER(1<<14, 8, 1)
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBinary(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
