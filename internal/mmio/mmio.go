// Package mmio reads and writes Matrix Market exchange files — the format
// the SuiteSparse collection (Table VI of the paper) ships in — plus a
// compact binary cache format. Supported Matrix Market variants: coordinate,
// real/integer/pattern, general/symmetric.
package mmio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pbspgemm/internal/matrix"
)

// ReadMatrixMarket parses a Matrix Market coordinate stream into a canonical
// CSR matrix. Symmetric files are expanded to full storage (both triangles),
// matching SuiteSparse convention for SpGEMM benchmarking. Pattern files get
// value 1.0 for every entry.
func ReadMatrixMarket(r io.Reader) (*matrix.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mmio: bad header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported format %q (only coordinate)", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	symmetry := header[4]
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}

	// Skip comments, read size line.
	var rows, cols int64
	var nnz int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("mmio: bad size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || rows > 1<<31-1 || cols > 1<<31-1 {
		return nil, fmt.Errorf("mmio: unsupported dimensions %dx%d", rows, cols)
	}

	coo := &matrix.COO{NumRows: int32(rows), NumCols: int32(cols)}
	var read int64
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: bad entry line %q", line)
		}
		i, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row index %q: %w", f[0], err)
		}
		j, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad col index %q: %w", f[1], err)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mmio: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, fmt.Errorf("mmio: missing value in %q", line)
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: bad value %q: %w", f[2], err)
			}
		}
		read++
		r32, c32 := int32(i-1), int32(j-1)
		coo.Row = append(coo.Row, r32)
		coo.Col = append(coo.Col, c32)
		coo.Val = append(coo.Val, v)
		if symmetry != "general" && r32 != c32 {
			sv := v
			if symmetry == "skew-symmetric" {
				sv = -v
			}
			coo.Row = append(coo.Row, c32)
			coo.Col = append(coo.Col, r32)
			coo.Val = append(coo.Val, sv)
		}
	}
	if read < nnz {
		return nil, fmt.Errorf("mmio: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), nil
}

// ReadFile loads a Matrix Market file from disk.
func ReadFile(path string) (*matrix.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixMarket(bufio.NewReaderSize(f, 1<<20))
}

// WriteMatrixMarket writes m as a general real coordinate Matrix Market file.
func WriteMatrixMarket(w io.Writer, m *matrix.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.NumRows, m.NumCols, m.NNZ()); err != nil {
		return err
	}
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary cache format.
const binaryMagic = 0x50425350 // "PBSP"

// WriteBinary writes m in a compact little-endian binary format for fast
// reloading of large generated matrices between experiment runs.
func WriteBinary(w io.Writer, m *matrix.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []any{uint32(binaryMagic), m.NumRows, m.NumCols, m.NNZ()}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a matrix written by WriteBinary.
func ReadBinary(r io.Reader) (*matrix.CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic uint32
	var rows, cols int32
	var nnz int64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("mmio: bad binary magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: corrupt binary header")
	}
	m := matrix.NewCSR(rows, cols, nnz)
	if err := binary.Read(br, binary.LittleEndian, m.RowPtr); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, m.ColIdx); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, m.Val); err != nil {
		return nil, err
	}
	return m, m.Validate()
}
