// Package mmio reads and writes Matrix Market exchange files — the format
// the SuiteSparse collection (Table VI of the paper) ships in — plus a
// compact binary cache format. Supported Matrix Market variants: coordinate,
// real/integer/pattern, general/symmetric.
package mmio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"pbspgemm/internal/matrix"
)

// ErrHeader marks a structurally invalid or spec-violating header (Matrix
// Market or binary): bad magic, impossible dimensions, or a field/symmetry
// combination the format forbids.
var ErrHeader = errors.New("invalid header")

// ErrTruncated marks input that ends before the header's promised payload —
// distinct from ErrHeader (the header itself was readable and well-formed)
// and from transport errors (which are returned wrapped, preserving the
// underlying error for errors.Is).
var ErrTruncated = errors.New("truncated input")

// ErrTooLarge is the errors.Is sentinel every *SizeError matches: the input
// exceeded a caller-imposed byte limit (ReadMatrixMarketLimited, LimitReader).
var ErrTooLarge = errors.New("input exceeds size limit")

// SizeError reports an input stream that delivered more than MaxBytes bytes.
// It is the typed error behind byte-limited reads of untrusted uploads; test
// with errors.As, or errors.Is against ErrTooLarge.
type SizeError struct {
	// MaxBytes is the limit the input exceeded.
	MaxBytes int64
}

func (e *SizeError) Error() string {
	return fmt.Sprintf("mmio: input exceeds %d-byte limit", e.MaxBytes)
}

// Is reports ErrTooLarge as a match, so callers can class-check with
// errors.Is without naming the concrete type.
func (e *SizeError) Is(target error) bool { return target == ErrTooLarge }

// limitedReader passes through at most max+1 bytes: an input of exactly max
// bytes reads cleanly to EOF, while delivering the (max+1)-th byte arms the
// limit and the next Read returns *SizeError. The +1 slack never reaches a
// parser's output — it only lets the reader distinguish "exactly at the
// limit" from "past it" without buffering.
type limitedReader struct {
	r         io.Reader
	remaining int64
	max       int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.remaining <= 0 {
		return 0, &SizeError{MaxBytes: l.max}
	}
	if int64(len(p)) > l.remaining {
		p = p[:l.remaining]
	}
	n, err := l.r.Read(p)
	l.remaining -= int64(n)
	return n, err
}

// LimitReader wraps r so that consuming more than maxBytes bytes fails with a
// *SizeError (matching ErrTooLarge) instead of io.EOF. maxBytes <= 0 returns
// r unchanged. Unlike io.LimitReader, exhausting the limit is a hard typed
// error, not a silent truncation — the right behavior for untrusted uploads,
// where a truncated parse could otherwise succeed on a hostile prefix.
func LimitReader(r io.Reader, maxBytes int64) io.Reader {
	if maxBytes <= 0 {
		return r
	}
	return &limitedReader{r: r, remaining: maxBytes + 1, max: maxBytes}
}

// ReadMatrixMarketLimited is ReadMatrixMarket with a hard cap on the bytes
// consumed from r: untrusted text uploads larger than maxBytes fail with an
// error matching ErrTooLarge before their payload is ingested, mirroring the
// size validation the binary path performs against its header. maxBytes <= 0
// means unlimited.
func ReadMatrixMarketLimited(r io.Reader, maxBytes int64) (*matrix.CSR, error) {
	return ReadMatrixMarket(LimitReader(r, maxBytes))
}

// scanFail resolves a parse failure against the scanner's transport state:
// a read error (or a line over the buffer) makes the scanner deliver its
// buffered bytes as a partial final token, so a failed parse of that token
// must report the underlying error, not the mangled text.
func scanFail(sc *bufio.Scanner, fallback error) error {
	if err := sc.Err(); err != nil {
		return fmt.Errorf("mmio: read error: %w", err)
	}
	return fallback
}

// ReadMatrixMarket parses a Matrix Market coordinate stream into a canonical
// CSR matrix. Symmetric files are expanded to full storage (both triangles),
// matching SuiteSparse convention for SpGEMM benchmarking. Pattern files get
// value 1.0 for every entry.
func ReadMatrixMarket(r io.Reader) (*matrix.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header line: %%MatrixMarket matrix coordinate <field> <symmetry>
	if !sc.Scan() {
		// A failed first Scan is either a genuinely empty stream or a
		// transport/limit error on the very first read; scanFail tells them
		// apart.
		return nil, scanFail(sc, fmt.Errorf("mmio: empty input"))
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, scanFail(sc, fmt.Errorf("mmio: bad header %q", sc.Text()))
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported format %q (only coordinate)", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	symmetry := header[4]
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}
	if field == "pattern" && symmetry == "skew-symmetric" {
		// The Matrix Market spec forbids the combination: skew-symmetry
		// negates the mirrored values, and a pattern file has none to negate.
		return nil, fmt.Errorf("mmio: pattern files cannot be skew-symmetric: %w", ErrHeader)
	}

	// Skip comments, read size line.
	var rows, cols int64
	var nnz int64
	haveSize := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, scanFail(sc, fmt.Errorf("mmio: bad size line %q: %w", line, err))
		}
		haveSize = true
		break
	}
	if !haveSize {
		// Distinguish a transport failure (mid-stream read error, or a line
		// over the scanner's 1 MiB buffer) from a file that cleanly ends
		// before its size line.
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("mmio: reading size line: %w", err)
		}
		return nil, fmt.Errorf("mmio: missing size line: %w", ErrTruncated)
	}
	if rows <= 0 || cols <= 0 || rows > 1<<31-1 || cols > 1<<31-1 {
		return nil, fmt.Errorf("mmio: unsupported dimensions %dx%d: %w", rows, cols, ErrHeader)
	}

	coo := &matrix.COO{NumRows: int32(rows), NumCols: int32(cols)}
	var read int64
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, scanFail(sc, fmt.Errorf("mmio: bad entry line %q", line))
		}
		i, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, scanFail(sc, fmt.Errorf("mmio: bad row index %q: %w", f[0], err))
		}
		j, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, scanFail(sc, fmt.Errorf("mmio: bad col index %q: %w", f[1], err))
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mmio: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		v := 1.0
		if field != "pattern" {
			if len(f) < 3 {
				return nil, scanFail(sc, fmt.Errorf("mmio: missing value in %q", line))
			}
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, scanFail(sc, fmt.Errorf("mmio: bad value %q: %w", f[2], err))
			}
		}
		read++
		r32, c32 := int32(i-1), int32(j-1)
		coo.Row = append(coo.Row, r32)
		coo.Col = append(coo.Col, c32)
		coo.Val = append(coo.Val, v)
		if symmetry != "general" && r32 != c32 {
			sv := v
			if symmetry == "skew-symmetric" {
				sv = -v
			}
			coo.Row = append(coo.Row, c32)
			coo.Col = append(coo.Col, r32)
			coo.Val = append(coo.Val, sv)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: reading entries (%d of %d read): %w", read, nnz, err)
	}
	if read < nnz {
		return nil, fmt.Errorf("mmio: expected %d entries, got %d: %w", nnz, read, ErrTruncated)
	}
	return coo.ToCSR(), nil
}

// ReadFile loads a Matrix Market file from disk.
func ReadFile(path string) (*matrix.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadMatrixMarket(bufio.NewReaderSize(f, 1<<20))
}

// WriteMatrixMarket writes m as a general real coordinate Matrix Market file.
func WriteMatrixMarket(w io.Writer, m *matrix.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		m.NumRows, m.NumCols, m.NNZ()); err != nil {
		return err
	}
	for i := int32(0); i < m.NumRows; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, m.ColIdx[p]+1, m.Val[p]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// binaryMagic identifies the binary cache format.
const binaryMagic = 0x50425350 // "PBSP"

// WriteBinary writes m in a compact little-endian binary format for fast
// reloading of large generated matrices between experiment runs.
func WriteBinary(w io.Writer, m *matrix.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []any{uint32(binaryMagic), m.NumRows, m.NumCols, m.NNZ()}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.ColIdx); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Val); err != nil {
		return err
	}
	return bw.Flush()
}

// binaryHeaderBytes is the fixed header size: magic (4) + rows (4) +
// cols (4) + nnz (8).
const binaryHeaderBytes = 20

// maxUnsizedBinaryBytes caps the payload a header may claim when the input's
// size cannot be determined (a pure stream): 64 GiB, far above any cache file
// the experiment harness writes, far below the multi-exabyte claims a
// corrupt header can fabricate.
const maxUnsizedBinaryBytes = int64(64) << 30

// inputSize reports the bytes remaining in r when r can tell (bytes.Reader,
// strings.Reader, *os.File and other seekers); ok is false for pure streams.
func inputSize(r io.Reader) (n int64, ok bool) {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len()), true
	case io.Seeker:
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, false
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return 0, false
		}
		if _, err := v.Seek(cur, io.SeekStart); err != nil {
			return 0, false
		}
		return end - cur, true
	}
	return 0, false
}

// ReadBinary reads a matrix written by WriteBinary. The header is validated
// before anything is allocated: dimensions must be plausible and the claimed
// payload must fit the remaining input (or a sanity cap when the input's
// size is unknowable), so a corrupt or truncated cache file fails cleanly
// instead of attempting a multi-GB allocation.
func ReadBinary(r io.Reader) (*matrix.CSR, error) {
	total, sized := inputSize(r)
	br := bufio.NewReaderSize(r, 1<<20)
	var magic uint32
	var rows, cols int32
	var nnz int64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("mmio: bad binary magic %#x: %w", magic, ErrHeader)
	}
	if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	if rows < 0 || cols < 0 || nnz < 0 || (rows == 0 && nnz > 0) {
		return nil, fmt.Errorf("mmio: corrupt binary header (%dx%d, %d nnz): %w",
			rows, cols, nnz, ErrHeader)
	}
	// Payload bytes the header claims: (rows+1)×8 RowPtr + nnz×(4+8)
	// ColIdx/Val. Guard the arithmetic itself before trusting it.
	if nnz > (int64(1)<<62)/12 {
		return nil, fmt.Errorf("mmio: corrupt binary header (%d nnz): %w", nnz, ErrHeader)
	}
	need := (int64(rows)+1)*8 + nnz*12
	if sized {
		if need > total-binaryHeaderBytes {
			return nil, fmt.Errorf("mmio: header claims %d payload bytes, input has %d: %w",
				need, total-binaryHeaderBytes, ErrTruncated)
		}
	} else if need > maxUnsizedBinaryBytes {
		return nil, fmt.Errorf("mmio: header claims %d payload bytes from an unsized stream (cap %d): %w",
			need, maxUnsizedBinaryBytes, ErrHeader)
	}
	m := matrix.NewCSR(rows, cols, nnz)
	if err := binary.Read(br, binary.LittleEndian, m.RowPtr); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, m.ColIdx); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, m.Val); err != nil {
		return nil, err
	}
	return m, m.Validate()
}
