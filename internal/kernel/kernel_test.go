package kernel

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pbspgemm/internal/baseline"
	"pbspgemm/internal/core"
	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// TestRegistryComplete: every implementation in the repository is
// registered exactly once under its paper name.
func TestRegistryComplete(t *testing.T) {
	want := []string{NamePB, NameHeap, NameHash, NameHashVec, NameSPA, NameOuterHeap, NameColumnESC}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d kernels, want %d", len(all), len(want))
	}
	for _, name := range want {
		k, ok := Get(name)
		if !ok {
			t.Fatalf("kernel %q not registered", name)
		}
		if k.Name() != name {
			t.Fatalf("kernel registered under %q reports name %q", name, k.Name())
		}
	}
	if _, ok := Get("NoSuchKernel"); ok {
		t.Fatal("Get returned a kernel for an unknown name")
	}
	// Capability sanity: PB is the only masked/budgeted/squeezed-tuple
	// kernel (column kernels never move expanded tuples, so their modeled
	// costs must stay at the paper's 16 bytes); every kernel except the
	// dismissed naive outer-product reuses workspaces and polls
	// cancellation.
	for _, k := range all {
		caps := k.Capabilities()
		if (caps.Masked || caps.Budgeted || caps.SqueezedTuples) && k.Name() != NamePB {
			t.Errorf("%s claims masked/budgeted/squeezed capability", k.Name())
		}
		if k.Name() != NameOuterHeap && (!caps.Cancellable || !caps.WorkspaceReusing) {
			t.Errorf("%s should be cancellable and workspace-reusing: %+v", k.Name(), caps)
		}
	}
	if pb, _ := Get(NamePB); !pb.Capabilities().SqueezedTuples {
		t.Error("PB kernel must declare the squeezed tuple layout")
	}
}

// TestEveryKernelMatchesHashBaseline is the per-algorithm equivalence
// matrix: every registered kernel (including SPA and ColumnESC) is
// cross-checked against the hash baseline on ER and R-MAT inputs, both
// through a shared workspace and transiently.
func TestEveryKernelMatchesHashBaseline(t *testing.T) {
	type tc struct {
		name string
		a, b *matrix.CSR
	}
	var cases []tc
	for _, seed := range []uint64{1, 42} {
		cases = append(cases, tc{
			name: fmt.Sprintf("ER/n512/d6/seed%d", seed),
			a:    gen.ER(512, 6, seed),
			b:    gen.ER(512, 6, seed+1000),
		})
	}
	cases = append(cases,
		tc{name: "RMAT/s9/ef8", a: gen.RMAT(9, 8, gen.Graph500Params, 3), b: gen.RMAT(9, 8, gen.Graph500Params, 1003)},
		tc{name: "ER/rect", a: gen.ER(256, 4, 5), b: gen.ER(256, 4, 6)},
	)
	ctx := context.Background()
	for _, c := range cases {
		want, _, err := baseline.Hash(c.a, c.b, baseline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantFlops := matrix.FlopsCSR(c.a, c.b)
		for _, k := range All() {
			t.Run(c.name+"/"+k.Name(), func(t *testing.T) {
				for _, ws := range []*Workspace{NewWorkspace(), nil} {
					r, err := k.Multiply(ctx, ws, c.a, c.b, Opts{})
					if err != nil {
						t.Fatal(err)
					}
					if !matrix.Equal(want, r.C, 1e-9) {
						t.Fatalf("ws=%v: result differs from HashSpGEMM", ws != nil)
					}
					if r.Flops != wantFlops {
						t.Errorf("flops %d, want %d", r.Flops, wantFlops)
					}
					if r.NNZC != want.NNZ() {
						t.Errorf("nnzC %d, want %d", r.NNZC, want.NNZ())
					}
					if r.Elapsed <= 0 {
						t.Error("non-positive Elapsed")
					}
					// Pin the squeezed path: every fixture here has a small
					// key geometry, so the PB kernel must have run — and
					// report — the 12-byte layout.
					if k.Name() == NamePB {
						if r.PB == nil || r.PB.Layout != core.LayoutSqueezed || r.PB.TupleBytes != core.SqueezedTupleBytes {
							t.Fatalf("PB run did not report the squeezed layout: %+v", r.PB)
						}
					}
				}
			})
		}
	}
}

// TestKernelSteadyStateAllocs: the regression the registry port is for —
// workspace-reusing kernels (PB and the hash baseline alike) run with zero
// steady-state allocations on a shared workspace, single-threaded.
func TestKernelSteadyStateAllocs(t *testing.T) {
	a := gen.ER(400, 6, 1)
	b := gen.ER(400, 6, 2)
	ctx := context.Background()
	for _, k := range All() {
		if !k.Capabilities().WorkspaceReusing {
			continue
		}
		t.Run(k.Name(), func(t *testing.T) {
			ws := NewWorkspace()
			opt := Opts{Threads: 1}
			if _, err := k.Multiply(ctx, ws, a, b, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := k.Multiply(ctx, ws, a, b, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s allocated %.1f times per call, want 0", k.Name(), allocs)
			}
		})
	}
}

// TestKernelCancellation: an already-canceled context aborts every kernel
// (cancellable ones at a phase boundary, the rest at the call boundary).
func TestKernelCancellation(t *testing.T) {
	a := gen.ER(256, 5, 7)
	b := gen.ER(256, 5, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, k := range All() {
		t.Run(k.Name(), func(t *testing.T) {
			if _, err := k.Multiply(ctx, NewWorkspace(), a, b, Opts{}); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled multiply returned %v, want context.Canceled", err)
			}
		})
	}
}

// TestKernelResultPooled: on a shared workspace the Result and C alias
// pooled memory (invalidated by the next call), while a nil workspace
// returns caller-owned storage.
func TestKernelResultPooled(t *testing.T) {
	a := gen.ER(128, 4, 1)
	b := gen.ER(128, 4, 2)
	ctx := context.Background()
	k, _ := Get(NameHash)
	ws := NewWorkspace()
	r1, err := k.Multiply(ctx, ws, a, b, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	keep := r1.C.Clone()
	a2 := gen.ER(128, 6, 3)
	if _, err := k.Multiply(ctx, ws, a2, a2, Opts{}); err != nil {
		t.Fatal(err)
	}
	if matrix.Equal(keep, r1.C, 0) {
		t.Fatal("pooled result was not reused by the next call (aliasing contract changed?)")
	}
	r3, err := k.Multiply(ctx, nil, a, b, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(keep, r3.C, 0) {
		t.Fatal("transient call differs from pooled call")
	}
}
