package kernel

import (
	"context"

	"pbspgemm/internal/baseline"
	"pbspgemm/internal/core"
	"pbspgemm/internal/matrix"
)

// Canonical kernel names, matching the paper's nomenclature (and
// pbspgemm.Algorithm.String, which the public dispatch keys on).
const (
	NamePB        = "PB-SpGEMM"
	NameHeap      = "HeapSpGEMM"
	NameHash      = "HashSpGEMM"
	NameHashVec   = "HashVecSpGEMM"
	NameSPA       = "SPASpGEMM"
	NameOuterHeap = "OuterHeapNaive"
	NameColumnESC = "ColumnESC"
)

func init() {
	Register(pbKernel{})
	Register(columnKernel{name: NameHeap, fn: baseline.Heap})
	Register(columnKernel{name: NameHash, fn: baseline.Hash})
	Register(columnKernel{name: NameHashVec, fn: baseline.HashVec})
	Register(columnKernel{name: NameSPA, fn: baseline.SPA})
	Register(outerHeapKernel{})
	Register(columnKernel{name: NameColumnESC, fn: baseline.ColumnESC})
}

// pbKernel serves PB-SpGEMM (internal/core): outer-product
// expand-sort-compress with propagation blocking.
type pbKernel struct{}

func (pbKernel) Name() string { return NamePB }

func (pbKernel) Capabilities() Capabilities {
	return Capabilities{Masked: true, Budgeted: true, Cancellable: true,
		WorkspaceReusing: true, SqueezedTuples: true, FusedCompress: true,
		NarrowTuples: true, PatternTuples: true}
}

func (pbKernel) Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (*Result, error) {
	cw := ws.coreWS()
	var acsc *matrix.CSC
	if cw != nil {
		acsc = cw.CSCOf(a)
	} else {
		acsc = a.ToCSC()
	}
	c, st, err := core.Multiply(acsc, b, core.Options{
		NBins:             opt.NBins,
		LocalBinBytes:     opt.LocalBinBytes,
		Threads:           opt.Threads,
		L2CacheBytes:      opt.L2CacheBytes,
		MemoryBudgetBytes: opt.MemoryBudgetBytes,
		Workspace:         cw,
		Cancel:            cancelOf(ctx),
	})
	if err != nil {
		return nil, err
	}
	r := ws.result()
	r.C, r.PB = c, st
	r.Flops, r.NNZC, r.CF, r.Elapsed = st.Flops, st.NNZC, st.CF, st.Total
	return r, nil
}

// columnKernel adapts one internal/baseline column algorithm: Gustavson
// row-wise accumulation with the named accumulator, pooled scratch, and
// phase-boundary cancellation.
type columnKernel struct {
	name string
	fn   func(a, b *matrix.CSR, opt baseline.Options) (*matrix.CSR, *baseline.Stats, error)
}

func (k columnKernel) Name() string { return k.name }

func (columnKernel) Capabilities() Capabilities {
	return Capabilities{Cancellable: true, WorkspaceReusing: true}
}

func (k columnKernel) Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (*Result, error) {
	c, st, err := k.fn(a, b, baseline.Options{
		Threads:   opt.Threads,
		Workspace: ws.colWS(),
		Cancel:    cancelOf(ctx),
	})
	if err != nil {
		return nil, err
	}
	r := ws.result()
	r.C, r.Baseline = c, st
	r.Flops, r.NNZC, r.CF, r.Elapsed = st.Flops, st.NNZC, st.CF, st.Total
	return r, nil
}

// outerHeapKernel serves the n-merge outer-product algorithm the paper
// dismisses (Section II-B); registered for ablations. It has no phase
// hooks, so cancellation is observed only at the call boundary, and its
// merge allocates per call (only A's CSC conversion is pooled).
type outerHeapKernel struct{}

func (outerHeapKernel) Name() string { return NameOuterHeap }

func (outerHeapKernel) Capabilities() Capabilities { return Capabilities{} }

func (outerHeapKernel) Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (*Result, error) {
	if cancel := cancelOf(ctx); cancel != nil {
		if err := cancel(); err != nil {
			return nil, err
		}
	}
	cw := ws.coreWS()
	var acsc *matrix.CSC
	if cw != nil {
		acsc = cw.CSCOf(a)
	} else {
		acsc = a.ToCSC()
	}
	c, st, err := baseline.OuterHeap(acsc, b)
	if err != nil {
		return nil, err
	}
	r := ws.result()
	r.C, r.Baseline = c, st
	r.Flops, r.NNZC, r.CF, r.Elapsed = st.Flops, st.NNZC, st.CF, st.Total
	return r, nil
}
