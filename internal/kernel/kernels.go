package kernel

import (
	"context"

	"pbspgemm/internal/baseline"
	"pbspgemm/internal/core"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// contain converts a panic unwinding out of a kernel call — the kernel's own
// sequential code, or a *par.PanicError rethrown by the par primitives after
// a contained worker panic — into a typed error return, so one poisoned
// request cannot take down a process embedding the engine. The PB kernel
// contains panics inside core already; this is the uniform last line for the
// column baselines and any conversion code at the wrapper layer.
func contain(name string, r **Result, err *error) {
	if pe := par.AsPanicError(recover(), -1, name); pe != nil {
		*r, *err = nil, pe
	}
}

// Canonical kernel names, matching the paper's nomenclature (and
// pbspgemm.Algorithm.String, which the public dispatch keys on).
const (
	NamePB        = "PB-SpGEMM"
	NameHeap      = "HeapSpGEMM"
	NameHash      = "HashSpGEMM"
	NameHashVec   = "HashVecSpGEMM"
	NameSPA       = "SPASpGEMM"
	NameOuterHeap = "OuterHeapNaive"
	NameColumnESC = "ColumnESC"
)

func init() {
	Register(pbKernel{})
	Register(columnKernel{name: NameHeap, fn: baseline.Heap})
	Register(columnKernel{name: NameHash, fn: baseline.Hash})
	Register(columnKernel{name: NameHashVec, fn: baseline.HashVec})
	Register(columnKernel{name: NameSPA, fn: baseline.SPA})
	Register(outerHeapKernel{})
	Register(columnKernel{name: NameColumnESC, fn: baseline.ColumnESC})
}

// pbKernel serves PB-SpGEMM (internal/core): outer-product
// expand-sort-compress with propagation blocking.
type pbKernel struct{}

func (pbKernel) Name() string { return NamePB }

func (pbKernel) Capabilities() Capabilities {
	return Capabilities{Masked: true, Budgeted: true, Cancellable: true,
		WorkspaceReusing: true, SqueezedTuples: true, FusedCompress: true,
		NarrowTuples: true, PatternTuples: true}
}

func (pbKernel) Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (r *Result, err error) {
	defer contain(NamePB, &r, &err)
	cw := ws.coreWS()
	var acsc *matrix.CSC
	if cw != nil {
		acsc = cw.CSCOf(a)
	} else {
		acsc = a.ToCSC()
	}
	c, st, merr := core.Multiply(acsc, b, core.Options{
		NBins:             opt.NBins,
		LocalBinBytes:     opt.LocalBinBytes,
		Threads:           opt.Threads,
		L2CacheBytes:      opt.L2CacheBytes,
		MemoryBudgetBytes: opt.MemoryBudgetBytes,
		Workspace:         cw,
		Cancel:            cancelOf(ctx),
	})
	if merr != nil {
		return nil, merr
	}
	r = ws.result()
	r.C, r.PB = c, st
	r.Flops, r.NNZC, r.CF, r.Elapsed = st.Flops, st.NNZC, st.CF, st.Total
	return r, nil
}

// columnKernel adapts one internal/baseline column algorithm: Gustavson
// row-wise accumulation with the named accumulator, pooled scratch, and
// phase-boundary cancellation.
type columnKernel struct {
	name string
	fn   func(a, b *matrix.CSR, opt baseline.Options) (*matrix.CSR, *baseline.Stats, error)
}

func (k columnKernel) Name() string { return k.name }

func (columnKernel) Capabilities() Capabilities {
	return Capabilities{Cancellable: true, WorkspaceReusing: true}
}

func (k columnKernel) Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (r *Result, err error) {
	defer contain(k.name, &r, &err)
	c, st, merr := k.fn(a, b, baseline.Options{
		Threads:   opt.Threads,
		Workspace: ws.colWS(),
		Cancel:    cancelOf(ctx),
	})
	if merr != nil {
		return nil, merr
	}
	r = ws.result()
	r.C, r.Baseline = c, st
	r.Flops, r.NNZC, r.CF, r.Elapsed = st.Flops, st.NNZC, st.CF, st.Total
	return r, nil
}

// outerHeapKernel serves the n-merge outer-product algorithm the paper
// dismisses (Section II-B); registered for ablations. It has no phase
// hooks, so cancellation is observed only at the call boundary, and its
// merge allocates per call (only A's CSC conversion is pooled).
type outerHeapKernel struct{}

func (outerHeapKernel) Name() string { return NameOuterHeap }

func (outerHeapKernel) Capabilities() Capabilities { return Capabilities{} }

func (outerHeapKernel) Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (r *Result, err error) {
	defer contain(NameOuterHeap, &r, &err)
	if cancel := cancelOf(ctx); cancel != nil {
		if cerr := cancel(); cerr != nil {
			return nil, cerr
		}
	}
	cw := ws.coreWS()
	var acsc *matrix.CSC
	if cw != nil {
		acsc = cw.CSCOf(a)
	} else {
		acsc = a.ToCSC()
	}
	c, st, merr := baseline.OuterHeap(acsc, b)
	if merr != nil {
		return nil, merr
	}
	r = ws.result()
	r.C, r.Baseline = c, st
	r.Flops, r.NNZC, r.CF, r.Elapsed = st.Flops, st.NNZC, st.CF, st.Total
	return r, nil
}
