// Package kernel defines the uniform interface every SpGEMM implementation
// in this repository is served through, plus the registry the public
// Engine's planner enumerates. The Engine stopped being a hard-coded switch
// over algorithms and became a planner over this registry: each kernel
// declares its capabilities (masking, memory budgeting, cancellation,
// workspace reuse), multiplies through a pooled Workspace, and reports
// per-call statistics, so pooling, context cancellation and metrics work
// identically for PB-SpGEMM and for every column baseline.
package kernel

import (
	"context"
	"fmt"
	"time"

	"pbspgemm/internal/baseline"
	"pbspgemm/internal/core"
	"pbspgemm/internal/matrix"
)

// Capabilities declares what a kernel supports beyond plain multiplication.
type Capabilities struct {
	// Masked kernels can apply a structural mask during output formation.
	Masked bool
	// Budgeted kernels honor Opts.MemoryBudgetBytes by tiling.
	Budgeted bool
	// Cancellable kernels poll ctx at phase boundaries; others only observe
	// an already-expired ctx at the call boundary.
	Cancellable bool
	// WorkspaceReusing kernels run with zero steady-state allocations on a
	// shared Workspace.
	WorkspaceReusing bool
	// SqueezedTuples kernels shrink expanded tuples to 12 bytes (a uint32
	// key and a float64 value in parallel arrays) whenever the run's bin
	// geometry keeps localRowBits + colBits ≤ 32, and report the layout used
	// on their stats. The planner models such kernels' tuple traffic at the
	// per-run cost (12 or 16 bytes); column kernels never move expanded
	// tuples and keep the paper's 16-byte model.
	SqueezedTuples bool
	// FusedCompress kernels run the fused sort→compress→assemble pipeline
	// by default: the sort's last pass folds duplicates in cache and the
	// budgeted merge emits into the final CSR, so the planner models their
	// tuple traffic with the fused roofline bound (one fewer per-tuple term
	// in the denominator; roofline.AIOuterFusedExact).
	FusedCompress bool
	// NarrowTuples kernels offer the 8-byte narrow layout (uint32 key +
	// 4-byte value) for float32/int32 workloads through the typed entry
	// points (core.MultiplyNarrow, semiring.Arithmetic32/ArithmeticInt32),
	// subject to the same 32-bit key-geometry rule as SqueezedTuples.
	NarrowTuples bool
	// PatternTuples kernels offer the 4-byte pattern (key-only) layout for
	// structural products — the Boolean semiring and any multiply whose
	// values are never read (core.MultiplyPattern).
	PatternTuples bool
}

// Opts is the per-call tuning a kernel receives. Kernels ignore fields
// outside their capability set (e.g. column kernels ignore the PB bin
// geometry).
type Opts struct {
	Threads           int
	NBins             int
	LocalBinBytes     int
	L2CacheBytes      int
	MemoryBudgetBytes int64
}

// Result is one multiplication's outcome. When the call ran on a non-nil
// Workspace, C and the phase-stats pointers alias workspace memory and are
// invalidated by the workspace's next call — Clone/copy to keep them.
type Result struct {
	C       *matrix.CSR
	Flops   int64
	NNZC    int64
	CF      float64
	Elapsed time.Duration
	// PB holds the phase breakdown of PB-structured runs, else nil.
	PB *core.Stats
	// Baseline holds the two-phase breakdown of column runs, else nil.
	Baseline *baseline.Stats
}

// Workspace bundles the pooled buffers of both engine families, so one
// pooled object serves whichever kernel the planner picks. Fields are
// created lazily; a nil *Workspace runs every kernel with transient
// buffers.
type Workspace struct {
	Core *core.Workspace
	Col  *baseline.Workspace

	// PlanScratch pools the Auto planner's O(cols(B)) symbolic marker, so
	// steady-state planned calls stay allocation-free like everything else.
	PlanScratch []int32

	// res pools the Result header itself, so steady-state kernel calls on a
	// shared workspace allocate nothing at all.
	res Result
}

// NewWorkspace returns a workspace with both sub-pools ready.
func NewWorkspace() *Workspace {
	return &Workspace{Core: core.NewWorkspace(), Col: baseline.NewWorkspace()}
}

// coreWS returns the PB-engine pool (lazily created), or nil for transient
// calls.
func (w *Workspace) coreWS() *core.Workspace {
	if w == nil {
		return nil
	}
	if w.Core == nil {
		w.Core = core.NewWorkspace()
	}
	return w.Core
}

// colWS returns the column-engine pool (lazily created), or nil for
// transient calls.
func (w *Workspace) colWS() *baseline.Workspace {
	if w == nil {
		return nil
	}
	if w.Col == nil {
		w.Col = baseline.NewWorkspace()
	}
	return w.Col
}

// result returns the Result to fill: pooled when the workspace is shared.
func (w *Workspace) result() *Result {
	if w == nil {
		return &Result{}
	}
	w.res = Result{}
	return &w.res
}

// Kernel is one SpGEMM implementation. Multiply computes C = A*B for
// canonical CSR inputs (kernels needing CSC convert internally through the
// workspace's pooled conversion), observing ctx according to Capabilities.
type Kernel interface {
	// Name returns the kernel's canonical name as used in the paper (and by
	// pbspgemm.Algorithm.String).
	Name() string
	Capabilities() Capabilities
	Multiply(ctx context.Context, ws *Workspace, a, b *matrix.CSR, opt Opts) (*Result, error)
}

// The registry. Kernels register from init; lookups after init are
// lock-free reads.
var (
	kernels []Kernel
	byName  = make(map[string]Kernel)
)

// Register adds k under its name; duplicate names are a programming error.
func Register(k Kernel) {
	name := k.Name()
	if _, dup := byName[name]; dup {
		panic(fmt.Sprintf("kernel: duplicate registration of %q", name))
	}
	byName[name] = k
	kernels = append(kernels, k)
}

// Get returns the kernel registered under name.
func Get(name string) (Kernel, bool) {
	k, ok := byName[name]
	return k, ok
}

// All returns the registered kernels in registration order.
func All() []Kernel {
	out := make([]Kernel, len(kernels))
	copy(out, kernels)
	return out
}

// cancelOf adapts ctx to the engines' phase-boundary cancellation hook;
// nil when the context can never be canceled, so the hot path pays nothing.
func cancelOf(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}
