// Package faultinject is the deterministic fault-injection registry behind
// the chaos suite: tests arm a plan (panic worker w the Nth time site S is
// reached, slow a worker down, force a cancellation, simulate an allocation
// failure) and the instrumented hot paths fire it at named sites. Without the
// `faultinject` build tag the package compiles to nothing — Enabled is a
// false constant, every `if faultinject.Enabled { faultinject.Fire(...) }`
// guard is dead code the compiler deletes, and production binaries carry
// zero overhead (the bench gate proves it).
//
// Determinism: a plan is a pure function of its fields, sites count hits with
// a per-site counter, and PlanFromSeed derives plans from an integer seed —
// the chaos fuzzer replays any failure from its seed alone.
package faultinject

// Site names an instrumented point in the pipeline. Sites identify *where* a
// fault lands; the plan decides what happens there.
type Site uint8

const (
	// SiteExpandColumn fires once per column of A processed by an expand
	// worker, in every tuple layout.
	SiteExpandColumn Site = iota
	// SiteSortTask fires once per work-stealing sort task (whole-bin fuse,
	// bucket sort, or oversized-bin partition).
	SiteSortTask
	// SiteFoldBin fires once per bin in the unfused compress phase.
	SiteFoldBin
	// SiteMergeBin fires once per bin of the budgeted k-way merge
	// (counting and emit walks).
	SiteMergeBin
	// SiteAssembleBin fires once per bin unpacked into the output CSR.
	SiteAssembleBin
	// SiteGrow fires before the engine grows its tuple arenas — the place a
	// real allocation failure would surface.
	SiteGrow
	// SiteServeHandler fires at the top of the serve layer's multiply
	// handler, inside the recovery middleware's scope.
	SiteServeHandler
	// SitePeerDial fires before every HTTP exchange the peer client opens
	// to a remote pbspgemmd (upload, multiply, health probe) — the place a
	// refused connection or dead peer surfaces. FireErr sites: ModeError
	// returns the fault as a connect-style error instead of panicking.
	SitePeerDial
	// SiteBlockRPC fires before the shard coordinator dispatches one block
	// multiply attempt to a backend (local pool or remote peer). ModeError
	// injects a retryable dispatch failure, ModeSleep a straggling backend.
	SiteBlockRPC
	// SiteReduce fires once per C(i,j) block as the coordinator reduces its
	// partial products over k — a local failure after all remote work
	// succeeded, probing the never-partial guarantee.
	SiteReduce
	// NumSites bounds the Site space for fuzzers that map bytes to sites.
	NumSites
)

// String names the site for error messages and chaos-test logs.
func (s Site) String() string {
	switch s {
	case SiteExpandColumn:
		return "expand-column"
	case SiteSortTask:
		return "sort-task"
	case SiteFoldBin:
		return "fold-bin"
	case SiteMergeBin:
		return "merge-bin"
	case SiteAssembleBin:
		return "assemble-bin"
	case SiteGrow:
		return "grow"
	case SiteServeHandler:
		return "serve-handler"
	case SitePeerDial:
		return "peer-dial"
	case SiteBlockRPC:
		return "block-rpc"
	case SiteReduce:
		return "reduce"
	default:
		return "unknown-site"
	}
}

// Mode is what happens when an armed plan's site reaches its hit count.
type Mode uint8

const (
	// ModePanic panics the hitting goroutine with a Fault value — the
	// containment layer must turn it into a typed *par.PanicError.
	ModePanic Mode = iota
	// ModeSleep delays the hitting goroutine by Plan.Sleep — an injected
	// slow worker, for probing cancellation latency and idle-loop behavior.
	ModeSleep
	// ModeCall invokes Plan.Fn on the hitting goroutine — tests use it to
	// force a cancellation (cancel a context from inside a phase) or to
	// observe exactly when a site is reached.
	ModeCall
	// ModeError makes FireErr return the Fault as an error instead of
	// panicking — the shape of a failed RPC or refused connection. Sites
	// instrumented with Fire (not FireErr) treat it as a no-op.
	ModeError
)

// Fault is the value ModePanic panics with; carrying the site makes chaos
// assertions ("the typed error names the injected site") possible.
type Fault struct {
	Site   Site
	Worker int
}

func (f Fault) Error() string {
	return "faultinject: injected fault at " + f.Site.String()
}

// Plan says where, when and what to inject. The zero plan panics worker 0 at
// the first SiteExpandColumn hit.
type Plan struct {
	// Site is the instrumented point the plan watches.
	Site Site
	// Hit is which occurrence triggers (1 = first; 0 means first too).
	// Occurrences are counted per site across all workers.
	Hit int64
	// Every, when > 0, re-triggers the plan on occurrence Hit and every
	// Every-th occurrence after it, instead of exactly once — a flaky peer
	// (ModeError, Every=2 fails every other RPC) or a persistently slow one
	// (ModeSleep, Every=1 delays every block).
	Every int64
	// Worker restricts the trigger to one worker id; -1 matches any.
	Worker int
	// Mode selects panic / sleep / call.
	Mode Mode
	// SleepNanos is ModeSleep's delay.
	SleepNanos int64
	// Fn is ModeCall's callback.
	Fn func(site Site, worker int)
}

// PlanFromSeed derives a deterministic plan from a fuzz seed: site, hit
// count and worker filter are simple moduli of the seed's fields, so any
// chaos-suite failure replays from the integer alone. Only in-kernel sites
// are drawn (the serve site needs an HTTP harness).
func PlanFromSeed(seed uint64) Plan {
	sites := [...]Site{SiteExpandColumn, SiteSortTask, SiteFoldBin, SiteMergeBin, SiteAssembleBin, SiteGrow}
	return Plan{
		Site:   sites[seed%uint64(len(sites))],
		Hit:    int64(seed>>8%13) + 1,
		Worker: -1,
		Mode:   ModePanic,
	}
}
