//go:build faultinject

package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether the binary was built with the faultinject tag.
const Enabled = true

// registry is the process-wide armed plan. Reads on the Fire fast path are
// a single atomic load of armed; the plan itself is immutable once armed
// (Arm copies it), so Fire reads it without the mutex.
var (
	armed atomic.Bool
	mu    sync.Mutex
	plan  Plan
	hits  [NumSites]atomic.Int64
)

// Arm installs p as the active plan and resets all hit counters. Plans do
// not stack: arming replaces any previous plan. Tests must Disarm when done
// (typically via t.Cleanup) — the registry is process-global.
func Arm(p Plan) {
	mu.Lock()
	defer mu.Unlock()
	if p.Hit <= 0 {
		p.Hit = 1
	}
	plan = p
	for i := range hits {
		hits[i].Store(0)
	}
	armed.Store(true)
}

// Disarm deactivates the registry; subsequent Fire calls only count hits.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
}

// Hits reports how many times site has fired since the last Arm — chaos
// tests use it to prove a site was actually reached.
func Hits(s Site) int64 { return hits[s].Load() }

// Fire marks one occurrence of site on worker and triggers the armed plan
// when this occurrence is the plan's (site, hit, worker) target.
func Fire(site Site, worker int) {
	n := hits[site].Add(1)
	if !armed.Load() {
		return
	}
	// plan is immutable while armed (Arm replaces it wholesale under the
	// mutex before setting armed), so these reads are race-free.
	if plan.Site != site || n != plan.Hit {
		return
	}
	if plan.Worker >= 0 && plan.Worker != worker {
		return
	}
	switch plan.Mode {
	case ModePanic:
		panic(Fault{Site: site, Worker: worker})
	case ModeSleep:
		time.Sleep(time.Duration(plan.SleepNanos))
	case ModeCall:
		if plan.Fn != nil {
			plan.Fn(site, worker)
		}
	}
}
