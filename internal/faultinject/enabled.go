//go:build faultinject

package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether the binary was built with the faultinject tag.
const Enabled = true

// registry is the process-wide armed plan. Reads on the Fire fast path are
// a single atomic load of armed; the plan itself is immutable once armed
// (Arm copies it), so Fire reads it without the mutex.
var (
	armed atomic.Bool
	mu    sync.Mutex
	plan  Plan
	hits  [NumSites]atomic.Int64
)

// Arm installs p as the active plan and resets all hit counters. Plans do
// not stack: arming replaces any previous plan. Tests must Disarm when done
// (typically via t.Cleanup) — the registry is process-global.
func Arm(p Plan) {
	mu.Lock()
	defer mu.Unlock()
	if p.Hit <= 0 {
		p.Hit = 1
	}
	plan = p
	for i := range hits {
		hits[i].Store(0)
	}
	armed.Store(true)
}

// Disarm deactivates the registry; subsequent Fire calls only count hits.
func Disarm() {
	mu.Lock()
	defer mu.Unlock()
	armed.Store(false)
}

// Hits reports how many times site has fired since the last Arm — chaos
// tests use it to prove a site was actually reached.
func Hits(s Site) int64 { return hits[s].Load() }

// triggered reports whether occurrence n of the plan's site fires it: at
// exactly Hit, and — with Every > 0 — on every Every-th occurrence after it
// (the flaky/slow recurring modes).
func triggered(n int64) bool {
	if n == plan.Hit {
		return true
	}
	return plan.Every > 0 && n > plan.Hit && (n-plan.Hit)%plan.Every == 0
}

// Fire marks one occurrence of site on worker and triggers the armed plan
// when this occurrence is the plan's (site, hit, worker) target. ModeError
// is a no-op here — error-returning sites use FireErr.
func Fire(site Site, worker int) {
	n := hits[site].Add(1)
	if !armed.Load() {
		return
	}
	// plan is immutable while armed (Arm replaces it wholesale under the
	// mutex before setting armed), so these reads are race-free.
	if plan.Site != site || !triggered(n) {
		return
	}
	if plan.Worker >= 0 && plan.Worker != worker {
		return
	}
	switch plan.Mode {
	case ModePanic:
		panic(Fault{Site: site, Worker: worker})
	case ModeSleep:
		time.Sleep(time.Duration(plan.SleepNanos))
	case ModeCall:
		if plan.Fn != nil {
			plan.Fn(site, worker)
		}
	}
}

// FireErr is Fire for sites whose natural failure shape is an error return
// rather than a panic (remote RPC boundaries): ModeError returns the Fault
// as the error, every other mode behaves exactly like Fire (a panic here
// still exercises the containment path around the RPC).
func FireErr(site Site, worker int) error {
	n := hits[site].Add(1)
	if !armed.Load() {
		return nil
	}
	if plan.Site != site || !triggered(n) {
		return nil
	}
	if plan.Worker >= 0 && plan.Worker != worker {
		return nil
	}
	switch plan.Mode {
	case ModePanic:
		panic(Fault{Site: site, Worker: worker})
	case ModeSleep:
		time.Sleep(time.Duration(plan.SleepNanos))
	case ModeCall:
		if plan.Fn != nil {
			plan.Fn(site, worker)
		}
	case ModeError:
		return Fault{Site: site, Worker: worker}
	}
	return nil
}
