//go:build !faultinject

package faultinject

// Enabled reports whether the binary was built with the faultinject tag.
// As a false constant, every `if faultinject.Enabled { ... }` call-site
// guard in the hot paths is deleted by the compiler — the production build
// carries no branch, no call, no counter.
const Enabled = false

// Arm is a no-op without the faultinject build tag.
func Arm(Plan) {}

// Disarm is a no-op without the faultinject build tag.
func Disarm() {}

// Fire is a no-op without the faultinject build tag; call sites must guard
// it with `if faultinject.Enabled` so it never even compiles in.
func Fire(Site, int) {}

// FireErr never injects without the faultinject build tag.
func FireErr(Site, int) error { return nil }

// Hits always reports zero without the faultinject build tag.
func Hits(Site) int64 { return 0 }
