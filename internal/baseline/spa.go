package baseline

import "pbspgemm/internal/matrix"

// SPA computes C = A*B with a dense sparse-accumulator (Gilbert, Moler,
// Schreiber [25]): each thread keeps a dense value array and a versioned
// occupancy stamp over all columns of B, plus a list of touched columns.
// O(flop) accumulation with no hashing, at the cost of O(n) thread-private
// memory — the classic MATLAB-style column SpGEMM the paper's Table I cites.
func SPA(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, func(a, b *matrix.CSR) worker {
		w := &spaWorker{
			a: a, b: b,
			val:   make([]float64, b.NumCols),
			stamp: make([]int32, b.NumCols),
		}
		for i := range w.stamp {
			w.stamp[i] = -1
		}
		return w
	})
}

type spaWorker struct {
	a, b    *matrix.CSR
	val     []float64
	stamp   []int32
	touched []int32
}

func (w *spaWorker) merge(i int32, dstCol []int32, dstVal []float64) int {
	a, b := w.a, w.b
	w.touched = w.touched[:0]
	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		k := a.ColIdx[p]
		av := a.Val[p]
		for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
			j := b.ColIdx[q]
			if w.stamp[j] != i {
				w.stamp[j] = i
				w.val[j] = av * b.Val[q]
				w.touched = append(w.touched, j)
			} else {
				w.val[j] += av * b.Val[q]
			}
		}
	}
	n := copy(dstCol, w.touched)
	for idx := 0; idx < n; idx++ {
		dstVal[idx] = w.val[dstCol[idx]]
	}
	// touched is in first-touch order; canonical CSR needs sorted columns.
	sortPairs(dstCol[:n], dstVal[:n])
	return n
}

var _ worker = (*spaWorker)(nil)
