package baseline

import "pbspgemm/internal/matrix"

// SPA computes C = A*B with a dense sparse-accumulator (Gilbert, Moler,
// Schreiber [25]): each thread keeps a dense value array and a versioned
// occupancy stamp over all columns of B, plus a list of touched columns.
// O(flop) accumulation with no hashing, at the cost of O(n) thread-private
// memory — the classic MATLAB-style column SpGEMM the paper's Table I cites.
func SPA(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, algorithm{prepare: spaPrepare, merge: spaMerge})
}

// spaPrepare sizes the thread's dense accumulator and re-initializes the
// occupancy stamp. The stamp reuses the symbolic marker, which the symbolic
// pass left stamped with exactly the row ids the numeric pass is about to
// re-visit — hence the mandatory refill to -1.
func spaPrepare(sc *scratch, _, b *matrix.CSR) {
	sc.dense = matrix.GrowFloat64(&sc.dense, int64(b.NumCols))
	stamp := matrix.GrowInt32(&sc.marker, int(b.NumCols))
	for i := range stamp {
		stamp[i] = -1
	}
}

func spaMerge(sc *scratch, a, b *matrix.CSR, i int32, dstCol []int32, dstVal []float64) int {
	stamp, val := sc.marker, sc.dense
	touched := sc.touched[:0]
	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		k := a.ColIdx[p]
		av := a.Val[p]
		for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
			j := b.ColIdx[q]
			if stamp[j] != i {
				stamp[j] = i
				val[j] = av * b.Val[q]
				touched = append(touched, j)
			} else {
				val[j] += av * b.Val[q]
			}
		}
	}
	sc.touched = touched // keep any growth pooled
	n := copy(dstCol, touched)
	for idx := 0; idx < n; idx++ {
		dstVal[idx] = val[dstCol[idx]]
	}
	// touched is in first-touch order; canonical CSR needs sorted columns.
	sortPairs(dstCol[:n], dstVal[:n])
	return n
}
