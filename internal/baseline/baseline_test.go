package baseline

import (
	"fmt"
	"testing"
	"testing/quick"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// algo adapts each baseline to a common test signature.
type algo struct {
	name string
	fn   func(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error)
}

func algos() []algo {
	return []algo{
		{"Heap", Heap},
		{"Hash", Hash},
		{"HashVec", HashVec},
		{"SPA", SPA},
		{"ColumnESC", ColumnESC},
	}
}

func TestBaselinesMatchReference(t *testing.T) {
	inputs := []struct {
		name string
		a, b *matrix.CSR
	}{
		{"ER_small", gen.ER(64, 4, 1), gen.ER(64, 4, 2)},
		{"ER_mid", gen.ER(512, 8, 3), gen.ER(512, 8, 4)},
		{"RMAT", gen.RMAT(9, 8, gen.Graph500Params, 5), gen.RMAT(9, 8, gen.Graph500Params, 6)},
		{"banded", gen.Banded(300, 4, 7), gen.Banded(300, 4, 8)},
	}
	for _, in := range inputs {
		want := matrix.ReferenceMultiply(in.a, in.b)
		for _, al := range algos() {
			t.Run(in.name+"/"+al.name, func(t *testing.T) {
				got, st, err := al.fn(in.a, in.b, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("invalid output: %v", err)
				}
				if !matrix.Equal(want, got, 1e-9) {
					t.Fatal("result differs from reference")
				}
				if st.Flops != matrix.FlopsCSR(in.a, in.b) {
					t.Errorf("flops %d, want %d", st.Flops, matrix.FlopsCSR(in.a, in.b))
				}
				if st.NNZC != want.NNZ() {
					t.Errorf("nnzC %d, want %d", st.NNZC, want.NNZ())
				}
			})
		}
	}
}

func TestBaselinesThreadCounts(t *testing.T) {
	a := gen.ER(400, 6, 9)
	b := gen.ER(400, 6, 10)
	want := matrix.ReferenceMultiply(a, b)
	for _, al := range algos() {
		for _, threads := range []int{1, 2, 3, 16} {
			t.Run(fmt.Sprintf("%s/t%d", al.name, threads), func(t *testing.T) {
				got, _, err := al.fn(a, b, Options{Threads: threads})
				if err != nil {
					t.Fatal(err)
				}
				if !matrix.Equal(want, got, 1e-9) {
					t.Fatal("result differs from reference")
				}
			})
		}
	}
}

func TestBaselinesShapeMismatch(t *testing.T) {
	a := gen.ER(32, 2, 1)
	b := gen.ER(64, 2, 2)
	for _, al := range algos() {
		if _, _, err := al.fn(a, b, Options{}); err == nil {
			t.Errorf("%s: expected shape error", al.name)
		}
	}
}

func TestBaselinesEmpty(t *testing.T) {
	empty := matrix.NewCSR(50, 50, 0)
	a := gen.ER(50, 3, 1)
	for _, al := range algos() {
		got, st, err := al.fn(empty, a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != 0 || st.Flops != 0 {
			t.Errorf("%s: expected empty product", al.name)
		}
		got, _, err = al.fn(a, empty, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ() != 0 {
			t.Errorf("%s: expected empty product (A*0)", al.name)
		}
	}
}

func TestOuterHeapMatchesReference(t *testing.T) {
	a := gen.ER(48, 3, 1)
	b := gen.ER(48, 3, 2)
	want := matrix.ReferenceMultiply(a, b)
	got, st, err := OuterHeap(a.ToCSC(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 1e-9) {
		t.Fatal("OuterHeap differs from reference")
	}
	if st.Flops != matrix.FlopsCSR(a, b) {
		t.Errorf("flops %d, want %d", st.Flops, matrix.FlopsCSR(a, b))
	}
}

func TestOuterHeapShapeMismatch(t *testing.T) {
	a := gen.ER(32, 2, 1).ToCSC()
	b := gen.ER(64, 2, 2)
	if _, _, err := OuterHeap(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(seedA, seedB uint64, nSel uint8, nnzSel uint16) bool {
		n := int32(nSel%100) + 4
		nnz := int(nnzSel%600) + 1
		r := gen.NewRNG(seedA)
		aco := &matrix.COO{NumRows: n, NumCols: n}
		bco := &matrix.COO{NumRows: n, NumCols: n}
		r2 := gen.NewRNG(seedB)
		for e := 0; e < nnz; e++ {
			aco.Row = append(aco.Row, r.Intn(n))
			aco.Col = append(aco.Col, r.Intn(n))
			aco.Val = append(aco.Val, r.Float64())
			bco.Row = append(bco.Row, r2.Intn(n))
			bco.Col = append(bco.Col, r2.Intn(n))
			bco.Val = append(bco.Val, r2.Float64())
		}
		a, b := aco.ToCSR(), bco.ToCSR()
		want := matrix.ReferenceMultiply(a, b)
		for _, al := range algos() {
			got, _, err := al.fn(a, b, Options{})
			if err != nil || !matrix.Equal(want, got, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHashVecGroupProbeWrapsAround(t *testing.T) {
	// A row whose columns all hash near the table end forces the grouped
	// probe to wrap; 16 distinct columns in a size-16 table guarantees full
	// occupancy of at least one group boundary.
	n := int32(16)
	aco := &matrix.COO{NumRows: 1, NumCols: n}
	bco := &matrix.COO{NumRows: n, NumCols: n}
	aco.Row = append(aco.Row, 0)
	aco.Col = append(aco.Col, 0)
	aco.Val = append(aco.Val, 1)
	for j := int32(0); j < n; j++ {
		bco.Row = append(bco.Row, 0)
		bco.Col = append(bco.Col, j)
		bco.Val = append(bco.Val, float64(j))
	}
	a, b := aco.ToCSR(), bco.ToCSR()
	want := matrix.ReferenceMultiply(a, b)
	got, _, err := HashVec(a, b, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(want, got, 0) {
		t.Fatal("HashVec wrap-around result incorrect")
	}
}
