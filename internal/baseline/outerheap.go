package baseline

import (
	"fmt"
	"time"

	"pbspgemm/internal/matrix"
)

// OuterHeap computes C = A*B with the naive outer-product algorithm the
// paper attributes to Buluç and Gilbert [23] and dismisses in Section II-B:
// each rank-1 outer product A(:,i)·B(i,:) is merged into the running result
// immediately, requiring k merge passes. It exists here as the ablation
// point that motivates PB-SpGEMM's expand-sort-compress structure — run it
// on anything but small matrices and the cost of n merges is obvious.
//
// The merge is a sequential sorted two-way merge over row-major COO streams.
func OuterHeap(a *matrix.CSC, b *matrix.CSR) (*matrix.CSR, *Stats, error) {
	if a.NumCols != b.NumRows {
		return nil, nil, fmt.Errorf("baseline: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	st := &Stats{}
	start := time.Now()
	st.Flops = matrix.Flops(a, b)

	// Accumulated result as row-major sorted triples.
	var accRow, accCol []int32
	var accVal []float64

	// Scratch for the current rank-1 matrix, also row-major sorted: the
	// outer product of a sorted column and a sorted row is naturally sorted.
	var r1Row, r1Col []int32
	var r1Val []float64

	for i := int32(0); i < a.NumCols; i++ {
		aLo, aHi := a.ColPtr[i], a.ColPtr[i+1]
		bLo, bHi := b.RowPtr[i], b.RowPtr[i+1]
		if aLo == aHi || bLo == bHi {
			continue
		}
		r1Row = r1Row[:0]
		r1Col = r1Col[:0]
		r1Val = r1Val[:0]
		for p := aLo; p < aHi; p++ {
			r := a.RowIdx[p]
			av := a.Val[p]
			for q := bLo; q < bHi; q++ {
				r1Row = append(r1Row, r)
				r1Col = append(r1Col, b.ColIdx[q])
				r1Val = append(r1Val, av*b.Val[q])
			}
		}
		accRow, accCol, accVal = mergeTriples(accRow, accCol, accVal, r1Row, r1Col, r1Val)
	}

	c := (&matrix.COO{
		NumRows: a.NumRows, NumCols: b.NumCols,
		Row: accRow, Col: accCol, Val: accVal,
	}).ToCSR()
	st.Numeric = time.Since(start)
	st.Total = st.Numeric
	st.NNZC = c.NNZ()
	if st.NNZC > 0 {
		st.CF = float64(st.Flops) / float64(st.NNZC)
	}
	return c, st, nil
}

// mergeTriples merges two row-major sorted triple lists, summing duplicates.
func mergeTriples(aR, aC []int32, aV []float64, bR, bC []int32, bV []float64) ([]int32, []int32, []float64) {
	outR := make([]int32, 0, len(aR)+len(bR))
	outC := make([]int32, 0, len(aR)+len(bR))
	outV := make([]float64, 0, len(aR)+len(bR))
	i, j := 0, 0
	for i < len(aR) && j < len(bR) {
		cmp := compareRC(aR[i], aC[i], bR[j], bC[j])
		switch {
		case cmp < 0:
			outR = append(outR, aR[i])
			outC = append(outC, aC[i])
			outV = append(outV, aV[i])
			i++
		case cmp > 0:
			outR = append(outR, bR[j])
			outC = append(outC, bC[j])
			outV = append(outV, bV[j])
			j++
		default:
			outR = append(outR, aR[i])
			outC = append(outC, aC[i])
			outV = append(outV, aV[i]+bV[j])
			i++
			j++
		}
	}
	for ; i < len(aR); i++ {
		outR = append(outR, aR[i])
		outC = append(outC, aC[i])
		outV = append(outV, aV[i])
	}
	for ; j < len(bR); j++ {
		outR = append(outR, bR[j])
		outC = append(outC, bC[j])
		outV = append(outV, bV[j])
	}
	return outR, outC, outV
}

func compareRC(r1, c1, r2, c2 int32) int {
	if r1 != r2 {
		if r1 < r2 {
			return -1
		}
		return 1
	}
	if c1 != c2 {
		if c1 < c2 {
			return -1
		}
		return 1
	}
	return 0
}
