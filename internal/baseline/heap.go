package baseline

import "pbspgemm/internal/matrix"

// Heap computes C = A*B with HeapSpGEMM (Azad et al. [22]): each output row
// is a k-way merge of the selected B rows driven by a thread-private binary
// min-heap keyed by column index. Complexity O(flop · log d) — the log d heap
// factor is why the paper expects heap to lag hash on denser matrices.
func Heap(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, algorithm{merge: heapMerge})
}

// heapEntry is one stream in the k-way merge: the current column of the
// stream, the scale factor from A, and the stream's position in B.
type heapEntry struct {
	col  int32   // current column = b.ColIdx[pos]
	aval float64 // A(i,k)
	pos  int64   // current index into b.ColIdx / b.Val
	end  int64   // row k's end in B
}

// heapMerge k-way merges row i's selected B rows with the thread's pooled
// heap storage.
func heapMerge(sc *scratch, a, b *matrix.CSR, i int32, dstCol []int32, dstVal []float64) int {
	h := sc.heap[:0]
	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		k := a.ColIdx[p]
		lo, hi := b.RowPtr[k], b.RowPtr[k+1]
		if lo == hi {
			continue
		}
		h = append(h, heapEntry{col: b.ColIdx[lo], aval: a.Val[p], pos: lo, end: hi})
	}
	sc.heap = h // keep any growth pooled
	// Heapify (sift-down from the last parent).
	for j := len(h)/2 - 1; j >= 0; j-- {
		siftDown(h, j)
	}
	n := 0
	for len(h) > 0 {
		top := &h[0]
		col := top.col
		val := top.aval * b.Val[top.pos]
		// Advance the winning stream, then drain all streams at this column.
		advance(&h, b)
		for len(h) > 0 && h[0].col == col {
			val += h[0].aval * b.Val[h[0].pos]
			advance(&h, b)
		}
		dstCol[n] = col
		dstVal[n] = val
		n++
	}
	return n
}

// advance moves the heap root to its stream's next entry (or removes the
// stream when exhausted) and restores the heap property.
func advance(h *[]heapEntry, b *matrix.CSR) {
	s := *h
	top := &s[0]
	top.pos++
	if top.pos < top.end {
		top.col = b.ColIdx[top.pos]
		siftDown(s, 0)
		return
	}
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	if len(s) > 1 {
		siftDown(s, 0)
	}
	*h = s
}

// siftDown restores the min-heap (by col) property rooted at j.
func siftDown(h []heapEntry, j int) {
	n := len(h)
	for {
		l := 2*j + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && h[r].col < h[l].col {
			small = r
		}
		if h[j].col <= h[small].col {
			return
		}
		h[j], h[small] = h[small], h[j]
		j = small
	}
}
