// Package baseline implements the state-of-the-art column SpGEMM algorithms
// the paper compares against (Section IV-A): HeapSpGEMM, HashSpGEMM,
// HashVecSpGEMM, plus a SPA (dense accumulator) variant and the naive
// outer-product-with-heap algorithm the paper dismisses as too expensive.
//
// The paper's "column" algorithms operate column-by-column on CSC inputs;
// row-by-row on CSR is computationally identical (the paper says so in
// Section II-B, footnote 1), so — like the reference implementations of
// Nagasaka et al. — these run Gustavson row-wise over CSR.
//
// All algorithms share a two-phase structure: a symbolic pass computes the
// exact nonzero count of each output row (dense-marker based, O(flop)), then
// the numeric pass merges with the algorithm's accumulator directly into the
// exactly-sized CSR arrays. Rows are distributed over threads in contiguous
// flop-balanced ranges.
package baseline

import (
	"fmt"
	"time"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// Options tunes the baseline algorithms.
type Options struct {
	Threads int // 0 = GOMAXPROCS
}

// Stats reports the two phases of a column SpGEMM run.
type Stats struct {
	Symbolic, Numeric time.Duration
	Total             time.Duration
	Flops             int64
	NNZC              int64
	CF                float64
}

// GFLOPS returns performance in the paper's metric.
func (s *Stats) GFLOPS() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Total.Seconds() / 1e9
}

// worker holds the per-thread scratch an accumulator needs.
type worker interface {
	// merge computes row i of C into dst, returning entries written.
	merge(i int32, dstCol []int32, dstVal []float64) int
}

// newWorkerFunc builds a per-thread worker for inputs a, b.
type newWorkerFunc func(a, b *matrix.CSR) worker

// run executes the shared two-phase skeleton with the given accumulator.
func run(a, b *matrix.CSR, opt Options, nw newWorkerFunc) (*matrix.CSR, *Stats, error) {
	if a.NumCols != b.NumRows {
		return nil, nil, fmt.Errorf("baseline: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	threads := par.DefaultThreads(opt.Threads)
	st := &Stats{}
	totalStart := time.Now()

	// Row flops for load balancing and the stats.
	rows := int(a.NumRows)
	rowFlops := make([]int64, rows)
	par.ForRanges(rows, threads, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var f int64
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				f += b.RowNNZ(a.ColIdx[p])
			}
			rowFlops[i] = f
		}
	})
	for _, f := range rowFlops {
		st.Flops += f
	}
	bounds := par.BalancedBoundaries(rowFlops, threads)

	// Symbolic: exact nnz per output row with a per-thread versioned marker.
	t0 := time.Now()
	rowNNZ := make([]int64, rows)
	par.ParallelRun(threads, func(t int) {
		marker := make([]int32, b.NumCols)
		for i := range marker {
			marker[i] = -1
		}
		for i := bounds[t]; i < bounds[t+1]; i++ {
			var cnt int64
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				k := a.ColIdx[p]
				for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
					if j := b.ColIdx[q]; marker[j] != int32(i) {
						marker[j] = int32(i)
						cnt++
					}
				}
			}
			rowNNZ[i] = cnt
		}
	})
	c := &matrix.CSR{NumRows: a.NumRows, NumCols: b.NumCols, RowPtr: make([]int64, rows+1)}
	nnzc := par.PrefixSum(rowNNZ, c.RowPtr)
	c.ColIdx = make([]int32, nnzc)
	c.Val = make([]float64, nnzc)
	st.Symbolic = time.Since(t0)

	// Numeric: per-algorithm accumulator writes straight into C.
	t0 = time.Now()
	par.ParallelRun(threads, func(t int) {
		w := nw(a, b)
		for i := bounds[t]; i < bounds[t+1]; i++ {
			lo := c.RowPtr[i]
			hi := c.RowPtr[i+1]
			if lo == hi {
				continue
			}
			n := w.merge(int32(i), c.ColIdx[lo:hi], c.Val[lo:hi])
			if int64(n) != hi-lo {
				panic(fmt.Sprintf("baseline: row %d numeric nnz %d != symbolic %d", i, n, hi-lo))
			}
		}
	})
	st.Numeric = time.Since(t0)
	st.Total = time.Since(totalStart)
	st.NNZC = nnzc
	if nnzc > 0 {
		st.CF = float64(st.Flops) / float64(nnzc)
	}
	return c, st, nil
}
