// Package baseline implements the state-of-the-art column SpGEMM algorithms
// the paper compares against (Section IV-A): HeapSpGEMM, HashSpGEMM,
// HashVecSpGEMM, plus a SPA (dense accumulator) variant and the naive
// outer-product-with-heap algorithm the paper dismisses as too expensive.
//
// The paper's "column" algorithms operate column-by-column on CSC inputs;
// row-by-row on CSR is computationally identical (the paper says so in
// Section II-B, footnote 1), so — like the reference implementations of
// Nagasaka et al. — these run Gustavson row-wise over CSR.
//
// All algorithms share a two-phase structure: a symbolic pass computes the
// exact nonzero count of each output row (dense-marker based, O(flop)), then
// the numeric pass merges with the algorithm's accumulator directly into the
// exactly-sized CSR arrays. Rows are distributed over threads in contiguous
// flop-balanced ranges.
//
// Like internal/core, the package is an execution engine, not just a
// reference: all scratch (markers, accumulators, output storage) can be
// pooled in a Workspace for zero steady-state allocations, and a Cancel
// hook is polled at phase boundaries so the public Engine can abort calls
// without leaking goroutines.
package baseline

import (
	"fmt"
	"time"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// Options tunes the baseline algorithms.
type Options struct {
	// Threads caps worker goroutines; 0 = GOMAXPROCS.
	Threads int
	// Workspace, if non-nil, pools all scratch and the output arrays across
	// calls. The returned CSR and Stats then alias workspace memory and are
	// invalidated by the next call using the same workspace.
	Workspace *Workspace
	// Cancel, if non-nil, is polled at phase boundaries (after the flop
	// count, after the symbolic pass, and after the numeric pass). A
	// non-nil return aborts the multiplication with that error; in-flight
	// phases run to completion first, so no goroutines leak.
	Cancel func() error
}

// Stats reports the two phases of a column SpGEMM run.
type Stats struct {
	Symbolic, Numeric time.Duration
	Total             time.Duration
	Flops             int64
	NNZC              int64
	CF                float64
}

// GFLOPS returns performance in the paper's metric.
func (s *Stats) GFLOPS() float64 {
	if s.Total <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Total.Seconds() / 1e9
}

// algorithm bundles the numeric-phase hooks of one column accumulator.
// The hooks are top-level functions operating on pooled scratch, so
// selecting an algorithm never allocates.
type algorithm struct {
	// prepare readies one thread's scratch before its numeric range
	// (may be nil).
	prepare func(sc *scratch, a, b *matrix.CSR)
	// merge computes row i of C into dst, returning entries written.
	merge func(sc *scratch, a, b *matrix.CSR, i int32, dstCol []int32, dstVal []float64) int
}

// run executes the shared two-phase skeleton with the given accumulator.
func run(a, b *matrix.CSR, opt Options, alg algorithm) (*matrix.CSR, *Stats, error) {
	if a.NumCols != b.NumRows {
		return nil, nil, fmt.Errorf("baseline: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	// Observe an already-expired ctx before any work (the engine used to do
	// this at its call boundary for column kernels).
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}
	threads := par.DefaultThreads(opt.Threads)
	ws := opt.Workspace
	shared := ws != nil
	if !shared {
		ws = NewWorkspace()
	}
	st := ws.statsFor(shared)
	totalStart := time.Now()

	// Row flops for load balancing and the stats.
	rows := int(a.NumRows)
	rowFlops := matrix.GrowInt64(&ws.rowFlops, rows)
	if threads == 1 {
		rowFlopsRange(a, b, rowFlops, 0, rows)
	} else {
		par.ForRanges(rows, threads, func(_, lo, hi int) {
			rowFlopsRange(a, b, rowFlops, lo, hi)
		})
	}
	for _, f := range rowFlops {
		st.Flops += f
	}
	bounds := par.BalancedBoundariesInto(rowFlops, threads, matrix.GrowInt(&ws.bounds, threads+1))
	ws.growThreads(threads)
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}

	// Symbolic: exact nnz per output row with a per-thread versioned marker.
	t0 := time.Now()
	rowNNZ := matrix.GrowInt64(&ws.rowNNZ, rows)
	if threads == 1 {
		symbolicRange(a, b, &ws.threads[0], rowNNZ, 0, rows)
	} else {
		par.ParallelRun(threads, func(t int) {
			symbolicRange(a, b, &ws.threads[t], rowNNZ, bounds[t], bounds[t+1])
		})
	}
	c := ws.newOutput(a.NumRows, b.NumCols, shared)
	nnzc := par.PrefixSum(rowNNZ, c.RowPtr)
	ws.growOutput(c, nnzc, shared)
	st.Symbolic = time.Since(t0)
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}

	// Numeric: per-algorithm accumulator writes straight into C.
	t0 = time.Now()
	if threads == 1 {
		numericRange(alg, &ws.threads[0], a, b, c, 0, rows)
	} else {
		par.ParallelRun(threads, func(t int) {
			numericRange(alg, &ws.threads[t], a, b, c, bounds[t], bounds[t+1])
		})
	}
	st.Numeric = time.Since(t0)
	st.Total = time.Since(totalStart)
	st.NNZC = nnzc
	if nnzc > 0 {
		st.CF = float64(st.Flops) / float64(nnzc)
	}
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}
	return c, st, nil
}

// rowFlopsRange fills rowFlops[lo:hi] with per-row multiplication counts.
func rowFlopsRange(a, b *matrix.CSR, rowFlops []int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var f int64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			f += b.RowNNZ(a.ColIdx[p])
		}
		rowFlops[i] = f
	}
}

// symbolicRange counts the exact output nonzeros of rows [lo, hi) with the
// thread's pooled marker (re-initialized per call: stale stamps from a
// previous multiplication could collide with current row ids).
func symbolicRange(a, b *matrix.CSR, sc *scratch, rowNNZ []int64, lo, hi int) {
	marker := matrix.GrowInt32(&sc.marker, int(b.NumCols))
	for i := range marker {
		marker[i] = -1
	}
	for i := lo; i < hi; i++ {
		var cnt int64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				if j := b.ColIdx[q]; marker[j] != int32(i) {
					marker[j] = int32(i)
					cnt++
				}
			}
		}
		rowNNZ[i] = cnt
	}
}

// numericRange merges rows [lo, hi) into c with the algorithm's accumulator.
func numericRange(alg algorithm, sc *scratch, a, b, c *matrix.CSR, lo, hi int) {
	if alg.prepare != nil {
		alg.prepare(sc, a, b)
	}
	for i := lo; i < hi; i++ {
		start, end := c.RowPtr[i], c.RowPtr[i+1]
		if start == end {
			continue
		}
		n := alg.merge(sc, a, b, int32(i), c.ColIdx[start:end], c.Val[start:end])
		if int64(n) != end-start {
			panic(fmt.Sprintf("baseline: row %d numeric nnz %d != symbolic %d", i, n, end-start))
		}
	}
}
