package baseline

import (
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/radix"
)

// Workspace pools every buffer the column SpGEMM baselines need across
// calls, mirroring core.Workspace for the PB engine: buffers are grow-only,
// so a workspace warmed up on the largest multiplication of a workload runs
// subsequent calls of the same or smaller size without heap allocations
// (exactly zero when Threads == 1; a handful of goroutine-spawn allocations
// otherwise).
//
// A Workspace must not be shared by concurrent calls. When a call runs with
// Options.Workspace set, the returned CSR and Stats alias workspace memory
// and are invalidated by the next call using the same workspace; Clone the
// CSR to keep it.
type Workspace struct {
	// Shared two-phase skeleton scratch.
	rowFlops []int64
	rowNNZ   []int64
	bounds   []int
	threads  []scratch

	// ColumnESC's expanded-tuple pipeline.
	tuples   []radix.Pair
	segStart []int64
	rowOut   []int64

	// Pooled result storage (used only for shared workspaces).
	out       matrix.CSR
	outRowPtr []int64
	outColIdx []int32
	outVal    []float64

	// stats is returned (by pointer) when the workspace is shared, so
	// steady-state calls do not allocate a Stats either.
	stats Stats
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset drops all pooled memory, returning the workspace to its initial
// empty state.
func (ws *Workspace) Reset() { *ws = Workspace{} }

// scratch is one thread's accumulator storage. The fields cover every
// accumulator family: the versioned marker doubles as the symbolic-phase
// counter and SPA's occupancy stamp (SPA re-initializes it before the
// numeric pass), dense+touched serve SPA, hashCols/hashVals the hash
// variants, and heap the k-way heap merge.
type scratch struct {
	marker   []int32
	touched  []int32
	dense    []float64
	hashCols []int32
	hashVals []float64
	heap     []heapEntry
}

// growThreads makes ws.threads at least n entries long, preserving pooled
// per-thread buffers across calls with varying thread counts.
func (ws *Workspace) growThreads(n int) {
	if cap(ws.threads) < n {
		grown := make([]scratch, n)
		copy(grown, ws.threads)
		ws.threads = grown
		return
	}
	ws.threads = ws.threads[:n]
}

// statsFor returns the Stats a call should fill: pooled when shared,
// freshly allocated for one-shot calls (which own their stats).
func (ws *Workspace) statsFor(shared bool) *Stats {
	if !shared {
		return &Stats{}
	}
	ws.stats = Stats{}
	return &ws.stats
}

// newOutput returns the result header with a sized RowPtr, pooled when
// shared.
func (ws *Workspace) newOutput(rows, cols int32, shared bool) *matrix.CSR {
	if !shared {
		return &matrix.CSR{NumRows: rows, NumCols: cols, RowPtr: make([]int64, int(rows)+1)}
	}
	ws.out = matrix.CSR{NumRows: rows, NumCols: cols,
		RowPtr: matrix.GrowInt64(&ws.outRowPtr, int(rows)+1)}
	return &ws.out
}

// growOutput sizes the result's index and value arrays once nnz(C) is known.
func (ws *Workspace) growOutput(c *matrix.CSR, nnz int64, shared bool) {
	if !shared {
		c.ColIdx = make([]int32, nnz)
		c.Val = make([]float64, nnz)
		return
	}
	c.ColIdx = matrix.GrowInt32(&ws.outColIdx, int(nnz))
	c.Val = matrix.GrowFloat64(&ws.outVal, nnz)
}

// poll checks the caller's cancellation hook (nil means non-cancellable).
func poll(cancel func() error) error {
	if cancel == nil {
		return nil
	}
	return cancel()
}
