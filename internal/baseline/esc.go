package baseline

import (
	"fmt"
	"time"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
	"pbspgemm/internal/radix"
)

// ColumnESC computes C = A*B with the column-wise expand-sort-compress
// algorithm (Dalton, Olson, Bell [15]) — the upper-right cell of the paper's
// Table I and the GPU-style ESC the paper contrasts PB-SpGEMM against.
// C-hat is generated row by row (the CSR equivalent of column by column,
// footnote 1 of the paper): for each row i of A the selected rows of B are
// expanded into a per-row segment of the tuple array, then every segment is
// sorted and compressed independently.
//
// Compared to PB-SpGEMM it shares the O(flop) tuple materialization but
// keeps the column algorithms' irregular reads of B and — because segments
// follow output rows rather than cache-sized bins — its sort granularity is
// data-dependent: hypersparse rows under-fill cache lines and heavy rows
// overflow the cache, which is exactly the bandwidth pathology propagation
// blocking removes.
func ColumnESC(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	if a.NumCols != b.NumRows {
		return nil, nil, fmt.Errorf("baseline: inner dimensions disagree: A is %dx%d, B is %dx%d: %w",
			a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
	}
	// Observe an already-expired ctx before any work — in particular before
	// committing the O(flop) tuple-arena allocation below.
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}
	threads := par.DefaultThreads(opt.Threads)
	ws := opt.Workspace
	shared := ws != nil
	if !shared {
		ws = NewWorkspace()
	}
	st := ws.statsFor(shared)
	start := time.Now()

	// Symbolic: per-row flop counts size the expanded segments exactly.
	rows := int(a.NumRows)
	t0 := time.Now()
	rowFlops := matrix.GrowInt64(&ws.rowFlops, rows)
	if threads == 1 {
		rowFlopsRange(a, b, rowFlops, 0, rows)
	} else {
		par.ForRanges(rows, threads, func(_, lo, hi int) {
			rowFlopsRange(a, b, rowFlops, lo, hi)
		})
	}
	segStart := matrix.GrowInt64(&ws.segStart, rows+1)
	flops := par.PrefixSum(rowFlops, segStart)
	st.Flops = flops
	tuples := radix.GrowPairs(&ws.tuples, flops)
	st.Symbolic = time.Since(t0)
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}

	// Expand + sort + compress, one output row at a time (rows are the
	// parallel unit, matching the original formulation).
	t0 = time.Now()
	bounds := par.BalancedBoundariesInto(rowFlops, threads, matrix.GrowInt(&ws.bounds, threads+1))
	rowOut := matrix.GrowInt64(&ws.rowOut, rows)
	if threads == 1 {
		escRange(a, b, tuples, segStart, rowOut, 0, rows)
	} else {
		par.ParallelRun(threads, func(t int) {
			escRange(a, b, tuples, segStart, rowOut, bounds[t], bounds[t+1])
		})
	}
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}

	// Assemble CSR from the compressed row segments.
	c := ws.newOutput(a.NumRows, b.NumCols, shared)
	nnzc := par.PrefixSum(rowOut, c.RowPtr)
	ws.growOutput(c, nnzc, shared)
	if threads == 1 {
		escAssembleRange(c, tuples, segStart, rowOut, 0, rows)
	} else {
		par.ForRanges(rows, threads, func(_, lo, hi int) {
			escAssembleRange(c, tuples, segStart, rowOut, lo, hi)
		})
	}
	st.Numeric = time.Since(t0)
	st.Total = time.Since(start)
	st.NNZC = nnzc
	if nnzc > 0 {
		st.CF = float64(flops) / float64(nnzc)
	}
	if err := poll(opt.Cancel); err != nil {
		return nil, nil, err
	}
	return c, st, nil
}

// escRange expands, sorts and compresses the segments of rows [lo, hi),
// writing per-row output counts into rowOut.
func escRange(a, b *matrix.CSR, tuples []radix.Pair, segStart, rowOut []int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		seg := tuples[segStart[i]:segStart[i+1]]
		pos := 0
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			k := a.ColIdx[p]
			av := a.Val[p]
			for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
				seg[pos] = radix.Pair{Key: uint64(b.ColIdx[q]), Val: av * b.Val[q]}
				pos++
			}
		}
		radix.SortPairsInPlace(seg)
		// Two-pointer compress within the row segment.
		if len(seg) == 0 {
			rowOut[i] = 0
			continue
		}
		p2 := 0
		for p1 := 1; p1 < len(seg); p1++ {
			if seg[p1].Key == seg[p2].Key {
				seg[p2].Val += seg[p1].Val
				continue
			}
			p2++
			seg[p2] = seg[p1]
		}
		rowOut[i] = int64(p2 + 1)
	}
}

// escAssembleRange copies the compressed segments of rows [lo, hi) into the
// final CSR arrays.
func escAssembleRange(c *matrix.CSR, tuples []radix.Pair, segStart, rowOut []int64, lo, hi int) {
	for i := lo; i < hi; i++ {
		src := segStart[i]
		dst := c.RowPtr[i]
		for j := int64(0); j < rowOut[i]; j++ {
			c.ColIdx[dst+j] = int32(tuples[src+j].Key)
			c.Val[dst+j] = tuples[src+j].Val
		}
	}
}
