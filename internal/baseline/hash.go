package baseline

import (
	"math/bits"

	"pbspgemm/internal/matrix"
)

// Hash computes C = A*B with HashSpGEMM (Nagasaka et al. [12], [27]): each
// output row is accumulated in a thread-private open-addressing hash table
// keyed by column index, then extracted and sorted. Complexity O(flop)
// assuming few collisions; the paper notes hash wins over PB when the
// compression factor exceeds ~4 because it never materializes C-hat.
func Hash(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, algorithm{merge: hashMergeLinear})
}

// HashVec computes C = A*B with HashVecSpGEMM, the paper's vector-register
// variant of hash probing [12]. Without SIMD intrinsics in Go, the vector
// probe is modeled as group-of-8 batched probing: the table is organized in
// 8-slot groups, a lookup scans one whole group before moving to the next,
// which preserves the algorithm's collision behaviour (fewer, wider probe
// steps).
func HashVec(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, algorithm{merge: hashMergeGrouped})
}

const (
	emptySlot = int32(-1)
	groupSize = 8 // slots probed per step in the HashVec variant
)

// hashScale multiplies the per-row nonzero count to get the table size,
// keeping load factor ≤ 0.5 as the reference implementation does.
const hashScale = 2

func hashMergeLinear(sc *scratch, a, b *matrix.CSR, i int32, dstCol []int32, dstVal []float64) int {
	return hashMerge(sc, a, b, i, dstCol, dstVal, probeLinear)
}

func hashMergeGrouped(sc *scratch, a, b *matrix.CSR, i int32, dstCol []int32, dstVal []float64) int {
	return hashMerge(sc, a, b, i, dstCol, dstVal, probeGrouped)
}

// hashMerge accumulates row i into the thread's pooled hash table. The
// table is sized per row to the next power of two ≥ 2× the row's output
// nonzeros (known exactly from the symbolic phase via dst length), then
// reset eagerly — per-row table sizes are small by construction, so the
// reset stays in cache.
func hashMerge(sc *scratch, a, b *matrix.CSR, i int32, dstCol []int32, dstVal []float64,
	probe func(cols []int32, mask uint32, col int32) int) int {
	need := hashScale * len(dstCol)
	size := 1 << bits.Len(uint(need-1))
	if size < groupSize {
		size = groupSize
	}
	cols := matrix.GrowInt32(&sc.hashCols, size)
	vals := matrix.GrowFloat64(&sc.hashVals, int64(size))
	for j := range cols {
		cols[j] = emptySlot
	}
	mask := uint32(size - 1)

	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		k := a.ColIdx[p]
		av := a.Val[p]
		for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
			j := b.ColIdx[q]
			slot := probe(cols, mask, j)
			if cols[slot] == emptySlot {
				cols[slot] = j
				vals[slot] = av * b.Val[q]
			} else {
				vals[slot] += av * b.Val[q]
			}
		}
	}

	// Extract and sort by column for canonical CSR.
	n := 0
	for s, cj := range cols {
		if cj != emptySlot {
			dstCol[n] = cj
			dstVal[n] = vals[s]
			n++
		}
	}
	sortPairs(dstCol[:n], dstVal[:n])
	return n
}

// hash32 is the Fibonacci multiplicative hash the reference hash SpGEMM uses.
func hash32(col int32) uint32 {
	return uint32(col) * 2654435761
}

// probeLinear finds col's slot (existing or first empty) by classic linear
// probing.
func probeLinear(cols []int32, mask uint32, col int32) int {
	h := hash32(col) & mask
	for {
		c := cols[h]
		if c == col || c == emptySlot {
			return int(h)
		}
		h = (h + 1) & mask
	}
}

// probeGrouped scans groupSize consecutive slots per step (the HashVec
// batched probe).
func probeGrouped(cols []int32, mask uint32, col int32) int {
	h := hash32(col) & mask &^ (groupSize - 1)
	for {
		for g := uint32(0); g < groupSize; g++ {
			s := (h + g) & mask
			c := cols[s]
			if c == col || c == emptySlot {
				return int(s)
			}
		}
		h = (h + groupSize) & mask
	}
}

// sortPairs sorts cols ascending carrying vals, used to canonicalize
// hash-extracted rows: insertion sort for short rows (the common case),
// in-place heapsort otherwise. Both paths are allocation-free, keeping the
// pooled-workspace steady state at zero allocations.
func sortPairs(cols []int32, vals []float64) {
	if len(cols) < 2 {
		return
	}
	if len(cols) <= 24 {
		for i := 1; i < len(cols); i++ {
			c, v := cols[i], vals[i]
			j := i - 1
			for j >= 0 && cols[j] > c {
				cols[j+1] = cols[j]
				vals[j+1] = vals[j]
				j--
			}
			cols[j+1] = c
			vals[j+1] = v
		}
		return
	}
	heapSortPairs(cols, vals)
}

// heapSortPairs is an in-place max-heap sort over parallel arrays.
func heapSortPairs(cols []int32, vals []float64) {
	n := len(cols)
	for root := n/2 - 1; root >= 0; root-- {
		siftDownPairs(cols, vals, root, n)
	}
	for end := n - 1; end > 0; end-- {
		cols[0], cols[end] = cols[end], cols[0]
		vals[0], vals[end] = vals[end], vals[0]
		siftDownPairs(cols, vals, 0, end)
	}
}

func siftDownPairs(cols []int32, vals []float64, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && cols[r] > cols[child] {
			child = r
		}
		if cols[root] >= cols[child] {
			return
		}
		cols[root], cols[child] = cols[child], cols[root]
		vals[root], vals[child] = vals[child], vals[root]
		root = child
	}
}
