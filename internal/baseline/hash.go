package baseline

import (
	"math/bits"
	"sort"

	"pbspgemm/internal/matrix"
)

// Hash computes C = A*B with HashSpGEMM (Nagasaka et al. [12], [27]): each
// output row is accumulated in a thread-private open-addressing hash table
// keyed by column index, then extracted and sorted. Complexity O(flop)
// assuming few collisions; the paper notes hash wins over PB when the
// compression factor exceeds ~4 because it never materializes C-hat.
func Hash(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, func(a, b *matrix.CSR) worker {
		return &hashWorker{a: a, b: b, probe: probeLinear}
	})
}

// HashVec computes C = A*B with HashVecSpGEMM, the paper's vector-register
// variant of hash probing [12]. Without SIMD intrinsics in Go, the vector
// probe is modeled as group-of-8 batched probing: the table is organized in
// 8-slot groups, a lookup scans one whole group before moving to the next,
// which preserves the algorithm's collision behaviour (fewer, wider probe
// steps).
func HashVec(a, b *matrix.CSR, opt Options) (*matrix.CSR, *Stats, error) {
	return run(a, b, opt, func(a, b *matrix.CSR) worker {
		return &hashWorker{a: a, b: b, probe: probeGrouped}
	})
}

const (
	emptySlot = int32(-1)
	groupSize = 8 // slots probed per step in the HashVec variant
)

// hashWorker holds one thread's hash table scratch. The table is sized per
// row to the next power of two ≥ 2× the row's output nonzeros (known exactly
// from the symbolic phase via dst length), then reset lazily by re-stamping.
type hashWorker struct {
	a, b  *matrix.CSR
	cols  []int32
	vals  []float64
	probe func(w *hashWorker, mask uint32, col int32) int
}

// hashScale multiplies the per-row nonzero count to get the table size,
// keeping load factor ≤ 0.5 as the reference implementation does.
const hashScale = 2

func (w *hashWorker) merge(i int32, dstCol []int32, dstVal []float64) int {
	a, b := w.a, w.b
	need := hashScale * len(dstCol)
	size := 1 << bits.Len(uint(need-1))
	if size < groupSize {
		size = groupSize
	}
	if cap(w.cols) < size {
		w.cols = make([]int32, size)
		w.vals = make([]float64, size)
	}
	cols := w.cols[:size]
	vals := w.vals[:size]
	for j := range cols {
		cols[j] = emptySlot
	}
	mask := uint32(size - 1)

	for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
		k := a.ColIdx[p]
		av := a.Val[p]
		for q := b.RowPtr[k]; q < b.RowPtr[k+1]; q++ {
			j := b.ColIdx[q]
			slot := w.probe(w, mask, j)
			if cols[slot] == emptySlot {
				cols[slot] = j
				vals[slot] = av * b.Val[q]
			} else {
				vals[slot] += av * b.Val[q]
			}
		}
	}

	// Extract and sort by column for canonical CSR.
	n := 0
	for s, cj := range cols {
		if cj != emptySlot {
			dstCol[n] = cj
			dstVal[n] = vals[s]
			n++
		}
	}
	sortPairs(dstCol[:n], dstVal[:n])
	return n
}

// hash32 is the Fibonacci multiplicative hash the reference hash SpGEMM uses.
func hash32(col int32) uint32 {
	return uint32(col) * 2654435761
}

// probeLinear finds col's slot (existing or first empty) by classic linear
// probing.
func probeLinear(w *hashWorker, mask uint32, col int32) int {
	h := hash32(col) & mask
	for {
		c := w.cols[h]
		if c == col || c == emptySlot {
			return int(h)
		}
		h = (h + 1) & mask
	}
}

// probeGrouped scans groupSize consecutive slots per step (the HashVec
// batched probe).
func probeGrouped(w *hashWorker, mask uint32, col int32) int {
	h := hash32(col) & mask &^ (groupSize - 1)
	for {
		for g := uint32(0); g < groupSize; g++ {
			s := (h + g) & mask
			c := w.cols[s]
			if c == col || c == emptySlot {
				return int(s)
			}
		}
		h = (h + groupSize) & mask
	}
}

// sortPairs sorts dstCol ascending carrying dstVal, used to canonicalize
// hash-extracted rows.
func sortPairs(cols []int32, vals []float64) {
	if len(cols) < 2 {
		return
	}
	// Insertion sort for short rows (the common case), stdlib sort otherwise.
	if len(cols) <= 24 {
		for i := 1; i < len(cols); i++ {
			c, v := cols[i], vals[i]
			j := i - 1
			for j >= 0 && cols[j] > c {
				cols[j+1] = cols[j]
				vals[j+1] = vals[j]
				j--
			}
			cols[j+1] = c
			vals[j+1] = v
		}
		return
	}
	sort.Sort(&pairSlice{cols, vals})
}

type pairSlice struct {
	cols []int32
	vals []float64
}

func (p *pairSlice) Len() int           { return len(p.cols) }
func (p *pairSlice) Less(i, j int) bool { return p.cols[i] < p.cols[j] }
func (p *pairSlice) Swap(i, j int) {
	p.cols[i], p.cols[j] = p.cols[j], p.cols[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}

var _ worker = (*hashWorker)(nil)
