package baseline

import (
	"errors"
	"testing"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// TestWorkspaceZeroSteadyStateAllocs mirrors core's tentpole check for the
// column baselines: repeated multiplications through a shared Workspace
// perform zero steady-state heap allocations (single-threaded; parallel
// paths add only goroutine-spawn allocations).
func TestWorkspaceZeroSteadyStateAllocs(t *testing.T) {
	a := gen.ER(400, 6, 1)
	b := gen.ER(400, 6, 2)
	for _, al := range algos() {
		t.Run(al.name, func(t *testing.T) {
			ws := NewWorkspace()
			opt := Options{Threads: 1, Workspace: ws}
			// Warm up: grow every pooled buffer to its high-water mark.
			if _, _, err := al.fn(a, b, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, _, err := al.fn(a, b, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s allocated %.1f times per call, want 0", al.name, allocs)
			}
		})
	}
}

// TestWorkspaceReuseAcrossShapes multiplies differently-shaped inputs
// through one workspace per algorithm, verifying results against the
// reference and that shrinking inputs do not read stale pooled state.
func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	shapes := []struct {
		n    int32
		d    int
		seed uint64
	}{{512, 6, 1}, {128, 4, 2}, {700, 3, 3}, {128, 8, 4}}
	for _, al := range algos() {
		t.Run(al.name, func(t *testing.T) {
			ws := NewWorkspace()
			for _, s := range shapes {
				a := gen.ER(s.n, s.d, s.seed)
				b := gen.ER(s.n, s.d, s.seed+100)
				got, st, err := al.fn(a, b, Options{Workspace: ws})
				if err != nil {
					t.Fatal(err)
				}
				want := matrix.ReferenceMultiply(a, b)
				if !matrix.Equal(want, got, 1e-9) {
					t.Fatalf("n=%d: pooled result differs from reference", s.n)
				}
				if st.NNZC != want.NNZ() {
					t.Fatalf("n=%d: stats nnzC %d, want %d", s.n, st.NNZC, want.NNZ())
				}
			}
		})
	}
}

// TestCancelObservedAtPhaseBoundaries verifies every baseline aborts with
// the hook's error when cancellation is already requested at entry.
func TestCancelObservedAtPhaseBoundaries(t *testing.T) {
	a := gen.ER(256, 5, 9)
	b := gen.ER(256, 5, 10)
	sentinel := errors.New("canceled")
	for _, al := range algos() {
		t.Run(al.name, func(t *testing.T) {
			calls := 0
			cancel := func() error { calls++; return sentinel }
			if _, _, err := al.fn(a, b, Options{Cancel: cancel}); !errors.Is(err, sentinel) {
				t.Fatalf("got %v, want sentinel cancellation error", err)
			}
			if calls == 0 {
				t.Fatal("cancel hook never polled")
			}
			// A hook that never fires must not change the result.
			ok := func() error { return nil }
			got, _, err := al.fn(a, b, Options{Cancel: ok})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(matrix.ReferenceMultiply(a, b), got, 1e-9) {
				t.Fatal("result with passing cancel hook differs from reference")
			}
		})
	}
}
