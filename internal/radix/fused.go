package radix

import "math/bits"

// Fused sort→compress: the sorter's recursion already visits buckets in
// ascending key order, and a bucket that reaches its last digit (or the
// insertion cutoff) is fully determined the moment the recursion leaves it.
// The fused variants fold runs of equal keys right there and compact the
// aggregated (key, Σval) tuples into the prefix of the same slice, so the
// separate compress pass — a full re-read of the sorted buffer plus an
// nnz-sized write — never runs. Three leaf mechanisms do the folding:
//
//   - Final digit pass (accumulate-on-equal-key): at shift 0 every bucket is
//     a single key, so instead of permuting flop tuples into place and
//     folding afterwards, the pass walks the EXACT fill sequence the
//     unfused permute would execute — read-only, the displaced tuple riding
//     in registers — and accumulates each bucket's value sum as its slots
//     would have been filled. The last pass's writes (the dominant permute
//     traffic) disappear entirely; one aggregated tuple per non-empty
//     bucket is emitted in bucket order.
//   - Insertion leaves: slices at or under the insertion cutoff are
//     insertion-sorted DIRECTLY into the compacted prefix, folding equal
//     keys on insert. Insertion is stable, so fold order equals
//     sort-then-compress order.
//   - Uniform ranges (every key equal): one register-accumulated sum.
//
// All three are bit-identical to sort-then-compress: the recursion runs
// exactly the unfused digit plan (same digitWidth, same cutoff, same
// pass geometry), and every fold accumulates values in exactly the
// left-to-right order of the fully sorted array — for the accumulate pass
// because the simulated fill order IS the post-permute slot order (slots of
// a bucket are finalized in ascending position, and a finalized slot is
// never revisited, in both the cycle-following and the swap permute).
//
// In-place safety: when a leaf [s, e) is emitted, every element left of s
// has already been consumed, so the write cursor n ≤ s, and within a leaf
// the write index trails the read index — the classic in-place compaction
// invariant.

// Numeric is the value constraint of the fused fold: the engine's semiring
// fast paths fold with +, so the fused sorter needs addition — float64 (the
// squeezed layout), float32 and int32 (the narrow layout).
type Numeric interface {
	~float32 | ~float64 | ~int32
}

// fuse32 is the split-layout emit state: the bin's full segment plus the
// compaction cursor, generic over the value width.
type fuse32[V Numeric] struct {
	keys []uint32
	vals []V
	n    int64
}

// emitOne appends one aggregated tuple. Callers guarantee the key differs
// from every previously emitted key (distinct buckets carry distinct
// digits), so no fold check is needed.
func (f *fuse32[V]) emitOne(k uint32, v V) {
	f.keys[f.n] = k
	f.vals[f.n] = v
	f.n++
}

// foldUniform emits a range whose keys are all equal as one tuple, summing
// left to right (the compress order).
func (f *fuse32[V]) foldUniform(lo, hi int64) {
	k := f.keys[lo]
	v := f.vals[lo]
	for i := lo + 1; i < hi; i++ {
		v += f.vals[i]
	}
	f.emitOne(k, v)
}

// insertionFold sorts the leaf [lo, hi) by insertion directly into the
// compacted prefix, folding equal keys on insert. Insertion is stable and
// the fold accumulates in arrival order, which for equal keys is exactly
// their order in the stably sorted array — the compress order.
func (f *fuse32[V]) insertionFold(lo, hi int64) {
	keys, vals := f.keys, f.vals
	base := f.n
	out := base
	for i := lo; i < hi; i++ {
		k := keys[i]
		v := vals[i]
		j := out
		for j > base && keys[j-1] > k {
			j--
		}
		if j > base && keys[j-1] == k {
			vals[j-1] += v
			continue
		}
		for m := out; m > j; m-- {
			keys[m] = keys[m-1]
			vals[m] = vals[m-1]
		}
		keys[j] = k
		vals[j] = v
		out++
	}
	f.n = out
}

// SortKeys32Fused sorts keys ascending (permuting vals identically) and
// folds equal keys with +, compacting the aggregated tuples into
// keys[:n]/vals[:n]. It returns n, the folded length. The prefix is
// bit-identical to SortKeys32 followed by a two-pointer compress; the tail
// beyond n is unspecified.
func SortKeys32Fused[V Numeric](keys []uint32, vals []V) int64 {
	if len(keys) != len(vals) {
		panic("radix: keys and vals length mismatch")
	}
	if len(keys) == 0 {
		return 0
	}
	var or uint32
	for _, k := range keys {
		or |= k
	}
	f := fuse32[V]{keys: keys, vals: vals}
	if or == 0 {
		// All keys zero: fold everything into one tuple.
		f.foldUniform(0, int64(len(keys)))
		return f.n
	}
	f.sortBits(0, int64(len(keys)), bits.Len32(or))
	return f.n
}

// sortBits mirrors SortKeys32Bits' recursion over [lo, hi) — same digit
// plan, same passes — emitting each leaf as it completes.
func (f *fuse32[V]) sortBits(lo, hi int64, hiBits int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n == 1 {
		f.emitOne(f.keys[lo], f.vals[lo])
		return
	}
	if hiBits <= 0 {
		// No distinguishing bits left: every key in the range is equal.
		f.foldUniform(lo, hi)
		return
	}
	if n <= insertionCutoff {
		f.insertionFold(lo, hi)
		return
	}
	keys := f.keys[lo:hi]
	vals := f.vals[lo:hi]
	w := digitWidth(int(n), hiBits)
	shift := uint(hiBits - w)
	nb := 1 << w
	mask := uint32(nb - 1)

	var st flagState32
	for _, k := range keys {
		st.count[(k>>shift)&mask]++
	}
	sum := 0
	for b := 0; b < nb; b++ {
		st.start[b] = sum
		sum += st.count[b]
		st.end[b] = sum
		if st.count[b] > 0 {
			st.nonEmpty++
		}
	}
	if st.nonEmpty == 1 {
		// Uniform digit: descend to the remaining bits.
		f.sortBits(lo, hi, int(shift))
		return
	}
	if shift == 0 {
		// Last digit: every bucket is one key — accumulate, don't permute.
		f.accumulateLastDigit(keys, vals, &st, nb, mask)
		return
	}
	// Splitting pass: the unfused permute, verbatim, then the buckets. The
	// dominant c ≤ 2 buckets emit through a register-resident cursor; only
	// recursion syncs it back to the struct.
	var cursor [maxBuckets]int
	copy(cursor[:nb], st.start[:nb])
	permuteKeys32(keys, vals, cursor[:nb], st.end[:nb], shift, mask)
	dk, dv := f.keys, f.vals
	out := f.n
	for b := 0; b < nb; b++ {
		c := st.count[b]
		if c == 0 {
			continue
		}
		s := lo + int64(st.start[b])
		switch {
		case c == 1:
			dk[out] = dk[s]
			dv[out] = dv[s]
			out++
		case c == 2:
			// The dominant non-trivial bucket size; inline like the sorter.
			k0, k1 := dk[s], dk[s+1]
			v0, v1 := dv[s], dv[s+1]
			if k0 > k1 {
				k0, k1 = k1, k0
				v0, v1 = v1, v0
			}
			if k0 == k1 {
				dk[out] = k0
				dv[out] = v0 + v1
				out++
			} else {
				dk[out] = k0
				dv[out] = v0
				dk[out+1] = k1
				dv[out+1] = v1
				out += 2
			}
		default:
			f.n = out
			f.sortBits(s, lo+int64(st.end[b]), int(shift))
			out = f.n
		}
	}
	f.n = out
}

// accumulateLastDigit is the fused final pass: the read-only simulation of
// permuteKeys32's cycle-following fill sequence at shift 0, accumulating
// each bucket's (single-key) value sum in slot-fill order — exactly the
// post-permute array order the unfused compress would fold in — and
// emitting one aggregated tuple per non-empty bucket. No tuple is moved.
func (f *fuse32[V]) accumulateLastDigit(keys []uint32, vals []V, st *flagState32, nb int, mask uint32) {
	var acc [maxBuckets]V
	var cursor [maxBuckets]int
	copy(cursor[:nb], st.start[:nb])
	for b := 0; b < nb; b++ {
		i := cursor[b]
		be := st.end[b]
		for i < be {
			k := keys[i]
			home := int(k & mask)
			if home == b {
				// Slot i of bucket b finalized by its own occupant.
				acc[b] += vals[i]
				i++
				continue
			}
			v := vals[i]
			for {
				j := cursor[home]
				cursor[home] = j + 1
				k2, v2 := keys[j], vals[j]
				// Slot j of bucket home finalized by the riding tuple.
				acc[home] += v
				home = int(k2 & mask)
				if home == b {
					// Cycle closes: slot i finalized by (k2, v2).
					acc[b] += v2
					i++
					break
				}
				v = v2
			}
		}
		cursor[b] = i
	}
	// All higher bits are uniform across the slice, so bucket b's key is
	// the shared high part plus the digit.
	base := keys[0] &^ mask
	n := f.n
	dk, dv := f.keys, f.vals
	for b := 0; b < nb; b++ {
		if st.count[b] > 0 {
			dk[n] = base | uint32(b)
			dv[n] = acc[b]
			n++
		}
	}
	f.n = n
}

// fusePairs is the wide-layout emit state; see fuse32.
type fusePairs struct {
	ps []Pair
	n  int64
}

func (f *fusePairs) emitOne(p Pair) {
	f.ps[f.n] = p
	f.n++
}

func (f *fusePairs) foldUniform(lo, hi int64) {
	p := f.ps[lo]
	for i := lo + 1; i < hi; i++ {
		p.Val += f.ps[i].Val
	}
	f.emitOne(p)
}

func (f *fusePairs) insertionFold(lo, hi int64) {
	ps := f.ps
	base := f.n
	out := base
	for i := lo; i < hi; i++ {
		p := ps[i]
		j := out
		for j > base && ps[j-1].Key > p.Key {
			j--
		}
		if j > base && ps[j-1].Key == p.Key {
			ps[j-1].Val += p.Val
			continue
		}
		for m := out; m > j; m-- {
			ps[m] = ps[m-1]
		}
		ps[j] = p
		out++
	}
	f.n = out
}

// SortPairsFused is the wide-layout counterpart of SortKeys32Fused: sorts
// ps by Key, folds equal keys with +, compacts into ps[:n] and returns n.
// The prefix is bit-identical to SortPairsInPlace followed by a two-pointer
// compress.
func SortPairsFused(ps []Pair) int64 {
	if len(ps) == 0 {
		return 0
	}
	var or uint64
	for i := range ps {
		or |= ps[i].Key
	}
	f := fusePairs{ps: ps}
	if or == 0 {
		f.foldUniform(0, int64(len(ps)))
		return f.n
	}
	f.sortAtByte(0, int64(len(ps)), topByte(or))
	return f.n
}

// sortAtByte mirrors sortPairsAtByte's recursion, emitting sorted leaves.
func (f *fusePairs) sortAtByte(lo, hi int64, byteIdx int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n == 1 {
		f.emitOne(f.ps[lo])
		return
	}
	if n <= insertionCutoff {
		f.insertionFold(lo, hi)
		return
	}
	ps := f.ps[lo:hi]
	shift := uint(byteIdx * 8)
	var st flagStatePairs
	for i := range ps {
		st.count[(ps[i].Key>>shift)&0xff]++
	}
	sum := 0
	for b := 0; b < 256; b++ {
		st.start[b] = sum
		sum += st.count[b]
		st.end[b] = sum
		if st.count[b] > 0 {
			st.nonEmpty++
		}
	}
	if st.nonEmpty == 1 {
		if byteIdx > 0 {
			f.sortAtByte(lo, hi, byteIdx-1)
			return
		}
		// Every byte uniform: all keys equal.
		f.foldUniform(lo, hi)
		return
	}
	if byteIdx == 0 {
		f.accumulateLastByte(ps, &st, shift)
		return
	}
	// Splitting pass: the unfused swap permute, verbatim, then the buckets.
	var cursor [256]int
	copy(cursor[:], st.start[:])
	for b := 0; b < 256; b++ {
		for cursor[b] < st.end[b] {
			p := ps[cursor[b]]
			home := int((p.Key >> shift) & 0xff)
			if home == b {
				cursor[b]++
				continue
			}
			j := cursor[home]
			ps[cursor[b]], ps[j] = ps[j], p
			cursor[home]++
		}
	}
	dst := f.ps
	out := f.n
	for b := 0; b < 256; b++ {
		c := st.count[b]
		if c == 0 {
			continue
		}
		s := lo + int64(st.start[b])
		if c == 1 {
			dst[out] = dst[s]
			out++
		} else {
			f.n = out
			f.sortAtByte(s, lo+int64(st.end[b]), byteIdx-1)
			out = f.n
		}
	}
	f.n = out
}

// accumulateLastByte is the wide layout's fused final pass: the read-only
// simulation of flagPassPairs' swap-permute fill sequence at byte 0 (the
// element displaced from a scan slot rides in a register instead of being
// swapped back), accumulating per-bucket value sums in slot-fill order and
// emitting one tuple per non-empty bucket.
func (f *fusePairs) accumulateLastByte(ps []Pair, st *flagStatePairs, shift uint) {
	var acc [256]float64
	var cursor [256]int
	copy(cursor[:], st.start[:])
	for b := 0; b < 256; b++ {
		i := cursor[b]
		be := st.end[b]
		for i < be {
			p := ps[i]
			home := int((p.Key >> shift) & 0xff)
			if home == b {
				acc[b] += p.Val
				i++
				continue
			}
			// The swap permute would keep exchanging the occupant of slot i
			// until one belongs to b; ride the chain in registers instead.
			for {
				j := cursor[home]
				cursor[home] = j + 1
				next := ps[j]
				acc[home] += p.Val
				p = next
				home = int(p.Key >> shift & 0xff)
				if home == b {
					acc[b] += p.Val
					i++
					break
				}
			}
		}
		cursor[b] = i
	}
	// byteIdx is 0 here, so shift is 0 and the digit is the low byte; all
	// higher bytes are uniform across the slice.
	high := ps[0].Key &^ 0xff
	n := f.n
	dst := f.ps
	for b := 0; b < 256; b++ {
		if st.count[b] > 0 {
			dst[n] = Pair{Key: high | uint64(b), Val: acc[b]}
			n++
		}
	}
	f.n = n
}
