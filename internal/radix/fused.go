package radix

// Fused sort→compress: the sorter's recursion already visits buckets in
// ascending key order, and a bucket that reaches its last digit (or the
// insertion cutoff) is fully determined the moment the recursion leaves it.
// The fused variants fold runs of equal keys right there and compact the
// aggregated (key, Σval) tuples into the prefix of the same slice, so the
// separate compress pass — a full re-read of the sorted buffer plus an
// nnz-sized write — never runs.
//
// The engine's hot path is the ...FusedScratch stable implementations in
// stable32.go / stablepairs.go / stablepattern.go. Because those sorts are
// stable, every fold accumulates values in arrival (expand) order — the
// same left-to-right chain sort-then-compress produces over the stable-
// sorted array — so fused ≡ unfused ≡ split-across-workers holds bit-for-
// bit by construction, for any digit plan and any thread count.
//
// The allocating wrappers below keep the original one-call API for tests
// and external callers.

// Numeric is the value constraint of the fused fold: the engine's semiring
// fast paths fold with +, so the fused sorter needs addition — float64 (the
// squeezed layout), float32 and int32 (the narrow layout).
type Numeric interface {
	~float32 | ~float64 | ~int32
}

// SortKeys32Fused sorts keys/vals and folds equal keys in one pass,
// compacting the aggregated tuples into the slice prefix and returning
// their count. Bit-identical to SortKeys32 followed by a two-pointer
// compress.
func SortKeys32Fused[V Numeric](keys []uint32, vals []V) int64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	auxK := make([]uint32, n)
	auxV := make([]V, n)
	return SortKeys32FusedScratch(keys, vals, auxK, auxV, false)
}

// SortPairsFused is SortKeys32Fused for the wide 16-byte layout.
func SortPairsFused(ps []Pair) int64 {
	n := len(ps)
	if n == 0 {
		return 0
	}
	aux := make([]Pair, n)
	return SortPairsFusedScratch(ps, aux, false)
}
