package radix

// Radix-local scalar loops for the pair kernels. The batched forms in
// internal/simd work on []simd.Pair; converting []Pair costs one unsafe
// type pun, so the conversion (and with it all unsafe in this package)
// lives in pairskernel_batch.go behind !purego. These references are the
// purego path and the batch=false oracle.

func orPairsRef(ps []Pair) uint64 {
	var or uint64
	for i := range ps {
		or |= ps[i].Key
	}
	return or
}

func histPairsRef(ps []Pair, shift uint, count *[maxBuckets]int64) {
	for i := range ps {
		count[(ps[i].Key>>shift)&0xff]++
	}
}

func scatterPairsRef(src []Pair, dst []Pair, shift uint, cursor *[maxBuckets]int64) {
	for i := range src {
		b := (src[i].Key >> shift) & 0xff
		c := cursor[b]
		dst[c] = src[i]
		cursor[b] = c + 1
	}
}

func accumPairsRef(ps []Pair, acc *[maxBuckets]float64) {
	for i := range ps {
		acc[ps[i].Key&0xff] += ps[i].Val
	}
}

func expandPairsRef(dst []Pair, localRow uint64, cols []int32, bVals []float64, av float64) {
	for i := range dst {
		dst[i] = Pair{Key: localRow | uint64(cols[i]), Val: av * bVals[i]}
	}
}
