package radix

import (
	"math/rand"
	"sort"
	"testing"
)

func randKeys32(n int, mask uint32, seed int64) ([]uint32, []float64) {
	r := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = r.Uint32() & mask
		vals[i] = float64(keys[i]) + 0.25 // value derivable from key
	}
	return keys, vals
}

func TestSortKeys32MatchesStdlib(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mask uint32
	}{
		{0, 0xffffffff}, {1, 0xffffffff}, {2, 0xffffffff},
		{31, 0xffffffff}, {32, 0xffffffff}, {33, 0xffffffff},
		{1000, 0xffffffff}, {1000, 0xff}, {1000, 0xffff}, {4096, 0x3ff},
	} {
		keys, vals := randKeys32(tc.n, tc.mask, int64(tc.n)^int64(tc.mask))
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortKeys32(keys, vals)
		if !Keys32Sorted(keys) {
			t.Fatalf("n=%d mask=%x: not sorted", tc.n, tc.mask)
		}
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("n=%d mask=%x: key[%d] = %d, want %d", tc.n, tc.mask, i, keys[i], want[i])
			}
			if vals[i] != float64(keys[i])+0.25 {
				t.Fatalf("n=%d mask=%x: payload detached from key at %d", tc.n, tc.mask, i)
			}
		}
	}
}

func TestSortKeys32AllEqual(t *testing.T) {
	keys := make([]uint32, 500)
	vals := make([]float64, 500)
	for i := range keys {
		keys[i] = 0xdeadbe
		vals[i] = float64(i)
	}
	SortKeys32(keys, vals)
	for i := range vals {
		// Equal keys: the deterministic sorter must not scramble payloads
		// (every pass sees one bucket and descends without permuting).
		if vals[i] != float64(i) {
			t.Fatalf("payload %d moved under all-equal keys", i)
		}
	}
}

func TestSortKeys32MismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SortKeys32(make([]uint32, 3), make([]float64, 2))
}

// TestPartitionTop32Equivalence: partition + per-bucket SortKeys32Bits must
// produce bit-identical arrays to a single SortKeys32 call, including
// payload order under duplicate keys.
func TestPartitionTop32Equivalence(t *testing.T) {
	for _, tc := range []struct {
		n    int
		mask uint32
	}{
		{50000, 0xffffffff}, {50000, 0xffff}, {5000, 0x7},
		{5000, 0xff00}, {257, 0xffffffff}, {4096, 0x1}, {100000, 0x3fffff},
	} {
		keys, vals := randKeys32(tc.n, tc.mask, 7)
		r := rand.New(rand.NewSource(99))
		for i := range vals {
			vals[i] = r.Float64() // payloads unrelated to keys: order matters
		}
		wantK := append([]uint32(nil), keys...)
		wantV := append([]float64(nil), vals...)
		SortKeys32(wantK, wantV)

		bounds := make([]int64, MaxPartitionBuckets+1)
		nb, rest := PartitionTop32(keys, vals, bounds)
		for b := 0; b < nb; b++ {
			lo, hi := bounds[b], bounds[b+1]
			if hi-lo > 1 {
				SortKeys32Bits(keys[lo:hi], vals[lo:hi], rest)
			}
		}
		for i := range keys {
			if keys[i] != wantK[i] || vals[i] != wantV[i] {
				t.Fatalf("mask=%x: partitioned sort diverges from plain sort at %d", tc.mask, i)
			}
		}
	}
}

// TestPartitionPairsTopByteEquivalence mirrors the split-sort equivalence
// for the wide AoS layout.
func TestPartitionPairsTopByteEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, mask := range []uint64{0xffffffffffff, 0xffff, 0x3} {
		ps := make([]Pair, 5000)
		for i := range ps {
			ps[i] = Pair{Key: r.Uint64() & mask, Val: r.Float64()}
		}
		want := append([]Pair(nil), ps...)
		SortPairsInPlace(want)

		bounds, next := PartitionPairsTopByte(ps)
		if next >= 0 {
			for b := 0; b < 256; b++ {
				lo, hi := bounds[b], bounds[b+1]
				if hi-lo > 1 {
					SortPairsAtByte(ps[lo:hi], next)
				}
			}
		}
		for i := range ps {
			if ps[i] != want[i] {
				t.Fatalf("mask=%x: partitioned pair sort diverges at %d", mask, i)
			}
		}
	}
}

func TestPartitionTop32Degenerate(t *testing.T) {
	bounds := make([]int64, MaxPartitionBuckets+1)
	// All keys equal: nothing to do.
	keys := []uint32{7, 7, 7, 7}
	vals := []float64{1, 2, 3, 4}
	if nb, _ := PartitionTop32(keys, vals, bounds); nb != 0 {
		t.Fatalf("uniform keys: nbuckets = %d, want 0", nb)
	}
	// Keys within one digit: the splitting pass consumes the last digit and
	// fully sorts the slice, leaving no bucket work.
	keys = []uint32{3, 1, 2, 0}
	vals = []float64{3, 1, 2, 0}
	if nb, _ := PartitionTop32(keys, vals, bounds); nb != 0 {
		t.Fatalf("single-digit split: nbuckets = %d, want 0", nb)
	}
	if !Keys32Sorted(keys) {
		t.Fatalf("single-digit split left keys unsorted: %v", keys)
	}
	// Short and empty slices.
	if nb, _ := PartitionTop32[float64](nil, nil, bounds); nb != 0 {
		t.Fatal("nil slice: want 0 buckets")
	}
	if nb, _ := PartitionTop32([]uint32{5}, []float64{5}, bounds); nb != 0 {
		t.Fatal("one element: want 0 buckets")
	}
}

func TestGrowUint32(t *testing.T) {
	var buf []uint32
	s := GrowUint32(&buf, 100)
	if len(s) != 100 {
		t.Fatalf("len %d", len(s))
	}
	p := &s[0]
	s2 := GrowUint32(&buf, 50)
	if len(s2) != 50 || &s2[0] != p {
		t.Fatal("shrink reallocated")
	}
	s3 := GrowUint32(&buf, 200)
	if len(s3) != 200 {
		t.Fatal("grow failed")
	}
}

func BenchmarkSortKeys32_64K(b *testing.B) {
	const n = 64 << 10
	keys, vals := randKeys32(n, 0x3fffff, 5) // squeezed 22-bit keys
	work := make([]uint32, n)
	workV := make([]float64, n)
	b.SetBytes(n * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, keys)
		copy(workV, vals)
		SortKeys32(work, workV)
	}
}
