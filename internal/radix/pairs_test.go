package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortPairsInPlaceMatchesStdlib(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 500, 20000} {
		for _, maxKey := range []uint64{2, 256, 1 << 20, 1 << 40, ^uint64(0)} {
			ps := make([]Pair, n)
			for i := range ps {
				ps[i] = Pair{Key: r.Uint64() % maxKey, Val: r.Float64()}
			}
			want := append([]Pair(nil), ps...)
			sort.SliceStable(want, func(a, b int) bool { return want[a].Key < want[b].Key })
			SortPairsInPlace(ps)
			if !PairsSorted(ps) {
				t.Fatalf("n=%d maxKey=%d: not sorted", n, maxKey)
			}
			for i := range ps {
				if ps[i].Key != want[i].Key {
					t.Fatalf("n=%d maxKey=%d: key[%d] = %d, want %d", n, maxKey, i, ps[i].Key, want[i].Key)
				}
			}
		}
	}
}

func TestSortPairsInPlacePreservesPayloadMultiset(t *testing.T) {
	f := func(keys []uint64) bool {
		ps := make([]Pair, len(keys))
		sum := 0.0
		for i, k := range keys {
			ps[i] = Pair{Key: k % 1024, Val: float64(i)}
			sum += float64(i)
		}
		SortPairsInPlace(ps)
		var got float64
		seen := make(map[float64]bool)
		for _, p := range ps {
			if seen[p.Val] {
				return false // payload duplicated
			}
			seen[p.Val] = true
			got += p.Val
		}
		return got == sum && PairsSorted(ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsInPlaceAllEqual(t *testing.T) {
	ps := make([]Pair, 100)
	for i := range ps {
		ps[i] = Pair{Key: 42, Val: float64(i)}
	}
	SortPairsInPlace(ps)
	if !PairsSorted(ps) {
		t.Fatal("equal keys broke sorting")
	}
}

func BenchmarkSortPairsInPlace64K(b *testing.B) {
	// One L2-sized bin: 64K tuples with 30-bit (squeezed) keys, the PB sort
	// phase's unit of work.
	r := rand.New(rand.NewSource(1))
	src := make([]Pair, 1<<16)
	for i := range src {
		src[i] = Pair{Key: r.Uint64() & (1<<30 - 1), Val: r.Float64()}
	}
	work := make([]Pair, len(src))
	b.SetBytes(int64(len(src) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, src)
		SortPairsInPlace(work)
	}
}

func BenchmarkSortPairsParallelArrays64K(b *testing.B) {
	// The same workload through the parallel-array variant, quantifying the
	// packed layout's advantage (ablation for the tuple-layout choice).
	r := rand.New(rand.NewSource(1))
	srcK := make([]uint64, 1<<16)
	srcV := make([]float64, 1<<16)
	for i := range srcK {
		srcK[i] = r.Uint64() & (1<<30 - 1)
		srcV[i] = r.Float64()
	}
	wk := make([]uint64, len(srcK))
	wv := make([]float64, len(srcV))
	b.SetBytes(int64(len(srcK) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(wk, srcK)
		copy(wv, srcV)
		SortPairs(wk, wv)
	}
}
