package radix

// Pair is one expanded tuple: a packed (rowid, colid) key and the multiplied
// value. Storing key and payload adjacently matches the paper's COO tuple
// layout and halves the cache lines each sort swap touches compared to
// parallel arrays.
type Pair struct {
	Key uint64
	Val float64
}

// SortPairsInPlace sorts ps by Key ascending with the same in-place
// American-flag byte radix as SortPairs, skipping all-zero high bytes
// (the key-squeezing optimization).
func SortPairsInPlace(ps []Pair) {
	if len(ps) < 2 {
		return
	}
	var or uint64
	for i := range ps {
		or |= ps[i].Key
	}
	if or == 0 {
		return
	}
	sortPairsAtByte(ps, topByte(or))
}

// flagStatePairs is one byte pass's bucket bookkeeping.
type flagStatePairs struct {
	count, start, end [256]int
	nonEmpty          int
}

// flagPassPairs runs one complete American-flag byte pass — counting,
// prefix, and (unless the byte is uniform) the swap permute. It is THE
// pass: both the recursive sorter and PartitionPairsTopByte go through it,
// so a bin split across workers sorts into exactly the bytes a whole-bin
// sort produces.
func flagPassPairs(ps []Pair, byteIdx int, st *flagStatePairs) {
	shift := uint(byteIdx * 8)
	for i := range ps {
		st.count[(ps[i].Key>>shift)&0xff]++
	}
	sum := 0
	for b := 0; b < 256; b++ {
		st.start[b] = sum
		sum += st.count[b]
		st.end[b] = sum
		if st.count[b] > 0 {
			st.nonEmpty++
		}
	}
	if st.nonEmpty == 1 {
		return
	}
	var cursor [256]int
	copy(cursor[:], st.start[:])
	for b := 0; b < 256; b++ {
		for cursor[b] < st.end[b] {
			p := ps[cursor[b]]
			home := int((p.Key >> shift) & 0xff)
			if home == b {
				cursor[b]++
				continue
			}
			j := cursor[home]
			ps[cursor[b]], ps[j] = ps[j], p
			cursor[home]++
		}
	}
}

func sortPairsAtByte(ps []Pair, byteIdx int) {
	n := len(ps)
	if n < 2 {
		return
	}
	if n <= insertionCutoff {
		insertionSortPairs(ps)
		return
	}
	var st flagStatePairs
	flagPassPairs(ps, byteIdx, &st)
	if st.nonEmpty == 1 {
		if byteIdx > 0 {
			sortPairsAtByte(ps, byteIdx-1)
		}
		return
	}
	if byteIdx == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if st.count[b] > 1 {
			sortPairsAtByte(ps[st.start[b]:st.end[b]], byteIdx-1)
		}
	}
}

func insertionSortPairs(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && ps[j].Key > p.Key {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// SortPairsAtByte performs one American-flag pass on the given byte position
// and recurses downward — the wide-layout counterpart of the squeezed
// SortKeys32Bits: callers that partitioned a slice with
// PartitionPairsTopByte finish each bucket here, and the combined result is
// bit-identical to SortPairsInPlace.
func SortPairsAtByte(ps []Pair, byteIdx int) { sortPairsAtByte(ps, byteIdx) }

// PartitionPairsTopByte is the wide-layout counterpart of the squeezed
// PartitionTop32: the first splitting American-flag pass of
// SortPairsInPlace (via flagPassPairs, the sorter's own pass), returning
// bucket boundaries and the byte index the buckets still need sorting at
// (negative: nothing left to sort).
func PartitionPairsTopByte(ps []Pair) (bounds [257]int, nextByte int) {
	if len(ps) < 2 {
		return bounds, -1
	}
	var or uint64
	for i := range ps {
		or |= ps[i].Key
	}
	if or == 0 {
		return bounds, -1
	}
	byteIdx := topByte(or)
	for {
		var st flagStatePairs
		flagPassPairs(ps, byteIdx, &st)
		if st.nonEmpty == 1 {
			if byteIdx == 0 {
				return bounds, -1 // every key identical
			}
			byteIdx--
			continue
		}
		copy(bounds[:256], st.start[:])
		bounds[256] = len(ps)
		return bounds, byteIdx - 1
	}
}

// PairsSorted reports whether ps is non-decreasing by Key.
func PairsSorted(ps []Pair) bool {
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Key > ps[i].Key {
			return false
		}
	}
	return true
}

// GrowPairs returns (*buf)[:n], reallocating only when capacity is short;
// contents are unspecified. It is the Pair counterpart of internal/matrix's
// grow-only helpers, shared by the pooled workspaces of internal/core and
// internal/baseline.
func GrowPairs(buf *[]Pair, n int64) []Pair {
	if int64(cap(*buf)) < n {
		*buf = make([]Pair, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
