package radix

// Pair is one expanded tuple: a packed (rowid, colid) key and the multiplied
// value. Storing key and payload adjacently matches the paper's COO tuple
// layout and halves the cache lines each sort swap touches compared to
// parallel arrays.
type Pair struct {
	Key uint64
	Val float64
}

// SortPairsInPlace sorts ps by Key ascending with the same in-place
// American-flag byte radix as SortPairs, skipping all-zero high bytes
// (the key-squeezing optimization).
func SortPairsInPlace(ps []Pair) {
	if len(ps) < 2 {
		return
	}
	var or uint64
	for i := range ps {
		or |= ps[i].Key
	}
	if or == 0 {
		return
	}
	sortPairsAtByte(ps, topByte(or))
}

func sortPairsAtByte(ps []Pair, byteIdx int) {
	n := len(ps)
	if n < 2 {
		return
	}
	if n <= insertionCutoff {
		insertionSortPairs(ps)
		return
	}
	shift := uint(byteIdx * 8)

	var count [256]int
	for i := range ps {
		count[(ps[i].Key>>shift)&0xff]++
	}

	var start, end [256]int
	sum := 0
	nonEmpty := 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += count[b]
		end[b] = sum
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		if byteIdx > 0 {
			sortPairsAtByte(ps, byteIdx-1)
		}
		return
	}

	var cursor [256]int
	copy(cursor[:], start[:])
	for b := 0; b < 256; b++ {
		for cursor[b] < end[b] {
			p := ps[cursor[b]]
			home := int((p.Key >> shift) & 0xff)
			if home == b {
				cursor[b]++
				continue
			}
			j := cursor[home]
			ps[cursor[b]], ps[j] = ps[j], p
			cursor[home]++
		}
	}

	if byteIdx == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if count[b] > 1 {
			sortPairsAtByte(ps[start[b]:end[b]], byteIdx-1)
		}
	}
}

func insertionSortPairs(ps []Pair) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for j >= 0 && ps[j].Key > p.Key {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = p
	}
}

// PairsSorted reports whether ps is non-decreasing by Key.
func PairsSorted(ps []Pair) bool {
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Key > ps[i].Key {
			return false
		}
	}
	return true
}

// GrowPairs returns (*buf)[:n], reallocating only when capacity is short;
// contents are unspecified. It is the Pair counterpart of internal/matrix's
// grow-only helpers, shared by the pooled workspaces of internal/core and
// internal/baseline.
func GrowPairs(buf *[]Pair, n int64) []Pair {
	if int64(cap(*buf)) < n {
		*buf = make([]Pair, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
