//go:build purego

package radix

// purego: the pair kernels are always the scalar references and this
// package compiles without unsafe.

func orPairs(ps []Pair, _ bool) uint64 { return orPairsRef(ps) }

func histPairs(ps []Pair, shift uint, count *[maxBuckets]int64, _ bool) {
	histPairsRef(ps, shift, count)
}

func scatterPairs(src []Pair, dst []Pair, shift uint, cursor *[maxBuckets]int64, _ bool) {
	scatterPairsRef(src, dst, shift, cursor)
}

func accumPairs(ps []Pair, acc *[maxBuckets]float64, _ bool) {
	accumPairsRef(ps, acc)
}

// ExpandPairs writes the wide outer-product tuples
// {localRow|cols[i], av*bVals[i]} into dst; see pairskernel_batch.go.
func ExpandPairs(dst []Pair, localRow uint64, cols []int32, bVals []float64, av float64, _ bool) {
	expandPairsRef(dst, localRow, cols, bVals, av)
}
