package radix

import (
	"math/bits"

	"pbspgemm/internal/simd"
)

// Stable out-of-place American-flag radix for the key32 planes (squeezed,
// narrow and — via the key-only variants in stablepattern.go — pattern).
//
// Unlike the in-place cycle-following permute this ping-pongs each splitting
// pass between the tuple buffer and a caller-provided scratch plane with a
// STABLE counting scatter: equal keys keep their arrival (expand) order at
// every level. Stability is what makes the fused and unfused paths, the
// split-bin parallel path, and every thread count produce bit-identical
// arrays by construction — any stable sort of the same bin yields the same
// tuple sequence, and every fold over an equal-key group is the same
// left-to-right chain in arrival order.
//
// The counting, scatter and fold inner loops dispatch to internal/simd:
// batch=true selects the unsafe-batched kernels, batch=false the scalar
// references (the oracle). Both produce bit-identical results; the engine
// picks once per run (Options.DisableBatch) and reports it on Stats.Kernel.

// dispatch helpers: one branch per pass, hoisted out of the inner loops.

func or32(keys []uint32, batch bool) uint32 {
	if batch {
		return simd.OrU32(keys)
	}
	return simd.OrU32Scalar(keys)
}

func hist32(keys []uint32, shift uint, mask uint32, count *[maxBuckets]int64, batch bool) {
	if batch {
		simd.HistU32(keys, shift, mask, count)
	} else {
		simd.HistU32Scalar(keys, shift, mask, count)
	}
}

func scatter32[V any](srcK []uint32, srcV []V, dstK []uint32, dstV []V, shift uint, mask uint32, cursor *[maxBuckets]int64, batch bool) {
	if batch {
		simd.ScatterKV(srcK, srcV, dstK, dstV, shift, mask, cursor)
	} else {
		simd.ScatterKVScalar(srcK, srcV, dstK, dstV, shift, mask, cursor)
	}
}

func accum32[V Numeric](keys []uint32, vals []V, mask uint32, acc *[maxBuckets]V, batch bool) {
	if batch {
		simd.AccumKV(keys, vals, mask, acc)
	} else {
		simd.AccumKVScalar(keys, vals, mask, acc)
	}
}

// SortKeys32Scratch stably sorts keys and carries vals along. auxK/auxV are
// scratch planes of at least len(keys); their contents are clobbered.
func SortKeys32Scratch[V any](keys []uint32, vals []V, auxK []uint32, auxV []V, batch bool) {
	n := len(keys)
	if n < 2 {
		return
	}
	or := or32(keys, batch)
	if or == 0 {
		return // every key zero: already sorted
	}
	stableSort32(keys, vals, auxK[:n], auxV[:n], bits.Len32(or), true, batch)
}

// SortKeys32BitsScratch is SortKeys32Scratch for a bucket whose keys are
// known to agree on all bits at or above hiBits (a PartitionTop32Scratch
// bucket continued on another worker's scratch).
func SortKeys32BitsScratch[V any](keys []uint32, vals []V, auxK []uint32, auxV []V, hiBits int, batch bool) {
	n := len(keys)
	if n < 2 || hiBits <= 0 {
		return
	}
	stableSort32(keys, vals, auxK[:n], auxV[:n], hiBits, true, batch)
}

// stableSort32 sorts the segment whose live data is in srcK/srcV, using
// altK/altV as the other ping-pong plane. inOrig records which physical
// plane src is: true means src is the caller-visible buffer, so the sorted
// result must end up there; each splitting pass flips it. Digits follow
// digitWidth exactly as before.
func stableSort32[V any](srcK []uint32, srcV []V, altK []uint32, altV []V, hiBits int, inOrig, batch bool) {
	n := len(srcK)
	for {
		if n <= 1 {
			if n == 1 && !inOrig {
				altK[0], altV[0] = srcK[0], srcV[0]
			}
			return
		}
		if hiBits <= 0 {
			// Uniform keys: arrival order is the sorted order.
			if !inOrig {
				copy(altK, srcK)
				copy(altV, srcV)
			}
			return
		}
		if n <= insertionCutoff {
			if inOrig {
				insertionSortKeys32(srcK, srcV)
			} else {
				insertionInto32(srcK, srcV, altK, altV)
			}
			return
		}
		w := digitWidth(n, hiBits)
		shift := uint(hiBits - w)
		nb := 1 << w
		mask := uint32(nb - 1)
		var count [maxBuckets]int64
		hist32(srcK, shift, mask, &count, batch)
		nonEmpty := 0
		var start [maxBuckets]int64
		sum := int64(0)
		for b := 0; b < nb; b++ {
			start[b] = sum
			sum += count[b]
			if count[b] > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 1 {
			hiBits = int(shift)
			continue // digit uniform: same data, next digit
		}
		cursor := start
		scatter32(srcK, srcV, altK, altV, shift, mask, &cursor, batch)
		if shift == 0 {
			// Last digit: alt is fully sorted (stable within buckets).
			if inOrig {
				copy(srcK, altK)
				copy(srcV, altV)
			}
			return
		}
		for b := 0; b < nb; b++ {
			c := count[b]
			if c == 0 {
				continue
			}
			s := start[b]
			switch c {
			case 1:
				if inOrig {
					srcK[s], srcV[s] = altK[s], altV[s]
				}
			case 2:
				s2 := s + 1
				if altK[s] > altK[s2] {
					if inOrig {
						srcK[s], srcV[s] = altK[s2], altV[s2]
						srcK[s2], srcV[s2] = altK[s], altV[s]
					} else {
						altK[s], altK[s2] = altK[s2], altK[s]
						altV[s], altV[s2] = altV[s2], altV[s]
					}
				} else if inOrig {
					srcK[s], srcV[s] = altK[s], altV[s]
					srcK[s2], srcV[s2] = altK[s2], altV[s2]
				}
			default:
				stableSort32(altK[s:s+c], altV[s:s+c], srcK[s:s+c], srcV[s:s+c], int(shift), !inOrig, batch)
			}
		}
		return
	}
}

// insertionInto32 stably insertion-sorts src into dst (dst is the plane the
// result must land in; src is dead afterwards). Shifting only on strict
// key inequality keeps equal keys in arrival order.
func insertionInto32[V any](srcK []uint32, srcV []V, dstK []uint32, dstV []V) {
	for i := 0; i < len(srcK); i++ {
		k, v := srcK[i], srcV[i]
		j := i
		for j > 0 && dstK[j-1] > k {
			dstK[j] = dstK[j-1]
			dstV[j] = dstV[j-1]
			j--
		}
		dstK[j] = k
		dstV[j] = v
	}
}

// PartitionTop32Scratch runs the sort's first splitting pass over the whole
// bin as one stable scatter (through aux, copied back so bucket tasks can
// continue on their own workers' scratch), fills bounds with the bucket
// starts and returns (nbuckets, remaining bits). A zero nbuckets means the
// keys ended up fully sorted (trivially, or because the single splitting
// digit was the last one) and no bucket tasks are needed.
func PartitionTop32Scratch[V any](keys []uint32, vals []V, auxK []uint32, auxV []V, bounds []int64, batch bool) (nbuckets, restBits int) {
	n := len(keys)
	if n < 2 {
		return 0, 0
	}
	or := or32(keys, batch)
	if or == 0 {
		return 0, 0
	}
	hiBits := bits.Len32(or)
	auxK, auxV = auxK[:n], auxV[:n]
	for {
		if hiBits <= 0 {
			return 0, 0
		}
		w := digitWidth(n, hiBits)
		shift := uint(hiBits - w)
		nb := 1 << w
		mask := uint32(nb - 1)
		var count [maxBuckets]int64
		hist32(keys, shift, mask, &count, batch)
		nonEmpty := 0
		var start [maxBuckets]int64
		sum := int64(0)
		for b := 0; b < nb; b++ {
			start[b] = sum
			sum += count[b]
			if count[b] > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 1 {
			hiBits = int(shift)
			continue
		}
		cursor := start
		scatter32(keys, vals, auxK, auxV, shift, mask, &cursor, batch)
		copy(keys, auxK)
		copy(vals, auxV)
		for b := 0; b < nb; b++ {
			bounds[b] = start[b]
		}
		bounds[nb] = int64(n)
		if shift == 0 {
			return 0, 0 // buckets are uniform keys: fully sorted
		}
		return nb, int(shift)
	}
}

// fuse32S is the stable fused sort+fold: tuples are emitted into the prefix
// of the original planes as each leaf resolves, folding equal keys with one
// sequential add chain in arrival order. The emit cursor f.n never passes
// the start of the segment currently being resolved, so emitting into the
// original planes is safe even while they double as a ping-pong side.
type fuse32S[V Numeric] struct {
	keys  []uint32
	vals  []V
	n     int64
	batch bool
}

// SortKeys32FusedScratch stably sorts and folds keys/vals in one pass,
// returning the folded tuple count. auxK/auxV are scratch planes of at
// least len(keys); their contents are clobbered.
func SortKeys32FusedScratch[V Numeric](keys []uint32, vals []V, auxK []uint32, auxV []V, batch bool) int64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	or := or32(keys, batch)
	if or == 0 {
		v := vals[0]
		for i := 1; i < n; i++ {
			v += vals[i]
		}
		vals[0] = v
		return 1
	}
	f := fuse32S[V]{keys: keys, vals: vals, batch: batch}
	f.sort(keys, vals, auxK[:n], auxV[:n], bits.Len32(or))
	return f.n
}

func (f *fuse32S[V]) emitOne(k uint32, v V) {
	f.keys[f.n] = k
	f.vals[f.n] = v
	f.n++
}

func (f *fuse32S[V]) sort(srcK []uint32, srcV []V, altK []uint32, altV []V, hiBits int) {
	n := len(srcK)
	if n == 0 {
		return
	}
	if n == 1 {
		f.emitOne(srcK[0], srcV[0])
		return
	}
	if hiBits <= 0 {
		// Uniform keys: fold the whole segment, arrival order.
		k := srcK[0]
		v := srcV[0]
		for i := 1; i < n; i++ {
			v += srcV[i]
		}
		f.emitOne(k, v)
		return
	}
	if n <= insertionCutoff {
		f.insertionFold(srcK, srcV)
		return
	}
	w := digitWidth(n, hiBits)
	shift := uint(hiBits - w)
	nb := 1 << w
	mask := uint32(nb - 1)
	var count [maxBuckets]int64
	hist32(srcK, shift, mask, &count, f.batch)
	nonEmpty := 0
	var start [maxBuckets]int64
	sum := int64(0)
	for b := 0; b < nb; b++ {
		start[b] = sum
		sum += count[b]
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		f.sort(srcK, srcV, altK, altV, int(shift))
		return
	}
	if shift == 0 {
		// Last digit: one sequential accumulate in arrival order, then
		// emit per occupied bucket. Reads all of src before any emit.
		var acc [maxBuckets]V
		accum32(srcK, srcV, mask, &acc, f.batch)
		base := srcK[0] &^ mask
		out := f.n
		for b := 0; b < nb; b++ {
			if count[b] > 0 {
				f.keys[out] = base | uint32(b)
				f.vals[out] = acc[b]
				out++
			}
		}
		f.n = out
		return
	}
	cursor := start
	scatter32(srcK, srcV, altK, altV, shift, mask, &cursor, f.batch)
	for b := 0; b < nb; b++ {
		c := count[b]
		if c == 0 {
			continue
		}
		s := start[b]
		switch c {
		case 1:
			f.emitOne(altK[s], altV[s])
		case 2:
			k0, v0 := altK[s], altV[s]
			k1, v1 := altK[s+1], altV[s+1]
			switch {
			case k0 == k1:
				f.emitOne(k0, v0+v1)
			case k0 < k1:
				f.emitOne(k0, v0)
				f.emitOne(k1, v1)
			default:
				f.emitOne(k1, v1)
				f.emitOne(k0, v0)
			}
		default:
			f.sort(altK[s:s+c], altV[s:s+c], srcK[s:s+c], srcV[s:s+c], int(shift))
		}
	}
}

// insertionFold sorts a small segment by stable insertion directly into the
// emit prefix, folding on key equality. Writes never pass the segment's own
// read cursor, so src overlapping the emit region is safe.
func (f *fuse32S[V]) insertionFold(srcK []uint32, srcV []V) {
	keys, vals := f.keys, f.vals
	base := f.n
	out := base
	for i := 0; i < len(srcK); i++ {
		k := srcK[i]
		v := srcV[i]
		j := out
		for j > base && keys[j-1] > k {
			j--
		}
		if j > base && keys[j-1] == k {
			vals[j-1] += v
			continue
		}
		for m := out; m > j; m-- {
			keys[m] = keys[m-1]
			vals[m] = vals[m-1]
		}
		keys[j] = k
		vals[j] = v
		out++
	}
	f.n = out
}
