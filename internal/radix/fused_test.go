package radix

import (
	"math/rand"
	"testing"
)

// compressRef is the reference two-pointer compress the fused sorts must
// reproduce bit for bit: fold equal keys left to right over sorted input.
func compressRef(keys []uint32, vals []float64) ([]uint32, []float64) {
	if len(keys) == 0 {
		return nil, nil
	}
	outK := []uint32{keys[0]}
	outV := []float64{vals[0]}
	for i := 1; i < len(keys); i++ {
		if keys[i] == outK[len(outK)-1] {
			outV[len(outV)-1] += vals[i]
			continue
		}
		outK = append(outK, keys[i])
		outV = append(outV, vals[i])
	}
	return outK, outV
}

// fusedCase generates one random (keys, vals) slice with heavy duplication.
func fusedCase(r *rand.Rand, n int, keyRange uint32) ([]uint32, []float64) {
	keys := make([]uint32, n)
	vals := make([]float64, n)
	for i := range keys {
		if keyRange > 0 {
			keys[i] = uint32(r.Int63()) % keyRange
		}
		vals[i] = r.NormFloat64()
	}
	return keys, vals
}

// TestSortKeys32FusedMatchesSortThenCompress: the fused sort's prefix must be
// bit-identical (values included — same fold order) to SortKeys32 followed by
// the reference compress, across sizes straddling the insertion cutoff and
// key ranges from all-duplicates to all-distinct.
func TestSortKeys32FusedMatchesSortThenCompress(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 31, 32, 33, 100, 1000, 20000} {
		for _, kr := range []uint32{0, 1, 2, 7, 100, 1 << 10, 1 << 22, 0xffffffff} {
			keys, vals := fusedCase(r, n, kr)
			refK := append([]uint32(nil), keys...)
			refV := append([]float64(nil), vals...)
			SortKeys32(refK, refV)
			wantK, wantV := compressRef(refK, refV)

			got := SortKeys32Fused(keys, vals)
			if got != int64(len(wantK)) {
				t.Fatalf("n=%d kr=%d: fused len %d, want %d", n, kr, got, len(wantK))
			}
			for i := int64(0); i < got; i++ {
				if keys[i] != wantK[i] || vals[i] != wantV[i] {
					t.Fatalf("n=%d kr=%d: tuple %d = (%d,%v), want (%d,%v)",
						n, kr, i, keys[i], vals[i], wantK[i], wantV[i])
				}
			}
		}
	}
}

// TestSortPairsFusedMatchesSortThenCompress is the wide-layout mirror.
func TestSortPairsFusedMatchesSortThenCompress(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 3, 31, 32, 33, 100, 1000, 20000} {
		for _, kr := range []uint64{0, 1, 2, 7, 100, 1 << 10, 1 << 22, 1 << 40} {
			ps := make([]Pair, n)
			for i := range ps {
				var k uint64
				if kr > 0 {
					k = uint64(r.Int63()) % kr
				}
				ps[i] = Pair{Key: k, Val: r.NormFloat64()}
			}
			ref := append([]Pair(nil), ps...)
			// The fused fold order is the stable sort's order (arrival
			// order within equal keys), so the reference is the stable
			// unfused sort, not the legacy in-place one.
			SortPairsStable(ref, make([]Pair, len(ref)), false)
			var want []Pair
			for _, p := range ref {
				if len(want) > 0 && want[len(want)-1].Key == p.Key {
					want[len(want)-1].Val += p.Val
					continue
				}
				want = append(want, p)
			}

			got := SortPairsFused(ps)
			if got != int64(len(want)) {
				t.Fatalf("n=%d kr=%d: fused len %d, want %d", n, kr, got, len(want))
			}
			for i := int64(0); i < got; i++ {
				if ps[i] != want[i] {
					t.Fatalf("n=%d kr=%d: tuple %d = %+v, want %+v", n, kr, i, ps[i], want[i])
				}
			}
		}
	}
}

// TestFusedAfterPartition: a slice split with PartitionTop32, with each
// bucket sorted unfused and the whole slice then compress-folded, must equal
// the whole-slice fused sort — the invariant the engine's oversized-bin path
// relies on.
func TestFusedAfterPartition(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	keys, vals := fusedCase(r, 50000, 1<<18)
	splitK := append([]uint32(nil), keys...)
	splitV := append([]float64(nil), vals...)

	bounds := make([]int64, MaxPartitionBuckets+1)
	nb, rest := PartitionTop32(splitK, splitV, bounds)
	if nb == 0 {
		t.Fatal("partition produced no buckets on a 18-bit key range")
	}
	for b := 0; b < nb; b++ {
		lo, hi := bounds[b], bounds[b+1]
		SortKeys32Bits(splitK[lo:hi], splitV[lo:hi], rest)
	}
	wantK, wantV := compressRef(splitK, splitV)

	got := SortKeys32Fused(keys, vals)
	if got != int64(len(wantK)) {
		t.Fatalf("fused len %d, want %d", got, len(wantK))
	}
	for i := int64(0); i < got; i++ {
		if keys[i] != wantK[i] || vals[i] != wantV[i] {
			t.Fatalf("tuple %d: (%d,%v), want (%d,%v)", i, keys[i], vals[i], wantK[i], wantV[i])
		}
	}
}

// TestSortKeys32FusedScratchAllocs: the engine-facing fused sort must not
// touch the heap once scratch is provided, batched or scalar.
func TestSortKeys32FusedScratchAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	keys, vals := fusedCase(r, 4096, 1<<20)
	work := make([]uint32, len(keys))
	workV := make([]float64, len(vals))
	auxK := make([]uint32, len(keys))
	auxV := make([]float64, len(vals))
	for _, batch := range []bool{false, true} {
		allocs := testing.AllocsPerRun(10, func() {
			copy(work, keys)
			copy(workV, vals)
			SortKeys32FusedScratch(work, workV, auxK, auxV, batch)
		})
		if allocs != 0 {
			t.Fatalf("batch=%v: SortKeys32FusedScratch allocated %.1f times per call, want 0", batch, allocs)
		}
	}
}

func BenchmarkSortFused(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	const n = 64 << 10
	keys, vals := fusedCase(r, n, 1<<14) // heavy duplication: cf ≈ 4
	b.Run("fused", func(b *testing.B) {
		wk := make([]uint32, n)
		wv := make([]float64, n)
		b.SetBytes(n * 12)
		for i := 0; i < b.N; i++ {
			copy(wk, keys)
			copy(wv, vals)
			SortKeys32Fused(wk, wv)
		}
	})
	b.Run("sort-then-compress", func(b *testing.B) {
		wk := make([]uint32, n)
		wv := make([]float64, n)
		b.SetBytes(n * 12)
		for i := 0; i < b.N; i++ {
			copy(wk, keys)
			copy(wv, vals)
			SortKeys32(wk, wv)
			p2 := 0
			for p1 := 1; p1 < n; p1++ {
				if wk[p1] == wk[p2] {
					wv[p2] += wv[p1]
					continue
				}
				p2++
				wk[p2] = wk[p1]
				wv[p2] = wv[p1]
			}
		}
	})
}
