package radix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func refSort(keys []uint64, vals []float64) ([]uint64, []float64) {
	type pair struct {
		k uint64
		v float64
	}
	ps := make([]pair, len(keys))
	for i := range keys {
		ps[i] = pair{keys[i], vals[i]}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].k < ps[b].k })
	ok := make([]uint64, len(ps))
	ov := make([]float64, len(ps))
	for i, p := range ps {
		ok[i] = p.k
		ov[i] = p.v
	}
	return ok, ov
}

// checkSorted verifies keys are sorted and the multiset of (key,val) pairs is
// preserved. Payloads of equal keys may be permuted (radix sort at the byte
// level is not stable here), so we compare sorted value groups per key.
func checkSorted(t *testing.T, keys, origKeys []uint64, vals, origVals []float64) {
	t.Helper()
	if !IsSorted(keys) {
		t.Fatal("keys not sorted")
	}
	wantK, wantV := refSort(origKeys, origVals)
	for i := range keys {
		if keys[i] != wantK[i] {
			t.Fatalf("key[%d] = %d, want %d", i, keys[i], wantK[i])
		}
	}
	// Group-wise multiset comparison of payloads.
	i := 0
	for i < len(keys) {
		j := i
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		got := append([]float64(nil), vals[i:j]...)
		want := append([]float64(nil), wantV[i:j]...)
		sort.Float64s(got)
		sort.Float64s(want)
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("payload multiset differs for key %d", keys[i])
			}
		}
		i = j
	}
}

func TestSortPairsRandom(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 15, 16, 31, 32, 33, 100, 1000, 10000} {
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = r.Uint64()
			vals[i] = r.Float64()
		}
		ok := append([]uint64(nil), keys...)
		ov := append([]float64(nil), vals...)
		SortPairs(keys, vals)
		checkSorted(t, keys, ok, vals, ov)
	}
}

func TestSortPairsSmallKeys(t *testing.T) {
	// Keys confined to few bytes: the squeezed-key case PB-SpGEMM produces.
	r := rand.New(rand.NewSource(2))
	for _, maxKey := range []uint64{1, 255, 256, 65535, 1 << 20, 1 << 32} {
		n := 5000
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = r.Uint64() % maxKey
			vals[i] = float64(i)
		}
		ok := append([]uint64(nil), keys...)
		ov := append([]float64(nil), vals...)
		SortPairs(keys, vals)
		checkSorted(t, keys, ok, vals, ov)
	}
}

func TestSortPairsEdgeCases(t *testing.T) {
	// All equal keys.
	keys := []uint64{7, 7, 7, 7}
	vals := []float64{4, 3, 2, 1}
	SortPairs(keys, vals)
	if !IsSorted(keys) {
		t.Fatal("equal keys not sorted")
	}
	// All zeros.
	keys = make([]uint64, 100)
	vals = make([]float64, 100)
	SortPairs(keys, vals)
	if !IsSorted(keys) {
		t.Fatal("zero keys failed")
	}
	// Already sorted / reverse sorted, spanning byte boundaries.
	n := 4000
	keys = make([]uint64, n)
	vals = make([]float64, n)
	for i := range keys {
		keys[i] = uint64(n - i)
		vals[i] = float64(i)
	}
	ok := append([]uint64(nil), keys...)
	ov := append([]float64(nil), vals...)
	SortPairs(keys, vals)
	checkSorted(t, keys, ok, vals, ov)
}

func TestSortPairsMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	SortPairs(make([]uint64, 3), make([]float64, 2))
}

func TestQuickSortPairs(t *testing.T) {
	f := func(keys []uint64, seed int64) bool {
		vals := make([]float64, len(keys))
		r := rand.New(rand.NewSource(seed))
		for i := range vals {
			vals[i] = r.Float64()
		}
		ok := append([]uint64(nil), keys...)
		SortPairs(keys, vals)
		if !IsSorted(keys) {
			return false
		}
		wantK, _ := refSort(ok, vals)
		for i := range keys {
			if keys[i] != wantK[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPasses(t *testing.T) {
	cases := map[uint64]int{
		0:                0,
		1:                1,
		255:              1,
		256:              2,
		1<<16 - 1:        2,
		1 << 16:          3,
		1 << 24:          4,
		1<<32 - 1:        4,
		1 << 32:          5,
		1 << 63:          8,
		^uint64(0):       8,
		0x0000_0fff_ffff: 4,
	}
	for x, want := range cases {
		if got := Passes(x); got != want {
			t.Errorf("Passes(%#x) = %d, want %d", x, got, want)
		}
	}
}

func TestKeySqueezingNeedsFourPasses(t *testing.T) {
	// The paper's example: 1M rows, 1K bins => 10-bit local row, 20-bit col
	// => 30-bit keys => 4 radix passes instead of 8.
	localRowBits, colBits := uint(10), uint(20)
	maxKey := (uint64(1)<<localRowBits - 1) << colBits
	maxKey |= uint64(1)<<colBits - 1
	if got := Passes(maxKey); got != 4 {
		t.Fatalf("squeezed key passes = %d, want 4", got)
	}
	// Unsqueezed 64-bit (row<<32|col) with 20-bit ids needs 7 passes.
	unsqueezed := uint64(1<<20-1)<<32 | uint64(1<<20-1)
	if got := Passes(unsqueezed); got != 7 {
		t.Fatalf("unsqueezed key passes = %d, want 7", got)
	}
}
