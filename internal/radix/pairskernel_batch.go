//go:build !purego

package radix

import (
	"unsafe"

	"pbspgemm/internal/simd"
)

// radix.Pair and simd.Pair are layout-identical; asserted at compile time
// so the unsafe.Slice pun below cannot silently drift.
var _ = [1]struct{}{}[unsafe.Sizeof(Pair{})-unsafe.Sizeof(simd.Pair{})]

func simdPairs(ps []Pair) []simd.Pair {
	if len(ps) == 0 {
		return nil
	}
	return unsafe.Slice((*simd.Pair)(unsafe.Pointer(&ps[0])), len(ps))
}

func orPairs(ps []Pair, batch bool) uint64 {
	if batch {
		return simd.OrPairs(simdPairs(ps))
	}
	return orPairsRef(ps)
}

func histPairs(ps []Pair, shift uint, count *[maxBuckets]int64, batch bool) {
	if batch {
		simd.HistPairs(simdPairs(ps), shift, count)
	} else {
		histPairsRef(ps, shift, count)
	}
}

func scatterPairs(src []Pair, dst []Pair, shift uint, cursor *[maxBuckets]int64, batch bool) {
	if batch {
		simd.ScatterPairs(simdPairs(src), simdPairs(dst), shift, cursor)
	} else {
		scatterPairsRef(src, dst, shift, cursor)
	}
}

func accumPairs(ps []Pair, acc *[maxBuckets]float64, batch bool) {
	if batch {
		simd.AccumPairs(simdPairs(ps), acc)
	} else {
		accumPairsRef(ps, acc)
	}
}

// ExpandPairs writes the wide outer-product tuples
// {localRow|cols[i], av*bVals[i]} into dst (len(dst) = len(cols) = len(bVals)
// entries). The engine's expand phase calls it per chunk; exporting it here
// keeps the Pair↔simd.Pair pun inside this package.
func ExpandPairs(dst []Pair, localRow uint64, cols []int32, bVals []float64, av float64, batch bool) {
	if batch {
		simd.ExpandPairs(simdPairs(dst), localRow, cols, bVals, av)
	} else {
		expandPairsRef(dst, localRow, cols, bVals, av)
	}
}
