package radix

import (
	"math/bits"

	"pbspgemm/internal/simd"
)

// Key-only (pattern layout) twins of stable32.go. Pattern tuples have no
// value plane — the fold is deduplication — but the sorts keep the same
// stable-scatter design so every layout shares one shape and the batched
// kernels apply uniformly.

func scatterK32(srcK []uint32, dstK []uint32, shift uint, mask uint32, cursor *[maxBuckets]int64, batch bool) {
	if batch {
		simd.ScatterK(srcK, dstK, shift, mask, cursor)
	} else {
		simd.ScatterKScalar(srcK, dstK, shift, mask, cursor)
	}
}

// SortKeys32PatternScratch stably sorts the key-only plane. aux must be at
// least len(keys); its contents are clobbered.
func SortKeys32PatternScratch(keys []uint32, aux []uint32, batch bool) {
	n := len(keys)
	if n < 2 {
		return
	}
	or := or32(keys, batch)
	if or == 0 {
		return
	}
	stableSortPattern(keys, aux[:n], bits.Len32(or), true, batch)
}

// SortKeys32BitsPatternScratch continues a partitioned bucket whose keys
// agree on all bits at or above hiBits.
func SortKeys32BitsPatternScratch(keys []uint32, aux []uint32, hiBits int, batch bool) {
	n := len(keys)
	if n < 2 || hiBits <= 0 {
		return
	}
	stableSortPattern(keys, aux[:n], hiBits, true, batch)
}

func stableSortPattern(srcK []uint32, altK []uint32, hiBits int, inOrig, batch bool) {
	n := len(srcK)
	for {
		if n <= 1 {
			if n == 1 && !inOrig {
				altK[0] = srcK[0]
			}
			return
		}
		if hiBits <= 0 {
			if !inOrig {
				copy(altK, srcK)
			}
			return
		}
		if n <= insertionCutoff {
			if inOrig {
				insertionSortKeys32Pattern(srcK)
			} else {
				insertionIntoPattern(srcK, altK)
			}
			return
		}
		w := digitWidth(n, hiBits)
		shift := uint(hiBits - w)
		nb := 1 << w
		mask := uint32(nb - 1)
		var count [maxBuckets]int64
		hist32(srcK, shift, mask, &count, batch)
		nonEmpty := 0
		var start [maxBuckets]int64
		sum := int64(0)
		for b := 0; b < nb; b++ {
			start[b] = sum
			sum += count[b]
			if count[b] > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 1 {
			hiBits = int(shift)
			continue
		}
		cursor := start
		scatterK32(srcK, altK, shift, mask, &cursor, batch)
		if shift == 0 {
			if inOrig {
				copy(srcK, altK)
			}
			return
		}
		for b := 0; b < nb; b++ {
			c := count[b]
			if c == 0 {
				continue
			}
			s := start[b]
			switch c {
			case 1:
				if inOrig {
					srcK[s] = altK[s]
				}
			case 2:
				s2 := s + 1
				if altK[s] > altK[s2] {
					if inOrig {
						srcK[s], srcK[s2] = altK[s2], altK[s]
					} else {
						altK[s], altK[s2] = altK[s2], altK[s]
					}
				} else if inOrig {
					srcK[s], srcK[s2] = altK[s], altK[s2]
				}
			default:
				stableSortPattern(altK[s:s+c], srcK[s:s+c], int(shift), !inOrig, batch)
			}
		}
		return
	}
}

func insertionIntoPattern(srcK []uint32, dstK []uint32) {
	for i := 0; i < len(srcK); i++ {
		k := srcK[i]
		j := i
		for j > 0 && dstK[j-1] > k {
			dstK[j] = dstK[j-1]
			j--
		}
		dstK[j] = k
	}
}

// PartitionTop32PatternScratch is PartitionTop32Scratch for the key-only
// plane: one stable scatter through aux with copy-back, bounds filled with
// bucket starts; zero nbuckets means fully sorted.
func PartitionTop32PatternScratch(keys []uint32, aux []uint32, bounds []int64, batch bool) (nbuckets, restBits int) {
	n := len(keys)
	if n < 2 {
		return 0, 0
	}
	or := or32(keys, batch)
	if or == 0 {
		return 0, 0
	}
	hiBits := bits.Len32(or)
	aux = aux[:n]
	for {
		if hiBits <= 0 {
			return 0, 0
		}
		w := digitWidth(n, hiBits)
		shift := uint(hiBits - w)
		nb := 1 << w
		mask := uint32(nb - 1)
		var count [maxBuckets]int64
		hist32(keys, shift, mask, &count, batch)
		nonEmpty := 0
		var start [maxBuckets]int64
		sum := int64(0)
		for b := 0; b < nb; b++ {
			start[b] = sum
			sum += count[b]
			if count[b] > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 1 {
			hiBits = int(shift)
			continue
		}
		cursor := start
		scatterK32(keys, aux, shift, mask, &cursor, batch)
		copy(keys, aux)
		for b := 0; b < nb; b++ {
			bounds[b] = start[b]
		}
		bounds[nb] = int64(n)
		if shift == 0 {
			return 0, 0
		}
		return nb, int(shift)
	}
}

// fuseKeysS is the stable fused sort+dedup for the pattern plane: unique
// keys are emitted in order into the prefix of the original plane.
type fuseKeysS struct {
	keys  []uint32
	n     int64
	batch bool
}

// SortKeys32FusedPatternScratch stably sorts and deduplicates keys in one
// pass, returning the unique-key count. aux must be at least len(keys).
func SortKeys32FusedPatternScratch(keys []uint32, aux []uint32, batch bool) int64 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	or := or32(keys, batch)
	if or == 0 {
		return 1 // keys[0] is already 0
	}
	f := fuseKeysS{keys: keys, batch: batch}
	f.sort(keys, aux[:n], bits.Len32(or))
	return f.n
}

func (f *fuseKeysS) emitOne(k uint32) {
	f.keys[f.n] = k
	f.n++
}

func (f *fuseKeysS) sort(srcK []uint32, altK []uint32, hiBits int) {
	n := len(srcK)
	if n == 0 {
		return
	}
	if n == 1 || hiBits <= 0 {
		f.emitOne(srcK[0])
		return
	}
	if n <= insertionCutoff {
		f.insertionDedup(srcK)
		return
	}
	w := digitWidth(n, hiBits)
	shift := uint(hiBits - w)
	nb := 1 << w
	mask := uint32(nb - 1)
	var count [maxBuckets]int64
	hist32(srcK, shift, mask, &count, f.batch)
	nonEmpty := 0
	var start [maxBuckets]int64
	sum := int64(0)
	for b := 0; b < nb; b++ {
		start[b] = sum
		sum += count[b]
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		f.sort(srcK, altK, int(shift))
		return
	}
	if shift == 0 {
		// Last digit: the histogram is the occupancy map — emit each
		// occupied bucket's key without materializing the permutation.
		base := srcK[0] &^ mask
		out := f.n
		for b := 0; b < nb; b++ {
			if count[b] > 0 {
				f.keys[out] = base | uint32(b)
				out++
			}
		}
		f.n = out
		return
	}
	cursor := start
	scatterK32(srcK, altK, shift, mask, &cursor, f.batch)
	for b := 0; b < nb; b++ {
		c := count[b]
		if c == 0 {
			continue
		}
		s := start[b]
		switch c {
		case 1:
			f.emitOne(altK[s])
		case 2:
			k0, k1 := altK[s], altK[s+1]
			switch {
			case k0 == k1:
				f.emitOne(k0)
			case k0 < k1:
				f.emitOne(k0)
				f.emitOne(k1)
			default:
				f.emitOne(k1)
				f.emitOne(k0)
			}
		default:
			f.sort(altK[s:s+c], srcK[s:s+c], int(shift))
		}
	}
}

func (f *fuseKeysS) insertionDedup(srcK []uint32) {
	keys := f.keys
	base := f.n
	out := base
	for i := 0; i < len(srcK); i++ {
		k := srcK[i]
		j := out
		for j > base && keys[j-1] > k {
			j--
		}
		if j > base && keys[j-1] == k {
			continue
		}
		for m := out; m > j; m-- {
			keys[m] = keys[m-1]
		}
		keys[j] = k
		out++
	}
	f.n = out
}
