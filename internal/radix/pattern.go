package radix

import "math/bits"

// Pattern (key-only) layout: the 4-byte tuple of the Boolean semiring and of
// structural products whose values are never read. A tuple IS its packed
// uint32 key, so the sorter moves a quarter of the squeezed layout's bytes
// and the fused fold degenerates to deduplication — "sum the values of equal
// keys" becomes "keep one". The digit plan (digitWidth over the slice length
// and the key OR) is shared with the value-carrying sorters, so a bin
// partitioned by PartitionTop32Pattern and finished per bucket lands in
// exactly the array one SortKeys32Pattern call would produce.

// SortKeys32Pattern sorts keys ascending in place.
func SortKeys32Pattern(keys []uint32) {
	if len(keys) < 2 {
		return
	}
	var or uint32
	for _, k := range keys {
		or |= k
	}
	if or == 0 {
		return // all keys zero: already sorted
	}
	SortKeys32BitsPattern(keys, bits.Len32(or))
}

// flagPass32Pattern is the key-only American-flag pass at the shared digit
// plan; see flagPass32.
func flagPass32Pattern(keys []uint32, hiBits int, st *flagState32) (shift uint, mask uint32, nb int) {
	w := digitWidth(len(keys), hiBits)
	shift = uint(hiBits - w)
	nb = 1 << w
	mask = uint32(nb - 1)

	for _, k := range keys {
		st.count[(k>>shift)&mask]++
	}
	sum := 0
	for b := 0; b < nb; b++ {
		st.start[b] = sum
		sum += st.count[b]
		st.end[b] = sum
		if st.count[b] > 0 {
			st.nonEmpty++
		}
	}
	if st.nonEmpty > 1 {
		var cursor [maxBuckets]int
		copy(cursor[:nb], st.start[:nb])
		permuteKeys32Pattern(keys, cursor[:nb], st.end[:nb], shift, mask)
	}
	return shift, mask, nb
}

// SortKeys32BitsPattern sorts by the key bits [0, hiBits), assuming all
// higher bits are uniform; the per-bucket continuation of
// PartitionTop32Pattern, bit-identical combined with it to one
// SortKeys32Pattern call.
func SortKeys32BitsPattern(keys []uint32, hiBits int) {
	n := len(keys)
	if n < 2 || hiBits <= 0 {
		return
	}
	if n <= insertionCutoff {
		insertionSortKeys32Pattern(keys)
		return
	}
	var st flagState32
	shift, _, nb := flagPass32Pattern(keys, hiBits, &st)
	if st.nonEmpty == 1 {
		SortKeys32BitsPattern(keys, int(shift))
		return
	}
	if shift == 0 {
		return
	}
	for b := 0; b < nb; b++ {
		switch c := st.count[b]; {
		case c == 2:
			i := st.start[b]
			if keys[i] > keys[i+1] {
				keys[i], keys[i+1] = keys[i+1], keys[i]
			}
		case c > 2:
			SortKeys32BitsPattern(keys[st.start[b]:st.end[b]], int(shift))
		}
	}
}

// permuteKeys32Pattern is the cycle-following in-place permutation with no
// value plane to carry.
func permuteKeys32Pattern(keys []uint32, cursor, end []int, shift uint, mask uint32) {
	for b := 0; b < len(cursor); b++ {
		i := cursor[b]
		be := end[b]
		for i < be {
			k := keys[i]
			home := int((k >> shift) & mask)
			if home == b {
				i++
				continue
			}
			for {
				j := cursor[home]
				cursor[home] = j + 1
				k2 := keys[j]
				keys[j] = k
				home = int((k2 >> shift) & mask)
				if home == b {
					keys[i] = k2
					i++
					break
				}
				k = k2
			}
		}
		cursor[b] = i
	}
}

func insertionSortKeys32Pattern(keys []uint32) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// PartitionTop32Pattern is PartitionTop32 without a value plane: exactly the
// first splitting pass SortKeys32Pattern would run, bucket boundaries into
// bounds (len ≥ MaxPartitionBuckets+1), finished per bucket with
// SortKeys32BitsPattern(bucket, restBits).
func PartitionTop32Pattern(keys []uint32, bounds []int64) (nbuckets, restBits int) {
	if len(keys) < 2 {
		return 0, 0
	}
	var or uint32
	for _, k := range keys {
		or |= k
	}
	if or == 0 {
		return 0, 0
	}
	hiBits := bits.Len32(or)
	for {
		if hiBits <= 0 {
			return 0, 0
		}
		var st flagState32
		shift, _, nb := flagPass32Pattern(keys, hiBits, &st)
		if st.nonEmpty == 1 {
			hiBits = int(shift)
			continue
		}
		for b := 0; b < nb; b++ {
			bounds[b] = int64(st.start[b])
		}
		bounds[nb] = int64(len(keys))
		if shift == 0 {
			return 0, 0 // buckets are uniform keys: fully sorted
		}
		return nb, int(shift)
	}
}

// fuseKeys is the pattern-layout emit state: sort + deduplicate-compact.
type fuseKeys struct {
	keys []uint32
	n    int64
}

func (f *fuseKeys) emitOne(k uint32) {
	f.keys[f.n] = k
	f.n++
}

// insertionFold insertion-sorts the leaf [lo, hi) directly into the
// compacted prefix, dropping duplicate keys on insert.
func (f *fuseKeys) insertionFold(lo, hi int64) {
	keys := f.keys
	base := f.n
	out := base
	for i := lo; i < hi; i++ {
		k := keys[i]
		j := out
		for j > base && keys[j-1] > k {
			j--
		}
		if j > base && keys[j-1] == k {
			continue
		}
		for m := out; m > j; m-- {
			keys[m] = keys[m-1]
		}
		keys[j] = k
		out++
	}
	f.n = out
}

// SortKeys32FusedPattern sorts keys ascending and deduplicates, compacting
// the unique keys into keys[:n] and returning n — the count-only fold of the
// pattern layout. The prefix equals SortKeys32Pattern followed by a
// two-pointer dedup; the tail beyond n is unspecified. The last digit pass
// never permutes at all: with one key per bucket, the unique keys are fully
// determined by the occupancy counts.
func SortKeys32FusedPattern(keys []uint32) int64 {
	if len(keys) == 0 {
		return 0
	}
	var or uint32
	for _, k := range keys {
		or |= k
	}
	f := fuseKeys{keys: keys}
	if or == 0 {
		f.emitOne(0)
		return f.n
	}
	f.sortBits(0, int64(len(keys)), bits.Len32(or))
	return f.n
}

// sortBits mirrors SortKeys32BitsPattern's recursion over [lo, hi), emitting
// each leaf's unique keys as it completes.
func (f *fuseKeys) sortBits(lo, hi int64, hiBits int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n == 1 {
		f.emitOne(f.keys[lo])
		return
	}
	if hiBits <= 0 {
		// No distinguishing bits left: every key in the range is equal.
		f.emitOne(f.keys[lo])
		return
	}
	if n <= insertionCutoff {
		f.insertionFold(lo, hi)
		return
	}
	keys := f.keys[lo:hi]
	w := digitWidth(int(n), hiBits)
	shift := uint(hiBits - w)
	nb := 1 << w
	mask := uint32(nb - 1)

	var st flagState32
	for _, k := range keys {
		st.count[(k>>shift)&mask]++
	}
	sum := 0
	for b := 0; b < nb; b++ {
		st.start[b] = sum
		sum += st.count[b]
		st.end[b] = sum
		if st.count[b] > 0 {
			st.nonEmpty++
		}
	}
	if st.nonEmpty == 1 {
		f.sortBits(lo, hi, int(shift))
		return
	}
	if shift == 0 {
		// Last digit: one key per bucket — the occupancy counts ARE the
		// answer; emit without moving a single tuple.
		base := keys[0] &^ mask
		out := f.n
		dk := f.keys
		for b := 0; b < nb; b++ {
			if st.count[b] > 0 {
				dk[out] = base | uint32(b)
				out++
			}
		}
		f.n = out
		return
	}
	// Splitting pass: the unfused permute, verbatim, then the buckets.
	var cursor [maxBuckets]int
	copy(cursor[:nb], st.start[:nb])
	permuteKeys32Pattern(keys, cursor[:nb], st.end[:nb], shift, mask)
	dk := f.keys
	out := f.n
	for b := 0; b < nb; b++ {
		c := st.count[b]
		if c == 0 {
			continue
		}
		s := lo + int64(st.start[b])
		switch {
		case c == 1:
			dk[out] = dk[s]
			out++
		case c == 2:
			k0, k1 := dk[s], dk[s+1]
			if k0 > k1 {
				k0, k1 = k1, k0
			}
			dk[out] = k0
			out++
			if k0 != k1 {
				dk[out] = k1
				out++
			}
		default:
			f.n = out
			f.sortBits(s, lo+int64(st.end[b]), int(shift))
			out = f.n
		}
	}
	f.n = out
}
