package radix

// Pattern (key-only) layout: the 4-byte tuple of the Boolean semiring and of
// structural products whose values are never read. A tuple IS its packed
// uint32 key, so the sorter moves a quarter of the squeezed layout's bytes
// and the fused fold degenerates to deduplication — "sum the values of equal
// keys" becomes "keep one". The implementations are the stable key-only
// sorts in stablepattern.go; the wrappers here keep the original one-call
// API (allocating their own scratch) for tests and external callers. The
// engine passes pooled per-worker scratch through the ...Scratch variants.

// SortKeys32Pattern sorts keys ascending.
func SortKeys32Pattern(keys []uint32) {
	if len(keys) < 2 {
		return
	}
	aux := make([]uint32, len(keys))
	SortKeys32PatternScratch(keys, aux, false)
}

// SortKeys32BitsPattern sorts by the key bits [0, hiBits), assuming all
// higher bits are uniform across the slice (a PartitionTop32Pattern
// bucket).
func SortKeys32BitsPattern(keys []uint32, hiBits int) {
	if len(keys) < 2 || hiBits <= 0 {
		return
	}
	aux := make([]uint32, len(keys))
	SortKeys32BitsPatternScratch(keys, aux, hiBits, false)
}

func insertionSortKeys32Pattern(keys []uint32) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// PartitionTop32Pattern runs the sort's first splitting pass over the
// key-only plane, filling bounds (len ≥ MaxPartitionBuckets+1); the caller
// finishes per bucket with SortKeys32BitsPattern. nbuckets == 0 means no
// further work remains.
func PartitionTop32Pattern(keys []uint32, bounds []int64) (nbuckets, restBits int) {
	if len(keys) < 2 {
		return 0, 0
	}
	aux := make([]uint32, len(keys))
	return PartitionTop32PatternScratch(keys, aux, bounds, false)
}

// SortKeys32FusedPattern sorts and deduplicates keys in one pass,
// compacting the unique keys into the slice prefix and returning their
// count. Bit-identical to SortKeys32Pattern followed by a dedup scan.
func SortKeys32FusedPattern(keys []uint32) int64 {
	if len(keys) == 0 {
		return 0
	}
	aux := make([]uint32, len(keys))
	return SortKeys32FusedPatternScratch(keys, aux, false)
}
