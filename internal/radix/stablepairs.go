package radix

// Wide-layout (16-byte Pair) twins of stable32.go, on whole-byte digits
// like the original pair sorter. The legacy in-place SortPairsInPlace /
// SortPairs in pairs.go stay untouched — they serve the ESC baseline and
// format conversion, which have no scratch planes.

// SortPairsStable stably sorts ps by Key. aux must be at least len(ps); its
// contents are clobbered.
func SortPairsStable(ps []Pair, aux []Pair, batch bool) {
	n := len(ps)
	if n < 2 {
		return
	}
	or := orPairs(ps, batch)
	if or == 0 {
		return
	}
	stableSortPairs(ps, aux[:n], topByte(or), true, batch)
}

// SortPairsAtByteStable continues a partitioned bucket whose keys agree on
// all bytes above byteIdx.
func SortPairsAtByteStable(ps []Pair, aux []Pair, byteIdx int, batch bool) {
	n := len(ps)
	if n < 2 || byteIdx < 0 {
		return
	}
	stableSortPairs(ps, aux[:n], byteIdx, true, batch)
}

func stableSortPairs(src []Pair, alt []Pair, byteIdx int, inOrig, batch bool) {
	n := len(src)
	for {
		if n <= 1 {
			if n == 1 && !inOrig {
				alt[0] = src[0]
			}
			return
		}
		if byteIdx < 0 {
			if !inOrig {
				copy(alt, src)
			}
			return
		}
		if n <= insertionCutoff {
			if inOrig {
				insertionSortPairs(src)
			} else {
				insertionIntoPairs(src, alt)
			}
			return
		}
		shift := uint(byteIdx * 8)
		var count [maxBuckets]int64
		histPairs(src, shift, &count, batch)
		nonEmpty := 0
		var start [maxBuckets]int64
		sum := int64(0)
		for b := 0; b < maxBuckets; b++ {
			start[b] = sum
			sum += count[b]
			if count[b] > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 1 {
			byteIdx--
			continue
		}
		cursor := start
		scatterPairs(src, alt, shift, &cursor, batch)
		if byteIdx == 0 {
			if inOrig {
				copy(src, alt)
			}
			return
		}
		for b := 0; b < maxBuckets; b++ {
			c := count[b]
			if c == 0 {
				continue
			}
			s := start[b]
			switch c {
			case 1:
				if inOrig {
					src[s] = alt[s]
				}
			case 2:
				s2 := s + 1
				if alt[s].Key > alt[s2].Key {
					if inOrig {
						src[s], src[s2] = alt[s2], alt[s]
					} else {
						alt[s], alt[s2] = alt[s2], alt[s]
					}
				} else if inOrig {
					src[s], src[s2] = alt[s], alt[s2]
				}
			default:
				stableSortPairs(alt[s:s+c], src[s:s+c], byteIdx-1, !inOrig, batch)
			}
		}
		return
	}
}

func insertionIntoPairs(src []Pair, dst []Pair) {
	for i := 0; i < len(src); i++ {
		p := src[i]
		j := i
		for j > 0 && dst[j-1].Key > p.Key {
			dst[j] = dst[j-1]
			j--
		}
		dst[j] = p
	}
}

// PartitionPairsScratch is the stable splitting pass for oversized wide
// bins: one scatter through aux with copy-back, bounds filled with the 256
// byte-bucket starts (bounds[256] = len). Zero nbuckets means fully sorted.
func PartitionPairsScratch(ps []Pair, aux []Pair, bounds []int64, batch bool) (nbuckets, nextByte int) {
	n := len(ps)
	if n < 2 {
		return 0, 0
	}
	or := orPairs(ps, batch)
	if or == 0 {
		return 0, 0
	}
	byteIdx := topByte(or)
	aux = aux[:n]
	for {
		if byteIdx < 0 {
			return 0, 0
		}
		shift := uint(byteIdx * 8)
		var count [maxBuckets]int64
		histPairs(ps, shift, &count, batch)
		nonEmpty := 0
		var start [maxBuckets]int64
		sum := int64(0)
		for b := 0; b < maxBuckets; b++ {
			start[b] = sum
			sum += count[b]
			if count[b] > 0 {
				nonEmpty++
			}
		}
		if nonEmpty == 1 {
			byteIdx--
			continue
		}
		cursor := start
		scatterPairs(ps, aux, shift, &cursor, batch)
		copy(ps, aux)
		for b := 0; b < maxBuckets; b++ {
			bounds[b] = start[b]
		}
		bounds[maxBuckets] = int64(n)
		if byteIdx == 0 {
			return 0, 0
		}
		return maxBuckets, byteIdx - 1
	}
}

// fusePairsS is the stable fused sort+fold for the wide layout.
type fusePairsS struct {
	ps    []Pair
	n     int64
	batch bool
}

// SortPairsFusedScratch stably sorts and folds ps in one pass, returning
// the folded tuple count. aux must be at least len(ps).
func SortPairsFusedScratch(ps []Pair, aux []Pair, batch bool) int64 {
	n := len(ps)
	if n == 0 {
		return 0
	}
	or := orPairs(ps, batch)
	if or == 0 {
		v := ps[0].Val
		for i := 1; i < n; i++ {
			v += ps[i].Val
		}
		ps[0].Val = v
		return 1
	}
	f := fusePairsS{ps: ps, batch: batch}
	f.sort(ps, aux[:n], topByte(or))
	return f.n
}

func (f *fusePairsS) emitOne(p Pair) {
	f.ps[f.n] = p
	f.n++
}

func (f *fusePairsS) sort(src []Pair, alt []Pair, byteIdx int) {
	n := len(src)
	if n == 0 {
		return
	}
	if n == 1 {
		f.emitOne(src[0])
		return
	}
	if byteIdx < 0 {
		p := src[0]
		for i := 1; i < n; i++ {
			p.Val += src[i].Val
		}
		f.emitOne(p)
		return
	}
	if n <= insertionCutoff {
		f.insertionFold(src)
		return
	}
	shift := uint(byteIdx * 8)
	var count [maxBuckets]int64
	histPairs(src, shift, &count, f.batch)
	nonEmpty := 0
	var start [maxBuckets]int64
	sum := int64(0)
	for b := 0; b < maxBuckets; b++ {
		start[b] = sum
		sum += count[b]
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		f.sort(src, alt, byteIdx-1)
		return
	}
	if byteIdx == 0 {
		// Last byte: sequential accumulate in arrival order, then emit
		// per occupied bucket. Reads all of src before any emit.
		var acc [maxBuckets]float64
		accumPairs(src, &acc, f.batch)
		base := src[0].Key &^ 0xff
		out := f.n
		for b := 0; b < maxBuckets; b++ {
			if count[b] > 0 {
				f.ps[out] = Pair{Key: base | uint64(b), Val: acc[b]}
				out++
			}
		}
		f.n = out
		return
	}
	cursor := start
	scatterPairs(src, alt, shift, &cursor, f.batch)
	for b := 0; b < maxBuckets; b++ {
		c := count[b]
		if c == 0 {
			continue
		}
		s := start[b]
		switch c {
		case 1:
			f.emitOne(alt[s])
		case 2:
			p0, p1 := alt[s], alt[s+1]
			switch {
			case p0.Key == p1.Key:
				f.emitOne(Pair{Key: p0.Key, Val: p0.Val + p1.Val})
			case p0.Key < p1.Key:
				f.emitOne(p0)
				f.emitOne(p1)
			default:
				f.emitOne(p1)
				f.emitOne(p0)
			}
		default:
			f.sort(alt[s:s+c], src[s:s+c], byteIdx-1)
		}
	}
}

func (f *fusePairsS) insertionFold(src []Pair) {
	ps := f.ps
	base := f.n
	out := base
	for i := 0; i < len(src); i++ {
		p := src[i]
		j := out
		for j > base && ps[j-1].Key > p.Key {
			j--
		}
		if j > base && ps[j-1].Key == p.Key {
			ps[j-1].Val += p.Val
			continue
		}
		for m := out; m > j; m-- {
			ps[m] = ps[m-1]
		}
		ps[j] = p
		out++
	}
	f.n = out
}
