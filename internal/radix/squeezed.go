package radix

import "math/bits"

// Squeezed tuple layout (the paper's Section III-D key squeezing, taken to
// its storage conclusion): when localRowBits + colBits ≤ 32 the packed key
// (localRow<<colBits | col) fits a uint32, and a tuple shrinks from Pair's
// 16 bytes to 12 — a uint32 key and a float64 value held in parallel arrays.
//
// The sorter is the same in-place American-flag radix as SortPairsInPlace,
// tuned for what the 4-byte key affords: digit widths adapt to the slice
// (up to 8 bits, narrower when few elements or few key bits remain), the
// permute follows displacement cycles so each element is loaded and stored
// once, and counting passes touch only the 4-byte key array — a quarter of
// the wide layout's counting traffic. The digit plan is a pure function of
// the slice length and its key bits, both identical between the whole-bin
// sort and the PartitionTop32-split path, so a bin partitioned across
// workers sorts into exactly the same array a single worker would produce.

// digitBits caps the American-flag digit width: 256 buckets keep each
// pass's counter and cursor arrays inside L1 and each recursion frame's
// state at 8 KiB of stack.
const digitBits = 8

// maxBuckets sizes the per-pass counter arrays.
const maxBuckets = 1 << digitBits

// MaxPartitionBuckets is the most buckets PartitionTop32 can emit; callers
// size its bounds slice to MaxPartitionBuckets+1.
const MaxPartitionBuckets = maxBuckets

// digitWidth picks the digit width of one pass: ~2 expected tuples per
// bucket, capped by digitBits and the remaining key bits. It depends only on
// the slice length and hiBits, both identical between the whole-bin sort and
// the partitioned per-bucket path, so the recursion tree — and the resulting
// permutation — is the same in both.
func digitWidth(n, hiBits int) int {
	w := bits.Len(uint(n) >> 1) // ≈ log2(n/2)
	if w < 4 {
		w = 4
	}
	if w > digitBits {
		w = digitBits
	}
	if w > hiBits {
		w = hiBits
	}
	return w
}

// SortKeys32 sorts keys ascending, permuting vals identically, in place.
// The value plane is layout-generic: the engine instantiates it with float64
// (the squeezed 12-byte layout) or a 4-byte value (the narrow 8-byte layout);
// the sorter never inspects a value, only moves it with its key.
func SortKeys32[V any](keys []uint32, vals []V) {
	if len(keys) != len(vals) {
		panic("radix: keys and vals length mismatch")
	}
	if len(keys) < 2 {
		return
	}
	var or uint32
	for _, k := range keys {
		or |= k
	}
	if or == 0 {
		return // all keys zero: already sorted
	}
	SortKeys32Bits(keys, vals, bits.Len32(or))
}

// flagState32 is one American-flag pass's bucket bookkeeping.
type flagState32 struct {
	count, start, end [maxBuckets]int
	nonEmpty          int
}

// flagPass32 runs one complete American-flag pass — digit counting, prefix,
// and (unless the digit is uniform) the cycle-following permute — at the
// pass geometry digitWidth picked for (n, hiBits). It is THE pass: both the
// recursive sorter and PartitionTop32 go through it, so the two can never
// diverge on a bin's first pass and the split-across-workers sort stays
// bit-identical to the whole-bin sort. Returns the digit shift.
func flagPass32[V any](keys []uint32, vals []V, hiBits int, st *flagState32) (shift uint, mask uint32, nb int) {
	w := digitWidth(len(keys), hiBits)
	shift = uint(hiBits - w)
	nb = 1 << w
	mask = uint32(nb - 1)

	for _, k := range keys {
		st.count[(k>>shift)&mask]++
	}
	sum := 0
	for b := 0; b < nb; b++ {
		st.start[b] = sum
		sum += st.count[b]
		st.end[b] = sum
		if st.count[b] > 0 {
			st.nonEmpty++
		}
	}
	if st.nonEmpty > 1 {
		var cursor [maxBuckets]int
		copy(cursor[:nb], st.start[:nb])
		permuteKeys32(keys, vals, cursor[:nb], st.end[:nb], shift, mask)
	}
	return shift, mask, nb
}

// SortKeys32Bits sorts by the key bits [0, hiBits), assuming all higher bits
// are uniform across the slice. It is exported so callers that already
// partitioned a slice (see PartitionTop32) can continue per bucket; the
// combined result is bit-identical to SortKeys32 over the whole slice.
func SortKeys32Bits[V any](keys []uint32, vals []V, hiBits int) {
	n := len(keys)
	if n < 2 || hiBits <= 0 {
		return
	}
	if n <= insertionCutoff {
		insertionSortKeys32(keys, vals)
		return
	}
	var st flagState32
	shift, _, nb := flagPass32(keys, vals, hiBits, &st)
	if st.nonEmpty == 1 {
		// This digit is uniform; descend to the remaining bits.
		SortKeys32Bits(keys, vals, int(shift))
		return
	}
	if shift == 0 {
		return
	}
	for b := 0; b < nb; b++ {
		switch c := st.count[b]; {
		case c == 2:
			// The dominant non-trivial bucket size once digits track the
			// slice length; inline instead of recursing.
			i := st.start[b]
			if keys[i] > keys[i+1] {
				keys[i], keys[i+1] = keys[i+1], keys[i]
				vals[i], vals[i+1] = vals[i+1], vals[i]
			}
		case c > 2:
			SortKeys32Bits(keys[st.start[b]:st.end[b]], vals[st.start[b]:st.end[b]], int(shift))
		}
	}
}

// permuteKeys32 is the American-flag in-place permutation, cycle-following
// style: the displaced tuple rides in registers and each element is loaded
// and stored exactly once, instead of the textbook swap's double traffic.
// cursor must be seeded with the bucket starts; end holds the bucket ends.
func permuteKeys32[V any](keys []uint32, vals []V, cursor, end []int, shift uint, mask uint32) {
	for b := 0; b < len(cursor); b++ {
		i := cursor[b]
		be := end[b]
		for i < be {
			k := keys[i]
			home := int((k >> shift) & mask)
			if home == b {
				i++
				continue
			}
			v := vals[i]
			for {
				j := cursor[home]
				cursor[home] = j + 1
				k2, v2 := keys[j], vals[j]
				keys[j], vals[j] = k, v
				home = int((k2 >> shift) & mask)
				if home == b {
					keys[i], vals[i] = k2, v2
					i++
					break
				}
				k, v = k2, v2
			}
		}
		cursor[b] = i
	}
}

func insertionSortKeys32[V any](keys []uint32, vals []V) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			vals[j+1] = vals[j]
			j--
		}
		keys[j+1] = k
		vals[j+1] = v
	}
}

// Keys32Sorted reports whether keys is non-decreasing.
func Keys32Sorted(keys []uint32) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

// GrowUint32 returns (*buf)[:n], reallocating only when capacity is short;
// contents are unspecified. Counterpart of GrowPairs for the squeezed key
// array.
func GrowUint32(buf *[]uint32, n int64) []uint32 {
	if int64(cap(*buf)) < n {
		*buf = make([]uint32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// PartitionTop32 runs exactly the first splitting American-flag pass
// SortKeys32 would run — the digit plan derives from the whole slice's key
// OR and length, descending through uniform digits — and stops there,
// writing the nbuckets+1 bucket boundaries into bounds (len ≥
// MaxPartitionBuckets+1). The caller finishes with SortKeys32Bits(bucket,
// restBits) per bucket, in parallel if it likes; the combined result is
// bit-identical to one SortKeys32 call. nbuckets == 0 means no further work
// remains (all keys equal, or the splitting pass consumed the last digit).
func PartitionTop32[V any](keys []uint32, vals []V, bounds []int64) (nbuckets, restBits int) {
	if len(keys) < 2 {
		return 0, 0
	}
	var or uint32
	for _, k := range keys {
		or |= k
	}
	if or == 0 {
		return 0, 0
	}
	hiBits := bits.Len32(or)
	for {
		if hiBits <= 0 {
			return 0, 0
		}
		// flagPass32 is the sorter's own pass; the uniform-digit descent
		// below mirrors SortKeys32Bits' recursion on nonEmpty == 1.
		var st flagState32
		shift, _, nb := flagPass32(keys, vals, hiBits, &st)
		if st.nonEmpty == 1 {
			hiBits = int(shift)
			continue
		}
		for b := 0; b < nb; b++ {
			bounds[b] = int64(st.start[b])
		}
		bounds[nb] = int64(len(keys))
		if shift == 0 {
			return 0, 0 // buckets are uniform keys: fully sorted
		}
		return nb, int(shift)
	}
}
