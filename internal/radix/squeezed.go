package radix

import "math/bits"

// Squeezed tuple layout (the paper's Section III-D key squeezing, taken to
// its storage conclusion): when localRowBits + colBits ≤ 32 the packed key
// (localRow<<colBits | col) fits a uint32, and a tuple shrinks from Pair's
// 16 bytes to 12 — a uint32 key and a float64 value held in parallel arrays.
//
// The sorter is the stable out-of-place American-flag radix of stable32.go:
// digit widths adapt to the slice (up to 8 bits, narrower when few elements
// or few key bits remain), each splitting pass is a stable counting scatter
// ping-ponging between the tuple plane and a scratch plane, and counting
// passes touch only the 4-byte key array — a quarter of the wide layout's
// counting traffic. Because the sort is stable, a bin partitioned across
// workers (PartitionTop32), the fused fold, and the whole-bin sort all
// produce exactly the same array regardless of digit plan or thread count.
//
// The entry points here allocate their own scratch, which suits tests and
// one-off callers; the engine passes pooled per-worker scratch through the
// ...Scratch variants in stable32.go.

// digitBits caps the American-flag digit width: 256 buckets keep each
// pass's counter and cursor arrays inside L1 and each recursion frame's
// state at a few KiB of stack.
const digitBits = 8

// maxBuckets sizes the per-pass counter arrays.
const maxBuckets = 1 << digitBits

// MaxPartitionBuckets is the most buckets PartitionTop32 can emit; callers
// size its bounds slice to MaxPartitionBuckets+1.
const MaxPartitionBuckets = maxBuckets

// digitWidth picks the digit width of one pass: ~2 expected tuples per
// bucket, capped by digitBits and the remaining key bits.
func digitWidth(n, hiBits int) int {
	w := bits.Len(uint(n) >> 1) // ≈ log2(n/2)
	if w < 4 {
		w = 4
	}
	if w > digitBits {
		w = digitBits
	}
	if w > hiBits {
		w = hiBits
	}
	return w
}

// SortKeys32 sorts keys ascending, permuting vals identically. The value
// plane is layout-generic: the engine instantiates it with float64 (the
// squeezed 12-byte layout) or a 4-byte value (the narrow 8-byte layout);
// the sorter never inspects a value, only moves it with its key. The sort
// is stable: equal keys keep their input order.
func SortKeys32[V any](keys []uint32, vals []V) {
	if len(keys) != len(vals) {
		panic("radix: keys and vals length mismatch")
	}
	if len(keys) < 2 {
		return
	}
	auxK := make([]uint32, len(keys))
	auxV := make([]V, len(vals))
	SortKeys32Scratch(keys, vals, auxK, auxV, false)
}

// SortKeys32Bits sorts by the key bits [0, hiBits), assuming all higher bits
// are uniform across the slice. It is exported so callers that already
// partitioned a slice (see PartitionTop32) can continue per bucket; being
// stable, the combined result is bit-identical to SortKeys32 over the whole
// slice.
func SortKeys32Bits[V any](keys []uint32, vals []V, hiBits int) {
	n := len(keys)
	if n < 2 || hiBits <= 0 {
		return
	}
	auxK := make([]uint32, n)
	auxV := make([]V, n)
	SortKeys32BitsScratch(keys, vals, auxK, auxV, hiBits, false)
}

func insertionSortKeys32[V any](keys []uint32, vals []V) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			vals[j+1] = vals[j]
			j--
		}
		keys[j+1] = k
		vals[j+1] = v
	}
}

// Keys32Sorted reports whether keys is non-decreasing.
func Keys32Sorted(keys []uint32) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

// GrowUint32 returns (*buf)[:n], reallocating only when capacity is short;
// contents are unspecified. Counterpart of GrowPairs for the squeezed key
// array.
func GrowUint32(buf *[]uint32, n int64) []uint32 {
	if int64(cap(*buf)) < n {
		*buf = make([]uint32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// PartitionTop32 runs the sort's first splitting pass and stops there,
// writing the nbuckets+1 bucket boundaries into bounds (len ≥
// MaxPartitionBuckets+1). The caller finishes with SortKeys32Bits(bucket,
// restBits) per bucket, in parallel if it likes; stability makes the
// combined result bit-identical to one SortKeys32 call. nbuckets == 0 means
// no further work remains (all keys equal, or the splitting pass consumed
// the last digit).
func PartitionTop32[V any](keys []uint32, vals []V, bounds []int64) (nbuckets, restBits int) {
	if len(keys) < 2 {
		return 0, 0
	}
	auxK := make([]uint32, len(keys))
	auxV := make([]V, len(vals))
	return PartitionTop32Scratch(keys, vals, auxK, auxV, bounds, false)
}
