// Package radix implements the in-place MSD radix sort ("American flag
// sort", McIlroy/Bostic/McIlroy 1993) the paper uses to sort each global bin
// of expanded tuples (Section III-D). Keys are packed (rowid, colid) pairs;
// values travel with their keys as payloads.
//
// The paper's key-squeezing optimization — representing the in-bin local row
// id in ~10 bits so the combined key fits 4 bytes and needs only four passes —
// is realized here by skipping byte positions that are zero across the whole
// slice: PB-SpGEMM packs keys as localRow<<colBits|col, so small local row
// ids leave the high key bytes zero and the sorter automatically performs
// only the passes a 4-byte key would need.
package radix

// insertionCutoff is the sub-slice size below which insertion sort beats the
// bucket machinery. 32 is the conventional choice for 16-byte elements.
const insertionCutoff = 32

// SortPairs sorts keys ascending, permuting vals identically, in place.
func SortPairs(keys []uint64, vals []float64) {
	if len(keys) != len(vals) {
		panic("radix: keys and vals length mismatch")
	}
	if len(keys) < 2 {
		return
	}
	// Find the highest byte position that is not uniformly zero. OR-ing all
	// keys gives the occupied bit positions.
	var or uint64
	for _, k := range keys {
		or |= k
	}
	if or == 0 {
		return // all keys zero: already sorted
	}
	top := topByte(or)
	sortAtByte(keys, vals, top)
}

// topByte returns the index (0 = least significant) of the most significant
// non-zero byte of x.
func topByte(x uint64) int {
	b := 0
	for s := 32; s >= 8; s >>= 1 {
		if x>>(uint(s)) != 0 {
			x >>= uint(s)
			b += s / 8
		}
	}
	return b
}

// sortAtByte performs one American-flag pass on the given byte position and
// recurses into buckets on the next lower byte.
func sortAtByte(keys []uint64, vals []float64, byteIdx int) {
	n := len(keys)
	if n < 2 {
		return
	}
	if n <= insertionCutoff {
		insertionSort(keys, vals)
		return
	}
	shift := uint(byteIdx * 8)

	// Count bucket sizes.
	var count [256]int
	for _, k := range keys {
		count[(k>>shift)&0xff]++
	}

	// If everything landed in one bucket this byte is uninformative; recurse
	// directly (common when keys were squeezed into fewer bytes).
	var start [256]int
	var end [256]int
	sum := 0
	nonEmpty := 0
	for b := 0; b < 256; b++ {
		start[b] = sum
		sum += count[b]
		end[b] = sum
		if count[b] > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 1 {
		if byteIdx > 0 {
			sortAtByte(keys, vals, byteIdx-1)
		}
		return
	}

	// Permute in place: for each bucket, swap misplaced elements into their
	// home bucket until this bucket's range is fully settled.
	var cursor [256]int
	copy(cursor[:], start[:])
	for b := 0; b < 256; b++ {
		for cursor[b] < end[b] {
			k := keys[cursor[b]]
			home := int((k >> shift) & 0xff)
			if home == b {
				cursor[b]++
				continue
			}
			// Swap into the home bucket's next free slot.
			j := cursor[home]
			keys[cursor[b]], keys[j] = keys[j], k
			vals[cursor[b]], vals[j] = vals[j], vals[cursor[b]]
			cursor[home]++
		}
	}

	if byteIdx == 0 {
		return
	}
	for b := 0; b < 256; b++ {
		if count[b] > 1 {
			sortAtByte(keys[start[b]:end[b]], vals[start[b]:end[b]], byteIdx-1)
		}
	}
}

// insertionSort sorts a small slice of pairs.
func insertionSort(keys []uint64, vals []float64) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1] = keys[j]
			vals[j+1] = vals[j]
			j--
		}
		keys[j+1] = k
		vals[j+1] = v
	}
}

// IsSorted reports whether keys is non-decreasing.
func IsSorted(keys []uint64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			return false
		}
	}
	return true
}

// Passes returns the number of byte passes SortPairs will need for keys whose
// OR is x — the quantity the paper's key-squeezing argument minimizes (8
// passes for raw 8-byte keys, 4 for squeezed 4-byte keys).
func Passes(x uint64) int {
	if x == 0 {
		return 0
	}
	return topByte(x) + 1
}
