//go:build faultinject

package shard

// Shard-layer chaos: every injected fault at the new remote sites must end
// in a bit-identical product (retry, hedge, breaker or local fallback
// absorbed it) or a typed error — never a partial or corrupt C.

import (
	"context"
	"errors"
	"testing"
	"time"

	"pbspgemm"
	"pbspgemm/internal/faultinject"
)

// chaosCoordinator builds a coordinator with fast retry timings and a split
// grid so faults land on real multi-block products.
func chaosCoordinator(t *testing.T, eng *pbspgemm.Engine, hedge time.Duration) *Coordinator {
	t.Helper()
	c, err := New(Config{
		Local:          eng,
		Backends:       []Backend{NewEnginePool("p0", eng, 2), NewEnginePool("p1", eng, 2)},
		MaxBlockBytes:  16 << 10,
		MaxGridDim:     2,
		HedgeDelay:     hedge,
		MaxAttempts:    3,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestChaosBlockRPCMatrix walks the block-dispatch fault matrix: a single
// failure, a flaky backend (every other dispatch fails), a persistently
// failing site (every dispatch fails, forcing the terminal local fallback),
// and a panic at the dispatch boundary. Every cell must converge to the
// bit-identical product.
func TestChaosBlockRPCMatrix(t *testing.T) {
	eng := newEngine(t)
	a := intER(160, 5, 31)
	b := intER(160, 5, 32)
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name         string
		plan         faultinject.Plan
		wantFallback bool
	}{
		{"single dispatch error", faultinject.Plan{
			Site: faultinject.SiteBlockRPC, Hit: 1, Worker: -1, Mode: faultinject.ModeError}, false},
		{"flaky every other dispatch", faultinject.Plan{
			Site: faultinject.SiteBlockRPC, Hit: 1, Every: 2, Worker: -1, Mode: faultinject.ModeError}, false},
		{"every dispatch fails", faultinject.Plan{
			Site: faultinject.SiteBlockRPC, Hit: 1, Every: 1, Worker: -1, Mode: faultinject.ModeError}, true},
		{"panic at dispatch", faultinject.Plan{
			Site: faultinject.SiteBlockRPC, Hit: 2, Worker: -1, Mode: faultinject.ModePanic}, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			faultinject.Arm(tc.plan)
			t.Cleanup(faultinject.Disarm)
			c := chaosCoordinator(t, eng, -1)
			res, err := c.Multiply(context.Background(), a, b)
			if err != nil {
				t.Fatalf("Multiply under %s: %v", tc.name, err)
			}
			sameCSR(t, ref.C, res.C)
			if faultinject.Hits(faultinject.SiteBlockRPC) == 0 {
				t.Fatal("fault site was never reached")
			}
			if tc.wantFallback && res.Fallbacks == 0 {
				t.Fatalf("expected local fallbacks, got %+v", res)
			}
			if !tc.wantFallback && res.Retries == 0 && res.Fallbacks == 0 {
				t.Fatalf("fault did not surface in the ladder counters: %+v", res)
			}
		})
	}
}

// TestChaosSlowBackendHedges injects a persistent straggler at the dispatch
// boundary: with hedging enabled the product completes without waiting out
// every slow attempt, the result is still bit-identical, and the hedge
// counter proves re-dispatch happened.
func TestChaosSlowBackendHedges(t *testing.T) {
	eng := newEngine(t)
	a := intER(128, 4, 33)
	b := intER(128, 4, 34)
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatal(err)
	}
	// Every odd dispatch sleeps 150ms; the hedge fires after 20ms and the
	// re-dispatched attempt (an even occurrence) runs at full speed.
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteBlockRPC, Hit: 1, Every: 2, Worker: -1,
		Mode: faultinject.ModeSleep, SleepNanos: int64(150 * time.Millisecond)})
	t.Cleanup(faultinject.Disarm)
	c := chaosCoordinator(t, eng, 20*time.Millisecond)
	start := time.Now()
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply with slow backend: %v", err)
	}
	sameCSR(t, ref.C, res.C)
	if res.Hedges == 0 {
		t.Fatalf("no hedges despite straggling dispatches (elapsed %v)", time.Since(start))
	}
}

// TestChaosReduceFailureIsTypedNeverPartial injects a failure into the
// C(i,j) reduce — after every remote block already succeeded. The product
// must return a typed *ReduceError naming the block and no C at all.
func TestChaosReduceFailureIsTypedNeverPartial(t *testing.T) {
	eng := newEngine(t)
	a := intER(128, 4, 35)
	b := intER(128, 4, 36)
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteReduce, Hit: 1, Worker: -1, Mode: faultinject.ModeError})
	t.Cleanup(faultinject.Disarm)
	c := chaosCoordinator(t, eng, -1)
	res, err := c.Multiply(context.Background(), a, b)
	if err == nil {
		t.Fatalf("Multiply succeeded despite injected reduce failure (res=%+v)", res)
	}
	var re *ReduceError
	if !errors.As(err, &re) {
		t.Fatalf("error = %T %v, want *ReduceError", err, err)
	}
	var fault faultinject.Fault
	if !errors.As(err, &fault) || fault.Site != faultinject.SiteReduce {
		t.Fatalf("ReduceError does not carry the injected fault: %v", err)
	}
	if res != nil {
		t.Fatal("a failed product must not return a partial result")
	}
}

// TestChaosFaultSeedsConverge sweeps single-shot error injections across
// the first N occurrences of the dispatch site: wherever the fault lands,
// the ladder converges to the same bytes.
func TestChaosFaultSeedsConverge(t *testing.T) {
	eng := newEngine(t)
	a := intER(96, 4, 37)
	b := intER(96, 4, 38)
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatal(err)
	}
	for hit := int64(1); hit <= 6; hit++ {
		faultinject.Arm(faultinject.Plan{
			Site: faultinject.SiteBlockRPC, Hit: hit, Worker: -1, Mode: faultinject.ModeError})
		c := chaosCoordinator(t, eng, -1)
		res, err := c.Multiply(context.Background(), a, b)
		faultinject.Disarm()
		if err != nil {
			t.Fatalf("hit=%d: %v", hit, err)
		}
		sameCSR(t, ref.C, res.C)
	}
}
