package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pbspgemm"
	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/matrix"
	"pbspgemm/internal/metrics"
)

// hedgeMinSamples is how many successful block latencies must exist before
// the hedge delay switches from Config.HedgeDelay to the observed p99.
const hedgeMinSamples = 8

// Coordinator fans 2D block-sharded products out over its backends and
// reduces the partials — see the package comment for the failure ladder.
// Safe for concurrent use.
type Coordinator struct {
	cfg      Config
	backends []Backend
	breakers []*breaker
	now      func() time.Time

	rr uint64 // round-robin cursor over backends

	// jitter is the xorshift state behind the full-jitter backoff; guarded
	// by jmu (cheap: one draw per retry, retries are the rare path).
	jmu    sync.Mutex
	jitter uint64

	// lat is the sliding window of successful block latencies (seconds)
	// the hedge delay derives its p99 from.
	lmu  sync.Mutex
	lat  []float64
	lpos int

	products, blocks, retries, hedges, fallbacks atomic.Int64
}

// New builds a Coordinator over cfg.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Local == nil {
		return nil, fmt.Errorf("shard: Config.Local engine is required")
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg: cfg,
		now: time.Now,
		lat: make([]float64, 0, 64),
	}
	c.jitter = cfg.Seed
	if c.jitter == 0 {
		c.jitter = 0x9e3779b97f4a7c15
	}
	c.backends = cfg.Backends
	if len(c.backends) == 0 {
		c.backends = []Backend{NewEnginePool("local", cfg.Local, 1, cfg.Options...)}
	}
	c.breakers = make([]*breaker, len(c.backends))
	for i := range c.breakers {
		c.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, func() time.Time { return c.now() })
	}
	return c, nil
}

// Status is the coordinator's slice of a /metrics snapshot.
type Status struct {
	Products  int64                    `json:"products"`
	Blocks    int64                    `json:"blocks"`
	Retries   int64                    `json:"retries"`
	Hedges    int64                    `json:"hedges"`
	Fallbacks int64                    `json:"fallbacks"`
	Peers     map[string]BreakerStatus `json:"peers"`
}

// Status snapshots the cumulative counters and every backend's breaker.
func (c *Coordinator) Status() Status {
	s := Status{
		Products:  c.products.Load(),
		Blocks:    c.blocks.Load(),
		Retries:   c.retries.Load(),
		Hedges:    c.hedges.Load(),
		Fallbacks: c.fallbacks.Load(),
		Peers:     make(map[string]BreakerStatus, len(c.backends)),
	}
	for i, be := range c.backends {
		s.Peers[be.Name()] = c.breakers[i].status()
	}
	return s
}

// Multiply computes C = A·B sharded over the backends. The result is
// bit-identical to a single-node Engine.Multiply with the PB kernel
// whenever the grid keeps the inner dimension whole or the values' sums are
// exact (integer-valued matrices — an inner split regroups the float
// additions of the k-reduce); it is always deterministic for a given grid,
// and re-dispatch (retry, hedge, fallback) can never change the bytes. On
// failure the error is typed (*BlockError, *ReduceError, or the ctx error)
// and no C is returned — never a partial product.
func (c *Coordinator) Multiply(ctx context.Context, a, b *pbspgemm.CSR) (*Result, error) {
	start := c.now()
	gp, err := c.partition(ctx, a, b)
	if err != nil {
		return nil, err
	}
	c.products.Add(1)
	c.blocks.Add(int64(len(gp.Blocks)))

	res := &Result{Grid: gp.Grid, Blocks: len(gp.Blocks), Flops: pbspgemm.Flops(a, b)}
	partials := make([]*pbspgemm.CSR, len(gp.Blocks))
	var stats productStats

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel() // stop sibling blocks: the product cannot complete
		}
		errMu.Unlock()
	}
	// Fan out: every block is independent; concurrency is bounded by the
	// backends themselves (pool semaphores, peer connection limits), so the
	// coordinator dispatches all blocks and lets the ladder pace them.
	for i := range gp.Blocks {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			blk := &gp.Blocks[idx]
			p, err := c.runBlock(runCtx, blk, &stats)
			if err != nil {
				fail(err)
				return
			}
			partials[idx] = p
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		// Prefer reporting the caller's own cancellation over a block error
		// it induced.
		if ctx.Err() != nil && !errors.As(firstErr, new(*BlockError)) {
			return nil, ctx.Err()
		}
		return nil, firstErr
	}

	cblocks, err := c.reduce(gp, partials)
	if err != nil {
		return nil, err
	}
	res.C = assemble(gp, cblocks)
	res.Retries = stats.retries.Load()
	res.Hedges = stats.hedges.Load()
	res.Fallbacks = stats.fallbacks.Load()
	res.Elapsed = c.now().Sub(start)
	return res, nil
}

// productStats accumulates one product's walk down the failure ladder.
type productStats struct {
	retries, hedges, fallbacks atomic.Int64
}

// partition chooses the grid: starting from 1×1×1, the dimension whose
// per-block extent is largest doubles until every block's predicted
// footprint fits MaxBlockBytes (or the grid hits MaxGridDim — peers may
// then still shed oversized blocks, and the retry ladder absorbs it).
func (c *Coordinator) partition(ctx context.Context, a, b *pbspgemm.CSR) (*pbspgemm.GridPlan, error) {
	if c.cfg.MaxBlockBytes <= 0 {
		// Splitting is off: the product is one 1×1×1 block on the whole
		// inputs. No planning pass — this keeps the sharded path within a
		// few percent of a direct Engine.Multiply for single-node setups.
		if a.NumCols != b.NumRows {
			return nil, fmt.Errorf("shard: inner dimensions disagree (%dx%d)·(%dx%d): %w",
				a.NumRows, a.NumCols, b.NumRows, b.NumCols, matrix.ErrShape)
		}
		return &pbspgemm.GridPlan{
			Grid:         pbspgemm.Grid{Rows: 1, Cols: 1, Inner: 1},
			RowOffsets:   []int32{0, a.NumRows},
			ColOffsets:   []int32{0, b.NumCols},
			InnerOffsets: []int32{0, a.NumCols},
			A:            [][]*pbspgemm.CSR{{a}},
			B:            [][]*pbspgemm.CSR{{b}},
			Blocks:       []pbspgemm.BlockPlan{{A: a, B: b}},
		}, nil
	}
	g := pbspgemm.Grid{Rows: 1, Cols: 1, Inner: 1}
	for {
		gp, err := c.cfg.Local.PlanBlocks(ctx, a, b, g, c.cfg.Options...)
		if err != nil {
			return nil, err
		}
		if c.cfg.MaxBlockBytes <= 0 || gp.MaxFootprintBytes <= c.cfg.MaxBlockBytes {
			return gp, nil
		}
		ng, ok := c.grow(gp.Grid, a, b)
		if !ok {
			return gp, nil
		}
		g = ng
	}
}

// grow doubles the grid dimension currently covering the largest extent per
// band, bounded by MaxGridDim and the matrix extents; ok=false when no
// dimension can grow further.
func (c *Coordinator) grow(g pbspgemm.Grid, a, b *pbspgemm.CSR) (pbspgemm.Grid, bool) {
	type dim struct {
		parts  *int
		extent int32
	}
	dims := []dim{
		{&g.Rows, a.NumRows},
		{&g.Cols, b.NumCols},
		{&g.Inner, a.NumCols},
	}
	best := -1
	var bestBand int64 = -1
	for i, d := range dims {
		if *d.parts >= c.cfg.MaxGridDim || int32(*d.parts) >= d.extent {
			continue
		}
		band := int64(d.extent) / int64(*d.parts)
		if band > bestBand {
			best, bestBand = i, band
		}
	}
	if best < 0 {
		return g, false
	}
	*dims[best].parts *= 2
	if *dims[best].parts > c.cfg.MaxGridDim {
		*dims[best].parts = c.cfg.MaxGridDim
	}
	return g, true
}

// runBlock walks one block down the failure ladder: pick a live backend,
// attempt (hedged), classify, back off, retry — and when attempts are
// exhausted or no backend is live, recompute on the local engine under the
// budgeted tiled path. Returns the block's C or a typed *BlockError.
func (c *Coordinator) runBlock(ctx context.Context, blk *pbspgemm.BlockPlan, stats *productStats) (*pbspgemm.CSR, error) {
	var lastErr error
	attempts := 0
	for attempts < c.cfg.MaxAttempts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bi := c.pick(ctx, -1)
		if bi < 0 {
			break // every breaker open: straight to the terminal rung
		}
		p, err := c.hedged(ctx, bi, blk, stats)
		if err == nil {
			return p, nil
		}
		lastErr = err
		attempts++
		c.retries.Add(1)
		stats.retries.Add(1)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !retryable(err) {
			break
		}
		if attempts >= c.cfg.MaxAttempts {
			break
		}
		if err := c.backoff(ctx, attempts, err); err != nil {
			return nil, err
		}
	}
	// Terminal rung: the local engine under the budgeted tiled path.
	// Bit-identical to what any backend would have produced (same pinned
	// kernel, deterministic across threads and budgets).
	c.fallbacks.Add(1)
	stats.fallbacks.Add(1)
	p, err := c.localFallback(ctx, blk)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if lastErr == nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("%v (after backend error: %w)", err, lastErr)
		}
		return nil, &BlockError{I: blk.I, J: blk.J, K: blk.K, Attempts: attempts, Err: lastErr}
	}
	return p, nil
}

// localFallback recomputes blk on the local engine, budget-tiled when
// configured.
func (c *Coordinator) localFallback(ctx context.Context, blk *pbspgemm.BlockPlan) (*pbspgemm.CSR, error) {
	opts := append(append([]pbspgemm.Option{}, c.cfg.Options...), pbspgemm.WithAlgorithm(pbspgemm.PB))
	if c.cfg.FallbackBudgetBytes > 0 {
		opts = append(opts, pbspgemm.WithMemoryBudget(c.cfg.FallbackBudgetBytes))
	}
	res, err := c.cfg.Local.Multiply(ctx, blk.A, blk.B, opts...)
	if err != nil {
		return nil, err
	}
	return res.C, nil
}

// pick returns the index of the next live backend after the round-robin
// cursor, skipping exclude and every backend whose breaker denies traffic;
// a half-open breaker's probe (Backend.Probe) runs here, so a dark peer
// costs one health check, not a block attempt. Returns -1 when no backend
// is live.
func (c *Coordinator) pick(ctx context.Context, exclude int) int {
	n := len(c.backends)
	start := int(atomic.AddUint64(&c.rr, 1))
	for off := 0; off < n; off++ {
		i := (start + off) % n
		if i == exclude {
			continue
		}
		ok, probe := c.breakers[i].allow()
		if !ok {
			continue
		}
		if probe {
			pctx, pcancel := context.WithTimeout(ctx, 2*time.Second)
			err := c.backends[i].Probe(pctx)
			pcancel()
			if err != nil {
				c.breakers[i].failure()
				continue
			}
			// The probe passed; the block attempt itself is the half-open
			// trial whose outcome closes or re-opens the breaker.
		}
		return i
	}
	return -1
}

// outcome is one attempt's result.
type outcome struct {
	c   *pbspgemm.CSR
	err error
}

// hedged runs one block attempt on backend bi with straggler hedging: if
// the primary has not finished after the p99-derived delay, the same block
// is re-dispatched on a different backend; the first result wins and the
// loser is cancelled. All launched attempts are joined before return, so a
// finished product never leaks goroutines.
func (c *Coordinator) hedged(ctx context.Context, bi int, blk *pbspgemm.BlockPlan, stats *productStats) (*pbspgemm.CSR, error) {
	actx := ctx
	cancel := context.CancelFunc(func() {})
	if c.cfg.BlockTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.cfg.BlockTimeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	ch := make(chan outcome, 2)
	launched := 1
	go c.attempt(actx, bi, blk, ch)

	var timer *time.Timer
	var hedgeC <-chan time.Time
	if d := c.hedgeDelay(); d >= 0 {
		timer = time.NewTimer(d)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var firstErr error
	for {
		select {
		case out := <-ch:
			if out.err == nil {
				cancel()
				for launched > 1 {
					<-ch // join the cancelled loser
					launched--
				}
				return out.c, nil
			}
			launched--
			if firstErr == nil {
				firstErr = out.err
			}
			if launched == 0 {
				return nil, firstErr
			}
			// One attempt failed but the other is still running: let it
			// finish (it may win).
		case <-hedgeC:
			hedgeC = nil
			if alt := c.pick(ctx, bi); alt >= 0 {
				c.hedges.Add(1)
				stats.hedges.Add(1)
				launched++
				go c.attempt(actx, alt, blk, ch)
			}
		}
	}
}

// attempt runs one block multiply on backend bi, feeding the breaker and
// the latency window. A panic anywhere below (a backend bug, an injected
// fault) is contained to this attempt. Cancellation of our own actx — the
// hedge loser, the product aborting — is not charged to the backend.
func (c *Coordinator) attempt(ctx context.Context, bi int, blk *pbspgemm.BlockPlan, ch chan<- outcome) {
	var p *pbspgemm.CSR
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = fmt.Errorf("shard: attempt panic on %s: %v", c.backends[bi].Name(), v)
			}
		}()
		if faultinject.Enabled {
			if ferr := faultinject.FireErr(faultinject.SiteBlockRPC, bi); ferr != nil {
				return &transientError{err: ferr}
			}
		}
		t0 := c.now()
		p, err = c.backends[bi].Multiply(ctx, blk.A, blk.B)
		if err == nil {
			c.observe(c.now().Sub(t0))
		}
		return err
	}()
	switch {
	case err == nil:
		c.breakers[bi].success()
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		// Our own cancellation (hedge winner elsewhere, product aborting):
		// no verdict on the backend.
		c.breakers[bi].cancelTrial()
	default:
		// Real failures — including this attempt blowing its deadline —
		// count against the backend.
		c.breakers[bi].failure()
	}
	ch <- outcome{c: p, err: err}
}

// transientError marks an injected fault as a retryable infrastructure
// failure.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Retryable() bool { return true }

// observe folds one successful block latency into the sliding window.
func (c *Coordinator) observe(d time.Duration) {
	c.lmu.Lock()
	if len(c.lat) < cap(c.lat) {
		c.lat = append(c.lat, d.Seconds())
	} else {
		c.lat[c.lpos] = d.Seconds()
		c.lpos = (c.lpos + 1) % len(c.lat)
	}
	c.lmu.Unlock()
}

// hedgeDelay is the straggler threshold: the observed p99 block latency
// once enough samples exist, Config.HedgeDelay before that; never below
// 1ms (a zero delay would hedge every block). Negative Config.HedgeDelay
// disables hedging (-1 returned).
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay < 0 {
		return -1
	}
	c.lmu.Lock()
	var d time.Duration
	if len(c.lat) >= hedgeMinSamples {
		d = time.Duration(metrics.Quantile(c.lat, 0.99) * float64(time.Second))
	} else {
		d = c.cfg.HedgeDelay
	}
	c.lmu.Unlock()
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// backoff sleeps the full-jitter exponential delay before retry n (1-based
// count of failures so far), honoring a server-sent Retry-After as a floor
// and the context as a hard stop.
func (c *Coordinator) backoff(ctx context.Context, n int, cause error) error {
	ceil := c.cfg.RetryBaseDelay << (n - 1)
	if ceil > c.cfg.RetryMaxDelay || ceil <= 0 {
		ceil = c.cfg.RetryMaxDelay
	}
	d := time.Duration(c.rand() % uint64(ceil+1))
	if ra := retryAfterOf(cause); ra > d {
		d = ra
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rand is one xorshift draw (seeded by Config.Seed: chaos runs replay).
func (c *Coordinator) rand() uint64 {
	c.jmu.Lock()
	x := c.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jitter = x
	c.jmu.Unlock()
	return x
}

// reduce combines each C(i,j)'s partial products over k in ascending order
// with EWiseAdd — the same left-to-right direction as the single-node fold.
// Blocks are laid out k-fastest in GridPlan.Blocks, so the partials of
// C(i,j) are the contiguous run starting at (i·Cols+j)·Inner.
func (c *Coordinator) reduce(gp *pbspgemm.GridPlan, partials []*pbspgemm.CSR) ([][]*pbspgemm.CSR, error) {
	g := gp.Grid
	out := make([][]*pbspgemm.CSR, g.Rows)
	for i := 0; i < g.Rows; i++ {
		out[i] = make([]*pbspgemm.CSR, g.Cols)
		for j := 0; j < g.Cols; j++ {
			if faultinject.Enabled {
				if err := faultinject.FireErr(faultinject.SiteReduce, i*g.Cols+j); err != nil {
					return nil, &ReduceError{I: i, J: j, Err: err}
				}
			}
			base := (i*g.Cols + j) * g.Inner
			acc := partials[base]
			for k := 1; k < g.Inner; k++ {
				sum, err := pbspgemm.EWiseAdd(pbspgemm.Arithmetic(),
					pbspgemm.Float64Matrix(acc), pbspgemm.Float64Matrix(partials[base+k]))
				if err != nil {
					return nil, &ReduceError{I: i, J: j, Err: err}
				}
				acc = pbspgemm.Float64CSR(sum)
			}
			out[i][j] = acc
		}
	}
	return out, nil
}

// assemble stitches the grid of C(i,j) blocks into the full canonical CSR.
// Column blocks are ascending index ranges, so concatenating each local
// row's segments left to right lands sorted.
func assemble(gp *pbspgemm.GridPlan, cblocks [][]*pbspgemm.CSR) *pbspgemm.CSR {
	g := gp.Grid
	if g.Rows == 1 && g.Cols == 1 {
		return cblocks[0][0]
	}
	rows := gp.RowOffsets[g.Rows]
	cols := gp.ColOffsets[g.Cols]
	var nnz int64
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			nnz += cblocks[i][j].NNZ()
		}
	}
	out := &pbspgemm.CSR{
		NumRows: rows, NumCols: cols,
		RowPtr: make([]int64, rows+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]float64, nnz),
	}
	var p int64
	for i := 0; i < g.Rows; i++ {
		bandRows := gp.RowOffsets[i+1] - gp.RowOffsets[i]
		for lr := int32(0); lr < bandRows; lr++ {
			r := gp.RowOffsets[i] + lr
			for j := 0; j < g.Cols; j++ {
				blk := cblocks[i][j]
				off := gp.ColOffsets[j]
				for q := blk.RowPtr[lr]; q < blk.RowPtr[lr+1]; q++ {
					out.ColIdx[p] = blk.ColIdx[q] + off
					out.Val[p] = blk.Val[q]
					p++
				}
			}
			out.RowPtr[r+1] = p
		}
	}
	return out
}
