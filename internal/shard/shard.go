// Package shard is the multi-node unit of scale-out for pbspgemm: a 2D
// block partitioner plus a resilient coordinator that fans C(i,j) =
// Σ_k A(i,k)·B(k,j) block multiplies out over a set of Backends (an
// in-process Engine pool, remote pbspgemmd peers) and reduces the partial
// products with the existing EWiseAdd.
//
// Robustness is the headline, not an afterthought. Failures across process
// boundaries are the common case, so every block walks a failure ladder
// that ends in a correct product or a typed error — never a partial or
// corrupt C:
//
//  1. per-block deadlines, with exponential backoff + full jitter on
//     retryable failures (connect errors, 429 — Retry-After honored as a
//     floor — and 5xx);
//  2. hedged re-dispatch of straggler blocks after a p99-derived delay,
//     first result wins and the loser is cancelled;
//  3. a per-peer circuit breaker (closed → open → half-open, driven by
//     consecutive failures and /healthz probes) that routes around dark
//     peers without wasting attempts on them;
//  4. the terminal rung: any block whose retries and hedges are exhausted
//     is recomputed on the local Engine under the budgeted tiled path.
//
// The fallback is bit-identical by construction: every backend runs the
// same deterministic PB kernel (pinned algorithm, bit-identical across
// thread counts and memory budgets), so re-executing a block locally —
// or on a hedge — can never change the bytes of C. The grid is chosen from
// Engine.PlanBlocks' per-block PredictedFootprintBytes, so every block
// passes the target node's admission control instead of bouncing off it
// with 429s.
package shard

import (
	"errors"
	"fmt"
	"time"

	"pbspgemm"
)

// Config sizes a Coordinator. Local is required; zero fields select the
// documented defaults.
type Config struct {
	// Local is the engine used for planning/partitioning and for the
	// terminal local fallback. Required.
	Local *pbspgemm.Engine

	// Backends execute block multiplies. Empty defaults to a single
	// in-process pool over Local (NewEnginePool).
	Backends []Backend

	// MaxBlockBytes is the per-block predicted-footprint target: the grid
	// grows until every block's PredictedFootprintBytes fits under it (so
	// blocks pass the target's admission control), bounded by MaxGridDim.
	// <= 0 disables splitting: the whole product is one 1×1×1 block.
	MaxBlockBytes int64
	// MaxGridDim bounds each grid dimension. Default 16.
	MaxGridDim int

	// BlockTimeout is the per-block attempt deadline (primary + hedge
	// together). Default 60s.
	BlockTimeout time.Duration
	// MaxAttempts is how many backend attempts one block gets before the
	// terminal local fallback. Default 3.
	MaxAttempts int
	// RetryBaseDelay seeds the exponential backoff between attempts; the
	// delay before attempt n is drawn uniformly from
	// [0, min(RetryMaxDelay, RetryBaseDelay·2^(n-1))] (full jitter), with
	// a server-sent Retry-After honored as a floor. Defaults 25ms / 2s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// HedgeDelay is the straggler re-dispatch delay until enough latency
	// samples exist; after hedgeMinSamples successful blocks it is replaced
	// by the observed p99 block latency (never below 1ms). Default 250ms.
	// Negative disables hedging.
	HedgeDelay time.Duration

	// BreakerThreshold consecutive failures open a backend's breaker;
	// after BreakerCooldown it half-opens and one probe (Backend.Probe,
	// e.g. GET /healthz) decides whether traffic resumes. Defaults 3 / 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// FallbackBudgetBytes is the MemoryBudgetBytes of the terminal local
	// fallback — the budgeted tiled path bounds the working set of a block
	// that may have been sized for a bigger peer. 0 runs unbudgeted
	// (bit-identical either way). Default 0.
	FallbackBudgetBytes int64

	// Seed seeds the coordinator's jitter RNG; 0 selects a fixed default,
	// keeping chaos runs replayable.
	Seed uint64

	// Options are per-block engine options applied to local execution and
	// planning (threads, bins...). The algorithm is always pinned to PB —
	// column kernels fold duplicates in a different order, and cross-backend
	// bit-identity requires one fold order everywhere.
	Options []pbspgemm.Option
}

// Defaults for the Config fields.
const (
	DefaultMaxGridDim       = 16
	DefaultBlockTimeout     = 60 * time.Second
	DefaultMaxAttempts      = 3
	DefaultRetryBaseDelay   = 25 * time.Millisecond
	DefaultRetryMaxDelay    = 2 * time.Second
	DefaultHedgeDelay       = 250 * time.Millisecond
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxGridDim == 0 {
		c.MaxGridDim = DefaultMaxGridDim
	}
	if c.BlockTimeout == 0 {
		c.BlockTimeout = DefaultBlockTimeout
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if c.RetryMaxDelay == 0 {
		c.RetryMaxDelay = DefaultRetryMaxDelay
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = DefaultHedgeDelay
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	return c
}

// Result is one completed sharded product.
type Result struct {
	C    *pbspgemm.CSR
	Grid pbspgemm.Grid
	// Blocks is the number of block multiplies the grid induced; Retries,
	// Hedges and Fallbacks count this product's walk down the failure
	// ladder (all zero on a healthy fleet).
	Blocks    int
	Retries   int64
	Hedges    int64
	Fallbacks int64
	// Flops is the symbolic multiplication count of the full product.
	Flops   int64
	Elapsed time.Duration
}

// BlockError is the typed terminal error of one block: every rung of the
// failure ladder was exhausted, including the local fallback. The product
// that contained it returned no C at all.
type BlockError struct {
	I, J, K  int
	Attempts int
	Err      error
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("shard: block (%d,%d,%d) failed after %d attempts and local fallback: %v",
		e.I, e.J, e.K, e.Attempts, e.Err)
}

func (e *BlockError) Unwrap() error { return e.Err }

// ReduceError is the typed error of a failed C(i,j) reduce — remote work
// succeeded but the local combine did not; the product returned no C.
type ReduceError struct {
	I, J int
	Err  error
}

func (e *ReduceError) Error() string {
	return fmt.Sprintf("shard: reduce of block C(%d,%d) failed: %v", e.I, e.J, e.Err)
}

func (e *ReduceError) Unwrap() error { return e.Err }

// retryabler is implemented by backend errors that know whether a retry can
// help (serve.RemoteError does); retryAfterer by ones carrying a
// server-sent backoff floor (a 429's Retry-After).
type retryabler interface{ Retryable() bool }
type retryAfterer interface{ RetryAfter() time.Duration }

// retryable classifies an attempt error: context errors never retry (the
// caller is gone or the block deadline will re-fire identically elsewhere,
// but the ladder still falls through to the fallback), errors that say so
// themselves are believed, and everything else — including contained panics
// — is retryable: the next backend may simply not share the failure.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var r retryabler
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return true
}

// retryAfterOf extracts a server-sent backoff floor, if any.
func retryAfterOf(err error) time.Duration {
	var ra retryAfterer
	if errors.As(err, &ra) {
		return ra.RetryAfter()
	}
	return 0
}
