package shard

import (
	"sync"
	"time"
)

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// stateNames for BreakerStatus and logs.
var stateNames = [...]string{"closed", "open", "half-open"}

// breaker is a per-backend circuit breaker: BreakerThreshold consecutive
// failures open it (no traffic), after BreakerCooldown it half-opens and
// admits exactly one trial at a time; the trial's outcome closes or
// re-opens it. Safe for concurrent use.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    int
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // a half-open trial is in flight

	opens, probes int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether the backend may take traffic right now; probe is
// true when the caller holds the single half-open trial slot and must
// resolve it with success, failure or cancelTrial.
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		b.probes++
		return true, true
	default: // half-open: one trial at a time
		if b.probing {
			return false, false
		}
		b.probing = true
		b.probes++
		return true, true
	}
}

// success records a completed attempt: from any state the breaker closes
// and the consecutive-failure count resets.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed attempt: a half-open trial re-opens immediately,
// a closed breaker opens at the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.open()
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.open()
		}
	case breakerOpen:
		// Late failure from an attempt that started before the open (e.g. a
		// straggler timing out); refresh the cooldown clock.
		b.openedAt = b.now()
	}
}

// open transitions to open under the lock.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.opens++
}

// cancelTrial releases a half-open trial slot without a verdict (the
// attempt was cancelled by a hedge winner, not by the backend failing), so
// the breaker neither closes on no evidence nor deadlocks waiting for one.
func (b *breaker) cancelTrial() {
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// BreakerStatus is one backend's breaker state as /metrics and /readyz
// report it.
type BreakerStatus struct {
	// State is closed, open or half-open.
	State string `json:"state"`
	// ConsecutiveFailures is the current run of failures while closed.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Opens counts closed/half-open → open transitions; Probes counts
	// half-open trial admissions.
	Opens  int64 `json:"opens"`
	Probes int64 `json:"probes"`
}

// status snapshots the breaker.
func (b *breaker) status() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{
		State:               stateNames[b.state],
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		Probes:              b.probes,
	}
}
