package shard

import (
	"context"

	"pbspgemm"
)

// Backend executes one block multiply somewhere — the coordinator neither
// knows nor cares where. Implementations must be safe for concurrent use,
// honor ctx, and return errors that classify themselves via Retryable()
// (and RetryAfter() for 429-style sheds) when the default
// everything-retryable classification is wrong.
//
// The two production implementations are NewEnginePool (in-process) and the
// serve package's PeerClient (remote pbspgemmd over HTTP).
type Backend interface {
	// Name identifies the backend in metrics, breaker state and errors.
	Name() string
	// Multiply computes a·b with the coordinator's pinned PB kernel.
	// The result must be caller-owned.
	Multiply(ctx context.Context, a, b *pbspgemm.CSR) (*pbspgemm.CSR, error)
	// Probe is the cheap health check a half-open breaker runs before
	// trusting the backend with a real block (a peer GETs /healthz).
	Probe(ctx context.Context) error
}

// EnginePool is the in-process Backend: block multiplies run on a local
// Engine, at most workers at a time, so a sharded product cannot starve the
// serving engine's other callers.
type EnginePool struct {
	name string
	eng  *pbspgemm.Engine
	sem  chan struct{}
	opts []pbspgemm.Option
}

// NewEnginePool wraps eng as a Backend running at most workers concurrent
// block multiplies (workers < 1 means 1). opts apply per block; the
// algorithm is pinned to PB for cross-backend bit-identity.
func NewEnginePool(name string, eng *pbspgemm.Engine, workers int, opts ...pbspgemm.Option) *EnginePool {
	if workers < 1 {
		workers = 1
	}
	return &EnginePool{
		name: name,
		eng:  eng,
		sem:  make(chan struct{}, workers),
		opts: append(append([]pbspgemm.Option{}, opts...), pbspgemm.WithAlgorithm(pbspgemm.PB)),
	}
}

// Name implements Backend.
func (p *EnginePool) Name() string { return p.name }

// Multiply implements Backend.
func (p *EnginePool) Multiply(ctx context.Context, a, b *pbspgemm.CSR) (*pbspgemm.CSR, error) {
	select {
	case p.sem <- struct{}{}:
		defer func() { <-p.sem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	res, err := p.eng.Multiply(ctx, a, b, p.opts...)
	if err != nil {
		return nil, err
	}
	return res.C, nil
}

// Probe implements Backend; the local engine is always reachable.
func (p *EnginePool) Probe(context.Context) error { return nil }
