package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"pbspgemm"
)

// intER is an ER matrix with the random float values replaced by small
// integers: integer products and sums are exact in float64, so a k-split
// reduce regrouping the additions still lands on the same bytes as the
// single-node fold — the bit-identity tests below need that.
func intER(n int32, d int, seed uint64) *pbspgemm.CSR {
	m := pbspgemm.NewER(n, d, seed)
	for i := range m.Val {
		m.Val[i] = float64(i%7 + 1)
	}
	return m
}

func newEngine(t *testing.T) *pbspgemm.Engine {
	t.Helper()
	eng, err := pbspgemm.NewEngine(pbspgemm.WithThreads(2))
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

func sameCSR(t *testing.T, want, got *pbspgemm.CSR) {
	t.Helper()
	if want.NumRows != got.NumRows || want.NumCols != got.NumCols {
		t.Fatalf("shape mismatch: want %dx%d got %dx%d", want.NumRows, want.NumCols, got.NumRows, got.NumCols)
	}
	if want.NNZ() != got.NNZ() {
		t.Fatalf("nnz mismatch: want %d got %d", want.NNZ(), got.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: want %d got %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	for i := range want.ColIdx {
		if want.ColIdx[i] != got.ColIdx[i] {
			t.Fatalf("ColIdx[%d]: want %d got %d", i, want.ColIdx[i], got.ColIdx[i])
		}
		if want.Val[i] != got.Val[i] {
			t.Fatalf("Val[%d]: want %v got %v (not bit-identical)", i, want.Val[i], got.Val[i])
		}
	}
}

// stubBackend scripts per-call behavior for ladder tests.
type stubBackend struct {
	name string
	eng  *pbspgemm.Engine // compute result when fn says succeed

	mu    sync.Mutex
	calls int
	fn    func(call int, ctx context.Context) error // nil error = compute and succeed

	probeErr error
}

func (s *stubBackend) Name() string { return s.name }

func (s *stubBackend) Multiply(ctx context.Context, a, b *pbspgemm.CSR) (*pbspgemm.CSR, error) {
	s.mu.Lock()
	s.calls++
	call := s.calls
	fn := s.fn
	s.mu.Unlock()
	if fn != nil {
		if err := fn(call, ctx); err != nil {
			return nil, err
		}
	}
	res, err := s.eng.Multiply(ctx, a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		return nil, err
	}
	return res.C, nil
}

func (s *stubBackend) Probe(context.Context) error { return s.probeErr }

func (s *stubBackend) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// permanentError is a non-retryable failure.
type permanentError struct{ msg string }

func (e *permanentError) Error() string   { return e.msg }
func (e *permanentError) Retryable() bool { return false }

func TestShardedBitIdenticalAcrossGrids(t *testing.T) {
	eng := newEngine(t)
	a := intER(200, 6, 1)
	b := intER(200, 6, 2)
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatalf("reference multiply: %v", err)
	}

	for _, tc := range []struct {
		name          string
		maxBlockBytes int64
		maxGridDim    int
	}{
		{"1x1x1 fast path", 0, 0},
		{"split grid small blocks", 1, 2},
		{"split grid medium blocks", 64 << 10, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(Config{
				Local:         eng,
				MaxBlockBytes: tc.maxBlockBytes,
				MaxGridDim:    tc.maxGridDim,
				HedgeDelay:    -1,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			res, err := c.Multiply(context.Background(), a, b)
			if err != nil {
				t.Fatalf("sharded multiply: %v", err)
			}
			if tc.maxBlockBytes > 0 && res.Grid.Blocks() == 1 {
				t.Fatalf("grid did not split: %v", res.Grid)
			}
			sameCSR(t, ref.C, res.C)
		})
	}
}

func TestPartitionRespectsMaxBlockBytes(t *testing.T) {
	eng := newEngine(t)
	c, err := New(Config{Local: eng, MaxBlockBytes: 32 << 10, MaxGridDim: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a := intER(512, 8, 3)
	b := intER(512, 8, 4)
	gp, err := c.partition(context.Background(), a, b)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if gp.Grid.Blocks() == 1 {
		t.Fatalf("expected a split grid, got %v", gp.Grid)
	}
	if gp.MaxFootprintBytes > 32<<10 {
		// The grid may cap out at MaxGridDim without fitting; only fail when
		// growth stopped early.
		if gp.Grid.Rows < 8 && gp.Grid.Cols < 8 && gp.Grid.Inner < 8 {
			t.Fatalf("grid %v stopped growing at footprint %d > budget", gp.Grid, gp.MaxFootprintBytes)
		}
	}
}

func TestRetryThenSuccess(t *testing.T) {
	eng := newEngine(t)
	be := &stubBackend{name: "flaky", eng: eng, fn: func(call int, _ context.Context) error {
		if call == 1 {
			return fmt.Errorf("connection reset")
		}
		return nil
	}}
	c, err := New(Config{
		Local:          eng,
		Backends:       []Backend{be},
		HedgeDelay:     -1,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := intER(64, 4, 5), intER(64, 4, 6)
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	if res.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", res.Retries)
	}
	if res.Fallbacks != 0 {
		t.Fatalf("Fallbacks = %d, want 0", res.Fallbacks)
	}
	if be.callCount() != 2 {
		t.Fatalf("backend calls = %d, want 2", be.callCount())
	}
	ref, _ := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	sameCSR(t, ref.C, res.C)
}

func TestPermanentErrorSkipsRetriesFallsBack(t *testing.T) {
	eng := newEngine(t)
	be := &stubBackend{name: "broken", eng: eng, fn: func(int, context.Context) error {
		return &permanentError{msg: "bad request"}
	}}
	c, err := New(Config{Local: eng, Backends: []Backend{be}, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := intER(64, 4, 7), intER(64, 4, 8)
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	if be.callCount() != 1 {
		t.Fatalf("backend calls = %d, want 1 (permanent errors must not retry)", be.callCount())
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", res.Fallbacks)
	}
	ref, _ := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	sameCSR(t, ref.C, res.C)
}

func TestFallbackAfterExhaustedAttempts(t *testing.T) {
	eng := newEngine(t)
	be := &stubBackend{name: "down", eng: eng, fn: func(int, context.Context) error {
		return fmt.Errorf("dial tcp: connection refused")
	}}
	c, err := New(Config{
		Local:          eng,
		Backends:       []Backend{be},
		HedgeDelay:     -1,
		MaxAttempts:    2,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := intER(64, 4, 9), intER(64, 4, 10)
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", res.Fallbacks)
	}
	ref, _ := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	sameCSR(t, ref.C, res.C)
}

func TestHedgeWinsOverStraggler(t *testing.T) {
	eng := newEngine(t)
	release := make(chan struct{})
	defer close(release)
	slow := &stubBackend{name: "slow", eng: eng, fn: func(_ int, ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-release:
			return fmt.Errorf("released late")
		}
	}}
	fast := &stubBackend{name: "fast", eng: eng}
	// The round-robin cursor starts at 0, so the first pick lands on index
	// 1: put the straggler there and the hedge re-dispatch finds "fast".
	c, err := New(Config{
		Local:      eng,
		Backends:   []Backend{fast, slow},
		HedgeDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := intER(64, 4, 11), intER(64, 4, 12)
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	if res.Hedges != 1 {
		t.Fatalf("Hedges = %d, want 1", res.Hedges)
	}
	if slow.callCount() != 1 || fast.callCount() != 1 {
		t.Fatalf("calls slow=%d fast=%d, want 1/1", slow.callCount(), fast.callCount())
	}
	ref, _ := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	sameCSR(t, ref.C, res.C)
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	eng := newEngine(t)
	var healthy bool
	var mu sync.Mutex
	be := &stubBackend{name: "flappy", eng: eng}
	be.fn = func(int, context.Context) error {
		mu.Lock()
		ok := healthy
		mu.Unlock()
		if !ok {
			return fmt.Errorf("503 service unavailable")
		}
		return nil
	}

	now := time.Now()
	var nowMu sync.Mutex
	c, err := New(Config{
		Local:            eng,
		Backends:         []Backend{be},
		HedgeDelay:       -1,
		MaxAttempts:      3,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.now = func() time.Time {
		nowMu.Lock()
		defer nowMu.Unlock()
		return now
	}

	a, b := intER(64, 4, 13), intER(64, 4, 14)

	// Unhealthy: 2 failures trip the breaker (threshold 2), the remaining
	// attempt finds no live backend and the product lands on the fallback.
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply while down: %v", err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", res.Fallbacks)
	}
	if got := c.Status().Peers["flappy"]; got.State != "open" {
		t.Fatalf("breaker state = %q, want open", got.State)
	}
	calls := be.callCount()

	// Still open, cooldown not elapsed: the backend must not be touched.
	if _, err := c.Multiply(context.Background(), a, b); err != nil {
		t.Fatalf("Multiply while open: %v", err)
	}
	if be.callCount() != calls {
		t.Fatalf("backend called while breaker open (%d → %d)", calls, be.callCount())
	}

	// Cooldown elapses, backend healthy again: half-open probe admits one
	// trial, it succeeds, breaker closes.
	mu.Lock()
	healthy = true
	mu.Unlock()
	nowMu.Lock()
	now = now.Add(2 * time.Minute)
	nowMu.Unlock()
	res, err = c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply after recovery: %v", err)
	}
	if res.Fallbacks != 0 {
		t.Fatalf("Fallbacks = %d after recovery, want 0", res.Fallbacks)
	}
	if got := c.Status().Peers["flappy"]; got.State != "closed" {
		t.Fatalf("breaker state = %q after recovery, want closed", got.State)
	}
}

func TestProbeFailureKeepsBreakerOpen(t *testing.T) {
	eng := newEngine(t)
	be := &stubBackend{name: "dark", eng: eng, probeErr: fmt.Errorf("unreachable")}
	be.fn = func(int, context.Context) error { return fmt.Errorf("dial timeout") }
	c, err := New(Config{
		Local:            eng,
		Backends:         []Backend{be},
		HedgeDelay:       -1,
		MaxAttempts:      2,
		BreakerThreshold: 1,
		BreakerCooldown:  0, // immediately eligible for half-open
		RetryBaseDelay:   time.Millisecond,
		RetryMaxDelay:    time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// BreakerCooldown 0 would be replaced by the default; force it.
	c.cfg.BreakerCooldown = 0
	for i := range c.breakers {
		c.breakers[i].cooldown = 0
	}
	a, b := intER(64, 4, 15), intER(64, 4, 16)
	res, err := c.Multiply(context.Background(), a, b)
	if err != nil {
		t.Fatalf("Multiply: %v", err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", res.Fallbacks)
	}
	// The dark peer must be hit once (the trip) and then only probed —
	// Probe failures burn a health check, not a block attempt.
	if be.callCount() != 1 {
		t.Fatalf("backend Multiply calls = %d, want 1", be.callCount())
	}
}

func TestCancellationPropagates(t *testing.T) {
	eng := newEngine(t)
	started := make(chan struct{}, 16)
	be := &stubBackend{name: "hang", eng: eng, fn: func(_ int, ctx context.Context) error {
		started <- struct{}{}
		<-ctx.Done()
		return ctx.Err()
	}}
	c, err := New(Config{Local: eng, Backends: []Backend{be}, HedgeDelay: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	a, b := intER(64, 4, 17), intER(64, 4, 18)
	go func() {
		_, err := c.Multiply(ctx, a, b)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Multiply error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Multiply did not return after cancellation")
	}
}

func TestNoGoroutineLeaks(t *testing.T) {
	eng := newEngine(t)
	flaky := &stubBackend{name: "flaky", eng: eng, fn: func(call int, _ context.Context) error {
		if call%3 == 1 {
			return fmt.Errorf("transient")
		}
		return nil
	}}
	c, err := New(Config{
		Local:          eng,
		Backends:       []Backend{flaky, NewEnginePool("pool", eng, 2)},
		MaxBlockBytes:  8 << 10,
		MaxGridDim:     2,
		HedgeDelay:     5 * time.Millisecond,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, b := intER(128, 4, 19), intER(128, 4, 20)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		if _, err := c.Multiply(context.Background(), a, b); err != nil {
			t.Fatalf("Multiply #%d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d (leak)", before, runtime.NumGoroutine())
}

func TestBackoffHonorsRetryAfterFloor(t *testing.T) {
	eng := newEngine(t)
	c, err := New(Config{Local: eng, RetryBaseDelay: time.Microsecond, RetryMaxDelay: time.Microsecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	floor := 30 * time.Millisecond
	t0 := time.Now()
	if err := c.backoff(context.Background(), 1, &retryAfterError{d: floor}); err != nil {
		t.Fatalf("backoff: %v", err)
	}
	if got := time.Since(t0); got < floor-5*time.Millisecond {
		t.Fatalf("backoff slept %v, want >= %v (Retry-After floor)", got, floor)
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	eng := newEngine(t)
	c, err := New(Config{Local: eng, RetryBaseDelay: 10 * time.Millisecond, RetryMaxDelay: 80 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Draw the jitter directly: the delay before attempt n is uniform in
	// [0, min(max, base<<(n-1))].
	for n := 1; n <= 6; n++ {
		ceil := c.cfg.RetryBaseDelay << (n - 1)
		if ceil > c.cfg.RetryMaxDelay || ceil <= 0 {
			ceil = c.cfg.RetryMaxDelay
		}
		for i := 0; i < 100; i++ {
			d := time.Duration(c.rand() % uint64(ceil+1))
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: jitter %v outside [0, %v]", n, d, ceil)
			}
		}
	}
}

type retryAfterError struct{ d time.Duration }

func (e *retryAfterError) Error() string             { return "429 too many requests" }
func (e *retryAfterError) Retryable() bool           { return true }
func (e *retryAfterError) RetryAfter() time.Duration { return e.d }

func TestHedgeDelayTracksP99(t *testing.T) {
	eng := newEngine(t)
	c, err := New(Config{Local: eng, HedgeDelay: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := c.hedgeDelay(); got != 250*time.Millisecond {
		t.Fatalf("cold hedge delay = %v, want config default", got)
	}
	for i := 0; i < hedgeMinSamples; i++ {
		c.observe(20 * time.Millisecond)
	}
	got := c.hedgeDelay()
	if got < time.Millisecond || got > 25*time.Millisecond {
		t.Fatalf("warm hedge delay = %v, want ~20ms p99", got)
	}
	// Negative config disables hedging regardless of samples.
	c.cfg.HedgeDelay = -1
	if got := c.hedgeDelay(); got >= 0 {
		t.Fatalf("hedge delay with negative config = %v, want < 0", got)
	}
}

func TestGrowPrefersLargestExtent(t *testing.T) {
	eng := newEngine(t)
	c, err := New(Config{Local: eng, MaxGridDim: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a := &pbspgemm.CSR{NumRows: 1000, NumCols: 10, RowPtr: make([]int64, 1001)}
	b := &pbspgemm.CSR{NumRows: 10, NumCols: 10, RowPtr: make([]int64, 11)}
	g := pbspgemm.Grid{Rows: 1, Cols: 1, Inner: 1}
	g, ok := c.grow(g, a, b)
	if !ok || g.Rows != 2 || g.Cols != 1 || g.Inner != 1 {
		t.Fatalf("grow = %v ok=%v, want rows split first (largest extent)", g, ok)
	}
	// Saturate rows; growth must move to another dimension or stop.
	g = pbspgemm.Grid{Rows: 4, Cols: 1, Inner: 1}
	g, ok = c.grow(g, a, b)
	if !ok {
		t.Fatal("grow should still split cols/inner")
	}
	if g.Rows != 4 {
		t.Fatalf("rows grew past MaxGridDim: %v", g)
	}
}
