package spmv

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"pbspgemm/internal/gen"
	"pbspgemm/internal/matrix"
)

// refMV computes y = A·x naively.
func refMV(a *matrix.CSR, x []float64) []float64 {
	y := make([]float64, a.NumRows)
	for i := int32(0); i < a.NumRows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			y[i] += a.Val[p] * x[a.ColIdx[p]]
		}
	}
	return y
}

// refMTV computes y = Aᵀ·x naively.
func refMTV(a *matrix.CSR, x []float64) []float64 {
	y := make([]float64, a.NumCols)
	for i := int32(0); i < a.NumRows; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			y[a.ColIdx[p]] += a.Val[p] * x[i]
		}
	}
	return y
}

func vectorsClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*math.Max(1, math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func randVec(n int32, seed uint64) []float64 {
	r := gen.NewRNG(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Float64()
	}
	return v
}

func TestRowMatchesReference(t *testing.T) {
	a := gen.ER(500, 7, 1)
	x := randVec(a.NumCols, 2)
	y := make([]float64, a.NumRows)
	if err := Row(a, x, y, 0); err != nil {
		t.Fatal(err)
	}
	if !vectorsClose(refMV(a, x), y, 1e-12) {
		t.Fatal("Row differs from reference")
	}
}

func TestPBMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *matrix.CSR
	}{
		{"ER", gen.ER(800, 5, 3)},
		{"RMAT", gen.RMAT(10, 8, gen.Graph500Params, 4)},
		{"banded", gen.Banded(500, 3, 5)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x := randVec(tc.a.NumRows, 6)
			y := make([]float64, tc.a.NumCols)
			if err := PB(tc.a, x, y, Options{}); err != nil {
				t.Fatal(err)
			}
			if !vectorsClose(refMTV(tc.a, x), y, 1e-9) {
				t.Fatal("PB differs from reference")
			}
		})
	}
}

func TestPBOptionSweep(t *testing.T) {
	a := gen.ER(600, 6, 7)
	x := randVec(a.NumRows, 8)
	want := refMTV(a, x)
	for _, nbins := range []int{1, 2, 17, 600, 10000} {
		for _, lbb := range []int{16, 512, 4096} {
			for _, threads := range []int{1, 4} {
				t.Run(fmt.Sprintf("nbins%d_lbb%d_t%d", nbins, lbb, threads), func(t *testing.T) {
					y := make([]float64, a.NumCols)
					err := PB(a, x, y, Options{NBins: nbins, LocalBinBytes: lbb, Threads: threads})
					if err != nil {
						t.Fatal(err)
					}
					if !vectorsClose(want, y, 1e-9) {
						t.Fatal("PB differs from reference")
					}
				})
			}
		}
	}
}

func TestRowTMatchesReference(t *testing.T) {
	a := gen.ER(300, 4, 9)
	x := randVec(a.NumRows, 10)
	y := make([]float64, a.NumCols)
	if err := RowT(a, x, y); err != nil {
		t.Fatal(err)
	}
	if !vectorsClose(refMTV(a, x), y, 1e-12) {
		t.Fatal("RowT differs from reference")
	}
}

func TestShapeErrors(t *testing.T) {
	a := gen.ER(32, 2, 1)
	bad := make([]float64, 5)
	good := make([]float64, 32)
	if err := Row(a, bad, good, 0); err == nil {
		t.Error("Row accepted bad x length")
	}
	if err := PB(a, bad, good, Options{}); err == nil {
		t.Error("PB accepted bad x length")
	}
	if err := RowT(a, bad, good); err == nil {
		t.Error("RowT accepted bad x length")
	}
}

func TestPBEmptyMatrix(t *testing.T) {
	a := matrix.NewCSR(10, 10, 0)
	x := make([]float64, 10)
	y := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	if err := PB(a, x, y, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, v := range y {
		if v != 0 {
			t.Fatal("empty matrix must zero y")
		}
	}
}

func TestQuickPBEqualsRowT(t *testing.T) {
	f := func(seed uint64, nSel uint8, nnzSel uint16) bool {
		n := int32(nSel%80) + 2
		nnz := int(nnzSel % 400)
		r := gen.NewRNG(seed)
		coo := &matrix.COO{NumRows: n, NumCols: n}
		for e := 0; e < nnz; e++ {
			coo.Row = append(coo.Row, r.Intn(n))
			coo.Col = append(coo.Col, r.Intn(n))
			coo.Val = append(coo.Val, r.Float64())
		}
		a := coo.ToCSR()
		x := randVec(n, seed+1)
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		if err := PB(a, x, y1, Options{NBins: int(seed%5) + 1}); err != nil {
			return false
		}
		if err := RowT(a, x, y2); err != nil {
			return false
		}
		return vectorsClose(y1, y2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpMVRow(b *testing.B) {
	a := gen.ERMatrix(16, 8, 1)
	x := randVec(a.NumCols, 2)
	y := make([]float64, a.NumRows)
	b.SetBytes(a.NNZ() * 12)
	for i := 0; i < b.N; i++ {
		if err := Row(a, x, y, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpMVPBvsScatter(b *testing.B) {
	a := gen.ERMatrix(16, 8, 1)
	x := randVec(a.NumRows, 2)
	y := make([]float64, a.NumCols)
	b.Run("PB", func(b *testing.B) {
		b.SetBytes(a.NNZ() * 12)
		for i := 0; i < b.N; i++ {
			if err := PB(a, x, y, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scatter", func(b *testing.B) {
		b.SetBytes(a.NNZ() * 12)
		for i := 0; i < b.N; i++ {
			if err := RowT(a, x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
