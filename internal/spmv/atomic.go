package spmv

import "sync/atomic"

// atomicCursors provides atomic fetch-and-add over the per-bin write
// cursors, mirroring internal/core's expand-phase reservation scheme.
type atomicCursors []int64

func (s atomicCursors) add(i int, delta int64) int64 {
	return atomic.AddInt64(&s[i], delta)
}
