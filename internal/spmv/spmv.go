// Package spmv implements sparse matrix-vector multiplication, including the
// propagation-blocking variant of Beamer, Asanović and Patterson [16] that
// the paper generalizes to SpGEMM. It exists both as a substrate (several of
// the motivating applications interleave SpMV with SpGEMM) and as the
// lineage ablation: the same binning idea, one rank lower.
//
// Two kernels are provided:
//
//   - Row: classic CSR y = A·x, one dot product per row. Reads of x are
//     indexed by column id — irregular, the SpMV analogue of column
//     SpGEMM's irregular reads of A.
//   - PB: the two-phase propagation-blocking kernel for y = Aᵀ·x-style
//     scatter updates (column-major accumulation): contributions
//     (destination, value) are first binned by destination range through
//     thread-private local bins, then each bin is accumulated independently
//     — all memory accesses stream, as in PB-SpGEMM's expand phase.
package spmv

import (
	"fmt"

	"pbspgemm/internal/matrix"
	"pbspgemm/internal/par"
)

// Row computes y = A·x with the classic CSR kernel. y is overwritten.
func Row(a *matrix.CSR, x, y []float64, threads int) error {
	if int32(len(x)) != a.NumCols || int32(len(y)) != a.NumRows {
		return fmt.Errorf("spmv: vector lengths %d/%d do not match %dx%d: %w",
			len(x), len(y), a.NumRows, a.NumCols, matrix.ErrShape)
	}
	par.ForRanges(int(a.NumRows), threads, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			var sum float64
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				sum += a.Val[p] * x[a.ColIdx[p]]
			}
			y[i] = sum
		}
	})
	return nil
}

// contribution is one binned update in the PB kernel.
type contribution struct {
	dst int32
	val float64
}

// Options tunes the PB kernel; the zero value uses the PB-SpGEMM defaults
// (bins sized to L2, 512-byte local bins).
type Options struct {
	NBins         int
	LocalBinBytes int
	Threads       int
}

// PB computes y = Aᵀ·x (equivalently: column-major accumulation of A scaled
// by x) with propagation blocking. A is given in CSR; each nonzero (i, j, v)
// contributes v·x[i] to y[j]. The contributions are partially ordered into
// destination-range bins exactly as PB-SpGEMM's expand phase partially
// orders tuples, then bins accumulate independently in cache. y is
// overwritten.
func PB(a *matrix.CSR, x, y []float64, opt Options) error {
	if int32(len(x)) != a.NumRows || int32(len(y)) != a.NumCols {
		return fmt.Errorf("spmv: vector lengths %d/%d do not match transpose of %dx%d: %w",
			len(x), len(y), a.NumRows, a.NumCols, matrix.ErrShape)
	}
	threads := par.DefaultThreads(opt.Threads)
	n := int(a.NumCols)
	nnz := a.NNZ()
	for i := range y {
		y[i] = 0
	}
	if nnz == 0 {
		return nil
	}

	nbins := opt.NBins
	if nbins <= 0 {
		// One bin per L2's worth of destination counters, capped like
		// PB-SpGEMM's planner.
		nbins = int(nnz*16) / (1 << 20)
		if nbins > 2048 {
			nbins = 2048
		}
	}
	if nbins < 1 {
		nbins = 1
	}
	if nbins > n {
		nbins = n
	}
	colsPerBin := (int32(n) + int32(nbins) - 1) / int32(nbins)
	if colsPerBin < 1 {
		colsPerBin = 1
	}
	nbins = int((int32(n) + colsPerBin - 1) / colsPerBin)

	// Symbolic: per-bin contribution counts (one pass over the nonzeros).
	rows := int(a.NumRows)
	rowWeights := make([]int64, rows)
	for i := 0; i < rows; i++ {
		rowWeights[i] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	bounds := par.BalancedBoundaries(rowWeights, threads)
	perThread := make([][]int64, threads)
	par.ParallelRun(threads, func(t int) {
		local := make([]int64, nbins)
		for i := bounds[t]; i < bounds[t+1]; i++ {
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				local[a.ColIdx[p]/colsPerBin]++
			}
		}
		perThread[t] = local
	})
	binCounts := make([]int64, nbins)
	for _, local := range perThread {
		for b, c := range local {
			binCounts[b] += c
		}
	}
	binStart := make([]int64, nbins+1)
	par.PrefixSum(binCounts, binStart)

	// Binning (the "propagate" phase): thread-private local bins flush to
	// global bins with bulk copies.
	global := make([]contribution, nnz)
	cursors := make([]int64, nbins)
	copy(cursors, binStart[:nbins])
	localCap := int32(opt.LocalBinBytes / 16)
	if localCap < 1 {
		localCap = 32
	}
	var cur atomicCursors = cursors
	par.ParallelRun(threads, func(t int) {
		buf := make([]contribution, int32(nbins)*localCap)
		lens := make([]int32, nbins)
		flush := func(bin int32) {
			nLoc := lens[bin]
			if nLoc == 0 {
				return
			}
			off := cur.add(int(bin), int64(nLoc)) - int64(nLoc)
			copy(global[off:off+int64(nLoc)], buf[bin*localCap:bin*localCap+nLoc])
			lens[bin] = 0
		}
		for i := bounds[t]; i < bounds[t+1]; i++ {
			xi := x[i]
			for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
				j := a.ColIdx[p]
				bin := j / colsPerBin
				if lens[bin] == localCap {
					flush(bin)
				}
				buf[bin*localCap+lens[bin]] = contribution{dst: j, val: a.Val[p] * xi}
				lens[bin]++
			}
		}
		for bin := int32(0); bin < int32(nbins); bin++ {
			flush(bin)
		}
	})

	// Accumulate (the "apply" phase): bins per thread, all in cache.
	par.ForEachDynamic(nbins, threads, func(_, bin int) {
		for p := binStart[bin]; p < binStart[bin+1]; p++ {
			y[global[p].dst] += global[p].val
		}
	})
	return nil
}

// RowT computes y = Aᵀ·x with the naive scatter kernel (the irregular-write
// baseline PB beats): sequential over rows to stay deterministic and
// race-free, since every row scatters to arbitrary destinations.
func RowT(a *matrix.CSR, x, y []float64) error {
	if int32(len(x)) != a.NumRows || int32(len(y)) != a.NumCols {
		return fmt.Errorf("spmv: vector lengths %d/%d do not match transpose of %dx%d: %w",
			len(x), len(y), a.NumRows, a.NumCols, matrix.ErrShape)
	}
	for i := range y {
		y[i] = 0
	}
	for i := int32(0); i < a.NumRows; i++ {
		xi := x[i]
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			y[a.ColIdx[p]] += a.Val[p] * xi
		}
	}
	return nil
}
