//go:build !purego && !amd64.v3

package simd

const level = "batched"
