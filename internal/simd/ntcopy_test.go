package simd

import (
	"bytes"
	"math/rand"
	"testing"
	"unsafe"
)

// TestNTCopyBytes checks the non-temporal copy against copy() across sizes
// that exercise the unaligned head, the 64B body, the 16B chunk loop, and
// the byte tail — at every destination misalignment within a 16B window.
func TestNTCopyBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sizes := []int{0, 1, 3, 15, 16, 17, 31, 63, 64, 65, 100, 255, 256, 1000, 4096, 4097}
	const pad = 32
	for _, n := range sizes {
		for misalign := 0; misalign < 16; misalign++ {
			src := make([]byte, n+pad)
			rng.Read(src)
			dst := make([]byte, n+pad+16)
			want := make([]byte, len(dst))
			d := dst[misalign : misalign+n+pad]
			w := want[misalign : misalign+n+pad]
			copy(w[:n], src[:n])
			if n > 0 {
				NTCopyBytes(unsafe.Pointer(&d[0]), unsafe.Pointer(&src[0]), n)
			} else {
				NTCopyBytes(nil, nil, 0)
			}
			StoreFence()
			if !bytes.Equal(dst, want) {
				t.Fatalf("n=%d misalign=%d: NT copy differs from copy()", n, misalign)
			}
		}
	}
}
