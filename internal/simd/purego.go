//go:build purego

package simd

// purego build: the batched entry points degrade to the scalar references.
// No unsafe loads/stores and no assembly execute under this tag (prefetch
// hints become no-ops).

const Enabled = false

const level = "purego"

func OrU32(keys []uint32) uint32 { return OrU32Scalar(keys) }

func OrPairs(ps []Pair) uint64 { return OrPairsScalar(ps) }

func HistU32(keys []uint32, shift uint, mask uint32, count *[256]int64) {
	HistU32Scalar(keys, shift, mask, count)
}

func HistPairs(ps []Pair, shift uint, count *[256]int64) {
	HistPairsScalar(ps, shift, count)
}

func ScatterKV[V any](srcK []uint32, srcV []V, dstK []uint32, dstV []V, shift uint, mask uint32, cursor *[256]int64) {
	ScatterKVScalar(srcK, srcV, dstK, dstV, shift, mask, cursor)
}

func ScatterK(srcK []uint32, dstK []uint32, shift uint, mask uint32, cursor *[256]int64) {
	ScatterKScalar(srcK, dstK, shift, mask, cursor)
}

func ScatterPairs(src []Pair, dst []Pair, shift uint, cursor *[256]int64) {
	ScatterPairsScalar(src, dst, shift, cursor)
}

func AccumKV[V Value](keys []uint32, vals []V, mask uint32, acc *[256]V) {
	AccumKVScalar(keys, vals, mask, acc)
}

func AccumPairs(ps []Pair, acc *[256]float64) {
	AccumPairsScalar(ps, acc)
}

func ExpandKV[V Value](dstK []uint32, dstV []V, localRow uint32, cols []int32, bVals []V, av V) {
	ExpandKVScalar(dstK, dstV, localRow, cols, bVals, av)
}

func ExpandK(dstK []uint32, localRow uint32, cols []int32) {
	ExpandKScalar(dstK, localRow, cols)
}

func ExpandPairs(dst []Pair, localRow uint64, cols []int32, bVals []float64, av float64) {
	ExpandPairsScalar(dst, localRow, cols, bVals, av)
}
