//go:build !purego

#include "textflag.h"

// func prefetchT0(p unsafe.Pointer)
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET

// func prefetchNTA(p unsafe.Pointer)
TEXT ·prefetchNTA(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHNTA (AX)
	RET

// func prefetchRangeT0(p unsafe.Pointer, bytes int64)
TEXT ·prefetchRangeT0(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), AX
	MOVQ bytes+8(FP), CX

loop:
	CMPQ CX, $0
	JLE  done
	PREFETCHT0 (AX)
	ADDQ $64, AX
	SUBQ $64, CX
	JMP  loop

done:
	RET
