//go:build !amd64 || purego

package simd

import "unsafe"

// HasNT is false on this build: flush copies use plain stores (and the
// engine keeps its copy()+prefetch path, so NTCopyBytes is never on the hot
// path here).
const HasNT = false

// NTCopyBytes is a plain byte copy on this build.
func NTCopyBytes(dst, src unsafe.Pointer, bytes int) {
	if bytes > 0 {
		copy(unsafe.Slice((*byte)(dst), bytes), unsafe.Slice((*byte)(src), bytes))
	}
}

// StoreFence is a no-op on this build (plain stores are ordered by Go's
// usual synchronization).
func StoreFence() {}
