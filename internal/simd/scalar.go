package simd

// Scalar reference kernels. These are compiled into every build and are the
// correctness oracle for the batched forms: for identical inputs the batched
// kernel must produce bit-identical outputs, including the order of
// floating-point additions (each accumulator is a single sequential chain in
// arrival order; no reassociation).
//
// Shared caller contract for the sort kernels: digit values (k>>shift)&mask
// index count/cursor/acc tables of 256 entries, so mask ≤ 255; cursor values
// must be valid indices into dst for every element scattered.

// OrU32Scalar returns the bitwise OR of all keys (0 for an empty slice).
func OrU32Scalar(keys []uint32) uint32 {
	var or uint32
	for _, k := range keys {
		or |= k
	}
	return or
}

// OrPairsScalar returns the bitwise OR of all pair keys.
func OrPairsScalar(ps []Pair) uint64 {
	var or uint64
	for i := range ps {
		or |= ps[i].Key
	}
	return or
}

// HistU32Scalar counts digit occurrences of (k>>shift)&mask into count.
func HistU32Scalar(keys []uint32, shift uint, mask uint32, count *[256]int64) {
	for _, k := range keys {
		count[(k>>shift)&mask]++
	}
}

// HistPairsScalar counts byte-digit occurrences of (Key>>shift)&0xff.
func HistPairsScalar(ps []Pair, shift uint, count *[256]int64) {
	for i := range ps {
		count[(ps[i].Key>>shift)&0xff]++
	}
}

// ScatterKVScalar stably scatters src tuples to dst positions taken from the
// per-digit cursors, advancing each cursor. Equal-digit elements keep their
// relative (arrival) order.
func ScatterKVScalar[V any](srcK []uint32, srcV []V, dstK []uint32, dstV []V, shift uint, mask uint32, cursor *[256]int64) {
	for i, k := range srcK {
		c := cursor[(k>>shift)&mask]
		dstK[c] = k
		dstV[c] = srcV[i]
		cursor[(k>>shift)&mask] = c + 1
	}
}

// ScatterKScalar is ScatterKVScalar for the key-only (pattern) plane.
func ScatterKScalar(srcK []uint32, dstK []uint32, shift uint, mask uint32, cursor *[256]int64) {
	for _, k := range srcK {
		c := cursor[(k>>shift)&mask]
		dstK[c] = k
		cursor[(k>>shift)&mask] = c + 1
	}
}

// ScatterPairsScalar stably scatters 16-byte pairs by byte digit.
func ScatterPairsScalar(src []Pair, dst []Pair, shift uint, cursor *[256]int64) {
	for i := range src {
		b := (src[i].Key >> shift) & 0xff
		c := cursor[b]
		dst[c] = src[i]
		cursor[b] = c + 1
	}
}

// AccumKVScalar folds values onto their last-digit accumulator slot in
// arrival order: acc[k&mask] += v, one sequential chain per slot.
func AccumKVScalar[V Value](keys []uint32, vals []V, mask uint32, acc *[256]V) {
	for i, k := range keys {
		acc[k&mask] += vals[i]
	}
}

// AccumPairsScalar is the pair-layout fold for the last byte digit.
func AccumPairsScalar(ps []Pair, acc *[256]float64) {
	for i := range ps {
		acc[ps[i].Key&0xff] += ps[i].Val
	}
}

// ExpandKVScalar computes one expand chunk: dstK[i] = localRow|cols[i],
// dstV[i] = av*bVals[i]. cols and bVals must be at least len(dstK) long.
func ExpandKVScalar[V Value](dstK []uint32, dstV []V, localRow uint32, cols []int32, bVals []V, av V) {
	for i := range dstK {
		dstK[i] = localRow | uint32(cols[i])
		dstV[i] = av * bVals[i]
	}
}

// ExpandKScalar is the key-only (pattern) expand chunk.
func ExpandKScalar(dstK []uint32, localRow uint32, cols []int32) {
	for i := range dstK {
		dstK[i] = localRow | uint32(cols[i])
	}
}

// ExpandPairsScalar is the wide-layout expand chunk with a 64-bit packed key.
func ExpandPairsScalar(dst []Pair, localRow uint64, cols []int32, bVals []float64, av float64) {
	for i := range dst {
		dst[i] = Pair{Key: localRow | uint64(uint32(cols[i])), Val: av * bVals[i]}
	}
}
