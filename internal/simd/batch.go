//go:build !purego

package simd

import "unsafe"

// Batched unsafe kernels. Each mirrors its ...Scalar twin exactly — same
// element order, same sequential fold chains — but works through raw
// pointers so the compiler emits no bounds checks in the inner loop, and
// unrolls the gather-heavy passes 8 wide so eight independent loads are in
// flight per iteration. The caller contract (digits ≤ 255, cursors in
// bounds) is inherited from scalar.go; these kernels do not re-check it.

const Enabled = true

// OrU32 is the batched OrU32Scalar.
func OrU32(keys []uint32) uint32 {
	n := len(keys)
	if n == 0 {
		return 0
	}
	kp := unsafe.Pointer(&keys[0])
	var o0, o1, o2, o3, o4, o5, o6, o7 uint32
	i := 0
	for ; i+8 <= n; i += 8 {
		o0 |= *(*uint32)(unsafe.Add(kp, uintptr(i)*4))
		o1 |= *(*uint32)(unsafe.Add(kp, uintptr(i+1)*4))
		o2 |= *(*uint32)(unsafe.Add(kp, uintptr(i+2)*4))
		o3 |= *(*uint32)(unsafe.Add(kp, uintptr(i+3)*4))
		o4 |= *(*uint32)(unsafe.Add(kp, uintptr(i+4)*4))
		o5 |= *(*uint32)(unsafe.Add(kp, uintptr(i+5)*4))
		o6 |= *(*uint32)(unsafe.Add(kp, uintptr(i+6)*4))
		o7 |= *(*uint32)(unsafe.Add(kp, uintptr(i+7)*4))
	}
	or := o0 | o1 | o2 | o3 | o4 | o5 | o6 | o7
	for ; i < n; i++ {
		or |= keys[i]
	}
	return or
}

// OrPairs is the batched OrPairsScalar.
func OrPairs(ps []Pair) uint64 {
	n := len(ps)
	if n == 0 {
		return 0
	}
	pp := unsafe.Pointer(&ps[0])
	var o0, o1, o2, o3 uint64
	i := 0
	for ; i+4 <= n; i += 4 {
		o0 |= (*Pair)(unsafe.Add(pp, uintptr(i)*16)).Key
		o1 |= (*Pair)(unsafe.Add(pp, uintptr(i+1)*16)).Key
		o2 |= (*Pair)(unsafe.Add(pp, uintptr(i+2)*16)).Key
		o3 |= (*Pair)(unsafe.Add(pp, uintptr(i+3)*16)).Key
	}
	or := o0 | o1 | o2 | o3
	for ; i < n; i++ {
		or |= ps[i].Key
	}
	return or
}

// HistU32 is the batched HistU32Scalar.
func HistU32(keys []uint32, shift uint, mask uint32, count *[256]int64) {
	n := len(keys)
	if n == 0 {
		return
	}
	kp := unsafe.Pointer(&keys[0])
	cp := unsafe.Pointer(&count[0])
	i := 0
	for ; i+8 <= n; i += 8 {
		k0 := *(*uint32)(unsafe.Add(kp, uintptr(i)*4))
		k1 := *(*uint32)(unsafe.Add(kp, uintptr(i+1)*4))
		k2 := *(*uint32)(unsafe.Add(kp, uintptr(i+2)*4))
		k3 := *(*uint32)(unsafe.Add(kp, uintptr(i+3)*4))
		k4 := *(*uint32)(unsafe.Add(kp, uintptr(i+4)*4))
		k5 := *(*uint32)(unsafe.Add(kp, uintptr(i+5)*4))
		k6 := *(*uint32)(unsafe.Add(kp, uintptr(i+6)*4))
		k7 := *(*uint32)(unsafe.Add(kp, uintptr(i+7)*4))
		*(*int64)(unsafe.Add(cp, uintptr((k0>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k1>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k2>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k3>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k4>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k5>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k6>>shift)&mask)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k7>>shift)&mask)*8))++
	}
	for ; i < n; i++ {
		count[(keys[i]>>shift)&mask]++
	}
}

// HistPairs is the batched HistPairsScalar.
func HistPairs(ps []Pair, shift uint, count *[256]int64) {
	n := len(ps)
	if n == 0 {
		return
	}
	pp := unsafe.Pointer(&ps[0])
	cp := unsafe.Pointer(&count[0])
	i := 0
	for ; i+4 <= n; i += 4 {
		k0 := (*Pair)(unsafe.Add(pp, uintptr(i)*16)).Key
		k1 := (*Pair)(unsafe.Add(pp, uintptr(i+1)*16)).Key
		k2 := (*Pair)(unsafe.Add(pp, uintptr(i+2)*16)).Key
		k3 := (*Pair)(unsafe.Add(pp, uintptr(i+3)*16)).Key
		*(*int64)(unsafe.Add(cp, uintptr((k0>>shift)&0xff)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k1>>shift)&0xff)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k2>>shift)&0xff)*8))++
		*(*int64)(unsafe.Add(cp, uintptr((k3>>shift)&0xff)*8))++
	}
	for ; i < n; i++ {
		count[(ps[i].Key>>shift)&0xff]++
	}
}

// ScatterKV is the batched ScatterKVScalar.
func ScatterKV[V any](srcK []uint32, srcV []V, dstK []uint32, dstV []V, shift uint, mask uint32, cursor *[256]int64) {
	n := len(srcK)
	if n == 0 {
		return
	}
	var zv V
	vsz := unsafe.Sizeof(zv)
	skp := unsafe.Pointer(&srcK[0])
	svp := unsafe.Pointer(&srcV[0])
	dkp := unsafe.Pointer(&dstK[0])
	dvp := unsafe.Pointer(&dstV[0])
	cp := unsafe.Pointer(&cursor[0])
	for i := 0; i < n; i++ {
		k := *(*uint32)(unsafe.Add(skp, uintptr(i)*4))
		cb := (*int64)(unsafe.Add(cp, uintptr((k>>shift)&mask)*8))
		c := uintptr(*cb)
		*(*uint32)(unsafe.Add(dkp, c*4)) = k
		*(*V)(unsafe.Add(dvp, c*vsz)) = *(*V)(unsafe.Add(svp, uintptr(i)*vsz))
		*cb = int64(c + 1)
	}
}

// ScatterK is the batched ScatterKScalar.
func ScatterK(srcK []uint32, dstK []uint32, shift uint, mask uint32, cursor *[256]int64) {
	n := len(srcK)
	if n == 0 {
		return
	}
	skp := unsafe.Pointer(&srcK[0])
	dkp := unsafe.Pointer(&dstK[0])
	cp := unsafe.Pointer(&cursor[0])
	for i := 0; i < n; i++ {
		k := *(*uint32)(unsafe.Add(skp, uintptr(i)*4))
		cb := (*int64)(unsafe.Add(cp, uintptr((k>>shift)&mask)*8))
		c := uintptr(*cb)
		*(*uint32)(unsafe.Add(dkp, c*4)) = k
		*cb = int64(c + 1)
	}
}

// ScatterPairs is the batched ScatterPairsScalar.
func ScatterPairs(src []Pair, dst []Pair, shift uint, cursor *[256]int64) {
	n := len(src)
	if n == 0 {
		return
	}
	sp := unsafe.Pointer(&src[0])
	dp := unsafe.Pointer(&dst[0])
	cp := unsafe.Pointer(&cursor[0])
	for i := 0; i < n; i++ {
		p := (*Pair)(unsafe.Add(sp, uintptr(i)*16))
		cb := (*int64)(unsafe.Add(cp, uintptr((p.Key>>shift)&0xff)*8))
		c := uintptr(*cb)
		*(*Pair)(unsafe.Add(dp, c*16)) = *p
		*cb = int64(c + 1)
	}
}

// AccumKV is the batched AccumKVScalar. The per-slot additions stay a single
// sequential chain in arrival order — no reassociation — so the fold is
// bit-identical to the scalar oracle.
func AccumKV[V Value](keys []uint32, vals []V, mask uint32, acc *[256]V) {
	n := len(keys)
	if n == 0 {
		return
	}
	var zv V
	vsz := unsafe.Sizeof(zv)
	kp := unsafe.Pointer(&keys[0])
	vp := unsafe.Pointer(&vals[0])
	ap := unsafe.Pointer(&acc[0])
	for i := 0; i < n; i++ {
		k := *(*uint32)(unsafe.Add(kp, uintptr(i)*4))
		*(*V)(unsafe.Add(ap, uintptr(k&mask)*vsz)) += *(*V)(unsafe.Add(vp, uintptr(i)*vsz))
	}
}

// AccumPairs is the batched AccumPairsScalar.
func AccumPairs(ps []Pair, acc *[256]float64) {
	n := len(ps)
	if n == 0 {
		return
	}
	pp := unsafe.Pointer(&ps[0])
	ap := unsafe.Pointer(&acc[0])
	for i := 0; i < n; i++ {
		p := (*Pair)(unsafe.Add(pp, uintptr(i)*16))
		*(*float64)(unsafe.Add(ap, uintptr(p.Key&0xff)*8)) += p.Val
	}
}

// ExpandKV is the batched ExpandKVScalar.
func ExpandKV[V Value](dstK []uint32, dstV []V, localRow uint32, cols []int32, bVals []V, av V) {
	n := len(dstK)
	if n == 0 {
		return
	}
	_ = cols[n-1]
	_ = bVals[n-1]
	var zv V
	vsz := unsafe.Sizeof(zv)
	dkp := unsafe.Pointer(&dstK[0])
	dvp := unsafe.Pointer(&dstV[0])
	colp := unsafe.Pointer(&cols[0])
	bvp := unsafe.Pointer(&bVals[0])
	for i := 0; i < n; i++ {
		*(*uint32)(unsafe.Add(dkp, uintptr(i)*4)) = localRow | uint32(*(*int32)(unsafe.Add(colp, uintptr(i)*4)))
		*(*V)(unsafe.Add(dvp, uintptr(i)*vsz)) = av * *(*V)(unsafe.Add(bvp, uintptr(i)*vsz))
	}
}

// ExpandK is the batched ExpandKScalar.
func ExpandK(dstK []uint32, localRow uint32, cols []int32) {
	n := len(dstK)
	if n == 0 {
		return
	}
	_ = cols[n-1]
	dkp := unsafe.Pointer(&dstK[0])
	colp := unsafe.Pointer(&cols[0])
	for i := 0; i < n; i++ {
		*(*uint32)(unsafe.Add(dkp, uintptr(i)*4)) = localRow | uint32(*(*int32)(unsafe.Add(colp, uintptr(i)*4)))
	}
}

// ExpandPairs is the batched ExpandPairsScalar.
func ExpandPairs(dst []Pair, localRow uint64, cols []int32, bVals []float64, av float64) {
	n := len(dst)
	if n == 0 {
		return
	}
	_ = cols[n-1]
	_ = bVals[n-1]
	dp := unsafe.Pointer(&dst[0])
	colp := unsafe.Pointer(&cols[0])
	bvp := unsafe.Pointer(&bVals[0])
	for i := 0; i < n; i++ {
		p := (*Pair)(unsafe.Add(dp, uintptr(i)*16))
		p.Key = localRow | uint64(uint32(*(*int32)(unsafe.Add(colp, uintptr(i)*4))))
		p.Val = av * *(*float64)(unsafe.Add(bvp, uintptr(i)*8))
	}
}
