package simd

import (
	"math/rand/v2"
	"testing"
	"unsafe"
)

func genKV(n int, keyBits uint, seed uint64) ([]uint32, []float64) {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	keys := make([]uint32, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = r.Uint32() & (1<<keyBits - 1)
		vals[i] = r.Float64()*200 - 100
	}
	return keys, vals
}

func genPairs(n int, seed uint64) []Pair {
	r := rand.New(rand.NewPCG(seed, seed^0x51ed2701))
	ps := make([]Pair, n)
	for i := range ps {
		ps[i] = Pair{Key: uint64(r.Uint32()), Val: r.Float64()*200 - 100}
	}
	return ps
}

// TestBatchedMatchesScalarKernels pins bit-identity of every batched kernel
// against its scalar twin, across sizes that exercise both the unrolled body
// and the remainder loop.
func TestBatchedMatchesScalarKernels(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 8, 9, 63, 64, 65, 1000} {
		keys, vals := genKV(n, 23, uint64(n)+1)
		ps := genPairs(n, uint64(n)+2)
		const shift, mask = 7, uint32(0xff)

		if got, want := OrU32(keys), OrU32Scalar(keys); got != want {
			t.Fatalf("n=%d OrU32: %x vs %x", n, got, want)
		}
		if got, want := OrPairs(ps), OrPairsScalar(ps); got != want {
			t.Fatalf("n=%d OrPairs: %x vs %x", n, got, want)
		}

		var h1, h2 [256]int64
		HistU32(keys, shift, mask, &h1)
		HistU32Scalar(keys, shift, mask, &h2)
		if h1 != h2 {
			t.Fatalf("n=%d HistU32 mismatch", n)
		}
		var hp1, hp2 [256]int64
		HistPairs(ps, shift, &hp1)
		HistPairsScalar(ps, shift, &hp2)
		if hp1 != hp2 {
			t.Fatalf("n=%d HistPairs mismatch", n)
		}

		// Scatter: build cursors from the histogram, run both, compare.
		mkCursor := func(h *[256]int64) [256]int64 {
			var c [256]int64
			sum := int64(0)
			for b := range h {
				c[b] = sum
				sum += h[b]
			}
			return c
		}
		c1, c2 := mkCursor(&h1), mkCursor(&h1)
		dk1, dv1 := make([]uint32, n), make([]float64, n)
		dk2, dv2 := make([]uint32, n), make([]float64, n)
		ScatterKV(keys, vals, dk1, dv1, shift, mask, &c1)
		ScatterKVScalar(keys, vals, dk2, dv2, shift, mask, &c2)
		if c1 != c2 {
			t.Fatalf("n=%d ScatterKV cursors mismatch", n)
		}
		for i := range dk1 {
			if dk1[i] != dk2[i] || dv1[i] != dv2[i] {
				t.Fatalf("n=%d ScatterKV[%d]: (%d,%v) vs (%d,%v)", n, i, dk1[i], dv1[i], dk2[i], dv2[i])
			}
		}
		c1, c2 = mkCursor(&h1), mkCursor(&h1)
		ScatterK(keys, dk1, shift, mask, &c1)
		ScatterKScalar(keys, dk2, shift, mask, &c2)
		for i := range dk1 {
			if dk1[i] != dk2[i] {
				t.Fatalf("n=%d ScatterK[%d]: %d vs %d", n, i, dk1[i], dk2[i])
			}
		}
		cp1, cp2 := mkCursor(&hp1), mkCursor(&hp1)
		dp1, dp2 := make([]Pair, n), make([]Pair, n)
		ScatterPairs(ps, dp1, shift, &cp1)
		ScatterPairsScalar(ps, dp2, shift, &cp2)
		for i := range dp1 {
			if dp1[i] != dp2[i] {
				t.Fatalf("n=%d ScatterPairs[%d]: %+v vs %+v", n, i, dp1[i], dp2[i])
			}
		}

		var a1, a2 [256]float64
		AccumKV(keys, vals, mask, &a1)
		AccumKVScalar(keys, vals, mask, &a2)
		if a1 != a2 {
			t.Fatalf("n=%d AccumKV mismatch", n)
		}
		var ap1, ap2 [256]float64
		AccumPairs(ps, &ap1)
		AccumPairsScalar(ps, &ap2)
		if ap1 != ap2 {
			t.Fatalf("n=%d AccumPairs mismatch", n)
		}

		cols := make([]int32, n)
		for i := range cols {
			cols[i] = int32(keys[i] & 0x3ff)
		}
		const localRow = uint32(0x1234) << 10
		ek1, ev1 := make([]uint32, n), make([]float64, n)
		ek2, ev2 := make([]uint32, n), make([]float64, n)
		ExpandKV(ek1, ev1, localRow, cols, vals, 3.25)
		ExpandKVScalar(ek2, ev2, localRow, cols, vals, 3.25)
		for i := range ek1 {
			if ek1[i] != ek2[i] || ev1[i] != ev2[i] {
				t.Fatalf("n=%d ExpandKV[%d] mismatch", n, i)
			}
		}
		ExpandK(ek1, localRow, cols)
		ExpandKScalar(ek2, localRow, cols)
		for i := range ek1 {
			if ek1[i] != ek2[i] {
				t.Fatalf("n=%d ExpandK[%d] mismatch", n, i)
			}
		}
		ep1, ep2 := make([]Pair, n), make([]Pair, n)
		ExpandPairs(ep1, uint64(localRow)<<10, cols, vals, 3.25)
		ExpandPairsScalar(ep2, uint64(localRow)<<10, cols, vals, 3.25)
		for i := range ep1 {
			if ep1[i] != ep2[i] {
				t.Fatalf("n=%d ExpandPairs[%d] mismatch", n, i)
			}
		}
	}
}

func TestBatchedMatchesScalarNarrow(t *testing.T) {
	const n = 777
	keys, f64s := genKV(n, 16, 9)
	vals := make([]float32, n)
	ints := make([]int32, n)
	for i := range vals {
		vals[i] = float32(f64s[i])
		ints[i] = int32(i * 3)
	}
	var a1, a2 [256]float32
	AccumKV(keys, vals, 0xff, &a1)
	AccumKVScalar(keys, vals, 0xff, &a2)
	if a1 != a2 {
		t.Fatal("AccumKV float32 mismatch")
	}
	var i1, i2 [256]int32
	AccumKV(keys, ints, 0xff, &i1)
	AccumKVScalar(keys, ints, 0xff, &i2)
	if i1 != i2 {
		t.Fatal("AccumKV int32 mismatch")
	}
}

func TestPrefetchSafe(t *testing.T) {
	buf := make([]byte, 4096)
	PrefetchT0(unsafe.Pointer(&buf[0]))
	PrefetchNTA(unsafe.Pointer(&buf[0]))
	PrefetchRangeT0(unsafe.Pointer(&buf[0]), len(buf))
	PrefetchRangeT0(unsafe.Pointer(&buf[0]), 0)
}

func TestLevel(t *testing.T) {
	lv := Level()
	if Enabled && lv == "purego" {
		t.Fatalf("Enabled but level=%q", lv)
	}
	if !Enabled && lv != "purego" {
		t.Fatalf("disabled but level=%q", lv)
	}
}
