//go:build amd64 && !purego

package simd

import "unsafe"

// HasNT reports that this build can use non-temporal stores for the bin
// flush copies. NT stores write full cache lines straight to memory without
// the read-for-ownership a normal store to a cold line costs, cutting the
// flush's DRAM traffic by a third (read+write → write) — and the flushed
// tuples were never going to be re-read before the arena outgrows the cache
// anyway.
const HasNT = true

//go:noescape
func ntCopyBytes(dst, src unsafe.Pointer, n int64)

//go:noescape
func storeFence()

// NTCopyBytes copies bytes non-overlapping bytes from src to dst with
// non-temporal stores on the 16-byte-aligned body (plain byte stores on the
// unaligned head and tail). NT stores are weakly ordered: the writing
// goroutine must call StoreFence before other goroutines read the data —
// ordinary release/acquire synchronization alone does not order them.
func NTCopyBytes(dst, src unsafe.Pointer, bytes int) {
	if bytes > 0 {
		ntCopyBytes(dst, src, int64(bytes))
	}
}

// StoreFence makes all preceding non-temporal stores visible before any
// later store (SFENCE). One fence per worker, after its last flush, is
// enough.
func StoreFence() { storeFence() }
