//go:build !amd64 || purego

package simd

import "unsafe"

// Prefetch hints are no-ops off amd64 and under purego. The unsafe.Pointer
// in the signature is type-only; no memory is dereferenced.

// PrefetchT0 is a no-op on this build.
func PrefetchT0(p unsafe.Pointer) {}

// PrefetchNTA is a no-op on this build.
func PrefetchNTA(p unsafe.Pointer) {}

// PrefetchRangeT0 is a no-op on this build.
func PrefetchRangeT0(p unsafe.Pointer, bytes int) {}
