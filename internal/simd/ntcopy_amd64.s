//go:build !purego

#include "textflag.h"

// func ntCopyBytes(dst, src unsafe.Pointer, n int64)
// Non-overlapping copy: plain byte stores until dst is 16-byte aligned,
// then 64- and 16-byte non-temporal blocks (unaligned loads, MOVNTO
// stores), plain byte stores for the tail. Callers fence with storeFence
// before the data is read by another core.
TEXT ·ntCopyBytes(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

head:
	TESTQ CX, CX
	JLE   done
	MOVQ  DI, AX
	ANDQ  $15, AX
	JZ    body
	MOVB  (SI), AL
	MOVB  AL, (DI)
	INCQ  SI
	INCQ  DI
	DECQ  CX
	JMP   head

body:
	CMPQ   CX, $64
	JL     chunk16
	MOVOU  (SI), X0
	MOVOU  16(SI), X1
	MOVOU  32(SI), X2
	MOVOU  48(SI), X3
	MOVNTO X0, (DI)
	MOVNTO X1, 16(DI)
	MOVNTO X2, 32(DI)
	MOVNTO X3, 48(DI)
	ADDQ   $64, SI
	ADDQ   $64, DI
	SUBQ   $64, CX
	JMP    body

chunk16:
	CMPQ   CX, $16
	JL     tail
	MOVOU  (SI), X0
	MOVNTO X0, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	SUBQ   $16, CX
	JMP    chunk16

tail:
	TESTQ CX, CX
	JLE   done
	MOVB  (SI), AL
	MOVB  AL, (DI)
	INCQ  SI
	INCQ  DI
	DECQ  CX
	JMP   tail

done:
	RET

// func storeFence()
TEXT ·storeFence(SB), NOSPLIT, $0-0
	SFENCE
	RET
