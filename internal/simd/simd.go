// Package simd holds the batched inner-loop kernels of the three hot phases
// — expand's key-compute + scatter, the radix sort's counting and stable
// scatter passes, and the fused accumulate-on-equal-key fold — batched over
// 8-tuple groups so bounds checks amortize and the compiler sees straight-
// line ILP. The package is the single dispatch point for hardware-specific
// code:
//
//   - Default build (no tags): unsafe-batched pure Go. The loops are written
//     so each 8-wide group compiles to branchless loads/stores; GOAMD64=v3
//     lets the compiler pick BMI/AVX forms of the shift/mask arithmetic.
//   - -tags purego: every batched entry point degrades to the scalar
//     reference implementation — no unsafe, no assembly. This is the build
//     for auditability and for platforms where unsafe batching is unwanted.
//   - amd64 assembly is limited to cache-control hints (prefetch_amd64.s);
//     the structure admits AVX2/NEON bodies behind further build tags
//     without touching any caller.
//
// Every kernel has an exported ...Scalar reference twin compiled into every
// build. The scalar twins are the oracle: batched and scalar must be
// BIT-IDENTICAL (same element order, same floating-point association — the
// batched forms never reorder value additions), which
// internal/radix and internal/core pin with equivalence tests and the
// FuzzBatchedVsScalar target. Callers select per run (core's
// Options.DisableBatch) and report the choice on Stats.Kernel.
package simd

// Pair mirrors radix.Pair (an 8-byte packed key and its float64 value).
// Declared here so the kernels stay dependency-free; internal/radix converts
// its identical struct via unsafe.Slice at the call boundary.
type Pair struct {
	Key uint64
	Val float64
}

// Value is the element set of the value-carrying tuple layouts: float64
// (squeezed), float32 and int32 (narrow). It matches radix.Numeric.
type Value interface {
	~float32 | ~float64 | ~int32
}

// Level reports the kernel level of this build, for Stats/bench output:
// "batched" (default build), "batched+goamd64v3" (compiled with GOAMD64=v3
// or higher) or "purego" (-tags purego).
func Level() string { return level }
