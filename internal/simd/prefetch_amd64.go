//go:build amd64 && !purego

package simd

import "unsafe"

//go:noescape
func prefetchT0(p unsafe.Pointer)

//go:noescape
func prefetchNTA(p unsafe.Pointer)

//go:noescape
func prefetchRangeT0(p unsafe.Pointer, bytes int64)

// PrefetchT0 hints the cache hierarchy to load the line containing p.
func PrefetchT0(p unsafe.Pointer) { prefetchT0(p) }

// PrefetchNTA hints a non-temporal load of the line containing p.
func PrefetchNTA(p unsafe.Pointer) { prefetchNTA(p) }

// PrefetchRangeT0 issues a T0 prefetch for every cache line of [p, p+bytes).
// Used on bin-flush destinations so the copy's store misses overlap the
// preceding compute instead of serializing on RFO latency.
func PrefetchRangeT0(p unsafe.Pointer, bytes int) {
	if bytes > 0 {
		prefetchRangeT0(p, int64(bytes))
	}
}
