//go:build !purego && amd64.v3

package simd

// GOAMD64=v3 (or higher) build: same Go source, but the compiler may use
// BMI/AVX forms for the shift/mask arithmetic. Reported so bench output
// distinguishes the microarchitecture level.
const level = "batched+goamd64v3"
