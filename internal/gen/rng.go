package gen

// RNG is the exported face of the package's deterministic SplitMix64
// generator, for callers (e.g. the NUMA latency microbenchmark, shufflers in
// tests) that need reproducible randomness outside matrix generation.
type RNG struct{ r *rng }

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{r: newRNG(seed)} }

// Uint64 returns the next raw 64-bit output.
func (g *RNG) Uint64() uint64 { return g.r.next() }

// Intn returns a uniform int32 in [0, n). n must be positive.
func (g *RNG) Intn(n int32) int32 { return g.r.intn(n) }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.float64v() }
