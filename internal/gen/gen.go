// Package gen generates the synthetic matrices used throughout the paper's
// evaluation: Erdős–Rényi (ER) random matrices with a fixed number of
// nonzeros per column, R-MAT power-law matrices with the Graph500 parameters,
// and degree-profile surrogates for the 12 SuiteSparse matrices of Table VI.
//
// All generators are deterministic given a seed, use an embedded
// SplitMix64/xoshiro-style PRNG (stdlib-only, reproducible across Go
// versions), and return matrices with duplicate coordinates already merged,
// matching how the paper counts nnz.
package gen

import (
	"math"

	"pbspgemm/internal/matrix"
)

// rng is a SplitMix64 PRNG. It is deliberately tiny and deterministic so
// matrix generation is reproducible across platforms and Go releases
// (math/rand's stream is not guaranteed stable between versions).
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int32) int32 {
	return int32(r.next() % uint64(n))
}

// float64v returns a uniform float in [0, 1).
func (r *rng) float64v() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// ER generates an n-by-n Erdős–Rényi matrix with exactly d nonzeros placed
// uniformly at random in each column (the paper's "ER matrix with d nonzeros
// per column"). Values are uniform in [0,1). Collisions within a column are
// re-drawn so every column has exactly min(d, n) distinct entries.
func ER(n int32, d int, seed uint64) *matrix.CSR {
	if int32(d) > n {
		d = int(n)
	}
	r := newRNG(seed)
	coo := &matrix.COO{NumRows: n, NumCols: n}
	seen := make(map[int32]struct{}, d)
	for j := int32(0); j < n; j++ {
		clear(seen)
		for len(seen) < d {
			i := r.intn(n)
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, r.float64v())
		}
	}
	return coo.ToCSR()
}

// RMATParams are the four R-MAT quadrant probabilities. They must sum to 1.
type RMATParams struct{ A, B, C, D float64 }

// ERParams is the uniform R-MAT parameterization (a=b=c=d=0.25); with it
// RMAT degenerates to an ER-like generator.
var ERParams = RMATParams{0.25, 0.25, 0.25, 0.25}

// Graph500Params are the skewed parameters the paper calls "RMAT"
// (a=0.57, b=c=0.19, d=0.05), producing heavy-tailed degree distributions.
var Graph500Params = RMATParams{0.57, 0.19, 0.19, 0.05}

// RMAT generates a 2^scale square matrix with edgeFactor*2^scale sampled
// edges using the recursive R-MAT process. Duplicate edges are merged
// (summing values), so the returned nnz can be slightly below
// edgeFactor*2^scale for skewed parameters — the same effect the Graph500
// generator exhibits and the paper inherits.
func RMAT(scale int, edgeFactor int, p RMATParams, seed uint64) *matrix.CSR {
	n := int32(1) << scale
	m := int64(edgeFactor) * int64(n)
	r := newRNG(seed)
	coo := &matrix.COO{
		NumRows: n, NumCols: n,
		Row: make([]int32, m), Col: make([]int32, m), Val: make([]float64, m),
	}
	// Precompute cumulative quadrant probabilities.
	ab := p.A + p.B
	abc := p.A + p.B + p.C
	for e := int64(0); e < m; e++ {
		var row, col int32
		for bit := scale - 1; bit >= 0; bit-- {
			u := r.float64v()
			switch {
			case u < p.A:
				// top-left: nothing set
			case u < ab:
				col |= 1 << bit
			case u < abc:
				row |= 1 << bit
			default:
				row |= 1 << bit
				col |= 1 << bit
			}
		}
		coo.Row[e] = row
		coo.Col[e] = col
		coo.Val[e] = r.float64v()
	}
	return coo.ToCSR()
}

// ERMatrix is the paper's ER workload at a Graph500-style (scale, edgeFactor)
// parameterization: 2^scale rows/cols with edgeFactor nonzeros per column.
func ERMatrix(scale, edgeFactor int, seed uint64) *matrix.CSR {
	return ER(1<<scale, edgeFactor, seed)
}

// Banded generates an n-by-n matrix with a dense band of the given half-width
// around the diagonal (entries at |i-j| <= halfWidth). Mesh-like SuiteSparse
// matrices (cant, hood, offshore, 2cubes_sphere) have this locality profile;
// banded surrogates reproduce their high compression factors.
func Banded(n int32, halfWidth int32, seed uint64) *matrix.CSR {
	r := newRNG(seed)
	coo := &matrix.COO{NumRows: n, NumCols: n}
	for i := int32(0); i < n; i++ {
		lo := i - halfWidth
		if lo < 0 {
			lo = 0
		}
		hi := i + halfWidth
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, r.float64v())
		}
	}
	return coo.ToCSR()
}

// DegreeSequence generates an n-by-n matrix where column j receives
// degrees[j%len(degrees)] uniformly random distinct rows. It lets surrogates
// mimic an arbitrary degree profile.
func DegreeSequence(n int32, degrees []int, seed uint64) *matrix.CSR {
	r := newRNG(seed)
	coo := &matrix.COO{NumRows: n, NumCols: n}
	seen := make(map[int32]struct{})
	for j := int32(0); j < n; j++ {
		d := degrees[int(j)%len(degrees)]
		if int32(d) > n {
			d = int(n)
		}
		clear(seen)
		for len(seen) < d {
			i := r.intn(n)
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, r.float64v())
		}
	}
	return coo.ToCSR()
}

// PowerLawDegrees returns n column degrees following a truncated discrete
// power law with exponent alpha, average targetAvg and maximum maxDeg.
// Used to mimic scale-free matrices such as web-Google and patents_main.
func PowerLawDegrees(n int32, targetAvg float64, alpha float64, maxDeg int, seed uint64) []int {
	r := newRNG(seed)
	degs := make([]int, n)
	var sum float64
	for i := range degs {
		// Inverse-CDF sampling of P(k) ~ k^-alpha on [1, maxDeg].
		u := r.float64v()
		k := math.Pow((math.Pow(float64(maxDeg), 1-alpha)-1)*u+1, 1/(1-alpha))
		degs[i] = int(k)
		if degs[i] < 1 {
			degs[i] = 1
		}
		sum += float64(degs[i])
	}
	// Rescale to hit the target average (approximately).
	ratio := targetAvg * float64(n) / sum
	for i := range degs {
		d := int(math.Round(float64(degs[i]) * ratio))
		if d < 1 {
			d = 1
		}
		if d > maxDeg {
			d = maxDeg
		}
		degs[i] = d
	}
	return degs
}
