package gen

import (
	"math"
	"testing"
	"testing/quick"

	"pbspgemm/internal/matrix"
)

func TestERExactDegree(t *testing.T) {
	n, d := int32(500), 7
	m := ER(n, d, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumRows != n || m.NumCols != n {
		t.Fatalf("shape %dx%d, want %dx%d", m.NumRows, m.NumCols, n, n)
	}
	if m.NNZ() != int64(n)*int64(d) {
		t.Fatalf("nnz = %d, want %d", m.NNZ(), int64(n)*int64(d))
	}
	// Every column has exactly d entries.
	csc := m.ToCSC()
	for j := int32(0); j < n; j++ {
		if got := csc.ColNNZ(j); got != int64(d) {
			t.Fatalf("column %d has %d nonzeros, want %d", j, got, d)
		}
	}
}

func TestERDeterministicAndSeedSensitive(t *testing.T) {
	a := ER(128, 4, 42)
	b := ER(128, 4, 42)
	if !matrix.Equal(a, b, 0) {
		t.Fatal("same seed produced different matrices")
	}
	c := ER(128, 4, 43)
	if matrix.Equal(a, c, 0) {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestERDegreeClamped(t *testing.T) {
	m := ER(8, 100, 1) // d > n must clamp to a fully dense column
	if m.NNZ() != 64 {
		t.Fatalf("nnz = %d, want 64 (dense)", m.NNZ())
	}
}

func TestRMATShapeAndDeterminism(t *testing.T) {
	m := RMAT(8, 8, Graph500Params, 5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumRows != 256 || m.NumCols != 256 {
		t.Fatalf("shape %dx%d, want 256x256", m.NumRows, m.NumCols)
	}
	// Duplicates merge, so nnz <= edges; but most edges should survive.
	if m.NNZ() > 256*8 || m.NNZ() < 256*4 {
		t.Fatalf("nnz = %d out of plausible range", m.NNZ())
	}
	m2 := RMAT(8, 8, Graph500Params, 5)
	if !matrix.Equal(m, m2, 0) {
		t.Fatal("RMAT not deterministic")
	}
}

func TestRMATSkewedness(t *testing.T) {
	// Graph500 parameters must produce a much more skewed row-degree
	// distribution than uniform parameters at the same scale/edge factor.
	skew := RMAT(12, 8, Graph500Params, 3)
	unif := RMAT(12, 8, ERParams, 3)
	maxDeg := func(m *matrix.CSR) int64 {
		var mx int64
		for i := int32(0); i < m.NumRows; i++ {
			if d := m.RowNNZ(i); d > mx {
				mx = d
			}
		}
		return mx
	}
	if maxDeg(skew) < 3*maxDeg(unif) {
		t.Fatalf("Graph500 max degree %d not >> uniform %d", maxDeg(skew), maxDeg(unif))
	}
}

func TestRMATFlopsExceedERFlops(t *testing.T) {
	// Skew raises flops = sum d_in*d_out above the uniform case; this is the
	// property that makes Fig. 9 differ from Fig. 7.
	skew := RMAT(11, 8, Graph500Params, 9)
	unif := RMAT(11, 8, ERParams, 9)
	if matrix.FlopsCSR(skew, skew) <= matrix.FlopsCSR(unif, unif) {
		t.Fatal("expected RMAT flops to exceed ER flops")
	}
}

func TestBanded(t *testing.T) {
	m := Banded(100, 2, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior rows have 2*2+1 = 5 entries.
	if got := m.RowNNZ(50); got != 5 {
		t.Fatalf("interior row nnz = %d, want 5", got)
	}
	if got := m.RowNNZ(0); got != 3 {
		t.Fatalf("boundary row nnz = %d, want 3", got)
	}
	// Squaring a band doubles the width: cf should be around d/2 > 1.5.
	st := MeasureStats(m)
	if st.CF < 1.5 {
		t.Fatalf("banded cf = %v, want > 1.5", st.CF)
	}
}

func TestPowerLawDegrees(t *testing.T) {
	degs := PowerLawDegrees(10000, 6.0, 2.1, 300, 7)
	var sum, mx float64
	for _, d := range degs {
		if d < 1 || d > 300 {
			t.Fatalf("degree %d out of bounds", d)
		}
		sum += float64(d)
		if float64(d) > mx {
			mx = float64(d)
		}
	}
	avg := sum / float64(len(degs))
	if math.Abs(avg-6.0) > 1.5 {
		t.Fatalf("average degree %v too far from target 6", avg)
	}
	if mx < 30 {
		t.Fatalf("max degree %v shows no heavy tail", mx)
	}
}

func TestDegreeSequence(t *testing.T) {
	degs := []int{1, 2, 3}
	m := DegreeSequence(90, degs, 11)
	csc := m.ToCSC()
	for j := int32(0); j < 90; j++ {
		want := int64(degs[int(j)%3])
		if got := csc.ColNNZ(j); got != want {
			t.Fatalf("col %d nnz %d, want %d", j, got, want)
		}
	}
}

func TestSurrogateCatalogStats(t *testing.T) {
	// At reduced scale every surrogate must produce a valid matrix whose
	// degree lands near the published value and whose squaring cf is in the
	// right regime (the Fig. 11 x-axis ordering only needs the regime).
	for _, s := range Catalog() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			m := s.Generate(16, 99)
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			st := MeasureStats(m)
			if math.Abs(st.D-s.Degree) > s.Degree*0.35+1 {
				t.Errorf("degree %.2f, published %.2f", st.D, s.Degree)
			}
			if st.CF < 1 {
				t.Errorf("cf %v < 1", st.CF)
			}
			// High-cf surrogates must stay clearly above the PB crossover
			// (cf≈4) and low-cf ones clearly below, preserving Fig. 11's
			// qualitative ordering.
			if s.PubCF > 10 && st.CF < 5 {
				t.Errorf("cf %.2f too low for %s (published %.2f)", st.CF, s.Name, s.PubCF)
			}
			if s.PubCF < 2.5 && st.CF > 5 {
				t.Errorf("cf %.2f too high for %s (published %.2f)", st.CF, s.Name, s.PubCF)
			}
		})
	}
}

func TestCatalogIsTableVI(t *testing.T) {
	cat := Catalog()
	if len(cat) != 12 {
		t.Fatalf("catalog has %d entries, want 12", len(cat))
	}
	names := map[string]bool{}
	for _, s := range cat {
		names[s.Name] = true
		if s.N <= 0 || s.Degree <= 0 || s.PubCF < 1 {
			t.Errorf("%s: implausible published stats", s.Name)
		}
	}
	for _, want := range []string{"cant", "hood", "web-Google", "mc2depi"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestRNGQuickUniform(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		// Intn stays in range and Float64 in [0,1).
		for i := 0; i < 100; i++ {
			if v := r.Intn(17); v < 0 || v >= 17 {
				return false
			}
			if f := r.Float64(); f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
