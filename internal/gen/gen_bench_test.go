package gen

import "testing"

func BenchmarkERScale16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ERMatrix(16, 8, uint64(i))
	}
}

func BenchmarkRMATScale16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RMAT(16, 8, Graph500Params, uint64(i))
	}
}

func BenchmarkSurrogateScircuit(b *testing.B) {
	var s Surrogate
	for _, c := range Catalog() {
		if c.Name == "scircuit" {
			s = c
		}
	}
	for i := 0; i < b.N; i++ {
		_ = s.Generate(8, uint64(i))
	}
}
