package gen

import (
	"pbspgemm/internal/matrix"
)

// Surrogate describes a synthetic stand-in for one of the 12 SuiteSparse
// matrices in Table VI of the paper. The module is offline, so the real
// matrices cannot be downloaded; each surrogate reproduces the published
// dimension, nonzero count, average degree and — approximately — the flops
// and compression factor of squaring, which are the properties the paper's
// Fig. 11 experiment depends on. See DESIGN.md §4 for the substitution note.
//
// The generator places Degree entries per column uniformly at random within a
// window of half-width Window rows around the diagonal. Window controls the
// compression factor: a narrow window makes outer products collide (high cf,
// like the mesh matrices cant/hood), a wide window behaves like ER (cf near
// 1, like m133_b3). SkewAlpha > 0 switches the per-column degree to a
// truncated power law, raising flops above n*d^2 the way scale-free matrices
// (web-Google, patents_main) do.
type Surrogate struct {
	Name      string
	N         int32   // rows = cols
	Degree    float64 // average nonzeros per column
	Window    int32   // half-width of the diagonal placement window; 0 = whole matrix
	SkewAlpha float64 // 0 = uniform degrees; else power-law exponent
	MaxDeg    int     // power-law truncation

	// Published Table VI statistics for side-by-side reporting.
	PubNNZ   int64
	PubFlops int64
	PubNNZC  int64
	PubCF    float64
}

// Catalog returns the 12 Table VI surrogates in the paper's row order.
// Published values are from Table VI. (Note: the paper's offshore row lists
// nnz(C)=69.8M, inconsistent with its cf=3.05 and flops=71.3M; we trust
// flops and cf, implying nnz(C) ≈ 23.4M.)
func Catalog() []Surrogate {
	return []Surrogate{
		{Name: "2cubes_sphere", N: 101492, Degree: 16.23, Window: 46,
			PubNNZ: 1600000, PubFlops: 27500000, PubNNZC: 9000000, PubCF: 3.06},
		{Name: "amazon0505", N: 410236, Degree: 8.18, Window: 25, SkewAlpha: 2.5, MaxDeg: 60,
			PubNNZ: 3400000, PubFlops: 31900000, PubNNZC: 16100000, PubCF: 1.98},
		{Name: "cage12", N: 130228, Degree: 15.61, Window: 67,
			PubNNZ: 2000000, PubFlops: 34600000, PubNNZC: 15200000, PubCF: 2.14},
		{Name: "cant", N: 62451, Degree: 64.17, Window: 139,
			PubNNZ: 4000000, PubFlops: 269500000, PubNNZC: 17400000, PubCF: 15.45},
		{Name: "hood", N: 220542, Degree: 44.87, Window: 77,
			PubNNZ: 9900000, PubFlops: 562000000, PubNNZC: 34200000, PubCF: 16.41},
		{Name: "m133_b3", N: 200200, Degree: 4.00, Window: 0,
			PubNNZ: 800800, PubFlops: 3200000, PubNNZC: 3200000, PubCF: 1.01},
		{Name: "majorbasis", N: 160000, Degree: 10.94, Window: 29,
			PubNNZ: 1800000, PubFlops: 19200000, PubNNZC: 8200000, PubCF: 2.33},
		{Name: "mc2depi", N: 525825, Degree: 3.99, Window: 8,
			PubNNZ: 2100000, PubFlops: 8400000, PubNNZC: 5200000, PubCF: 1.6},
		{Name: "offshore", N: 259789, Degree: 16.33, Window: 47,
			PubNNZ: 4200000, PubFlops: 71300000, PubNNZC: 23400000, PubCF: 3.05},
		{Name: "patents_main", N: 240547, Degree: 2.33, Window: 20, SkewAlpha: 2.0, MaxDeg: 30,
			PubNNZ: 560900, PubFlops: 2600000, PubNNZC: 2300000, PubCF: 1.14},
		{Name: "scircuit", N: 170998, Degree: 5.61, Window: 22, SkewAlpha: 2.0, MaxDeg: 60,
			PubNNZ: 958900, PubFlops: 8700000, PubNNZC: 5200000, PubCF: 1.66},
		{Name: "web-Google", N: 916428, Degree: 5.57, Window: 20, SkewAlpha: 2.05, MaxDeg: 200,
			PubNNZ: 5100000, PubFlops: 60700000, PubNNZC: 29700000, PubCF: 2.04},
	}
}

// Generate materializes the surrogate matrix. scaleDiv > 1 shrinks the
// dimension by that factor (keeping degree and window) for quick tests; pass
// 1 for the full Table VI size.
func (s Surrogate) Generate(scaleDiv int32, seed uint64) *matrix.CSR {
	n := s.N
	if scaleDiv > 1 {
		n = s.N / scaleDiv
		if n < 64 {
			n = 64
		}
	}
	degrees := s.columnDegrees(n, seed)
	return windowed(n, degrees, s.Window, seed+1)
}

func (s Surrogate) columnDegrees(n int32, seed uint64) []int {
	if s.SkewAlpha > 0 {
		return PowerLawDegrees(n, s.Degree, s.SkewAlpha, s.MaxDeg, seed)
	}
	// Uniform: alternate floor/ceil so the average lands on Degree.
	lo := int(s.Degree)
	frac := s.Degree - float64(lo)
	degs := make([]int, n)
	r := newRNG(seed)
	for i := range degs {
		d := lo
		if r.float64v() < frac {
			d++
		}
		if d < 1 {
			d = 1
		}
		degs[i] = d
	}
	return degs
}

// windowed places degrees[j] distinct entries in column j, uniformly within
// rows [j-window, j+window] (clipped); window <= 0 means the whole row range.
func windowed(n int32, degrees []int, window int32, seed uint64) *matrix.CSR {
	r := newRNG(seed)
	coo := &matrix.COO{NumRows: n, NumCols: n}
	seen := make(map[int32]struct{})
	for j := int32(0); j < n; j++ {
		lo, hi := int32(0), n-1
		if window > 0 {
			lo = j - window
			if lo < 0 {
				lo = 0
			}
			hi = j + window
			if hi >= n {
				hi = n - 1
			}
		}
		span := hi - lo + 1
		d := degrees[j]
		if int32(d) > span {
			d = int(span)
		}
		clear(seen)
		for len(seen) < d {
			i := lo + r.intn(span)
			if _, dup := seen[i]; dup {
				continue
			}
			seen[i] = struct{}{}
			coo.Row = append(coo.Row, i)
			coo.Col = append(coo.Col, j)
			coo.Val = append(coo.Val, r.float64v())
		}
	}
	return coo.ToCSR()
}

// Stats holds the Table VI columns for a generated matrix.
type Stats struct {
	N     int32
	NNZ   int64
	D     float64
	Flops int64
	NNZC  int64
	CF    float64
}

// MeasureStats computes the Table VI statistics (flops, nnz(C), cf of
// squaring) for any matrix.
func MeasureStats(a *matrix.CSR) Stats {
	flops := matrix.FlopsCSR(a, a)
	nnzC := matrix.ProductNNZ(a, a)
	cf := 0.0
	if nnzC > 0 {
		cf = float64(flops) / float64(nnzC)
	}
	return Stats{
		N: a.NumRows, NNZ: a.NNZ(), D: a.AvgDegree(),
		Flops: flops, NNZC: nnzC, CF: cf,
	}
}
