package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pbspgemm"
	"pbspgemm/internal/mmio"
)

// TestServerDegradedTiledRetry is the degradation-ladder acceptance: a
// product whose full-speed footprint exceeds the ceiling, but whose budgeted
// (tiled) footprint fits, is served degraded — 200, Degraded flagged, result
// identical to the reference — instead of shed with 429.
func TestServerDegradedTiledRetry(t *testing.T) {
	eng, err := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	if err != nil {
		t.Fatal(err)
	}
	a := pbspgemm.NewER(256, 8, 1)
	b := pbspgemm.NewER(256, 8, 2)
	const degBudget = 128 << 10

	// Pick the ceiling from the planner itself: exactly the tiled footprint,
	// strictly under the full-speed one, so the ladder's two rungs separate.
	full, err := eng.Plan(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := eng.Plan(context.Background(), a, b, pbspgemm.WithMemoryBudget(degBudget))
	if err != nil {
		t.Fatal(err)
	}
	if tiled.PredictedFootprintBytes >= full.PredictedFootprintBytes {
		t.Fatalf("tiled footprint %d not below full %d; test inputs need rework",
			tiled.PredictedFootprintBytes, full.PredictedFootprintBytes)
	}
	s, err := NewServer(Config{
		Engine:              eng,
		MemoryCeilingBytes:  tiled.PredictedFootprintBytes,
		DegradedBudgetBytes: degBudget,
	})
	if err != nil {
		t.Fatal(err)
	}

	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	body := fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb)
	resp, rec := multiplyJSON(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("degradable multiply: status %d body %s", rec.Code, rec.Body)
	}
	if !resp.Degraded {
		t.Fatal("response does not report the degraded (tiled) run")
	}
	if calls := s.eng.Metrics().Calls; calls != 1 {
		t.Fatalf("engine ran %d multiplies, want 1", calls)
	}
	if m := s.Metrics(); m.Degraded != 1 {
		t.Fatalf("metrics report %d degraded requests, want 1", m.Degraded)
	}

	// The tiled product is the same product: binary output vs the reference.
	rec2 := do(s, httptest.NewRequest("POST", "/multiply",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q,"output":"binary"}`, ida, idb))))
	if rec2.Code != http.StatusOK {
		t.Fatalf("binary degraded multiply: %d", rec2.Code)
	}
	if rec2.Header().Get("X-Pbspgemm-Degraded") != "true" {
		t.Fatalf("degraded header missing: %v", rec2.Header())
	}
	// Cached under the original (full-speed) key: no second engine run.
	if rec2.Header().Get("X-Pbspgemm-Cached") != "true" {
		t.Fatalf("degraded product not cached under the request key: %v", rec2.Header())
	}
	got, err := mmio.ReadBinary(bytes.NewReader(rec2.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !pbspgemm.EqualWithin(pbspgemm.Reference(a, b), got, 1e-9) {
		t.Fatal("degraded product differs from reference")
	}
}

// TestServerDegradationRespectsExplicitBudget: a request that pinned its own
// memory budget is never silently re-planned — if its footprint is
// inadmissible it sheds with 429 even though DegradedBudgetBytes is set.
func TestServerDegradationRespectsExplicitBudget(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MemoryCeilingBytes = 1024
		c.DegradedBudgetBytes = 128 << 10
	})
	a := pbspgemm.NewER(256, 8, 1)
	b := pbspgemm.NewER(256, 8, 2)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	_, rec := multiplyJSON(t, s, fmt.Sprintf(
		`{"a":%q,"b":%q,"memory_budget_bytes":%d}`, ida, idb, int64(1)<<30))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("explicit-budget inadmissible request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if calls := s.eng.Metrics().Calls; calls != 0 {
		t.Fatalf("engine ran %d multiplies despite shed", calls)
	}
}

// TestServerDegradationDisabledSheds: without DegradedBudgetBytes the ladder
// has no middle rung — the footprint shed goes straight to 429.
func TestServerDegradationDisabledSheds(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MemoryCeilingBytes = 1024 })
	a := pbspgemm.NewER(256, 8, 1)
	b := pbspgemm.NewER(256, 8, 2)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	_, rec := multiplyJSON(t, s, fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 with degradation disabled", rec.Code)
	}
	if m := s.Metrics(); m.Degraded != 0 {
		t.Fatalf("metrics report %d degraded requests, want 0", m.Degraded)
	}
}

// TestAdmissionRetryAfterJitter pins the backoff spreading: repeated sheds
// get Retry-After values inside [base, 1.5*base] that are not all identical,
// so synchronized clients do not re-arrive in one wave.
func TestAdmissionRetryAfterJitter(t *testing.T) {
	a := NewAdmission(1000, 4, time.Minute)
	seen := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		err := a.Acquire(context.Background(), 2000)
		var shed *ShedError
		if !errors.As(err, &shed) {
			t.Fatalf("acquire %d: %v, want footprint shed", i, err)
		}
		// No waiters: base is 1s, jitter adds up to +50%.
		if shed.RetryAfter < time.Second || shed.RetryAfter > 1500*time.Millisecond {
			t.Fatalf("RetryAfter %v outside [1s, 1.5s]", shed.RetryAfter)
		}
		seen[shed.RetryAfter] = true
	}
	if len(seen) < 2 {
		t.Fatalf("16 sheds produced %d distinct Retry-After values; jitter missing", len(seen))
	}
}

// TestAdmissionQueueTimeoutSentinel pins the error taxonomy: a queue-wait
// shed matches both ErrShed and ErrQueueTimeout; a footprint shed matches
// only ErrShed; a client cancellation matches neither (it is the ctx error).
func TestAdmissionQueueTimeoutSentinel(t *testing.T) {
	a := NewAdmission(1000, 4, 20*time.Millisecond)
	if err := a.Acquire(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	defer a.Release(1000)

	timeoutErr := a.Acquire(context.Background(), 100)
	if !errors.Is(timeoutErr, ErrQueueTimeout) || !errors.Is(timeoutErr, ErrShed) {
		t.Fatalf("queue-wait shed %v must match ErrQueueTimeout and ErrShed", timeoutErr)
	}

	footprintErr := a.Acquire(context.Background(), 5000)
	if !errors.Is(footprintErr, ErrShed) || errors.Is(footprintErr, ErrQueueTimeout) {
		t.Fatalf("footprint shed %v must match ErrShed only", footprintErr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, 100) }()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 }, "waiter to queue")
	cancel()
	cancelErr := <-done
	if !errors.Is(cancelErr, context.Canceled) {
		t.Fatalf("client cancellation surfaced as %v", cancelErr)
	}
	if errors.Is(cancelErr, ErrShed) || errors.Is(cancelErr, ErrQueueTimeout) {
		t.Fatalf("client cancellation %v must not look like a shed", cancelErr)
	}
}
