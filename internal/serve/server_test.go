package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pbspgemm"
	"pbspgemm/internal/mmio"
)

// newTestServer builds a server over a fresh engine. WithBeta pins the
// roofline bandwidth so no test pays the one-shot STREAM calibration.
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	eng, err := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Engine: eng}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do runs one request through the handler without sockets.
func do(s *Server, req *http.Request) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// uploadText posts m as Matrix Market text and returns its registry id.
func uploadText(t *testing.T, s *Server, m *pbspgemm.CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pbspgemm.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	rec := do(s, httptest.NewRequest("POST", "/matrices", &buf))
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("upload: status %d body %s", rec.Code, rec.Body)
	}
	var resp uploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.ID
}

// multiplyJSON posts a multiply request and decodes the metadata reply.
func multiplyJSON(t *testing.T, s *Server, body string) (multiplyResponse, *httptest.ResponseRecorder) {
	t.Helper()
	rec := do(s, httptest.NewRequest("POST", "/multiply", strings.NewReader(body)))
	var resp multiplyResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad multiply body %s: %v", rec.Body, err)
		}
	}
	return resp, rec
}

func TestServerUploadDedupAcrossFormats(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(128, 4, 1)
	idText := uploadText(t, s, a)

	var bin bytes.Buffer
	if err := mmio.WriteBinary(&bin, a); err != nil {
		t.Fatal(err)
	}
	rec := do(s, httptest.NewRequest("POST", "/matrices", &bin))
	if rec.Code != http.StatusOK {
		t.Fatalf("binary re-upload: status %d body %s", rec.Code, rec.Body)
	}
	var resp uploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Existed || resp.ID != idText {
		t.Fatalf("binary upload of same content: existed=%v id=%s want %s", resp.Existed, resp.ID, idText)
	}
	if st := s.Registry().Stats(); st.Matrices != 1 {
		t.Fatalf("registry holds %d matrices, want 1 (dedup)", st.Matrices)
	}

	// Metadata and listing endpoints see it.
	if rec := do(s, httptest.NewRequest("GET", "/matrices/"+idText, nil)); rec.Code != http.StatusOK {
		t.Fatalf("GET matrix: %d", rec.Code)
	}
	if rec := do(s, httptest.NewRequest("GET", "/matrices/nope", nil)); rec.Code != http.StatusNotFound {
		t.Fatalf("GET missing matrix: %d", rec.Code)
	}
	if rec := do(s, httptest.NewRequest("DELETE", "/matrices/"+idText, nil)); rec.Code != http.StatusNoContent {
		t.Fatalf("DELETE: %d", rec.Code)
	}
}

func TestServerUploadErrors(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxUploadBytes = 512 })
	if rec := do(s, httptest.NewRequest("POST", "/matrices", strings.NewReader("not a matrix"))); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage upload: %d", rec.Code)
	}
	// A matrix whose text form exceeds the upload limit is rejected with 413.
	var buf bytes.Buffer
	if err := pbspgemm.WriteMatrixMarket(&buf, pbspgemm.NewER(256, 4, 1)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 512 {
		t.Fatalf("test matrix too small (%d bytes) to exceed the limit", buf.Len())
	}
	if rec := do(s, httptest.NewRequest("POST", "/matrices", &buf)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: %d body %s", rec.Code, rec.Body)
	}
}

func TestServerRegistryFullUpload(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RegistryBudgetBytes = 1 })
	var buf bytes.Buffer
	if err := pbspgemm.WriteMatrixMarket(&buf, pbspgemm.NewER(64, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if rec := do(s, httptest.NewRequest("POST", "/matrices", &buf)); rec.Code != http.StatusInsufficientStorage {
		t.Fatalf("upload into full registry: %d", rec.Code)
	}
}

// TestServerRepeatServedFromCache is the headline cache acceptance: the
// second identical request returns the product without the Engine running
// again (its multiply counter is unchanged), and the result round-trips
// bit-identically through the binary output.
func TestServerRepeatServedFromCache(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(256, 4, 1)
	b := pbspgemm.NewER(256, 4, 2)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	body := fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb)

	resp, rec := multiplyJSON(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("multiply: %d body %s", rec.Code, rec.Body)
	}
	if resp.Cached || resp.Coalesced {
		t.Fatalf("first request reported cached=%v coalesced=%v", resp.Cached, resp.Coalesced)
	}
	if calls := s.eng.Metrics().Calls; calls != 1 {
		t.Fatalf("engine ran %d multiplies, want 1", calls)
	}

	resp2, rec2 := multiplyJSON(t, s, body)
	if rec2.Code != http.StatusOK || !resp2.Cached {
		t.Fatalf("repeat: status %d cached=%v", rec2.Code, resp2.Cached)
	}
	if calls := s.eng.Metrics().Calls; calls != 1 {
		t.Fatalf("engine multiply counter moved to %d on a cache hit", calls)
	}
	if resp2.NNZ != resp.NNZ || resp2.Flops != resp.Flops {
		t.Fatalf("cached metadata drifted: %+v vs %+v", resp2, resp)
	}

	// The binary output of the cached product matches the reference product.
	rec3 := do(s, httptest.NewRequest("POST", "/multiply",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q,"output":"binary"}`, ida, idb))))
	if rec3.Code != http.StatusOK {
		t.Fatalf("binary output: %d", rec3.Code)
	}
	if rec3.Header().Get("X-Pbspgemm-Cached") != "true" {
		t.Fatalf("binary output not served from cache: %v", rec3.Header())
	}
	got, err := mmio.ReadBinary(bytes.NewReader(rec3.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !pbspgemm.EqualWithin(pbspgemm.Reference(a, b), got, 1e-9) {
		t.Fatal("served product differs from reference")
	}

	// Different options are a different cache identity.
	if respT, recT := multiplyJSON(t, s, fmt.Sprintf(`{"a":%q,"b":%q,"threads":1}`, ida, idb)); recT.Code != http.StatusOK || respT.Cached {
		t.Fatalf("distinct options served from cache: status %d cached=%v", recT.Code, respT.Cached)
	}
	if calls := s.eng.Metrics().Calls; calls != 2 {
		t.Fatalf("engine calls = %d after distinct-option request, want 2", calls)
	}
	if st := s.Cache().Stats(); st.Hits != 2 || st.Entries != 2 {
		t.Fatalf("cache stats: %+v", st)
	}
}

// TestServerCoalescesConcurrentIdenticalRequests gates the execution hook so
// N identical requests demonstrably pile onto one in-flight multiply: the
// engine runs exactly once and N-1 responses report coalesced.
func TestServerCoalescesConcurrentIdenticalRequests(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(128, 4, 1)
	b := pbspgemm.NewER(128, 4, 2)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	body := fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb)

	gate := make(chan struct{})
	var executes atomic.Int64
	inner := s.execute
	s.execute = func(ctx context.Context, sp *productSpec) (*Product, error) {
		executes.Add(1)
		<-gate
		return inner(ctx, sp)
	}
	sp, _, err := s.resolveSpec(multiplyRequest{A: ida, B: idb})
	if err != nil {
		t.Fatal(err)
	}
	key := sp.key()

	const n = 8
	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	results := make([]multiplyResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(s, httptest.NewRequest("POST", "/multiply", strings.NewReader(body)))
			codes[i] = rec.Code
			_ = json.Unmarshal(rec.Body.Bytes(), &results[i])
		}(i)
	}
	// Deterministic coalescing: wait until all n-1 followers joined the
	// leader's flight before releasing it.
	waitFor(t, func() bool { return s.flights.waiting(key) == n-1 }, "followers to join flight")
	close(gate)
	wg.Wait()

	if got := executes.Load(); got != 1 {
		t.Fatalf("execute ran %d times, want exactly 1", got)
	}
	if calls := s.eng.Metrics().Calls; calls != 1 {
		t.Fatalf("engine ran %d multiplies, want exactly 1", calls)
	}
	var leaders, followers int
	for i := range results {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if results[i].Coalesced {
			followers++
		} else {
			leaders++
		}
		if results[i].NNZ != results[0].NNZ {
			t.Fatalf("request %d got a different product", i)
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Fatalf("leaders=%d followers=%d, want 1 and %d", leaders, followers, n-1)
	}
	// Coalescing is observable in the metrics snapshot too.
	m := s.Metrics()
	if m.Coalesced != n-1 {
		t.Fatalf("metrics report %d coalesced requests, want %d", m.Coalesced, n-1)
	}
	if def := m.Tenants["default"]; def.Coalesced != n-1 || def.Multiplies != n {
		t.Fatalf("tenant counters: %+v", def)
	}
	// No worker goroutine outlives its request.
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before+2
	}, "goroutines to drain")
}

// TestServerShedsOverCeiling is the admission acceptance: a product whose
// planner-predicted footprint exceeds the ceiling is refused with 429 +
// Retry-After before the Engine allocates (or runs) anything.
func TestServerShedsOverCeiling(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MemoryCeilingBytes = 1024 })
	a := pbspgemm.NewER(256, 8, 1)
	b := pbspgemm.NewER(256, 8, 2)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)

	// Sanity: the planner predicts far more than the ceiling for this product.
	plan, err := s.eng.Plan(context.Background(), a, b)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedFootprintBytes <= 1024 {
		t.Fatalf("test product too small: predicted %d bytes", plan.PredictedFootprintBytes)
	}

	_, rec := multiplyJSON(t, s, fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d body %s, want 429", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if calls := s.eng.Metrics().Calls; calls != 0 {
		t.Fatalf("engine dispatched %d multiplies despite shed", calls)
	}
	m := s.Metrics()
	if m.Admission.Shed != 1 || m.Tenants["default"].Shed != 1 {
		t.Fatalf("shed counters: admission %+v tenant %+v", m.Admission, m.Tenants["default"])
	}

	// The dry-run endpoint reports the same verdict without side effects.
	rec2 := do(s, httptest.NewRequest("POST", "/plan",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb))))
	if rec2.Code != http.StatusOK {
		t.Fatalf("plan: %d", rec2.Code)
	}
	var pr planResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Admissible {
		t.Fatalf("plan reports admissible for an over-ceiling product: %+v", pr)
	}
	if pr.PredictedFootprintBytes != plan.PredictedFootprintBytes {
		t.Fatalf("plan endpoint footprint %d != Engine.Plan %d",
			pr.PredictedFootprintBytes, plan.PredictedFootprintBytes)
	}
}

func TestServerSemiringsAndMask(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(128, 4, 3)
	b := pbspgemm.NewER(128, 4, 4)
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	ref := pbspgemm.Reference(a, b)

	fetch := func(body string) *pbspgemm.CSR {
		t.Helper()
		rec := do(s, httptest.NewRequest("POST", "/multiply", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("multiply %s: %d body %s", body, rec.Code, rec.Body)
		}
		m, err := mmio.ReadBinary(bytes.NewReader(rec.Body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Boolean: same structure as the arithmetic product, all values 1.
	boolC := fetch(fmt.Sprintf(`{"a":%q,"b":%q,"semiring":"boolean","output":"binary"}`, ida, idb))
	if boolC.NNZ() != ref.NNZ() {
		t.Fatalf("boolean nnz %d != reference %d", boolC.NNZ(), ref.NNZ())
	}
	for i, v := range boolC.Val {
		if v != 1 {
			t.Fatalf("boolean value[%d] = %v, want 1", i, v)
		}
	}

	// Masked arithmetic: equals the reference product filtered by the mask.
	mask := pbspgemm.NewER(128, 3, 9)
	idm := uploadText(t, s, mask)
	maskedC := fetch(fmt.Sprintf(`{"a":%q,"b":%q,"mask":%q,"output":"binary"}`, ida, idb, idm))
	want := maskFilter(ref, mask, false)
	if !pbspgemm.EqualWithin(want, maskedC, 1e-9) {
		t.Fatal("masked product differs from filtered reference")
	}
	complC := fetch(fmt.Sprintf(`{"a":%q,"b":%q,"mask":%q,"complement":true,"output":"binary"}`, ida, idb, idm))
	if !pbspgemm.EqualWithin(maskFilter(ref, mask, true), complC, 1e-9) {
		t.Fatal("complement-masked product differs from filtered reference")
	}

	// Min-plus on a hand-built instance: D2 = one relaxation of D over (min,+).
	d := &pbspgemm.CSR{
		NumRows: 2, NumCols: 2,
		RowPtr: []int64{0, 2, 3},
		ColIdx: []int32{0, 1, 1},
		Val:    []float64{0, 5, 1},
	}
	idd := uploadText(t, s, d)
	mp := fetch(fmt.Sprintf(`{"a":%q,"b":%q,"semiring":"minplus","output":"binary"}`, idd, idd))
	// Row 0: min(0+0, ...)=0 to col0; col1: min(0+5, 5+1)=5. Row 1: 1+1=2.
	wantMP := []float64{0, 5, 2}
	if mp.NNZ() != 3 {
		t.Fatalf("minplus nnz = %d, want 3", mp.NNZ())
	}
	for i, v := range mp.Val {
		if v != wantMP[i] {
			t.Fatalf("minplus val[%d] = %v, want %v", i, v, wantMP[i])
		}
	}

	// Unknown algebra and missing ids are client errors.
	if _, rec := multiplyJSON(t, s, fmt.Sprintf(`{"a":%q,"b":%q,"semiring":"nope"}`, ida, idb)); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown semiring: %d", rec.Code)
	}
	if _, rec := multiplyJSON(t, s, fmt.Sprintf(`{"a":%q,"b":"missing"}`, ida)); rec.Code != http.StatusNotFound {
		t.Fatalf("missing matrix: %d", rec.Code)
	}
}

// maskFilter keeps ref's entries where mask stores one (or, complemented,
// where it does not) — the reference semantics of C⟨M⟩.
func maskFilter(ref, mask *pbspgemm.CSR, complement bool) *pbspgemm.CSR {
	out := &pbspgemm.CSR{NumRows: ref.NumRows, NumCols: ref.NumCols, RowPtr: make([]int64, ref.NumRows+1)}
	for i := int32(0); i < ref.NumRows; i++ {
		stored := make(map[int32]bool)
		for p := mask.RowPtr[i]; p < mask.RowPtr[i+1]; p++ {
			stored[mask.ColIdx[p]] = true
		}
		for p := ref.RowPtr[i]; p < ref.RowPtr[i+1]; p++ {
			if stored[ref.ColIdx[p]] != complement {
				out.ColIdx = append(out.ColIdx, ref.ColIdx[p])
				out.Val = append(out.Val, ref.Val[p])
			}
		}
		out.RowPtr[i+1] = int64(len(out.ColIdx))
	}
	return out
}

func TestServerMetricsAndLatency(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(64, 3, 1)
	ida := uploadText(t, s, a)
	req := httptest.NewRequest("POST", "/multiply",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q}`, ida, ida)))
	req.Header.Set("X-Tenant", "acme")
	if rec := do(s, req); rec.Code != http.StatusOK {
		t.Fatalf("multiply: %d", rec.Code)
	}

	rec := do(s, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	var m MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Engine.Calls != 1 || m.Engine.Flops == 0 {
		t.Fatalf("engine snapshot: %+v", m.Engine)
	}
	acme, ok := m.Tenants["acme"]
	if !ok || acme.Multiplies != 1 || acme.Flops == 0 {
		t.Fatalf("tenant acme: %+v (tenants %v)", acme, m.Tenants)
	}
	lat, ok := m.Latency["POST /multiply"]
	if !ok || lat.Count != 1 || lat.P50Ms <= 0 || lat.P99Ms < lat.P50Ms {
		t.Fatalf("latency: %+v", m.Latency)
	}
	if _, ok := m.Latency["POST /matrices"]; !ok {
		t.Fatalf("upload latency missing: %v", m.Latency)
	}
	if rec := do(s, httptest.NewRequest("GET", "/healthz", nil)); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
}
