package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical products onto one in-flight
// multiply: the first request for a key becomes the leader and starts the
// work; requests arriving while it runs wait for its result instead of
// multiplying again. Every waiter honors its own context — and the work
// itself runs on a flight context detached from the leader's request, so a
// leader whose client disconnects (or whose deadline is shorter than its
// followers') cannot poison the flight: followers with healthy deadlines
// still get the product. The flight is cancelled only when the last waiter
// leaves. (A from-scratch singleflight: x/sync is not vendored.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight

	coalesced int64 // followers that joined an existing flight
}

type flight struct {
	done   chan struct{}
	cancel context.CancelFunc
	val    *Product
	err    error
	// parties is how many callers are still waiting on this flight (the
	// leader counts too); when it reaches zero mid-run, nobody wants the
	// result and the flight context is cancelled.
	parties   int
	followers int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn once per key among concurrent callers. fn receives the flight
// context: derived from the leader's ctx values but not its cancellation,
// cancelled only when every waiter has left. shared reports whether this
// caller got a coalesced result rather than starting fn itself.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) (*Product, error)) (p *Product, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.followers++
		f.parties++
		g.coalesced++
		g.mu.Unlock()
		return g.wait(ctx, f, true)
	}
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), cancel: cancel, parties: 1}
	g.m[key] = f
	g.mu.Unlock()

	go func() {
		f.val, f.err = fn(fctx)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, f, false)
}

// wait blocks until the flight finishes or ctx expires; a departing waiter
// that was the last one left cancels the flight (nobody wants the result,
// stop paying for it at the next phase edge).
func (g *flightGroup) wait(ctx context.Context, f *flight, shared bool) (*Product, bool, error) {
	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.parties--
		last := f.parties == 0
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, shared, ctx.Err()
	}
}

// waiting reports how many followers are currently attached to key's flight
// (0 when no flight is running). Tests use it to deterministically observe
// coalescing before releasing a gated leader.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.followers
	}
	return 0
}

// coalescedTotal reports how many requests ever joined an existing flight.
func (g *flightGroup) coalescedTotal() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}
