package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical products onto one in-flight
// multiply: the first request for a key becomes the leader and runs the
// work; requests arriving while it runs wait for its result instead of
// multiplying again. Followers still honor their own context — a follower
// whose deadline expires unblocks with ctx.Err() while the leader runs on
// for the others. (A from-scratch singleflight: x/sync is not vendored.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight

	coalesced int64 // followers that joined an existing flight
}

type flight struct {
	done      chan struct{}
	val       *Product
	err       error
	followers int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// do runs fn once per key among concurrent callers. shared reports whether
// this caller got a coalesced result rather than running fn itself. The
// leader ignores ctx here (its own fn observes it); followers return early
// on their ctx.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Product, error)) (p *Product, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.followers++
		g.coalesced++
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// waiting reports how many followers are currently attached to key's flight
// (0 when no flight is running). Tests use it to deterministically observe
// coalescing before releasing a gated leader.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f.followers
	}
	return 0
}

// coalescedTotal reports how many requests ever joined an existing flight.
func (g *flightGroup) coalescedTotal() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.coalesced
}
