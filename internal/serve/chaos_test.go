//go:build faultinject

package serve

// Serve-layer chaos: injected faults must stay contained to the request that
// hit them — the daemon keeps serving every other tenant.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pbspgemm"
	"pbspgemm/internal/faultinject"
)

// TestServeKernelPanicContainedPerRequest injects a worker panic into the
// expand phase of tenant A's multiply: A gets a 500, tenant B's different
// product succeeds on the same engine right after, and the panic shows up in
// the engine metrics (workspace discarded) — not as a handler panic.
func TestServeKernelPanicContainedPerRequest(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(256, 8, 1)
	b := pbspgemm.NewER(256, 8, 2)
	c := pbspgemm.NewER(256, 8, 3)
	ida, idb, idc := uploadText(t, s, a), uploadText(t, s, b), uploadText(t, s, c)

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteExpandColumn, Hit: 1, Worker: -1,
		Mode: faultinject.ModePanic})
	reqA := httptest.NewRequest("POST", "/multiply",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb)))
	reqA.Header.Set("X-Tenant", "victim")
	rec := do(s, reqA)
	faultinject.Disarm()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked multiply: status %d body %s, want 500", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "panicked") {
		t.Fatalf("500 body does not surface the contained panic: %s", rec.Body)
	}

	// A different tenant's different product is untouched.
	reqB := httptest.NewRequest("POST", "/multiply",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idc)))
	reqB.Header.Set("X-Tenant", "bystander")
	if rec := do(s, reqB); rec.Code != http.StatusOK {
		t.Fatalf("bystander multiply after contained panic: status %d body %s", rec.Code, rec.Body)
	}
	// And so is the victim's own retry of the faulted product.
	retry := httptest.NewRequest("POST", "/multiply",
		strings.NewReader(fmt.Sprintf(`{"a":%q,"b":%q}`, ida, idb)))
	retry.Header.Set("X-Tenant", "victim")
	if rec := do(s, retry); rec.Code != http.StatusOK {
		t.Fatalf("victim retry: status %d body %s", rec.Code, rec.Body)
	}

	m := s.Metrics()
	if m.Engine.Panics != 1 {
		t.Fatalf("engine panics = %d, want 1", m.Engine.Panics)
	}
	if m.HandlerPanics != 0 {
		t.Fatalf("kernel panic leaked to the middleware: handler panics = %d", m.HandlerPanics)
	}
	if v := m.Tenants["victim"]; v.Errors != 1 || v.Multiplies != 1 {
		t.Fatalf("victim counters: %+v", v)
	}
	if by := m.Tenants["bystander"]; by.Multiplies != 1 || by.Errors != 0 {
		t.Fatalf("bystander counters: %+v", by)
	}
}

// TestServeMiddlewareCatchesHandlerPanic injects a panic at the top of the
// multiply handler itself: the recovery middleware answers 500 for that
// request and the server keeps serving.
func TestServeMiddlewareCatchesHandlerPanic(t *testing.T) {
	s := newTestServer(t, nil)
	a := pbspgemm.NewER(64, 3, 1)
	ida := uploadText(t, s, a)
	body := fmt.Sprintf(`{"a":%q,"b":%q}`, ida, ida)

	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SiteServeHandler, Hit: 1, Worker: -1,
		Mode: faultinject.ModePanic})
	rec := do(s, httptest.NewRequest("POST", "/multiply", strings.NewReader(body)))
	faultinject.Disarm()
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("handler panic: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal panic") {
		t.Fatalf("500 body: %s", rec.Body)
	}
	if m := s.Metrics(); m.HandlerPanics != 1 {
		t.Fatalf("handler panics = %d, want 1", m.HandlerPanics)
	}

	if rec := do(s, httptest.NewRequest("POST", "/multiply", strings.NewReader(body))); rec.Code != http.StatusOK {
		t.Fatalf("multiply after middleware recovery: status %d body %s", rec.Code, rec.Body)
	}
	if rec := do(s, httptest.NewRequest("GET", "/healthz", nil)); rec.Code != http.StatusOK {
		t.Fatalf("healthz after middleware recovery: %d", rec.Code)
	}
}
