//go:build faultinject

package serve

// Remote-site chaos through the real HTTP stack: injected peer-dial faults
// must drain through the shard coordinator's ladder into a bit-identical
// product — a flaky or dark peer costs latency, never bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"pbspgemm"
	"pbspgemm/internal/faultinject"
	"pbspgemm/internal/mmio"
)

// shardedChaosMultiply runs one sharded product through a coordinator
// server backed by a live peer, under the armed plan, and returns the
// decoded result.
func shardedChaosMultiply(t *testing.T, a, b *pbspgemm.CSR) *pbspgemm.CSR {
	t.Helper()
	peer := newTestServer(t, nil)
	peerHS := httptest.NewServer(peer)
	t.Cleanup(peerHS.Close)
	s := newTestServer(t, func(c *Config) {
		c.Peers = []string{peerHS.URL}
		c.ShardBlockBytes = 16 << 10
		c.ShardLocalWorkers = 2
	})
	ida, idb := uploadText(t, s, a), uploadText(t, s, b)
	body, _ := json.Marshal(multiplyRequest{A: ida, B: idb, Output: "binary"})
	rec := do(s, httptest.NewRequest("POST", "/multiply", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded multiply: status %d body %s", rec.Code, rec.Body)
	}
	c, err := mmio.ReadBinary(rec.Body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return c
}

func TestChaosFlakyPeerDialBitIdentical(t *testing.T) {
	a := intMatrix(128, 4, 41)
	b := intMatrix(128, 4, 42)
	eng, _ := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatal(err)
	}
	// Every other peer exchange dies at dial time.
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SitePeerDial, Hit: 1, Every: 2, Worker: -1,
		Mode: faultinject.ModeError})
	t.Cleanup(faultinject.Disarm)
	got := shardedChaosMultiply(t, a, b)
	if faultinject.Hits(faultinject.SitePeerDial) == 0 {
		t.Fatal("peer-dial site was never reached")
	}
	compareCSR(t, ref.C, got)
}

func TestChaosDarkPeerFallsBackBitIdentical(t *testing.T) {
	a := intMatrix(128, 4, 43)
	b := intMatrix(128, 4, 44)
	eng, _ := pbspgemm.NewEngine(pbspgemm.WithBeta(50))
	ref, err := eng.Multiply(context.Background(), a, b, pbspgemm.WithAlgorithm(pbspgemm.PB))
	if err != nil {
		t.Fatal(err)
	}
	// Every peer exchange fails: all remote work drains into the local pool
	// and fallback; the bytes must not change.
	faultinject.Arm(faultinject.Plan{
		Site: faultinject.SitePeerDial, Hit: 1, Every: 1, Worker: -1,
		Mode: faultinject.ModeError})
	t.Cleanup(faultinject.Disarm)
	got := shardedChaosMultiply(t, a, b)
	if faultinject.Hits(faultinject.SitePeerDial) == 0 {
		t.Fatal("peer-dial site was never reached")
	}
	compareCSR(t, ref.C, got)
}

// compareCSR asserts bit-identity.
func compareCSR(t *testing.T, want, got *pbspgemm.CSR) {
	t.Helper()
	if want.NNZ() != got.NNZ() {
		t.Fatalf("nnz: want %d got %d", want.NNZ(), got.NNZ())
	}
	for i := range want.RowPtr {
		if want.RowPtr[i] != got.RowPtr[i] {
			t.Fatalf("RowPtr[%d]: want %d got %d", i, want.RowPtr[i], got.RowPtr[i])
		}
	}
	for i := range want.Val {
		if want.ColIdx[i] != got.ColIdx[i] || want.Val[i] != got.Val[i] {
			t.Fatalf("entry %d: want (%d,%v) got (%d,%v)",
				i, want.ColIdx[i], want.Val[i], got.ColIdx[i], got.Val[i])
		}
	}
}
