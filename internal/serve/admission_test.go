package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionAdmitsUnderCeiling(t *testing.T) {
	a := NewAdmission(1000, 4, time.Second)
	if err := a.Acquire(context.Background(), 600); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.InflightBytes != 600 || st.Admitted != 1 {
		t.Fatalf("stats: %+v", st)
	}
	a.Release(600)
	if st := a.Stats(); st.InflightBytes != 0 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestAdmissionShedsFootprintOverCeiling(t *testing.T) {
	a := NewAdmission(1000, 4, time.Second)
	err := a.Acquire(context.Background(), 1001)
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrShed) {
		t.Fatalf("got %v, want ShedError matching ErrShed", err)
	}
	if shed.Reason != "footprint exceeds ceiling" || shed.RetryAfter < time.Second {
		t.Fatalf("shed: %+v", shed)
	}
	if st := a.Stats(); st.Shed != 1 || st.InflightBytes != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAdmissionQueuesUntilRelease(t *testing.T) {
	a := NewAdmission(1000, 4, 30*time.Second)
	if err := a.Acquire(context.Background(), 800); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Acquire(context.Background(), 500) }()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 }, "waiter to queue")
	select {
	case err := <-done:
		t.Fatalf("second Acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(800)
	if err := <-done; err != nil {
		t.Fatalf("queued Acquire after release: %v", err)
	}
	st := a.Stats()
	if st.InflightBytes != 500 || st.Queued != 1 || st.Admitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
	a.Release(500)
}

func TestAdmissionShedsQueueFull(t *testing.T) {
	a := NewAdmission(1000, 1, 30*time.Second)
	if err := a.Acquire(context.Background(), 900); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- a.Acquire(context.Background(), 500) }()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 }, "first waiter to queue")
	// The queue slot is taken: the next request sheds immediately.
	err := a.Acquire(context.Background(), 500)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "queue full" {
		t.Fatalf("got %v, want queue-full shed", err)
	}
	a.Release(900)
	if err := <-queued; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	a.Release(500)
}

func TestAdmissionQueueWaitExceeded(t *testing.T) {
	a := NewAdmission(1000, 4, 20*time.Millisecond)
	if err := a.Acquire(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	err := a.Acquire(context.Background(), 100)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "queue wait exceeded" {
		t.Fatalf("got %v, want wait-exceeded shed", err)
	}
	a.Release(1000)
}

func TestAdmissionCtxCanceledWhileQueued(t *testing.T) {
	a := NewAdmission(1000, 4, 30*time.Second)
	if err := a.Acquire(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx, 100) }()
	waitFor(t, func() bool { return a.Stats().Waiting == 1 }, "waiter to queue")
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := a.Stats(); st.Waiting != 0 {
		t.Fatalf("waiter leaked: %+v", st)
	}
	a.Release(1000)
}

func TestAdmissionUnlimitedCeiling(t *testing.T) {
	a := NewAdmission(0, 1, time.Millisecond)
	for i := 0; i < 10; i++ {
		if err := a.Acquire(context.Background(), 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	if st := a.Stats(); st.Admitted != 10 || st.Shed != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
