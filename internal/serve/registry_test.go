package serve

import (
	"errors"
	"testing"

	"pbspgemm"
)

func TestRegistryPutGetDedup(t *testing.T) {
	r := NewRegistry(0)
	a := pbspgemm.NewER(128, 4, 1)
	info, existed, err := r.Put(a, "a")
	if err != nil || existed {
		t.Fatalf("first Put: existed=%v err=%v", existed, err)
	}
	if info.ID == "" || info.Rows != 128 || info.NNZ != a.NNZ() {
		t.Fatalf("bad info: %+v", info)
	}
	if info.Bytes != csrBytes(a) {
		t.Fatalf("Bytes = %d, want %d", info.Bytes, csrBytes(a))
	}
	// Identical content (even a distinct allocation) dedupes to the same id.
	clone := a.Clone()
	info2, existed, err := r.Put(clone, "other-name")
	if err != nil || !existed {
		t.Fatalf("dedup Put: existed=%v err=%v", existed, err)
	}
	if info2.ID != info.ID || info2.Name != "a" {
		t.Fatalf("dedup returned %+v, want original %+v", info2, info)
	}
	got, gi, ok := r.Get(info.ID)
	if !ok || got != a || gi.ID != info.ID {
		t.Fatalf("Get: ok=%v same-pointer=%v", ok, got == a)
	}
	if st := r.Stats(); st.Matrices != 1 || st.Bytes != info.Bytes {
		t.Fatalf("stats after dedup: %+v", st)
	}
}

func TestRegistryDistinctContentDistinctIDs(t *testing.T) {
	r := NewRegistry(0)
	ia, _, _ := r.Put(pbspgemm.NewER(128, 4, 1), "")
	ib, _, _ := r.Put(pbspgemm.NewER(128, 4, 2), "")
	if ia.ID == ib.ID {
		t.Fatalf("distinct matrices share id %s", ia.ID)
	}
	if st := r.Stats(); st.Matrices != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRegistryBudgetAndDelete(t *testing.T) {
	a := pbspgemm.NewER(128, 4, 1)
	b := pbspgemm.NewER(128, 4, 2)
	// Budget fits exactly one of the two (they are the same size).
	r := NewRegistry(csrBytes(a) + csrBytes(b)/2)
	ia, _, err := r.Put(a, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Put(b, ""); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("over-budget Put: %v, want ErrRegistryFull", err)
	}
	// A re-upload of registered content must dedupe, not hit the budget.
	if _, existed, err := r.Put(a.Clone(), ""); err != nil || !existed {
		t.Fatalf("dedup under full budget: existed=%v err=%v", existed, err)
	}
	if !r.Delete(ia.ID) {
		t.Fatal("Delete returned false")
	}
	if r.Delete(ia.ID) {
		t.Fatal("second Delete returned true")
	}
	if _, _, ok := r.Get(ia.ID); ok {
		t.Fatal("Get after Delete succeeded")
	}
	// Deletion freed the budget: b now fits.
	if _, _, err := r.Put(b, ""); err != nil {
		t.Fatalf("Put after Delete: %v", err)
	}
	if st := r.Stats(); st.Matrices != 1 || st.Bytes != csrBytes(b) {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHashMatrixStableAcrossValuesAndStructure(t *testing.T) {
	a := pbspgemm.NewER(64, 3, 7)
	if HashMatrix(a) != HashMatrix(a.Clone()) {
		t.Fatal("hash differs across identical clones")
	}
	mod := a.Clone()
	mod.Val[0] += 1
	if HashMatrix(a) == HashMatrix(mod) {
		t.Fatal("hash ignores values")
	}
}
